package proptest

import (
	"fmt"

	"repro/internal/rtl"
	"repro/internal/trans"
)

// elaborateCore builds a simulation model of c in which the version's DFT
// hardware physically exists: every created transparency mux and every
// HSCAN scan mux of v's RCG becomes a real 2-to-1 multiplexer (named
// XM<edge id>) spliced in front of its destination slice, with the
// original drivers rerouted to in0 and the transparency source wired to
// in1. Created muxes landing on an output port get a pipeline register
// XR<edge id> behind in1, matching the RCG's one-cycle cost model for
// such edges. The returned map resolves RCG edge ids to mux names for
// chipsim.EngageElaboratedPath; when the version has no DFT edges the
// core is returned unchanged with a nil map.
func elaborateCore(c *rtl.Core, v *trans.Version) (*rtl.Core, map[int]string, error) {
	var dft []*trans.Edge
	for _, e := range v.RCG.Edges {
		if e.Created || e.ScanMux {
			dft = append(dft, e)
		}
	}
	if len(dft) == 0 {
		return c, nil, nil
	}
	nc := &rtl.Core{
		Name:  c.Name,
		Ports: append([]rtl.Port(nil), c.Ports...),
		Regs:  append([]rtl.Register(nil), c.Regs...),
		Muxes: append([]rtl.Mux(nil), c.Muxes...),
		Units: append([]rtl.Unit(nil), c.Units...),
		Conns: append([]rtl.Conn(nil), c.Conns...),
	}
	names := map[int]string{}
	for _, e := range dft {
		w := e.DstHi - e.DstLo + 1
		if e.SrcHi-e.SrcLo+1 != w {
			return nil, nil, fmt.Errorf("elaborate %s: edge %d slice widths differ (%d vs %d)",
				c.Name, e.ID, e.SrcHi-e.SrcLo+1, w)
		}
		mux := fmt.Sprintf("XM%d", e.ID)
		dst := rcgEndpoint(v, e.To, e.DstLo, e.DstHi, true)
		src := rcgEndpoint(v, e.From, e.SrcLo, e.SrcHi, false)
		nc.Conns = rerouteDrivers(nc.Conns, dst, mux)
		nc.Muxes = append(nc.Muxes, rtl.Mux{Name: mux, Width: w, NumIn: 2})
		in1 := rtl.Endpoint{Comp: mux, Pin: "in1", Lo: 0, Hi: w - 1}
		if e.Created && v.RCG.Nodes[e.To].Kind == trans.NodeOut {
			// The created mux buffers in the register driving the output
			// (one cycle); realize that as a dedicated pipeline register.
			reg := fmt.Sprintf("XR%d", e.ID)
			nc.Regs = append(nc.Regs, rtl.Register{Name: reg, Width: w})
			nc.Conns = append(nc.Conns,
				rtl.Conn{From: src, To: rtl.Endpoint{Comp: reg, Pin: "d", Lo: 0, Hi: w - 1}},
				rtl.Conn{From: rtl.Endpoint{Comp: reg, Pin: "q", Lo: 0, Hi: w - 1}, To: in1})
		} else {
			nc.Conns = append(nc.Conns, rtl.Conn{From: src, To: in1})
		}
		nc.Conns = append(nc.Conns,
			rtl.Conn{From: rtl.Endpoint{Comp: mux, Pin: "out", Lo: 0, Hi: w - 1}, To: dst})
		names[e.ID] = mux
	}
	if err := nc.Validate(); err != nil {
		return nil, nil, fmt.Errorf("elaborate %s: %w", c.Name, err)
	}
	return nc, names, nil
}

// rcgEndpoint maps an RCG node slice to its RTL endpoint: registers are
// written at d and read at q, ports are their own pins.
func rcgEndpoint(v *trans.Version, node, lo, hi int, sink bool) rtl.Endpoint {
	n := v.RCG.Nodes[node]
	ep := rtl.Endpoint{Comp: n.Name, Lo: lo, Hi: hi}
	if n.Kind == trans.NodeReg {
		if sink {
			ep.Pin = "d"
		} else {
			ep.Pin = "q"
		}
	}
	return ep
}

// rerouteDrivers redirects every connection bit currently driving the dst
// slice into the in0 pin of the named mux (which will drive dst instead),
// splitting connections that straddle the slice boundary. Muxes inserted
// earlier chain naturally: their out connection is itself a driver and
// gets rerouted like any other.
func rerouteDrivers(conns []rtl.Conn, dst rtl.Endpoint, mux string) []rtl.Conn {
	out := make([]rtl.Conn, 0, len(conns)+2)
	for _, cn := range conns {
		if cn.To.Comp != dst.Comp || cn.To.Pin != dst.Pin || cn.To.Hi < dst.Lo || cn.To.Lo > dst.Hi {
			out = append(out, cn)
			continue
		}
		if cn.To.Lo < dst.Lo { // below the mux slice: keep driving dst's component
			out = append(out, rtl.Conn{
				From: rtl.Endpoint{Comp: cn.From.Comp, Pin: cn.From.Pin,
					Lo: cn.From.Lo, Hi: cn.From.Lo + (dst.Lo - cn.To.Lo) - 1},
				To: rtl.Endpoint{Comp: cn.To.Comp, Pin: cn.To.Pin, Lo: cn.To.Lo, Hi: dst.Lo - 1}})
		}
		a := max(cn.To.Lo, dst.Lo)
		b := min(cn.To.Hi, dst.Hi)
		out = append(out, rtl.Conn{
			From: rtl.Endpoint{Comp: cn.From.Comp, Pin: cn.From.Pin,
				Lo: cn.From.Lo + (a - cn.To.Lo), Hi: cn.From.Lo + (b - cn.To.Lo)},
			To: rtl.Endpoint{Comp: mux, Pin: "in0", Lo: a - dst.Lo, Hi: b - dst.Lo}})
		if cn.To.Hi > dst.Hi { // above the mux slice
			out = append(out, rtl.Conn{
				From: rtl.Endpoint{Comp: cn.From.Comp, Pin: cn.From.Pin,
					Lo: cn.From.Lo + (dst.Hi + 1 - cn.To.Lo), Hi: cn.From.Hi},
				To: rtl.Endpoint{Comp: cn.To.Comp, Pin: cn.To.Pin, Lo: dst.Hi + 1, Hi: cn.To.Hi}})
		}
	}
	return out
}
