package proptest

import (
	"flag"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/socgen"
	"repro/internal/trans"
)

var (
	nFlag     = flag.Int("proptest.n", 50, "number of seeded chips to verify")
	seedFlag  = flag.Int64("proptest.seed", -1, "verify one specific seed instead of a sweep")
	coresFlag = flag.Int("proptest.cores", 0, "override generated core count (0 = seed default)")
	topoFlag  = flag.String("proptest.topo", "auto", "topology family (auto, chain, mesh, dag, hub)")
)

func paramsFromFlags(t *testing.T, seed uint64) socgen.Params {
	t.Helper()
	topo, err := socgen.ParseTopology(*topoFlag)
	if err != nil {
		t.Fatal(err)
	}
	return socgen.Params{Seed: seed, Cores: *coresFlag, Topology: topo}
}

// reproducer formats the command that replays one failing parameter set.
func reproducer(p socgen.Params) string {
	return fmt.Sprintf("go test ./internal/proptest -run TestGeneratedChips -proptest.seed=%d -proptest.cores=%d -proptest.topo=%s",
		p.Seed, p.Cores, p.Topology)
}

func checkSeed(t *testing.T, p socgen.Params, agg *Stats, mu *sync.Mutex) {
	t.Helper()
	st, err := Check(p)
	mu.Lock()
	agg.Add(st)
	mu.Unlock()
	if err != nil {
		min := Shrink(p)
		t.Fatalf("seed %d failed: %v\nshrunk reproducer (cores=%d): %s",
			p.Seed, err, min.Cores, reproducer(min))
	}
}

// TestGeneratedChips verifies a sweep of seeded random SoCs: full flow,
// cycle-accurate differential replay of every scheduled path, and the
// metamorphic invariants. Failing seeds shrink to a minimal core count
// and print a one-line reproducer.
func TestGeneratedChips(t *testing.T) {
	var mu sync.Mutex
	agg := &Stats{}
	if *seedFlag >= 0 {
		checkSeed(t, paramsFromFlags(t, uint64(*seedFlag)), agg, &mu)
		t.Logf("seed %d: %d paths, %d replayed, %d virtual, %d fully simulated cores, %d points",
			*seedFlag, agg.Paths, agg.Replayed, agg.Virtual, agg.FullCores, agg.Points)
		return
	}
	t.Run("seeds", func(t *testing.T) {
		for i := 0; i < *nFlag; i++ {
			p := paramsFromFlags(t, uint64(i)+1)
			t.Run(fmt.Sprintf("seed=%d", p.Seed), func(t *testing.T) {
				t.Parallel()
				checkSeed(t, p, agg, &mu)
			})
		}
	})
	if t.Failed() {
		return
	}
	t.Logf("%d chips: %d paths, %d replayed, %d virtual, %d fully simulated cores, %d enumerated points",
		*nFlag, agg.Paths, agg.Replayed, agg.Virtual, agg.FullCores, agg.Points)
	if agg.Replayed == 0 {
		t.Fatalf("no scheduled path was replayable on chipsim across %d chips — the differential harness is vacuous", *nFlag)
	}
	if agg.FullCores == 0 {
		t.Errorf("no core had its full TAT recomputed from simulation across %d chips", *nFlag)
	}
}

// TestReplayDetectsLatencyLies tampers a prepared chip — every core's
// selected version claims one cycle less than its paths really take — and
// requires the differential replay to catch the discrepancy. This guards
// the harness itself against going vacuous.
func TestReplayDetectsLatencyLies(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		ch, err := socgen.Generate(socgen.Params{Seed: seed})
		if err != nil {
			continue
		}
		vecs := map[string]int{}
		for _, c := range ch.Cores {
			vecs[c.Name] = 10
		}
		f, err := core.Prepare(ch, &core.Options{VectorOverride: vecs})
		if err != nil {
			t.Fatalf("seed %d: prepare: %v", seed, err)
		}
		tampered := false
		for _, c := range ch.TestableCores() {
			v := c.Versions[c.Selected]
			nv := *v
			nv.Prop = shortenPaths(v.Prop)
			nv.Just = shortenPaths(v.Just)
			if differsIn(nv.Prop, v.Prop) || differsIn(nv.Just, v.Just) {
				tampered = true
			}
			vs := append([]*trans.Version(nil), c.Versions...)
			vs[c.Selected] = &nv
			c.Versions = vs
		}
		if !tampered {
			continue
		}
		e, err := f.Evaluate()
		if err != nil {
			continue // the lie broke scheduling outright: also a detection
		}
		st, err := ReplayEvaluation(ch, e, canon(ch, f.CurrentSelection()))
		if err != nil {
			return // caught: simulation disagreed with the tampered claim
		}
		if st.Replayed == 0 {
			continue // nothing replayable on this seed; try the next
		}
	}
	t.Fatal("no tampered seed was caught by the differential replay")
}

// shortenPaths clones a path map with every multi-cycle latency reduced
// by one — the "optimistic analyzer" fault the replay must detect.
func shortenPaths(m map[string]*trans.PathUse) map[string]*trans.PathUse {
	out := make(map[string]*trans.PathUse, len(m))
	for name, p := range m {
		np := *p
		if np.Latency >= 2 {
			np.Latency--
		}
		out[name] = &np
	}
	return out
}

func differsIn(a, b map[string]*trans.PathUse) bool {
	for name, p := range a {
		if q, ok := b[name]; ok && q.Latency != p.Latency {
			return true
		}
	}
	return false
}

// TestShrinkFindsSmallerReproducer exercises the shrinker contract on an
// artificial failure: Check fails for any chip once its parameters are
// invalid, and Shrink must return parameters that still fail.
func TestShrinkFindsSmallerReproducer(t *testing.T) {
	p := socgen.Params{Seed: 3, Cores: -5} // invalid: Generate always errors
	if _, err := Check(p); err == nil {
		t.Fatal("expected Check to fail on invalid params")
	}
	min := Shrink(p)
	if _, err := Check(min); err == nil {
		t.Fatalf("shrunk params %+v no longer fail", min)
	}
}
