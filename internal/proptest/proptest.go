// Package proptest is the property-based differential harness over
// socgen-generated SoCs: for each seeded chip it runs the full SOCET flow,
// replays every scheduled justification and propagation path on the
// cycle-accurate chip simulator asserting the analytic latencies and TAT
// against simulated cycle counts, and checks metamorphic invariants of the
// version ladders, the scheduler and the design-space explorer. A failing
// seed shrinks to a minimal core count so the reproducer is small.
package proptest

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/soc"
	"repro/internal/socgen"
	"repro/internal/trans"
)

// Stats summarizes one chip's verification for aggregate reporting.
type Stats struct {
	Chip       string
	Paths      int // scheduled port paths examined
	Replayed   int // paths replayed cycle-accurately on chipsim
	Virtual    int // paths skipped (test muxes, created edges, splits...)
	FullCores  int // cores whose TAT was recomputed purely from simulation
	Points     int // enumerated design points (small chips only)
	WrapChains int // wrapper chains pulse-replayed on chipsim
	WrapCores  int // cores whose wrapper TAT identity was machine-checked
}

func (s *Stats) add(o *Stats) {
	s.Paths += o.Paths
	s.Replayed += o.Replayed
	s.Virtual += o.Virtual
	s.FullCores += o.FullCores
	s.Points += o.Points
	s.WrapChains += o.WrapChains
	s.WrapCores += o.WrapCores
}

// Add accumulates another chip's stats (aggregation across seeds).
func (s *Stats) Add(o *Stats) { s.add(o) }

// maxEnumProduct caps the ladder product for which the exhaustive
// enumeration invariants run; larger chips rely on the always-on checks.
const maxEnumProduct = 64

// Check generates the chip for p and runs the full property battery. A
// non-nil error is a real property violation (or a generator bug), never
// test-environment noise; Generate failures surface as errors too so
// callers can decide to skip.
func Check(p socgen.Params) (*Stats, error) {
	st := &Stats{}
	ch, err := socgen.Generate(p)
	if err != nil {
		return st, err
	}
	st.Chip = ch.Name

	// ATPG is skipped: vector counts are seeded per core, keeping 50-seed
	// sweeps fast while leaving every scheduling property intact.
	vr := &rng{s: p.Seed ^ 0x5eed}
	vecs := map[string]int{}
	for _, c := range ch.Cores {
		vecs[c.Name] = 5 + vr.intn(28)
	}
	f, err := core.Prepare(ch, &core.Options{VectorOverride: vecs})
	if err != nil {
		return st, fmt.Errorf("prepare: %w", err)
	}

	if err := checkLadders(ch); err != nil {
		return st, err
	}

	e, err := f.Evaluate()
	if err != nil {
		return st, fmt.Errorf("evaluate: %w", err)
	}
	if err := checkSchedule(ch, e); err != nil {
		return st, err
	}
	e2, err := f.Evaluate()
	if err != nil {
		return st, fmt.Errorf("re-evaluate: %w", err)
	}
	if sig, sig2 := scheduleSignature(e), scheduleSignature(e2); sig != sig2 {
		return st, fmt.Errorf("evaluation is nondeterministic: two runs produced different schedules")
	}

	// Differential replay at the minimum-area selection and again at the
	// fastest (last-version) selection, so both ends of every ladder get
	// simulated.
	fast := map[string]int{}
	for _, c := range ch.TestableCores() {
		fast[c.Name] = len(c.Versions) - 1
	}
	for _, run := range []struct {
		name string
		sel  map[string]int
		eval *core.Evaluation
	}{{"min-area", f.CurrentSelection(), e}, {"fastest", fast, nil}} {
		ev := run.eval
		if ev == nil {
			ev, err = f.EvaluateSelection(run.sel)
			if err != nil {
				return st, fmt.Errorf("evaluate %s selection: %w", run.name, err)
			}
		}
		rst, err := ReplayEvaluation(ch, ev, canon(ch, run.sel))
		st.add(rst)
		if err != nil {
			return st, fmt.Errorf("%s selection: %w", run.name, err)
		}
	}

	if err := checkDeltaEquivalence(f, ch); err != nil {
		return st, err
	}

	if err := checkMetamorphic(f, ch, st); err != nil {
		return st, err
	}
	return st, nil
}

// checkDeltaEquivalence asserts the incremental delta evaluator is
// bit-identical to the full evaluation path: from a base at the current
// selection, flip each core to its next version (wrapping) one at a
// time and require every reported number and the canonical schedule
// signature to match. This is the correctness gate of the delta
// invalidation model — an over-eager reuse or a stale invalidation
// surfaces here as a signature or field mismatch.
func checkDeltaEquivalence(f *core.Flow, ch *soc.Chip) error {
	d := core.NewDeltaEvaluator(f)
	base := f.CurrentSelection()
	if _, err := d.Rebase(context.Background(), base); err != nil {
		return fmt.Errorf("delta rebase: %w", err)
	}
	flips := 0
	for _, c := range ch.TestableCores() {
		if len(c.Versions) < 2 {
			continue
		}
		sel := map[string]int{}
		for k, v := range base {
			sel[k] = v
		}
		sel[c.Name] = (base[c.Name] + 1) % len(c.Versions)
		de, err := d.EvaluateSelection(sel)
		if err != nil {
			return fmt.Errorf("delta evaluate (flip %s): %w", c.Name, err)
		}
		fe, err := f.EvaluateSelection(sel)
		if err != nil {
			return fmt.Errorf("full evaluate (flip %s): %w", c.Name, err)
		}
		if err := EqualEvaluations(de, fe); err != nil {
			return fmt.Errorf("delta != full after flipping %s: %w", c.Name, err)
		}
		flips++
	}
	// Guard against a vacuous pass: the equivalence above only means
	// something if the incremental path actually ran.
	if st := d.Stats(); flips > 0 && st.Deltas == 0 {
		return fmt.Errorf("delta evaluator never took the incremental path across %d flips (%+v)", flips, st)
	}
	return nil
}

// EqualEvaluations compares two evaluations of the same selection for
// bit-identity: every reported number and the canonical schedule
// signature. A non-nil error names the first difference.
func EqualEvaluations(a, b *core.Evaluation) error {
	type num struct {
		name string
		a, b int
	}
	nums := []num{
		{"TAT", a.TAT, b.TAT},
		{"LogicTAT", a.LogicTAT, b.LogicTAT},
		{"TransCells", a.TransCells, b.TransCells},
		{"MuxCells", a.MuxCells, b.MuxCells},
		{"CtrlCells", a.CtrlCells, b.CtrlCells},
		{"BISTCycles", a.BISTCycles, b.BISTCycles},
		{"TransGrids", a.TransArea.Grids(), b.TransArea.Grids()},
		{"MuxGrids", a.MuxArea.Grids(), b.MuxArea.Grids()},
		{"CtrlGrids", a.CtrlArea.Grids(), b.CtrlArea.Grids()},
		{"InterconnectTAT", a.Interconnect.TotalTAT, b.Interconnect.TotalTAT},
		{"InterconnectNets", len(a.Interconnect.Nets), len(b.Interconnect.Nets)},
		{"UntestableNets", len(a.Interconnect.Untestable), len(b.Interconnect.Untestable)},
		{"CtrlStates", a.Controller.States, b.Controller.States},
	}
	for _, n := range nums {
		if n.a != n.b {
			return fmt.Errorf("%s differs: %d vs %d", n.name, n.a, n.b)
		}
	}
	for i, nt := range a.Interconnect.Nets {
		o := b.Interconnect.Nets[i]
		if nt != o {
			return fmt.Errorf("interconnect net %d differs: %+v vs %+v", i, nt, o)
		}
	}
	if sa, sb := Signature(a), Signature(b); sa != sb {
		return fmt.Errorf("schedule signatures differ:\n--- a ---\n%s--- b ---\n%s", sa, sb)
	}
	return nil
}

type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// checkLadders asserts the pareto front every version ladder must form:
// area never decreases along the ladder while total transparency latency
// strictly decreases — "adding a faster version" is exactly a ladder
// extension, and this ordering is what makes budget sweeps monotone.
func checkLadders(ch *soc.Chip) error {
	for _, c := range ch.TestableCores() {
		if len(c.Versions) == 0 {
			return fmt.Errorf("core %s: empty version ladder", c.Name)
		}
		prevCells := -1
		prevSum := int(^uint(0) >> 1)
		for i, v := range c.Versions {
			cells := v.Area.Cells()
			sum := ladderLatencySum(c, v)
			if cells < prevCells {
				return fmt.Errorf("core %s: version %d area %d cells < version %d area %d (ladder not monotone)",
					c.Name, i+1, cells, i, prevCells)
			}
			if sum >= prevSum {
				return fmt.Errorf("core %s: version %d latency sum %d does not improve on version %d's %d",
					c.Name, i+1, sum, i, prevSum)
			}
			prevCells, prevSum = cells, sum
		}
	}
	return nil
}

func ladderLatencySum(c *soc.Core, v *trans.Version) int {
	s := 0
	for _, in := range c.RTL.Inputs() {
		if l := v.PropLatency(in.Name); l >= 0 {
			s += l
		}
	}
	for _, out := range c.RTL.Outputs() {
		if l := v.JustLatency(out.Name); l >= 0 {
			s += l
		}
	}
	return s
}

// checkSchedule asserts the analytic invariants of a full evaluation: the
// schedule itself revalidates (causality, reservation disjointness, TAT
// formula), covers every testable core exactly once, and sums to the
// reported chip TAT.
func checkSchedule(ch *soc.Chip, e *core.Evaluation) error {
	if err := sched.Validate(e.Sched); err != nil {
		return fmt.Errorf("schedule validation: %w", err)
	}
	seen := map[string]bool{}
	sum := 0
	for _, cs := range e.Sched.Cores {
		if seen[cs.Core] {
			return fmt.Errorf("core %s scheduled twice", cs.Core)
		}
		seen[cs.Core] = true
		sum += cs.TAT
	}
	for _, c := range ch.TestableCores() {
		if !seen[c.Name] {
			return fmt.Errorf("core %s missing from schedule", c.Name)
		}
	}
	if sum != e.TAT {
		return fmt.Errorf("per-core TATs sum to %d but chip TAT is %d", sum, e.TAT)
	}
	return nil
}

// Signature renders a schedule to a canonical string, node names
// included, so two evaluations can be compared for bit-identical paths.
// Edge IDs are deliberately absent: an incremental graph splice shifts
// IDs after the spliced range without changing any path.
func Signature(e *core.Evaluation) string { return scheduleSignature(e) }

// scheduleSignature is the unexported spelling the in-package checks use.
func scheduleSignature(e *core.Evaluation) string {
	var b []byte
	app := func(s string) { b = append(b, s...) }
	for _, cs := range e.Sched.Cores {
		app(fmt.Sprintf("core %s J=%d O=%d tail=%d V=%d TAT=%d\n",
			cs.Core, cs.Period, cs.ObserveLat, cs.Tail, cs.HSCANVectors, cs.TAT))
		for _, group := range [][]sched.PortSchedule{cs.Inputs, cs.Outputs} {
			for _, ps := range group {
				app(fmt.Sprintf("  %s arr=%d mux=%v:", ps.Port, ps.Arrival, ps.AddedMux))
				for _, s := range ps.Path.Steps {
					app(fmt.Sprintf(" %s->%s@%d+%d/k%d",
						e.Graph.Nodes[s.Edge.From].Name(), e.Graph.Nodes[s.Edge.To].Name(),
						s.Start, s.Edge.Latency, int(s.Edge.Kind)))
				}
				app("\n")
			}
		}
	}
	app(fmt.Sprintf("mux=%d ctrl=%d trans=%d\n", e.MuxCells, e.CtrlCells, e.TransCells))
	return string(b)
}

// canon completes sel to a full canonical core->version map the way the
// flow does: missing cores use their current selection, indices clamp.
func canon(ch *soc.Chip, sel map[string]int) map[string]int {
	out := map[string]int{}
	for _, c := range ch.TestableCores() {
		idx, ok := sel[c.Name]
		if !ok {
			idx = c.Selected
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(c.Versions) {
			idx = len(c.Versions) - 1
		}
		out[c.Name] = idx
	}
	return out
}
