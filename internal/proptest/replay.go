package proptest

import (
	"fmt"
	"sort"

	"repro/internal/ccg"
	"repro/internal/chipsim"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/progress"
	"repro/internal/rtl"
	"repro/internal/soc"
	"repro/internal/trans"
)

// ReplayEvaluation replays every scheduled justification and propagation
// path of e on the cycle-accurate chip simulator, asserting that the test
// value arrives with exactly the analytic latency. sel must be the
// canonical selection the evaluation was built from. Transit cores whose
// transparency path rides created muxes or scan muxes get those muxes
// physically elaborated into their simulation model first, so DFT paths
// replay like any wire. Paths the chip model still cannot execute —
// system-level test muxes, bit-split or frozen transparency paths — count
// as virtual and are skipped; for cores whose every path replays without
// reservation waits, the core TAT is recomputed from simulated cycle
// counts alone and checked against the analytic value.
func ReplayEvaluation(ch *soc.Chip, e *core.Evaluation, sel map[string]int) (*Stats, error) {
	st := &Stats{}
	total := 0
	for _, cs := range e.Sched.Cores {
		total += len(cs.Inputs) + len(cs.Outputs)
	}
	prog := progress.Start("proptest/replay", int64(total), "proptest.paths_replayed")
	defer prog.End()
	cReplayed := obs.C("proptest.paths_replayed")
	for _, cs := range e.Sched.Cores {
		full := true
		simPeriod, simObserve := 0, 0
		run := func(ps portSched, input bool) error {
			st.Paths++
			res, err := replayPath(ch, e.Graph, sel, cs.Core, ps, input)
			prog.Step(1)
			if err != nil {
				return fmt.Errorf("core %s %s path for %s: %w", cs.Core, pathKind(input), ps.Port, err)
			}
			if !res.replayed || res.waits != 0 {
				if !res.replayed {
					st.Virtual++
				} else {
					st.Replayed++
					cReplayed.Inc()
				}
				full = false
				return nil
			}
			st.Replayed++
			cReplayed.Inc()
			if input && res.cycles > simPeriod {
				simPeriod = res.cycles
			}
			if !input && res.cycles > simObserve {
				simObserve = res.cycles
			}
			return nil
		}
		for _, ps := range cs.Inputs {
			if err := run(portSched{ps.Port, ps.Path, ps.Arrival, ps.AddedMux}, true); err != nil {
				return st, err
			}
		}
		for _, ps := range cs.Outputs {
			if err := run(portSched{ps.Port, ps.Path, ps.Arrival, ps.AddedMux}, false); err != nil {
				return st, err
			}
		}
		if full {
			// Every path simulated with zero reservation waits: the TAT
			// formula can be rebuilt from simulated cycle counts alone.
			if simPeriod < 1 {
				simPeriod = 1
			}
			tailScan := cs.Tail - cs.ObserveLat
			simTAT := cs.HSCANVectors*simPeriod + simObserve + tailScan
			if simTAT != cs.TAT {
				return st, fmt.Errorf("core %s: simulated TAT %d (J=%d O=%d tail=%d V=%d) != analytic TAT %d",
					cs.Core, simTAT, simPeriod, simObserve, tailScan, cs.HSCANVectors, cs.TAT)
			}
			st.FullCores++
		}
	}
	return st, nil
}

func pathKind(input bool) string {
	if input {
		return "justification"
	}
	return "propagation"
}

// portSched decouples the replay engine from sched.PortSchedule so both
// input and output schedules share one code path.
type portSched struct {
	Port     string
	Path     *ccg.PathResult
	Arrival  int
	AddedMux bool
}

type replayResult struct {
	replayed bool
	cycles   int // simulated transit cycles (sum of edge latencies)
	waits    int // analytic reservation delay on top of the transit
}

// transHop is one engaged transparency crossing: the transit core, its
// selected version, the solved path the CCG edge was derived from, and
// that path's RCG edges in data-flow order.
type transHop struct {
	core  string
	ver   *trans.Version
	pu    *trans.PathUse
	chain []*trans.Edge
}

// window tracks where the driven test vector currently sits: bits
// [lo..hi] of the present node hold bits [lo-delta..hi-delta] of the
// original vector. Each slice-copying edge narrows and shifts it.
type window struct {
	lo, hi, delta int
}

func (w window) width() int { return w.hi - w.lo + 1 }

// apply narrows the window through a slice copy [sl..sh] -> [dl..dh];
// ok=false means no vector bit survives (a bit-split the replay cannot
// follow with one probe).
func (w window) apply(sl, sh, dl, dh int) (window, bool) {
	a, b := max(w.lo, sl), min(w.hi, sh)
	if a > b {
		return w, false
	}
	d := dl - sl
	return window{lo: a + d, hi: b + d, delta: w.delta + d}, a+d >= 0
}

// replayPath simulates one scheduled path. The value is driven at the
// path's source (the chip PI for justification; a register behind the
// core output for propagation), the transit cores' transparency paths are
// engaged exactly as the controller would — with created and scan muxes
// physically elaborated into the transit cores' models — the simulator is
// stepped for the analytic number of transit cycles, and the probe node
// must then hold the value. A nil error with replayed=false means the
// path is not expressible on the chip model (virtual); an error means the
// analytic claim disagreed with the simulation.
func replayPath(ch *soc.Chip, g *ccg.Graph, sel map[string]int, coreName string, ps portSched, input bool) (replayResult, error) {
	var res replayResult
	steps := ps.Path.Steps
	if len(steps) == 0 {
		return res, fmt.Errorf("empty path")
	}
	sumLat := 0
	for _, s := range steps {
		sumLat += s.Edge.Latency
	}
	res.cycles = sumLat
	res.waits = ps.Arrival - sumLat
	if res.waits < 0 {
		return res, fmt.Errorf("arrival %d below path latency %d", ps.Arrival, sumLat)
	}

	// Eligibility scan: resolve every transparency crossing to its solved
	// path and an ordered linear chain of RCG edges.
	var hops []transHop
	hopAt := map[int]int{} // step index -> hops index
	seenCore := map[string]bool{}
	for i, s := range steps {
		from, to := g.Nodes[s.Edge.From], g.Nodes[s.Edge.To]
		switch s.Edge.Kind {
		case ccg.TestMux:
			return res, nil // fixture hardware the chip model does not contain
		case ccg.Trans:
			if i == len(steps)-1 {
				return res, nil // nothing downstream to probe at
			}
			c, ok := ch.CoreByName(from.Core)
			if !ok {
				return res, fmt.Errorf("transparency edge through unknown core %s", from.Core)
			}
			v := c.VersionAt(sel[c.Name])
			if v == nil {
				return res, fmt.Errorf("core %s has no version %d", c.Name, sel[c.Name])
			}
			pu := matchPathUse(v, from.Port, to.Port, s.Edge)
			if pu == nil {
				return res, fmt.Errorf("no transparency path of %s matches CCG edge %s->%s (lat %d)",
					c.Name, from.Name(), to.Name(), s.Edge.Latency)
			}
			if seenCore[c.Name] {
				return res, nil // second crossing could need conflicting forcings
			}
			seenCore[c.Name] = true
			if len(pu.Ends) != 1 || len(pu.Freezes) != 0 {
				return res, nil // split or frozen paths need multi-point driving
			}
			chain, ok := chainOrder(v, pu, from.Port, to.Port)
			if !ok {
				return res, nil
			}
			hopAt[i] = len(hops)
			hops = append(hops, transHop{core: c.Name, ver: v, pu: pu, chain: chain})
		}
	}

	// Source drive plan and initial vector window.
	src := g.Nodes[steps[0].Edge.From]
	var driveReg string
	var win window
	if input {
		if src.Kind != ccg.ChipPI {
			return res, fmt.Errorf("justification path starts at %s, not a chip PI", src.Name())
		}
		win = window{lo: 0, hi: nodeWidth(ch, src) - 1}
	} else {
		if src.Kind != ccg.CoreOut || src.Core != coreName {
			return res, fmt.Errorf("propagation path starts at %s, not an output of %s", src.Name(), coreName)
		}
		c, _ := ch.CoreByName(coreName)
		reg, w, ok := regDriver(c.RTL, src.Port)
		if !ok {
			return res, nil // output not directly register-driven: cannot plant a value
		}
		driveReg = reg
		win = window{lo: 0, hi: w - 1}
	}

	// Compose the vector window across every step but the last (the probe
	// sits at the final edge's source node).
	for i, s := range steps[:len(steps)-1] {
		var ok bool
		switch s.Edge.Kind {
		case ccg.Wire:
			w := min(nodeWidth(ch, g.Nodes[s.Edge.From]), nodeWidth(ch, g.Nodes[s.Edge.To]))
			win, ok = win.apply(0, w-1, 0, w-1)
		case ccg.Trans:
			ok = true
			for _, e := range hops[hopAt[i]].chain {
				win, ok = win.apply(e.SrcLo, e.SrcHi, e.DstLo, e.DstHi)
				if !ok {
					break
				}
			}
		}
		if !ok {
			return res, nil
		}
	}
	if win.width() < 2 || win.lo < win.delta {
		return res, nil // single-bit probe would alias too easily
	}
	vec := uint64(0xA5A5A5A5A5A5A5A5)
	want := (vec >> uint(win.lo-win.delta)) & mask(win.width())
	if want == 0 {
		// An all-zero expectation cannot be told from a stale register;
		// flip the pattern so the window carries signal.
		vec = ^vec
		want = mask(win.width())
	}

	sim, muxNames, err := simFor(ch, hops)
	if err != nil {
		return res, fmt.Errorf("chipsim: %w", err)
	}
	for _, h := range hops {
		cs, ok := sim.Core(h.core)
		if !ok {
			return res, fmt.Errorf("no simulator for core %s", h.core)
		}
		if err := chipsim.EngageElaboratedPath(cs, h.ver, h.pu, muxNames[h.core]); err != nil {
			return res, fmt.Errorf("engage %s: %w", h.core, err)
		}
	}
	if input {
		if err := sim.SetPI(src.Port, vec); err != nil {
			return res, err
		}
	} else {
		cs, _ := sim.Core(coreName)
		if err := cs.SetReg(driveReg, vec); err != nil {
			return res, err
		}
		if err := cs.Freeze(driveReg, true); err != nil {
			return res, err
		}
	}
	for i := 0; i < sumLat; i++ {
		if err := sim.Step(); err != nil {
			return res, fmt.Errorf("step %d: %w", i, err)
		}
	}
	probed, err := probe(sim, g, steps)
	if err != nil {
		return res, err
	}
	if got := (probed >> uint(win.lo)) & mask(win.width()); got != want {
		return res, fmt.Errorf("after %d simulated cycles (analytic arrival %d, waits %d) probe bits [%d:%d] hold %#x, want %#x",
			sumLat, ps.Arrival, res.waits, win.hi, win.lo, got, want)
	}
	res.replayed = true
	return res, nil
}

// simFor builds the chip simulator for one path, with every transit
// core's created and scan muxes elaborated into real hardware. The
// returned map gives each transit core's RCG-edge-id -> mux-name table.
func simFor(ch *soc.Chip, hops []transHop) (*chipsim.Sim, map[string]map[int]string, error) {
	if len(hops) == 0 {
		sim, err := chipsim.New(ch)
		return sim, nil, err
	}
	byCore := map[string]transHop{}
	for _, h := range hops {
		byCore[h.core] = h
	}
	nch := *ch
	nch.Cores = make([]*soc.Core, len(ch.Cores))
	muxNames := map[string]map[int]string{}
	for i, c := range ch.Cores {
		nc := *c
		if h, ok := byCore[c.Name]; ok {
			ert, names, err := elaborateCore(c.RTL, h.ver)
			if err != nil {
				return nil, nil, err
			}
			nc.RTL = ert
			muxNames[c.Name] = names
		}
		nch.Cores[i] = &nc
	}
	sim, err := chipsim.New(&nch)
	return sim, muxNames, err
}

// chainOrder orders a solved path's RCG edges by walking the data flow
// from the input port to the output port. Only single linear chains
// qualify: a fork, gap or stray edge disqualifies the path from replay.
func chainOrder(v *trans.Version, pu *trans.PathUse, in, out string) ([]*trans.Edge, bool) {
	start, ok1 := v.RCG.NodeIndex(in)
	end, ok2 := v.RCG.NodeIndex(out)
	if !ok1 || !ok2 {
		return nil, false
	}
	used := map[int]bool{}
	chain := make([]*trans.Edge, 0, len(pu.Edges))
	cur := start
	for cur != end {
		next := -1
		for id := range pu.Edges {
			if !used[id] && v.RCG.Edges[id].From == cur {
				if next >= 0 {
					return nil, false // fork
				}
				next = id
			}
		}
		if next < 0 || len(chain) == len(pu.Edges) {
			return nil, false
		}
		used[next] = true
		chain = append(chain, v.RCG.Edges[next])
		cur = v.RCG.Edges[next].To
	}
	if len(chain) != len(pu.Edges) {
		return nil, false // stray edges off the chain
	}
	return chain, true
}

// probe reads the value at the source node of the path's final edge: the
// last transit core's output port (or the PI itself for wire-only paths).
// Probing the upstream port side-steps sink pins with multiple drivers,
// whose read-back is OR-merged and not attributable to one path.
func probe(sim *chipsim.Sim, g *ccg.Graph, steps []ccg.Step) (uint64, error) {
	from := g.Nodes[steps[len(steps)-1].Edge.From]
	switch from.Kind {
	case ccg.ChipPI:
		// Wire-only path from the driven PI: the value is there by
		// construction; read it back through a core input when one exists.
		to := g.Nodes[steps[len(steps)-1].Edge.To]
		if to.Kind == ccg.CoreIn {
			return sim.CoreInput(to.Core, to.Port)
		}
		return sim.ChipOutput(to.Port)
	case ccg.CoreOut:
		cs, ok := sim.Core(from.Core)
		if !ok {
			return 0, fmt.Errorf("no simulator for probe core %s", from.Core)
		}
		return cs.Output(from.Port)
	}
	return 0, fmt.Errorf("cannot probe node %s", from.Name())
}

// matchPathUse resolves the solved transparency path a CCG Trans edge was
// derived from: the justification path of the edge's output whose ends
// include the input, else the propagation path of the input reaching the
// output — the same derivation order ccg.BuildSelection dedupes in.
func matchPathUse(v *trans.Version, in, out string, e *ccg.Edge) *trans.PathUse {
	if p, ok := v.Just[out]; ok && endsContain(v, p, in) && resMatch(p, e) {
		return p
	}
	if p, ok := v.Prop[in]; ok && endsContain(v, p, out) && resMatch(p, e) {
		return p
	}
	return nil
}

func endsContain(v *trans.Version, p *trans.PathUse, name string) bool {
	for end := range p.Ends {
		if v.RCG.Nodes[end].Name == name {
			return true
		}
	}
	return false
}

// resMatch checks that the path's RCG edge set is exactly the CCG edge's
// reservation list and the clamped latencies agree.
func resMatch(p *trans.PathUse, e *ccg.Edge) bool {
	lat := p.Latency
	if lat < 1 {
		lat = 1
	}
	if lat != e.Latency || len(p.Edges) != len(e.Res) {
		return false
	}
	ids := make([]int, 0, len(p.Edges))
	for id := range p.Edges {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for i, id := range ids {
		if e.Res[i].Edge != id {
			return false
		}
	}
	return true
}

// regDriver finds the register that directly and exclusively drives an
// output port low-bits-aligned, so planting a value is a SetReg+Freeze.
func regDriver(c *rtl.Core, port string) (reg string, width int, ok bool) {
	var found *rtl.Conn
	n := 0
	for i := range c.Conns {
		cn := &c.Conns[i]
		if cn.To.Comp == port && cn.To.Pin == "" {
			n++
			found = cn
		}
	}
	if n != 1 {
		return "", 0, false
	}
	if _, isReg := c.RegByName(found.From.Comp); !isReg {
		return "", 0, false
	}
	if found.From.Lo != 0 || found.To.Lo != 0 {
		return "", 0, false
	}
	w := found.From.Width()
	if tw := found.To.Width(); tw < w {
		w = tw
	}
	return found.From.Comp, w, true
}

func nodeWidth(ch *soc.Chip, n ccg.Node) int {
	if n.Core == "" {
		for _, p := range ch.PIs {
			if p.Name == n.Port {
				return p.Width
			}
		}
		for _, p := range ch.POs {
			if p.Name == n.Port {
				return p.Width
			}
		}
		return 0
	}
	c, ok := ch.CoreByName(n.Core)
	if !ok {
		return 0
	}
	if p, ok := c.RTL.PortByName(n.Port); ok {
		return p.Width
	}
	return 0
}

func mask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}
