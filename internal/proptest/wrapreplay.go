package proptest

import (
	"fmt"

	"repro/internal/chipsim"
	"repro/internal/hscan"
	"repro/internal/obs"
	"repro/internal/obs/progress"
	"repro/internal/soc"
	"repro/internal/socgen"
	"repro/internal/wrap"
)

// WrapParams parameterizes one wrapped-chip verification: the generated
// SoC plus the TAM width the wrapper architecture is evaluated at.
type WrapParams struct {
	Gen      socgen.Params
	TAMWidth int
}

// CheckWrapped generates the chip for p, inserts HSCAN, evaluates the
// wrapper/TAM architecture at p.TAMWidth and replays every wrapper chain
// cycle-accurately on chipsim, machine-checking the claimed SI/SO/TAT
// against simulated shift counts. It also requires the width-w schedule
// to be no slower than the width-1 serial baseline. A non-nil error is a
// real property violation (or a generator bug), never noise.
func CheckWrapped(p WrapParams) (*Stats, error) {
	st := &Stats{}
	ch, err := wrappedChip(p.Gen)
	if err != nil {
		return st, err
	}
	st.Chip = ch.Name
	w := p.TAMWidth
	if w < 1 {
		w = 1
	}
	r := wrap.Evaluate(ch, w, nil)
	rst, err := ReplayWrapped(ch, r)
	st.add(rst)
	if err != nil {
		return st, err
	}
	if w > 1 {
		serial := wrap.Evaluate(ch, 1, nil)
		if r.ChipTAT > serial.ChipTAT {
			return st, fmt.Errorf("width-%d chip TAT %d exceeds the width-1 serial baseline %d",
				w, r.ChipTAT, serial.ChipTAT)
		}
	}
	return st, nil
}

// wrappedChip generates the seeded SoC and fills the per-core state the
// wrapper reads — HSCAN chains and seeded vector counts — without running
// the full SOCET flow (no transparency, no ATPG): the wrapper baseline
// tests cores through boundary cells, not through neighbors.
func wrappedChip(p socgen.Params) (*soc.Chip, error) {
	ch, err := socgen.Generate(p)
	if err != nil {
		return nil, err
	}
	vr := &rng{s: p.Seed ^ 0x5eed}
	for _, c := range ch.TestableCores() {
		scan, err := hscan.Insert(c.RTL)
		if err != nil {
			return nil, fmt.Errorf("hscan %s: %w", c.Name, err)
		}
		c.Scan = scan
		c.Vectors = 5 + vr.intn(28)
	}
	return ch, nil
}

// ReplayWrapped physically elaborates every wrapper chain of r into the
// chip model, shifts a constant-1 pulse through each chain on the
// cycle-accurate simulator and records the first cycle each segment tap
// goes high. The measured segment lengths must match the chain's recorded
// items and the claimed SI/SO; the per-core TAT must satisfy the wrapper
// formula over the measured maxima; measured boundary and scan coverage
// must equal the core's RTL port bits and HSCAN stages; and the bus sums
// must reproduce the claimed chip TAT. An error means an analytic claim
// disagreed with the simulation (or failed a structural identity).
func ReplayWrapped(ch *soc.Chip, r *wrap.Result) (*Stats, error) {
	st := &Stats{Chip: ch.Name}
	ech, probes, err := wrap.Elaborate(ch, r)
	if err != nil {
		return st, fmt.Errorf("elaborate: %w", err)
	}
	if len(probes) == 0 {
		return st, checkBusSums(r)
	}
	sim, err := chipsim.New(ech)
	if err != nil {
		return st, fmt.Errorf("chipsim: %w", err)
	}
	prog := progress.Start("proptest/wrapreplay", int64(len(probes)), "wrap.paths_replayed")
	defer prog.End()
	cReplayed := obs.C("wrap.paths_replayed")

	// Every chain has its own PI and taps, so all of them shift at once.
	maxStages := 0
	for i := range probes {
		p := &probes[i]
		if s := p.Stages(); s > maxStages {
			maxStages = s
		}
		cs, ok := sim.Core(p.Core)
		if !ok {
			return st, fmt.Errorf("no simulator for core %s", p.Core)
		}
		for _, m := range p.Muxes {
			if err := cs.ForceMux(m, 1); err != nil {
				return st, fmt.Errorf("core %s: %w", p.Core, err)
			}
		}
		if err := sim.SetPI(p.PI, 1); err != nil {
			return st, err
		}
	}
	type arrivals struct{ in, scan, out int }
	arr := make([]arrivals, len(probes))
	for i := range arr {
		arr[i] = arrivals{-1, -1, -1}
	}
	for cyc := 0; cyc <= maxStages; cyc++ {
		for i := range probes {
			p := &probes[i]
			for _, tap := range []struct {
				po   string
				slot *int
			}{{p.TapIn, &arr[i].in}, {p.TapScan, &arr[i].scan}, {p.WSO, &arr[i].out}} {
				if *tap.slot >= 0 {
					continue
				}
				v, err := sim.ChipOutput(tap.po)
				if err != nil {
					return st, err
				}
				if v&1 == 1 {
					*tap.slot = cyc
				}
			}
		}
		if err := sim.Step(); err != nil {
			return st, fmt.Errorf("cycle %d: %w", cyc, err)
		}
	}

	crByName := map[string]*wrap.CoreResult{}
	for _, cr := range r.Cores {
		crByName[cr.Core] = cr
	}
	type coreMeasure struct {
		si, so        int // max measured shift-in / shift-out length
		in, scan, out int // summed measured segment lengths
		chains        int
	}
	meas := map[string]*coreMeasure{}
	for i := range probes {
		p := &probes[i]
		a := arr[i]
		if a.in < 0 || a.scan < 0 || a.out < 0 {
			return st, fmt.Errorf("core %s chain %d: pulse never reached a tap (in=%d scan=%d wso=%d after %d cycles)",
				p.Core, p.Chain, a.in, a.scan, a.out, maxStages)
		}
		cr := crByName[p.Core]
		if cr == nil || p.Chain >= len(cr.Chains) {
			return st, fmt.Errorf("probe for %s chain %d has no wrapper result", p.Core, p.Chain)
		}
		// Measured segment lengths are the tap arrival deltas.
		mi, ms, mo := a.in, a.scan-a.in, a.out-a.scan
		if mi != p.InBits || ms != p.ScanBits || mo != p.OutBits {
			return st, fmt.Errorf("core %s chain %d: measured segments %d/%d/%d disagree with structure %d/%d/%d",
				p.Core, p.Chain, mi, ms, mo, p.InBits, p.ScanBits, p.OutBits)
		}
		wc := cr.Chains[p.Chain]
		if msi, mso := a.scan, a.out-a.in; wc.SI != msi || wc.SO != mso {
			return st, fmt.Errorf("core %s chain %d claims si=%d so=%d, simulation measured %d/%d",
				p.Core, p.Chain, wc.SI, wc.SO, msi, mso)
		}
		m := meas[p.Core]
		if m == nil {
			m = &coreMeasure{}
			meas[p.Core] = m
		}
		if a.scan > m.si {
			m.si = a.scan
		}
		if so := a.out - a.in; so > m.so {
			m.so = so
		}
		m.in += mi
		m.scan += ms
		m.out += mo
		m.chains++
		st.WrapChains++
		cReplayed.Inc()
		prog.Step(1)
	}

	cores := ch.TestableCores()
	if len(r.Cores) != len(cores) {
		return st, fmt.Errorf("%d wrapper results for %d testable cores", len(r.Cores), len(cores))
	}
	for i, c := range cores {
		cr := r.Cores[i]
		if cr.Core != c.Name {
			return st, fmt.Errorf("wrapper result %d is for %s, testable core %d is %s", i, cr.Core, i, c.Name)
		}
		m := meas[c.Name]
		if m == nil {
			return st, fmt.Errorf("core %s was never elaborated", c.Name)
		}
		if m.chains != len(cr.Chains) {
			return st, fmt.Errorf("core %s: %d chains replayed, result has %d", c.Name, m.chains, len(cr.Chains))
		}
		if m.si != cr.SI || m.so != cr.SO {
			return st, fmt.Errorf("core %s claims si=%d so=%d, simulation measured %d/%d",
				c.Name, cr.SI, cr.SO, m.si, m.so)
		}
		// The wrapper TAT identity, rebuilt from measured shift lengths.
		want := 0
		if cr.Vectors > 0 {
			hi, lo := m.si, m.so
			if lo > hi {
				hi, lo = lo, hi
			}
			want = (1+hi)*cr.Vectors + lo
		}
		if cr.TAT != want {
			return st, fmt.Errorf("core %s: claimed TAT %d, measured shift lengths give %d (si=%d so=%d V=%d)",
				c.Name, cr.TAT, want, m.si, m.so, cr.Vectors)
		}
		// Measured coverage against independent chip facts.
		if m.in != c.RTL.InputBits() || m.out != c.RTL.OutputBits() {
			return st, fmt.Errorf("core %s: measured boundary %d in / %d out bits, RTL has %d/%d",
				c.Name, m.in, m.out, c.RTL.InputBits(), c.RTL.OutputBits())
		}
		wantScan := 0
		if c.Scan != nil {
			for _, hc := range c.Scan.Chains {
				wantScan += hc.Depth()
			}
		}
		if m.scan != wantScan {
			return st, fmt.Errorf("core %s: measured %d internal scan stages, HSCAN has %d", c.Name, m.scan, wantScan)
		}
		st.WrapCores++
	}
	return st, checkBusSums(r)
}

// checkBusSums re-derives the chip TAT from the per-core claims: each
// TAM bus tests its cores serially, buses run in parallel, every core
// rides exactly one bus.
func checkBusSums(r *wrap.Result) error {
	if r.NumBuses != len(r.Buses) || r.NumBuses != len(r.BusTATs) {
		return fmt.Errorf("%d buses with %d assignments and %d TATs", r.NumBuses, len(r.Buses), len(r.BusTATs))
	}
	seen := make([]int, len(r.Cores))
	chip := 0
	for b, bus := range r.Buses {
		sum := 0
		for _, ci := range bus {
			if ci < 0 || ci >= len(r.Cores) {
				return fmt.Errorf("bus %d references core %d of %d", b, ci, len(r.Cores))
			}
			seen[ci]++
			sum += r.Cores[ci].TAT
		}
		if sum != r.BusTATs[b] {
			return fmt.Errorf("bus %d: member TATs sum to %d, claimed %d", b, sum, r.BusTATs[b])
		}
		if sum > chip {
			chip = sum
		}
	}
	for ci, n := range seen {
		if n != 1 {
			return fmt.Errorf("core %s rides %d buses", r.Cores[ci].Core, n)
		}
	}
	if chip != r.ChipTAT {
		return fmt.Errorf("bus maxima give chip TAT %d, claimed %d", chip, r.ChipTAT)
	}
	return nil
}

// ShrinkWrapped minimizes a failing wrapped-chip parameter set along both
// axes: first the generated core count, then the TAM width. Deterministic
// generation makes the result a stable reproducer.
func ShrinkWrapped(p WrapParams) WrapParams {
	return shrinkWrapped(p, func(q WrapParams) bool {
		_, err := CheckWrapped(q)
		return err != nil
	})
}

// shrinkWrapped is the predicate-generic shrinker ShrinkWrapped
// specializes; tests exercise it with planted failures. Unlike the
// seed-sweep Shrink, it minimizes every parameter a wrapped check takes,
// not just the core count.
func shrinkWrapped(p WrapParams, fails func(WrapParams) bool) WrapParams {
	best := p
	n := best.Gen.Cores
	if n == 0 {
		if ch, err := socgen.Generate(best.Gen); err == nil {
			n = len(ch.TestableCores())
		}
	}
	for k := 2; k < n; k++ {
		q := best
		q.Gen.Cores = k
		if fails(q) {
			best = q
			break
		}
	}
	for w := 1; w < best.TAMWidth; w++ {
		q := best
		q.TAMWidth = w
		if fails(q) {
			best = q
			break
		}
	}
	return best
}
