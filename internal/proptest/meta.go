package proptest

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/soc"
	"repro/internal/socgen"
)

// checkMetamorphic runs the relation-between-runs invariants. Chips whose
// ladder product fits maxEnumProduct get the exhaustive battery (version
// monotonicity by genuine ladder truncation, budget monotonicity over the
// enumerated front); every chip gets the improvement-walk bound. It runs
// last: Improve mutates the flow's selection.
func checkMetamorphic(f *core.Flow, ch *soc.Chip, st *Stats) error {
	prod := 1
	for _, c := range ch.TestableCores() {
		prod *= len(c.Versions)
	}
	minTAT := -1
	if prod <= maxEnumProduct {
		pts, err := explore.Enumerate(f)
		if err != nil {
			return fmt.Errorf("enumerate: %w", err)
		}
		st.Points += len(pts)
		if len(pts) != prod {
			return fmt.Errorf("enumerated %d points, ladder product is %d", len(pts), prod)
		}
		minTAT = explore.MinTATPoint(pts).TAT
		if err := checkBudgetMonotone(pts); err != nil {
			return err
		}
		if err := checkTruncation(f, ch, pts, minTAT); err != nil {
			return err
		}
	}
	return checkImproveBound(f, minTAT)
}

// checkBudgetMonotone asserts that tightening the chip-area budget never
// decreases the reachable min-TAT: over the enumerated front, the best
// TAT within budget must be non-increasing as the budget grows, and the
// Pareto front must itself be consistent with the full point set (every
// point dominated by or on the front).
func checkBudgetMonotone(pts []explore.Point) error {
	sorted := append([]explore.Point(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ChipCells < sorted[j].ChipCells })
	best := int(^uint(0) >> 1)
	prevBudget, prevBest := -1, best
	for _, p := range sorted {
		if p.ChipCells > prevBudget && prevBudget >= 0 {
			if best > prevBest {
				return fmt.Errorf("min-TAT within budget rose from %d to %d when the budget grew past %d cells",
					prevBest, best, prevBudget)
			}
			prevBest = best
		}
		prevBudget = p.ChipCells
		if p.TAT < best {
			best = p.TAT
		}
	}
	front := explore.Pareto(pts)
	for _, p := range pts {
		dominated := false
		for _, q := range front {
			if q.ChipCells <= p.ChipCells && q.TAT <= p.TAT {
				dominated = true
				break
			}
		}
		if !dominated {
			return fmt.Errorf("point %s (cells %d, TAT %d) escapes its own Pareto front", p.Label(), p.ChipCells, p.TAT)
		}
	}
	return nil
}

// checkTruncation is the "adding a faster version never increases
// min-TAT" invariant, realized as its contrapositive on a genuinely
// truncated chip: drop the widest ladder's last (fastest) version, fork
// the flow onto the truncated chip, and require (a) every shared
// selection evaluates to the identical TAT and DFT cell count, and (b)
// the truncated minimum is no better than the full ladder's.
func checkTruncation(f *core.Flow, ch *soc.Chip, pts []explore.Point, minTAT int) error {
	var tc *soc.Core
	for _, c := range ch.TestableCores() {
		if len(c.Versions) > 1 && (tc == nil || len(c.Versions) > len(tc.Versions)) {
			tc = c
		}
	}
	if tc == nil {
		return nil // every ladder is a single version; nothing to truncate
	}
	tch := truncatedChip(ch, tc.Name)
	tf := f.Fork(tch)
	last := len(tc.Versions) - 1
	shared, checked := 0, 0
	truncMin := -1
	for _, p := range pts {
		if p.Selection[tc.Name] >= last {
			continue
		}
		shared++
		if truncMin < 0 || p.TAT < truncMin {
			truncMin = p.TAT
		}
		if checked >= 12 {
			continue // bound the differential re-evaluations per chip
		}
		checked++
		et, err := tf.EvaluateSelection(p.Selection)
		if err != nil {
			return fmt.Errorf("truncated chip evaluation (%s): %w", p.Label(), err)
		}
		if et.TAT != p.TAT || et.ChipDFTCells() != p.ChipCells {
			return fmt.Errorf("truncating %s's unused fastest version changed point %s: TAT %d->%d, cells %d->%d",
				tc.Name, p.Label(), p.TAT, et.TAT, p.ChipCells, et.ChipDFTCells())
		}
	}
	if shared > 0 && truncMin < minTAT {
		return fmt.Errorf("dropping %s's fastest version improved min-TAT %d -> %d", tc.Name, minTAT, truncMin)
	}
	return nil
}

// truncatedChip clones the chip's core list with coreName's ladder one
// version shorter. Nets, RTL, scan results and the surviving versions are
// shared (read-only downstream).
func truncatedChip(ch *soc.Chip, coreName string) *soc.Chip {
	nch := *ch
	nch.Cores = make([]*soc.Core, len(ch.Cores))
	for i, c := range ch.Cores {
		nc := *c
		if c.Name == coreName {
			nc.Versions = c.Versions[:len(c.Versions)-1]
			if nc.Selected >= len(nc.Versions) {
				nc.Selected = len(nc.Versions) - 1
			}
		}
		nch.Cores[i] = &nc
	}
	return &nch
}

// checkImproveBound runs the greedy improvement walk under an unlimited
// area budget and asserts it never worsens the starting TAT, and — when
// the exhaustive enumeration ran and the walk placed no test muxes — that
// it cannot beat the enumerated optimum.
func checkImproveBound(f *core.Flow, minTAT int) error {
	start, err := f.Evaluate()
	if err != nil {
		return fmt.Errorf("improve baseline: %w", err)
	}
	if _, err := explore.Improve(f, explore.MinimizeTAT, int(^uint(0)>>1)); err != nil {
		return fmt.Errorf("improve: %w", err)
	}
	end, err := f.Evaluate()
	if err != nil {
		return fmt.Errorf("improve result evaluation: %w", err)
	}
	if end.TAT > start.TAT {
		return fmt.Errorf("improvement walk worsened TAT %d -> %d", start.TAT, end.TAT)
	}
	if minTAT >= 0 && len(f.ForcedMuxes) == 0 && end.TAT < minTAT {
		return fmt.Errorf("improvement walk TAT %d beats the enumerated optimum %d without placing muxes", end.TAT, minTAT)
	}
	return nil
}

// Shrink minimizes a failing parameter set: given that Check(p) fails, it
// retries the same seed and shape at every smaller core count and returns
// the smallest parameters that still fail (p itself when no smaller chip
// reproduces). Deterministic generation makes the result a stable
// reproducer.
func Shrink(p socgen.Params) socgen.Params {
	n := p.Cores
	if n == 0 {
		if ch, err := socgen.Generate(p); err == nil {
			n = len(ch.TestableCores())
		}
	}
	for k := 2; k < n; k++ {
		q := p
		q.Cores = k
		if _, err := Check(q); err != nil {
			return q
		}
	}
	q := p
	q.Cores = n
	return q
}
