package proptest

import (
	"flag"
	"fmt"
	"sync"
	"testing"

	"repro/internal/socgen"
	"repro/internal/wrap"
)

var tamFlag = flag.Int("proptest.tam", 4, "TAM width for the wrapped-chip sweep")

// wrapReproducer formats the command replaying one failing wrapped check.
func wrapReproducer(p WrapParams) string {
	return fmt.Sprintf("go test ./internal/proptest -run TestWrappedChips -proptest.seed=%d -proptest.cores=%d -proptest.topo=%s -proptest.tam=%d",
		p.Gen.Seed, p.Gen.Cores, p.Gen.Topology, p.TAMWidth)
}

func checkWrappedSeed(t *testing.T, p WrapParams, agg *Stats, mu *sync.Mutex) {
	t.Helper()
	st, err := CheckWrapped(p)
	mu.Lock()
	agg.Add(st)
	mu.Unlock()
	if err != nil {
		min := ShrinkWrapped(p)
		t.Fatalf("seed %d failed: %v\nshrunk reproducer (cores=%d, tam=%d): %s",
			p.Gen.Seed, err, min.Gen.Cores, min.TAMWidth, wrapReproducer(min))
	}
}

// TestWrappedChips verifies the wrapper/TAM architecture over a sweep of
// seeded SoCs: every wrapper chain is elaborated into real registers and
// pulse-replayed on chipsim, so the per-core SI/SO/TAT claims and the
// chip-level bus sums are machine-checked against simulated cycle counts.
// Failing seeds shrink along both the core count and the TAM width.
func TestWrappedChips(t *testing.T) {
	var mu sync.Mutex
	agg := &Stats{}
	if *seedFlag >= 0 {
		p := WrapParams{Gen: paramsFromFlags(t, uint64(*seedFlag)), TAMWidth: *tamFlag}
		checkWrappedSeed(t, p, agg, &mu)
		t.Logf("seed %d: %d wrapper chains replayed, %d core TAT identities checked",
			*seedFlag, agg.WrapChains, agg.WrapCores)
		return
	}
	t.Run("seeds", func(t *testing.T) {
		for i := 0; i < *nFlag; i++ {
			p := WrapParams{Gen: paramsFromFlags(t, uint64(i)+1), TAMWidth: *tamFlag}
			t.Run(fmt.Sprintf("seed=%d", p.Gen.Seed), func(t *testing.T) {
				t.Parallel()
				checkWrappedSeed(t, p, agg, &mu)
			})
		}
	})
	if t.Failed() {
		return
	}
	t.Logf("%d chips: %d wrapper chains replayed, %d core TAT identities checked",
		*nFlag, agg.WrapChains, agg.WrapCores)
	if agg.WrapChains == 0 || agg.WrapCores == 0 {
		t.Fatalf("no wrapper chain was replayed across %d chips — the wrapped harness is vacuous", *nFlag)
	}
}

// TestWrapReplayDetectsLies tampers individual wrapper claims — a core's
// shift-in length, its TAT, a single chain's record, the chip TAT — and
// requires the pulse replay to catch every one. This guards the harness
// itself against going vacuous.
func TestWrapReplayDetectsLies(t *testing.T) {
	p := socgen.Params{Seed: 1}
	build := func(t *testing.T) (*wrap.Result, func() error) {
		ch, err := wrappedChip(p)
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		r := wrap.Evaluate(ch, 3, nil)
		if len(r.Cores) == 0 {
			t.Fatal("seed 1 produced no wrapped cores")
		}
		return r, func() error {
			_, err := ReplayWrapped(ch, r)
			return err
		}
	}

	_, replay := build(t)
	if err := replay(); err != nil {
		t.Fatalf("untampered replay failed: %v", err)
	}

	cases := []struct {
		name   string
		tamper func(r *wrap.Result)
	}{
		{"core-SI", func(r *wrap.Result) { r.Cores[0].SI++ }},
		{"core-TAT", func(r *wrap.Result) { r.Cores[0].TAT-- }},
		{"chain-SO", func(r *wrap.Result) { r.Cores[0].Chains[0].SO++ }},
		{"chip-TAT", func(r *wrap.Result) { r.ChipTAT++ }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r, replay := build(t)
			c.tamper(r)
			if err := replay(); err == nil {
				t.Fatalf("tampered %s went undetected by the replay", c.name)
			}
		})
	}
}

// TestShrinkWrappedMinimizesBothDimensions plants a failure that needs at
// least 4 cores AND a TAM at least 3 wide: the shrinker must walk both
// axes down to exactly that boundary. The width axis is the regression —
// the seed-sweep shrinker only ever minimized the core count.
func TestShrinkWrappedMinimizesBothDimensions(t *testing.T) {
	fails := func(q WrapParams) bool { return q.Gen.Cores >= 4 && q.TAMWidth >= 3 }
	p := WrapParams{Gen: socgen.Params{Seed: 7, Cores: 9}, TAMWidth: 6}
	if !fails(p) {
		t.Fatal("planted failure does not fail the starting params")
	}
	min := shrinkWrapped(p, fails)
	if min.Gen.Cores != 4 || min.TAMWidth != 3 {
		t.Fatalf("shrunk to cores=%d tam=%d, want 4/3", min.Gen.Cores, min.TAMWidth)
	}
	// Width-only failures must still shrink even when no smaller core
	// count reproduces.
	widthOnly := func(q WrapParams) bool { return q.TAMWidth >= 2 && q.Gen.Cores == 9 }
	min = shrinkWrapped(p, widthOnly)
	if min.Gen.Cores != 9 || min.TAMWidth != 2 {
		t.Fatalf("width-only failure shrunk to cores=%d tam=%d, want 9/2", min.Gen.Cores, min.TAMWidth)
	}
}
