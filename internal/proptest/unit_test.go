package proptest

import (
	"strings"
	"testing"

	"repro/internal/ccg"
	"repro/internal/core"
	"repro/internal/rtl"
	"repro/internal/sched"
	"repro/internal/socgen"
)

func TestMaskWidths(t *testing.T) {
	if mask(3) != 0x7 {
		t.Fatalf("mask(3) = %#x", mask(3))
	}
	if mask(64) != ^uint64(0) || mask(70) != ^uint64(0) {
		t.Fatal("wide masks must saturate at 64 bits")
	}
}

func TestPathKindNames(t *testing.T) {
	if pathKind(true) != "justification" || pathKind(false) != "propagation" {
		t.Fatal("path kind names changed")
	}
}

func TestWindowApply(t *testing.T) {
	w := window{lo: 0, hi: 7}
	w, ok := w.apply(2, 5, 0, 3) // take bits 2..5 to 0..3
	if !ok || w.lo != 0 || w.hi != 3 || w.delta != -2 {
		t.Fatalf("apply: %+v ok=%v", w, ok)
	}
	if _, ok := (window{lo: 0, hi: 1}).apply(4, 7, 0, 3); ok {
		t.Fatal("disjoint slice must not keep a window")
	}
}

func TestCanonClamps(t *testing.T) {
	f, _ := preparedEval(t)
	ch := f.Chip
	name := ch.TestableCores()[0].Name
	got := canon(ch, map[string]int{name: -3})
	if got[name] != 0 {
		t.Fatalf("negative index clamps to 0, got %d", got[name])
	}
	got = canon(ch, map[string]int{name: 99})
	if got[name] != len(ch.TestableCores()[0].Versions)-1 {
		t.Fatalf("oversized index clamps to last version, got %d", got[name])
	}
}

// preparedEval returns a small evaluated chip for tamper tests.
func preparedEval(t *testing.T) (*core.Flow, *core.Evaluation) {
	t.Helper()
	ch, err := socgen.Generate(socgen.Params{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	vecs := map[string]int{}
	for _, c := range ch.Cores {
		vecs[c.Name] = 10
	}
	f, err := core.Prepare(ch, &core.Options{VectorOverride: vecs})
	if err != nil {
		t.Fatal(err)
	}
	e, err := f.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	return f, e
}

func TestCheckScheduleRejectsTampering(t *testing.T) {
	f, e := preparedEval(t)
	ch := f.Chip

	if err := checkSchedule(ch, e); err != nil {
		t.Fatalf("untampered schedule rejected: %v", err)
	}

	e.TAT++
	if err := checkSchedule(ch, e); err == nil || !strings.Contains(err.Error(), "chip TAT") {
		t.Fatalf("inflated chip TAT not caught: %v", err)
	}
	e.TAT--

	saved := e.Sched.Cores
	e.Sched.Cores = append(append([]*sched.CoreSchedule(nil), saved...), saved[0])
	if err := checkSchedule(ch, e); err == nil {
		t.Fatal("duplicated core schedule not caught")
	}
	e.Sched.Cores = saved[:len(saved)-1]
	if err := checkSchedule(ch, e); err == nil {
		t.Fatal("missing core schedule not caught")
	}
	e.Sched.Cores = saved
}

func TestCheckLaddersRejectsDisorder(t *testing.T) {
	f, _ := preparedEval(t)
	ch := f.Chip
	var mutated bool
	for _, c := range ch.TestableCores() {
		if len(c.Versions) > 1 {
			c.Versions[0], c.Versions[1] = c.Versions[1], c.Versions[0]
			mutated = true
			break
		}
	}
	if !mutated {
		t.Skip("seed produced single-version ladders only")
	}
	if err := checkLadders(ch); err == nil {
		t.Fatal("swapped ladder order not caught")
	}
}

func TestNodeWidthLookups(t *testing.T) {
	ch, err := socgen.Generate(socgen.Params{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if w := nodeWidth(ch, ccg.Node{Port: ch.PIs[0].Name}); w != ch.PIs[0].Width {
		t.Fatalf("PI width %d != %d", w, ch.PIs[0].Width)
	}
	if w := nodeWidth(ch, ccg.Node{Port: ch.POs[0].Name}); w != ch.POs[0].Width {
		t.Fatalf("PO width %d != %d", w, ch.POs[0].Width)
	}
	if nodeWidth(ch, ccg.Node{Port: "NOPE"}) != 0 {
		t.Fatal("unknown pin must report width 0")
	}
	c := ch.TestableCores()[0]
	in := c.RTL.Inputs()[0]
	if w := nodeWidth(ch, ccg.Node{Core: c.Name, Port: in.Name}); w != in.Width {
		t.Fatalf("core port width %d != %d", w, in.Width)
	}
	if nodeWidth(ch, ccg.Node{Core: "GHOST", Port: in.Name}) != 0 {
		t.Fatal("unknown core must report width 0")
	}
}

func TestShrinkPassesThroughGeneratedCoreCount(t *testing.T) {
	// Check succeeds on this seed, so Shrink finds nothing smaller that
	// fails and must return the chip's own core count.
	p := socgen.Params{Seed: 2}
	ch, err := socgen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := Shrink(p); got.Cores != len(ch.TestableCores()) {
		t.Fatalf("Shrink on a passing seed returned cores=%d, want %d", got.Cores, len(ch.TestableCores()))
	}
}

func TestRerouteDriversSplitsStraddlingConns(t *testing.T) {
	conns := []rtl.Conn{{
		From: rtl.Endpoint{Comp: "R0", Pin: "q", Lo: 0, Hi: 7},
		To:   rtl.Endpoint{Comp: "OUT", Lo: 0, Hi: 7},
	}}
	dst := rtl.Endpoint{Comp: "OUT", Lo: 2, Hi: 5}
	got := rerouteDrivers(conns, dst, "XM1")
	if len(got) != 3 {
		t.Fatalf("want 3 split conns, got %d: %v", len(got), got)
	}
	// Below, overlap into the mux, above — in order.
	if got[0].To.Comp != "OUT" || got[0].To.Lo != 0 || got[0].To.Hi != 1 || got[0].From.Lo != 0 {
		t.Fatalf("low remainder wrong: %v", got[0])
	}
	if got[1].To.Comp != "XM1" || got[1].To.Pin != "in0" || got[1].To.Lo != 0 || got[1].To.Hi != 3 || got[1].From.Lo != 2 {
		t.Fatalf("mux feed wrong: %v", got[1])
	}
	if got[2].To.Comp != "OUT" || got[2].To.Lo != 6 || got[2].To.Hi != 7 || got[2].From.Lo != 6 {
		t.Fatalf("high remainder wrong: %v", got[2])
	}
}

func TestTopologyStringUnknown(t *testing.T) {
	if s := socgen.Topology(99).String(); !strings.Contains(s, "99") {
		t.Fatalf("unknown topology prints %q", s)
	}
}

// TestCheckLargeChipSkipsEnumeration exercises the always-on battery on a
// chip whose ladder product exceeds the enumeration cap: the exhaustive
// invariants are skipped but replay and the improvement bound still run.
func TestCheckLargeChipSkipsEnumeration(t *testing.T) {
	st, err := Check(socgen.Params{Seed: 11, Cores: 10})
	if err != nil {
		t.Fatal(err)
	}
	if st.Points != 0 {
		t.Fatalf("enumeration ran (%d points) despite the ladder-product cap", st.Points)
	}
	if st.Replayed == 0 {
		t.Fatal("no path replayed on the large chip")
	}
}
