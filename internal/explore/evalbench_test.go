package explore

import "testing"

func BenchmarkEvaluate(b *testing.B) {
	f := flow(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Evaluate(); err != nil {
			b.Fatal(err)
		}
	}
}
