package explore

import "testing"

func BenchmarkEvaluate(b *testing.B) {
	f := flow(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Evaluate(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkEnumerate measures one full design-space enumeration of the
// System 1 version ladder at a fixed worker count. Compare the Serial and
// Parallel4 variants for the pool's speedup (needs >= 4 hardware threads
// to show; the result is identical either way).
func benchmarkEnumerate(b *testing.B, workers int) {
	f := flow(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := EnumerateOpts(f, Options{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if len(points) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkEnumerateSerial(b *testing.B)    { benchmarkEnumerate(b, 1) }
func BenchmarkEnumerateParallel2(b *testing.B) { benchmarkEnumerate(b, 2) }
func BenchmarkEnumerateParallel4(b *testing.B) { benchmarkEnumerate(b, 4) }

// BenchmarkEnumerateCached measures the memoized path: after the first
// iteration fills the cache, every enumeration is pure lookup.
func BenchmarkEnumerateCached(b *testing.B) {
	f := flow(b)
	cache := NewCache()
	if _, err := EnumerateOpts(f, Options{Cache: cache}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EnumerateOpts(f, Options{Cache: cache}); err != nil {
			b.Fatal(err)
		}
	}
}
