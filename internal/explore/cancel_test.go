package explore

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// Cancelling an enumeration mid-run must return promptly with a
// consistent partial point set (a prefix-by-completion of the same
// deterministic selection order, sorted the same way) and leak no worker
// goroutines.
func TestEnumerateCancellation(t *testing.T) {
	f := flow(t)
	before := runtime.NumGoroutine()

	full, err := Enumerate(f)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	want := map[string][2]int{}
	for _, p := range full {
		want[p.Label()] = [2]int{p.ChipCells, p.TAT}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	partial, err := EnumerateCtx(ctx, f, Options{Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("cancelled enumeration took %v", d)
	}
	if len(partial) >= len(full) {
		t.Errorf("pre-cancelled enumeration completed %d/%d points", len(partial), len(full))
	}
	// Whatever did complete must agree with the full run point-for-point
	// and be sorted consistently.
	lastCells, lastTAT := -1, -1
	for _, p := range partial {
		got, ok := want[p.Label()]
		if !ok || got != [2]int{p.ChipCells, p.TAT} {
			t.Errorf("partial point %s (%d cells, %d TAT) disagrees with full run %v", p.Label(), p.ChipCells, p.TAT, got)
		}
		if p.ChipCells < lastCells || (p.ChipCells == lastCells && p.TAT < lastTAT) {
			t.Errorf("partial points unsorted at %s", p.Label())
		}
		lastCells, lastTAT = p.ChipCells, p.TAT
	}
	// The partial front must be internally consistent (monotone TAT).
	front := Pareto(partial)
	best := int(^uint(0) >> 1)
	for _, p := range front {
		if p.TAT >= best {
			t.Errorf("partial Pareto front not monotone at %s", p.Label())
		}
		best = p.TAT
	}

	// A cancellation mid-run (not just pre-cancelled): cut the context off
	// after the first point lands.
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		partial2, err := EnumerateCtx(ctx2, f, Options{Workers: 2})
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("mid-run cancel err = %v", err)
		}
		for _, p := range partial2 {
			if got := want[p.Label()]; got != [2]int{p.ChipCells, p.TAT} {
				t.Errorf("mid-run partial point %s disagrees with full run", p.Label())
			}
		}
	}()
	time.Sleep(5 * time.Millisecond)
	cancel2()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled enumeration did not return within 5s")
	}

	// Workers must all have exited.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, n)
	}
}

func TestImproveCancellation(t *testing.T) {
	f := flow(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ImproveCtx(ctx, f, MinimizeTAT, 1_000_000, Options{})
	if err == nil {
		// The initial evaluation may have been cached before the ctx check;
		// a finished walk is acceptable only with a result.
		t.Skip("walk finished before the cancellation was observed")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil && res.Selection == nil && len(res.Steps) > 0 {
		t.Error("cancelled walk returned steps without a selection")
	}
}
