// Package explore implements the chip-level design-space exploration of
// Section 5: exhaustive enumeration of core-version combinations (the 18
// design points of Figure 10 and Table 1) and the iterative-improvement
// selector of Section 5.2, which replaces one core at a time with its next
// more expensive version using the cost function
//
//	C = w1 × ΔTAT + w2 × ΔA
//
// and degenerates to system-level test multiplexers when a mux becomes
// cheaper than any remaining version upgrade.
//
// Enumeration is evaluated by a bounded worker pool over the selection-pure
// core.Flow.EvaluateSelection, so the |versions|^n tree uses every CPU; the
// output is identical at any worker count. An optional Cache memoizes
// evaluations across Enumerate and Improve.
package explore

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/ccg"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/progress"
	"repro/internal/soc"
)

// Point is one evaluated design point.
type Point struct {
	Selection map[string]int // core -> version index
	ChipCells int            // chip-level DFT overhead (trans + mux + ctrl)
	TAT       int
	Eval      *core.Evaluation
}

// Label formats the selection compactly (e.g. "CPU:1 DISPLAY:3 ...").
func (p Point) Label() string {
	var names []string
	for n := range p.Selection {
		names = append(names, n)
	}
	sort.Strings(names)
	s := ""
	for _, n := range names {
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s:V%d", n, p.Selection[n]+1)
	}
	return s
}

// Options tunes the explorer.
type Options struct {
	// Workers bounds Enumerate's evaluation worker pool; <= 0 selects
	// runtime.GOMAXPROCS(0). The result is identical at any worker count.
	Workers int
	// Cache, when non-nil, memoizes evaluations. One cache serves one
	// prepared flow; share it between Enumerate and Improve so the
	// improvement walk reuses points the enumeration already visited.
	// When nil, Enumerate and Improve create a private cache so the
	// incremental delta evaluator accelerates single-core-change
	// candidates by default.
	Cache *Cache
	// MaxPoints caps how many selections Enumerate generates (<= 0 means
	// every combination). Generation order is fixed, so a capped run
	// evaluates a deterministic prefix of the full enumeration — the only
	// way to sweep a chip whose |versions|^n product is astronomical.
	MaxPoints int
	// FullEval disables the incremental delta evaluator: every cache miss
	// runs a full core.Flow.EvaluateSelection. Delta results are
	// bit-identical to full ones (proptest gates that), so this exists
	// for measurement and as an escape hatch, not for correctness.
	FullEval bool
	// First offsets the enumeration: generation starts at global index
	// First of the (MaxPoints-capped) enumeration order instead of 0.
	// The mixed-radix odometer is fast-forwarded, so a deep window costs
	// O(window), not O(First + window). Out-of-range values clamp.
	First int
	// Count limits how many selections are generated from First (<= 0
	// means through the end of the capped space). First/Count windows of
	// one enumeration tile it exactly: the concatenation of [0,k), [k,m),
	// [m,total) is the full enumeration — the shard partitioning contract.
	Count int
	// Skip, when non-nil, drops individual global indices from the window
	// without evaluating them (checkpoint resume: work finished by an
	// earlier attempt). Skipped indices appear in neither the returned
	// points nor Observer calls.
	Skip func(globalIndex int) bool
	// Observer, when non-nil, is called once per completed evaluation with
	// the point's global enumeration index, before EnumerateCtx returns.
	// It may be called concurrently from worker goroutines.
	Observer func(globalIndex int, p Point)
}

// defaultCache gives the explorer a private cache when the caller passed
// none, honoring FullEval; evaluation acceleration should not depend on
// the caller remembering to construct one.
func (o *Options) defaultCache() {
	if o.Cache != nil {
		return
	}
	if o.FullEval {
		o.Cache = NewFullCache()
	} else {
		o.Cache = NewCache()
	}
}

// Cache memoizes chip-level evaluations keyed by the canonical
// (selection, forced-mux set) signature of core.Flow.SelectionKey, and
// computes misses through an incremental delta evaluator bound to the
// flow. It is safe for concurrent use.
//
// One cache serves one prepared flow — and, unlike before, that contract
// is enforced: the cache binds to the first flow it evaluates and
// records a structural fingerprint of its chip. Reusing the cache with a
// structurally different flow (as a long-lived daemon reusing caches
// across chips would) is a loud error instead of silently wrong
// evaluations on a SelectionKey collision.
type Cache struct {
	mu    sync.Mutex
	m     map[string]*core.Evaluation
	flow  *core.Flow
	fp    uint64
	delta *core.DeltaEvaluator
	full  bool
}

// NewCache returns an empty evaluation cache; misses on the flow it
// binds to are computed incrementally where a single-core delta applies.
func NewCache() *Cache { return &Cache{m: map[string]*core.Evaluation{}} }

// NewFullCache returns a cache that memoizes but computes every miss
// with a full evaluation, never the delta path.
func NewFullCache() *Cache {
	c := NewCache()
	c.full = true
	return c
}

// Evaluate returns the memoized evaluation for the selection, computing
// and storing it on a miss. A nil cache simply evaluates. Cached
// evaluations are shared between callers, which must treat them as
// read-only.
func (c *Cache) Evaluate(f *core.Flow, sel map[string]int) (*core.Evaluation, error) {
	return c.EvaluateCtx(context.Background(), f, sel)
}

// EvaluateCtx is Evaluate honoring ctx: a cancelled evaluation returns
// ctx.Err() and stores nothing. The first call binds the cache to f; a
// later call with a structurally different flow returns an error.
func (c *Cache) EvaluateCtx(ctx context.Context, f *core.Flow, sel map[string]int) (*core.Evaluation, error) {
	if c == nil {
		return f.EvaluateSelectionCtx(ctx, sel)
	}
	key := f.SelectionKey(sel)
	c.mu.Lock()
	if c.flow == nil {
		c.flow = f
		c.fp = f.Fingerprint()
		if !c.full {
			c.delta = core.NewDeltaEvaluator(f)
		}
	} else if f != c.flow && f.Fingerprint() != c.fp {
		c.mu.Unlock()
		return nil, fmt.Errorf("explore: cache is bound to flow over chip %q (fingerprint %016x) but was asked to evaluate chip %q (%016x): one cache serves one prepared flow",
			c.flow.Chip.Name, c.fp, f.Chip.Name, f.Fingerprint())
	}
	e, ok := c.m[key]
	delta := c.delta
	sameFlow := f == c.flow
	c.mu.Unlock()
	if ok {
		obs.C("explore.cache_hits").Inc()
		return e, nil
	}
	obs.C("explore.cache_misses").Inc()
	var err error
	if delta != nil && sameFlow {
		e, err = delta.EvaluateSelectionCtx(ctx, sel)
	} else {
		// A distinct flow object with an identical fingerprint keys
		// compatibly, but the delta evaluator's bases belong to the bound
		// flow's forced-mux state — evaluate fully.
		e, err = f.EvaluateSelectionCtx(ctx, sel)
	}
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if prev, ok := c.m[key]; ok {
		e = prev // a concurrent miss stored first; keep one canonical value
	} else {
		c.m[key] = e
	}
	c.mu.Unlock()
	return e, nil
}

// Len reports how many evaluations the cache holds.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// allSelections lists core-version combinations in the fixed enumeration
// order (the first core varies slowest), stopping after max combinations
// when max > 0. A core with an empty version ladder yields no
// combinations. The combination count is computed overflow-safely, so a
// 256-core chip with a capped enumeration neither overflows nor tries to
// materialize |versions|^n maps.
func allSelections(cores []*soc.Core, max int) []map[string]int {
	return selectionsAt(cores, 0, selectionCount(cores, max))
}

// selectionsAt lists the count combinations starting at global index
// start of the fixed enumeration order. start is decomposed into
// mixed-radix odometer digits (first core most significant), so a window
// deep in the space costs O(count). The caller bounds start+count by
// selectionCount; generation also stops at the odometer's natural end.
func selectionsAt(cores []*soc.Core, start, count int) []map[string]int {
	if count <= 0 {
		return nil
	}
	idx := make([]int, len(cores))
	rem := start
	for i := len(cores) - 1; i >= 0; i-- {
		n := len(cores[i].Versions)
		if n == 0 {
			return nil
		}
		idx[i] = rem % n
		rem /= n
	}
	if rem > 0 {
		return nil // start beyond the end of the space
	}
	out := make([]map[string]int, 0, count)
	for {
		sel := make(map[string]int, len(cores))
		for i, c := range cores {
			sel[c.Name] = idx[i]
		}
		out = append(out, sel)
		if len(out) == count {
			break
		}
		k := len(cores) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < len(cores[k].Versions) {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			break
		}
	}
	return out
}

// SelectionSpace reports how many design points the flow's enumeration
// covers under a MaxPoints cap (<= 0 means uncapped) — the global index
// space that Options.First/Count windows partition.
func SelectionSpace(f *core.Flow, maxPoints int) int {
	return selectionCount(f.Chip.TestableCores(), maxPoints)
}

// selectionCount returns min(product of ladder lengths, max) without
// overflowing (max <= 0 means uncapped; 0 is returned only for an empty
// ladder somewhere).
func selectionCount(cores []*soc.Core, max int) int {
	total := 1
	for _, c := range cores {
		n := len(c.Versions)
		if n == 0 {
			return 0
		}
		if max > 0 && total > max/n {
			return max // product already exceeds the cap; stop multiplying
		}
		total *= n
	}
	if max > 0 && total > max {
		return max
	}
	return total
}

// Enumerate evaluates every combination of core versions, returning the
// points sorted by chip overhead then TAT (the x-axis ordering of
// Figure 10). Evaluation runs on a GOMAXPROCS-wide worker pool; the
// chip's own version selection is never touched.
func Enumerate(f *core.Flow) ([]Point, error) {
	return EnumerateOpts(f, Options{})
}

// EnumerateOpts is Enumerate with explicit worker-pool and cache control.
// Points, their values and their order are identical at any worker count:
// selections are generated in one deterministic order, evaluated
// selection-pure, placed by index, and sorted exactly as the serial path
// sorts.
func EnumerateOpts(f *core.Flow, o Options) ([]Point, error) {
	return EnumerateCtx(context.Background(), f, o)
}

// EnumerateCtx is EnumerateOpts honoring ctx. Cancellation is checked
// between selections and inside each evaluation; a cancelled enumeration
// returns the points completed so far — sorted exactly as a full run
// sorts, so they form a consistent (if partial) design-space sample —
// together with ctx.Err(). A panicking evaluation is recovered into an
// error instead of killing the process.
func EnumerateCtx(ctx context.Context, f *core.Flow, o Options) ([]Point, error) {
	sp := obs.Start(nil, "explore/enumerate")
	defer sp.End()
	o.defaultCache()
	cPoints := obs.C("explore.points_evaluated")
	cores := f.Chip.TestableCores()
	space := selectionCount(cores, o.MaxPoints)
	first := o.First
	if first < 0 {
		first = 0
	}
	if first > space {
		first = space
	}
	count := space - first
	if o.Count > 0 && o.Count < count {
		count = o.Count
	}
	sels := selectionsAt(cores, first, count)
	prog := progress.Start("explore/enumerate", int64(len(sels)),
		"explore.points_evaluated", "explore.cache_hits", "explore.cache_misses")
	defer prog.End()
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sels) {
		workers = len(sels)
	}
	if workers < 1 {
		workers = 1
	}
	obs.G("explore.parallel_workers").Set(int64(workers))
	points := make([]Point, len(sels))
	done := make([]bool, len(sels))
	evalAt := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				obs.C("explore.eval_panics").Inc()
				err = fmt.Errorf("explore: evaluating %v panicked: %v\n%s", sels[i], r, debug.Stack())
			}
		}()
		gi := first + i
		if o.Skip != nil && o.Skip(gi) {
			prog.Step(1)
			return nil
		}
		e, err := o.Cache.EvaluateCtx(ctx, f, sels[i])
		if err != nil {
			return err
		}
		points[i] = Point{
			Selection: sels[i],
			ChipCells: e.ChipDFTCells(),
			TAT:       e.TAT,
			Eval:      e,
		}
		done[i] = true
		cPoints.Inc()
		prog.Step(1)
		if o.Observer != nil {
			o.Observer(gi, points[i])
		}
		return nil
	}
	var firstErr error
	if workers == 1 {
		for i := range sels {
			if ctx.Err() != nil {
				break
			}
			if err := evalAt(i); err != nil {
				firstErr = err
				break
			}
		}
	} else {
		// Force the lazily built rtl name indexes into existence before
		// the pool shares them read-only.
		for _, c := range f.Chip.Cores {
			c.RTL.Lookup(c.RTL.Name)
		}
		var (
			next   atomic.Int64
			failed atomic.Bool
			wg     sync.WaitGroup
			errMu  sync.Mutex
		)
		next.Store(-1)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1))
					if i >= len(sels) || failed.Load() || ctx.Err() != nil {
						return
					}
					if err := evalAt(i); err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						failed.Store(true)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
	if cerr := ctx.Err(); cerr != nil {
		obs.C("explore.cancelled").Inc()
		return sortPoints(gather(points, done)), cerr
	}
	if firstErr != nil {
		return nil, firstErr
	}
	// Skipped indices left holes; gather is a no-op copy when none were.
	return sortPoints(gather(points, done)), nil
}

// gather keeps the completed points in selection order.
func gather(points []Point, done []bool) []Point {
	var out []Point
	for i := range points {
		if done[i] {
			out = append(out, points[i])
		}
	}
	return out
}

// sortPoints orders points by chip overhead then TAT, in place.
func sortPoints(points []Point) []Point {
	sort.Slice(points, func(i, j int) bool {
		if points[i].ChipCells != points[j].ChipCells {
			return points[i].ChipCells < points[j].ChipCells
		}
		return points[i].TAT < points[j].TAT
	})
	return points
}

// Pareto filters points to the non-dominated area/TAT front. Input order
// does not matter: the points are sorted by area then TAT into a copy
// before the scan, so unsorted or tied slices yield the same front.
func Pareto(points []Point) []Point {
	sorted := make([]Point, len(points))
	copy(sorted, points)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].ChipCells != sorted[j].ChipCells {
			return sorted[i].ChipCells < sorted[j].ChipCells
		}
		return sorted[i].TAT < sorted[j].TAT
	})
	var out []Point
	best := int(^uint(0) >> 1)
	for _, p := range sorted {
		if p.TAT < best {
			best = p.TAT
			out = append(out, p)
		}
	}
	return out
}

// MinTATPoint returns the point with the smallest TAT (ties: smaller
// area). This is Table 1's design point 17 — not necessarily the
// all-minimum-latency configuration.
func MinTATPoint(points []Point) Point {
	best := points[0]
	for _, p := range points[1:] {
		if p.TAT < best.TAT || (p.TAT == best.TAT && p.ChipCells < best.ChipCells) {
			best = p
		}
	}
	return best
}

// Objective selects which constraint drives the iterative improvement.
type Objective int

// Objectives (i) and (ii) of Section 5.
const (
	MinimizeTAT  Objective = iota // area budget given
	MinimizeArea                  // TAT budget given
)

// Step is one accepted move of the iterative improvement.
type Step struct {
	Core      string // upgraded core ("" for a test-mux insertion)
	Version   int    // new version index
	MuxOn     string // "CORE.port" when a test mux was placed
	DeltaTAT  int
	DeltaArea int
	TAT       int
	ChipCells int
}

// Result is the outcome of Improve.
type Result struct {
	Steps     []Step
	Final     *core.Evaluation
	Selection map[string]int
}

// muxFallbackCells is the cost threshold of Section 5.2: once every
// remaining version upgrade costs more than a system-level test mux, the
// mux wins.
func muxFallbackCells(f *core.Flow, coreName string) int {
	c, ok := f.Chip.CoreByName(coreName)
	if !ok {
		return 8
	}
	w := 0
	for _, p := range c.RTL.Inputs() {
		if p.Width > w {
			w = p.Width
		}
	}
	if w == 0 {
		w = 8
	}
	return w
}

// Cost is the paper's replacement cost function C = w1·ΔTAT + w2·ΔA
// (Section 5.2). The two objectives correspond to (w1=1, w2=0) and
// (w1=0, w2=1); arbitrary weights let a user bias the walk anywhere in
// between.
type Cost struct {
	W1, W2 float64
}

// Eval scores a candidate replacement.
func (c Cost) Eval(deltaTAT, deltaArea int) float64 {
	return c.W1*float64(deltaTAT) + c.W2*float64(deltaArea)
}

// candidateSteps lists each core's next-version replacement with its
// estimated ΔTAT and exact ΔA — the raw material both Candidates and the
// Improve walk rank, kept in one place so the two cannot drift.
func candidateSteps(f *core.Flow, e *core.Evaluation) []Step {
	var out []Step
	for _, c := range f.Chip.TestableCores() {
		if c.Selected+1 >= len(c.Versions) {
			continue
		}
		cur := c.Versions[c.Selected].Area
		next := c.Versions[c.Selected+1].Area
		out = append(out, Step{
			Core:      c.Name,
			Version:   c.Selected + 1,
			DeltaTAT:  estimateDeltaTAT(f, e, c),
			DeltaArea: next.Cells() - cur.Cells(),
		})
	}
	obs.C("explore.moves_proposed").Add(int64(len(out)))
	return out
}

// Candidates lists each core's next-version replacement with its
// estimated ΔTAT, its ΔA, and the weighted cost — the raw material of the
// Section 5.2 loop, exposed for callers that drive their own policy.
func Candidates(f *core.Flow, e *core.Evaluation, cost Cost) []Step {
	out := candidateSteps(f, e)
	sort.Slice(out, func(i, j int) bool {
		return cost.Eval(out[i].DeltaTAT, out[i].DeltaArea) > cost.Eval(out[j].DeltaTAT, out[j].DeltaArea)
	})
	return out
}

// Improve runs the iterative improvement from the current selection.
// For MinimizeTAT, budget is the maximum chip-level DFT overhead in
// cells; for MinimizeArea, budget is the maximum TAT in cycles.
func Improve(f *core.Flow, obj Objective, budget int) (*Result, error) {
	return ImproveOpts(f, obj, budget, Options{})
}

// ImproveOpts is Improve with an optional evaluation cache (Workers is
// ignored; the walk is inherently sequential). Every accepted move
// strictly reduces the TAT — candidates whose estimated gain does not
// materialize are rejected, never applied.
func ImproveOpts(f *core.Flow, obj Objective, budget int, o Options) (*Result, error) {
	return ImproveCtx(context.Background(), f, obj, budget, o)
}

// ImproveCtx is ImproveOpts honoring ctx: cancellation is checked before
// each improvement move and inside each evaluation. A cancelled walk
// returns the moves accepted so far (a valid, if unfinished, improvement
// trajectory — the flow's selection reflects every accepted move) together
// with ctx.Err().
func ImproveCtx(ctx context.Context, f *core.Flow, obj Objective, budget int, o Options) (*Result, error) {
	root := obs.Start(nil, "explore/improve")
	defer root.End()
	o.defaultCache()
	prog := progress.Start("explore/improve", 0,
		"explore.moves_accepted", "explore.moves_rejected", "explore.cache_hits", "explore.cache_misses")
	defer prog.End()
	cAccepted := obs.C("explore.moves_accepted")
	cRejected := obs.C("explore.moves_rejected")
	e, err := o.Cache.EvaluateCtx(ctx, f, f.CurrentSelection())
	if err != nil {
		return nil, err
	}
	res := &Result{Final: e}
	// iterate is one improvement move; it reports stop=true when the walk
	// is finished. The closure keeps the per-iteration span balanced over
	// the many exit paths.
	iterate := func() (stop bool, err error) {
		it := obs.Start(root, "explore/iter")
		defer it.End()
		obs.C("explore.iterations").Inc()
		if obj == MinimizeArea && e.TAT <= budget {
			return true, nil // TAT constraint met
		}
		// Candidate upgrades that promise a TAT gain (and, under an area
		// budget, still fit it), best first per the objective's weighting.
		var cands []Step
		for _, c := range candidateSteps(f, e) {
			if c.DeltaTAT <= 0 {
				continue
			}
			if obj == MinimizeTAT && e.ChipDFTCells()+c.DeltaArea > budget {
				continue
			}
			cands = append(cands, c)
		}
		switch obj {
		case MinimizeTAT:
			// w1=1, w2=0: largest TAT improvement first.
			sort.SliceStable(cands, func(i, j int) bool { return cands[i].DeltaTAT > cands[j].DeltaTAT })
		case MinimizeArea:
			// w1=0, w2=1: cheapest upgrade first.
			sort.SliceStable(cands, func(i, j int) bool { return cands[i].DeltaArea < cands[j].DeltaArea })
		}
		// Section 5.2 fallback: when the best upgrade is pricier than a
		// system-level test mux (or nothing is left), mux the most
		// critical input of the core dominating the TAT.
		if len(cands) == 0 || cands[0].DeltaArea > muxFallbackCells(f, cands[0].Core) {
			step, ok, err := placeCriticalMux(f, e)
			if err != nil {
				return true, err
			}
			if !ok && len(cands) == 0 {
				return true, nil // nothing left to do
			}
			if ok {
				e2, err := o.Cache.EvaluateCtx(ctx, f, f.CurrentSelection())
				if err != nil {
					return true, err
				}
				overBudget := obj == MinimizeTAT && e2.ChipDFTCells() > budget
				if e2.TAT >= e.TAT || overBudget {
					// The mux made nothing better (or blew the budget):
					// take it back and fall through to the upgrades.
					f.ForcedMuxes = f.ForcedMuxes[:len(f.ForcedMuxes)-1]
					cRejected.Inc()
				} else {
					step.DeltaTAT = e.TAT - e2.TAT
					step.TAT = e2.TAT
					step.ChipCells = e2.ChipDFTCells()
					res.Steps = append(res.Steps, step)
					cAccepted.Inc()
					e = e2
					res.Final = e
					return false, nil
				}
			}
		}
		// Try upgrades best-estimate first and accept the first one that
		// actually improves the TAT; the estimate is a heuristic, so a
		// move that fails to improve is rejected, not applied.
		for _, c := range cands {
			trial := f.CurrentSelection()
			trial[c.Core] = c.Version
			e2, err := o.Cache.EvaluateCtx(ctx, f, trial)
			if err != nil {
				return true, err
			}
			if e2.TAT >= e.TAT || (obj == MinimizeTAT && e2.ChipDFTCells() > budget) {
				cRejected.Inc()
				continue
			}
			f.SelectVersions(map[string]int{c.Core: c.Version})
			res.Steps = append(res.Steps, Step{
				Core:      c.Core,
				Version:   c.Version,
				DeltaTAT:  e.TAT - e2.TAT,
				DeltaArea: c.DeltaArea,
				TAT:       e2.TAT,
				ChipCells: e2.ChipDFTCells(),
			})
			cAccepted.Inc()
			e = e2
			res.Final = e
			return false, nil
		}
		return true, nil
	}
	for iter := 0; iter < 64; iter++ {
		if ctx.Err() != nil {
			break
		}
		prog.Step(1)
		stop, err := iterate()
		if err != nil {
			if ctx.Err() != nil {
				break
			}
			return nil, err
		}
		if stop {
			break
		}
	}
	res.Selection = f.CurrentSelection()
	res.Final = e
	if cerr := ctx.Err(); cerr != nil {
		obs.C("explore.cancelled").Inc()
		return res, cerr
	}
	return res, nil
}

// estimateDeltaTAT applies the paper's latency-number heuristic: count how
// often each transparency edge of the core is used in the current
// schedule, weight by the edge latency, and compare against the next
// version's latency for the same input/output pair.
func estimateDeltaTAT(f *core.Flow, e *core.Evaluation, c *soc.Core) int {
	usage := map[[2]string]int{}
	countPath := func(p []ccg.Step) {
		for _, s := range p {
			if s.Edge.Kind != ccg.Trans {
				continue
			}
			from := e.Graph.Nodes[s.Edge.From]
			to := e.Graph.Nodes[s.Edge.To]
			if from.Core != c.Name {
				continue
			}
			usage[[2]string{from.Port, to.Port}]++
		}
	}
	for _, cs := range e.Sched.Cores {
		for _, in := range cs.Inputs {
			if in.Path != nil {
				countPath(in.Path.Steps)
			}
		}
		for _, out := range cs.Outputs {
			if out.Path != nil {
				countPath(out.Path.Steps)
			}
		}
	}
	return latencyDelta(usage, pairLatencies(c, c.Selected), pairLatencies(c, c.Selected+1))
}

// latencyDelta weighs per-pair usage counts against the current and next
// latency tables. A pair absent from either table is skipped: with no
// current latency there is nothing to improve, and a pair that disappears
// in the next version cannot be assumed to have gotten faster.
func latencyDelta(usage, cur, next map[[2]string]int) int {
	delta := 0
	for pair, n := range usage {
		c, ok1 := cur[pair]
		nx, ok2 := next[pair]
		if !ok1 || !ok2 {
			continue
		}
		delta += n * (c - nx)
	}
	return delta
}

func pairLatencies(c *soc.Core, idx int) map[[2]string]int {
	out := map[[2]string]int{}
	if idx < 0 || idx >= len(c.Versions) {
		return out
	}
	v := c.Versions[idx]
	for _, p := range v.JustPairs() {
		key := [2]string{p.In, p.Out}
		if cur, ok := out[key]; !ok || p.Latency < cur {
			out[key] = p.Latency
		}
	}
	for _, p := range v.PropPairs() {
		key := [2]string{p.In, p.Out}
		if cur, ok := out[key]; !ok || p.Latency < cur {
			out[key] = p.Latency
		}
	}
	return out
}

// placeCriticalMux adds a forced test mux on the most critical input of
// the core contributing the most to the global TAT.
func placeCriticalMux(f *core.Flow, e *core.Evaluation) (Step, bool, error) {
	var worst *struct {
		core string
		port string
	}
	worstTAT, worstArr := -1, -1
	for _, cs := range e.Sched.Cores {
		if cs.TAT < worstTAT {
			continue
		}
		for _, in := range cs.Inputs {
			if in.AddedMux {
				continue // already muxed
			}
			if cs.TAT > worstTAT || in.Arrival > worstArr {
				worstTAT, worstArr = cs.TAT, in.Arrival
				worst = &struct {
					core string
					port string
				}{cs.Core, in.Port}
			}
		}
	}
	if worst == nil || worstArr <= 1 {
		return Step{}, false, nil
	}
	for _, fm := range f.ForcedMuxes {
		if fm.Core == worst.core && fm.Port == worst.port {
			return Step{}, false, nil // already placed
		}
	}
	f.ForcedMuxes = append(f.ForcedMuxes, core.ForcedMux{Core: worst.core, Port: worst.port, Input: true})
	return Step{MuxOn: worst.core + "." + worst.port}, true, nil
}
