// Package explore implements the chip-level design-space exploration of
// Section 5: exhaustive enumeration of core-version combinations (the 18
// design points of Figure 10 and Table 1) and the iterative-improvement
// selector of Section 5.2, which replaces one core at a time with its next
// more expensive version using the cost function
//
//	C = w1 × ΔTAT + w2 × ΔA
//
// and degenerates to system-level test multiplexers when a mux becomes
// cheaper than any remaining version upgrade.
package explore

import (
	"fmt"
	"sort"

	"repro/internal/ccg"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/soc"
)

// Point is one evaluated design point.
type Point struct {
	Selection map[string]int // core -> version index
	ChipCells int            // chip-level DFT overhead (trans + mux + ctrl)
	TAT       int
	Eval      *core.Evaluation
}

// Label formats the selection compactly (e.g. "CPU:1 DISPLAY:3 ...").
func (p Point) Label() string {
	var names []string
	for n := range p.Selection {
		names = append(names, n)
	}
	sort.Strings(names)
	s := ""
	for _, n := range names {
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s:V%d", n, p.Selection[n]+1)
	}
	return s
}

// Enumerate evaluates every combination of core versions, returning the
// points sorted by chip overhead then TAT (the x-axis ordering of
// Figure 10).
func Enumerate(f *core.Flow) ([]Point, error) {
	sp := obs.Start(nil, "explore/enumerate")
	defer sp.End()
	cPoints := obs.C("explore.points_evaluated")
	cores := f.Chip.TestableCores()
	var points []Point
	sel := map[string]int{}
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(cores) {
			chosen := map[string]int{}
			for k, v := range sel {
				chosen[k] = v
			}
			f.SelectVersions(chosen)
			e, err := f.Evaluate()
			if err != nil {
				return err
			}
			points = append(points, Point{
				Selection: chosen,
				ChipCells: e.ChipDFTCells(),
				TAT:       e.TAT,
				Eval:      e,
			})
			cPoints.Inc()
			return nil
		}
		c := cores[i]
		for v := 0; v < len(c.Versions); v++ {
			sel[c.Name] = v
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].ChipCells != points[j].ChipCells {
			return points[i].ChipCells < points[j].ChipCells
		}
		return points[i].TAT < points[j].TAT
	})
	return points, nil
}

// Pareto filters points to the non-dominated area/TAT front.
func Pareto(points []Point) []Point {
	var out []Point
	best := int(^uint(0) >> 1)
	for _, p := range points { // already sorted by area asc
		if p.TAT < best {
			best = p.TAT
			out = append(out, p)
		}
	}
	return out
}

// MinTATPoint returns the point with the smallest TAT (ties: smaller
// area). This is Table 1's design point 17 — not necessarily the
// all-minimum-latency configuration.
func MinTATPoint(points []Point) Point {
	best := points[0]
	for _, p := range points[1:] {
		if p.TAT < best.TAT || (p.TAT == best.TAT && p.ChipCells < best.ChipCells) {
			best = p
		}
	}
	return best
}

// Objective selects which constraint drives the iterative improvement.
type Objective int

// Objectives (i) and (ii) of Section 5.
const (
	MinimizeTAT  Objective = iota // area budget given
	MinimizeArea                  // TAT budget given
)

// Step is one accepted move of the iterative improvement.
type Step struct {
	Core      string // upgraded core ("" for a test-mux insertion)
	Version   int    // new version index
	MuxOn     string // "CORE.port" when a test mux was placed
	DeltaTAT  int
	DeltaArea int
	TAT       int
	ChipCells int
}

// Result is the outcome of Improve.
type Result struct {
	Steps     []Step
	Final     *core.Evaluation
	Selection map[string]int
}

// muxFallbackCells is the cost threshold of Section 5.2: once every
// remaining version upgrade costs more than a system-level test mux, the
// mux wins.
func muxFallbackCells(f *core.Flow, coreName string) int {
	c, ok := f.Chip.CoreByName(coreName)
	if !ok {
		return 8
	}
	w := 0
	for _, p := range c.RTL.Inputs() {
		if p.Width > w {
			w = p.Width
		}
	}
	if w == 0 {
		w = 8
	}
	return w
}

// Cost is the paper's replacement cost function C = w1·ΔTAT + w2·ΔA
// (Section 5.2). The two objectives correspond to (w1=1, w2=0) and
// (w1=0, w2=1); arbitrary weights let a user bias the walk anywhere in
// between.
type Cost struct {
	W1, W2 float64
}

// Eval scores a candidate replacement.
func (c Cost) Eval(deltaTAT, deltaArea int) float64 {
	return c.W1*float64(deltaTAT) + c.W2*float64(deltaArea)
}

// Candidates lists each core's next-version replacement with its
// estimated ΔTAT, its ΔA, and the weighted cost — the raw material of the
// Section 5.2 loop, exposed for callers that drive their own policy.
func Candidates(f *core.Flow, e *core.Evaluation, cost Cost) []Step {
	var out []Step
	for _, c := range f.Chip.TestableCores() {
		if c.Selected+1 >= len(c.Versions) {
			continue
		}
		dTAT := estimateDeltaTAT(f, e, c)
		cur := c.Versions[c.Selected].Area
		next := c.Versions[c.Selected+1].Area
		out = append(out, Step{
			Core:      c.Name,
			Version:   c.Selected + 1,
			DeltaTAT:  dTAT,
			DeltaArea: next.Cells() - cur.Cells(),
		})
	}
	obs.C("explore.moves_proposed").Add(int64(len(out)))
	sort.Slice(out, func(i, j int) bool {
		return cost.Eval(out[i].DeltaTAT, out[i].DeltaArea) > cost.Eval(out[j].DeltaTAT, out[j].DeltaArea)
	})
	return out
}

// Improve runs the iterative improvement from the current selection.
// For MinimizeTAT, budget is the maximum chip-level DFT overhead in
// cells; for MinimizeArea, budget is the maximum TAT in cycles.
func Improve(f *core.Flow, obj Objective, budget int) (*Result, error) {
	root := obs.Start(nil, "explore/improve")
	defer root.End()
	cProposed := obs.C("explore.moves_proposed")
	cAccepted := obs.C("explore.moves_accepted")
	cRejected := obs.C("explore.moves_rejected")
	e, err := f.Evaluate()
	if err != nil {
		return nil, err
	}
	res := &Result{Final: e}
	// iterate is one improvement move; it reports stop=true when the walk
	// is finished. The closure keeps the per-iteration span balanced over
	// the many exit paths.
	iterate := func() (stop bool, err error) {
		it := obs.Start(root, "explore/iter")
		defer it.End()
		obs.C("explore.iterations").Inc()
		if obj == MinimizeArea && e.TAT <= budget {
			return true, nil // TAT constraint met
		}
		type cand struct {
			core      string
			version   int
			deltaTAT  int
			deltaArea int
		}
		var cands []cand
		for _, c := range f.Chip.TestableCores() {
			if c.Selected+1 >= len(c.Versions) {
				continue
			}
			dTAT := estimateDeltaTAT(f, e, c)
			cur := c.Versions[c.Selected].Area
			next := c.Versions[c.Selected+1].Area
			cands = append(cands, cand{
				core:      c.Name,
				version:   c.Selected + 1,
				deltaTAT:  dTAT,
				deltaArea: next.Cells() - cur.Cells(),
			})
		}
		cProposed.Add(int64(len(cands)))
		var pick *cand
		switch obj {
		case MinimizeTAT:
			// w1=1, w2=0: take the largest TAT improvement whose area
			// still fits the budget.
			for i := range cands {
				c := &cands[i]
				if e.ChipDFTCells()+c.deltaArea > budget {
					continue
				}
				if pick == nil || c.deltaTAT > pick.deltaTAT {
					pick = c
				}
			}
		case MinimizeArea:
			// w1=0, w2=1: cheapest upgrade that still improves TAT.
			for i := range cands {
				c := &cands[i]
				if c.deltaTAT <= 0 {
					continue
				}
				if pick == nil || c.deltaArea < pick.deltaArea {
					pick = c
				}
			}
		}
		// Section 5.2 fallback: when the best upgrade is pricier than a
		// system-level test mux (or nothing is left), mux the most
		// critical input of the core dominating the TAT.
		if pick == nil || (pick.deltaTAT > 0 && pick.deltaArea > muxFallbackCells(f, pick.core)) {
			step, ok, err := placeCriticalMux(f, e)
			if err != nil {
				return true, err
			}
			if !ok && pick == nil {
				return true, nil // nothing left to do
			}
			if ok {
				e2, err := f.Evaluate()
				if err != nil {
					return true, err
				}
				if e2.TAT >= e.TAT && pick != nil {
					// Mux did not help; fall through to the upgrade.
					f.ForcedMuxes = f.ForcedMuxes[:len(f.ForcedMuxes)-1]
					cRejected.Inc()
				} else {
					step.TAT = e2.TAT
					step.ChipCells = e2.ChipDFTCells()
					if obj == MinimizeTAT && step.ChipCells > budget {
						f.ForcedMuxes = f.ForcedMuxes[:len(f.ForcedMuxes)-1]
						cRejected.Inc()
						return true, nil
					}
					res.Steps = append(res.Steps, step)
					cAccepted.Inc()
					e = e2
					res.Final = e
					return false, nil
				}
			}
		}
		if pick == nil {
			return true, nil
		}
		f.SelectVersions(map[string]int{pick.core: pick.version})
		e2, err := f.Evaluate()
		if err != nil {
			return true, err
		}
		if obj == MinimizeTAT && e2.ChipDFTCells() > budget {
			// Undo and stop: the budget is exhausted.
			f.SelectVersions(map[string]int{pick.core: pick.version - 1})
			cRejected.Inc()
			return true, nil
		}
		res.Steps = append(res.Steps, Step{
			Core:      pick.core,
			Version:   pick.version,
			DeltaTAT:  e.TAT - e2.TAT,
			DeltaArea: pick.deltaArea,
			TAT:       e2.TAT,
			ChipCells: e2.ChipDFTCells(),
		})
		cAccepted.Inc()
		e = e2
		res.Final = e
		return false, nil
	}
	for iter := 0; iter < 64; iter++ {
		stop, err := iterate()
		if err != nil {
			return nil, err
		}
		if stop {
			break
		}
	}
	res.Selection = map[string]int{}
	for _, c := range f.Chip.TestableCores() {
		res.Selection[c.Name] = c.Selected
	}
	res.Final = e
	return res, nil
}

// estimateDeltaTAT applies the paper's latency-number heuristic: count how
// often each transparency edge of the core is used in the current
// schedule, weight by the edge latency, and compare against the next
// version's latency for the same input/output pair.
func estimateDeltaTAT(f *core.Flow, e *core.Evaluation, c *soc.Core) int {
	curLat := pairLatencies(c, c.Selected)
	nextLat := pairLatencies(c, c.Selected+1)
	usage := map[[2]string]int{}
	countPath := func(p []ccg.Step) {
		for _, s := range p {
			if s.Edge.Kind != ccg.Trans {
				continue
			}
			from := e.Graph.Nodes[s.Edge.From]
			to := e.Graph.Nodes[s.Edge.To]
			if from.Core != c.Name {
				continue
			}
			usage[[2]string{from.Port, to.Port}]++
		}
	}
	for _, cs := range e.Sched.Cores {
		for _, in := range cs.Inputs {
			if in.Path != nil {
				countPath(in.Path.Steps)
			}
		}
		for _, out := range cs.Outputs {
			if out.Path != nil {
				countPath(out.Path.Steps)
			}
		}
	}
	delta := 0
	for pair, n := range usage {
		cur, ok1 := curLat[pair]
		next, ok2 := nextLat[pair]
		if !ok1 {
			continue
		}
		if !ok2 {
			next = 1 // upgraded versions only get faster
		}
		delta += n * (cur - next)
	}
	return delta
}

func pairLatencies(c *soc.Core, idx int) map[[2]string]int {
	out := map[[2]string]int{}
	if idx < 0 || idx >= len(c.Versions) {
		return out
	}
	v := c.Versions[idx]
	for _, p := range v.JustPairs() {
		key := [2]string{p.In, p.Out}
		if cur, ok := out[key]; !ok || p.Latency < cur {
			out[key] = p.Latency
		}
	}
	for _, p := range v.PropPairs() {
		key := [2]string{p.In, p.Out}
		if cur, ok := out[key]; !ok || p.Latency < cur {
			out[key] = p.Latency
		}
	}
	return out
}

// placeCriticalMux adds a forced test mux on the most critical input of
// the core contributing the most to the global TAT.
func placeCriticalMux(f *core.Flow, e *core.Evaluation) (Step, bool, error) {
	var worst *struct {
		core string
		port string
	}
	worstTAT, worstArr := -1, -1
	for _, cs := range e.Sched.Cores {
		if cs.TAT < worstTAT {
			continue
		}
		for _, in := range cs.Inputs {
			if in.AddedMux {
				continue // already muxed
			}
			if cs.TAT > worstTAT || in.Arrival > worstArr {
				worstTAT, worstArr = cs.TAT, in.Arrival
				worst = &struct {
					core string
					port string
				}{cs.Core, in.Port}
			}
		}
	}
	if worst == nil || worstArr <= 1 {
		return Step{}, false, nil
	}
	for _, fm := range f.ForcedMuxes {
		if fm.Core == worst.core && fm.Port == worst.port {
			return Step{}, false, nil // already placed
		}
	}
	f.ForcedMuxes = append(f.ForcedMuxes, core.ForcedMux{Core: worst.core, Port: worst.port, Input: true})
	return Step{MuxOn: worst.core + "." + worst.port}, true, nil
}
