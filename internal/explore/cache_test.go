package explore

// One cache serves one prepared flow: selection keys and cached delta
// bases are only meaningful against the flow that produced them, so a
// cache must loudly refuse a structurally different flow instead of
// silently serving stale evaluations (the old behaviour). A re-prepared
// flow over the same chip structure is fine — the fingerprint proves key
// compatibility — it just doesn't get the other flow's delta bases.

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/socgen"
	"repro/internal/systems"
)

func TestCacheRejectsDifferentFlow(t *testing.T) {
	f1 := flow(t)
	ch, err := socgen.Generate(socgen.Params{Seed: 5, Cores: 6, Topology: socgen.Chain})
	if err != nil {
		t.Fatalf("socgen: %v", err)
	}
	vecs := map[string]int{}
	for i, c := range ch.Cores {
		vecs[c.Name] = 8 + i
	}
	f2, err := core.Prepare(ch, &core.Options{VectorOverride: vecs})
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}

	c := NewCache()
	if _, err := c.Evaluate(f1, f1.CurrentSelection()); err != nil {
		t.Fatalf("binding evaluation: %v", err)
	}
	_, err = c.Evaluate(f2, f2.CurrentSelection())
	if err == nil {
		t.Fatal("cache accepted a structurally different flow; one cache must serve one prepared flow")
	}
	for _, want := range []string{f1.Chip.Name, f2.Chip.Name, "one cache serves one prepared flow"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("mismatch error %q does not mention %q", err, want)
		}
	}
	// The bound flow keeps working after the rejection.
	if _, err := c.Evaluate(f1, f1.CurrentSelection()); err != nil {
		t.Fatalf("bound flow rejected after mismatch: %v", err)
	}
}

func TestCacheAcceptsReprepairedEquivalentFlow(t *testing.T) {
	f1 := flow(t)
	// A fresh Prepare over the same chip structure: different pointer,
	// same fingerprint, so keys are compatible and evaluations must agree.
	f2, err := core.Prepare(systems.System1(), nil)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	reset(f2)
	if f1.Fingerprint() != f2.Fingerprint() {
		t.Fatal("two Prepares of the same system disagree on the fingerprint")
	}
	c := NewCache()
	e1, err := c.Evaluate(f1, f1.CurrentSelection())
	if err != nil {
		t.Fatal(err)
	}
	e2, err := c.Evaluate(f2, f2.CurrentSelection())
	if err != nil {
		t.Fatalf("equivalent re-prepared flow rejected: %v", err)
	}
	if e1 != e2 {
		t.Error("same selection over fingerprint-equal flows missed the cache")
	}
}
