package explore

import (
	"testing"

	"repro/internal/core"
	"repro/internal/systems"
)

// The flow is expensive (full ATPG); share one across the test binary and
// reset the selection in each test.
var shared *core.Flow

func flow(t testing.TB) *core.Flow {
	t.Helper()
	if shared == nil {
		f, err := core.Prepare(systems.System1(), nil)
		if err != nil {
			t.Fatalf("Prepare: %v", err)
		}
		shared = f
	}
	reset(shared)
	return shared
}

func reset(f *core.Flow) {
	sel := map[string]int{}
	for _, c := range f.Chip.TestableCores() {
		sel[c.Name] = 0
	}
	f.SelectVersions(sel)
	f.ForcedMuxes = nil
}

func TestEnumerateDesignSpace(t *testing.T) {
	f := flow(t)
	points, err := Enumerate(f)
	if err != nil {
		t.Fatal(err)
	}
	want := 1
	for _, c := range f.Chip.TestableCores() {
		want *= len(c.Versions)
	}
	if len(points) != want {
		t.Fatalf("enumerated %d points, want %d", len(points), want)
	}
	// Figure 10's qualitative shape: the cheapest point is the slowest,
	// and some more expensive point is much faster.
	first, last := points[0], points[len(points)-1]
	if first.ChipCells > last.ChipCells {
		t.Error("points not sorted by area")
	}
	minTAT := MinTATPoint(points)
	if minTAT.TAT >= first.TAT {
		t.Errorf("min TAT %d should beat the min-area point's TAT %d", minTAT.TAT, first.TAT)
	}
	// The paper reports ~4.5x between design points 1 and 18; demand at
	// least 2x on our substrate.
	if first.TAT < 2*minTAT.TAT {
		t.Errorf("TAT range too flat: min-area %d vs min-TAT %d", first.TAT, minTAT.TAT)
	}
}

func TestParetoFrontMonotone(t *testing.T) {
	f := flow(t)
	points, err := Enumerate(f)
	if err != nil {
		t.Fatal(err)
	}
	front := Pareto(points)
	if len(front) < 2 {
		t.Fatalf("Pareto front has %d points", len(front))
	}
	for i := 1; i < len(front); i++ {
		if front[i].TAT >= front[i-1].TAT {
			t.Errorf("front not strictly improving: %d then %d", front[i-1].TAT, front[i].TAT)
		}
		if front[i].ChipCells < front[i-1].ChipCells {
			t.Errorf("front not sorted by area")
		}
	}
}

// Table 1's headline effect: the all-minimum-latency configuration is not
// necessarily the minimum-TAT configuration (design point 17 vs 18).
func TestMinLatencyNotAlwaysMinTAT(t *testing.T) {
	f := flow(t)
	points, err := Enumerate(f)
	if err != nil {
		t.Fatal(err)
	}
	minTAT := MinTATPoint(points)
	var allFast Point
	found := false
	for _, p := range points {
		fast := true
		for _, c := range f.Chip.TestableCores() {
			if p.Selection[c.Name] != len(c.Versions)-1 {
				fast = false
			}
		}
		if fast {
			allFast = p
			found = true
		}
	}
	if !found {
		t.Fatal("all-minimum-latency point missing")
	}
	if minTAT.TAT > allFast.TAT {
		t.Errorf("MinTATPoint %d worse than all-fast %d", minTAT.TAT, allFast.TAT)
	}
	t.Logf("min-TAT point %s TAT=%d vs all-fast %s TAT=%d",
		minTAT.Label(), minTAT.TAT, allFast.Label(), allFast.TAT)
}

func TestImproveMinimizeTAT(t *testing.T) {
	f := flow(t)
	e0, err := f.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Improve(f, MinimizeTAT, e0.ChipDFTCells()+200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.TAT >= e0.TAT {
		t.Errorf("improvement did not reduce TAT: %d -> %d", e0.TAT, res.Final.TAT)
	}
	if res.Final.ChipDFTCells() > e0.ChipDFTCells()+200 {
		t.Errorf("area budget violated: %d > %d", res.Final.ChipDFTCells(), e0.ChipDFTCells()+200)
	}
	if len(res.Steps) == 0 {
		t.Error("no improvement steps recorded")
	}
}

func TestImproveMinimizeArea(t *testing.T) {
	f := flow(t)
	e0, err := f.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	// Ask for a TAT halfway between min-area and zero: the selector should
	// meet it with a modest area increase.
	target := e0.TAT * 2 / 3
	res, err := Improve(f, MinimizeArea, target)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.TAT > target {
		t.Errorf("TAT target missed: %d > %d", res.Final.TAT, target)
	}
	// Every step should have been productive.
	for _, s := range res.Steps {
		if s.Core != "" && s.DeltaTAT < 0 {
			t.Errorf("step %+v increased TAT", s)
		}
	}
}

func TestTightBudgetKeepsMinArea(t *testing.T) {
	f := flow(t)
	e0, err := f.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Improve(f, MinimizeTAT, e0.ChipDFTCells())
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.ChipDFTCells() > e0.ChipDFTCells() {
		t.Errorf("zero headroom budget exceeded: %d > %d", res.Final.ChipDFTCells(), e0.ChipDFTCells())
	}
}

func TestCandidatesCostOrdering(t *testing.T) {
	f := flow(t)
	e, err := f.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	// Objective (i) weighting: sorted by TAT improvement.
	byTAT := Candidates(f, e, Cost{W1: 1, W2: 0})
	for i := 1; i < len(byTAT); i++ {
		if byTAT[i].DeltaTAT > byTAT[i-1].DeltaTAT {
			t.Errorf("w1=1 ordering broken at %d", i)
		}
	}
	// Objective (ii) weighting: sorted by (negated) area growth — the
	// cheapest upgrade scores highest under C = -ΔA... the paper picks the
	// *minimum* C with positive ΔTAT; with W2=-1 the sort surfaces it.
	byArea := Candidates(f, e, Cost{W1: 0, W2: -1})
	for i := 1; i < len(byArea); i++ {
		if byArea[i].DeltaArea < byArea[i-1].DeltaArea {
			t.Errorf("area ordering broken at %d", i)
		}
	}
	if len(byTAT) == 0 {
		t.Fatal("no candidates at the min-area selection")
	}
	// The estimate must see the biggest win where the schedule leans
	// hardest; flipping that core really reduces TAT.
	pick := byTAT[0]
	f.SelectVersions(map[string]int{pick.Core: pick.Version})
	e2, err := f.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if pick.DeltaTAT > 0 && e2.TAT >= e.TAT {
		t.Errorf("estimated ΔTAT %d for %s but actual TAT %d -> %d", pick.DeltaTAT, pick.Core, e.TAT, e2.TAT)
	}
}
