package explore

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rtl"
	"repro/internal/soc"
	"repro/internal/systems"
	"repro/internal/trans"
)

// The flow is expensive (full ATPG); share one across the test binary and
// reset the selection in each test.
var shared *core.Flow

func flow(t testing.TB) *core.Flow {
	t.Helper()
	if shared == nil {
		f, err := core.Prepare(systems.System1(), nil)
		if err != nil {
			t.Fatalf("Prepare: %v", err)
		}
		shared = f
	}
	reset(shared)
	return shared
}

func reset(f *core.Flow) {
	sel := map[string]int{}
	for _, c := range f.Chip.TestableCores() {
		sel[c.Name] = 0
	}
	f.SelectVersions(sel)
	f.ForcedMuxes = nil
}

func TestEnumerateDesignSpace(t *testing.T) {
	f := flow(t)
	points, err := Enumerate(f)
	if err != nil {
		t.Fatal(err)
	}
	want := 1
	for _, c := range f.Chip.TestableCores() {
		want *= len(c.Versions)
	}
	if len(points) != want {
		t.Fatalf("enumerated %d points, want %d", len(points), want)
	}
	// Figure 10's qualitative shape: the cheapest point is the slowest,
	// and some more expensive point is much faster.
	first, last := points[0], points[len(points)-1]
	if first.ChipCells > last.ChipCells {
		t.Error("points not sorted by area")
	}
	minTAT := MinTATPoint(points)
	if minTAT.TAT >= first.TAT {
		t.Errorf("min TAT %d should beat the min-area point's TAT %d", minTAT.TAT, first.TAT)
	}
	// The paper reports ~4.5x between design points 1 and 18; demand at
	// least 2x on our substrate.
	if first.TAT < 2*minTAT.TAT {
		t.Errorf("TAT range too flat: min-area %d vs min-TAT %d", first.TAT, minTAT.TAT)
	}
}

func TestParetoFrontMonotone(t *testing.T) {
	f := flow(t)
	points, err := Enumerate(f)
	if err != nil {
		t.Fatal(err)
	}
	front := Pareto(points)
	if len(front) < 2 {
		t.Fatalf("Pareto front has %d points", len(front))
	}
	for i := 1; i < len(front); i++ {
		if front[i].TAT >= front[i-1].TAT {
			t.Errorf("front not strictly improving: %d then %d", front[i-1].TAT, front[i].TAT)
		}
		if front[i].ChipCells < front[i-1].ChipCells {
			t.Errorf("front not sorted by area")
		}
	}
}

// Table 1's headline effect: the all-minimum-latency configuration is not
// necessarily the minimum-TAT configuration (design point 17 vs 18).
func TestMinLatencyNotAlwaysMinTAT(t *testing.T) {
	f := flow(t)
	points, err := Enumerate(f)
	if err != nil {
		t.Fatal(err)
	}
	minTAT := MinTATPoint(points)
	var allFast Point
	found := false
	for _, p := range points {
		fast := true
		for _, c := range f.Chip.TestableCores() {
			if p.Selection[c.Name] != len(c.Versions)-1 {
				fast = false
			}
		}
		if fast {
			allFast = p
			found = true
		}
	}
	if !found {
		t.Fatal("all-minimum-latency point missing")
	}
	if minTAT.TAT > allFast.TAT {
		t.Errorf("MinTATPoint %d worse than all-fast %d", minTAT.TAT, allFast.TAT)
	}
	t.Logf("min-TAT point %s TAT=%d vs all-fast %s TAT=%d",
		minTAT.Label(), minTAT.TAT, allFast.Label(), allFast.TAT)
}

// samePoints asserts two enumerations are identical: same length, same
// order, and every per-point number equal.
func samePoints(t *testing.T, want, got []Point) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("point count differs: %d vs %d", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Label() != g.Label() || w.ChipCells != g.ChipCells || w.TAT != g.TAT {
			t.Fatalf("point %d differs: %s (%d cells, TAT %d) vs %s (%d cells, TAT %d)",
				i, w.Label(), w.ChipCells, w.TAT, g.Label(), g.ChipCells, g.TAT)
		}
		if w.Eval.ChipDFTCells() != g.Eval.ChipDFTCells() || w.Eval.TAT != g.Eval.TAT ||
			w.Eval.TransCells != g.Eval.TransCells || w.Eval.MuxCells != g.Eval.MuxCells ||
			w.Eval.CtrlCells != g.Eval.CtrlCells || w.Eval.BISTCycles != g.Eval.BISTCycles {
			t.Fatalf("point %d evaluation differs", i)
		}
	}
}

// The parallel worker pool must produce bit-identical, identically
// ordered points to the serial path at any worker count.
func TestEnumerateParallelMatchesSerial(t *testing.T) {
	f := flow(t)
	serial, err := EnumerateOpts(f, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := EnumerateOpts(f, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		samePoints(t, serial, par)
	}
	// The default entry point (GOMAXPROCS workers) matches too.
	def, err := Enumerate(f)
	if err != nil {
		t.Fatal(err)
	}
	samePoints(t, serial, def)
}

// Enumeration must not leave the chip mutated to the last-enumerated
// selection (the historic bug): selection, forced muxes, and the
// evaluation of the current point are all unchanged afterwards.
func TestEnumerateLeavesFlowUnchanged(t *testing.T) {
	f := flow(t)
	f.SelectVersions(map[string]int{"CPU": 1})
	f.ForcedMuxes = append(f.ForcedMuxes, core.ForcedMux{Core: "DISPLAY", Port: "D", Input: true})
	before := f.CurrentSelection()
	e0, err := f.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Enumerate(f); err != nil {
		t.Fatal(err)
	}
	after := f.CurrentSelection()
	for name, idx := range before {
		if after[name] != idx {
			t.Errorf("core %s: selection changed %d -> %d across Enumerate", name, idx, after[name])
		}
	}
	if len(f.ForcedMuxes) != 1 {
		t.Errorf("forced muxes changed: %v", f.ForcedMuxes)
	}
	e1, err := f.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if e1.TAT != e0.TAT || e1.ChipDFTCells() != e0.ChipDFTCells() {
		t.Errorf("observable state drifted: TAT %d -> %d, cells %d -> %d",
			e0.TAT, e1.TAT, e0.ChipDFTCells(), e1.ChipDFTCells())
	}
}

// Starting at the min-TAT point, every remaining upgrade ladder fails to
// help — the historic walk accepted them anyway (its pick loop maximized
// ΔTAT without requiring it positive and never rechecked the real TAT)
// and burned the area budget making TAT worse. No accepted step may
// increase the TAT.
func TestImproveNeverAcceptsWorseningMove(t *testing.T) {
	f := flow(t)
	points, err := Enumerate(f)
	if err != nil {
		t.Fatal(err)
	}
	minTAT := MinTATPoint(points)
	f.SelectVersions(minTAT.Selection)
	e0, err := f.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Improve(f, MinimizeTAT, e0.ChipDFTCells()+10000)
	if err != nil {
		t.Fatal(err)
	}
	last := e0.TAT
	for _, s := range res.Steps {
		if s.TAT >= last {
			t.Errorf("accepted step %+v did not reduce TAT (%d -> %d)", s, last, s.TAT)
		}
		last = s.TAT
	}
	if res.Final.TAT > e0.TAT {
		t.Errorf("walk worsened TAT: %d -> %d", e0.TAT, res.Final.TAT)
	}
}

func TestImproveMinimizeTAT(t *testing.T) {
	f := flow(t)
	e0, err := f.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Improve(f, MinimizeTAT, e0.ChipDFTCells()+200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.TAT >= e0.TAT {
		t.Errorf("improvement did not reduce TAT: %d -> %d", e0.TAT, res.Final.TAT)
	}
	if res.Final.ChipDFTCells() > e0.ChipDFTCells()+200 {
		t.Errorf("area budget violated: %d > %d", res.Final.ChipDFTCells(), e0.ChipDFTCells()+200)
	}
	if len(res.Steps) == 0 {
		t.Error("no improvement steps recorded")
	}
}

func TestImproveMinimizeArea(t *testing.T) {
	f := flow(t)
	e0, err := f.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	// Ask for a TAT halfway between min-area and zero: the selector should
	// meet it with a modest area increase.
	target := e0.TAT * 2 / 3
	res, err := Improve(f, MinimizeArea, target)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.TAT > target {
		t.Errorf("TAT target missed: %d > %d", res.Final.TAT, target)
	}
	// Every step should have been productive.
	for _, s := range res.Steps {
		if s.Core != "" && s.DeltaTAT < 0 {
			t.Errorf("step %+v increased TAT", s)
		}
	}
}

func TestTightBudgetKeepsMinArea(t *testing.T) {
	f := flow(t)
	e0, err := f.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Improve(f, MinimizeTAT, e0.ChipDFTCells())
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.ChipDFTCells() > e0.ChipDFTCells() {
		t.Errorf("zero headroom budget exceeded: %d > %d", res.Final.ChipDFTCells(), e0.ChipDFTCells())
	}
}

func TestCandidatesCostOrdering(t *testing.T) {
	f := flow(t)
	e, err := f.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	// Objective (i) weighting: sorted by TAT improvement.
	byTAT := Candidates(f, e, Cost{W1: 1, W2: 0})
	for i := 1; i < len(byTAT); i++ {
		if byTAT[i].DeltaTAT > byTAT[i-1].DeltaTAT {
			t.Errorf("w1=1 ordering broken at %d", i)
		}
	}
	// Objective (ii) weighting: sorted by (negated) area growth — the
	// cheapest upgrade scores highest under C = -ΔA... the paper picks the
	// *minimum* C with positive ΔTAT; with W2=-1 the sort surfaces it.
	byArea := Candidates(f, e, Cost{W1: 0, W2: -1})
	for i := 1; i < len(byArea); i++ {
		if byArea[i].DeltaArea < byArea[i-1].DeltaArea {
			t.Errorf("area ordering broken at %d", i)
		}
	}
	if len(byTAT) == 0 {
		t.Fatal("no candidates at the min-area selection")
	}
	// The estimate must see the biggest win where the schedule leans
	// hardest; flipping that core really reduces TAT.
	pick := byTAT[0]
	f.SelectVersions(map[string]int{pick.Core: pick.Version})
	e2, err := f.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if pick.DeltaTAT > 0 && e2.TAT >= e.TAT {
		t.Errorf("estimated ΔTAT %d for %s but actual TAT %d -> %d", pick.DeltaTAT, pick.Core, e.TAT, e2.TAT)
	}
}

// Pareto no longer relies on the caller having area-sorted the points.
func TestParetoUnsortedAndTiedInput(t *testing.T) {
	pts := []Point{
		{ChipCells: 30, TAT: 50},
		{ChipCells: 10, TAT: 100},
		{ChipCells: 30, TAT: 40}, // ties on area with the 50-TAT point
		{ChipCells: 20, TAT: 100},
		{ChipCells: 20, TAT: 80},
		{ChipCells: 40, TAT: 40}, // dominated by (30, 40)
	}
	front := Pareto(pts)
	want := []Point{{ChipCells: 10, TAT: 100}, {ChipCells: 20, TAT: 80}, {ChipCells: 30, TAT: 40}}
	if len(front) != len(want) {
		t.Fatalf("front = %v, want %v", front, want)
	}
	for i := range want {
		if front[i].ChipCells != want[i].ChipCells || front[i].TAT != want[i].TAT {
			t.Errorf("front[%d] = (%d, %d), want (%d, %d)",
				i, front[i].ChipCells, front[i].TAT, want[i].ChipCells, want[i].TAT)
		}
	}
	// The input slice must be untouched.
	if pts[0].ChipCells != 30 || pts[0].TAT != 50 {
		t.Error("Pareto reordered its input")
	}
}

func TestMinTATPointTies(t *testing.T) {
	pts := []Point{
		{ChipCells: 20, TAT: 40},
		{ChipCells: 10, TAT: 40}, // same TAT, less area: must win
		{ChipCells: 5, TAT: 90},
	}
	best := MinTATPoint(pts)
	if best.ChipCells != 10 || best.TAT != 40 {
		t.Errorf("MinTATPoint = (%d, %d), want (10, 40)", best.ChipCells, best.TAT)
	}
	one := MinTATPoint(pts[2:])
	if one.ChipCells != 5 || one.TAT != 90 {
		t.Errorf("single-point MinTATPoint = (%d, %d), want (5, 90)", one.ChipCells, one.TAT)
	}
}

// muxFallbackCells must fall back to the default width for cores with no
// input ports and for unknown cores.
func TestMuxFallbackCellsZeroInputCore(t *testing.T) {
	f := &core.Flow{Chip: &soc.Chip{
		Name: "toy",
		Cores: []*soc.Core{
			{Name: "NOIN", RTL: &rtl.Core{Name: "noin", Ports: []rtl.Port{{Name: "O", Dir: rtl.Out, Width: 4}}}},
			{Name: "WIDE", RTL: &rtl.Core{Name: "wide", Ports: []rtl.Port{{Name: "I", Dir: rtl.In, Width: 12}}}},
		},
	}}
	if got := muxFallbackCells(f, "NOIN"); got != 8 {
		t.Errorf("zero-input core: got %d, want default 8", got)
	}
	if got := muxFallbackCells(f, "MISSING"); got != 8 {
		t.Errorf("unknown core: got %d, want default 8", got)
	}
	if got := muxFallbackCells(f, "WIDE"); got != 12 {
		t.Errorf("widest input: got %d, want 12", got)
	}
}

// A transparency pair that disappears in the next version contributes
// nothing to the estimate — the old heuristic assumed it got faster
// (latency 1) and produced bogus deltas.
func TestLatencyDeltaSkipsMissingPairs(t *testing.T) {
	ab := [2]string{"A", "B"}
	cd := [2]string{"C", "D"}
	usage := map[[2]string]int{ab: 3, cd: 5}
	cur := map[[2]string]int{ab: 4, cd: 6}
	next := map[[2]string]int{ab: 1} // cd vanished
	if got := latencyDelta(usage, cur, next); got != 3*(4-1) {
		t.Errorf("latencyDelta = %d, want %d (missing pair must be skipped)", got, 3*(4-1))
	}
	// Pair unusable in the current version: nothing to improve.
	if got := latencyDelta(usage, map[[2]string]int{cd: 6}, next); got != 0 {
		t.Errorf("latencyDelta = %d, want 0 when the pair has no current latency", got)
	}
}

// One cache shared by Enumerate and Improve: the improvement walk re-uses
// points the enumeration already evaluated, and its outcome is identical
// to the uncached walk.
func TestCacheSharedBetweenEnumerateAndImprove(t *testing.T) {
	f := flow(t)
	e0, err := f.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	budget := e0.ChipDFTCells() + 200
	plain, err := Improve(f, MinimizeTAT, budget)
	if err != nil {
		t.Fatal(err)
	}

	reset(f)
	_, m := obs.Enable(0)
	defer obs.Disable()
	cache := NewCache()
	points, err := EnumerateOpts(f, Options{Workers: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() != len(points) {
		t.Errorf("cache holds %d evaluations, want %d", cache.Len(), len(points))
	}
	evalsAfterEnum := m.Counter("core.evaluations").Value()
	cached, err := ImproveOpts(f, MinimizeTAT, budget, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if hits := m.Counter("explore.cache_hits").Value(); hits == 0 {
		t.Error("Improve hit the cache zero times after a full enumeration")
	}
	// Every version-upgrade trial lands on an enumerated point; only
	// forced-mux evaluations may miss.
	misses := m.Counter("explore.cache_misses").Value() - int64(len(points))
	evals := m.Counter("core.evaluations").Value() - evalsAfterEnum
	if evals > misses {
		t.Errorf("Improve ran %d fresh evaluations but only %d cache misses", evals, misses)
	}
	if cached.Final.TAT != plain.Final.TAT || cached.Final.ChipDFTCells() != plain.Final.ChipDFTCells() {
		t.Errorf("cached walk diverged: TAT %d vs %d, cells %d vs %d",
			cached.Final.TAT, plain.Final.TAT, cached.Final.ChipDFTCells(), plain.Final.ChipDFTCells())
	}
	if len(cached.Steps) != len(plain.Steps) {
		t.Errorf("cached walk took %d steps, uncached %d", len(cached.Steps), len(plain.Steps))
	}
}

func TestEnumerateMaxPointsPrefix(t *testing.T) {
	f := flow(t)
	full, err := Enumerate(f)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := EnumerateOpts(f, Options{MaxPoints: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 5 {
		t.Fatalf("MaxPoints=5 evaluated %d points", len(capped))
	}
	// The capped run evaluates the first 5 selections of the fixed
	// generation order; sorted output must be a subset of the full space.
	byLabel := map[string]Point{}
	for _, p := range full {
		byLabel[p.Label()] = p
	}
	for _, p := range capped {
		fp, ok := byLabel[p.Label()]
		if !ok {
			t.Fatalf("capped point %s not in the full enumeration", p.Label())
		}
		if fp.TAT != p.TAT || fp.ChipCells != p.ChipCells {
			t.Fatalf("capped point %s diverged: %d/%d vs %d/%d",
				p.Label(), p.TAT, p.ChipCells, fp.TAT, fp.ChipCells)
		}
	}
	// A cap above the product changes nothing.
	uncapped, err := EnumerateOpts(f, Options{MaxPoints: len(full) + 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(uncapped) != len(full) {
		t.Fatalf("over-cap run evaluated %d points, want %d", len(uncapped), len(full))
	}
}

func TestSelectionCountOverflowSafe(t *testing.T) {
	// 64 cores x 4 versions each = 2^128 combinations: the capped count
	// must return the cap instead of overflowing.
	mk := func(n int) []*soc.Core {
		cores := make([]*soc.Core, n)
		for i := range cores {
			cores[i] = &soc.Core{Versions: make([]*trans.Version, 4)}
		}
		return cores
	}
	if got := selectionCount(mk(64), 1000); got != 1000 {
		t.Fatalf("capped count = %d, want 1000", got)
	}
	if got := selectionCount(mk(3), 0); got != 64 {
		t.Fatalf("uncapped count = %d, want 64", got)
	}
	if got := selectionCount(nil, 10); got != 1 {
		t.Fatalf("no-core count = %d, want 1", got)
	}
}

// TestEnumerateWindowUnionMatchesFull splits the selection space into
// contiguous windows with First/Count and checks the union reproduces
// the full enumeration exactly — the property sharded sweeps rest on.
func TestEnumerateWindowUnionMatchesFull(t *testing.T) {
	f := flow(t)
	full, err := Enumerate(f)
	if err != nil {
		t.Fatal(err)
	}
	space := SelectionSpace(f, 0)
	if space != len(full) {
		t.Fatalf("SelectionSpace = %d, enumeration has %d points", space, len(full))
	}
	wantByLabel := map[string]Point{}
	for _, p := range full {
		wantByLabel[p.Label()] = p
	}
	for _, parts := range []int{2, 3, 5} {
		got := map[string]Point{}
		for i := 0; i < parts; i++ {
			lo := i * space / parts
			hi := (i + 1) * space / parts
			pts, err := EnumerateOpts(f, Options{First: lo, Count: hi - lo, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			if len(pts) != hi-lo {
				t.Fatalf("window [%d,%d): %d points", lo, hi, len(pts))
			}
			for _, p := range pts {
				if _, dup := got[p.Label()]; dup {
					t.Fatalf("windows overlap at %s", p.Label())
				}
				got[p.Label()] = p
			}
		}
		if len(got) != len(wantByLabel) {
			t.Fatalf("%d windows: union has %d points, want %d", parts, len(got), len(wantByLabel))
		}
		for label, w := range wantByLabel {
			g := got[label]
			if g.TAT != w.TAT || g.ChipCells != w.ChipCells {
				t.Fatalf("%d windows: point %s diverged (%d/%d vs %d/%d)",
					parts, label, g.ChipCells, g.TAT, w.ChipCells, w.TAT)
			}
		}
	}
}

// TestEnumerateWindowBounds: windows clamp to the space; a window
// starting beyond it is empty, not an error.
func TestEnumerateWindowBounds(t *testing.T) {
	f := flow(t)
	space := SelectionSpace(f, 0)
	pts, err := EnumerateOpts(f, Options{First: space + 10, Count: 5})
	if err != nil || len(pts) != 0 {
		t.Fatalf("beyond-space window: %d points, err %v", len(pts), err)
	}
	pts, err = EnumerateOpts(f, Options{First: space - 2, Count: 100})
	if err != nil || len(pts) != 2 {
		t.Fatalf("overhanging window: %d points, err %v", len(pts), err)
	}
	// Count <= 0 means "to the end".
	pts, err = EnumerateOpts(f, Options{First: space - 3})
	if err != nil || len(pts) != 3 {
		t.Fatalf("open-ended window: %d points, err %v", len(pts), err)
	}
}

// TestEnumerateSkipAndObserver: Skip removes indices from evaluation and
// output; Observer sees every evaluated point with its global index.
func TestEnumerateSkipAndObserver(t *testing.T) {
	f := flow(t)
	space := SelectionSpace(f, 0)
	var mu sync.Mutex
	seen := map[int]string{}
	pts, err := EnumerateOpts(f, Options{
		Skip: func(gi int) bool { return gi%2 == 1 },
		Observer: func(gi int, p Point) {
			mu.Lock()
			seen[gi] = p.Label()
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantN := (space + 1) / 2
	if len(pts) != wantN || len(seen) != wantN {
		t.Fatalf("skip-odd run: %d points, %d observed, want %d", len(pts), len(seen), wantN)
	}
	for gi := range seen {
		if gi%2 == 1 {
			t.Fatalf("observer saw skipped index %d", gi)
		}
	}
	// Spot-check attribution: each observed label must be the selection a
	// one-point window at that global index evaluates.
	for _, gi := range []int{0, 2, (space - 1) / 2 * 2} {
		one, err := EnumerateOpts(f, Options{First: gi, Count: 1, Workers: 1})
		if err != nil || len(one) != 1 {
			t.Fatalf("window [%d,%d): %d points, err %v", gi, gi+1, len(one), err)
		}
		if seen[gi] != one[0].Label() {
			t.Fatalf("index %d observed as %s, window says %s", gi, seen[gi], one[0].Label())
		}
	}
}
