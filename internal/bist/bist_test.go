package bist

import (
	"testing"

	"repro/internal/systems"
)

func TestMarchCMinusShape(t *testing.T) {
	m := MarchCMinus()
	if len(m) != 6 {
		t.Fatalf("march C- has %d elements, want 6", len(m))
	}
	ops := 0
	for _, e := range m {
		ops += len(e.Ops)
	}
	if ops != 10 {
		t.Errorf("march C- is %dN, want 10N", ops)
	}
	// First element initializes with writes only.
	if len(m[0].Ops) != 1 || m[0].Ops[0] != "w0" {
		t.Errorf("march C- must start with ⇕(w0), got %v", m[0].Ops)
	}
	// Directions: up, up, up, down, down, down.
	wantDirs := []bool{true, true, true, false, false, false}
	for i, e := range m {
		if e.Ascending != wantDirs[i] {
			t.Errorf("element %d direction = %v, want %v", i, e.Ascending, wantDirs[i])
		}
	}
}

func TestPlanMemoryRAM(t *testing.T) {
	ch := systems.System1()
	ram, _ := ch.CoreByName("RAM")
	p := PlanMemory(ram)
	if p.Words != 4096 {
		t.Errorf("RAM words = %d, want 4096 (12-bit address)", p.Words)
	}
	if p.Cycles != 10*4096 {
		t.Errorf("RAM BIST cycles = %d, want 40960 (march C-)", p.Cycles)
	}
	if p.Area.Cells() == 0 {
		t.Error("BIST controller has no area")
	}
}

func TestPlanMemoryROM(t *testing.T) {
	ch := systems.System1()
	rom, _ := ch.CoreByName("ROM")
	p := PlanMemory(rom)
	// ROM is read-only: 2N sweep instead of march C-.
	if p.Cycles != 2*4096 {
		t.Errorf("ROM BIST cycles = %d, want 8192", p.Cycles)
	}
}

func TestPlanChipParallel(t *testing.T) {
	ch := systems.System1()
	plans, cycles, area := PlanChip(ch)
	if len(plans) != 2 {
		t.Fatalf("planned %d memories, want 2", len(plans))
	}
	// Engines run in parallel: the RAM dominates.
	if cycles != 10*4096 {
		t.Errorf("chip BIST cycles = %d, want 40960", cycles)
	}
	if area.Cells() == 0 {
		t.Error("no BIST area")
	}
	// System 2 has no memories.
	_, cycles2, _ := PlanChip(systems.System2())
	if cycles2 != 0 {
		t.Errorf("System 2 BIST cycles = %d, want 0", cycles2)
	}
}
