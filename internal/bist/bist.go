// Package bist provides memory built-in self-test for the RAM/ROM cores
// that the paper excludes from the CCG ("most memory cores use BIST",
// Section 5, citing Zorian's distributed BIST control scheme [8]). March
// C- is generated for RAMs and a checksum sweep for ROMs; the BIST engines
// run concurrently with the logic-core tests, so they contribute to the
// global TAT only if they dominate it.
package bist

import (
	"repro/internal/cell"
	"repro/internal/soc"
)

// MarchElement is one march element: an address-order sweep applying
// read/write operations per cell.
type MarchElement struct {
	Ascending bool
	Ops       []string // e.g. "r0", "w1"
}

// MarchCMinus returns the march C- algorithm: {⇕(w0); ⇑(r0,w1); ⇑(r1,w0);
// ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)} — 10N operations.
func MarchCMinus() []MarchElement {
	return []MarchElement{
		{Ascending: true, Ops: []string{"w0"}},
		{Ascending: true, Ops: []string{"r0", "w1"}},
		{Ascending: true, Ops: []string{"r1", "w0"}},
		{Ascending: false, Ops: []string{"r0", "w1"}},
		{Ascending: false, Ops: []string{"r1", "w0"}},
		{Ascending: false, Ops: []string{"r0"}},
	}
}

// Plan is the BIST plan for one memory core.
type Plan struct {
	Core   string
	Words  int
	Cycles int       // test application time of the BIST run
	Area   cell.Area // BIST controller area
}

// PlanMemory sizes a BIST run for a memory core: the address space is
// 2^addrBits words; march C- costs 10 operations per word (ROMs get a
// 2N read-and-checksum sweep instead).
func PlanMemory(c *soc.Core) *Plan {
	addrBits := 0
	writable := false
	for _, p := range c.RTL.Ports {
		if p.Name == "Addr" {
			addrBits = p.Width
		}
		if p.Name == "WE" {
			writable = true
		}
	}
	words := 1 << uint(addrBits)
	p := &Plan{Core: c.Name, Words: words}
	if writable {
		opsPerWord := 0
		for _, e := range MarchCMinus() {
			opsPerWord += len(e.Ops)
		}
		p.Cycles = words * opsPerWord
	} else {
		p.Cycles = 2 * words // read sweep + signature compare
	}
	// Controller: address counter, data generator, comparator FSM.
	p.Area.Add(cell.DFF, addrBits+4)
	p.Area.Add(cell.Nand2, 3*addrBits)
	p.Area.Add(cell.Xor2, 8)
	return p
}

// PlanChip sizes BIST for every memory core of the chip. The returned
// cycle count is the maximum over memories (BIST engines run in
// parallel).
func PlanChip(ch *soc.Chip) (plans []*Plan, cycles int, area cell.Area) {
	for _, c := range ch.Cores {
		if !c.Memory {
			continue
		}
		p := PlanMemory(c)
		plans = append(plans, p)
		if p.Cycles > cycles {
			cycles = p.Cycles
		}
		area.AddArea(p.Area)
	}
	return plans, cycles, area
}
