// Package bscan implements the FSCAN-BSCAN baseline of Sections 1 and 6:
// every core is made testable with conventional full scan (every flip-flop
// becomes a scan flip-flop) and isolated with boundary-scan cells on its
// internal pins. The chip-level test applies each core's precomputed
// vectors through one concatenated scan+boundary chain per core:
//
//	TAT(core) = (ff + in) × V + (ff + in) − 1
//
// (the DISPLAY's (66+20)×105 + 85 = 9,115 cycles of Section 3).
package bscan

import (
	"repro/internal/cell"
	"repro/internal/soc"
)

// CoreResult is the FSCAN-BSCAN accounting for one core.
type CoreResult struct {
	Core       string
	FFs        int
	InternalIn int // internal input bits isolated by boundary scan
	Vectors    int
	TAT        int
	ScanArea   cell.Area // full-scan upgrade (DFF -> SDFF)
	BscanArea  cell.Area // boundary-scan cells
}

// ChainBits returns the scan+boundary chain length of the core.
func (c *CoreResult) ChainBits() int { return c.FFs + c.InternalIn }

// Result is the chip-level FSCAN-BSCAN accounting.
type Result struct {
	Cores    []*CoreResult
	TotalTAT int
}

// ScanCells returns the total full-scan upgrade cell count.
func (r *Result) ScanCells() int {
	n := 0
	for _, c := range r.Cores {
		n += c.ScanArea.Cells()
	}
	return n
}

// BscanCells returns the total boundary-scan cell count.
func (r *Result) BscanCells() int {
	n := 0
	for _, c := range r.Cores {
		n += c.BscanArea.Cells()
	}
	return n
}

// internalInputBits counts the core's input bits that are not chip PIs
// (those need boundary-scan isolation; pins wired straight to chip pins
// are controllable for free).
func internalInputBits(ch *soc.Chip, c *soc.Core) int {
	bits := 0
	for _, p := range c.RTL.Inputs() {
		fromChip := false
		for _, n := range ch.DriversOf(c.Name, p.Name) {
			if n.FromCore == "" {
				fromChip = true
			}
		}
		if !fromChip {
			bits += p.Width
		}
	}
	return bits
}

// Evaluate computes FSCAN-BSCAN area and TAT for the chip's testable
// cores. Vector counts must already be stored in each core (the same
// precomputed test sets SOCET uses; full scan applies plain combinational
// vectors, so the per-core count is c.Vectors).
func Evaluate(ch *soc.Chip) *Result {
	res := &Result{}
	for _, c := range ch.TestableCores() {
		cr := &CoreResult{
			Core:       c.Name,
			FFs:        c.RTL.FFCount(),
			InternalIn: internalInputBits(ch, c),
			Vectors:    c.Vectors,
		}
		n := cr.ChainBits()
		if cr.Vectors > 0 {
			cr.TAT = n*cr.Vectors + n - 1
		}
		// Full scan: every DFF upgraded to a scan DFF; count the scan mux
		// added per flip-flop.
		cr.ScanArea.Add(cell.Mux2, cr.FFs)
		// Boundary scan: one cell per isolated input bit, plus cells on
		// output pins feeding other cores (EXTEST isolation).
		outBits := 0
		for _, p := range c.RTL.Outputs() {
			for _, nnet := range ch.SinksOf(c.Name, p.Name) {
				if nnet.ToCore != "" {
					outBits += p.Width
					break
				}
			}
		}
		cr.BscanArea.Add(cell.BScell, cr.InternalIn+outBits)
		res.Cores = append(res.Cores, cr)
		res.TotalTAT += cr.TAT
	}
	return res
}

// DisplayExample reproduces the Section 3 arithmetic for a core with ff
// flip-flops, in internal input bits and v vectors.
func DisplayExample(ff, in, v int) int {
	n := ff + in
	return n*v + n - 1
}
