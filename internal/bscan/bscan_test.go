package bscan

import (
	"testing"

	"repro/internal/systems"
)

// TestDisplayExampleSection3 checks the paper's exact FSCAN-BSCAN
// arithmetic: (66+20) x 105 + (66+20) - 1 = 9,115 cycles.
func TestDisplayExampleSection3(t *testing.T) {
	if got := DisplayExample(66, 20, 105); got != 9115 {
		t.Errorf("DisplayExample = %d, want 9115", got)
	}
}

func TestEvaluateSystem1(t *testing.T) {
	ch := systems.System1()
	for _, c := range ch.TestableCores() {
		c.Vectors = 100
	}
	res := Evaluate(ch)
	if len(res.Cores) != 3 {
		t.Fatalf("evaluated %d cores, want 3", len(res.Cores))
	}
	for _, cr := range res.Cores {
		wantTAT := cr.ChainBits()*cr.Vectors + cr.ChainBits() - 1
		if cr.TAT != wantTAT {
			t.Errorf("%s: TAT = %d, want %d", cr.Core, cr.TAT, wantTAT)
		}
		if cr.FFs == 0 {
			t.Errorf("%s: no flip-flops", cr.Core)
		}
	}
	// The DISPLAY's published structure: 66 FFs and 20 internal inputs
	// (both its buses come from other cores).
	for _, cr := range res.Cores {
		if cr.Core != "DISPLAY" {
			continue
		}
		if cr.FFs != 66 {
			t.Errorf("DISPLAY FFs = %d, want 66", cr.FFs)
		}
		if cr.InternalIn != 20 {
			t.Errorf("DISPLAY internal inputs = %d, want 20", cr.InternalIn)
		}
		if cr.TAT != DisplayExample(66, 20, 100) {
			t.Errorf("DISPLAY TAT = %d mismatch", cr.TAT)
		}
	}
	if res.ScanCells() == 0 || res.BscanCells() == 0 {
		t.Error("missing scan or boundary-scan area")
	}
	if res.TotalTAT <= 0 {
		t.Error("no total TAT")
	}
}

// FSCAN-BSCAN is much slower than SOCET for the same vector counts —
// that is the headline claim. Here we only check the baseline grows with
// chain length.
func TestTATGrowsWithChainLength(t *testing.T) {
	ch := systems.System1()
	for _, c := range ch.TestableCores() {
		c.Vectors = 50
	}
	res := Evaluate(ch)
	var cpu, disp int
	for _, cr := range res.Cores {
		switch cr.Core {
		case "CPU":
			cpu = cr.TAT
		case "DISPLAY":
			disp = cr.TAT
		}
	}
	if cpu == 0 || disp == 0 {
		t.Fatal("missing cores")
	}
	// DISPLAY (66 FFs + 20 in = 86 bits) vs CPU (58 FFs + 10-11 in).
	if disp <= cpu {
		t.Errorf("DISPLAY chain (86 bits) should cost more than CPU: %d vs %d", disp, cpu)
	}
}
