// Package rtlsim interprets rtl.Core designs cycle by cycle, with the
// test-mode controls transparency needs: forcing multiplexer selects and
// freezing registers (clock gating). Its purpose is verification — proving
// that the transparency paths found by internal/trans really move data
// losslessly through the RTL with the claimed latency, which is the
// foundational property of the whole SOCET method.
package rtlsim

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/rtl"
)

// Sim is an RTL interpreter. Register and port values are word-valued
// (widths up to 64 bits).
type Sim struct {
	c      *rtl.Core
	regs   map[string]uint64
	inputs map[string]uint64
	// test-mode overrides
	muxSel     map[string]int
	frozen     map[string]bool
	loadForced map[string]bool
	// per-pass memoization
	memo    map[string]uint64
	onStack map[string]bool
	// cycles counts Step calls (nil when obs is disabled).
	cycles *obs.Counter
}

// New builds a simulator with all registers and inputs at zero.
func New(c *rtl.Core) (*Sim, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	for _, p := range c.Ports {
		if p.Width > 64 {
			return nil, fmt.Errorf("rtlsim: port %s wider than 64 bits", p.Name)
		}
	}
	for _, r := range c.Regs {
		if r.Width > 64 {
			return nil, fmt.Errorf("rtlsim: register %s wider than 64 bits", r.Name)
		}
	}
	return &Sim{
		c:          c,
		regs:       map[string]uint64{},
		inputs:     map[string]uint64{},
		muxSel:     map[string]int{},
		frozen:     map[string]bool{},
		loadForced: map[string]bool{},
		cycles:     obs.C("rtlsim.cycles"),
	}, nil
}

func mask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

// SetInput drives an input port.
func (s *Sim) SetInput(port string, v uint64) error {
	p, ok := s.c.PortByName(port)
	if !ok || p.Dir != rtl.In {
		return fmt.Errorf("rtlsim: no input port %q", port)
	}
	s.inputs[port] = v & mask(p.Width)
	return nil
}

// SetReg overwrites a register's current value (test setup).
func (s *Sim) SetReg(name string, v uint64) error {
	r, ok := s.c.RegByName(name)
	if !ok {
		return fmt.Errorf("rtlsim: no register %q", name)
	}
	s.regs[name] = v & mask(r.Width)
	return nil
}

// Reg reads a register's current value.
func (s *Sim) Reg(name string) uint64 { return s.regs[name] }

// ForceMux pins a multiplexer's select in test mode (pass -1 to release).
func (s *Sim) ForceMux(name string, sel int) error {
	m, ok := s.c.MuxByName(name)
	if !ok {
		return fmt.Errorf("rtlsim: no mux %q", name)
	}
	if sel < 0 {
		delete(s.muxSel, name)
		return nil
	}
	if sel >= m.NumIn {
		return fmt.Errorf("rtlsim: mux %s select %d out of range", name, sel)
	}
	s.muxSel[name] = sel
	return nil
}

// Freeze clock-gates a register (it holds its value across Step).
func (s *Sim) Freeze(name string, frozen bool) error {
	if _, ok := s.c.RegByName(name); !ok {
		return fmt.Errorf("rtlsim: no register %q", name)
	}
	if frozen {
		s.frozen[name] = true
	} else {
		delete(s.frozen, name)
	}
	return nil
}

// ForceLoad makes a load-enabled register capture every cycle regardless
// of its ld pin — the transparency controller's load assertion.
func (s *Sim) ForceLoad(name string, forced bool) error {
	if _, ok := s.c.RegByName(name); !ok {
		return fmt.Errorf("rtlsim: no register %q", name)
	}
	if forced {
		s.loadForced[name] = true
	} else {
		delete(s.loadForced, name)
	}
	return nil
}

// Output reads an output port combinationally.
func (s *Sim) Output(port string) (uint64, error) {
	p, ok := s.c.PortByName(port)
	if !ok || p.Dir != rtl.Out {
		return 0, fmt.Errorf("rtlsim: no output port %q", port)
	}
	s.beginPass()
	return s.evalSink(port, "", p.Width), nil
}

// Step advances one clock cycle.
func (s *Sim) Step() {
	s.cycles.Inc()
	s.beginPass()
	next := make(map[string]uint64, len(s.c.Regs))
	for _, r := range s.c.Regs {
		cur := s.regs[r.Name]
		if s.frozen[r.Name] {
			next[r.Name] = cur
			continue
		}
		if r.HasLoad && !s.loadForced[r.Name] {
			if s.evalSink(r.Name, "ld", 1)&1 == 0 {
				next[r.Name] = cur
				continue
			}
		}
		next[r.Name] = s.evalSink(r.Name, "d", r.Width)
	}
	s.regs = next
}

func (s *Sim) beginPass() {
	s.memo = map[string]uint64{}
	s.onStack = map[string]bool{}
}

// evalSink assembles the value of a sink pin from its driving connections.
func (s *Sim) evalSink(comp, pin string, width int) uint64 {
	var v uint64
	for _, cn := range s.c.Conns {
		if cn.To.Comp != comp || cn.To.Pin != pin {
			continue
		}
		src := s.evalSource(cn.From.Comp, cn.From.Pin)
		part := (src >> uint(cn.From.Lo)) & mask(cn.From.Width())
		v |= part << uint(cn.To.Lo)
	}
	return v & mask(width)
}

// evalSource computes the value of a source pin (memoized per pass).
func (s *Sim) evalSource(comp, pin string) uint64 {
	key := comp + "." + pin
	if v, ok := s.memo[key]; ok {
		return v
	}
	if s.onStack[key] {
		return 0 // combinational loop: RTL validation should prevent this
	}
	s.onStack[key] = true
	defer delete(s.onStack, key)

	kind, idx, ok := s.c.Lookup(comp)
	if !ok {
		return 0
	}
	var v uint64
	switch kind {
	case rtl.KindPort:
		v = s.inputs[comp]
	case rtl.KindReg:
		v = s.regs[comp]
	case rtl.KindMux:
		m := s.c.Muxes[idx]
		sel, forced := s.muxSel[comp]
		if !forced {
			sel = int(s.evalSink(comp, "sel", m.SelWidth()))
		}
		if sel >= m.NumIn {
			sel = m.NumIn - 1
		}
		v = s.evalSink(comp, fmt.Sprintf("in%d", sel), m.Width)
	case rtl.KindUnit:
		v = s.evalUnit(s.c.Units[idx])
	}
	s.memo[key] = v
	return v
}

func (s *Sim) evalUnit(u rtl.Unit) uint64 {
	in := func(k int) uint64 { return s.evalSink(u.Name, fmt.Sprintf("in%d", k), u.Width) }
	w := mask(u.Width)
	switch u.Op {
	case rtl.OpAdd:
		return (in(0) + in(1)) & w
	case rtl.OpSub:
		return (in(0) - in(1)) & w
	case rtl.OpInc:
		return (in(0) + 1) & w
	case rtl.OpDec:
		return (in(0) - 1) & w
	case rtl.OpAnd:
		return in(0) & in(1)
	case rtl.OpOr:
		return in(0) | in(1)
	case rtl.OpXor:
		return in(0) ^ in(1)
	case rtl.OpNot:
		return ^in(0) & w
	case rtl.OpShl:
		return (in(0) << 1) & w
	case rtl.OpShr:
		return in(0) >> 1
	case rtl.OpEq:
		if in(0) == in(1) {
			return 1
		}
		return 0
	case rtl.OpDecode:
		return 1 << (in(0) & w)
	case rtl.OpAlu:
		nops := u.AluOps
		if nops < 2 {
			nops = 2
		}
		op := s.evalSink(u.Name, "op", rtl.SelBits(nops)) % uint64(nops)
		// Same roster as internal/synth.
		switch op {
		case 0:
			return (in(0) + in(1)) & w
		case 1:
			return in(0) & in(1)
		case 2:
			return in(0) | in(1)
		case 3:
			return in(0) ^ in(1)
		case 4:
			return (in(0) - in(1)) & w
		case 5:
			return ^in(0) & w
		case 6:
			return (in(0) + 1) & w
		default:
			return (in(0) << 1) & w
		}
	case rtl.OpConst:
		return u.ConstVal & w
	case rtl.OpCloud:
		// Deterministic but opaque: a hash of the inputs. The gate-level
		// structure in internal/synth is unrelated; transparency never
		// moves data through clouds, so only determinism matters here.
		h := hash64(u.Name)
		for k := 0; k < u.NumIn; k++ {
			h = mix(h ^ in(k))
		}
		return h & mask(u.OutWidth)
	}
	return 0
}

func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
