package rtlsim

import (
	"fmt"

	"repro/internal/rtl"
	"repro/internal/trans"
)

// VerifyEdge checks one RCG edge against the RTL: a value placed at the
// edge's source appears at the destination slice after one cycle (register
// destinations, with the load asserted and the multiplexer hops forced) or
// combinationally (output ports). Created transparency-mux edges have no
// RTL counterpart and are skipped. The return values are (skipped, error).
func VerifyEdge(c *rtl.Core, g *trans.RCG, e *trans.Edge, seed uint64) (bool, error) {
	if e.Created || e.ScanMux {
		// Transparency muxes and HSCAN scan muxes are inserted hardware
		// with no counterpart in the pre-DFT RTL.
		return true, nil
	}
	from := g.Nodes[e.From]
	to := g.Nodes[e.To]
	if from.Kind == trans.NodeIn && to.Kind == trans.NodeOut {
		// Port-to-port feedthrough: combinational.
	}
	for trial := 0; trial < 4; trial++ {
		v := mix(seed + uint64(trial)*0x9e3779b97f4a7c15)
		s, err := New(c)
		if err != nil {
			return false, err
		}
		payload := v & mask(e.SrcWidth())
		// Place the payload at the source slice.
		switch from.Kind {
		case trans.NodeIn:
			if err := s.SetInput(from.Name, payload<<uint(e.SrcLo)); err != nil {
				return false, err
			}
		case trans.NodeReg:
			if err := s.SetReg(from.Name, payload<<uint(e.SrcLo)); err != nil {
				return false, err
			}
		default:
			return false, fmt.Errorf("rtlsim: edge %d starts at an output node", e.ID)
		}
		for _, h := range e.Hops {
			if err := s.ForceMux(h.Mux, h.Sel); err != nil {
				return false, err
			}
		}
		var got uint64
		switch to.Kind {
		case trans.NodeReg:
			if r, _ := c.RegByName(to.Name); r.HasLoad {
				if err := s.ForceLoad(to.Name, true); err != nil {
					return false, err
				}
			}
			s.Step()
			got = s.Reg(to.Name)
		case trans.NodeOut:
			o, err := s.Output(to.Name)
			if err != nil {
				return false, err
			}
			got = o
		default:
			return false, fmt.Errorf("rtlsim: edge %d ends at an input node", e.ID)
		}
		gotSlice := (got >> uint(e.DstLo)) & mask(e.SrcWidth())
		if gotSlice != payload {
			return false, fmt.Errorf("rtlsim: edge %s[%d:%d] -> %s[%d:%d]: sent %#x, received %#x",
				from.Name, e.SrcHi, e.SrcLo, to.Name, e.DstHi, e.DstLo, payload, gotSlice)
		}
	}
	return false, nil
}

// VerifyAllEdges verifies every physical RCG edge of the core, returning
// the number verified and skipped.
func VerifyAllEdges(c *rtl.Core, g *trans.RCG, seed uint64) (verified, skipped int, err error) {
	for _, e := range g.Edges {
		sk, verr := VerifyEdge(c, g, e, seed+uint64(e.ID))
		if verr != nil {
			return verified, skipped, verr
		}
		if sk {
			skipped++
		} else {
			verified++
		}
	}
	return verified, skipped, nil
}

// ChainStep pairs an RCG edge with its role in a linear transparency
// chain.
type ChainStep struct {
	Edge *trans.Edge
}

// VerifyChain drives a value into an input port and checks it emerges at
// the chain's output port after exactly one cycle per register stage — the
// end-to-end transparency property of Section 3 (e.g. the PREPROCESSOR's
// five-cycle NUM -> DB path). The edges must form a linear path from an
// input node to an output node using only physical edges with
// non-conflicting mux steering.
func VerifyChain(c *rtl.Core, g *trans.RCG, edges []*trans.Edge, seed uint64) error {
	if len(edges) == 0 {
		return fmt.Errorf("rtlsim: empty chain")
	}
	first := g.Nodes[edges[0].From]
	last := g.Nodes[edges[len(edges)-1].To]
	if first.Kind != trans.NodeIn {
		return fmt.Errorf("rtlsim: chain must start at an input port, got %s", first.Name)
	}
	if last.Kind != trans.NodeOut {
		return fmt.Errorf("rtlsim: chain must end at an output port, got %s", last.Name)
	}
	// Mux steering must be consistent across the whole chain (all stages
	// active simultaneously while the value ripples).
	forced := map[string]int{}
	for _, e := range edges {
		if e.Created || e.ScanMux {
			return fmt.Errorf("rtlsim: chain uses created edge %d (not physical)", e.ID)
		}
		for _, h := range e.Hops {
			if prev, ok := forced[h.Mux]; ok && prev != h.Sel {
				return fmt.Errorf("rtlsim: chain needs mux %s at both %d and %d", h.Mux, prev, h.Sel)
			}
			forced[h.Mux] = h.Sel
		}
	}
	// Compose the slice mapping and count register stages. A later edge
	// may carry only a sub-slice of the payload (the CPU's IR[3:0] ->
	// MAR-page hop keeps just the low nibble); track the surviving slice
	// and which input bits it corresponds to.
	lo, hi := edges[0].SrcLo, edges[0].SrcHi
	inLo := edges[0].SrcLo // input-port bit matching the slice's low end
	stages := 0
	for i, e := range edges {
		if i > 0 {
			nlo, nhi := lo, hi
			if e.SrcLo > nlo {
				nlo = e.SrcLo
			}
			if e.SrcHi < nhi {
				nhi = e.SrcHi
			}
			if nlo > nhi {
				return fmt.Errorf("rtlsim: chain edge %d is disjoint from the payload", i)
			}
			inLo += nlo - lo
			lo, hi = nlo, nhi
		}
		lo, hi = e.DstLo+(lo-e.SrcLo), e.DstLo+(hi-e.SrcLo)
		if g.Nodes[e.To].Kind == trans.NodeReg {
			stages++
		}
		if i+1 < len(edges) && e.To != edges[i+1].From {
			return fmt.Errorf("rtlsim: chain broken between edges %d and %d", i, i+1)
		}
	}
	survW := hi - lo + 1
	for trial := 0; trial < 4; trial++ {
		v := mix(seed+uint64(trial)) & mask(edges[0].SrcWidth())
		s, err := New(c)
		if err != nil {
			return err
		}
		for m, sel := range forced {
			if err := s.ForceMux(m, sel); err != nil {
				return err
			}
		}
		for _, e := range edges {
			to := g.Nodes[e.To]
			if to.Kind != trans.NodeReg {
				continue
			}
			if r, _ := c.RegByName(to.Name); r.HasLoad {
				if err := s.ForceLoad(to.Name, true); err != nil {
					return err
				}
			}
		}
		if err := s.SetInput(first.Name, v<<uint(edges[0].SrcLo)); err != nil {
			return err
		}
		for cyc := 0; cyc < stages; cyc++ {
			s.Step()
		}
		got, err := s.Output(last.Name)
		if err != nil {
			return err
		}
		gotSlice := (got >> uint(lo)) & mask(survW)
		wantSlice := (v >> uint(inLo-edges[0].SrcLo)) & mask(survW)
		if gotSlice != wantSlice {
			return fmt.Errorf("rtlsim: chain %s -> %s after %d cycles: sent %#x, received %#x (surviving slice)",
				first.Name, last.Name, stages, wantSlice, gotSlice)
		}
	}
	return nil
}

// LinearChain extracts a linear edge chain realizing the justification of
// the named output in the given version, if its path is chain-shaped and
// physical; it returns nil otherwise. This bridges trans results to
// VerifyChain.
func LinearChain(g *trans.RCG, v *trans.Version, output string) []*trans.Edge {
	p, ok := v.Just[output]
	if !ok {
		return nil
	}
	// Collect the used edges; a chain has exactly one edge out of one
	// input node and threads node-to-node to the output.
	var edges []*trans.Edge
	for id := range p.Edges {
		e := v.RCG.Edges[id]
		if e.Created || e.ScanMux {
			return nil
		}
		edges = append(edges, e)
	}
	// Find the input-node edge.
	var start *trans.Edge
	for _, e := range edges {
		if v.RCG.Nodes[e.From].Kind == trans.NodeIn {
			if start != nil {
				return nil // multiple entry points: not a chain
			}
			start = e
		}
	}
	if start == nil {
		return nil
	}
	chain := []*trans.Edge{start}
	cur := start.To
	for v.RCG.Nodes[cur].Kind != trans.NodeOut {
		var next *trans.Edge
		for _, e := range edges {
			if e.From == cur {
				if next != nil {
					return nil // branches: not a chain
				}
				next = e
			}
		}
		if next == nil {
			return nil
		}
		chain = append(chain, next)
		cur = next.To
		if len(chain) > len(edges) {
			return nil
		}
	}
	out, _ := v.RCG.NodeIndex(output)
	if cur != out {
		return nil
	}
	return chain
}
