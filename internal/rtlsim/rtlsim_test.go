package rtlsim

import (
	"testing"
	"testing/quick"

	"repro/internal/hscan"
	"repro/internal/rtl"
	"repro/internal/systems"
	"repro/internal/trans"
)

func TestBasicDatapath(t *testing.T) {
	c := must(rtl.NewCore("dp").
		In("a", 8).In("b", 8).
		Out("sum", 8).Out("q", 8).
		Reg("r", 8).
		Unit(rtl.Unit{Name: "add", Op: rtl.OpAdd, Width: 8}).
		Wire("a", "add.in0").
		Wire("b", "add.in1").
		Wire("add.out", "sum").
		Wire("a", "r.d").
		Wire("r.q", "q").
		Build())
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint8) bool {
		s.SetInput("a", uint64(a))
		s.SetInput("b", uint64(b))
		sum, err := s.Output("sum")
		if err != nil || sum != uint64(a+b) {
			return false
		}
		s.Step()
		q, err := s.Output("q")
		return err == nil && q == uint64(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMuxForcing(t *testing.T) {
	c := must(rtl.NewCore("mf").
		In("a", 4).In("b", 4).In("s", 1).
		Out("z", 4).
		Mux("m", 4, 2).
		Wire("a", "m.in0").
		Wire("b", "m.in1").
		Wire("s", "m.sel").
		Wire("m.out", "z").
		Build())
	s, _ := New(c)
	s.SetInput("a", 0x3)
	s.SetInput("b", 0xC)
	s.SetInput("s", 0)
	if z, _ := s.Output("z"); z != 0x3 {
		t.Fatalf("z = %#x, want a", z)
	}
	// Force the select against the functional value.
	if err := s.ForceMux("m", 1); err != nil {
		t.Fatal(err)
	}
	if z, _ := s.Output("z"); z != 0xC {
		t.Fatalf("forced z = %#x, want b", z)
	}
	s.ForceMux("m", -1)
	if z, _ := s.Output("z"); z != 0x3 {
		t.Fatalf("released z = %#x, want a", z)
	}
	if err := s.ForceMux("m", 5); err == nil {
		t.Error("out-of-range select accepted")
	}
}

func TestFreezeAndForceLoad(t *testing.T) {
	c := must(rtl.NewCore("fz").
		In("a", 4).CtlIn("en", 1).
		Out("q", 4).Out("p", 4).
		RegLd("r", 4).
		Reg("plain", 4).
		Wire("a", "r.d").
		Wire("en", "r.ld").
		Wire("a", "plain.d").
		Wire("r.q", "q").
		Wire("plain.q", "p").
		Build())
	s, _ := New(c)
	s.SetInput("a", 0x5)
	s.SetInput("en", 0)
	s.Step()
	if q, _ := s.Output("q"); q != 0 {
		t.Fatalf("load-disabled register captured %#x", q)
	}
	if p, _ := s.Output("p"); p != 0x5 {
		t.Fatalf("plain register did not capture: %#x", p)
	}
	s.ForceLoad("r", true)
	s.Step()
	if q, _ := s.Output("q"); q != 0x5 {
		t.Fatalf("forced load failed: %#x", q)
	}
	// Freeze overrides everything.
	s.SetInput("a", 0xA)
	s.Freeze("plain", true)
	s.Step()
	if p, _ := s.Output("p"); p != 0x5 {
		t.Fatalf("frozen register moved: %#x", p)
	}
	s.Freeze("plain", false)
	s.Step()
	if p, _ := s.Output("p"); p != 0xA {
		t.Fatalf("unfrozen register stuck: %#x", p)
	}
}

func TestErrorsOnUnknownNames(t *testing.T) {
	c := must(rtl.NewCore("err").In("a", 4).Out("z", 4).Reg("r", 4).
		Wire("a", "r.d").Wire("r.q", "z").Build())
	s, _ := New(c)
	if err := s.SetInput("nope", 1); err == nil {
		t.Error("unknown input accepted")
	}
	if err := s.SetReg("nope", 1); err == nil {
		t.Error("unknown register accepted")
	}
	if err := s.ForceMux("nope", 0); err == nil {
		t.Error("unknown mux accepted")
	}
	if err := s.Freeze("nope", true); err == nil {
		t.Error("unknown register frozen")
	}
	if _, err := s.Output("a"); err == nil {
		t.Error("input read as output")
	}
}

// rcgOf builds the scan-annotated RCG for a core.
func rcgOf(t *testing.T, c *rtl.Core) *trans.RCG {
	t.Helper()
	scan, err := hscan.Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	g, err := trans.Build(c, scan)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// Every physical RCG edge of every system core must move data exactly as
// the transparency analysis claims — this validates the foundation of the
// whole method against the RTL semantics.
func TestVerifyAllEdgesOnSystemCores(t *testing.T) {
	for _, build := range []func() *rtl.Core{
		systems.CPU, systems.Preprocessor, systems.Display,
		systems.Graphics, systems.GCD, systems.X25,
	} {
		c := build()
		g := rcgOf(t, c)
		verified, skipped, err := VerifyAllEdges(c, g, 0xfeed)
		if err != nil {
			t.Errorf("%s: %v", c.Name, err)
			continue
		}
		if verified == 0 {
			t.Errorf("%s: no physical edges verified", c.Name)
		}
		t.Logf("%s: %d edges verified, %d created edges skipped", c.Name, verified, skipped)
	}
}

// The Section 3 flagship property, end to end: the PREPROCESSOR's
// five-stage NUM -> DB path really delivers a value in five cycles.
func TestPreprocessorNUMToDBChain(t *testing.T) {
	c := systems.Preprocessor()
	g := rcgOf(t, c)
	vs, err := trans.Versions(g)
	if err != nil {
		t.Fatal(err)
	}
	v := vs[0]
	chain := LinearChain(v.RCG, v, "DB")
	if chain == nil {
		t.Fatal("NUM->DB justification is not chain-shaped")
	}
	// Five register stages (SYNC FILT WIDTH THRESH OUTREG).
	regs := 0
	for _, e := range chain {
		if v.RCG.Nodes[e.To].Kind == trans.NodeReg {
			regs++
		}
	}
	if regs != 5 {
		t.Errorf("chain has %d register stages, want 5", regs)
	}
	if err := VerifyChain(c, v.RCG, chain, 0xabcd); err != nil {
		t.Errorf("chain verification failed: %v", err)
	}
}

// Property: arbitrary values survive the NUM -> DB chain.
func TestChainLosslessProperty(t *testing.T) {
	c := systems.Preprocessor()
	g := rcgOf(t, c)
	vs, err := trans.Versions(g)
	if err != nil {
		t.Fatal(err)
	}
	chain := LinearChain(vs[0].RCG, vs[0], "DB")
	if chain == nil {
		t.Skip("not chain shaped")
	}
	forced := map[string]int{}
	for _, e := range chain {
		for _, h := range e.Hops {
			forced[h.Mux] = h.Sel
		}
	}
	f := func(v uint8) bool {
		s, err := New(c)
		if err != nil {
			return false
		}
		for m, sel := range forced {
			s.ForceMux(m, sel)
		}
		s.SetInput("NUM", uint64(v))
		for i := 0; i < 5; i++ {
			s.Step()
		}
		db, err := s.Output("DB")
		return err == nil && db == uint64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCloudDeterminism(t *testing.T) {
	c := systems.GCD()
	s1, _ := New(c)
	s2, _ := New(c)
	for i := 0; i < 8; i++ {
		s1.SetInput("Xin", uint64(i*37))
		s2.SetInput("Xin", uint64(i*37))
		s1.Step()
		s2.Step()
	}
	for _, r := range c.Regs {
		if s1.Reg(r.Name) != s2.Reg(r.Name) {
			t.Fatalf("nondeterministic register %s", r.Name)
		}
	}
}
