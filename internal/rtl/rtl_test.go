package rtl

import (
	"strings"
	"testing"
)

// figure1Core builds a small core in the spirit of the paper's Figure 1:
// REG1 feeds REG2 through an existing multiplexer, plus a direct
// register-to-register connection and a unit-blocked path.
func figure1Core(t *testing.T) *Core {
	t.Helper()
	c, err := NewCore("fig1").
		In("din", 16).
		Out("dout", 16).
		Reg("reg1", 16).
		Reg("reg2", 16).
		Reg("reg3", 16).
		Mux("m1", 16, 2).
		Unit(Unit{Name: "alu", Op: OpAdd, Width: 16}).
		Cloud("ctl", 1, 4, 1, 20).
		Wire("din", "reg1.d").
		Wire("reg1.q", "m1.in0").
		Wire("alu.out", "m1.in1").
		Wire("m1.out", "reg2.d").
		Wire("reg2.q", "reg3.d").
		Wire("reg3.q", "dout").
		Wire("reg1.q", "alu.in0").
		Wire("reg2.q", "alu.in1").
		Wire("reg1.q[3:0]", "ctl.in0").
		Wire("ctl.out", "m1.sel").
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return c
}

func TestBuildAndValidate(t *testing.T) {
	c := figure1Core(t)
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := c.FFCount(); got != 48 {
		t.Errorf("FFCount = %d, want 48", got)
	}
	if got := c.InputBits(); got != 16 {
		t.Errorf("InputBits = %d, want 16", got)
	}
	if got := c.OutputBits(); got != 16 {
		t.Errorf("OutputBits = %d, want 16", got)
	}
	if len(c.Inputs()) != 1 || len(c.Outputs()) != 1 {
		t.Errorf("Inputs/Outputs = %d/%d, want 1/1", len(c.Inputs()), len(c.Outputs()))
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	_, err := NewCore("dup").In("x", 4).Reg("x", 4).Build()
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("want duplicate-name error, got %v", err)
	}
}

func TestWidthMismatchRejected(t *testing.T) {
	_, err := NewCore("wm").In("a", 8).Reg("r", 4).Wire("a", "r.d").Build()
	if err == nil || !strings.Contains(err.Error(), "width mismatch") {
		t.Fatalf("want width mismatch error, got %v", err)
	}
}

func TestDoubleDriverRejected(t *testing.T) {
	_, err := NewCore("dd").
		In("a", 4).In("b", 4).Reg("r", 4).
		Wire("a", "r.d").Wire("b", "r.d").
		Build()
	if err == nil || !strings.Contains(err.Error(), "driven by both") {
		t.Fatalf("want double-driver error, got %v", err)
	}
}

func TestBadSliceRejected(t *testing.T) {
	_, err := NewCore("bs").In("a", 4).Reg("r", 4).Wire("a[5:2]", "r.d").Build()
	if err == nil {
		t.Fatal("want out-of-range slice error, got nil")
	}
}

func TestSinkSourceDirectionRejected(t *testing.T) {
	_, err := NewCore("sd").In("a", 4).Out("z", 4).Reg("r", 4).Wire("z", "r.d").Build()
	if err == nil || !strings.Contains(err.Error(), "not a source") {
		t.Fatalf("want not-a-source error, got %v", err)
	}
	_, err = NewCore("sd2").In("a", 4).In("b", 4).Reg("r", 4).Wire("a", "b").Build()
	if err == nil || !strings.Contains(err.Error(), "not a sink") {
		t.Fatalf("want not-a-sink error, got %v", err)
	}
}

func TestParseEndpoint(t *testing.T) {
	cases := []struct {
		in      string
		comp    string
		pin     string
		lo, hi  int
		wantErr bool
	}{
		{"reg1", "reg1", "", 0, fullWidth, false},
		{"reg1.q", "reg1", "q", 0, fullWidth, false},
		{"reg1.q[3]", "reg1", "q", 3, 3, false},
		{"reg1.q[7:4]", "reg1", "q", 4, 7, false},
		{"a[2:5]", "", "", 0, 0, true}, // hi < lo
		{"a[-1]", "", "", 0, 0, true},
		{"a[3", "", "", 0, 0, true},
		{"", "", "", 0, 0, true},
		{".q", "", "", 0, 0, true},
	}
	for _, tc := range cases {
		ep, err := ParseEndpoint(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseEndpoint(%q): want error, got %v", tc.in, ep)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseEndpoint(%q): %v", tc.in, err)
			continue
		}
		if ep.Comp != tc.comp || ep.Pin != tc.pin || ep.Lo != tc.lo || ep.Hi != tc.hi {
			t.Errorf("ParseEndpoint(%q) = %+v, want comp=%q pin=%q lo=%d hi=%d", tc.in, ep, tc.comp, tc.pin, tc.lo, tc.hi)
		}
	}
}

func TestTracePathsThroughMux(t *testing.T) {
	c := figure1Core(t)
	paths := TracePaths(c, Endpoint{"reg2", "d", 0, 15})
	// reg1.q -> m1@0 -> reg2.d is a mux path; alu.out via m1@1 is blocked.
	var found bool
	for _, p := range paths {
		if p.Src.Comp == "reg1" && p.Dst.Comp == "reg2" {
			found = true
			if len(p.Hops) != 1 || p.Hops[0] != (Hop{"m1", 0}) {
				t.Errorf("reg1->reg2 hops = %v, want [m1@0]", p.Hops)
			}
		}
		if p.Src.Comp == "alu" {
			t.Errorf("path through unit leaked: %v", p)
		}
	}
	if !found {
		t.Fatalf("no reg1->reg2 path found; paths=%v", paths)
	}
}

func TestTracePathsDirect(t *testing.T) {
	c := figure1Core(t)
	paths := TracePaths(c, Endpoint{"reg3", "d", 0, 15})
	if len(paths) != 1 {
		t.Fatalf("got %d paths, want 1: %v", len(paths), paths)
	}
	p := paths[0]
	if p.Src.Comp != "reg2" || !p.Direct() {
		t.Errorf("want direct reg2->reg3, got %v", p)
	}
}

func TestTracePathsToOutput(t *testing.T) {
	c := figure1Core(t)
	paths := TracePaths(c, Endpoint{"dout", "", 0, 15})
	if len(paths) != 1 || paths[0].Src.Comp != "reg3" {
		t.Fatalf("want single reg3->dout path, got %v", paths)
	}
}

func TestTracePathsBitSliced(t *testing.T) {
	// A register driven piecewise: low nibble from input a, high nibble
	// from register r2 (a C-split at r1 in RCG terms).
	c, err := NewCore("slice").
		In("a", 4).
		Out("z", 8).
		Reg("r1", 8).
		Reg("r2", 4).
		Wire("a", "r1.d[3:0]").
		Wire("r2.q", "r1.d[7:4]").
		Wire("r1.q", "z").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	paths := TracePaths(c, Endpoint{"r1", "d", 0, 7})
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2: %v", len(paths), paths)
	}
	for _, p := range paths {
		switch p.Src.Comp {
		case "a":
			if p.Dst.Lo != 0 || p.Dst.Hi != 3 {
				t.Errorf("a slice lands at %v, want d[3:0]", p.Dst)
			}
		case "r2":
			if p.Dst.Lo != 4 || p.Dst.Hi != 7 {
				t.Errorf("r2 slice lands at %v, want d[7:4]", p.Dst)
			}
		default:
			t.Errorf("unexpected source %v", p.Src)
		}
	}
}

func TestConflicts(t *testing.T) {
	a := Path{Hops: []Hop{{"m1", 0}, {"m2", 1}}}
	b := Path{Hops: []Hop{{"m1", 1}}}
	d := Path{Hops: []Hop{{"m2", 1}, {"m3", 0}}}
	if !Conflicts(a, b) {
		t.Error("a,b share m1 with different selects: want conflict")
	}
	if Conflicts(a, d) {
		t.Error("a,d agree on m2: want no conflict")
	}
	if Conflicts(b, d) {
		t.Error("b,d share nothing: want no conflict")
	}
}

func TestUndriven(t *testing.T) {
	c, err := NewCore("ud").
		In("a", 4).
		Reg("r", 8).
		Wire("a", "r.d[3:0]").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	und := c.Undriven()
	if len(und) != 1 {
		t.Fatalf("Undriven = %v, want one run", und)
	}
	if und[0].Comp != "r" || und[0].Lo != 4 || und[0].Hi != 7 {
		t.Errorf("Undriven[0] = %v, want r.d[7:4]", und[0])
	}
}

func TestAllPathsCoversRegsAndOutputs(t *testing.T) {
	c := figure1Core(t)
	all := AllPaths(c)
	dsts := map[string]bool{}
	for _, p := range all {
		dsts[p.Dst.Comp] = true
	}
	for _, want := range []string{"reg1", "reg2", "reg3", "dout"} {
		if !dsts[want] {
			t.Errorf("AllPaths missing destination %s (paths=%v)", want, all)
		}
	}
}

func TestPinWidthErrors(t *testing.T) {
	c := figure1Core(t)
	if _, err := c.PinWidth("nosuch", ""); err == nil {
		t.Error("unknown component accepted")
	}
	if _, err := c.PinWidth("reg1", "bogus"); err == nil {
		t.Error("unknown register pin accepted")
	}
	if _, err := c.PinWidth("reg1", "ld"); err == nil {
		t.Error("ld pin on load-less register accepted")
	}
	if w, err := c.PinWidth("m1", "sel"); err != nil || w != 1 {
		t.Errorf("m1.sel width = %d,%v want 1,nil", w, err)
	}
}

func TestMuxSelWidth(t *testing.T) {
	cases := []struct{ numIn, want int }{{2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}}
	for _, tc := range cases {
		m := Mux{NumIn: tc.numIn}
		if got := m.SelWidth(); got != tc.want {
			t.Errorf("SelWidth(%d inputs) = %d, want %d", tc.numIn, got, tc.want)
		}
	}
}

func TestRegLdPin(t *testing.T) {
	c, err := NewCore("ld").
		In("a", 4).CtlIn("en", 1).
		Reg("plain", 4).
		RegLd("held", 4).
		Wire("a", "held.d").
		Wire("en", "held.ld").
		Wire("a", "plain.d").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	r, ok := c.RegByName("held")
	if !ok || !r.HasLoad {
		t.Fatal("held register lost its load pin")
	}
	paths := TracePaths(c, Endpoint{"held", "ld", 0, 0})
	if len(paths) != 1 || paths[0].Src.Comp != "en" {
		t.Errorf("ld pin paths = %v, want en->held.ld", paths)
	}
}
