package rtl

// must unwraps Builder.Build for this package's hand-written test
// fixtures, where a build error is a bug in the test itself.
func must(c *Core, err error) *Core {
	if err != nil {
		panic("test fixture failed to build: " + err.Error())
	}
	return c
}
