package rtl

import (
	"strings"
	"testing"
)

func TestStringFormats(t *testing.T) {
	ep := Endpoint{Comp: "r", Pin: "q", Lo: 2, Hi: 5}
	if ep.String() != "r.q[5:2]" {
		t.Errorf("endpoint string = %q", ep.String())
	}
	one := Endpoint{Comp: "a", Lo: 3, Hi: 3}
	if one.String() != "a[3]" {
		t.Errorf("single-bit string = %q", one.String())
	}
	cn := Conn{From: one, To: Endpoint{Comp: "r", Pin: "d", Lo: 0, Hi: 0}}
	if cn.String() != "a[3] -> r.d[0]" {
		t.Errorf("conn string = %q", cn.String())
	}
	if In.String() != "in" || Out.String() != "out" {
		t.Error("direction strings")
	}
	if KindPort.String() != "port" || KindReg.String() != "reg" || KindMux.String() != "mux" || KindUnit.String() != "unit" {
		t.Error("kind strings")
	}
	if OpAdd.String() != "add" || OpCloud.String() != "cloud" {
		t.Error("op strings")
	}
	if !strings.HasPrefix(UnitOp(99).String(), "UnitOp(") {
		t.Error("unknown op string")
	}
	if !strings.HasPrefix(CompKind(9).String(), "CompKind(") {
		t.Error("unknown kind string")
	}
	h := Hop{Mux: "m", Sel: 1}
	if h.String() != "m@1" {
		t.Errorf("hop string = %q", h.String())
	}
}

func TestMustEndpointPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEndpoint accepted garbage")
		}
	}()
	MustEndpoint("[oops")
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild accepted an invalid core")
		}
	}()
	NewCore("bad").In("a", 4).In("a", 4).MustBuild()
}

func TestFanoutAndDrivers(t *testing.T) {
	c := NewCore("fan").
		In("a", 4).
		Out("x", 4).Out("y", 4).
		Reg("r", 4).
		Wire("a", "r.d").
		Wire("r.q", "x").
		Wire("r.q", "y").
		MustBuild()
	fo := FanoutOf(c, Endpoint{Comp: "r", Pin: "q", Lo: 0, Hi: 3})
	if len(fo) != 2 {
		t.Errorf("fanout = %d conns, want 2", len(fo))
	}
	dr := DriversOf(c, Endpoint{Comp: "r", Pin: "d", Lo: 0, Hi: 3})
	if len(dr) != 1 || dr[0].From.Comp != "a" {
		t.Errorf("drivers = %v", dr)
	}
	if len(FanoutOf(c, Endpoint{Comp: "a", Lo: 0, Hi: 3})) != 1 {
		t.Error("input fanout")
	}
	// Non-overlapping slice sees nothing.
	if len(DriversOf(c, Endpoint{Comp: "r", Pin: "q", Lo: 0, Hi: 3})) != 0 {
		t.Error("q pin has drivers?")
	}
}

func TestPathHelpers(t *testing.T) {
	p := Path{
		Src:  Endpoint{Comp: "a", Lo: 0, Hi: 3},
		Dst:  Endpoint{Comp: "r", Pin: "d", Lo: 0, Hi: 3},
		Hops: []Hop{{"m", 1}},
	}
	if p.Direct() {
		t.Error("path with hops is not direct")
	}
	s := p.String()
	if !strings.Contains(s, "m@1") || !strings.Contains(s, "r.d") {
		t.Errorf("path string = %q", s)
	}
}

func TestAluOpPin(t *testing.T) {
	c := NewCore("alu").
		In("a", 4).In("b", 4).In("op", 2).
		Out("z", 4).
		Unit(Unit{Name: "u", Op: OpAlu, Width: 4, AluOps: 4}).
		Wire("a", "u.in0").Wire("b", "u.in1").Wire("op", "u.op").
		Wire("u.out", "z").
		MustBuild()
	w, err := c.PinWidth("u", "op")
	if err != nil || w != 2 {
		t.Errorf("alu op width = %d, %v", w, err)
	}
	// Undriven op would appear in Undriven if disconnected.
	c2 := NewCore("alu2").
		In("a", 4).In("b", 4).
		Out("z", 4).
		Unit(Unit{Name: "u", Op: OpAlu, Width: 4, AluOps: 4}).
		Wire("a", "u.in0").Wire("b", "u.in1").
		Wire("u.out", "z").
		MustBuild()
	found := false
	for _, u := range c2.Undriven() {
		if u.Comp == "u" && u.Pin == "op" {
			found = true
		}
	}
	if !found {
		t.Errorf("undriven alu op not reported: %v", c2.Undriven())
	}
}

func TestLookupMissing(t *testing.T) {
	c := NewCore("l").In("a", 1).Out("z", 1).Reg("r", 1).
		Wire("a", "r.d").Wire("r.q", "z").MustBuild()
	if _, ok := c.PortByName("r"); ok {
		t.Error("register returned as port")
	}
	if _, ok := c.RegByName("a"); ok {
		t.Error("port returned as register")
	}
	if _, ok := c.MuxByName("a"); ok {
		t.Error("port returned as mux")
	}
	if _, ok := c.UnitByName("a"); ok {
		t.Error("port returned as unit")
	}
}
