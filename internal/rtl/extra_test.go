package rtl

import (
	"strings"
	"testing"
)

func TestStringFormats(t *testing.T) {
	ep := Endpoint{Comp: "r", Pin: "q", Lo: 2, Hi: 5}
	if ep.String() != "r.q[5:2]" {
		t.Errorf("endpoint string = %q", ep.String())
	}
	one := Endpoint{Comp: "a", Lo: 3, Hi: 3}
	if one.String() != "a[3]" {
		t.Errorf("single-bit string = %q", one.String())
	}
	cn := Conn{From: one, To: Endpoint{Comp: "r", Pin: "d", Lo: 0, Hi: 0}}
	if cn.String() != "a[3] -> r.d[0]" {
		t.Errorf("conn string = %q", cn.String())
	}
	if In.String() != "in" || Out.String() != "out" {
		t.Error("direction strings")
	}
	if KindPort.String() != "port" || KindReg.String() != "reg" || KindMux.String() != "mux" || KindUnit.String() != "unit" {
		t.Error("kind strings")
	}
	if OpAdd.String() != "add" || OpCloud.String() != "cloud" {
		t.Error("op strings")
	}
	if !strings.HasPrefix(UnitOp(99).String(), "UnitOp(") {
		t.Error("unknown op string")
	}
	if !strings.HasPrefix(CompKind(9).String(), "CompKind(") {
		t.Error("unknown kind string")
	}
	h := Hop{Mux: "m", Sel: 1}
	if h.String() != "m@1" {
		t.Errorf("hop string = %q", h.String())
	}
}

func TestMalformedEndpointReturnsError(t *testing.T) {
	for _, s := range []string{"[oops", "a[3:x]", "a[-1]", "a[2:5]", ".pin", ""} {
		if _, err := ParseEndpoint(s); err == nil {
			t.Errorf("ParseEndpoint(%q) accepted garbage", s)
		}
	}
}

// TestMalformedBuildReturnsError pins the error-returning contract of
// Builder.Build: malformed cores must fail loudly with an error, never
// panic, and never yield a non-nil core.
func TestMalformedBuildReturnsError(t *testing.T) {
	cases := []struct {
		name string
		b    *Builder
	}{
		{"duplicate port", NewCore("bad").In("a", 4).In("a", 4)},
		{"bad endpoint syntax", NewCore("bad").In("a", 4).Out("z", 4).Wire("a[oops", "z")},
		{"unknown component", NewCore("bad").In("a", 4).Out("z", 4).Wire("ghost.q", "z")},
		{"slice out of range", NewCore("bad").In("a", 4).Out("z", 8).Wire("a[7:0]", "z")},
		{"tiny mux", NewCore("bad").In("a", 4).Out("z", 4).Mux("m", 4, 1).
			Wire("a", "m.in0").Wire("a", "m.in1").Wire("a", "m.sel").Wire("m.out", "z")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Build panicked: %v", r)
				}
			}()
			c, err := tc.b.Build()
			if err == nil {
				t.Fatal("Build accepted a malformed core")
			}
			if c != nil {
				t.Fatalf("Build returned non-nil core alongside error %v", err)
			}
		})
	}
}

func TestFanoutAndDrivers(t *testing.T) {
	c := must(NewCore("fan").
		In("a", 4).
		Out("x", 4).Out("y", 4).
		Reg("r", 4).
		Wire("a", "r.d").
		Wire("r.q", "x").
		Wire("r.q", "y").
		Build())
	fo := FanoutOf(c, Endpoint{Comp: "r", Pin: "q", Lo: 0, Hi: 3})
	if len(fo) != 2 {
		t.Errorf("fanout = %d conns, want 2", len(fo))
	}
	dr := DriversOf(c, Endpoint{Comp: "r", Pin: "d", Lo: 0, Hi: 3})
	if len(dr) != 1 || dr[0].From.Comp != "a" {
		t.Errorf("drivers = %v", dr)
	}
	if len(FanoutOf(c, Endpoint{Comp: "a", Lo: 0, Hi: 3})) != 1 {
		t.Error("input fanout")
	}
	// Non-overlapping slice sees nothing.
	if len(DriversOf(c, Endpoint{Comp: "r", Pin: "q", Lo: 0, Hi: 3})) != 0 {
		t.Error("q pin has drivers?")
	}
}

func TestPathHelpers(t *testing.T) {
	p := Path{
		Src:  Endpoint{Comp: "a", Lo: 0, Hi: 3},
		Dst:  Endpoint{Comp: "r", Pin: "d", Lo: 0, Hi: 3},
		Hops: []Hop{{"m", 1}},
	}
	if p.Direct() {
		t.Error("path with hops is not direct")
	}
	s := p.String()
	if !strings.Contains(s, "m@1") || !strings.Contains(s, "r.d") {
		t.Errorf("path string = %q", s)
	}
}

func TestAluOpPin(t *testing.T) {
	c := must(NewCore("alu").
		In("a", 4).In("b", 4).In("op", 2).
		Out("z", 4).
		Unit(Unit{Name: "u", Op: OpAlu, Width: 4, AluOps: 4}).
		Wire("a", "u.in0").Wire("b", "u.in1").Wire("op", "u.op").
		Wire("u.out", "z").
		Build())
	w, err := c.PinWidth("u", "op")
	if err != nil || w != 2 {
		t.Errorf("alu op width = %d, %v", w, err)
	}
	// Undriven op would appear in Undriven if disconnected.
	c2 := must(NewCore("alu2").
		In("a", 4).In("b", 4).
		Out("z", 4).
		Unit(Unit{Name: "u", Op: OpAlu, Width: 4, AluOps: 4}).
		Wire("a", "u.in0").Wire("b", "u.in1").
		Wire("u.out", "z").
		Build())
	found := false
	for _, u := range c2.Undriven() {
		if u.Comp == "u" && u.Pin == "op" {
			found = true
		}
	}
	if !found {
		t.Errorf("undriven alu op not reported: %v", c2.Undriven())
	}
}

func TestLookupMissing(t *testing.T) {
	c := must(NewCore("l").In("a", 1).Out("z", 1).Reg("r", 1).
		Wire("a", "r.d").Wire("r.q", "z").Build())
	if _, ok := c.PortByName("r"); ok {
		t.Error("register returned as port")
	}
	if _, ok := c.RegByName("a"); ok {
		t.Error("port returned as register")
	}
	if _, ok := c.MuxByName("a"); ok {
		t.Error("port returned as mux")
	}
	if _, ok := c.UnitByName("a"); ok {
		t.Error("port returned as unit")
	}
}
