package rtl

import (
	"fmt"
	"sort"
)

// Hop records one multiplexer traversed by a data path, and the select
// value that steers the path through it.
type Hop struct {
	Mux string
	Sel int
}

func (h Hop) String() string { return fmt.Sprintf("%s@%d", h.Mux, h.Sel) }

// Path is a combinational data path from a register output or input port
// (Src) to a register input or output port (Dst) passing only through
// multiplexers (Hops, in Src-to-Dst order) and wires. These are exactly the
// "direct or multiplexer paths" that define register connectivity graph
// edges in the paper (Section 4) and the reusable scan paths of HSCAN
// (Section 2, Figure 1).
type Path struct {
	Src  Endpoint // register "q" slice or input-port slice
	Dst  Endpoint // register "d" slice, register "ld", or output-port slice
	Hops []Hop
}

// Direct reports whether the path uses no multiplexer.
func (p Path) Direct() bool { return len(p.Hops) == 0 }

func (p Path) String() string {
	s := p.Src.String()
	for _, h := range p.Hops {
		s += " ->" + h.String()
	}
	return s + " -> " + p.Dst.String()
}

// maxTraceDepth bounds path search in (illegal) cyclic mux structures.
const maxTraceDepth = 64

// TracePaths enumerates every mux-only path ending at the sink slice dst.
// The sink may be covered piecewise by different sources; each piece yields
// its own Path with a correspondingly narrowed Dst slice.
func TracePaths(c *Core, dst Endpoint) []Path {
	var out []Path
	var walk func(sink Endpoint, dstLo, dstHi int, hops []Hop, depth int)
	walk = func(sink Endpoint, dstLo, dstHi int, hops []Hop, depth int) {
		if depth > maxTraceDepth {
			return
		}
		for _, cn := range c.Conns {
			if cn.To.Comp != sink.Comp || cn.To.Pin != sink.Pin {
				continue
			}
			ovLo, ovHi := cn.To.Lo, cn.To.Hi
			if sink.Lo > ovLo {
				ovLo = sink.Lo
			}
			if sink.Hi < ovHi {
				ovHi = sink.Hi
			}
			if ovLo > ovHi {
				continue
			}
			srcLo := cn.From.Lo + (ovLo - cn.To.Lo)
			srcHi := srcLo + (ovHi - ovLo)
			dLo := dstLo + (ovLo - sink.Lo)
			dHi := dLo + (ovHi - ovLo)
			kind, idx, ok := c.Lookup(cn.From.Comp)
			if !ok {
				continue
			}
			switch kind {
			case KindReg, KindPort:
				hh := make([]Hop, len(hops))
				copy(hh, hops)
				out = append(out, Path{
					Src:  Endpoint{cn.From.Comp, cn.From.Pin, srcLo, srcHi},
					Dst:  Endpoint{dst.Comp, dst.Pin, dLo, dHi},
					Hops: hh,
				})
			case KindMux:
				if cn.From.Pin != "out" {
					continue
				}
				m := c.Muxes[idx]
				for k := 0; k < m.NumIn; k++ {
					hh := make([]Hop, 0, len(hops)+1)
					hh = append(hh, Hop{m.Name, k})
					hh = append(hh, hops...)
					walk(Endpoint{m.Name, fmt.Sprintf("in%d", k), srcLo, srcHi}, dLo, dHi, hh, depth+1)
				}
			case KindUnit:
				// Data is transformed by functional units; such paths are
				// not usable for lossless transparency or scan.
			}
		}
	}
	walk(dst, dst.Lo, dst.Hi, nil, 0)
	sortPaths(out)
	return out
}

// AllPaths enumerates mux-only paths into every register "d" pin and every
// output port of the core. This is the raw material for both HSCAN chain
// construction and RCG extraction.
func AllPaths(c *Core) []Path {
	var out []Path
	for _, r := range c.Regs {
		out = append(out, TracePaths(c, Endpoint{r.Name, "d", 0, r.Width - 1})...)
	}
	for _, p := range c.Ports {
		if p.Dir == Out {
			out = append(out, TracePaths(c, Endpoint{p.Name, "", 0, p.Width - 1})...)
		}
	}
	sortPaths(out)
	return out
}

func sortPaths(ps []Path) {
	sort.Slice(ps, func(i, j int) bool {
		a, b := ps[i], ps[j]
		if a.Dst.Comp != b.Dst.Comp {
			return a.Dst.Comp < b.Dst.Comp
		}
		if a.Dst.Lo != b.Dst.Lo {
			return a.Dst.Lo < b.Dst.Lo
		}
		if a.Src.Comp != b.Src.Comp {
			return a.Src.Comp < b.Src.Comp
		}
		if a.Src.Lo != b.Src.Lo {
			return a.Src.Lo < b.Src.Lo
		}
		return len(a.Hops) < len(b.Hops)
	})
}

// Conflicts reports whether two paths require contradictory select values
// on a shared multiplexer, i.e. they cannot be active in the same cycle.
func Conflicts(a, b Path) bool {
	for _, ha := range a.Hops {
		for _, hb := range b.Hops {
			if ha.Mux == hb.Mux && ha.Sel != hb.Sel {
				return true
			}
		}
	}
	return false
}

// DriversOf returns the connections that drive any bit of the given sink
// slice.
func DriversOf(c *Core, sink Endpoint) []Conn {
	var out []Conn
	for _, cn := range c.Conns {
		if cn.To.Comp != sink.Comp || cn.To.Pin != sink.Pin {
			continue
		}
		if cn.To.Hi < sink.Lo || cn.To.Lo > sink.Hi {
			continue
		}
		out = append(out, cn)
	}
	return out
}

// FanoutOf returns the connections driven by any bit of the given source
// slice.
func FanoutOf(c *Core, src Endpoint) []Conn {
	var out []Conn
	for _, cn := range c.Conns {
		if cn.From.Comp != src.Comp || cn.From.Pin != src.Pin {
			continue
		}
		if cn.From.Hi < src.Lo || cn.From.Lo > src.Hi {
			continue
		}
		out = append(out, cn)
	}
	return out
}
