package rtl

import (
	"fmt"
	"strconv"
	"strings"
)

// Builder assembles a Core with a compact textual endpoint syntax.
// Endpoints are written "comp", "comp.pin", "comp[3]", "comp.pin[7:4]";
// slices use Verilog-style [hi:lo] with inclusive indices. Errors are
// accumulated and reported by Build.
type Builder struct {
	core Core
	errs []error
}

// NewCore starts building a core with the given name.
func NewCore(name string) *Builder {
	return &Builder{core: Core{Name: name}}
}

func (b *Builder) errorf(format string, args ...interface{}) {
	b.errs = append(b.errs, fmt.Errorf("rtl: core %s: "+format, append([]interface{}{b.core.Name}, args...)...))
}

// In declares a data input port.
func (b *Builder) In(name string, width int) *Builder {
	b.core.Ports = append(b.core.Ports, Port{Name: name, Dir: In, Width: width})
	return b
}

// CtlIn declares a control input port (e.g. Reset, Interrupt).
func (b *Builder) CtlIn(name string, width int) *Builder {
	b.core.Ports = append(b.core.Ports, Port{Name: name, Dir: In, Width: width, Control: true})
	return b
}

// Out declares a data output port.
func (b *Builder) Out(name string, width int) *Builder {
	b.core.Ports = append(b.core.Ports, Port{Name: name, Dir: Out, Width: width})
	return b
}

// CtlOut declares a control output port (e.g. Read, Write).
func (b *Builder) CtlOut(name string, width int) *Builder {
	b.core.Ports = append(b.core.Ports, Port{Name: name, Dir: Out, Width: width, Control: true})
	return b
}

// Reg declares a register without a load-enable.
func (b *Builder) Reg(name string, width int) *Builder {
	b.core.Regs = append(b.core.Regs, Register{Name: name, Width: width})
	return b
}

// RegLd declares a register with a load-enable pin "ld".
func (b *Builder) RegLd(name string, width int) *Builder {
	b.core.Regs = append(b.core.Regs, Register{Name: name, Width: width, HasLoad: true})
	return b
}

// Mux declares an n-to-1 multiplexer.
func (b *Builder) Mux(name string, width, numIn int) *Builder {
	if numIn < 2 {
		b.errorf("mux %s: need at least 2 inputs, got %d", name, numIn)
		numIn = 2
	}
	b.core.Muxes = append(b.core.Muxes, Mux{Name: name, Width: width, NumIn: numIn})
	return b
}

// Unit declares a functional unit.
func (b *Builder) Unit(u Unit) *Builder {
	if u.NumIn == 0 {
		switch u.Op {
		case OpInc, OpDec, OpNot, OpShl, OpShr, OpDecode:
			u.NumIn = 1
		case OpConst:
			u.NumIn = 0
		default:
			u.NumIn = 2
		}
	}
	if u.OutWidth == 0 {
		switch u.Op {
		case OpEq:
			u.OutWidth = 1
		case OpDecode:
			u.OutWidth = 1 << u.Width
		default:
			u.OutWidth = u.Width
		}
	}
	b.core.Units = append(b.core.Units, u)
	return b
}

// Cloud declares an opaque combinational cloud named name with inWidth-bit
// inputs (numIn of them), outWidth output bits, and approximately gates
// synthesized gates.
func (b *Builder) Cloud(name string, numIn, inWidth, outWidth, gates int) *Builder {
	return b.Unit(Unit{Name: name, Op: OpCloud, Width: inWidth, NumIn: numIn, OutWidth: outWidth, CloudGates: gates})
}

// DecodeCloud declares an AND-biased (decoder-like) combinational cloud.
func (b *Builder) DecodeCloud(name string, numIn, inWidth, outWidth, gates int) *Builder {
	return b.Unit(Unit{Name: name, Op: OpCloud, Width: inWidth, NumIn: numIn, OutWidth: outWidth, CloudGates: gates, CloudAndBias: true})
}

// Const declares a constant source unit of the given width and value.
func (b *Builder) Const(name string, width int, val uint64) *Builder {
	return b.Unit(Unit{Name: name, Op: OpConst, Width: width, OutWidth: width, ConstVal: val})
}

// Wire connects source endpoint from to sink endpoint to, both in endpoint
// syntax. Unsliced endpoints span the full pin width.
func (b *Builder) Wire(from, to string) *Builder {
	f, err := ParseEndpoint(from)
	if err != nil {
		b.errorf("%v", err)
		return b
	}
	t, err := ParseEndpoint(to)
	if err != nil {
		b.errorf("%v", err)
		return b
	}
	b.core.Conns = append(b.core.Conns, Conn{From: f, To: t})
	return b
}

// Build finalizes the core: full-width slices are resolved, and the core is
// validated.
func (b *Builder) Build() (*Core, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	c := b.core
	if err := c.buildIndex(); err != nil {
		return nil, err
	}
	for i := range c.Conns {
		for _, ep := range []*Endpoint{&c.Conns[i].From, &c.Conns[i].To} {
			if ep.Hi == fullWidth {
				w, err := c.PinWidth(ep.Comp, ep.Pin)
				if err != nil {
					return nil, err
				}
				ep.Lo, ep.Hi = 0, w-1
			}
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// fullWidth marks an endpoint whose slice spans the whole pin; resolved at
// Build time once pin widths are known.
const fullWidth = -1

// ParseEndpoint parses endpoint syntax: "comp", "comp.pin", "comp[3]",
// "comp.pin[7:4]". An endpoint without an explicit slice spans the full pin
// (Hi is set to an internal marker resolved during Build).
func ParseEndpoint(s string) (Endpoint, error) {
	orig := s
	ep := Endpoint{Lo: 0, Hi: fullWidth}
	if i := strings.IndexByte(s, '['); i >= 0 {
		if !strings.HasSuffix(s, "]") {
			return ep, fmt.Errorf("rtl: bad endpoint %q: missing ]", orig)
		}
		idx := s[i+1 : len(s)-1]
		s = s[:i]
		if j := strings.IndexByte(idx, ':'); j >= 0 {
			hi, err1 := strconv.Atoi(idx[:j])
			lo, err2 := strconv.Atoi(idx[j+1:])
			if err1 != nil || err2 != nil || lo < 0 || hi < lo {
				return ep, fmt.Errorf("rtl: bad endpoint %q: bad slice [%s]", orig, idx)
			}
			ep.Lo, ep.Hi = lo, hi
		} else {
			bit, err := strconv.Atoi(idx)
			if err != nil || bit < 0 {
				return ep, fmt.Errorf("rtl: bad endpoint %q: bad index [%s]", orig, idx)
			}
			ep.Lo, ep.Hi = bit, bit
		}
	}
	if j := strings.IndexByte(s, '.'); j >= 0 {
		ep.Comp, ep.Pin = s[:j], s[j+1:]
	} else {
		ep.Comp = s
	}
	if ep.Comp == "" {
		return ep, fmt.Errorf("rtl: bad endpoint %q: empty component", orig)
	}
	return ep, nil
}
