package rtl

import (
	"fmt"
	"strconv"
	"strings"
)

// The line-based core script is the package's text wire format: compact
// enough to paste into a JSON job spec, line-oriented enough to fuzz and
// diff. One line declares one element:
//
//	n NAME        core name
//	i NAME W      data input        j NAME W   control input
//	o NAME W      data output       p NAME W   control output
//	r NAME W      register          l NAME W   register with load-enable
//	m NAME W N    N-to-1 mux
//	u NAME OP W NIN OUTW ALUOPS GATES BIAS [CONST]   functional unit
//	w FROM TO     wire in endpoint syntax
//
// Unknown or short lines are ignored, so arbitrary or mutated input
// still reaches Build with a partially sensible structure; all
// structural validation is Build's job. Numeric fields are clamped to
// keep per-bit bookkeeping bounded — the clamp bounds structure size,
// not validity, so malformed cores still flow through (and a hostile
// script cannot ask a daemon for a 2^31-bit port). The codec round
// trips: EncodeScript(c) decodes back to a core equal in structure to
// c. Both rtl's FuzzValidate corpus and the socetd job-spec chip
// scripts speak this format.
const (
	// ScriptMaxLines bounds how many lines DecodeScript interprets.
	ScriptMaxLines = 200
	// ScriptMaxWidth bounds every declared port/register/mux width.
	ScriptMaxWidth = 64
)

func clampScriptInt(s string, lo, hi int) int {
	v, err := strconv.Atoi(s)
	if err != nil {
		return lo
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// DecodeScript interprets a core script into a Builder. It never panics
// and never fails on any input; structural validation is left to Build.
func DecodeScript(script string) *Builder {
	b := NewCore("script")
	lines := strings.Split(script, "\n")
	if len(lines) > ScriptMaxLines {
		lines = lines[:ScriptMaxLines]
	}
	for _, line := range lines {
		f := strings.Fields(line)
		if len(f) == 0 {
			continue
		}
		switch f[0] {
		case "n":
			if len(f) >= 2 {
				// A name line restarts the builder under the new name;
				// declarations made so far are discarded (cheap, and
				// name lines lead real scripts anyway).
				b = NewCore(f[1])
			}
		case "i":
			if len(f) >= 3 {
				b.In(f[1], clampScriptInt(f[2], -1, ScriptMaxWidth))
			}
		case "j":
			if len(f) >= 3 {
				b.CtlIn(f[1], clampScriptInt(f[2], -1, ScriptMaxWidth))
			}
		case "o":
			if len(f) >= 3 {
				b.Out(f[1], clampScriptInt(f[2], -1, ScriptMaxWidth))
			}
		case "p":
			if len(f) >= 3 {
				b.CtlOut(f[1], clampScriptInt(f[2], -1, ScriptMaxWidth))
			}
		case "r":
			if len(f) >= 3 {
				b.Reg(f[1], clampScriptInt(f[2], -1, ScriptMaxWidth))
			}
		case "l":
			if len(f) >= 3 {
				b.RegLd(f[1], clampScriptInt(f[2], -1, ScriptMaxWidth))
			}
		case "m":
			if len(f) >= 4 {
				b.Mux(f[1], clampScriptInt(f[2], -1, ScriptMaxWidth), clampScriptInt(f[3], 0, ScriptMaxWidth))
			}
		case "u":
			if len(f) >= 9 {
				op := UnitOp(clampScriptInt(f[2], 0, int(OpCloud)))
				w := clampScriptInt(f[3], -1, ScriptMaxWidth)
				if op == OpDecode && w > 8 {
					// OutWidth is 1<<Width for decoders; keep it bounded.
					w = 8
				}
				u := Unit{
					Name:         f[1],
					Op:           op,
					Width:        w,
					NumIn:        clampScriptInt(f[4], 0, 8),
					OutWidth:     clampScriptInt(f[5], 0, 1<<10),
					AluOps:       clampScriptInt(f[6], 0, 8),
					CloudGates:   clampScriptInt(f[7], 0, 1<<16),
					CloudAndBias: f[8] == "1",
				}
				if len(f) >= 10 {
					u.ConstVal = uint64(clampScriptInt(f[9], 0, 1<<20))
				}
				b.Unit(u)
			}
		case "w":
			if len(f) >= 3 {
				b.Wire(f[1], f[2])
			}
		}
	}
	return b
}

// EncodeScript serializes a built core back into script form — the seed
// corpus generator for FuzzValidate and the round-trip half the chip
// script format builds on.
func EncodeScript(c *Core) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n %s\n", c.Name)
	for _, p := range c.Ports {
		tag := map[bool]string{false: "i", true: "j"}[p.Control]
		if p.Dir == Out {
			tag = map[bool]string{false: "o", true: "p"}[p.Control]
		}
		fmt.Fprintf(&sb, "%s %s %d\n", tag, p.Name, p.Width)
	}
	for _, r := range c.Regs {
		tag := "r"
		if r.HasLoad {
			tag = "l"
		}
		fmt.Fprintf(&sb, "%s %s %d\n", tag, r.Name, r.Width)
	}
	for _, m := range c.Muxes {
		fmt.Fprintf(&sb, "m %s %d %d\n", m.Name, m.Width, m.NumIn)
	}
	for _, u := range c.Units {
		bias := "0"
		if u.CloudAndBias {
			bias = "1"
		}
		fmt.Fprintf(&sb, "u %s %d %d %d %d %d %d %s %d\n",
			u.Name, int(u.Op), u.Width, u.NumIn, u.OutWidth, u.AluOps, u.CloudGates, bias, u.ConstVal)
	}
	for _, cn := range c.Conns {
		fmt.Fprintf(&sb, "w %s %s\n", cn.From.String(), cn.To.String())
	}
	return sb.String()
}
