// Package rtl models register-transfer-level cores: ports, registers,
// multiplexers and functional units connected by bit-sliced nets. It is the
// input representation for HSCAN insertion (internal/hscan), transparency
// analysis (internal/trans) and gate-level synthesis (internal/synth),
// mirroring the structural core descriptions used by the paper (Figure 3).
package rtl

import (
	"fmt"
	"sort"
)

// Dir is a port direction.
type Dir int

// Port directions.
const (
	In Dir = iota
	Out
)

func (d Dir) String() string {
	if d == In {
		return "in"
	}
	return "out"
}

// Port is a core boundary pin group.
type Port struct {
	Name    string
	Dir     Dir
	Width   int
	Control bool // control signal (e.g. Reset, Interrupt, Read, Write)
}

// Register is a clocked storage element of Width bits. Registers with
// HasLoad have a 1-bit load-enable pin "ld"; they hold their value when the
// pin is 0, which transparency analysis exploits for free freeze logic.
type Register struct {
	Name    string
	Width   int
	HasLoad bool
}

// Mux is an NumIn-to-1 multiplexer of Width bits with pins
// "in0".."in<NumIn-1>", "sel" and "out".
type Mux struct {
	Name  string
	Width int
	NumIn int
}

// SelWidth returns the width of the mux select pin.
func (m Mux) SelWidth() int { return SelBits(m.NumIn) }

// SelBits returns the number of bits needed to select among n choices.
func SelBits(n int) int {
	w := 0
	for v := n - 1; v > 0; v >>= 1 {
		w++
	}
	if w == 0 {
		w = 1
	}
	return w
}

// UnitOp identifies the function computed by a functional Unit.
type UnitOp int

// Functional unit operations. Cloud is an opaque combinational cloud of
// approximately CloudGates gates (used to model control logic and other
// random logic; the gate structure is generated deterministically from the
// unit name by internal/synth). Alu is a multi-function unit selecting
// among AluOps operations.
const (
	OpAdd UnitOp = iota
	OpSub
	OpInc
	OpDec
	OpAnd
	OpOr
	OpXor
	OpNot
	OpShl // shift left by one (wiring plus a tie)
	OpShr
	OpEq     // equality comparator: out width 1
	OpDecode // binary decoder: out width 1<<Width
	OpAlu
	OpConst // constant source: pins "out" only
	OpCloud
)

var unitOpNames = map[UnitOp]string{
	OpAdd: "add", OpSub: "sub", OpInc: "inc", OpDec: "dec",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpNot: "not",
	OpShl: "shl", OpShr: "shr", OpEq: "eq", OpDecode: "decode",
	OpAlu: "alu", OpConst: "const", OpCloud: "cloud",
}

func (o UnitOp) String() string {
	if s, ok := unitOpNames[o]; ok {
		return s
	}
	return fmt.Sprintf("UnitOp(%d)", int(o))
}

// Unit is a combinational functional unit. Width is the data input width;
// pins are "in0".."in<NumIn-1>" and "out" (width OutWidth).
type Unit struct {
	Name       string
	Op         UnitOp
	Width      int
	NumIn      int
	OutWidth   int
	AluOps     int // for OpAlu: number of selectable operations
	CloudGates int // for OpCloud: approximate synthesized gate count
	// CloudAndBias makes the cloud AND/NOR-dominated with AND-collector
	// trees — decoder-like logic that masks random activity (real
	// address decoders and 7-segment decoders behave this way), in
	// contrast to the default XOR-rich cloud.
	CloudAndBias bool
	ConstVal     uint64 // for OpConst
}

// CompKind distinguishes component classes.
type CompKind int

// Component kinds.
const (
	KindPort CompKind = iota
	KindReg
	KindMux
	KindUnit
)

func (k CompKind) String() string {
	switch k {
	case KindPort:
		return "port"
	case KindReg:
		return "reg"
	case KindMux:
		return "mux"
	case KindUnit:
		return "unit"
	}
	return fmt.Sprintf("CompKind(%d)", int(k))
}

// Endpoint names a contiguous bit slice of a component pin. Lo and Hi are
// inclusive bit indices with Lo <= Hi. Pin is "" for ports.
type Endpoint struct {
	Comp   string
	Pin    string
	Lo, Hi int
}

// Width returns the number of bits in the slice.
func (e Endpoint) Width() int { return e.Hi - e.Lo + 1 }

func (e Endpoint) String() string {
	s := e.Comp
	if e.Pin != "" {
		s += "." + e.Pin
	}
	if e.Lo == e.Hi {
		return fmt.Sprintf("%s[%d]", s, e.Lo)
	}
	return fmt.Sprintf("%s[%d:%d]", s, e.Hi, e.Lo)
}

// Conn is a directed net from a source slice to an equal-width sink slice.
type Conn struct {
	From, To Endpoint
}

func (c Conn) String() string { return c.From.String() + " -> " + c.To.String() }

// Core is an RTL core.
type Core struct {
	Name  string
	Ports []Port
	Regs  []Register
	Muxes []Mux
	Units []Unit
	Conns []Conn

	index map[string]compRef // built by Freeze/Validate
}

type compRef struct {
	kind CompKind
	idx  int
}

// buildIndex (re)builds the name index. It reports duplicate names.
func (c *Core) buildIndex() error {
	c.index = make(map[string]compRef, len(c.Ports)+len(c.Regs)+len(c.Muxes)+len(c.Units))
	add := func(name string, r compRef) error {
		if name == "" {
			return fmt.Errorf("rtl: core %s: empty component name", c.Name)
		}
		if _, dup := c.index[name]; dup {
			return fmt.Errorf("rtl: core %s: duplicate component name %q", c.Name, name)
		}
		c.index[name] = r
		return nil
	}
	for i, p := range c.Ports {
		if err := add(p.Name, compRef{KindPort, i}); err != nil {
			return err
		}
	}
	for i, r := range c.Regs {
		if err := add(r.Name, compRef{KindReg, i}); err != nil {
			return err
		}
	}
	for i, m := range c.Muxes {
		if err := add(m.Name, compRef{KindMux, i}); err != nil {
			return err
		}
	}
	for i, u := range c.Units {
		if err := add(u.Name, compRef{KindUnit, i}); err != nil {
			return err
		}
	}
	return nil
}

// Lookup finds a component by name.
func (c *Core) Lookup(name string) (CompKind, int, bool) {
	if c.index == nil {
		if err := c.buildIndex(); err != nil {
			return 0, 0, false
		}
	}
	r, ok := c.index[name]
	return r.kind, r.idx, ok
}

// PortByName returns the named port.
func (c *Core) PortByName(name string) (Port, bool) {
	k, i, ok := c.Lookup(name)
	if !ok || k != KindPort {
		return Port{}, false
	}
	return c.Ports[i], true
}

// RegByName returns the named register.
func (c *Core) RegByName(name string) (Register, bool) {
	k, i, ok := c.Lookup(name)
	if !ok || k != KindReg {
		return Register{}, false
	}
	return c.Regs[i], true
}

// MuxByName returns the named mux.
func (c *Core) MuxByName(name string) (Mux, bool) {
	k, i, ok := c.Lookup(name)
	if !ok || k != KindMux {
		return Mux{}, false
	}
	return c.Muxes[i], true
}

// UnitByName returns the named unit.
func (c *Core) UnitByName(name string) (Unit, bool) {
	k, i, ok := c.Lookup(name)
	if !ok || k != KindUnit {
		return Unit{}, false
	}
	return c.Units[i], true
}

// PinWidth returns the width of a component pin, or an error for unknown
// pins. Output pins are sources; input pins are sinks.
func (c *Core) PinWidth(comp, pin string) (int, error) {
	k, i, ok := c.Lookup(comp)
	if !ok {
		return 0, fmt.Errorf("rtl: core %s: unknown component %q", c.Name, comp)
	}
	switch k {
	case KindPort:
		if pin != "" {
			return 0, fmt.Errorf("rtl: port %s has no pin %q", comp, pin)
		}
		return c.Ports[i].Width, nil
	case KindReg:
		r := c.Regs[i]
		switch pin {
		case "d", "q":
			return r.Width, nil
		case "ld":
			if !r.HasLoad {
				return 0, fmt.Errorf("rtl: register %s has no load pin", comp)
			}
			return 1, nil
		}
		return 0, fmt.Errorf("rtl: register %s: unknown pin %q", comp, pin)
	case KindMux:
		m := c.Muxes[i]
		if pin == "out" {
			return m.Width, nil
		}
		if pin == "sel" {
			return m.SelWidth(), nil
		}
		var n int
		if _, err := fmt.Sscanf(pin, "in%d", &n); err == nil && n >= 0 && n < m.NumIn {
			return m.Width, nil
		}
		return 0, fmt.Errorf("rtl: mux %s: unknown pin %q", comp, pin)
	case KindUnit:
		u := c.Units[i]
		if pin == "out" {
			if u.OutWidth > 0 {
				return u.OutWidth, nil
			}
			return u.Width, nil
		}
		if pin == "op" && u.Op == OpAlu {
			return SelBits(u.AluOps), nil
		}
		var n int
		if _, err := fmt.Sscanf(pin, "in%d", &n); err == nil && n >= 0 && n < u.NumIn {
			return u.Width, nil
		}
		return 0, fmt.Errorf("rtl: unit %s: unknown pin %q", comp, pin)
	}
	return 0, fmt.Errorf("rtl: core %s: bad component kind", c.Name)
}

// isSink reports whether (comp,pin) is a signal sink (an input pin of a
// component, or an output port of the core).
func (c *Core) isSink(comp, pin string) bool {
	k, i, ok := c.Lookup(comp)
	if !ok {
		return false
	}
	switch k {
	case KindPort:
		return c.Ports[i].Dir == Out
	case KindReg:
		return pin == "d" || pin == "ld"
	case KindMux, KindUnit:
		return pin != "out"
	}
	return false
}

// isSource reports whether (comp,pin) is a signal source.
func (c *Core) isSource(comp, pin string) bool {
	k, i, ok := c.Lookup(comp)
	if !ok {
		return false
	}
	switch k {
	case KindPort:
		return c.Ports[i].Dir == In
	case KindReg:
		return pin == "q"
	case KindMux, KindUnit:
		return pin == "out"
	}
	return false
}

// Validate checks structural well-formedness: unique names, legal pin
// references, width-matched connections, and that every sink bit is driven
// at most once. Sinks left undriven are permitted (synth ties them low) but
// reported by Undriven.
func (c *Core) Validate() error {
	if err := c.buildIndex(); err != nil {
		return err
	}
	type bitKey struct {
		comp, pin string
		bit       int
	}
	driven := make(map[bitKey]Conn)
	for _, cn := range c.Conns {
		for _, ep := range []Endpoint{cn.From, cn.To} {
			w, err := c.PinWidth(ep.Comp, ep.Pin)
			if err != nil {
				return fmt.Errorf("rtl: core %s: %s: %v", c.Name, cn, err)
			}
			if ep.Lo < 0 || ep.Hi >= w || ep.Lo > ep.Hi {
				return fmt.Errorf("rtl: core %s: %s: slice %s out of range (pin width %d)", c.Name, cn, ep, w)
			}
		}
		if cn.From.Width() != cn.To.Width() {
			return fmt.Errorf("rtl: core %s: %s: width mismatch %d vs %d", c.Name, cn, cn.From.Width(), cn.To.Width())
		}
		if !c.isSource(cn.From.Comp, cn.From.Pin) {
			return fmt.Errorf("rtl: core %s: %s: %s is not a source", c.Name, cn, cn.From)
		}
		if !c.isSink(cn.To.Comp, cn.To.Pin) {
			return fmt.Errorf("rtl: core %s: %s: %s is not a sink", c.Name, cn, cn.To)
		}
		for b := cn.To.Lo; b <= cn.To.Hi; b++ {
			k := bitKey{cn.To.Comp, cn.To.Pin, b}
			if prev, dup := driven[k]; dup {
				return fmt.Errorf("rtl: core %s: %s.%s[%d] driven by both %s and %s", c.Name, cn.To.Comp, cn.To.Pin, b, prev, cn)
			}
			driven[k] = cn
		}
	}
	return nil
}

// sinkPin describes one sink pin of the core for undriven-bit scanning.
type sinkPin struct {
	comp, pin string
	width     int
}

func (c *Core) sinkPins() []sinkPin {
	var sinks []sinkPin
	for _, p := range c.Ports {
		if p.Dir == Out {
			sinks = append(sinks, sinkPin{p.Name, "", p.Width})
		}
	}
	for _, r := range c.Regs {
		sinks = append(sinks, sinkPin{r.Name, "d", r.Width})
		if r.HasLoad {
			sinks = append(sinks, sinkPin{r.Name, "ld", 1})
		}
	}
	for _, m := range c.Muxes {
		for i := 0; i < m.NumIn; i++ {
			sinks = append(sinks, sinkPin{m.Name, fmt.Sprintf("in%d", i), m.Width})
		}
		sinks = append(sinks, sinkPin{m.Name, "sel", m.SelWidth()})
	}
	for _, u := range c.Units {
		for i := 0; i < u.NumIn; i++ {
			sinks = append(sinks, sinkPin{u.Name, fmt.Sprintf("in%d", i), u.Width})
		}
		if u.Op == OpAlu {
			sinks = append(sinks, sinkPin{u.Name, "op", SelBits(u.AluOps)})
		}
	}
	return sinks
}

// Undriven lists sink bit slices with no driver, merged into maximal runs.
func (c *Core) Undriven() []Endpoint {
	type bitKey struct {
		comp, pin string
		bit       int
	}
	driven := make(map[bitKey]bool)
	for _, cn := range c.Conns {
		for b := cn.To.Lo; b <= cn.To.Hi; b++ {
			driven[bitKey{cn.To.Comp, cn.To.Pin, b}] = true
		}
	}
	var out []Endpoint
	for _, s := range c.sinkPins() {
		run := -1
		for b := 0; b <= s.width; b++ {
			missing := b < s.width && !driven[bitKey{s.comp, s.pin, b}]
			if missing && run < 0 {
				run = b
			}
			if !missing && run >= 0 {
				out = append(out, Endpoint{s.comp, s.pin, run, b - 1})
				run = -1
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Comp != out[j].Comp {
			return out[i].Comp < out[j].Comp
		}
		if out[i].Pin != out[j].Pin {
			return out[i].Pin < out[j].Pin
		}
		return out[i].Lo < out[j].Lo
	})
	return out
}

// Inputs returns the data input ports in declaration order.
func (c *Core) Inputs() []Port {
	var out []Port
	for _, p := range c.Ports {
		if p.Dir == In {
			out = append(out, p)
		}
	}
	return out
}

// Outputs returns the output ports in declaration order.
func (c *Core) Outputs() []Port {
	var out []Port
	for _, p := range c.Ports {
		if p.Dir == Out {
			out = append(out, p)
		}
	}
	return out
}

// FFCount returns the total number of register bits in the core.
func (c *Core) FFCount() int {
	n := 0
	for _, r := range c.Regs {
		n += r.Width
	}
	return n
}

// InputBits returns the total number of input port bits.
func (c *Core) InputBits() int {
	n := 0
	for _, p := range c.Ports {
		if p.Dir == In {
			n += p.Width
		}
	}
	return n
}

// OutputBits returns the total number of output port bits.
func (c *Core) OutputBits() int {
	n := 0
	for _, p := range c.Ports {
		if p.Dir == Out {
			n += p.Width
		}
	}
	return n
}
