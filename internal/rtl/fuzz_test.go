package rtl_test

import (
	"testing"

	"repro/internal/rtl"
	"repro/internal/soc"
	"repro/internal/systems"
)

// The fuzzer drives Builder/Validate through the line-based core script
// codec (rtl.DecodeScript / rtl.EncodeScript, see script.go) — the same
// wire format socetd job specs embed, so every corpus find here hardens
// the daemon's decode path too. Unknown or short lines are ignored, so
// arbitrary mutations still reach Build with a partially sensible
// structure; numeric fields are clamped to keep Validate's per-bit
// bookkeeping bounded.

// FuzzValidate asserts the builder's error contract on arbitrary netlist
// scripts: Build never panics, and any core it accepts passes Validate.
func FuzzValidate(f *testing.F) {
	for _, ch := range []*soc.Chip{systems.System1(), systems.System2()} {
		for _, c := range ch.Cores {
			f.Add(rtl.EncodeScript(c.RTL))
		}
	}
	f.Add("n tiny\ni A 8\no Z 8\nw A Z\n")
	f.Add("n loop\nr R 4\nw R.q R.d\n")
	f.Add("n sliced\ni A 8\no Z 4\nw A[7:4] Z\n")
	f.Add("n bad\ni A 4\ni A 4\n")
	f.Add("n mux\ni A 4\no Z 4\nm M 4 2\nw A M.in0\nw A M.in1\nw A[0] M.sel\nw M.out Z\n")
	f.Fuzz(func(t *testing.T, script string) {
		c, err := rtl.DecodeScript(script).Build()
		if err != nil {
			return // malformed input rejected with an error: the contract holds
		}
		if c == nil {
			t.Fatal("Build returned a nil core with a nil error")
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("Build accepted a core that fails Validate: %v", verr)
		}
	})
}

// TestScriptRoundTrip pins the codec: every example-system core must
// survive encode → decode → Build and still validate.
func TestScriptRoundTrip(t *testing.T) {
	for _, ch := range []*soc.Chip{systems.System1(), systems.System2()} {
		for _, c := range ch.Cores {
			got, err := rtl.DecodeScript(rtl.EncodeScript(c.RTL)).Build()
			if err != nil {
				t.Fatalf("%s/%s: round trip failed to build: %v", ch.Name, c.Name, err)
			}
			if got.Name != c.RTL.Name {
				t.Fatalf("%s: name %q after round trip", c.RTL.Name, got.Name)
			}
			if len(got.Ports) != len(c.RTL.Ports) || len(got.Regs) != len(c.RTL.Regs) ||
				len(got.Muxes) != len(c.RTL.Muxes) || len(got.Units) != len(c.RTL.Units) ||
				len(got.Conns) != len(c.RTL.Conns) {
				t.Fatalf("%s: structure changed in round trip", c.RTL.Name)
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("%s: round-tripped core fails Validate: %v", c.RTL.Name, err)
			}
		}
	}
}
