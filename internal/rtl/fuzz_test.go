package rtl_test

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/rtl"
	"repro/internal/soc"
	"repro/internal/systems"
)

// The fuzzer drives Builder/Validate through a line-based core script:
//
//	n NAME        core name
//	i NAME W      data input        j NAME W   control input
//	o NAME W      data output       p NAME W   control output
//	r NAME W      register          l NAME W   register with load-enable
//	m NAME W N    N-to-1 mux
//	u NAME OP W NIN OUTW ALUOPS GATES BIAS CONST   functional unit
//	w FROM TO     wire in endpoint syntax
//
// Unknown or short lines are ignored, so arbitrary mutations still reach
// Build with a partially sensible structure. Numeric fields are clamped to
// keep Validate's per-bit bookkeeping bounded; the clamp bounds structure
// size, not validity, so malformed cores still flow through.

const (
	fuzzMaxLines = 200
	fuzzMaxWidth = 64
)

func clampInt(s string, lo, hi int) int {
	v, err := strconv.Atoi(s)
	if err != nil {
		return lo
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// decodeCore interprets a core script into a Builder. It never panics on
// any input; all structural validation is left to Build.
func decodeCore(script string) *rtl.Builder {
	b := rtl.NewCore("fuzz")
	lines := strings.Split(script, "\n")
	if len(lines) > fuzzMaxLines {
		lines = lines[:fuzzMaxLines]
	}
	for _, line := range lines {
		f := strings.Fields(line)
		if len(f) == 0 {
			continue
		}
		switch f[0] {
		case "n":
			if len(f) >= 2 {
				b = mergeName(b, f[1])
			}
		case "i":
			if len(f) >= 3 {
				b.In(f[1], clampInt(f[2], -1, fuzzMaxWidth))
			}
		case "j":
			if len(f) >= 3 {
				b.CtlIn(f[1], clampInt(f[2], -1, fuzzMaxWidth))
			}
		case "o":
			if len(f) >= 3 {
				b.Out(f[1], clampInt(f[2], -1, fuzzMaxWidth))
			}
		case "p":
			if len(f) >= 3 {
				b.CtlOut(f[1], clampInt(f[2], -1, fuzzMaxWidth))
			}
		case "r":
			if len(f) >= 3 {
				b.Reg(f[1], clampInt(f[2], -1, fuzzMaxWidth))
			}
		case "l":
			if len(f) >= 3 {
				b.RegLd(f[1], clampInt(f[2], -1, fuzzMaxWidth))
			}
		case "m":
			if len(f) >= 4 {
				b.Mux(f[1], clampInt(f[2], -1, fuzzMaxWidth), clampInt(f[3], 0, fuzzMaxWidth))
			}
		case "u":
			if len(f) >= 9 {
				op := rtl.UnitOp(clampInt(f[2], 0, int(rtl.OpCloud)))
				w := clampInt(f[3], -1, fuzzMaxWidth)
				if op == rtl.OpDecode && w > 8 {
					// OutWidth is 1<<Width for decoders; keep it bounded.
					w = 8
				}
				b.Unit(rtl.Unit{
					Name:         f[1],
					Op:           op,
					Width:        w,
					NumIn:        clampInt(f[4], 0, 8),
					OutWidth:     clampInt(f[5], 0, 1<<10),
					AluOps:       clampInt(f[6], 0, 8),
					CloudGates:   clampInt(f[7], 0, 256),
					CloudAndBias: f[8] == "1",
					ConstVal:     uint64(clampInt(f[8], 0, 1<<20)),
				})
			}
		case "w":
			if len(f) >= 3 {
				b.Wire(f[1], f[2])
			}
		}
	}
	return b
}

// mergeName restarts the builder under a new name; declarations made so
// far are discarded (cheap, and name lines lead real scripts anyway).
func mergeName(b *rtl.Builder, name string) *rtl.Builder {
	return rtl.NewCore(name)
}

// encodeCore serializes a built core back into script form, providing a
// high-quality seed corpus from the paper's two example systems.
func encodeCore(c *rtl.Core) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n %s\n", c.Name)
	for _, p := range c.Ports {
		tag := map[bool]string{false: "i", true: "j"}[p.Control]
		if p.Dir == rtl.Out {
			tag = map[bool]string{false: "o", true: "p"}[p.Control]
		}
		fmt.Fprintf(&sb, "%s %s %d\n", tag, p.Name, p.Width)
	}
	for _, r := range c.Regs {
		tag := "r"
		if r.HasLoad {
			tag = "l"
		}
		fmt.Fprintf(&sb, "%s %s %d\n", tag, r.Name, r.Width)
	}
	for _, m := range c.Muxes {
		fmt.Fprintf(&sb, "m %s %d %d\n", m.Name, m.Width, m.NumIn)
	}
	for _, u := range c.Units {
		bias := "0"
		if u.CloudAndBias {
			bias = "1"
		}
		fmt.Fprintf(&sb, "u %s %d %d %d %d %d %d %s\n",
			u.Name, int(u.Op), u.Width, u.NumIn, u.OutWidth, u.AluOps, u.CloudGates, bias)
		_ = u.ConstVal // folded into the bias column on decode; lossy is fine for seeds
	}
	for _, cn := range c.Conns {
		fmt.Fprintf(&sb, "w %s %s\n", cn.From.String(), cn.To.String())
	}
	return sb.String()
}

// FuzzValidate asserts the builder's error contract on arbitrary netlist
// scripts: Build never panics, and any core it accepts passes Validate.
func FuzzValidate(f *testing.F) {
	for _, ch := range []*soc.Chip{systems.System1(), systems.System2()} {
		for _, c := range ch.Cores {
			f.Add(encodeCore(c.RTL))
		}
	}
	f.Add("n tiny\ni A 8\no Z 8\nw A Z\n")
	f.Add("n loop\nr R 4\nw R.q R.d\n")
	f.Add("n sliced\ni A 8\no Z 4\nw A[7:4] Z\n")
	f.Add("n bad\ni A 4\ni A 4\n")
	f.Add("n mux\ni A 4\no Z 4\nm M 4 2\nw A M.in0\nw A M.in1\nw A[0] M.sel\nw M.out Z\n")
	f.Fuzz(func(t *testing.T, script string) {
		c, err := decodeCore(script).Build()
		if err != nil {
			return // malformed input rejected with an error: the contract holds
		}
		if c == nil {
			t.Fatal("Build returned a nil core with a nil error")
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("Build accepted a core that fails Validate: %v", verr)
		}
	})
}
