// Package ckpt is the crash-safe framed checkpoint codec shared by the
// sharded campaign runner (internal/shard) and the evaluation daemon's
// job journal (internal/serve/job). It owns the byte-level survival
// story; what a frame's payload means stays with the caller.
//
// A checkpoint file is a sequence of self-delimiting frames, newest
// last:
//
//	offset  size  field
//	0       4     magic "SCK1" (little-endian 0x314B4353)
//	4       2     frame schema version (currently 1)
//	6       4     payload length in bytes
//	10      4     CRC-32 (IEEE) of the payload
//	14      n     payload (opaque to this package)
//
// Every save rewrites the file atomically (temp file + fsync + rename)
// with the last few frames, so a crash at any instant leaves either the
// old file or the new one — never a half-written tail that silently
// parses. The decoder still assumes nothing: a frame whose magic,
// version, length, CRC — or, via the caller's accept hook, payload —
// does not check out is skipped (with a resync scan for the next magic
// occurrence), and the newest frame that does check out wins. A
// checkpoint is therefore survived, never trusted.
package ckpt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

const (
	frameMagic   = 0x314B4353 // "SCK1" little-endian
	frameVersion = 1
	// HeaderSize is the fixed frame header length in bytes.
	HeaderSize = 14
	// DefaultKeep bounds how many historical frames a checkpoint file
	// retains: enough that a latent corruption of the newest frame falls
	// back to recent work, small enough that files stay O(state size).
	DefaultKeep = 4
)

// AppendFrame encodes payload as one frame and appends it to buf.
func AppendFrame(buf, payload []byte) []byte {
	var hdr [HeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], frameMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], frameVersion)
	binary.LittleEndian.PutUint32(hdr[6:10], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[10:14], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// DecodeFrames scans data for frames, handing each structurally sound
// payload to accept (nil accepts everything); a payload accept rejects
// counts as corrupt, exactly like a bad CRC. It returns how many frames
// were accepted and how many byte regions had to be discarded (torn
// tails, bit flips, rejected payloads, garbage between frames). It
// never fails: corrupt input just yields zero good frames. After a bad
// frame the scan resyncs on the next magic occurrence, so one flipped
// bit does not take out every frame behind it. Accept is called on
// frames oldest-first; callers wanting the newest good payload keep the
// last one accepted.
func DecodeFrames(data []byte, accept func(payload []byte) bool) (good, discarded int) {
	off := 0
	for off < len(data) {
		payload, next, ok := decodeOne(data, off)
		if ok && (accept == nil || accept(payload)) {
			good++
			off = next
			continue
		}
		discarded++
		off = resync(data, off+1)
	}
	return good, discarded
}

// decodeOne tries to decode the frame at off; next is the offset after it.
func decodeOne(data []byte, off int) (payload []byte, next int, ok bool) {
	if off+HeaderSize > len(data) {
		return nil, len(data), false
	}
	hdr := data[off : off+HeaderSize]
	if binary.LittleEndian.Uint32(hdr[0:4]) != frameMagic {
		return nil, 0, false
	}
	if binary.LittleEndian.Uint16(hdr[4:6]) != frameVersion {
		return nil, 0, false
	}
	n := int(binary.LittleEndian.Uint32(hdr[6:10]))
	if n < 0 || off+HeaderSize+n > len(data) {
		return nil, 0, false
	}
	payload = data[off+HeaderSize : off+HeaderSize+n]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[10:14]) {
		return nil, 0, false
	}
	return payload, off + HeaderSize + n, true
}

// resync returns the offset of the next magic occurrence at or after off.
func resync(data []byte, off int) int {
	for ; off+4 <= len(data); off++ {
		if binary.LittleEndian.Uint32(data[off:off+4]) == frameMagic {
			return off
		}
	}
	return len(data)
}

// Load reads the file at path and returns its newest accepted payload.
// A missing file returns (nil, 0, nil) — a fresh start. Corruption is
// counted in discarded and survived: whatever good frames exist decide
// the payload, and a fully corrupt file is a fresh start too. The only
// errors are real I/O failures.
func Load(path string, accept func(payload []byte) bool) (newest []byte, discarded int, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("ckpt: reading %s: %w", path, err)
	}
	_, discarded = DecodeFrames(data, func(payload []byte) bool {
		if accept != nil && !accept(payload) {
			return false
		}
		newest = payload
		return true
	})
	return newest, discarded, nil
}

// Writer persists checkpoint frames for one file: it retains the last
// Keep encoded frames and rewrites the whole file atomically on every
// write (temp in the same directory, fsync, rename).
type Writer struct {
	path    string
	keep    int
	history [][]byte
}

// NewWriter returns a writer for path keeping the last keep frames
// (keep <= 0 selects DefaultKeep).
func NewWriter(path string, keep int) *Writer {
	if keep <= 0 {
		keep = DefaultKeep
	}
	return &Writer{path: path, keep: keep}
}

// Seed installs a recovered payload as the writer's oldest frame, so
// the pre-crash state stays on disk as the fallback frame of the next
// save.
func (w *Writer) Seed(payload []byte) {
	w.history = append(w.history, AppendFrame(nil, payload))
}

// Write persists payload as the newest frame, rotating history.
func (w *Writer) Write(payload []byte) error {
	w.history = append(w.history, AppendFrame(nil, payload))
	if len(w.history) > w.keep {
		w.history = w.history[len(w.history)-w.keep:]
	}
	var buf []byte
	for _, f := range w.history {
		buf = append(buf, f...)
	}
	return AtomicWrite(w.path, buf)
}

// AtomicWrite writes data to path via a temp file in the same
// directory, fsyncs it, and renames it into place.
func AtomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("ckpt: writing %s: %w", path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: writing %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: syncing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: closing %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("ckpt: installing %s: %w", path, err)
	}
	return nil
}
