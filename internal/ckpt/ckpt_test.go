package ckpt

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestRoundTripNewestWins(t *testing.T) {
	var buf []byte
	payloads := [][]byte{[]byte(`{"a":1}`), []byte(`{"a":2}`), []byte(`{"a":3}`)}
	for _, p := range payloads {
		buf = AppendFrame(buf, p)
	}
	var newest []byte
	good, discarded := DecodeFrames(buf, func(p []byte) bool { newest = p; return true })
	if good != 3 || discarded != 0 {
		t.Fatalf("good=%d discarded=%d, want 3/0", good, discarded)
	}
	if !bytes.Equal(newest, payloads[2]) {
		t.Fatalf("newest = %q, want %q", newest, payloads[2])
	}
}

// TestTruncation tears the buffer at every offset: the decoder must
// never panic and must recover exactly the frames wholly present.
func TestTruncation(t *testing.T) {
	one := AppendFrame(nil, []byte("first payload"))
	both := AppendFrame(append([]byte(nil), one...), []byte("second payload"))
	for cut := 0; cut <= len(both); cut++ {
		good, _ := DecodeFrames(both[:cut], nil)
		want := 0
		if cut >= len(one) {
			want = 1
		}
		if cut == len(both) {
			want = 2
		}
		if good != want {
			t.Fatalf("cut %d: good=%d, want %d", cut, good, want)
		}
	}
}

// TestBitFlip flips every byte of the newest frame; it must never be
// accepted and the older frame must survive.
func TestBitFlip(t *testing.T) {
	one := AppendFrame(nil, []byte("older"))
	both := AppendFrame(append([]byte(nil), one...), []byte("newer"))
	for i := len(one); i < len(both); i++ {
		mut := append([]byte(nil), both...)
		mut[i] ^= 0x40
		var newest []byte
		good, discarded := DecodeFrames(mut, func(p []byte) bool { newest = p; return true })
		if good < 1 || discarded == 0 {
			t.Fatalf("flip at %d: good=%d discarded=%d", i, good, discarded)
		}
		if bytes.Equal(newest, []byte("newer")) {
			t.Fatalf("flip at %d: corrupt newest frame trusted", i)
		}
	}
}

func TestAcceptRejectionCountsAsCorrupt(t *testing.T) {
	buf := AppendFrame(nil, []byte("reject me"))
	buf = AppendFrame(buf, []byte("keep me"))
	var newest []byte
	good, discarded := DecodeFrames(buf, func(p []byte) bool {
		if bytes.HasPrefix(p, []byte("reject")) {
			return false
		}
		newest = p
		return true
	})
	if good != 1 || discarded != 1 || !bytes.Equal(newest, []byte("keep me")) {
		t.Fatalf("good=%d discarded=%d newest=%q", good, discarded, newest)
	}
}

func TestWriterRotatesAndLoads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.ck")
	w := NewWriter(path, 3)
	for i := byte('a'); i <= 'f'; i++ {
		if err := w.Write([]byte{i}); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	good, discarded := DecodeFrames(data, nil)
	if good != 3 || discarded != 0 {
		t.Fatalf("good=%d discarded=%d, want 3/0", good, discarded)
	}
	newest, discarded, err := Load(path, nil)
	if err != nil || discarded != 0 || !bytes.Equal(newest, []byte("f")) {
		t.Fatalf("Load = %q/%d/%v", newest, discarded, err)
	}
}

func TestLoadMissingAndGarbage(t *testing.T) {
	dir := t.TempDir()
	if p, d, err := Load(filepath.Join(dir, "missing"), nil); p != nil || d != 0 || err != nil {
		t.Fatalf("missing: %q/%d/%v", p, d, err)
	}
	path := filepath.Join(dir, "garbage")
	if err := os.WriteFile(path, []byte("not frames"), 0o644); err != nil {
		t.Fatal(err)
	}
	p, d, err := Load(path, nil)
	if p != nil || d == 0 || err != nil {
		t.Fatalf("garbage: %q/%d/%v", p, d, err)
	}
}

func TestSeedBecomesFallback(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.ck")
	w := NewWriter(path, 0)
	w.Seed([]byte("recovered"))
	if err := w.Write([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var all [][]byte
	good, _ := DecodeFrames(data, func(p []byte) bool {
		all = append(all, append([]byte(nil), p...))
		return true
	})
	if good != 2 || !bytes.Equal(all[0], []byte("recovered")) || !bytes.Equal(all[1], []byte("fresh")) {
		t.Fatalf("frames = %q (good %d)", all, good)
	}
}
