package flowcmd

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/testbus"
)

// Test-architecture selectors for the shared -arch CLI flag. SOCET is the
// paper's transparency-based access; wrapper is the P1500-style
// wrapped-core/TAM baseline (internal/wrap); bus is the dedicated test
// bus (internal/testbus); all compares the three side by side.
const (
	ArchSOCET   = "socet"
	ArchWrapper = "wrapper"
	ArchBus     = "bus"
	ArchAll     = "all"
)

// ParseArch validates an -arch flag value ("" defaults to socet).
func ParseArch(s string) (string, error) {
	switch s {
	case "", ArchSOCET:
		return ArchSOCET, nil
	case ArchWrapper, ArchBus, ArchAll:
		return s, nil
	}
	return "", fmt.Errorf("flowcmd: -arch must be %s, %s, %s or %s, got %q",
		ArchSOCET, ArchWrapper, ArchBus, ArchAll, s)
}

// ArchRow is one test architecture's bottom line on one chip: the chip
// test application time and the chip-level DFT area it pays for access
// (all three architectures sit on top of the same HSCAN-ed cores).
type ArchRow struct {
	Arch     string
	TAT      int
	DFTCells int
	Detail   string
}

// ArchRows evaluates the selected architecture(s) on a prepared flow.
// SOCET is evaluated at the flow's current version selection.
func ArchRows(f *core.Flow, arch string, tamWidth int) ([]ArchRow, error) {
	var rows []ArchRow
	if arch == ArchSOCET || arch == ArchAll {
		e, err := f.Evaluate()
		if err != nil {
			return nil, err
		}
		rows = append(rows, ArchRow{
			Arch: ArchSOCET, TAT: e.TAT, DFTCells: e.ChipDFTCells(),
			Detail: "transparency access, current version selection",
		})
	}
	if arch == ArchWrapper || arch == ArchAll {
		r := f.EvaluateWrapper(tamWidth, nil)
		rows = append(rows, ArchRow{
			Arch: ArchWrapper, TAT: r.ChipTAT, DFTCells: r.DFTCells(),
			Detail: fmt.Sprintf("TAM width %d, %d buses", r.Width, r.NumBuses),
		})
	}
	if arch == ArchBus || arch == ArchAll {
		r := testbus.Evaluate(f.Chip)
		rows = append(rows, ArchRow{
			Arch: ArchBus, TAT: r.TotalTAT, DFTCells: r.MuxCells(),
			Detail: "direct pin access, cores serial",
		})
	}
	return rows, nil
}

// ParseIntList parses a comma-separated list of positive ints, the
// shared format of the -study-cores / -study-widths / -tam-widths flags.
func ParseIntList(csv string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(csv, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("flowcmd: bad list entry %q (want positive ints)", s)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("flowcmd: empty int list")
	}
	return out, nil
}
