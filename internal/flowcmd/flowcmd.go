// Package flowcmd is the shared front door to the SOCET flow: one place
// that resolves "which chip, prepared how" for every surface — the
// command-line tools (cmd/socet, cmd/compare, cmd/tradeoff, cmd/socgen)
// and the socetd daemon's job specs, which embed a ChipSpec as their
// wire format. Keeping the resolution here means a chip submitted over
// HTTP and the same chip named on a command line run through literally
// the same code path, so their results are byte-identical by
// construction.
//
// A ChipSpec names a chip one of three ways:
//   - System: one of the paper's example systems (1 or 2);
//   - Gen: a seeded random SoC (internal/socgen generator params);
//   - Script: a line-based chip script (see chipscript.go) whose core
//     bodies use the rtl core-script codec FuzzValidate fuzzes.
package flowcmd

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/core"
	"repro/internal/soc"
	"repro/internal/socgen"
	"repro/internal/systems"
)

// GenSpec is the wire form of socgen.Params: the knobs of a seeded
// random SoC that are part of a job's identity.
type GenSpec struct {
	Seed     uint64 `json:"seed"`
	Cores    int    `json:"cores,omitempty"`
	Topology string `json:"topology,omitempty"`
}

// Params resolves the spec into generator parameters.
func (g GenSpec) Params() (socgen.Params, error) {
	topo, err := socgen.ParseTopology(topologyOrAuto(g.Topology))
	if err != nil {
		return socgen.Params{}, err
	}
	return socgen.Params{Seed: g.Seed, Cores: g.Cores, Topology: topo}, nil
}

func topologyOrAuto(s string) string {
	if s == "" {
		return "auto"
	}
	return s
}

// ChipSpec selects the chip a flow runs on. Exactly one of System, Gen
// and Script must be set.
type ChipSpec struct {
	System int      `json:"system,omitempty"`
	Gen    *GenSpec `json:"gen,omitempty"`
	Script string   `json:"script,omitempty"`
}

// Validate checks the spec names exactly one chip, without building it.
func (s ChipSpec) Validate() error {
	set := 0
	if s.System != 0 {
		if s.System != 1 && s.System != 2 {
			return fmt.Errorf("flowcmd: system must be 1 or 2, got %d", s.System)
		}
		set++
	}
	if s.Gen != nil {
		if _, err := s.Gen.Params(); err != nil {
			return err
		}
		set++
	}
	if s.Script != "" {
		set++
	}
	if set != 1 {
		return fmt.Errorf("flowcmd: chip spec must set exactly one of system, gen, script (got %d)", set)
	}
	return nil
}

// Build resolves the spec into a chip plus the flow options it should
// be prepared with (vector overrides for cores that cannot run ATPG).
func (s ChipSpec) Build() (*soc.Chip, *core.Options, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	switch {
	case s.System != 0:
		ch, err := System(s.System)
		return ch, nil, err
	case s.Gen != nil:
		p, err := s.Gen.Params()
		if err != nil {
			return nil, nil, err
		}
		ch, err := socgen.Generate(p)
		if err != nil {
			return nil, nil, err
		}
		return ch, GenVectorOverride(ch), nil
	default:
		return ParseChipScript(s.Script)
	}
}

// Key is the spec's canonical identity string — the flow-cache key the
// daemon shares prepared flows and evaluation caches under. Scripts are
// collapsed to a hash so keys stay short.
func (s ChipSpec) Key() string {
	switch {
	case s.System != 0:
		return fmt.Sprintf("system:%d", s.System)
	case s.Gen != nil:
		return fmt.Sprintf("gen:seed=%d,cores=%d,topology=%s", s.Gen.Seed, s.Gen.Cores, topologyOrAuto(s.Gen.Topology))
	default:
		h := fnv.New64a()
		h.Write([]byte(s.Script))
		return fmt.Sprintf("script:%016x", h.Sum64())
	}
}

// System returns one of the paper's example systems (1 or 2) — the
// shared replacement for every CLI's private pick switch.
func System(n int) (*soc.Chip, error) {
	switch n {
	case 1:
		return systems.System1(), nil
	case 2:
		return systems.System2(), nil
	}
	return nil, fmt.Errorf("flowcmd: -system must be 1 or 2, got %d", n)
}

// Systems returns the selected example systems; 0 means both.
func Systems(n int) ([]*soc.Chip, error) {
	if n == 0 {
		return []*soc.Chip{systems.System1(), systems.System2()}, nil
	}
	ch, err := System(n)
	if err != nil {
		return nil, fmt.Errorf("flowcmd: -system must be 0, 1 or 2, got %d", n)
	}
	return []*soc.Chip{ch}, nil
}

// GenVectorOverride derives the fixed per-core vector counts generated
// chips are prepared with: socgen cores carry no gate-level netlists, so
// their test-set sizes come from this seed-independent positional rule
// (the same one cmd/socgen -flow and cmd/tradeoff -gen always used)
// rather than from ATPG.
func GenVectorOverride(ch *soc.Chip) *core.Options {
	vecs := map[string]int{}
	for i, c := range ch.TestableCores() {
		vecs[c.Name] = 10 + i%23
	}
	return &core.Options{VectorOverride: vecs}
}

// AddTimeout registers the shared -timeout flag on fs.
func AddTimeout(fs *flag.FlagSet) *time.Duration {
	return fs.Duration("timeout", 0, "wall-clock bound on the flow (0 = none), enforced through context deadlines")
}

// Context returns a context honoring the -timeout flag value: the
// background context when d is zero, a deadline context otherwise.
func Context(d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return context.WithCancel(context.Background())
	}
	return context.WithTimeout(context.Background(), d)
}
