package flowcmd

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/rtl"
	"repro/internal/soc"
)

// The chip script is the text wire format for whole systems: the
// chip-level structure in directive lines, with each core's netlist
// embedded in the rtl core-script codec (rtl.DecodeScript). It is what
// socetd job specs carry in ChipSpec.Script, and what FuzzJobSpec
// mutates.
//
//	chip NAME            chip name (must come first)
//	pi NAME W            primary input pin
//	po NAME W            primary output pin
//	core NAME [memory]   starts a core block; the rtl core-script lines
//	                     that follow (i/j/o/p/r/l/m/u/w) are its netlist
//	vectors N            inside a core block: fixed test-set size for the
//	                     core (a VectorOverride; otherwise ATPG decides)
//	net FROM TO          chip net; endpoints are PIN or CORE.PORT
//	# ...                comment
//
// Unlike the forgiving core codec underneath it, the chip layer is
// strict: unknown directives, bad arity, duplicate names and unbuildable
// cores are errors, because a job spec that silently dropped half its
// chip would evaluate the wrong system. Malformed input must fail the
// job at admission, loudly.
const (
	// ScriptMaxCores bounds how many cores one chip script may declare.
	ScriptMaxCores = 64
	// ScriptMaxNets bounds chip-level pins plus nets.
	ScriptMaxNets = 4096
)

// ParseChipScript parses a chip script into a chip plus the flow options
// its vectors directives imply (nil when none are given). The chip is
// structurally validated; core netlists are built and validated.
func ParseChipScript(script string) (*soc.Chip, *core.Options, error) {
	ch := &soc.Chip{}
	vecs := map[string]int{}
	var (
		curCore  *soc.Core // core block being accumulated, nil at chip level
		curLines []string  // rtl core-script lines of the current block
		names    = map[string]bool{}
	)
	flush := func() error {
		if curCore == nil {
			return nil
		}
		b := rtl.DecodeScript("n " + curCore.Name + "\n" + strings.Join(curLines, "\n"))
		c, err := b.Build()
		if err != nil {
			return fmt.Errorf("flowcmd: core %s: %w", curCore.Name, err)
		}
		if err := c.Validate(); err != nil {
			return fmt.Errorf("flowcmd: core %s: %w", curCore.Name, err)
		}
		curCore.RTL = c
		ch.Cores = append(ch.Cores, curCore)
		curCore, curLines = nil, nil
		return nil
	}
	for ln, line := range strings.Split(script, "\n") {
		f := strings.Fields(line)
		if len(f) == 0 || strings.HasPrefix(f[0], "#") {
			continue
		}
		bad := func(why string) error {
			return fmt.Errorf("flowcmd: chip script line %d: %s: %q", ln+1, why, strings.TrimSpace(line))
		}
		switch f[0] {
		case "chip":
			if len(f) != 2 || ch.Name != "" {
				return nil, nil, bad("chip NAME must appear exactly once, first")
			}
			ch.Name = f[1]
		case "pi", "po":
			if len(f) != 3 {
				return nil, nil, bad("want " + f[0] + " NAME WIDTH")
			}
			w, err := strconv.Atoi(f[2])
			if err != nil || w < 1 || w > rtl.ScriptMaxWidth {
				return nil, nil, bad(fmt.Sprintf("pin width must be 1..%d", rtl.ScriptMaxWidth))
			}
			if names["pin:"+f[1]] {
				return nil, nil, bad("duplicate pin name")
			}
			names["pin:"+f[1]] = true
			pin := soc.Pin{Name: f[1], Width: w}
			if f[0] == "pi" {
				ch.PIs = append(ch.PIs, pin)
			} else {
				ch.POs = append(ch.POs, pin)
			}
		case "core":
			if len(f) < 2 || len(f) > 3 || (len(f) == 3 && f[2] != "memory") {
				return nil, nil, bad("want core NAME [memory]")
			}
			if err := flush(); err != nil {
				return nil, nil, err
			}
			if names["core:"+f[1]] {
				return nil, nil, bad("duplicate core name")
			}
			names["core:"+f[1]] = true
			if len(ch.Cores) >= ScriptMaxCores {
				return nil, nil, bad(fmt.Sprintf("more than %d cores", ScriptMaxCores))
			}
			curCore = &soc.Core{Name: f[1], Memory: len(f) == 3}
		case "vectors":
			if curCore == nil || len(f) != 2 {
				return nil, nil, bad("vectors N belongs inside a core block")
			}
			n, err := strconv.Atoi(f[1])
			if err != nil || n < 1 || n > 1<<20 {
				return nil, nil, bad("vector count must be 1..2^20")
			}
			vecs[curCore.Name] = n
		case "net":
			if len(f) != 3 {
				return nil, nil, bad("want net FROM TO")
			}
			fc, fp := splitEndpoint(f[1])
			tc, tp := splitEndpoint(f[2])
			ch.Nets = append(ch.Nets, soc.Net{FromCore: fc, FromPort: fp, ToCore: tc, ToPort: tp})
		case "i", "j", "o", "p", "r", "l", "m", "u", "w", "n":
			if curCore == nil {
				return nil, nil, bad("core-script line outside a core block")
			}
			curLines = append(curLines, line)
		default:
			return nil, nil, bad("unknown directive")
		}
		if len(ch.PIs)+len(ch.POs)+len(ch.Nets) > ScriptMaxNets {
			return nil, nil, fmt.Errorf("flowcmd: chip script: more than %d pins+nets", ScriptMaxNets)
		}
	}
	if err := flush(); err != nil {
		return nil, nil, err
	}
	if ch.Name == "" {
		return nil, nil, fmt.Errorf("flowcmd: chip script: missing chip NAME line")
	}
	if err := ch.Validate(); err != nil {
		return nil, nil, err
	}
	if len(vecs) == 0 {
		return ch, nil, nil
	}
	return ch, &core.Options{VectorOverride: vecs}, nil
}

// splitEndpoint splits "CORE.PORT" at the first dot; a bare name is a
// chip pin (empty core).
func splitEndpoint(s string) (corename, port string) {
	if i := strings.IndexByte(s, '.'); i >= 0 {
		return s[:i], s[i+1:]
	}
	return "", s
}

// FormatChipScript serializes a chip (plus optional per-core vector
// overrides) back into script form. It round-trips through
// ParseChipScript for any chip the parser could have produced, and is
// the seed-corpus generator for FuzzJobSpec.
func FormatChipScript(ch *soc.Chip, vectors map[string]int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "chip %s\n", ch.Name)
	for _, p := range ch.PIs {
		fmt.Fprintf(&sb, "pi %s %d\n", p.Name, p.Width)
	}
	for _, p := range ch.POs {
		fmt.Fprintf(&sb, "po %s %d\n", p.Name, p.Width)
	}
	for _, c := range ch.Cores {
		if c.Memory {
			fmt.Fprintf(&sb, "core %s memory\n", c.Name)
		} else {
			fmt.Fprintf(&sb, "core %s\n", c.Name)
		}
		// Drop the codec's own "n NAME" line: the core directive names it.
		body := rtl.EncodeScript(c.RTL)
		if i := strings.IndexByte(body, '\n'); i >= 0 && strings.HasPrefix(body, "n ") {
			body = body[i+1:]
		}
		sb.WriteString(body)
		if n := vectors[c.Name]; n > 0 {
			fmt.Fprintf(&sb, "vectors %d\n", n)
		}
	}
	for _, n := range ch.Nets {
		from := n.FromPort
		if n.FromCore != "" {
			from = n.FromCore + "." + n.FromPort
		}
		to := n.ToPort
		if n.ToCore != "" {
			to = n.ToCore + "." + n.ToPort
		}
		fmt.Fprintf(&sb, "net %s %s\n", from, to)
	}
	return sb.String()
}
