package flowcmd

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/soc"
	"repro/internal/systems"
)

func TestChipSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec ChipSpec
		ok   bool
	}{
		{"system1", ChipSpec{System: 1}, true},
		{"system2", ChipSpec{System: 2}, true},
		{"system3", ChipSpec{System: 3}, false},
		{"gen", ChipSpec{Gen: &GenSpec{Seed: 7}}, true},
		{"gen bad topology", ChipSpec{Gen: &GenSpec{Seed: 7, Topology: "nope"}}, false},
		{"script", ChipSpec{Script: "chip x\n"}, true},
		{"empty", ChipSpec{}, false},
		{"two of three", ChipSpec{System: 1, Gen: &GenSpec{}}, false},
		{"all three", ChipSpec{System: 1, Gen: &GenSpec{}, Script: "chip x\n"}, false},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestChipSpecKeyDistinguishes(t *testing.T) {
	keys := map[string]string{}
	for name, spec := range map[string]ChipSpec{
		"sys1":   {System: 1},
		"sys2":   {System: 2},
		"gen7":   {Gen: &GenSpec{Seed: 7, Cores: 8}},
		"gen8":   {Gen: &GenSpec{Seed: 8, Cores: 8}},
		"script": {Script: "chip x\n"},
	} {
		k := spec.Key()
		for other, ok := range keys {
			if ok == k {
				t.Fatalf("specs %s and %s share key %q", name, other, k)
			}
		}
		keys[name] = k
	}
	// Key must be stable — it is a cache identity.
	if a, b := (ChipSpec{Gen: &GenSpec{Seed: 7, Cores: 8}}).Key(), keys["gen7"]; a != b {
		t.Fatalf("Key not deterministic: %q vs %q", a, b)
	}
	// Empty topology normalizes to auto so equivalent specs share a flow.
	a := ChipSpec{Gen: &GenSpec{Seed: 7}}.Key()
	b := ChipSpec{Gen: &GenSpec{Seed: 7, Topology: "auto"}}.Key()
	if a != b {
		t.Fatalf("topology %q vs %q should share a key", a, b)
	}
}

// TestSystemSpecsMatchDirect pins that going through ChipSpec produces
// the same prepared flow as constructing the system directly — the
// property that makes daemon results comparable with CLI results.
func TestSystemSpecsMatchDirect(t *testing.T) {
	for n := 1; n <= 2; n++ {
		ch, opts, err := (ChipSpec{System: n}).Build()
		if err != nil {
			t.Fatalf("system %d: %v", n, err)
		}
		got, err := core.Prepare(ch, opts)
		if err != nil {
			t.Fatalf("system %d: prepare: %v", n, err)
		}
		direct, err := System(n)
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.Prepare(direct, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.Fingerprint() != want.Fingerprint() {
			t.Fatalf("system %d: spec flow fingerprint %x != direct %x", n, got.Fingerprint(), want.Fingerprint())
		}
	}
}

// TestChipScriptRoundTrip pins the chip script codec: both example
// systems survive format → parse and prepare to the same flow
// fingerprint as the original chip.
func TestChipScriptRoundTrip(t *testing.T) {
	for _, ch := range []*soc.Chip{systems.System1(), systems.System2()} {
		script := FormatChipScript(ch, nil)
		got, opts, err := ParseChipScript(script)
		if err != nil {
			t.Fatalf("%s: parse: %v\nscript:\n%s", ch.Name, err, script)
		}
		if opts != nil {
			t.Fatalf("%s: unexpected vector overrides", ch.Name)
		}
		if got.Name != ch.Name || len(got.Cores) != len(ch.Cores) ||
			len(got.Nets) != len(ch.Nets) {
			t.Fatalf("%s: structure changed in round trip", ch.Name)
		}
		wantF, err := core.Prepare(ch, nil)
		if err != nil {
			t.Fatal(err)
		}
		gotF, err := core.Prepare(got, nil)
		if err != nil {
			t.Fatalf("%s: prepare round-tripped chip: %v", ch.Name, err)
		}
		if gotF.Fingerprint() != wantF.Fingerprint() {
			t.Fatalf("%s: flow fingerprint changed in round trip", ch.Name)
		}
	}
}

func TestChipScriptVectors(t *testing.T) {
	ch := systems.System1()
	vecs := map[string]int{}
	for i, c := range ch.TestableCores() {
		vecs[c.Name] = 5 + i
	}
	_, opts, err := ParseChipScript(FormatChipScript(ch, vecs))
	if err != nil {
		t.Fatal(err)
	}
	if opts == nil {
		t.Fatal("vectors directives should surface as options")
	}
	if len(opts.VectorOverride) != len(vecs) {
		t.Fatalf("got %d overrides, want %d", len(opts.VectorOverride), len(vecs))
	}
	for name, n := range vecs {
		if opts.VectorOverride[name] != n {
			t.Fatalf("core %s: override %d, want %d", name, opts.VectorOverride[name], n)
		}
	}
}

func TestChipScriptErrors(t *testing.T) {
	cases := []struct {
		name   string
		script string
		wants  string
	}{
		{"empty", "", "missing chip NAME"},
		{"no chip line", "pi A 8\n", "missing chip NAME"},
		{"double chip", "chip a\nchip b\n", "exactly once"},
		{"unknown directive", "chip a\nbogus x\n", "unknown directive"},
		{"bad pin width", "chip a\npi A 0\n", "pin width"},
		{"huge pin width", "chip a\npi A 9999\n", "pin width"},
		{"dup pin", "chip a\npi A 8\npi A 8\n", "duplicate pin"},
		{"dup core", "chip a\ncore c\ni A 8\no Z 8\nw A Z\ncore c\n", "duplicate core"},
		{"vectors outside core", "chip a\nvectors 3\n", "core block"},
		{"netlist line outside core", "chip a\ni A 8\n", "outside a core block"},
		{"net arity", "chip a\nnet A\n", "net FROM TO"},
		{"net to nowhere", "chip a\npi A 8\nnet A nope\n", "unknown PO"},
		{"unbuildable core", "chip a\ncore c\nw A Z\n", "core c"},
	}
	for _, tc := range cases {
		_, _, err := ParseChipScript(tc.script)
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wants) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wants)
		}
	}
}

func TestGenSpecBuildDeterministic(t *testing.T) {
	spec := ChipSpec{Gen: &GenSpec{Seed: 42, Cores: 6}}
	a, aOpts, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, bOpts, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if aOpts == nil || bOpts == nil {
		t.Fatal("generated chips must carry vector overrides")
	}
	fa, err := core.Prepare(a, aOpts)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := core.Prepare(b, bOpts)
	if err != nil {
		t.Fatal(err)
	}
	if fa.Fingerprint() != fb.Fingerprint() {
		t.Fatal("same GenSpec must prepare to the same flow fingerprint")
	}
	// The override rule is positional over testable cores.
	for i, c := range a.TestableCores() {
		if want := 10 + i%23; aOpts.VectorOverride[c.Name] != want {
			t.Fatalf("core %s: override %d, want %d", c.Name, aOpts.VectorOverride[c.Name], want)
		}
	}
}

func TestContextTimeout(t *testing.T) {
	ctx, cancel := Context(0)
	if _, ok := ctx.Deadline(); ok {
		t.Fatal("zero timeout should not set a deadline")
	}
	cancel()
	ctx, cancel = Context(time.Minute)
	defer cancel()
	if _, ok := ctx.Deadline(); !ok {
		t.Fatal("positive timeout should set a deadline")
	}
}
