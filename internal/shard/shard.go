// Package shard scales the two long-running SOCET workloads —
// explore.Enumerate design-space sweeps and resil fault campaigns —
// across processes and machines, crash-safely.
//
// The work of a run is a global index space (design points in the
// deterministic enumeration order; fault-set indices of a campaign) that
// Plan partitions into N contiguous ranges, stable under any N. Each
// shard periodically persists an atomic, CRC-framed, schema-versioned
// checkpoint of its completed index ranges plus its partial result (the
// canonical partial Pareto front, or the completed campaign run records).
// A killed shard resumes from its newest good frame; a corrupt or torn
// checkpoint falls back to the last frame that checks out, or to an empty
// shard — it is survived, never trusted. Transient attempt failures are
// retried with capped exponential backoff before the run degrades to a
// partial result whose unfinished ranges are attributed explicitly.
//
// Merging is deterministic and compositional: dominance filtering is
// closed under partition (Pareto(A ∪ B) = Pareto(Pareto(A) ∪ Pareto(B))),
// and ties are broken canonically (smallest selection key), so the union
// of any shard partition — including one interrupted by SIGKILL and
// resumed — is bit-identical to the single-process result. Campaign run
// records are keyed by global index and independent per run, so their
// union is the single-process report. DESIGN.md §8 has the proof sketch.
package shard

import (
	"flag"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/explore"
)

// All selects every shard of the plan (the Options.Index wildcard).
const All = -1

// Plan partitions total work items into n near-equal contiguous ranges:
// shard i owns [i·total/n, (i+1)·total/n). Every index belongs to exactly
// one shard at any n, and the plan is a pure function of (total, n), so
// independently launched processes agree on it without coordination.
func Plan(total int64, n int) []Range {
	if n < 1 {
		n = 1
	}
	out := make([]Range, n)
	for i := 0; i < n; i++ {
		out[i] = Range{Lo: total * int64(i) / int64(n), Hi: total * int64(i+1) / int64(n)}
	}
	return out
}

// coalesce turns a completed-index set into sorted disjoint ranges.
func coalesce(done map[int64]struct{}, prior []Range) []Range {
	idx := make([]int64, 0, len(done))
	for i := range done {
		idx = append(idx, i)
	}
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
	var out []Range
	for _, i := range idx {
		if n := len(out); n > 0 && out[n-1].Hi == i {
			out[n-1].Hi = i + 1
			continue
		}
		out = append(out, Range{Lo: i, Hi: i + 1})
	}
	out = append(out, prior...)
	return normalize(out)
}

// normalize sorts ranges and merges overlapping or adjacent ones.
func normalize(rs []Range) []Range {
	var in []Range
	for _, r := range rs {
		if r.Len() > 0 {
			in = append(in, r)
		}
	}
	sort.Slice(in, func(a, b int) bool {
		if in[a].Lo != in[b].Lo {
			return in[a].Lo < in[b].Lo
		}
		return in[a].Hi < in[b].Hi
	})
	var out []Range
	for _, r := range in {
		if n := len(out); n > 0 && r.Lo <= out[n-1].Hi {
			if r.Hi > out[n-1].Hi {
				out[n-1].Hi = r.Hi
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// inRanges reports whether sorted disjoint rs contain i.
func inRanges(rs []Range, i int64) bool {
	lo, hi := 0, len(rs)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case i < rs[mid].Lo:
			hi = mid
		case i >= rs[mid].Hi:
			lo = mid + 1
		default:
			return true
		}
	}
	return false
}

// subtract returns the parts of window not covered by sorted disjoint done.
func subtract(window Range, done []Range) []Range {
	var out []Range
	lo := window.Lo
	for _, d := range done {
		if d.Hi <= lo {
			continue
		}
		if d.Lo >= window.Hi {
			break
		}
		if d.Lo > lo {
			out = append(out, Range{Lo: lo, Hi: min64(d.Lo, window.Hi)})
		}
		if d.Hi > lo {
			lo = d.Hi
		}
	}
	if lo < window.Hi {
		out = append(out, Range{Lo: lo, Hi: window.Hi})
	}
	return out
}

func countRanges(rs []Range) int64 {
	var n int64
	for _, r := range rs {
		n += r.Len()
	}
	return n
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// FrontPoint is the compact, serializable form of one design point on a
// partial Pareto front: the selection and the two objective values. It
// deliberately drops the *core.Evaluation — a checkpointed or merged
// front carries outcomes, not live schedules.
type FrontPoint struct {
	Selection map[string]int `json:"sel"`
	Cells     int            `json:"cells"`
	TAT       int            `json:"tat"`
}

// FromPoint compresses an explored point.
func FromPoint(p explore.Point) FrontPoint {
	return FrontPoint{Selection: p.Selection, Cells: p.ChipCells, TAT: p.TAT}
}

// Label formats the selection compactly, matching explore.Point.Label.
func (p FrontPoint) Label() string {
	names := make([]string, 0, len(p.Selection))
	for n := range p.Selection {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:V%d", n, p.Selection[n]+1)
	}
	return b.String()
}

// key is the canonical selection signature used as the deterministic
// tie-break among points with equal (Cells, TAT).
func (p FrontPoint) key() string {
	names := make([]string, 0, len(p.Selection))
	for n := range p.Selection {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s=%d;", n, p.Selection[n])
	}
	return b.String()
}

// CanonFront reduces points to the canonical Pareto front: sorted by
// (Cells, TAT, selection key), dominated points dropped, and exactly one
// representative — the smallest selection key — kept per front corner.
// Canonicalizing makes dominance filtering compositional under any
// partition of the points: CanonFront(A ∪ B) ==
// CanonFront(CanonFront(A) ∪ CanonFront(B)), bit for bit.
func CanonFront(points []FrontPoint) []FrontPoint {
	sorted := make([]FrontPoint, len(points))
	copy(sorted, points)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Cells != sorted[j].Cells {
			return sorted[i].Cells < sorted[j].Cells
		}
		if sorted[i].TAT != sorted[j].TAT {
			return sorted[i].TAT < sorted[j].TAT
		}
		return sorted[i].key() < sorted[j].key()
	})
	var out []FrontPoint
	best := int(^uint(0) >> 1)
	for _, p := range sorted {
		if p.TAT < best {
			best = p.TAT
			out = append(out, p)
		}
	}
	return out
}

// MergeFronts combines partial fronts from any shard partition into the
// canonical front of their union.
func MergeFronts(fronts ...[]FrontPoint) []FrontPoint {
	var all []FrontPoint
	for _, f := range fronts {
		all = append(all, f...)
	}
	return CanonFront(all)
}

// Retry caps how a shard handles transient attempt failures (recovered
// evaluation panics, injected test faults): up to Attempts tries with
// exponential backoff from Base, capped at Max. Context cancellation is
// never retried — a deadline is a decision, not a fault.
type Retry struct {
	Attempts int
	Base     time.Duration
	Max      time.Duration
}

func (r Retry) withDefaults() Retry {
	if r.Attempts < 1 {
		r.Attempts = 3
	}
	if r.Base <= 0 {
		r.Base = 100 * time.Millisecond
	}
	if r.Max <= 0 {
		r.Max = 5 * time.Second
	}
	return r
}

// Backoff is the deterministic delay before retry attempt n (n >= 1):
// Base doubling per attempt, capped at Max. Exported so the daemon's
// lease coordinator (internal/serve/pool) reassigns expired shards
// under the same policy the in-process retry loop uses.
func (r Retry) Backoff(attempt int) time.Duration {
	return r.withDefaults().backoff(attempt)
}

// backoff is the deterministic delay before retry attempt n (n >= 1).
func (r Retry) backoff(attempt int) time.Duration {
	d := r.Base
	for i := 1; i < attempt && d < r.Max; i++ {
		d *= 2
	}
	if d > r.Max {
		d = r.Max
	}
	return d
}

// Options configures a sharded run. The zero value is a single shard
// covering everything, unscheckpointed — identical to the plain in-process
// workload.
type Options struct {
	// Shards is the partition width N (minimum 1).
	Shards int
	// Index selects which shard this process runs: 0..Shards-1, or All
	// (-1) to run every shard in this process — which doubles as the
	// merge step, since shards whose checkpoints are already complete
	// re-evaluate nothing.
	Index int
	// Checkpoint is the checkpoint path prefix (see CheckpointPath);
	// empty disables checkpointing.
	Checkpoint string
	// Resume loads each shard's checkpoint before running and skips the
	// work it records. Without Resume an existing checkpoint is
	// overwritten.
	Resume bool
	// Every is the minimum interval between periodic checkpoint writes
	// (default 5s). A final checkpoint is always written when the shard
	// stops, however it stops.
	Every time.Duration
	// Retry caps per-shard attempt retries.
	Retry Retry
	// Workers bounds each shard's evaluation worker pool (explore only).
	Workers int
	// MaxPoints caps the global enumeration space exactly as
	// explore.Options.MaxPoints does (explore only).
	MaxPoints int
	// FullEval disables the incremental delta evaluator (explore only).
	FullEval bool
	// Cache, when non-nil, supplies the evaluation cache shared with
	// other runs over the same prepared flow (explore only). The daemon
	// passes one cache per flow so concurrent and successive jobs reuse
	// each other's evaluations; nil builds a private cache per call.
	Cache *explore.Cache
	// OnProgress, when non-nil, is called after every completed work
	// item (design point or campaign run) — the lease heartbeat hook: a
	// shard silent past its lease TTL is presumed dead by the daemon's
	// coordinator. May be called concurrently from evaluation workers.
	OnProgress func()
}

func (o Options) withDefaults() Options {
	if o.Shards < 1 {
		o.Shards = 1
	}
	if o.Every <= 0 {
		o.Every = 5 * time.Second
	}
	o.Retry = o.Retry.withDefaults()
	return o
}

func (o Options) validate() error {
	if o.Index != All && (o.Index < 0 || o.Index >= o.Shards) {
		return fmt.Errorf("shard: index %d out of range for %d shards", o.Index, o.Shards)
	}
	return nil
}

// Flags is the CLI surface of a sharded run, shared by cmd/tradeoff and
// cmd/compare.
type Flags struct {
	shards     *int
	index      *int
	checkpoint *string
	resume     *bool
	every      *time.Duration
}

// AddFlags registers -shards, -shard-index, -checkpoint, -resume and
// -checkpoint-every on fs.
func AddFlags(fs *flag.FlagSet) *Flags {
	return &Flags{
		shards:     fs.Int("shards", 1, "partition the run into `n` deterministic shards"),
		index:      fs.Int("shard-index", All, "run only shard `i` (0-based); -1 runs and merges every shard in this process"),
		checkpoint: fs.String("checkpoint", "", "checkpoint path `prefix`; each shard writes prefix.shard<i>-of-<n>.ck"),
		resume:     fs.Bool("resume", false, "resume from existing checkpoints, skipping completed work"),
		every:      fs.Duration("checkpoint-every", 5*time.Second, "minimum interval between periodic checkpoint writes"),
	}
}

// Active reports whether any shard flag asks for the sharded path.
func (fl *Flags) Active() bool {
	return *fl.shards > 1 || *fl.index != All || *fl.checkpoint != "" || *fl.resume
}

// Options assembles the flag values (workload options are merged in by
// the caller).
func (fl *Flags) Options() Options {
	return Options{
		Shards:     *fl.shards,
		Index:      *fl.index,
		Checkpoint: *fl.checkpoint,
		Resume:     *fl.resume,
		Every:      *fl.every,
	}
}
