package shard

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/resil"
)

func testState(seq uint64) *State {
	return &State{
		Schema:      StateSchema,
		Kind:        "explore",
		Fingerprint: 0xDEADBEEFCAFEF00D,
		Shards:      4,
		Shard:       2,
		Total:       1000,
		Window:      Range{Lo: 500, Hi: 750},
		Seq:         seq,
		Done:        []Range{{Lo: 500, Hi: 600 + int64(seq)}},
		Front: []FrontPoint{
			{Selection: map[string]int{"A": 0, "B": 1}, Cells: 10, TAT: 100},
			{Selection: map[string]int{"A": 1, "B": 0}, Cells: 20, TAT: 90},
		},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf []byte
	var err error
	for seq := uint64(1); seq <= 3; seq++ {
		buf, err = AppendFrame(buf, testState(seq))
		if err != nil {
			t.Fatal(err)
		}
	}
	last, good, discarded := DecodeFrames(buf)
	if good != 3 || discarded != 0 {
		t.Fatalf("good=%d discarded=%d, want 3/0", good, discarded)
	}
	if !reflect.DeepEqual(last, testState(3)) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", last, testState(3))
	}
}

// TestTruncationFallsBack tears the file at every byte offset: the
// decoder must never panic and must recover exactly the frames that are
// wholly present.
func TestTruncationFallsBack(t *testing.T) {
	one, err := AppendFrame(nil, testState(1))
	if err != nil {
		t.Fatal(err)
	}
	both, err := AppendFrame(append([]byte(nil), one...), testState(2))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(both); cut++ {
		last, good, _ := DecodeFrames(both[:cut])
		switch {
		case cut < len(one):
			if last != nil || good != 0 {
				t.Fatalf("cut %d: want no good frame, got %d", cut, good)
			}
		case cut < len(both):
			if good != 1 || last == nil || last.Seq != 1 {
				t.Fatalf("cut %d: want fallback to frame 1, got good=%d last=%+v", cut, good, last)
			}
		default:
			if good != 2 || last == nil || last.Seq != 2 {
				t.Fatalf("cut %d: want both frames, got good=%d", cut, good)
			}
		}
	}
}

// TestBitFlipFallsBack flips every byte of the newest frame in turn; the
// decoder must fall back to the older frame (or, if the flip leaves the
// newest frame intact-by-checksum, that cannot happen with CRC-32 over
// these sizes) and never trust torn data.
func TestBitFlipFallsBack(t *testing.T) {
	one, err := AppendFrame(nil, testState(1))
	if err != nil {
		t.Fatal(err)
	}
	both, err := AppendFrame(append([]byte(nil), one...), testState(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := len(one); i < len(both); i++ {
		mut := append([]byte(nil), both...)
		mut[i] ^= 0x40
		last, _, _ := DecodeFrames(mut)
		if last == nil {
			t.Fatalf("flip at %d: lost every frame including the intact first", i)
		}
		if last.Seq == 2 {
			// The flip must have hit a JSON byte in a way the CRC... no:
			// any payload flip breaks the CRC, any header flip breaks
			// framing. Seq 2 surviving means decode of the mutated frame
			// succeeded, which would mean a CRC collision.
			t.Fatalf("flip at %d: corrupt newest frame was trusted", i)
		}
	}
}

// TestCorruptMiddleFrameResyncs damages an interior frame; frames behind
// it must still decode via the magic resync scan.
func TestCorruptMiddleFrameResyncs(t *testing.T) {
	var buf []byte
	var err error
	var ends []int
	for seq := uint64(1); seq <= 3; seq++ {
		buf, err = AppendFrame(buf, testState(seq))
		if err != nil {
			t.Fatal(err)
		}
		ends = append(ends, len(buf))
	}
	mut := append([]byte(nil), buf...)
	mut[ends[0]+headerSize+5] ^= 0xFF // payload of frame 2
	last, good, discarded := DecodeFrames(mut)
	if last == nil || last.Seq != 3 {
		t.Fatalf("resync failed: last=%+v", last)
	}
	if good != 2 || discarded == 0 {
		t.Fatalf("good=%d discarded=%d, want 2 good and >0 discarded", good, discarded)
	}
}

func TestDuplicateFramesTakeNewest(t *testing.T) {
	frame, err := AppendFrame(nil, testState(5))
	if err != nil {
		t.Fatal(err)
	}
	buf := bytes.Repeat(frame, 3)
	last, good, discarded := DecodeFrames(buf)
	if good != 3 || discarded != 0 || last == nil || last.Seq != 5 {
		t.Fatalf("duplicates: good=%d discarded=%d last=%+v", good, discarded, last)
	}
}

func TestUnknownSchemaDiscarded(t *testing.T) {
	s := testState(1)
	s.Schema = StateSchema + 99
	buf, err := AppendFrame(nil, s)
	if err != nil {
		t.Fatal(err)
	}
	last, good, discarded := DecodeFrames(buf)
	if last != nil || good != 0 || discarded == 0 {
		t.Fatalf("unknown schema trusted: good=%d discarded=%d", good, discarded)
	}
}

func TestGarbageFileIsFreshStart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.ck")
	if err := os.WriteFile(path, []byte("not a checkpoint at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Load(path)
	if err != nil || st != nil {
		t.Fatalf("garbage file: st=%v err=%v, want nil/nil", st, err)
	}
	if st, err := Load(filepath.Join(dir, "missing.ck")); err != nil || st != nil {
		t.Fatalf("missing file: st=%v err=%v, want nil/nil", st, err)
	}
}

func TestWriterKeepsHistoryAndLoadsNewest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.ck")
	w := &writer{path: path}
	for seq := uint64(1); seq <= keepFrames+3; seq++ {
		st := testState(0) // write stamps Seq itself
		st.Done = []Range{{Lo: 500, Hi: 500 + int64(seq)}}
		if err := w.write(st); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	last, good, discarded := DecodeFrames(data)
	if good != keepFrames || discarded != 0 {
		t.Fatalf("good=%d discarded=%d, want %d/0", good, discarded, keepFrames)
	}
	if last.Seq != keepFrames+3 || last.Done[0].Hi != 500+keepFrames+3 {
		t.Fatalf("newest frame wrong: %+v", last)
	}
	// Corrupt the newest frame on disk: Load must fall back to the one
	// before it.
	mut := append([]byte(nil), data...)
	mut[len(mut)-3] ^= 0x01
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if st == nil || st.Seq != keepFrames+2 {
		t.Fatalf("fallback frame wrong: %+v", st)
	}
}

func TestCampaignStateRoundTrip(t *testing.T) {
	s := &State{
		Schema: StateSchema, Kind: "campaign", Shards: 2, Shard: 1,
		Total: 10, Window: Range{Lo: 5, Hi: 10},
		Done: []Range{{Lo: 5, Hi: 7}},
		Records: []resil.RunRecord{
			{Index: 5, Seed: 42, Faults: "cut(a->b)", Completed: true, TAT: 123, Coverage: 0.875, VectorsCovered: 7, VectorsTotal: 8, Untestable: []string{"X"}},
			{Index: 6, Seed: 42, Faults: "opaque(X)", Completed: true, Err: "boom"},
		},
	}
	buf, err := AppendFrame(nil, s)
	if err != nil {
		t.Fatal(err)
	}
	last, good, _ := DecodeFrames(buf)
	if good != 1 || !reflect.DeepEqual(last, s) {
		t.Fatalf("campaign state mismatch:\n got %+v\nwant %+v", last, s)
	}
}
