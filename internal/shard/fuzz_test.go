package shard

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzCheckpointDecode throws arbitrary bytes at the checkpoint frame
// decoder: torn writes, truncations, bit flips, duplicate frames,
// garbage. Whatever the input, the decoder must not panic, must account
// every byte region as either a good frame or discarded, and any state
// it does recover must survive a re-encode/re-decode round trip
// unchanged (the frame it trusts is really self-consistent).
func FuzzCheckpointDecode(f *testing.F) {
	one, err := AppendFrame(nil, testState(1))
	if err != nil {
		f.Fatal(err)
	}
	two, err := AppendFrame(append([]byte(nil), one...), testState(2))
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add(one)
	f.Add(two)
	f.Add(two[:len(two)-7])                  // torn tail
	f.Add(append([]byte("garbage"), two...)) // junk prefix
	f.Add(bytes.Repeat(one, 3))              // duplicate frames
	flip := append([]byte(nil), two...)
	flip[len(one)+20] ^= 0x10
	f.Add(flip) // bit flip in the newest frame
	f.Fuzz(func(t *testing.T, data []byte) {
		last, good, discarded := DecodeFrames(data)
		if good < 0 || discarded < 0 {
			t.Fatalf("negative accounting: good=%d discarded=%d", good, discarded)
		}
		if len(data) == 0 && (last != nil || good != 0 || discarded != 0) {
			t.Fatalf("empty input produced state")
		}
		if last == nil {
			if good != 0 {
				t.Fatalf("good=%d frames but no state", good)
			}
			return
		}
		if good == 0 {
			t.Fatalf("state recovered from zero good frames")
		}
		if last.Schema != StateSchema {
			t.Fatalf("trusted frame with schema %d", last.Schema)
		}
		reenc, err := AppendFrame(nil, last)
		if err != nil {
			t.Fatalf("recovered state does not re-encode: %v", err)
		}
		again, regood, rediscarded := DecodeFrames(reenc)
		if regood != 1 || rediscarded != 0 {
			t.Fatalf("re-encoded state decodes as good=%d discarded=%d", regood, rediscarded)
		}
		// Compare canonical JSON, not DeepEqual: a crafted frame may hold
		// an empty-but-non-nil slice that omitempty collapses to nil on
		// the round trip — semantically the same state.
		a, err1 := json.Marshal(last)
		b, err2 := json.Marshal(again)
		if err1 != nil || err2 != nil || !bytes.Equal(a, b) {
			t.Fatalf("re-decode mismatch:\n got %s\nwant %s", b, a)
		}
	})
}
