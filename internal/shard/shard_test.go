package shard

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/atpg"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/resil"
	"repro/internal/socgen"
	"repro/internal/systems"
)

func TestPlanCoversEveryIndexOnce(t *testing.T) {
	for _, total := range []int64{0, 1, 7, 100, 1001} {
		for _, n := range []int{1, 2, 3, 7, 16, 200} {
			plan := Plan(total, n)
			if len(plan) != n {
				t.Fatalf("Plan(%d,%d): %d ranges", total, n, len(plan))
			}
			var covered int64
			for i, r := range plan {
				covered += r.Len()
				if i > 0 && plan[i-1].Hi != r.Lo {
					t.Fatalf("Plan(%d,%d): gap between shard %d and %d", total, n, i-1, i)
				}
			}
			if covered != total || plan[0].Lo != 0 || plan[n-1].Hi != total {
				t.Fatalf("Plan(%d,%d) does not tile [0,%d): %v", total, n, total, plan)
			}
		}
	}
}

func TestRangeOps(t *testing.T) {
	done := map[int64]struct{}{1: {}, 2: {}, 3: {}, 7: {}, 9: {}, 10: {}}
	got := coalesce(done, []Range{{Lo: 4, Hi: 6}})
	want := []Range{{Lo: 1, Hi: 6}, {Lo: 7, Hi: 8}, {Lo: 9, Hi: 11}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("coalesce = %v, want %v", got, want)
	}
	for i := int64(0); i < 12; i++ {
		_, fresh := done[i]
		wantIn := fresh || (i >= 4 && i < 6)
		if inRanges(got, i) != wantIn {
			t.Fatalf("inRanges(%d) = %v", i, !wantIn)
		}
	}
	missing := subtract(Range{Lo: 0, Hi: 12}, got)
	wantMissing := []Range{{Lo: 0, Hi: 1}, {Lo: 6, Hi: 7}, {Lo: 8, Hi: 9}, {Lo: 11, Hi: 12}}
	if !reflect.DeepEqual(missing, wantMissing) {
		t.Fatalf("subtract = %v, want %v", missing, wantMissing)
	}
	if countRanges(got) != 8 {
		t.Fatalf("countRanges = %d", countRanges(got))
	}
}

func TestCanonFrontCompositional(t *testing.T) {
	pts := []FrontPoint{
		{Selection: map[string]int{"A": 0}, Cells: 10, TAT: 100},
		{Selection: map[string]int{"A": 1}, Cells: 10, TAT: 100}, // tie: larger key loses
		{Selection: map[string]int{"A": 2}, Cells: 10, TAT: 120}, // dominated
		{Selection: map[string]int{"A": 3}, Cells: 20, TAT: 80},
		{Selection: map[string]int{"A": 4}, Cells: 30, TAT: 80}, // dominated (same TAT, more cells)
		{Selection: map[string]int{"A": 5}, Cells: 25, TAT: 90}, // dominated
	}
	want := CanonFront(pts)
	if len(want) != 2 || want[0].Selection["A"] != 0 || want[1].Selection["A"] != 3 {
		t.Fatalf("CanonFront = %v", want)
	}
	// Every 2-partition of the points must merge to the same front.
	for mask := 0; mask < 1<<len(pts); mask++ {
		var a, b []FrontPoint
		for i, p := range pts {
			if mask&(1<<i) != 0 {
				a = append(a, p)
			} else {
				b = append(b, p)
			}
		}
		if got := MergeFronts(CanonFront(a), CanonFront(b)); !reflect.DeepEqual(got, want) {
			t.Fatalf("partition %b: merged front %v, want %v", mask, got, want)
		}
	}
}

func TestRetryBackoffCapped(t *testing.T) {
	r := Retry{Attempts: 10, Base: 100 * time.Millisecond, Max: time.Second}.withDefaults()
	want := []time.Duration{100, 200, 400, 800, 1000, 1000}
	for i, w := range want {
		if got := r.backoff(i + 1); got != w*time.Millisecond {
			t.Fatalf("backoff(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}

// campaignFlow caches one prepared System1 flow per test binary —
// Prepare runs full ATPG and dominates campaign test time otherwise.
var sharedCampaignFlow *core.Flow

func campaignFlow(t testing.TB) *core.Flow {
	t.Helper()
	if sharedCampaignFlow == nil {
		f, err := core.Prepare(systems.System1(), &core.Options{ATPG: &atpg.Options{BacktrackLimit: 30}})
		if err != nil {
			t.Fatal(err)
		}
		sharedCampaignFlow = f
	}
	return sharedCampaignFlow
}

// generatedFlow prepares a small seeded socgen chip (the cmd/tradeoff
// -gen vector-override rule).
func generatedFlow(t testing.TB, seed uint64, cores int) *core.Flow {
	t.Helper()
	ch, err := socgen.Generate(socgen.Params{Seed: seed, Cores: cores, Topology: socgen.RandomDAG})
	if err != nil {
		t.Fatal(err)
	}
	vecs := map[string]int{}
	for i, c := range ch.TestableCores() {
		vecs[c.Name] = 10 + i%23
	}
	f, err := core.Prepare(ch, &core.Options{VectorOverride: vecs})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// singleProcessFront is the unsharded reference: the canonical front
// over a plain EnumerateCtx of the whole (capped) space.
func singleProcessFront(t *testing.T, f *core.Flow, maxPoints int) []FrontPoint {
	t.Helper()
	pts, err := explore.EnumerateCtx(context.Background(), f, explore.Options{MaxPoints: maxPoints})
	if err != nil {
		t.Fatal(err)
	}
	comp := make([]FrontPoint, len(pts))
	for i, p := range pts {
		comp[i] = FromPoint(p)
	}
	return CanonFront(comp)
}

// TestShardedFrontDeterminism is the partitioning gate: for random
// seeds, the union of per-shard windowed enumerations must equal the
// single-process front at N ∈ {1, 2, 3, 7} shards.
func TestShardedFrontDeterminism(t *testing.T) {
	for _, seed := range []uint64{3, 11, 1998} {
		f := generatedFlow(t, seed, 6)
		const maxPoints = 160
		want := singleProcessFront(t, f, maxPoints)
		if len(want) == 0 {
			t.Fatalf("seed %d: empty reference front (vacuous test)", seed)
		}
		space := explore.SelectionSpace(f, maxPoints)
		for _, n := range []int{1, 2, 3, 7} {
			var fronts [][]FrontPoint
			for _, win := range Plan(int64(space), n) {
				pts, err := explore.EnumerateCtx(context.Background(), f, explore.Options{
					MaxPoints: maxPoints,
					First:     int(win.Lo),
					Count:     int(win.Len()),
				})
				if err != nil {
					t.Fatal(err)
				}
				comp := make([]FrontPoint, len(pts))
				for j, p := range pts {
					comp[j] = FromPoint(p)
				}
				fronts = append(fronts, CanonFront(comp))
			}
			if got := MergeFronts(fronts...); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d, %d shards: union-of-shards front differs from single-process:\n got %v\nwant %v",
					seed, n, got, want)
			}
		}
	}
}

// TestRunExploreMatchesSingleProcess drives the full runner (checkpoints
// on, multiple shards in one process) against the plain enumeration.
func TestRunExploreMatchesSingleProcess(t *testing.T) {
	f := generatedFlow(t, 7, 6)
	const maxPoints = 120
	want := singleProcessFront(t, f, maxPoints)
	for _, n := range []int{1, 3} {
		res, err := RunExplore(context.Background(), f, Options{
			Shards:     n,
			Index:      All,
			Checkpoint: filepath.Join(t.TempDir(), "ck"),
			Every:      time.Millisecond,
			MaxPoints:  maxPoints,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Front, want) {
			t.Fatalf("%d shards: front differs from single-process", n)
		}
		if res.Done != res.Total || len(res.Incomplete) != 0 {
			t.Fatalf("%d shards: done=%d total=%d incomplete=%v", n, res.Done, res.Total, res.Incomplete)
		}
	}
}

// TestRunExploreResumeSkipsCompletedWork checkpoints shard 0, then
// resumes the whole run: the resumed process must not re-evaluate what
// the checkpoint already covers, and the merged front must match.
func TestRunExploreResumeSkipsCompletedWork(t *testing.T) {
	f := generatedFlow(t, 5, 6)
	const maxPoints = 100
	prefix := filepath.Join(t.TempDir(), "ck")
	want := singleProcessFront(t, f, maxPoints)

	// Phase 1: run only shard 0 of 2, to completion.
	res0, err := RunExplore(context.Background(), f, Options{
		Shards: 2, Index: 0, Checkpoint: prefix, Every: time.Millisecond, MaxPoints: maxPoints,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res0.Done == 0 {
		t.Fatal("shard 0 did nothing")
	}

	// Phase 2: resume all shards; shard 0's window is already covered by
	// the checkpoint and must not be re-evaluated.
	res, err := RunExplore(context.Background(), f, Options{
		Shards: 2, Index: All, Checkpoint: prefix, Resume: true, Every: time.Millisecond, MaxPoints: maxPoints,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Front, want) {
		t.Fatalf("resumed front differs from single-process:\n got %v\nwant %v", res.Front, want)
	}
	if res.Done != res.Total {
		t.Fatalf("resume left work: done=%d total=%d incomplete=%v", res.Done, res.Total, res.Incomplete)
	}

	// Phase 3: resume again — everything checkpointed, so this is a pure
	// merge; it must produce the same front yet evaluate nothing new.
	res2, err := RunExplore(context.Background(), f, Options{
		Shards: 2, Index: All, Checkpoint: prefix, Resume: true, MaxPoints: maxPoints,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res2.Front, want) {
		t.Fatal("pure-merge resume changed the front")
	}
}

// TestRunExploreRefusesForeignCheckpoint: resuming a checkpoint written
// for a different chip/partitioning must fail loudly, not merge wrong.
func TestRunExploreRefusesForeignCheckpoint(t *testing.T) {
	f := generatedFlow(t, 5, 6)
	other := generatedFlow(t, 6, 6)
	prefix := filepath.Join(t.TempDir(), "ck")
	if _, err := RunExplore(context.Background(), f, Options{
		Shards: 1, Index: All, Checkpoint: prefix, MaxPoints: 40,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunExplore(context.Background(), other, Options{
		Shards: 1, Index: All, Checkpoint: prefix, Resume: true, MaxPoints: 40,
	}); err == nil {
		t.Fatal("foreign checkpoint resumed without error")
	}
	// A checkpoint recording a different partitioning: normally unreachable
	// (the file name embeds the shard count) but if one lands at the wrong
	// path it must still be refused by the identity fields in the frame.
	data, err := os.ReadFile(CheckpointPath(prefix, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(CheckpointPath(prefix, 0, 2), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RunExplore(context.Background(), f, Options{
		Shards: 2, Index: 0, Checkpoint: prefix, Resume: true, MaxPoints: 40,
	}); err == nil {
		t.Fatal("checkpoint with different partitioning resumed without error")
	}
}

// TestRunExploreRetriesTransientFailures injects failures into the first
// attempts of every shard; the retry policy must absorb them and still
// converge to the single-process front.
func TestRunExploreRetriesTransientFailures(t *testing.T) {
	f := generatedFlow(t, 9, 6)
	const maxPoints = 80
	want := singleProcessFront(t, f, maxPoints)
	fails := map[int]int{}
	old := attemptHook
	attemptHook = func(kind string, shard, attempt int) error {
		if attempt <= 2 {
			fails[shard]++
			return fmt.Errorf("injected fault (shard %d attempt %d)", shard, attempt)
		}
		return nil
	}
	defer func() { attemptHook = old }()
	res, err := RunExplore(context.Background(), f, Options{
		Shards: 2, Index: All, MaxPoints: maxPoints,
		Retry: Retry{Attempts: 3, Base: time.Millisecond, Max: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("retries did not absorb injected faults: %v", err)
	}
	if fails[0] != 2 || fails[1] != 2 {
		t.Fatalf("injected-fault counts: %v", fails)
	}
	if !reflect.DeepEqual(res.Front, want) {
		t.Fatal("front after retries differs from single-process")
	}
}

// TestRunExploreDegradesWithAttribution exhausts the retry budget on one
// shard: the run must return the other shard's work with the failed
// window attributed in Incomplete, not fail wholesale.
func TestRunExploreDegradesWithAttribution(t *testing.T) {
	f := generatedFlow(t, 9, 6)
	const maxPoints = 80
	old := attemptHook
	attemptHook = func(kind string, shard, attempt int) error {
		if shard == 1 {
			return errors.New("injected permanent fault")
		}
		return nil
	}
	defer func() { attemptHook = old }()
	res, err := RunExplore(context.Background(), f, Options{
		Shards: 2, Index: All, MaxPoints: maxPoints,
		Retry: Retry{Attempts: 2, Base: time.Millisecond, Max: time.Millisecond},
	})
	if err == nil {
		t.Fatal("exhausted retries reported no error")
	}
	if res == nil || len(res.Front) == 0 {
		t.Fatal("no partial result returned")
	}
	space := int64(explore.SelectionSpace(f, maxPoints))
	wantMissing := Plan(space, 2)[1]
	if len(res.Incomplete) != 1 || res.Incomplete[0] != wantMissing {
		t.Fatalf("incomplete attribution = %v, want [%v]", res.Incomplete, wantMissing)
	}
	if res.Done != space-wantMissing.Len() {
		t.Fatalf("done = %d, want %d", res.Done, space-wantMissing.Len())
	}
}

// TestRunCampaignMatchesSingleProcess: the sharded campaign report must
// be bit-identical to the single-process Execute+Report, at several N.
func TestRunCampaignMatchesSingleProcess(t *testing.T) {
	f := campaignFlow(t)
	const seed = 42
	c := &resil.Campaign{Flow: f, Runs: resil.RandomSets(f.Chip, 9, 2, seed), Seed: seed}
	outs, err := c.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := c.Report(outs)
	if len(want.Records) != 9 {
		t.Fatalf("reference report has %d records", len(want.Records))
	}
	for _, n := range []int{1, 2, 3, 7} {
		res, err := RunCampaign(context.Background(), c, Options{
			Shards: n, Index: All,
			Checkpoint: filepath.Join(t.TempDir(), "ck"),
			Every:      time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Report, want) {
			t.Fatalf("%d shards: campaign report differs from single-process:\n got %+v\nwant %+v",
				n, res.Report, want)
		}
		if res.Report.Format() != want.Format() {
			t.Fatalf("%d shards: formatted report differs", n)
		}
	}
}

// TestCampaignResumeFromReport exercises the satellite contract: a
// cancelled campaign's report knows which sets ran; resuming its Missing
// indices completes it, and the merged report equals the full run.
func TestCampaignResumeFromReport(t *testing.T) {
	f := campaignFlow(t)
	const seed = 7
	c := &resil.Campaign{Flow: f, Runs: resil.RandomSets(f.Chip, 6, 2, seed), Seed: seed}
	full, err := c.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := c.Report(full)

	// Cancel after 2 runs.
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	c2 := *c
	c2.OnOutcome = func(resil.Outcome) {
		ran++
		if ran == 2 {
			cancel()
		}
	}
	outs, err := c2.Execute(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled campaign returned %v", err)
	}
	partial := c.Report(outs)
	missing := partial.Missing()
	if len(outs) != 2 || len(missing) != 4 {
		t.Fatalf("partial: %d outcomes, missing %v", len(outs), missing)
	}

	// Resume exactly the missing sets; merged report must equal the full.
	c3 := *c
	c3.Indices = missing
	rest, err := c3.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := resil.MergeReports(partial, c.Report(rest))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed report differs:\n got %+v\nwant %+v", got, want)
	}
}
