package shard

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/obs"
	"repro/internal/obs/progress"
	"repro/internal/resil"
)

// attemptHook, when non-nil, is consulted at the start of every shard
// attempt; a non-nil return is treated as that attempt failing. It exists
// so tests can inject transient shard faults without manufacturing real
// evaluation panics.
var attemptHook func(kind string, shard, attempt int) error

// shardRun is the mutable state of one shard while (re)running: the
// completed-index set split into checkpoint-loaded prior ranges and
// fresh this-process indices, the accumulating partial result, and the
// throttled checkpoint writer.
type shardRun struct {
	kind   string
	idx    int
	window Range
	every  time.Duration

	state State // identity fields, reused for every frame

	beat func() // optional lease heartbeat, from Options.OnProgress

	mu        sync.Mutex
	prior     []Range // sorted disjoint, from the loaded checkpoint
	fresh     map[int64]struct{}
	pts       []FrontPoint              // explore: completed points, periodically canonicalized
	recs      map[int64]resil.RunRecord // campaign: completed run records
	w         *writer
	lastFlush time.Time
	prog      *progress.Task
}

// newShardRun builds shard idx's run state, loading and validating its
// checkpoint when resuming. An incompatible checkpoint (different chip,
// workload, partitioning or work total) is a loud error; a corrupt one
// has already been degraded to its newest good frame — or to nothing —
// by Load.
func newShardRun(o Options, kind string, fingerprint uint64, idx int, window Range, total int64) (*shardRun, error) {
	s := &shardRun{
		kind:   kind,
		idx:    idx,
		window: window,
		every:  o.Every,
		beat:   o.OnProgress,
		fresh:  map[int64]struct{}{},
		recs:   map[int64]resil.RunRecord{},
		state: State{
			Schema:      StateSchema,
			Kind:        kind,
			Fingerprint: fingerprint,
			Shards:      o.Shards,
			Shard:       idx,
			Total:       total,
			Window:      window,
		},
	}
	path := CheckpointPath(o.Checkpoint, idx, o.Shards)
	if path != "" {
		s.w = &writer{path: path}
	}
	if path == "" || !o.Resume {
		return s, nil
	}
	st, err := Load(path)
	if err != nil {
		return nil, err
	}
	if st == nil {
		return s, nil // fresh start: no file, or nothing salvageable
	}
	if st.Kind != kind || st.Fingerprint != fingerprint || st.Shards != o.Shards ||
		st.Shard != idx || st.Total != total {
		return nil, fmt.Errorf("shard: checkpoint %s holds %s shard %d/%d over fingerprint %016x (total %d); refusing to resume %s shard %d/%d over %016x (total %d)",
			path, st.Kind, st.Shard, st.Shards, st.Fingerprint, st.Total,
			kind, idx, o.Shards, fingerprint, total)
	}
	s.prior = normalize(st.Done)
	s.pts = append(s.pts, st.Front...)
	for _, rec := range st.Records {
		s.recs[int64(rec.Index)] = rec
	}
	if len(s.prior) > 0 {
		obs.C("shard.resumed_ranges").Add(int64(len(s.prior)))
	}
	if err := s.w.seed(st); err != nil {
		return nil, err
	}
	return s, nil
}

// skip reports whether global index gi is already done (prior checkpoint
// or this process). Safe for concurrent use from evaluation workers.
func (s *shardRun) skip(gi int) bool {
	i := int64(gi)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.fresh[i]; ok {
		return true
	}
	return inRanges(s.prior, i)
}

// observePoint records one completed design point and checkpoints when
// the throttle interval has passed. Called concurrently from workers.
func (s *shardRun) observePoint(gi int, p explore.Point) {
	s.mu.Lock()
	if _, ok := s.fresh[int64(gi)]; !ok && !inRanges(s.prior, int64(gi)) {
		s.fresh[int64(gi)] = struct{}{}
		s.pts = append(s.pts, FromPoint(p))
		// Keep the buffer a front plus a bounded tail, so checkpoint
		// frames stay O(front), not O(points completed).
		if len(s.pts) > 256 {
			s.pts = CanonFront(s.pts)
		}
		s.prog.Step(1)
	}
	s.maybeFlushLocked()
	s.mu.Unlock()
	if s.beat != nil {
		s.beat()
	}
}

// observeOutcome records one completed campaign run. Campaign execution
// is sequential per shard, but the same locking keeps the flush path
// uniform.
func (s *shardRun) observeOutcome(rec resil.RunRecord) {
	s.mu.Lock()
	i := int64(rec.Index)
	if _, ok := s.recs[i]; !ok {
		s.recs[i] = rec
		s.fresh[i] = struct{}{}
		s.prog.Step(1)
	}
	s.maybeFlushLocked()
	s.mu.Unlock()
	if s.beat != nil {
		s.beat()
	}
}

// maybeFlushLocked writes a periodic checkpoint when due. Errors are
// swallowed deliberately: a failed periodic write costs recoverable
// progress, not correctness, and the final flush reports its error.
func (s *shardRun) maybeFlushLocked() {
	if s.w == nil || time.Since(s.lastFlush) < s.every {
		return
	}
	s.lastFlush = time.Now()
	_ = s.flushLocked()
}

// flushLocked assembles the current state into a frame and persists it.
func (s *shardRun) flushLocked() error {
	if s.w == nil {
		return nil
	}
	st := s.state
	st.Done = coalesce(s.fresh, s.prior)
	if s.kind == "explore" {
		s.pts = CanonFront(s.pts)
		st.Front = s.pts
	} else {
		st.Records = s.records()
	}
	return s.w.write(&st)
}

// finalFlush persists the shard's terminal state (always written, even on
// failure, so the next resume starts from everything that completed).
func (s *shardRun) finalFlush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

// records lists the completed run records in index order (caller holds mu).
func (s *shardRun) records() []resil.RunRecord {
	idx := make([]int64, 0, len(s.recs))
	for i := range s.recs {
		idx = append(idx, i)
	}
	sortInt64s(idx)
	out := make([]resil.RunRecord, 0, len(idx))
	for _, i := range idx {
		out = append(out, s.recs[i])
	}
	return out
}

func sortInt64s(v []int64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// doneRanges returns the completed indices as sorted disjoint ranges.
func (s *shardRun) doneRanges() []Range {
	s.mu.Lock()
	defer s.mu.Unlock()
	return coalesce(s.fresh, s.prior)
}

// front returns the canonical partial front over the completed points.
func (s *shardRun) front() []FrontPoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pts = CanonFront(s.pts)
	return s.pts
}

// retryLoop runs once (an attempt of the shard's workload) under the
// retry policy: context errors pass through untouched, other failures
// back off and retry until the attempt budget is spent. Completed work
// survives across attempts — the skip set makes retries incremental.
func (s *shardRun) retryLoop(ctx context.Context, r Retry, once func(attempt int) error) error {
	for attempt := 1; ; attempt++ {
		err := once(attempt)
		if err == nil || ctx.Err() != nil {
			return err
		}
		if attempt >= r.Attempts {
			return fmt.Errorf("shard %d (%s): giving up after %d attempts: %w", s.idx, s.kind, attempt, err)
		}
		obs.C("shard.retries").Inc()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(r.backoff(attempt)):
		}
	}
}

// ExploreResult is the outcome of a sharded design-space sweep: the
// canonical (partial) Pareto front of every completed point, the global
// work accounting, and — when the run degraded — exactly which index
// ranges never completed.
type ExploreResult struct {
	Front      []FrontPoint
	Total      int64
	Done       int64
	Incomplete []Range
}

// RunExplore runs the selected shards of a sharded enumeration over f and
// merges their fronts. With Options.Index == All and complete checkpoints
// this is a pure merge: every shard resumes, finds nothing missing, and
// contributes its checkpointed front. On error the returned result still
// carries everything that completed, with the unfinished ranges
// attributed in Incomplete.
func RunExplore(ctx context.Context, f *core.Flow, o Options) (*ExploreResult, error) {
	o = o.withDefaults()
	if err := o.validate(); err != nil {
		return nil, err
	}
	total := int64(explore.SelectionSpace(f, o.MaxPoints))
	plan := Plan(total, o.Shards)
	cache := o.Cache
	if cache == nil {
		cache = explore.NewCache()
		if o.FullEval {
			cache = explore.NewFullCache()
		}
	}
	res := &ExploreResult{Total: total}
	var fronts [][]FrontPoint
	var firstErr error
	for i, win := range plan {
		if o.Index != All && i != o.Index {
			continue
		}
		if ctx.Err() != nil && firstErr != nil {
			res.Incomplete = append(res.Incomplete, win)
			continue
		}
		s, err := newShardRun(o, "explore", f.Fingerprint(), i, win, total)
		if err != nil {
			return nil, err
		}
		err = s.runExplore(ctx, f, o, cache)
		fronts = append(fronts, s.front())
		done := s.doneRanges()
		res.Done += countRanges(done)
		res.Incomplete = append(res.Incomplete, subtract(win, done)...)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	res.Front = MergeFronts(fronts...)
	res.Incomplete = normalize(res.Incomplete)
	return res, firstErr
}

// runExplore drives one shard's enumeration window under the retry
// policy, checkpointing along the way and once more at the end.
func (s *shardRun) runExplore(ctx context.Context, f *core.Flow, o Options, cache *explore.Cache) error {
	s.prog = progress.Start(fmt.Sprintf("shard/explore[%d/%d]", s.idx, s.state.Shards), s.window.Len(),
		"shard.checkpoints_written", "shard.retries")
	defer s.prog.End()
	s.mu.Lock()
	s.prog.Step(countRanges(s.prior))
	s.lastFlush = time.Now()
	s.mu.Unlock()
	err := s.retryLoop(ctx, o.Retry, func(attempt int) error {
		if attemptHook != nil {
			if err := attemptHook(s.kind, s.idx, attempt); err != nil {
				return err
			}
		}
		_, err := explore.EnumerateCtx(ctx, f, explore.Options{
			Workers:   o.Workers,
			Cache:     cache,
			MaxPoints: o.MaxPoints,
			FullEval:  o.FullEval,
			First:     int(s.window.Lo),
			Count:     int(s.window.Len()),
			Skip:      s.skip,
			Observer:  s.observePoint,
		})
		return err
	})
	if ferr := s.finalFlush(); err == nil {
		err = ferr
	}
	return err
}

// CampaignResult is the outcome of a sharded fault campaign: the merged
// report over every completed run record, plus the unfinished set indices.
type CampaignResult struct {
	Report     *resil.Report
	Total      int64
	Done       int64
	Incomplete []Range
}

// RunCampaign runs the selected shards of a sharded fault campaign over c
// and merges their reports. The semantics mirror RunExplore: resume skips
// checkpointed runs, retries absorb transient failures, and the merged
// report is bit-identical to c.Report over a single-process Execute.
func RunCampaign(ctx context.Context, c *resil.Campaign, o Options) (*CampaignResult, error) {
	o = o.withDefaults()
	if err := o.validate(); err != nil {
		return nil, err
	}
	total := int64(len(c.Runs))
	plan := Plan(total, o.Shards)
	res := &CampaignResult{Total: total}
	var recs []resil.RunRecord
	var firstErr error
	for i, win := range plan {
		if o.Index != All && i != o.Index {
			continue
		}
		if ctx.Err() != nil && firstErr != nil {
			res.Incomplete = append(res.Incomplete, win)
			continue
		}
		s, err := newShardRun(o, "campaign", c.Flow.Fingerprint(), i, win, total)
		if err != nil {
			return nil, err
		}
		err = s.runCampaign(ctx, c, o)
		s.mu.Lock()
		recs = append(recs, s.records()...)
		s.mu.Unlock()
		done := s.doneRanges()
		res.Done += countRanges(done)
		res.Incomplete = append(res.Incomplete, subtract(win, done)...)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	report := &resil.Report{Chip: c.Flow.Chip.Name, Seed: c.Seed, Total: int(total)}
	report.Records = append(report.Records, recs...)
	res.Report = resil.MergeReports(report)
	res.Incomplete = normalize(res.Incomplete)
	return res, firstErr
}

// runCampaign drives one shard's slice of the campaign under the retry
// policy. Each attempt executes only the window's still-missing indices.
func (s *shardRun) runCampaign(ctx context.Context, c *resil.Campaign, o Options) error {
	s.prog = progress.Start(fmt.Sprintf("shard/campaign[%d/%d]", s.idx, s.state.Shards), s.window.Len(),
		"shard.checkpoints_written", "shard.retries")
	defer s.prog.End()
	s.mu.Lock()
	s.prog.Step(countRanges(s.prior))
	s.lastFlush = time.Now()
	s.mu.Unlock()
	err := s.retryLoop(ctx, o.Retry, func(attempt int) error {
		if attemptHook != nil {
			if err := attemptHook(s.kind, s.idx, attempt); err != nil {
				return err
			}
		}
		var pending []int
		for gi := s.window.Lo; gi < s.window.Hi; gi++ {
			if !s.skip(int(gi)) {
				pending = append(pending, int(gi))
			}
		}
		if len(pending) == 0 {
			return nil
		}
		sub := *c
		sub.Indices = pending
		sub.OnOutcome = func(out resil.Outcome) { s.observeOutcome(c.Record(out)) }
		_, err := sub.Execute(ctx)
		return err
	})
	if ferr := s.finalFlush(); err == nil {
		err = ferr
	}
	return err
}
