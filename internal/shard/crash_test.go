package shard

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/resil"
)

// The crash harness re-execs this test binary as a shard worker and
// SIGKILLs it mid-flight at seeded delays, then resumes in-process and
// asserts the merged result is bit-identical to the single-process run.
// The helper tests below only act when SHARD_CRASH_HELPER selects them;
// in a normal test run they are skipped.

const (
	crashHelperEnv   = "SHARD_CRASH_HELPER"
	crashPrefixEnv   = "SHARD_CRASH_PREFIX"
	crashExploreFlag = "explore"
	crashCampaignFlg = "campaign"
)

// crashFlow is the fixed workload both the helper process and the
// parent build independently — it must be deterministic across
// processes, and big enough (seed 9, 12 cores: 1536 selections) that a
// shard is reliably mid-flight when the SIGKILL lands.
func crashFlow(t testing.TB) *core.Flow {
	return generatedFlow(t, 9, 12)
}

func crashCampaign(t testing.TB) *resil.Campaign {
	f := campaignFlow(t)
	const seed = 13
	return &resil.Campaign{Flow: f, Runs: resil.RandomSets(f.Chip, 12, 2, seed), Seed: seed}
}

const crashMaxPoints = 600

// TestCrashHelper is the worker body, not a test: it runs shard 1 of 2
// with aggressive checkpointing until the parent SIGKILLs it.
func TestCrashHelper(t *testing.T) {
	mode := os.Getenv(crashHelperEnv)
	if mode == "" {
		t.Skip("crash-harness helper; driven by TestCrashResume*")
	}
	prefix := os.Getenv(crashPrefixEnv)
	opts := Options{
		Shards: 2, Index: 1, Checkpoint: prefix, Resume: true,
		Every: time.Millisecond, MaxPoints: crashMaxPoints,
	}
	var err error
	switch mode {
	case crashExploreFlag:
		_, err = RunExplore(context.Background(), crashFlow(t), opts)
	case crashCampaignFlg:
		_, err = RunCampaign(context.Background(), crashCampaign(t), opts)
	default:
		t.Fatalf("unknown helper mode %q", mode)
	}
	if err != nil {
		t.Fatal(err)
	}
}

// spawnAndKill launches the helper in the given mode and SIGKILLs it
// after the delay. Returns whether the helper was killed (as opposed to
// finishing first — also a valid outcome for long delays).
func spawnAndKill(t *testing.T, mode, prefix string, delay time.Duration) bool {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		crashHelperEnv+"="+mode,
		crashPrefixEnv+"="+prefix,
	)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case <-time.After(delay):
		if err := cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup, no final flush
			t.Fatalf("kill: %v", err)
		}
		<-done
		return true
	case err := <-done:
		if err != nil {
			t.Fatalf("helper finished with error before kill: %v", err)
		}
		return false
	}
}

// TestCrashResumeExplore SIGKILLs an exploring shard at several points in
// its life — before first checkpoint, mid-flight, near completion — and
// asserts each resume converges to the single-process Pareto front.
func TestCrashResumeExplore(t *testing.T) {
	if os.Getenv(crashHelperEnv) != "" {
		t.Skip("inside helper process")
	}
	f := crashFlow(t)
	want := singleProcessFront(t, f, crashMaxPoints)
	for _, delay := range []time.Duration{5 * time.Millisecond, 30 * time.Millisecond, 150 * time.Millisecond} {
		t.Run(fmt.Sprint(delay), func(t *testing.T) {
			prefix := filepath.Join(t.TempDir(), "ck")
			killed := spawnAndKill(t, crashExploreFlag, prefix, delay)
			t.Logf("helper killed=%v", killed)
			// Whatever the kill left on disk — nothing, a partial file, a
			// torn tail — resume must converge without error.
			res, err := RunExplore(context.Background(), f, Options{
				Shards: 2, Index: All, Checkpoint: prefix, Resume: true,
				Every: time.Millisecond, MaxPoints: crashMaxPoints,
			})
			if err != nil {
				t.Fatalf("resume after SIGKILL: %v", err)
			}
			if !reflect.DeepEqual(res.Front, want) {
				t.Fatalf("resumed front differs from single-process:\n got %v\nwant %v", res.Front, want)
			}
			if res.Done != res.Total || len(res.Incomplete) != 0 {
				t.Fatalf("resume left work: done=%d/%d incomplete=%v", res.Done, res.Total, res.Incomplete)
			}
		})
	}
}

// spawnAndKillOnCheckpoint launches the helper and SIGKILLs it the
// moment its first checkpoint frame lands on disk, so the kill is
// guaranteed mid-flight with real partial state behind it. Returns the
// shard's checkpoint path.
func spawnAndKillOnCheckpoint(t *testing.T, mode, prefix string) string {
	t.Helper()
	ckPath := CheckpointPath(prefix, 1, 2)
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		crashHelperEnv+"="+mode,
		crashPrefixEnv+"="+prefix,
	)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	deadline := time.After(60 * time.Second)
	for {
		if fi, err := os.Stat(ckPath); err == nil && fi.Size() > 0 {
			cmd.Process.Kill()
			<-done
			return ckPath
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("helper exited before checkpointing: %v", err)
			}
			return ckPath // finished cleanly first; resume still must converge
		case <-deadline:
			cmd.Process.Kill()
			<-done
			t.Fatal("helper never wrote a checkpoint")
		case <-time.After(200 * time.Microsecond):
		}
	}
}

// TestCrashResumeExploreKillOnFirstCheckpoint forces a genuinely
// mid-flight kill: it polls for the shard's checkpoint file and SIGKILLs
// the helper the moment the first frame lands on disk, so resume starts
// from a real partial checkpoint (not an empty directory).
func TestCrashResumeExploreKillOnFirstCheckpoint(t *testing.T) {
	if os.Getenv(crashHelperEnv) != "" {
		t.Skip("inside helper process")
	}
	f := crashFlow(t)
	want := singleProcessFront(t, f, crashMaxPoints)
	prefix := filepath.Join(t.TempDir(), "ck")
	ckPath := spawnAndKillOnCheckpoint(t, crashExploreFlag, prefix)
	st, err := Load(ckPath)
	if err != nil {
		t.Fatalf("checkpoint unreadable after SIGKILL: %v", err)
	}
	if st == nil {
		t.Fatal("no recoverable frame in checkpoint")
	}
	t.Logf("killed with %d/%d indices checkpointed", countRanges(st.Done), st.Window.Len())
	res, err := RunExplore(context.Background(), f, Options{
		Shards: 2, Index: All, Checkpoint: prefix, Resume: true,
		Every: time.Millisecond, MaxPoints: crashMaxPoints,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Front, want) {
		t.Fatalf("resumed front differs from single-process:\n got %v\nwant %v", res.Front, want)
	}
}

// TestCrashResumeExploreRepeatedKills kills the same shard twice in a
// row before letting the resume finish — checkpoints must stack.
func TestCrashResumeExploreRepeatedKills(t *testing.T) {
	if os.Getenv(crashHelperEnv) != "" {
		t.Skip("inside helper process")
	}
	f := crashFlow(t)
	want := singleProcessFront(t, f, crashMaxPoints)
	prefix := filepath.Join(t.TempDir(), "ck")
	spawnAndKill(t, crashExploreFlag, prefix, 20*time.Millisecond)
	spawnAndKill(t, crashExploreFlag, prefix, 20*time.Millisecond)
	res, err := RunExplore(context.Background(), f, Options{
		Shards: 2, Index: All, Checkpoint: prefix, Resume: true,
		Every: time.Millisecond, MaxPoints: crashMaxPoints,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Front, want) {
		t.Fatal("front after repeated kills differs from single-process")
	}
}

// TestCrashResumeCampaign is the campaign-side crash gate: SIGKILL a
// campaign shard mid-flight, resume, and require the merged report to be
// bit-identical to the single-process Execute+Report.
func TestCrashResumeCampaign(t *testing.T) {
	if os.Getenv(crashHelperEnv) != "" {
		t.Skip("inside helper process")
	}
	c := crashCampaign(t)
	outs, err := c.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := c.Report(outs)
	prefix := filepath.Join(t.TempDir(), "ck")
	ckPath := spawnAndKillOnCheckpoint(t, crashCampaignFlg, prefix)
	st, err := Load(ckPath)
	if err != nil {
		t.Fatalf("checkpoint unreadable after SIGKILL: %v", err)
	}
	if st == nil {
		t.Fatal("no recoverable frame in checkpoint")
	}
	t.Logf("killed with %d/%d sets checkpointed", countRanges(st.Done), st.Window.Len())
	res, err := RunCampaign(context.Background(), c, Options{
		Shards: 2, Index: All, Checkpoint: prefix, Resume: true,
		Every: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("resume after SIGKILL: %v", err)
	}
	if !reflect.DeepEqual(res.Report, want) {
		t.Fatalf("resumed campaign report differs:\n got %+v\nwant %+v", res.Report, want)
	}
}
