package shard

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/ckpt"
	"repro/internal/obs"
	"repro/internal/resil"
)

// Checkpoint frames use the shared crash-safe codec in internal/ckpt
// (magic, version, length, CRC-32, atomic temp+fsync+rename rewrites
// keeping the last few frames). This file owns what a frame's payload
// means for a shard: one State, JSON-encoded and schema-versioned. A
// payload whose JSON or schema does not check out is discarded exactly
// like a torn or bit-flipped frame — a checkpoint is survived, never
// trusted.
const (
	headerSize = ckpt.HeaderSize
	keepFrames = ckpt.DefaultKeep
	// StateSchema versions the JSON payload; a payload with a different
	// schema is discarded like any other corrupt frame.
	StateSchema = 1
)

// Range is a half-open [Lo, Hi) interval of global work indices.
type Range struct {
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
}

// Len reports the number of indices the range covers.
func (r Range) Len() int64 {
	if r.Hi <= r.Lo {
		return 0
	}
	return r.Hi - r.Lo
}

// State is one checkpoint frame payload: which slice of which workload
// this shard owns, what is already done, and the partial result so far.
// The identity fields (Kind, Fingerprint, Shards, Shard, Total) guard
// resume: a checkpoint from a different chip, workload or partitioning is
// refused loudly instead of merged silently.
type State struct {
	Schema      int    `json:"schema"`
	Kind        string `json:"kind"` // "explore" or "campaign"
	Fingerprint uint64 `json:"fingerprint"`
	Shards      int    `json:"shards"`
	Shard       int    `json:"shard"`
	Total       int64  `json:"total"`
	Window      Range  `json:"window"`
	Seq         uint64 `json:"seq"`
	// Done lists the completed global indices of this shard's window,
	// coalesced into sorted, disjoint ranges.
	Done []Range `json:"done,omitempty"`
	// Front is the canonical partial Pareto front over the completed
	// points (Kind "explore").
	Front []FrontPoint `json:"front,omitempty"`
	// Records are the completed fault-set run records (Kind "campaign").
	Records []resil.RunRecord `json:"records,omitempty"`
}

// AppendFrame encodes one state as a frame and appends it to buf.
func AppendFrame(buf []byte, s *State) ([]byte, error) {
	payload, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("shard: encoding checkpoint frame: %w", err)
	}
	return ckpt.AppendFrame(buf, payload), nil
}

// decodeState accepts a frame payload iff it is a current-schema State.
func decodeState(payload []byte) *State {
	var st State
	if err := json.Unmarshal(payload, &st); err != nil {
		return nil
	}
	if st.Schema != StateSchema {
		return nil
	}
	return &st
}

// DecodeFrames scans data for checkpoint frames and returns the newest
// one that decodes cleanly, plus how many frames were good and how many
// byte regions had to be discarded (torn tails, bit flips, unknown
// schemas, garbage between frames). It never fails: corrupt input just
// yields a nil state.
func DecodeFrames(data []byte) (last *State, good, discarded int) {
	good, discarded = ckpt.DecodeFrames(data, func(payload []byte) bool {
		st := decodeState(payload)
		if st == nil {
			return false
		}
		last = st
		return true
	})
	return last, good, discarded
}

// Load reads the checkpoint at path and returns its newest good frame. A
// missing file returns (nil, nil) — a fresh start. Corruption is counted
// in the shard.frames_discarded metric and survived: whatever prefix of
// good frames exists decides the state, and a fully corrupt file is a
// fresh start too. The only errors are real I/O failures.
func Load(path string) (*State, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("shard: reading checkpoint: %w", err)
	}
	last, _, discarded := DecodeFrames(data)
	if discarded > 0 {
		obs.C("shard.frames_discarded").Add(int64(discarded))
	}
	return last, nil
}

// writer persists checkpoint frames for one shard, stamping each state
// with the next sequence number before handing it to the shared framed
// writer.
type writer struct {
	path string
	w    *ckpt.Writer
	seq  uint64
}

func (w *writer) framed() *ckpt.Writer {
	if w.w == nil {
		w.w = ckpt.NewWriter(w.path, keepFrames)
	}
	return w.w
}

// seed installs a recovered state as the writer's oldest frame, so the
// pre-crash state stays on disk as the fallback frame of the next save.
func (w *writer) seed(s *State) error {
	payload, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("shard: encoding checkpoint frame: %w", err)
	}
	w.framed().Seed(payload)
	w.seq = s.Seq
	return nil
}

// write stamps the next sequence number and persists the state.
func (w *writer) write(s *State) error {
	w.seq++
	s.Seq = w.seq
	payload, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("shard: encoding checkpoint frame: %w", err)
	}
	if err := w.framed().Write(payload); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	obs.C("shard.checkpoints_written").Inc()
	return nil
}

// CheckpointPath names shard i-of-n's checkpoint file under a prefix.
func CheckpointPath(prefix string, i, n int) string {
	if prefix == "" {
		return ""
	}
	return fmt.Sprintf("%s.shard%d-of-%d.ck", prefix, i, n)
}
