package shard

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/obs"
	"repro/internal/resil"
)

// Checkpoint frame format. A checkpoint file is a sequence of
// self-delimiting frames, newest last:
//
//	offset  size  field
//	0       4     magic "SCK1" (little-endian 0x314B4353)
//	4       2     frame schema version (currently 1)
//	6       4     payload length in bytes
//	10      4     CRC-32 (IEEE) of the payload
//	14      n     payload: one State, JSON-encoded
//
// Every save rewrites the file atomically (temp file + rename) with the
// last keepFrames frames, so a crash at any instant leaves either the old
// file or the new one — never a half-written tail that silently parses.
// The decoder still assumes nothing: a frame whose magic, version, length,
// CRC or JSON does not check out is skipped (with a resync scan for the
// next magic), and the newest frame that does check out wins. A checkpoint
// is therefore survived, never trusted.
const (
	frameMagic   = 0x314B4353 // "SCK1" little-endian
	frameVersion = 1
	headerSize   = 14
	// keepFrames bounds how many historical frames a checkpoint file
	// retains: enough that a latent corruption of the newest frame falls
	// back to recent work, small enough that files stay O(state size).
	keepFrames = 4
	// StateSchema versions the JSON payload; a payload with a different
	// schema is discarded like any other corrupt frame.
	StateSchema = 1
)

// Range is a half-open [Lo, Hi) interval of global work indices.
type Range struct {
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
}

// Len reports the number of indices the range covers.
func (r Range) Len() int64 {
	if r.Hi <= r.Lo {
		return 0
	}
	return r.Hi - r.Lo
}

// State is one checkpoint frame payload: which slice of which workload
// this shard owns, what is already done, and the partial result so far.
// The identity fields (Kind, Fingerprint, Shards, Shard, Total) guard
// resume: a checkpoint from a different chip, workload or partitioning is
// refused loudly instead of merged silently.
type State struct {
	Schema      int    `json:"schema"`
	Kind        string `json:"kind"` // "explore" or "campaign"
	Fingerprint uint64 `json:"fingerprint"`
	Shards      int    `json:"shards"`
	Shard       int    `json:"shard"`
	Total       int64  `json:"total"`
	Window      Range  `json:"window"`
	Seq         uint64 `json:"seq"`
	// Done lists the completed global indices of this shard's window,
	// coalesced into sorted, disjoint ranges.
	Done []Range `json:"done,omitempty"`
	// Front is the canonical partial Pareto front over the completed
	// points (Kind "explore").
	Front []FrontPoint `json:"front,omitempty"`
	// Records are the completed fault-set run records (Kind "campaign").
	Records []resil.RunRecord `json:"records,omitempty"`
}

// AppendFrame encodes one state as a frame and appends it to buf.
func AppendFrame(buf []byte, s *State) ([]byte, error) {
	payload, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("shard: encoding checkpoint frame: %w", err)
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], frameMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], frameVersion)
	binary.LittleEndian.PutUint32(hdr[6:10], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[10:14], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...), nil
}

// DecodeFrames scans data for checkpoint frames and returns the newest
// one that decodes cleanly, plus how many frames were good and how many
// byte regions had to be discarded (torn tails, bit flips, unknown
// schemas, garbage between frames). It never fails: corrupt input just
// yields a nil state. After a bad frame the scan resyncs on the next
// magic occurrence, so one flipped bit does not take out every frame
// behind it.
func DecodeFrames(data []byte) (last *State, good, discarded int) {
	off := 0
	for off < len(data) {
		s, next, ok := decodeOne(data, off)
		if ok {
			last, good = s, good+1
			off = next
			continue
		}
		discarded++
		off = resync(data, off+1)
	}
	return last, good, discarded
}

// decodeOne tries to decode the frame at off; next is the offset after it.
func decodeOne(data []byte, off int) (s *State, next int, ok bool) {
	if off+headerSize > len(data) {
		return nil, len(data), false
	}
	hdr := data[off : off+headerSize]
	if binary.LittleEndian.Uint32(hdr[0:4]) != frameMagic {
		return nil, 0, false
	}
	if binary.LittleEndian.Uint16(hdr[4:6]) != frameVersion {
		return nil, 0, false
	}
	n := int(binary.LittleEndian.Uint32(hdr[6:10]))
	if n < 0 || off+headerSize+n > len(data) {
		return nil, 0, false
	}
	payload := data[off+headerSize : off+headerSize+n]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[10:14]) {
		return nil, 0, false
	}
	var st State
	if err := json.Unmarshal(payload, &st); err != nil {
		return nil, 0, false
	}
	if st.Schema != StateSchema {
		return nil, 0, false
	}
	return &st, off + headerSize + n, true
}

// resync returns the offset of the next magic occurrence at or after off.
func resync(data []byte, off int) int {
	for ; off+4 <= len(data); off++ {
		if binary.LittleEndian.Uint32(data[off:off+4]) == frameMagic {
			return off
		}
	}
	return len(data)
}

// Load reads the checkpoint at path and returns its newest good frame. A
// missing file returns (nil, nil) — a fresh start. Corruption is counted
// in the shard.frames_discarded metric and survived: whatever prefix of
// good frames exists decides the state, and a fully corrupt file is a
// fresh start too. The only errors are real I/O failures.
func Load(path string) (*State, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("shard: reading checkpoint: %w", err)
	}
	last, _, discarded := DecodeFrames(data)
	if discarded > 0 {
		obs.C("shard.frames_discarded").Add(int64(discarded))
	}
	return last, nil
}

// writer persists checkpoint frames for one shard: it retains the last
// keepFrames encoded frames and rewrites the whole file atomically on
// every write (temp in the same directory, fsync, rename).
type writer struct {
	path    string
	history [][]byte
	seq     uint64
}

// seed installs a recovered state as the writer's oldest frame, so the
// pre-crash state stays on disk as the fallback frame of the next save.
func (w *writer) seed(s *State) error {
	frame, err := AppendFrame(nil, s)
	if err != nil {
		return err
	}
	w.history = append(w.history, frame)
	w.seq = s.Seq
	return nil
}

// write stamps the next sequence number and persists the state.
func (w *writer) write(s *State) error {
	w.seq++
	s.Seq = w.seq
	frame, err := AppendFrame(nil, s)
	if err != nil {
		return err
	}
	w.history = append(w.history, frame)
	if len(w.history) > keepFrames {
		w.history = w.history[len(w.history)-keepFrames:]
	}
	var buf []byte
	for _, f := range w.history {
		buf = append(buf, f...)
	}
	if err := atomicWrite(w.path, buf); err != nil {
		return err
	}
	obs.C("shard.checkpoints_written").Inc()
	return nil
}

// atomicWrite writes data to path via a temp file in the same directory,
// fsyncs it, and renames it into place.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("shard: writing checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("shard: writing checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("shard: syncing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("shard: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("shard: installing checkpoint: %w", err)
	}
	return nil
}

// CheckpointPath names shard i-of-n's checkpoint file under a prefix.
func CheckpointPath(prefix string, i, n int) string {
	if prefix == "" {
		return ""
	}
	return fmt.Sprintf("%s.shard%d-of-%d.ck", prefix, i, n)
}
