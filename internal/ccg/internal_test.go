package ccg

import "testing"

func TestEarliestFree(t *testing.T) {
	r := Reservations{}
	key := ResKey{Core: "X", Edge: 1}
	r.Reserve([]ResKey{key}, 0, 5)
	r.Reserve([]ResKey{key}, 8, 2)
	cases := []struct{ t, dur, want int }{
		{0, 3, 5},  // blocked by [0,5)
		{5, 3, 5},  // fits [5,8)
		{5, 4, 10}, // would overlap [8,10)
		{10, 4, 10},
		{0, 0, 0}, // zero duration never waits
	}
	for _, tc := range cases {
		if got := r.earliestFree([]ResKey{key}, tc.t, tc.dur); got != tc.want {
			t.Errorf("earliestFree(t=%d,dur=%d) = %d, want %d", tc.t, tc.dur, got, tc.want)
		}
	}
}
