package ccg_test

// Unit tests of the buffer-reusing Finder and the incremental graph
// splice: the multi-target search must be bit-identical to dedicated
// single-target searches (including under duplicate sources/targets and
// unreachable targets), results must be independent of whatever graph
// the Finder last ran on, and CloneWithVersion must produce exactly the
// edge list a from-scratch BuildSelection would.

import (
	"reflect"
	"testing"

	"repro/internal/ccg"
	"repro/internal/core"
	"repro/internal/socgen"
)

func genGraph(t *testing.T, p socgen.Params) *ccg.Graph {
	t.Helper()
	ch, err := socgen.Generate(p)
	if err != nil {
		t.Fatalf("socgen: %v", err)
	}
	g, err := ccg.Build(ch)
	if err != nil {
		t.Fatalf("ccg.Build: %v", err)
	}
	return g
}

func samePath(a, b *ccg.PathResult) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Arrival != b.Arrival || len(a.Steps) != len(b.Steps) {
		return false
	}
	for i := range a.Steps {
		sa, sb := a.Steps[i], b.Steps[i]
		if sa.Start != sb.Start || sa.End != sb.End || sa.Edge.ID != sb.Edge.ID {
			return false
		}
	}
	return true
}

// allTargets is every core port plus every PO node — a target set wide
// enough that some entries are typically unreachable from the PIs.
func allTargets(g *ccg.Graph) []int {
	var ts []int
	for i, n := range g.Nodes {
		if n.Core != "" || n.Kind == ccg.ChipPO {
			ts = append(ts, i)
		}
	}
	return ts
}

func TestMultiMatchesSingle(t *testing.T) {
	for _, p := range []socgen.Params{
		{Seed: 11, Cores: 8, Topology: socgen.Chain},
		{Seed: 12, Cores: 9, Topology: socgen.Mesh},
		{Seed: 13, Cores: 10, Topology: socgen.RandomDAG},
		{Seed: 14, Cores: 8, Topology: socgen.Hub},
	} {
		g := genGraph(t, p)
		srcs := g.PINodes()
		targets := allTargets(g)
		fi := ccg.NewFinder()
		multi := fi.ShortestPathMulti(g, srcs, targets, ccg.Reservations{})
		if len(multi) != len(targets) {
			t.Fatalf("%v: got %d results for %d targets", p.Topology, len(multi), len(targets))
		}
		reached := 0
		for i, tgt := range targets {
			single := fi.ShortestPath(g, srcs, tgt, ccg.Reservations{})
			if !samePath(multi[i], single) {
				t.Fatalf("%v: target %s: multi-target path differs from single-target path",
					p.Topology, g.Nodes[tgt].Name())
			}
			if single != nil {
				reached++
			}
		}
		if reached == 0 {
			t.Fatalf("%v: no target reachable; test is vacuous", p.Topology)
		}
	}
}

func TestMultiDuplicateSourcesAndTargets(t *testing.T) {
	g := genGraph(t, socgen.Params{Seed: 21, Cores: 8, Topology: socgen.Mesh})
	srcs := g.PINodes()
	if len(srcs) < 1 {
		t.Fatal("chip has no PIs")
	}
	targets := allTargets(g)

	// Duplicating every source must not change any path: duplicates are
	// seeded once.
	dup := append(append(append([]int{}, srcs...), srcs...), srcs[0])
	fi := ccg.NewFinder()
	want := fi.ShortestPathMulti(g, srcs, targets, ccg.Reservations{})
	got := fi.ShortestPathMulti(g, dup, targets, ccg.Reservations{})
	for i := range targets {
		if !samePath(want[i], got[i]) {
			t.Fatalf("duplicate sources changed the path to %s", g.Nodes[targets[i]].Name())
		}
	}

	// A repeated target fills every one of its result slots identically.
	tdup := []int{targets[0], targets[1], targets[0], targets[0]}
	res := fi.ShortestPathMulti(g, srcs, tdup, ccg.Reservations{})
	if !samePath(res[0], res[2]) || !samePath(res[0], res[3]) {
		t.Fatal("repeated target positions disagree")
	}
	if !samePath(res[0], want[0]) || !samePath(res[1], want[1]) {
		t.Fatal("paths under target duplication differ from the plain search")
	}
}

func TestMultiUnreachableTargets(t *testing.T) {
	g := genGraph(t, socgen.Params{Seed: 31, Cores: 8, Topology: socgen.Chain})
	pos := g.PONodes()
	pis := g.PINodes()
	if len(pos) == 0 || len(pis) == 0 {
		t.Fatal("chip lacks pins")
	}
	// Nothing flows backwards from a PO; every PI target must come back
	// nil, and mixing them with reachable targets must not disturb those.
	fi := ccg.NewFinder()
	mixed := append(append([]int{}, pis...), allTargets(g)...)
	res := fi.ShortestPathMulti(g, pos, mixed, ccg.Reservations{})
	for i := range pis {
		if res[i] != nil {
			t.Fatalf("found a path from a PO back to PI %s", g.Nodes[pis[i]].Name())
		}
	}
	// Forward direction: unreachable entries nil, reachable ones equal to
	// their single-target searches even with the nil entries interleaved.
	fwd := fi.ShortestPathMulti(g, pis, mixed, ccg.Reservations{})
	for i, tgt := range mixed {
		if !samePath(fwd[i], fi.ShortestPath(g, pis, tgt, ccg.Reservations{})) {
			t.Fatalf("mixed reachable/unreachable target %s diverges", g.Nodes[tgt].Name())
		}
	}
}

// TestFinderReuseAcrossGraphs runs one Finder across graphs of different
// sizes in alternation and requires every answer to match a fresh
// Finder's — the epoch-stamped buffers must not leak state between
// queries or graphs.
func TestFinderReuseAcrossGraphs(t *testing.T) {
	big := genGraph(t, socgen.Params{Seed: 41, Cores: 14, Topology: socgen.RandomDAG})
	small := genGraph(t, socgen.Params{Seed: 42, Cores: 4, Topology: socgen.Chain})
	shared := ccg.NewFinder()
	for round := 0; round < 3; round++ {
		for _, g := range []*ccg.Graph{big, small} {
			targets := allTargets(g)
			got := shared.ShortestPathMulti(g, g.PINodes(), targets, ccg.Reservations{})
			want := ccg.NewFinder().ShortestPathMulti(g, g.PINodes(), targets, ccg.Reservations{})
			for i := range targets {
				if !samePath(got[i], want[i]) {
					t.Fatalf("round %d: reused Finder diverges at %s", round, g.Nodes[targets[i]].Name())
				}
			}
		}
	}
}

// TestCloneWithVersionMatchesRebuild splices each core's next version
// into a built graph and requires the exact edge list a from-scratch
// BuildSelection produces — IDs, latencies, resource keys, everything.
func TestCloneWithVersionMatchesRebuild(t *testing.T) {
	ch, err := socgen.Generate(socgen.Params{Seed: 51, Cores: 10, Topology: socgen.Mesh})
	if err != nil {
		t.Fatalf("socgen: %v", err)
	}
	// Prepare grows each core's transparency ladder; without it every
	// core is single-version and the splice has nothing to swap.
	vecs := map[string]int{}
	for i, c := range ch.Cores {
		vecs[c.Name] = 9 + i%13
	}
	if _, err := core.Prepare(ch, &core.Options{VectorOverride: vecs}); err != nil {
		t.Fatalf("prepare: %v", err)
	}
	base := map[string]int{}
	for _, c := range ch.TestableCores() {
		base[c.Name] = c.Selected
	}
	g, err := ccg.BuildSelection(ch, base)
	if err != nil {
		t.Fatalf("BuildSelection: %v", err)
	}
	flips := 0
	for _, c := range ch.TestableCores() {
		if len(c.Versions) < 2 {
			continue
		}
		v := (base[c.Name] + 1) % len(c.Versions)
		clone := g.CloneWithVersion(g.EdgeCount(), c, c.VersionAt(v))
		if clone == nil {
			t.Fatalf("CloneWithVersion(%s) refused a valid splice", c.Name)
		}
		sel := map[string]int{}
		for k, vv := range base {
			sel[k] = vv
		}
		sel[c.Name] = v
		want, err := ccg.BuildSelection(ch, sel)
		if err != nil {
			t.Fatalf("BuildSelection(flip %s): %v", c.Name, err)
		}
		if len(clone.Edges) != len(want.Edges) {
			t.Fatalf("flip %s: %d edges vs %d rebuilt", c.Name, len(clone.Edges), len(want.Edges))
		}
		for i := range clone.Edges {
			if !reflect.DeepEqual(*clone.Edges[i], *want.Edges[i]) {
				t.Fatalf("flip %s: edge %d differs:\nclone: %+v\nfresh: %+v",
					c.Name, i, *clone.Edges[i], *want.Edges[i])
			}
		}
		flips++
	}
	if flips == 0 {
		t.Fatal("no multi-version cores; splice never exercised")
	}
	// An out-of-range pristine cursor must refuse, not corrupt.
	c := ch.TestableCores()[0]
	if g.CloneWithVersion(-1, c, c.Version()) != nil {
		t.Error("negative pristine cursor accepted")
	}
	if g.CloneWithVersion(g.EdgeCount()+1, c, c.Version()) != nil {
		t.Error("past-the-end pristine cursor accepted")
	}
}
