// Package ccg builds the core connectivity graph of Section 5 (Figure 9):
// nodes are chip pins and core ports, edges are chip interconnect wires
// (zero latency), per-core transparency pairs of the selected core version
// (their cost is the transparency latency), and system-level test
// multiplexers added when no path exists. Shortest test paths are found
// with a reservation-aware Dijkstra: reusing a reserved edge waits until
// the reserved cycles have passed, exactly as in Section 5.1.
package ccg

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/rtl"
	"repro/internal/soc"
	"repro/internal/trans"
)

// NodeKind classifies CCG nodes.
type NodeKind int

// CCG node kinds.
const (
	ChipPI NodeKind = iota
	ChipPO
	CoreIn
	CoreOut
)

// Node is one CCG node.
type Node struct {
	Kind NodeKind
	Core string // empty for chip pins
	Port string
}

// Name returns the display name ("NUM" or "CPU.Data").
func (n Node) Name() string {
	if n.Core == "" {
		return n.Port
	}
	return n.Core + "." + n.Port
}

// EdgeKind classifies CCG edges.
type EdgeKind int

// CCG edge kinds.
const (
	Wire    EdgeKind = iota // chip interconnect, zero latency
	Trans                   // transparency pair through a core
	TestMux                 // system-level test multiplexer
)

// ResKey identifies a shared physical resource: a specific RCG edge of a
// specific core. Transparency pairs sharing a resource cannot move data in
// overlapping cycle windows.
type ResKey struct {
	Core string
	Edge int
}

// Edge is one CCG edge.
type Edge struct {
	ID      int
	From    int
	To      int
	Kind    EdgeKind
	Latency int
	Res     []ResKey
}

// Graph is the core connectivity graph.
type Graph struct {
	Chip  *soc.Chip
	Nodes []Node
	Edges []*Edge
	Out   [][]int
	idx   map[string]int
	// transRange records, per testable core, the half-open [lo, hi) edge
	// ID range holding its transparency edges. BuildSelection emits each
	// core's edges contiguously, which is what lets CloneWithVersion
	// splice a single core's version swap without rebuilding the graph.
	transRange map[string][2]int
}

// NodeIndex looks a node up by display name.
func (g *Graph) NodeIndex(name string) (int, bool) {
	i, ok := g.idx[name]
	return i, ok
}

// Build assembles the CCG from the chip using each testable core's
// currently selected transparency version. Memory cores are excluded
// (they are tested by BIST, Section 5).
func Build(ch *soc.Chip) (*Graph, error) {
	return BuildSelection(ch, nil)
}

// versionFor resolves the transparency version the graph should use for a
// core: the explicit selection when one is given, the core's own Selected
// otherwise.
func versionFor(c *soc.Core, sel map[string]int) *trans.Version {
	if sel != nil {
		if idx, ok := sel[c.Name]; ok {
			return c.VersionAt(idx)
		}
	}
	return c.Version()
}

// BuildSelection assembles the CCG using an explicit version index per
// core; cores missing from sel (or all of them, when sel is nil) fall
// back to their currently selected version. The chip is only read, never
// written, so concurrent builds over one chip are safe — this is what
// lets the design-space explorer evaluate version combinations in
// parallel.
func BuildSelection(ch *soc.Chip, sel map[string]int) (*Graph, error) {
	if err := ch.Validate(); err != nil {
		return nil, err
	}
	g := &Graph{Chip: ch, idx: map[string]int{}, transRange: map[string][2]int{}}
	add := func(n Node) int {
		if i, ok := g.idx[n.Name()]; ok {
			return i
		}
		g.idx[n.Name()] = len(g.Nodes)
		g.Nodes = append(g.Nodes, n)
		return len(g.Nodes) - 1
	}
	for _, p := range ch.PIs {
		add(Node{Kind: ChipPI, Port: p.Name})
	}
	for _, p := range ch.POs {
		add(Node{Kind: ChipPO, Port: p.Name})
	}
	for _, c := range ch.TestableCores() {
		for _, p := range c.RTL.Ports {
			k := CoreIn
			if p.Dir == rtl.Out {
				k = CoreOut
			}
			add(Node{Kind: k, Core: c.Name, Port: p.Name})
		}
	}
	addEdge := func(e Edge) *Edge {
		e.ID = len(g.Edges)
		ep := &e
		g.Edges = append(g.Edges, ep)
		return ep
	}
	// Interconnect wires. Nets touching memory cores are dropped from the
	// CCG (the memory is not transparent).
	for _, n := range ch.Nets {
		fromName := n.FromPort
		if n.FromCore != "" {
			if c, ok := ch.CoreByName(n.FromCore); ok && c.Memory {
				continue
			}
			fromName = n.FromCore + "." + n.FromPort
		}
		toName := n.ToPort
		if n.ToCore != "" {
			if c, ok := ch.CoreByName(n.ToCore); ok && c.Memory {
				continue
			}
			toName = n.ToCore + "." + n.ToPort
		}
		from, ok1 := g.idx[fromName]
		to, ok2 := g.idx[toName]
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("ccg: chip %s: net %s references missing node", ch.Name, n)
		}
		addEdge(Edge{From: from, To: to, Kind: Wire})
	}
	// Transparency pairs of each selected version, one contiguous edge ID
	// range per core (recorded for incremental version splicing).
	for _, c := range ch.TestableCores() {
		lo := len(g.Edges)
		appendCoreTrans(g, c, versionFor(c, sel), func(e Edge) { addEdge(e) })
		g.transRange[c.Name] = [2]int{lo, len(g.Edges)}
	}
	g.rebuildOut()
	obs.C("ccg.builds").Inc()
	obs.G("ccg.nodes").Set(int64(len(g.Nodes)))
	obs.G("ccg.edges").Set(int64(len(g.Edges)))
	return g, nil
}

// appendCoreTrans emits the transparency edges of one core's version in
// the canonical order (deduped justification pairs then propagation
// pairs, RCG resource keys sorted). BuildSelection and CloneWithVersion
// share it so a spliced graph is edge-for-edge identical to a fresh
// build of the same selection.
func appendCoreTrans(g *Graph, c *soc.Core, v *trans.Version, addEdge func(Edge)) {
	if v == nil {
		return
	}
	seen := map[[2]string]bool{}
	for _, pairs := range [][]trans.Pair{v.JustPairs(), v.PropPairs()} {
		for _, p := range pairs {
			key := [2]string{p.In, p.Out}
			if seen[key] {
				continue
			}
			seen[key] = true
			from, ok1 := g.idx[c.Name+"."+p.In]
			to, ok2 := g.idx[c.Name+"."+p.Out]
			if !ok1 || !ok2 {
				continue
			}
			var res []ResKey
			var eids []int
			for eid := range p.Edges {
				eids = append(eids, eid)
			}
			sort.Ints(eids)
			for _, eid := range eids {
				res = append(res, ResKey{Core: c.Name, Edge: eid})
			}
			lat := p.Latency
			if lat < 1 {
				lat = 1
			}
			addEdge(Edge{From: from, To: to, Kind: Trans, Latency: lat, Res: res})
		}
	}
}

// CloneWithVersion returns a new graph equal — node for node, edge for
// edge, ID for ID — to what BuildSelection (plus the caller's first
// pristine-edge replays) would produce with core c's transparency version
// replaced by v. Only the first pristine edges of the receiver are
// cloned: edges appended later (test muxes inserted by a scheduler run)
// belong to a particular schedule, not to the selection, and the delta
// evaluator replays them separately. Nodes and the name index are shared
// with the receiver (they are immutable after build and independent of
// the version selection); edges before the spliced core's range are
// shared too, edges after it are copied with shifted IDs.
func (g *Graph) CloneWithVersion(pristine int, c *soc.Core, v *trans.Version) *Graph {
	r, ok := g.transRange[c.Name]
	if !ok || pristine < r[1] || pristine > len(g.Edges) {
		return nil
	}
	lo, hi := r[0], r[1]
	ng := &Graph{
		Chip:       g.Chip,
		Nodes:      g.Nodes,
		idx:        g.idx,
		transRange: make(map[string][2]int, len(g.transRange)),
	}
	ng.Edges = append(make([]*Edge, 0, pristine+8), g.Edges[:lo]...)
	appendCoreTrans(ng, c, v, func(e Edge) {
		e.ID = len(ng.Edges)
		ep := e
		ng.Edges = append(ng.Edges, &ep)
	})
	newHi := len(ng.Edges)
	for _, e := range g.Edges[hi:pristine] {
		ce := *e
		ce.ID = len(ng.Edges)
		ng.Edges = append(ng.Edges, &ce)
	}
	shift := newHi - hi
	for name, rr := range g.transRange {
		switch {
		case name == c.Name:
			ng.transRange[name] = [2]int{lo, newHi}
		case rr[0] >= hi:
			ng.transRange[name] = [2]int{rr[0] + shift, rr[1] + shift}
		default:
			ng.transRange[name] = rr
		}
	}
	ng.rebuildOut()
	obs.C("ccg.clones").Inc()
	return ng
}

func (g *Graph) rebuildOut() {
	g.Out = make([][]int, len(g.Nodes))
	for _, e := range g.Edges {
		g.Out[e.From] = append(g.Out[e.From], e.ID)
	}
}

// AddTestMux inserts a system-level test multiplexer edge (PI -> core
// input, or core output -> PO) and returns it.
func (g *Graph) AddTestMux(from, to int) *Edge {
	e := &Edge{
		ID:   len(g.Edges),
		From: from, To: to,
		Kind:    TestMux,
		Latency: 0,
	}
	g.Edges = append(g.Edges, e)
	g.Out[from] = append(g.Out[from], e.ID)
	return e
}

// EdgeCount returns the number of edges currently in the graph; together
// with TruncateEdges it lets a scheduler snapshot the graph before a
// speculative mutation (test-mux insertion for one core) and roll it back
// when that core turns out to be unschedulable.
func (g *Graph) EdgeCount() int { return len(g.Edges) }

// TruncateEdges drops every edge with ID >= n and rebuilds the adjacency
// lists. Only edges appended after an EdgeCount snapshot (test muxes) are
// ever removed this way; node set and earlier edges are untouched.
func (g *Graph) TruncateEdges(n int) {
	if n < 0 || n >= len(g.Edges) {
		return
	}
	g.Edges = g.Edges[:n]
	g.rebuildOut()
}

// Interval is a half-open busy window [Start, End).
type Interval struct{ Start, End int }

// Reservations tracks busy windows per shared resource.
type Reservations map[ResKey][]Interval

// earliestFree finds the first start >= t such that [start, start+dur)
// avoids every reservation of every resource in res.
func (r Reservations) earliestFree(res []ResKey, t, dur int) int {
	if dur == 0 {
		return t
	}
	start := t
	conflicts := int64(0)
	for changed := true; changed; {
		changed = false
		for _, k := range res {
			for _, iv := range r[k] {
				if start < iv.End && start+dur > iv.Start {
					start = iv.End
					changed = true
					conflicts++
				}
			}
		}
	}
	if conflicts > 0 {
		obs.C("ccg.reservation_conflicts").Add(conflicts)
	}
	return start
}

// Reserve marks [start, start+dur) busy on all resources.
func (r Reservations) Reserve(res []ResKey, start, dur int) {
	if dur == 0 {
		return
	}
	for _, k := range res {
		r[k] = append(r[k], Interval{start, start + dur})
	}
}

// Step is one edge traversal of a found path.
type Step struct {
	Edge  *Edge
	Start int // cycle the edge begins moving data
	End   int // Start + Latency
}

// PathResult is a reservation-aware shortest path.
type PathResult struct {
	Steps   []Step
	Arrival int
}

type pqItem struct {
	node int
	time int
}

// pq orders heap entries by (arrival time, node index). The node
// tie-break matters: it makes the settle order of equal-arrival nodes a
// pure function of their distances rather than of heap layout, which is
// what keeps search results over unmutated graph regions bit-identical
// across an incremental version splice (see Finder).
type pq []pqItem

func (p pq) Len() int { return len(p) }
func (p pq) Less(i, j int) bool {
	if p[i].time != p[j].time {
		return p[i].time < p[j].time
	}
	return p[i].node < p[j].node
}
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// ReservePath books every step of the path.
func (g *Graph) ReservePath(p *PathResult, resv Reservations) {
	for _, s := range p.Steps {
		resv.Reserve(s.Edge.Res, s.Start, s.Edge.Latency)
	}
}

// PINodes returns all chip PI node indices.
func (g *Graph) PINodes() []int {
	var out []int
	for i, n := range g.Nodes {
		if n.Kind == ChipPI {
			out = append(out, i)
		}
	}
	return out
}

// PONodes returns all chip PO node indices.
func (g *Graph) PONodes() []int {
	var out []int
	for i, n := range g.Nodes {
		if n.Kind == ChipPO {
			out = append(out, i)
		}
	}
	return out
}
