package ccg_test

import (
	"testing"

	"repro/internal/ccg"
	"repro/internal/core"
	"repro/internal/systems"
)

func system1Graph(t *testing.T) (*ccg.Graph, *core.Flow) {
	t.Helper()
	f, err := core.Prepare(systems.System1(), &core.Options{
		VectorOverride: map[string]int{"CPU": 100, "PREPROCESSOR": 100, "DISPLAY": 105},
	})
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	g, err := ccg.Build(f.Chip)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g, f
}

func TestBuildFigure9Nodes(t *testing.T) {
	g, _ := system1Graph(t)
	// Figure 9's CCG: chip pins plus the ports of the three logic cores.
	for _, want := range []string{
		"NUM", "Video", "Reset",
		"PREPROCESSOR.NUM", "PREPROCESSOR.DB", "PREPROCESSOR.Address", "PREPROCESSOR.Eoc",
		"CPU.Data", "CPU.AddrLo", "CPU.AddrHi", "CPU.Interrupt",
		"DISPLAY.ALo", "DISPLAY.AHi", "DISPLAY.D", "DISPLAY.PORT1",
		"PO-PORT1",
	} {
		if _, ok := g.NodeIndex(want); !ok {
			t.Errorf("missing CCG node %s", want)
		}
	}
	// Memory cores are excluded.
	if _, ok := g.NodeIndex("RAM.Addr"); ok {
		t.Error("memory core leaked into the CCG")
	}
}

func TestWireAndTransEdges(t *testing.T) {
	g, _ := system1Graph(t)
	kinds := map[ccg.EdgeKind]int{}
	for _, e := range g.Edges {
		kinds[e.Kind]++
	}
	if kinds[ccg.Wire] == 0 {
		t.Error("no interconnect wires")
	}
	if kinds[ccg.Trans] == 0 {
		t.Error("no transparency edges")
	}
	// Every transparency edge costs at least one cycle and carries its
	// resource set.
	for _, e := range g.Edges {
		if e.Kind == ccg.Trans {
			if e.Latency < 1 {
				t.Errorf("trans edge %v has latency %d", e, e.Latency)
			}
			if len(e.Res) == 0 {
				t.Errorf("trans edge from %s has no resources", g.Nodes[e.From].Name())
			}
		}
	}
}

func TestShortestPathNUMToDisplayD(t *testing.T) {
	g, _ := system1Graph(t)
	target, ok := g.NodeIndex("DISPLAY.D")
	if !ok {
		t.Fatal("no DISPLAY.D node")
	}
	p := g.ShortestPath(g.PINodes(), target, ccg.Reservations{})
	if p == nil {
		t.Fatal("no path NUM -> DISPLAY.D")
	}
	// Section 3: through the PREPROCESSOR's NUM->DB transparency, five
	// cycles in Version 1.
	if p.Arrival != 5 {
		t.Errorf("arrival = %d, want 5 (PREPROCESSOR V1 NUM->DB)", p.Arrival)
	}
}

func TestReservationsForceWaiting(t *testing.T) {
	g, _ := system1Graph(t)
	target, _ := g.NodeIndex("DISPLAY.D")
	resv := ccg.Reservations{}
	p1 := g.ShortestPath(g.PINodes(), target, resv)
	if p1 == nil {
		t.Fatal("no path")
	}
	g.ReservePath(p1, resv)
	p2 := g.ShortestPath(g.PINodes(), target, resv)
	if p2 == nil {
		t.Fatal("no second path")
	}
	if p2.Arrival <= p1.Arrival {
		t.Errorf("second use of the shared NUM->DB edge should wait: %d then %d", p1.Arrival, p2.Arrival)
	}
}

func TestAddTestMuxCreatesPath(t *testing.T) {
	g, _ := system1Graph(t)
	// PREPROCESSOR.Address feeds only the RAM: unobservable until a test
	// mux connects it to a PO (Figure 9's system-level mux).
	src, _ := g.NodeIndex("PREPROCESSOR.Address")
	po := g.PONodes()[0]
	if p := g.ShortestPath([]int{src}, po, ccg.Reservations{}); p != nil {
		t.Fatalf("Address unexpectedly observable: %+v", p)
	}
	g.AddTestMux(src, po)
	if p := g.ShortestPath([]int{src}, po, ccg.Reservations{}); p == nil {
		t.Error("test mux did not create an observation path")
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g, _ := system1Graph(t)
	// No path from a PO node anywhere.
	po := g.PONodes()[0]
	pi := g.PINodes()[0]
	if p := g.ShortestPath([]int{po}, pi, ccg.Reservations{}); p != nil {
		t.Error("found impossible path PO -> PI")
	}
}
