package ccg_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/ccg"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/soc"
	"repro/internal/systems"
)

var (
	detOnce  sync.Once
	detChips []*soc.Chip
	detErr   error
)

// detSystems prepares both example systems once (ATPG skipped — the
// determinism property is about graph construction and path finding).
func detSystems(t *testing.T) []*soc.Chip {
	t.Helper()
	detOnce.Do(func() {
		for _, build := range []func() *soc.Chip{systems.System1, systems.System2} {
			ch := build()
			vecs := map[string]int{}
			for i, c := range ch.TestableCores() {
				vecs[c.Name] = 20 + i
			}
			if _, err := core.Prepare(ch, &core.Options{VectorOverride: vecs}); err != nil {
				detErr = err
				return
			}
			detChips = append(detChips, ch)
		}
	})
	if detErr != nil {
		t.Fatal(detErr)
	}
	return detChips
}

// graphSignature renders a CCG and its schedule to one canonical string:
// every node, every edge with latency and reservation keys, and every
// scheduled path step by step.
func graphSignature(ch *soc.Chip, g *ccg.Graph) (string, error) {
	var b []byte
	app := func(format string, args ...interface{}) { b = append(b, fmt.Sprintf(format, args...)...) }
	for i, n := range g.Nodes {
		app("node %d %s k%d\n", i, n.Name(), int(n.Kind))
	}
	for _, e := range g.Edges {
		app("edge %d %s->%s lat=%d k%d res=%v\n",
			e.ID, g.Nodes[e.From].Name(), g.Nodes[e.To].Name(), e.Latency, int(e.Kind), e.Res)
	}
	s, err := sched.Schedule(ch, g)
	if err != nil {
		return "", err
	}
	for _, cs := range s.Cores {
		app("core %s J=%d O=%d tail=%d TAT=%d\n", cs.Core, cs.Period, cs.ObserveLat, cs.Tail, cs.TAT)
		for _, group := range [][]sched.PortSchedule{cs.Inputs, cs.Outputs} {
			for _, ps := range group {
				app("  %s arr=%d mux=%v:", ps.Port, ps.Arrival, ps.AddedMux)
				for _, st := range ps.Path.Steps {
					app(" e%d@%d", st.Edge.ID, st.Start)
				}
				app("\n")
			}
		}
	}
	app("total %d\n", s.TotalTAT)
	return string(b), nil
}

// TestPathFindingDeterministic rebuilds the CCG and the full reservation
// schedule of both example systems 100 times and requires bit-identical
// results every time: map iteration or slice-order nondeterminism in the
// graph build or the Dijkstra tie-breaking would show up here.
func TestPathFindingDeterministic(t *testing.T) {
	for _, ch := range detSystems(t) {
		t.Run(ch.Name, func(t *testing.T) {
			sel := map[string]int{}
			for _, c := range ch.TestableCores() {
				sel[c.Name] = c.Selected
			}
			g0, err := ccg.BuildSelection(ch, sel)
			if err != nil {
				t.Fatal(err)
			}
			want, err := graphSignature(ch, g0)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i < 100; i++ {
				g, err := ccg.BuildSelection(ch, sel)
				if err != nil {
					t.Fatalf("rebuild %d: %v", i, err)
				}
				got, err := graphSignature(ch, g)
				if err != nil {
					t.Fatalf("rebuild %d: %v", i, err)
				}
				if got != want {
					t.Fatalf("rebuild %d produced a different graph/schedule signature", i)
				}
			}
		})
	}
}

// TestTruncateEdgesRollback checks the snapshot/rollback pair used by the
// scheduler for speculative test-mux insertion.
func TestTruncateEdgesRollback(t *testing.T) {
	ch := detSystems(t)[0]
	sel := map[string]int{}
	for _, c := range ch.TestableCores() {
		sel[c.Name] = c.Selected
	}
	g, err := ccg.BuildSelection(ch, sel)
	if err != nil {
		t.Fatal(err)
	}
	n := g.EdgeCount()
	g.TruncateEdges(-1)
	g.TruncateEdges(n)
	if g.EdgeCount() != n {
		t.Fatalf("out-of-range truncation changed edge count to %d", g.EdgeCount())
	}
	g.TruncateEdges(n - 1)
	if g.EdgeCount() != n-1 {
		t.Fatalf("truncation to %d left %d edges", n-1, g.EdgeCount())
	}
}
