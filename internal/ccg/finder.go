package ccg

import (
	"container/heap"
	"sync"

	"repro/internal/obs"
)

// Finder runs reservation-aware Dijkstra searches over a Graph while
// reusing its distance, predecessor and heap buffers across calls — the
// scheduler issues one search per core port, so a chip-level schedule
// performs hundreds of searches over graphs of identical node count, and
// the per-search allocations used to dominate the enumerate loop's
// profile. A Finder is not safe for concurrent use; create one per
// goroutine (sched.Schedule threads one through a whole schedule build).
//
// Determinism contract: searches settle nodes in (arrival, node index)
// order and keep the first predecessor that achieves a node's final
// arrival. Because relaxations out of a node follow adjacency-list order
// and the adjacency lists follow edge insertion order, a search is a pure
// function of (graph, sources, targets, reservations) — and, crucially
// for incremental re-evaluation, the distance/predecessor assignment of
// every node NOT reachable from a mutated region is identical before and
// after the mutation (see DESIGN.md on the delta invalidation model).
type Finder struct {
	dist      []int
	predEdge  []int
	predStart []int
	stamp     []uint32
	epoch     uint32
	h         pq
	// per-query target bookkeeping
	tpos   []int // node -> index into the targets slice, stamped
	tstamp []uint32
}

// NewFinder returns an empty Finder; buffers grow on first use.
func NewFinder() *Finder { return &Finder{} }

const inf = int(^uint(0) >> 1)

// grow sizes the node-indexed buffers for n nodes, preserving epochs.
func (f *Finder) grow(n int) {
	if len(f.dist) >= n {
		return
	}
	f.dist = append(f.dist, make([]int, n-len(f.dist))...)
	f.predEdge = append(f.predEdge, make([]int, n-len(f.predEdge))...)
	f.predStart = append(f.predStart, make([]int, n-len(f.predStart))...)
	f.stamp = append(f.stamp, make([]uint32, n-len(f.stamp))...)
	f.tpos = append(f.tpos, make([]int, n-len(f.tpos))...)
	f.tstamp = append(f.tstamp, make([]uint32, n-len(f.tstamp))...)
}

// begin starts a query epoch: every node's distance reads as inf until
// touched. Epoch 0 is never used so zeroed stamps read as stale.
func (f *Finder) begin(n int) {
	f.grow(n)
	f.epoch++
	if f.epoch == 0 { // wrapped: hard-reset stamps once every 2^32 queries
		for i := range f.stamp {
			f.stamp[i] = 0
			f.tstamp[i] = 0
		}
		f.epoch = 1
	}
	f.h = f.h[:0]
}

func (f *Finder) distAt(n int) int {
	if f.stamp[n] != f.epoch {
		return inf
	}
	return f.dist[n]
}

func (f *Finder) setDist(n, d, pe, ps int) {
	f.stamp[n] = f.epoch
	f.dist[n] = d
	f.predEdge[n] = pe
	f.predStart[n] = ps
}

// ShortestPath finds the earliest-arrival path from any node in sources
// (available from cycle 0) to target, honoring reservations exactly as
// Graph.ShortestPath does. It returns nil when no path exists.
func (f *Finder) ShortestPath(g *Graph, sources []int, target int, resv Reservations) *PathResult {
	var out [1]*PathResult
	f.search(g, sources, []int{target}, resv, out[:])
	return out[0]
}

// ShortestPathMulti runs ONE Dijkstra from the source set and returns the
// earliest-arrival path to every target (nil where unreachable), in
// target order. The search terminates as soon as every reachable target
// has settled instead of paying one full Dijkstra per target — this is
// what turned the scheduler's per-PO probing loop into a single search.
// Repeated targets share one settle; repeated sources are seeded once.
// Each returned path is bit-identical to the one a dedicated
// single-target ShortestPath would find.
func (f *Finder) ShortestPathMulti(g *Graph, sources []int, targets []int, resv Reservations) []*PathResult {
	out := make([]*PathResult, len(targets))
	f.search(g, sources, targets, resv, out)
	return out
}

func (f *Finder) search(g *Graph, sources []int, targets []int, resv Reservations, out []*PathResult) {
	f.begin(len(g.Nodes))
	// Mark targets; duplicates resolve to the first position and are
	// copied across at the end.
	remaining := 0
	for i, t := range targets {
		if f.tstamp[t] != f.epoch {
			f.tstamp[t] = f.epoch
			f.tpos[t] = i
			remaining++
		}
	}
	// Seed the sources. A repeated source is seeded exactly once: the
	// second occurrence already reads distance 0.
	for _, s := range sources {
		if f.distAt(s) > 0 {
			f.setDist(s, 0, -1, 0)
			heap.Push(&f.h, pqItem{s, 0})
		}
	}
	relaxations := int64(0)
	for f.h.Len() > 0 && remaining > 0 {
		it := heap.Pop(&f.h).(pqItem)
		if it.time > f.dist[it.node] || f.stamp[it.node] != f.epoch {
			continue // stale heap entry
		}
		if f.tstamp[it.node] == f.epoch && f.tpos[it.node] >= 0 {
			// A target settled: its distance and predecessor chain are
			// final (relaxation is strictly improving, and every ancestor
			// settled earlier).
			f.tpos[it.node] = ^f.tpos[it.node] // mark settled, keep position
			remaining--
			if remaining == 0 {
				break
			}
		}
		for _, eid := range g.Out[it.node] {
			e := g.Edges[eid]
			relaxations++
			start := resv.earliestFree(e.Res, it.time, e.Latency)
			arr := start + e.Latency
			if arr < f.distAt(e.To) {
				f.setDist(e.To, arr, eid, start)
				heap.Push(&f.h, pqItem{e.To, arr})
			}
		}
	}
	obs.C("ccg.relaxations").Add(relaxations)
	obs.C("ccg.searches").Inc()
	for i, t := range targets {
		if f.distAt(t) == inf {
			continue
		}
		if f.tstamp[t] == f.epoch && f.tpos[t] != i && ^f.tpos[t] != i {
			// Duplicate target: reconstructed under its first position.
			first := f.tpos[t]
			if first < 0 {
				first = ^first
			}
			out[i] = out[first]
			continue
		}
		out[i] = f.reconstruct(g, t)
	}
}

// reconstruct walks the predecessor chain from t back to a source.
func (f *Finder) reconstruct(g *Graph, t int) *PathResult {
	var steps []Step
	for at := t; f.predEdge[at] >= 0; {
		e := g.Edges[f.predEdge[at]]
		steps = append(steps, Step{Edge: e, Start: f.predStart[at], End: f.predStart[at] + e.Latency})
		at = e.From
	}
	for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
		steps[i], steps[j] = steps[j], steps[i]
	}
	return &PathResult{Steps: steps, Arrival: f.dist[t]}
}

// finderPool backs the allocation-free convenience wrappers on Graph.
var finderPool = sync.Pool{New: func() interface{} { return NewFinder() }}

// ShortestPath finds the earliest-arrival path from any node in sources
// (available from cycle 0) to target, honoring reservations: a reserved
// edge can only be entered once its busy windows have passed (the paper's
// modified Dijkstra of Section 5.1). It returns nil when no path exists.
// The search runs on a pooled Finder; for many searches over one graph,
// hold an explicit Finder instead.
func (g *Graph) ShortestPath(sources []int, target int, resv Reservations) *PathResult {
	f := finderPool.Get().(*Finder)
	p := f.ShortestPath(g, sources, target, resv)
	finderPool.Put(f)
	return p
}

// ShortestPathMulti is Finder.ShortestPathMulti on a pooled Finder.
func (g *Graph) ShortestPathMulti(sources []int, targets []int, resv Reservations) []*PathResult {
	f := finderPool.Get().(*Finder)
	ps := f.ShortestPathMulti(g, sources, targets, resv)
	finderPool.Put(f)
	return ps
}
