package gate

import (
	"testing"
	"testing/quick"
)

// fullAdder builds a 1-bit full adder: sum = a^b^cin, cout = ab + cin(a^b).
func fullAdder() (*Netlist, [3]int, [2]int) {
	n := &Netlist{Name: "fa"}
	a := n.AddNamed("a", Input)
	b := n.AddNamed("b", Input)
	cin := n.AddNamed("cin", Input)
	axb := n.Add(Xor, a, b)
	sum := n.Add(Xor, axb, cin)
	ab := n.Add(And, a, b)
	caxb := n.Add(And, cin, axb)
	cout := n.Add(Or, ab, caxb)
	n.MarkPO(sum, "sum")
	n.MarkPO(cout, "cout")
	return n, [3]int{a, b, cin}, [2]int{sum, cout}
}

func TestFullAdderTruthTable(t *testing.T) {
	n, in, _ := fullAdder()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := NewSim(n)
	if err != nil {
		t.Fatal(err)
	}
	// All 8 input combinations in parallel lanes.
	var wa, wb, wc uint64
	for p := 0; p < 8; p++ {
		if p&1 != 0 {
			wa |= 1 << uint(p)
		}
		if p&2 != 0 {
			wb |= 1 << uint(p)
		}
		if p&4 != 0 {
			wc |= 1 << uint(p)
		}
	}
	s.SetPI(in[0], wa)
	s.SetPI(in[1], wb)
	s.SetPI(in[2], wc)
	s.Eval()
	for p := 0; p < 8; p++ {
		a, b, c := p&1, (p>>1)&1, (p>>2)&1
		wantSum := uint64((a ^ b ^ c))
		wantCout := uint64((a&b | c&(a^b)))
		if got := (s.PO(0) >> uint(p)) & 1; got != wantSum {
			t.Errorf("pattern %d: sum = %d, want %d", p, got, wantSum)
		}
		if got := (s.PO(1) >> uint(p)) & 1; got != wantCout {
			t.Errorf("pattern %d: cout = %d, want %d", p, got, wantCout)
		}
	}
}

func TestAllGateTypes(t *testing.T) {
	n := &Netlist{Name: "types"}
	a := n.Add(Input)
	b := n.Add(Input)
	sel := n.Add(Input)
	ids := map[string]int{
		"buf":  n.Add(Buf, a),
		"inv":  n.Add(Inv, a),
		"and":  n.Add(And, a, b),
		"or":   n.Add(Or, a, b),
		"nand": n.Add(Nand, a, b),
		"nor":  n.Add(Nor, a, b),
		"xor":  n.Add(Xor, a, b),
		"xnor": n.Add(Xnor, a, b),
		"mux":  n.Add(Mux, a, b, sel),
		"c0":   n.Add(Const0),
		"c1":   n.Add(Const1),
	}
	for name, id := range ids {
		n.MarkPO(id, name)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := NewSim(n)
	if err != nil {
		t.Fatal(err)
	}
	check := func(av, bv, sv uint64) {
		s.SetPI(a, av)
		s.SetPI(b, bv)
		s.SetPI(sel, sv)
		s.Eval()
		want := map[string]uint64{
			"buf": av, "inv": ^av, "and": av & bv, "or": av | bv,
			"nand": ^(av & bv), "nor": ^(av | bv), "xor": av ^ bv,
			"xnor": ^(av ^ bv), "mux": (av &^ sv) | (bv & sv),
			"c0": 0, "c1": ^uint64(0),
		}
		for name, id := range ids {
			if s.Val[id] != want[name] {
				t.Errorf("%s(a=%x,b=%x,s=%x) = %x, want %x", name, av, bv, sv, s.Val[id], want[name])
			}
		}
	}
	check(0xF0F0F0F0F0F0F0F0, 0xFF00FF00FF00FF00, 0xAAAAAAAAAAAAAAAA)
	check(0, ^uint64(0), 0x123456789ABCDEF0)
}

func TestSimPropertyMuxAlgebra(t *testing.T) {
	// Property: mux(a,b,sel) == (a AND NOT sel) OR (b AND sel) for random words.
	n := &Netlist{Name: "muxp"}
	a := n.Add(Input)
	b := n.Add(Input)
	sel := n.Add(Input)
	m := n.Add(Mux, a, b, sel)
	n.MarkPO(m, "m")
	s, _ := NewSim(n)
	f := func(av, bv, sv uint64) bool {
		s.SetPI(a, av)
		s.SetPI(b, bv)
		s.SetPI(sel, sv)
		s.Eval()
		return s.PO(0) == (av&^sv)|(bv&sv)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSequentialShiftRegister(t *testing.T) {
	// 3-stage shift register: in -> d0 -> d1 -> d2 -> out.
	n := &Netlist{Name: "shift"}
	in := n.Add(Input)
	d0 := n.Add(DFF, in)
	d1 := n.Add(DFF, d0)
	d2 := n.Add(DFF, d1)
	n.MarkPO(d2, "out")
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := NewSim(n)
	if err != nil {
		t.Fatal(err)
	}
	seq := []uint64{1, 0, 1, 1, 0, 0, 1}
	var got []uint64
	for _, v := range seq {
		s.SetPI(in, v)
		s.Step()
		got = append(got, s.PO(0)&1)
	}
	// Output lags input by 3 cycles; before that it is 0.
	want := []uint64{0, 0, 1, 0, 1, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cycle %d: out = %d, want %d (got %v)", i, got[i], want[i], got)
		}
	}
}

func TestCombinationalCycleDetected(t *testing.T) {
	n := &Netlist{Name: "cyc"}
	a := n.Add(Input)
	g1 := n.Add(And, a, a) // placeholder fanin, patched below
	g2 := n.Add(Or, g1, a)
	n.Gates[g1].Fanin[1] = g2 // create cycle g1 -> g2 -> g1
	if err := n.Validate(); err == nil {
		t.Fatal("combinational cycle not detected")
	}
}

func TestDFFBreaksCycle(t *testing.T) {
	// A DFF in a loop is legal (sequential feedback).
	n := &Netlist{Name: "seqcyc"}
	a := n.Add(Input)
	d := n.Add(DFF, 0) // patched below
	x := n.Add(Xor, a, d)
	n.Gates[d].Fanin[0] = x
	n.MarkPO(x, "x")
	if err := n.Validate(); err != nil {
		t.Fatalf("sequential feedback rejected: %v", err)
	}
	// It toggles: with a=1 held, x alternates 1,0,1,0...
	s, _ := NewSim(n)
	s.SetPI(a, 1)
	var got []uint64
	for i := 0; i < 4; i++ {
		s.Step()
		got = append(got, s.PO(0)&1)
	}
	// After Step the DFF has captured; PO reflects next Eval... Step does
	// Eval then clock, so PO(0) read after Step is pre-clock value.
	want := []uint64{1, 0, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("toggle sequence = %v, want %v", got, want)
		}
	}
}

func TestFaultListShape(t *testing.T) {
	n, _, _ := fullAdder()
	faults := n.Faults()
	if len(faults) == 0 {
		t.Fatal("no faults generated")
	}
	if len(faults)%2 != 0 {
		t.Errorf("fault list should pair sa0/sa1, got %d", len(faults))
	}
	seen := map[Fault]bool{}
	for _, f := range faults {
		if seen[f] {
			t.Errorf("duplicate fault %v", f)
		}
		seen[f] = true
		if f.Stuck > 1 {
			t.Errorf("bad stuck value in %v", f)
		}
	}
}

func TestInjectedSimStuckAt(t *testing.T) {
	n, in, _ := fullAdder()
	// Stuck-at-0 on input a's stem: with a=1,b=0,cin=0 sum should flip 1->0.
	f := Fault{Line: in[0], Branch: -1, Stuck: 0}
	s, err := NewInjectedSim(n, f, ^uint64(0))
	if err != nil {
		t.Fatal(err)
	}
	s.SetPI(in[0], ^uint64(0))
	s.SetPI(in[1], 0)
	s.SetPI(in[2], 0)
	s.Eval()
	if s.PO(0) != 0 {
		t.Errorf("faulty sum = %x, want 0 (a stuck at 0)", s.PO(0))
	}
	// Same but mask only lane 0: lane 1 stays good.
	s2, _ := NewInjectedSim(n, f, 1)
	s2.SetPI(in[0], ^uint64(0))
	s2.SetPI(in[1], 0)
	s2.SetPI(in[2], 0)
	s2.Eval()
	if got := s2.PO(0) & 1; got != 0 {
		t.Errorf("lane0 faulty sum = %d, want 0", got)
	}
	if got := (s2.PO(0) >> 1) & 1; got != 1 {
		t.Errorf("lane1 good sum = %d, want 1", got)
	}
}

func TestInjectedBranchFault(t *testing.T) {
	// y = a AND b; z = a OR b. Branch fault: AND's view of a stuck at 1.
	n := &Netlist{Name: "br"}
	a := n.Add(Input)
	b := n.Add(Input)
	y := n.Add(And, a, b)
	z := n.Add(Or, a, b)
	n.MarkPO(y, "y")
	n.MarkPO(z, "z")
	f := Fault{Line: y, Branch: 0, Stuck: 1}
	s, err := NewInjectedSim(n, f, ^uint64(0))
	if err != nil {
		t.Fatal(err)
	}
	s.SetPI(a, 0)
	s.SetPI(b, ^uint64(0))
	s.Eval()
	if s.PO(0) != ^uint64(0) {
		t.Errorf("faulty y = %x, want all-ones (branch a@AND stuck at 1)", s.PO(0))
	}
	if s.PO(1) != ^uint64(0) {
		t.Errorf("z = %x, want all-ones (OR sees the true a=0|b=1)", s.PO(1))
	}
}

func TestLevels(t *testing.T) {
	n, _, _ := fullAdder()
	lv, err := n.Levels()
	if err != nil {
		t.Fatal(err)
	}
	// sum = Xor(Xor(a,b),cin) is at level 2.
	if lv[n.POs[0]] != 2 {
		t.Errorf("sum level = %d, want 2", lv[n.POs[0]])
	}
	// cout = Or(And(a,b), And(cin, Xor(a,b))) sits at level 3.
	if lv[n.POs[1]] != 3 {
		t.Errorf("cout level = %d, want 3", lv[n.POs[1]])
	}
}

func TestStatsAndArea(t *testing.T) {
	n, _, _ := fullAdder()
	st := n.Stats()
	if st.PIs != 3 || st.POs != 2 || st.FFs != 0 || st.Gates != 5 {
		t.Errorf("stats = %+v", st)
	}
	area := n.Area()
	if area.Cells() != 5 {
		t.Errorf("area = %d cells, want 5", area.Cells())
	}
}

func TestApplyPatterns(t *testing.T) {
	n, _, _ := fullAdder()
	s, _ := NewSim(n)
	pats := []Pattern{
		{PI: []byte{1, 1, 0}},
		{PI: []byte{1, 1, 1}},
	}
	k, err := s.ApplyPatterns(pats)
	if err != nil || k != 2 {
		t.Fatalf("ApplyPatterns: k=%d err=%v", k, err)
	}
	s.Eval()
	if got := s.PO(1) & 3; got != 3 {
		t.Errorf("cout lanes = %b, want 11", got)
	}
	if got := s.PO(0) & 3; got != 2 {
		t.Errorf("sum lanes = %b, want 10", got)
	}
	if _, err := s.ApplyPatterns([]Pattern{{PI: []byte{1}}}); err == nil {
		t.Error("short pattern accepted")
	}
}
