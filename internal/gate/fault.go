package gate

import "fmt"

// Fault is a single stuck-at fault. Branch < 0 places the fault on the
// output stem of line Line; Branch >= 0 places it on the Branch-th fanin
// connection of gate Line (a fanout-branch fault).
type Fault struct {
	Line   int
	Branch int
	Stuck  byte // 0 or 1
}

func (f Fault) String() string {
	if f.Branch < 0 {
		return fmt.Sprintf("L%d/sa%d", f.Line, f.Stuck)
	}
	return fmt.Sprintf("L%d.in%d/sa%d", f.Line, f.Branch, f.Stuck)
}

// Faults generates the single-stuck-at fault list:
//
//   - a stem fault pair (sa0/sa1) on every live line (any fanout, or
//     driving a PO), and
//   - branch fault pairs on the fanins of gates fed by multi-fanout stems.
//
// Constant lines and dangling lines are excluded (untestable by
// construction). Branch faults on single-fanout stems are equivalent to
// the stem fault and therefore omitted.
func (n *Netlist) Faults() []Fault {
	fo := n.Fanouts()
	poCount := make([]int, len(n.Gates))
	for _, po := range n.POs {
		poCount[po]++
	}
	var out []Fault
	for id, g := range n.Gates {
		if g.Type == Const0 || g.Type == Const1 {
			continue // constant lines are untestable by definition
		}
		nf := len(fo[id]) + poCount[id]
		if nf == 0 {
			continue // dangling line
		}
		out = append(out, Fault{Line: id, Branch: -1, Stuck: 0}, Fault{Line: id, Branch: -1, Stuck: 1})
	}
	// Branch faults where a stem fans out to several sinks.
	for id, g := range n.Gates {
		if g.Type == Input || g.Type == Const0 || g.Type == Const1 {
			continue
		}
		for b, f := range g.Fanin {
			src := n.Gates[f]
			if src.Type == Const0 || src.Type == Const1 {
				continue
			}
			if len(fo[f])+poCount[f] > 1 {
				out = append(out, Fault{Line: id, Branch: b, Stuck: 0}, Fault{Line: id, Branch: b, Stuck: 1})
			}
		}
	}
	return out
}

// FaultSite returns the line whose value the fault corrupts when observed
// at gate inputs: for a stem fault this is Line itself; for a branch fault
// it is the fanin line feeding gate Line.
func (n *Netlist) FaultSite(f Fault) int {
	if f.Branch < 0 {
		return f.Line
	}
	return n.Gates[f.Line].Fanin[f.Branch]
}

// InjectedSim simulates the netlist with one injected fault in selected
// pattern lanes. mask selects the lanes in which the fault is active
// (all-ones injects everywhere).
type InjectedSim struct {
	*Sim
	F    Fault
	Mask uint64
}

// NewInjectedSim wraps a fresh simulator with a fault.
func NewInjectedSim(n *Netlist, f Fault, mask uint64) (*InjectedSim, error) {
	s, err := NewSim(n)
	if err != nil {
		return nil, err
	}
	return &InjectedSim{Sim: s, F: f, Mask: mask}, nil
}

func (s *InjectedSim) force(v uint64) uint64 {
	if s.F.Stuck == 0 {
		return v &^ s.Mask
	}
	return v | s.Mask
}

// Eval propagates values with the fault injected.
func (s *InjectedSim) Eval() {
	if s.F.Branch < 0 {
		// Stem faults on source lines (Input/DFF) must be forced before
		// the combinational pass consumes them.
		g := s.n.Gates[s.F.Line].Type
		if g == Input || g == DFF {
			s.Val[s.F.Line] = s.force(s.Val[s.F.Line])
		}
		// Stem fault on an internal line: force after evaluating it.
		for _, id := range s.order {
			v := s.evalGate(id)
			if id == s.F.Line {
				v = s.force(v)
			}
			s.Val[id] = v
		}
		return
	}
	// Branch fault: the victim gate sees a corrupted fanin value. Evaluate
	// normally except at the victim, where we temporarily patch the fanin.
	for _, id := range s.order {
		if id == s.F.Line {
			s.Val[id] = s.evalVictim()
			continue
		}
		s.Val[id] = s.evalGate(id)
	}
	// The victim may itself be a DFF (handled in Step) or a gate not in
	// order (impossible: all non-source gates are ordered).
}

func (s *InjectedSim) evalVictim() uint64 {
	g := &s.n.Gates[s.F.Line]
	fan := g.Fanin[s.F.Branch]
	saved := s.Val[fan]
	s.Val[fan] = s.force(saved)
	v := s.evalGate(s.F.Line)
	s.Val[fan] = saved
	return v
}

// Step advances one clock with the fault injected.
func (s *InjectedSim) Step() {
	s.Eval()
	dffs := s.n.DFFs()
	next := make([]uint64, len(dffs))
	for i, d := range dffs {
		fan := s.n.Gates[d].Fanin[0]
		v := s.Val[fan]
		if s.F.Branch >= 0 && s.F.Line == d {
			v = s.force(v)
		}
		next[i] = v
	}
	for i, d := range dffs {
		s.Val[d] = next[i]
	}
	if s.F.Branch < 0 {
		g := s.n.Gates[s.F.Line].Type
		if g == DFF {
			s.Val[s.F.Line] = s.force(s.Val[s.F.Line])
		}
	}
}
