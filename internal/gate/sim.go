package gate

import "fmt"

// Sim is a 64-way bit-parallel two-valued logic simulator: bit k of every
// word carries pattern k. State (DFF outputs) persists across Step calls so
// the same simulator serves combinational full-scan evaluation (SetPI +
// Eval) and sequential simulation (Step).
type Sim struct {
	n     *Netlist
	order []int
	Val   []uint64 // current value of every line
}

// NewSim builds a simulator for the netlist.
func NewSim(n *Netlist) (*Sim, error) {
	order, err := n.Order()
	if err != nil {
		return nil, err
	}
	s := &Sim{n: n, order: order, Val: make([]uint64, len(n.Gates))}
	s.initConsts()
	return s, nil
}

func (s *Sim) initConsts() {
	for i, g := range s.n.Gates {
		switch g.Type {
		case Const0:
			s.Val[i] = 0
		case Const1:
			s.Val[i] = ^uint64(0)
		}
	}
}

// Netlist returns the simulated netlist.
func (s *Sim) Netlist() *Netlist { return s.n }

// SetPI assigns the pattern word of one primary input line.
func (s *Sim) SetPI(line int, w uint64) { s.Val[line] = w }

// SetState assigns the pattern word of one DFF output (scan load).
func (s *Sim) SetState(line int, w uint64) { s.Val[line] = w }

// ResetState clears all DFF outputs.
func (s *Sim) ResetState() {
	for _, d := range s.n.DFFs() {
		s.Val[d] = 0
	}
}

// evalGate computes the value of gate g from the current line values.
func (s *Sim) evalGate(id int) uint64 {
	g := &s.n.Gates[id]
	v := s.Val
	switch g.Type {
	case Buf:
		return v[g.Fanin[0]]
	case Inv:
		return ^v[g.Fanin[0]]
	case And:
		return v[g.Fanin[0]] & v[g.Fanin[1]]
	case Or:
		return v[g.Fanin[0]] | v[g.Fanin[1]]
	case Nand:
		return ^(v[g.Fanin[0]] & v[g.Fanin[1]])
	case Nor:
		return ^(v[g.Fanin[0]] | v[g.Fanin[1]])
	case Xor:
		return v[g.Fanin[0]] ^ v[g.Fanin[1]]
	case Xnor:
		return ^(v[g.Fanin[0]] ^ v[g.Fanin[1]])
	case Mux:
		sel := v[g.Fanin[2]]
		return (v[g.Fanin[0]] &^ sel) | (v[g.Fanin[1]] & sel)
	case Const0:
		return 0
	case Const1:
		return ^uint64(0)
	default: // Input, DFF: held values
		return v[id]
	}
}

// Eval propagates current PI and state values through the combinational
// logic.
func (s *Sim) Eval() {
	for _, id := range s.order {
		s.Val[id] = s.evalGate(id)
	}
}

// Step evaluates combinational logic and then clocks every DFF
// (next-state := fanin value), advancing one cycle.
func (s *Sim) Step() {
	s.Eval()
	dffs := s.n.DFFs()
	next := make([]uint64, len(dffs))
	for i, d := range dffs {
		next[i] = s.Val[s.n.Gates[d].Fanin[0]]
	}
	for i, d := range dffs {
		s.Val[d] = next[i]
	}
}

// PO returns the value word of the i-th primary output.
func (s *Sim) PO(i int) uint64 { return s.Val[s.n.POs[i]] }

// POWords returns all primary output words, appending to dst.
func (s *Sim) POWords(dst []uint64) []uint64 {
	for _, po := range s.n.POs {
		dst = append(dst, s.Val[po])
	}
	return dst
}

// Pattern is a single-pattern assignment of PI and state bits used by
// higher layers (ATPG emits these).
type Pattern struct {
	PI    []byte // one value in {0,1} per PI line, index-aligned with PIs()
	State []byte // one value per DFF, index-aligned with DFFs(); nil = keep
}

// Clone deep-copies the pattern.
func (p Pattern) Clone() Pattern {
	q := Pattern{PI: append([]byte(nil), p.PI...)}
	if p.State != nil {
		q.State = append([]byte(nil), p.State...)
	}
	return q
}

// ApplyPatterns loads up to 64 patterns into the simulator lanes, returning
// the number loaded. Missing state vectors leave DFF lanes at zero.
func (s *Sim) ApplyPatterns(pats []Pattern) (int, error) {
	k := len(pats)
	if k > 64 {
		k = 64
	}
	pis := s.n.PIs()
	dffs := s.n.DFFs()
	for _, line := range pis {
		s.Val[line] = 0
	}
	for _, line := range dffs {
		s.Val[line] = 0
	}
	for lane := 0; lane < k; lane++ {
		p := pats[lane]
		if len(p.PI) != len(pis) {
			return 0, fmt.Errorf("gate: pattern has %d PI values, netlist has %d PIs", len(p.PI), len(pis))
		}
		for i, line := range pis {
			if p.PI[i] != 0 {
				s.Val[line] |= 1 << uint(lane)
			}
		}
		if p.State != nil {
			if len(p.State) != len(dffs) {
				return 0, fmt.Errorf("gate: pattern has %d state values, netlist has %d DFFs", len(p.State), len(dffs))
			}
			for i, line := range dffs {
				if p.State[i] != 0 {
					s.Val[line] |= 1 << uint(lane)
				}
			}
		}
	}
	return k, nil
}
