// Package gate provides a gate-level netlist with levelization, 64-way
// bit-parallel logic simulation, and a single-stuck-at fault model. It is
// the substrate beneath ATPG (internal/atpg) and fault simulation
// (internal/fsim), standing in for the commercial gate-level tools used in
// the paper's experiments (Section 6).
package gate

import (
	"fmt"

	"repro/internal/cell"
)

// Type identifies a gate primitive.
type Type int

// Gate primitives. Input gates have no fanin and are driven by test
// patterns (primary inputs). DFF gates hold state; under full scan they are
// treated as pseudo-primary inputs/outputs.
const (
	Input Type = iota
	Const0
	Const1
	Buf
	Inv
	And
	Or
	Nand
	Nor
	Xor
	Xnor
	Mux // fanin[0]=in0, fanin[1]=in1, fanin[2]=sel
	DFF // fanin[0]=d
)

var typeNames = [...]string{
	Input: "IN", Const0: "TIE0", Const1: "TIE1", Buf: "BUF", Inv: "INV",
	And: "AND", Or: "OR", Nand: "NAND", Nor: "NOR", Xor: "XOR",
	Xnor: "XNOR", Mux: "MUX", DFF: "DFF",
}

func (t Type) String() string {
	if t < 0 || int(t) >= len(typeNames) {
		return fmt.Sprintf("Type(%d)", int(t))
	}
	return typeNames[t]
}

// CellKind maps the gate primitive to its library cell for area accounting.
func (t Type) CellKind() (cell.Kind, bool) {
	switch t {
	case Buf:
		return cell.Buf, true
	case Inv:
		return cell.Inv, true
	case And:
		return cell.And2, true
	case Or:
		return cell.Or2, true
	case Nand:
		return cell.Nand2, true
	case Nor:
		return cell.Nor2, true
	case Xor:
		return cell.Xor2, true
	case Xnor:
		return cell.Xnor2, true
	case Mux:
		return cell.Mux2, true
	case DFF:
		return cell.DFF, true
	case Const0:
		return cell.TieLo, true
	case Const1:
		return cell.TieHi, true
	}
	return 0, false // Input pseudo-gates occupy no area
}

// FaninCount returns the required number of fanins for the type.
func (t Type) FaninCount() int {
	switch t {
	case Input, Const0, Const1:
		return 0
	case Buf, Inv, DFF:
		return 1
	case Mux:
		return 3
	default:
		return 2
	}
}

// Gate is one netlist node. Its output line is identified by its index in
// Netlist.Gates.
type Gate struct {
	Type  Type
	Fanin []int
	Name  string // optional diagnostic label
}

// Netlist is a gate-level circuit. Primary inputs are the Input-type gates;
// primary outputs are the lines listed in POs.
type Netlist struct {
	Name    string
	Gates   []Gate
	POs     []int
	PONames []string

	order []int // cached topological order of combinational gates
	pis   []int // cached Input gate ids
	dffs  []int // cached DFF gate ids
}

// Add appends a gate and returns its line id.
func (n *Netlist) Add(t Type, fanin ...int) int {
	n.Gates = append(n.Gates, Gate{Type: t, Fanin: fanin})
	n.invalidate()
	return len(n.Gates) - 1
}

// AddNamed appends a named gate and returns its line id.
func (n *Netlist) AddNamed(name string, t Type, fanin ...int) int {
	n.Gates = append(n.Gates, Gate{Type: t, Fanin: fanin, Name: name})
	n.invalidate()
	return len(n.Gates) - 1
}

// MarkPO declares line id as a primary output called name.
func (n *Netlist) MarkPO(id int, name string) {
	n.POs = append(n.POs, id)
	n.PONames = append(n.PONames, name)
}

func (n *Netlist) invalidate() { n.order, n.pis, n.dffs = nil, nil, nil }

// PIs returns the ids of the Input gates, in creation order.
func (n *Netlist) PIs() []int {
	if n.pis == nil {
		for i, g := range n.Gates {
			if g.Type == Input {
				n.pis = append(n.pis, i)
			}
		}
	}
	return n.pis
}

// DFFs returns the ids of the DFF gates, in creation order.
func (n *Netlist) DFFs() []int {
	if n.dffs == nil {
		for i, g := range n.Gates {
			if g.Type == DFF {
				n.dffs = append(n.dffs, i)
			}
		}
	}
	return n.dffs
}

// Validate checks fanin arities and references.
func (n *Netlist) Validate() error {
	for i, g := range n.Gates {
		if want := g.Type.FaninCount(); len(g.Fanin) != want {
			return fmt.Errorf("gate: %s: gate %d (%s) has %d fanins, want %d", n.Name, i, g.Type, len(g.Fanin), want)
		}
		for _, f := range g.Fanin {
			if f < 0 || f >= len(n.Gates) {
				return fmt.Errorf("gate: %s: gate %d references missing line %d", n.Name, i, f)
			}
		}
	}
	for _, po := range n.POs {
		if po < 0 || po >= len(n.Gates) {
			return fmt.Errorf("gate: %s: PO references missing line %d", n.Name, po)
		}
	}
	if _, err := n.Order(); err != nil {
		return err
	}
	return nil
}

// Order returns a topological order over combinational gates. DFF outputs,
// Input gates and constants are sources; DFFs are not included in the order
// (their next-state is read from their fanin after combinational
// evaluation). An error is returned for combinational cycles.
func (n *Netlist) Order() ([]int, error) {
	if n.order != nil {
		return n.order, nil
	}
	state := make([]byte, len(n.Gates)) // 0 unvisited, 1 visiting, 2 done
	order := make([]int, 0, len(n.Gates))
	// Iterative DFS to tolerate deep netlists.
	type frame struct {
		id   int
		next int
	}
	var stack []frame
	visit := func(root int) error {
		if state[root] == 2 {
			return nil
		}
		stack = append(stack[:0], frame{root, 0})
		state[root] = 1
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			g := n.Gates[f.id]
			if g.Type == Input || g.Type == Const0 || g.Type == Const1 || g.Type == DFF {
				// Sources: no combinational fanin traversal. (A DFF's
				// fanin belongs to the *next* cycle.)
				state[f.id] = 2
				if g.Type != Input && g.Type != DFF && g.Type != Const0 && g.Type != Const1 {
					order = append(order, f.id)
				}
				stack = stack[:len(stack)-1]
				continue
			}
			if f.next < len(g.Fanin) {
				child := g.Fanin[f.next]
				f.next++
				switch state[child] {
				case 0:
					cg := n.Gates[child]
					if cg.Type == Input || cg.Type == Const0 || cg.Type == Const1 || cg.Type == DFF {
						state[child] = 2
						continue
					}
					state[child] = 1
					stack = append(stack, frame{child, 0})
				case 1:
					return fmt.Errorf("gate: %s: combinational cycle through line %d", n.Name, child)
				}
				continue
			}
			state[f.id] = 2
			order = append(order, f.id)
			stack = stack[:len(stack)-1]
		}
		return nil
	}
	for i, g := range n.Gates {
		if g.Type == DFF {
			// Ensure the cone feeding each DFF is ordered too.
			if state[g.Fanin[0]] == 0 {
				if err := visit(g.Fanin[0]); err != nil {
					return nil, err
				}
			}
			continue
		}
		if state[i] == 0 {
			if err := visit(i); err != nil {
				return nil, err
			}
		}
	}
	n.order = order
	return order, nil
}

// Levels returns the combinational level of every line (sources at 0).
func (n *Netlist) Levels() ([]int, error) {
	order, err := n.Order()
	if err != nil {
		return nil, err
	}
	lv := make([]int, len(n.Gates))
	for _, id := range order {
		max := 0
		for _, f := range n.Gates[id].Fanin {
			if lv[f]+1 > max {
				max = lv[f] + 1
			}
		}
		lv[id] = max
	}
	return lv, nil
}

// Fanouts returns, for each line, the list of gates it feeds.
func (n *Netlist) Fanouts() [][]int {
	fo := make([][]int, len(n.Gates))
	for i, g := range n.Gates {
		for _, f := range g.Fanin {
			fo[f] = append(fo[f], i)
		}
	}
	return fo
}

// Area returns the library-cell area of the netlist.
func (n *Netlist) Area() cell.Area {
	var a cell.Area
	for _, g := range n.Gates {
		if k, ok := g.Type.CellKind(); ok {
			a.Add(k, 1)
		}
	}
	return a
}

// Stats summarizes netlist size.
type Stats struct {
	Gates int // combinational gates (excl. Input pseudo-gates and DFFs)
	FFs   int
	PIs   int
	POs   int
}

// Stats returns size statistics.
func (n *Netlist) Stats() Stats {
	s := Stats{PIs: len(n.PIs()), POs: len(n.POs), FFs: len(n.DFFs())}
	for _, g := range n.Gates {
		switch g.Type {
		case Input, DFF:
		default:
			s.Gates++
		}
	}
	return s
}
