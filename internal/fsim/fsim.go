// Package fsim performs single-stuck-at fault simulation on gate-level
// netlists: combinational (full-scan, parallel-pattern serial-fault with
// fault dropping and fanout-cone-limited evaluation) and sequential
// (parallel-fault, time-frame) modes. It supplies the fault coverage and
// test efficiency numbers of the paper's Table 3.
package fsim

import (
	"fmt"
	"sort"

	"repro/internal/gate"
)

// multiSim evaluates a netlist with any number of faults injected, each in
// its own set of pattern lanes (used by the sequential mode).
type multiSim struct {
	n      *gate.Netlist
	order  []int
	val    []uint64
	force0 []uint64 // stem stuck-at-0 masks per line
	force1 []uint64 // stem stuck-at-1 masks per line
	// victimAt[g] lists branch forces seen only by gate g.
	victimAt   [][]branchForce
	victimList []int
	hasVictims bool
}

type branchForce struct {
	branch int
	mask   uint64
	stuck  byte
}

func newMultiSim(n *gate.Netlist) (*multiSim, error) {
	order, err := n.Order()
	if err != nil {
		return nil, err
	}
	s := &multiSim{
		n:        n,
		order:    order,
		val:      make([]uint64, len(n.Gates)),
		force0:   make([]uint64, len(n.Gates)),
		force1:   make([]uint64, len(n.Gates)),
		victimAt: make([][]branchForce, len(n.Gates)),
	}
	for i, g := range n.Gates {
		switch g.Type {
		case gate.Const0:
			s.val[i] = 0
		case gate.Const1:
			s.val[i] = ^uint64(0)
		}
	}
	return s, nil
}

// inject adds fault f active in the lanes of mask.
func (s *multiSim) inject(f gate.Fault, mask uint64) {
	if f.Branch < 0 {
		if f.Stuck == 0 {
			s.force0[f.Line] |= mask
		} else {
			s.force1[f.Line] |= mask
		}
		return
	}
	if len(s.victimAt[f.Line]) == 0 {
		s.victimList = append(s.victimList, f.Line)
	}
	s.victimAt[f.Line] = append(s.victimAt[f.Line], branchForce{f.Branch, mask, f.Stuck})
	s.hasVictims = true
}

func (s *multiSim) forceWord(id int, v uint64) uint64 {
	return (v &^ s.force0[id]) | s.force1[id]
}

func (s *multiSim) evalGate(id int) uint64 {
	g := &s.n.Gates[id]
	var a, b, c uint64
	switch len(g.Fanin) {
	case 3:
		c = s.faninView(id, 2, g.Fanin[2])
		fallthrough
	case 2:
		b = s.faninView(id, 1, g.Fanin[1])
		fallthrough
	case 1:
		a = s.faninView(id, 0, g.Fanin[0])
	}
	switch g.Type {
	case gate.Buf:
		return a
	case gate.Inv:
		return ^a
	case gate.And:
		return a & b
	case gate.Or:
		return a | b
	case gate.Nand:
		return ^(a & b)
	case gate.Nor:
		return ^(a | b)
	case gate.Xor:
		return a ^ b
	case gate.Xnor:
		return ^(a ^ b)
	case gate.Mux:
		return (a &^ c) | (b & c)
	case gate.Const0:
		return 0
	case gate.Const1:
		return ^uint64(0)
	default:
		return s.val[id]
	}
}

// faninView returns the value of a fanin line as seen by gate id,
// including branch-fault corruption.
func (s *multiSim) faninView(id, branch, line int) uint64 {
	v := s.val[line]
	if !s.hasVictims {
		return v
	}
	for _, bf := range s.victimAt[id] {
		if bf.branch != branch {
			continue
		}
		if bf.stuck == 0 {
			v &^= bf.mask
		} else {
			v |= bf.mask
		}
	}
	return v
}

// eval runs one combinational pass with all injections active.
func (s *multiSim) eval() {
	for _, id := range s.order {
		s.val[id] = s.forceWord(id, s.evalGate(id))
	}
}

// forceState applies stem forces to PI and DFF lines.
func (s *multiSim) forceState() {
	for _, pi := range s.n.PIs() {
		s.val[pi] = s.forceWord(pi, s.val[pi])
	}
	for _, d := range s.n.DFFs() {
		s.val[d] = s.forceWord(d, s.val[d])
	}
}

// captureWord computes the next-state word a DFF would latch.
func (s *multiSim) captureWord(d int) uint64 {
	return s.faninView(d, 0, s.n.Gates[d].Fanin[0])
}

// Result summarizes a fault simulation run.
type Result struct {
	Total    int
	Detected int
	// DetectedBy[i] is the index of the first pattern (combinational) or
	// cycle (sequential) that detects fault i, or -1.
	DetectedBy []int
}

// Coverage returns detected/total as a percentage.
func (r *Result) Coverage() float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(r.Detected) / float64(r.Total)
}

// coneSim holds the cone-limited serial-fault evaluator state shared
// across faults within one pattern batch.
type coneSim struct {
	n       *gate.Netlist
	order   []int
	topoPos []int
	fanouts [][]int
	isObs   []bool // POs and DFF data inputs
	good    []uint64
	fv      []uint64
	epoch   []uint32
	curEp   uint32
	cones   map[int][]int // root line -> cone in topological order
}

func newConeSim(n *gate.Netlist) (*coneSim, error) {
	order, err := n.Order()
	if err != nil {
		return nil, err
	}
	cs := &coneSim{
		n:       n,
		order:   order,
		topoPos: make([]int, len(n.Gates)),
		fanouts: n.Fanouts(),
		isObs:   make([]bool, len(n.Gates)),
		fv:      make([]uint64, len(n.Gates)),
		epoch:   make([]uint32, len(n.Gates)),
		cones:   make(map[int][]int),
	}
	for i := range cs.topoPos {
		cs.topoPos[i] = -1
	}
	for pos, id := range order {
		cs.topoPos[id] = pos
	}
	for _, po := range n.POs {
		cs.isObs[po] = true
	}
	for _, d := range n.DFFs() {
		cs.isObs[n.Gates[d].Fanin[0]] = true
	}
	return cs, nil
}

// cone returns the forward cone of root (root first, then topologically
// ordered combinational successors). Propagation stops at DFFs: their
// corrupted data input is already an observation point.
func (cs *coneSim) cone(root int) []int {
	if c, ok := cs.cones[root]; ok {
		return c
	}
	seen := map[int]bool{root: true}
	stack := []int{root}
	var members []int
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		members = append(members, id)
		for _, fo := range cs.fanouts[id] {
			if seen[fo] || cs.n.Gates[fo].Type == gate.DFF {
				continue
			}
			seen[fo] = true
			stack = append(stack, fo)
		}
	}
	// Topological order (root may be a source with pos -1; keep it first).
	rest := members[1:]
	sort.Slice(rest, func(i, j int) bool { return cs.topoPos[rest[i]] < cs.topoPos[rest[j]] })
	cs.cones[root] = members
	return members
}

// value reads the faulty value of a line under the current epoch.
func (cs *coneSim) value(line int) uint64 {
	if cs.epoch[line] == cs.curEp {
		return cs.fv[line]
	}
	return cs.good[line]
}

func (cs *coneSim) set(line int, v uint64) {
	cs.fv[line] = v
	cs.epoch[line] = cs.curEp
}

// evalFaulty evaluates one gate using faulty-aware fanin values.
func (cs *coneSim) evalFaulty(id int) uint64 {
	g := &cs.n.Gates[id]
	var a, b, c uint64
	switch len(g.Fanin) {
	case 3:
		c = cs.value(g.Fanin[2])
		fallthrough
	case 2:
		b = cs.value(g.Fanin[1])
		fallthrough
	case 1:
		a = cs.value(g.Fanin[0])
	}
	switch g.Type {
	case gate.Buf:
		return a
	case gate.Inv:
		return ^a
	case gate.And:
		return a & b
	case gate.Or:
		return a | b
	case gate.Nand:
		return ^(a & b)
	case gate.Nor:
		return ^(a | b)
	case gate.Xor:
		return a ^ b
	case gate.Xnor:
		return ^(a ^ b)
	case gate.Mux:
		return (a &^ c) | (b & c)
	default:
		return cs.good[id]
	}
}

func force(v uint64, stuck byte) uint64 {
	if stuck == 0 {
		return 0
	}
	_ = v
	return ^uint64(0)
}

// simulate evaluates fault f against the current good values, returning
// the lanes in which it is detected.
func (cs *coneSim) simulate(f gate.Fault) uint64 {
	cs.curEp++
	var root int
	var diff uint64
	if f.Branch < 0 {
		root = f.Line
		faulty := force(cs.good[root], f.Stuck)
		if faulty == cs.good[root] {
			return 0 // never excited in any lane? (only when good is constant)
		}
		cs.set(root, faulty)
	} else {
		// Branch fault: the victim gate sees a corrupted fanin.
		root = f.Line
		if cs.n.Gates[root].Type == gate.DFF {
			// Corrupted scan capture, observed directly.
			goodCap := cs.good[cs.n.Gates[root].Fanin[0]]
			return goodCap ^ force(goodCap, f.Stuck)
		}
		g := &cs.n.Gates[root]
		fan := g.Fanin[f.Branch]
		saved := cs.good[fan]
		cs.good[fan] = force(saved, f.Stuck)
		v := cs.evalFaulty(root)
		cs.good[fan] = saved
		if v == cs.good[root] {
			return 0
		}
		cs.set(root, v)
	}
	members := cs.cone(root)
	if cs.isObs[root] {
		diff |= cs.value(root) ^ cs.good[root]
	}
	for _, id := range members[1:] {
		v := cs.evalFaulty(id)
		if v == cs.good[id] {
			continue // no divergence; downstream reads good value anyway
		}
		cs.set(id, v)
		if cs.isObs[id] {
			diff |= v ^ cs.good[id]
		}
	}
	return diff
}

// Combinational fault-simulates full-scan patterns: pattern PI values
// drive the Input lines, pattern State values drive DFF outputs (scan-in),
// and detection is observed on POs and on DFF data inputs (scan capture).
// Patterns run in 64-lane batches; faults are simulated serially with
// dropping, each evaluating only its fanout cone.
func Combinational(n *gate.Netlist, pats []gate.Pattern, faults []gate.Fault) (*Result, error) {
	res := &Result{Total: len(faults), DetectedBy: make([]int, len(faults))}
	for i := range res.DetectedBy {
		res.DetectedBy[i] = -1
	}
	good, err := gate.NewSim(n)
	if err != nil {
		return nil, err
	}
	cs, err := newConeSim(n)
	if err != nil {
		return nil, err
	}
	remaining := make([]int, 0, len(faults))
	for i := range faults {
		remaining = append(remaining, i)
	}
	for base := 0; base < len(pats) && len(remaining) > 0; base += 64 {
		batch := pats[base:]
		if len(batch) > 64 {
			batch = batch[:64]
		}
		k, err := good.ApplyPatterns(batch)
		if err != nil {
			return nil, err
		}
		laneMask := ^uint64(0)
		if k < 64 {
			laneMask = (uint64(1) << uint(k)) - 1
		}
		good.Eval()
		cs.good = good.Val
		cs.curEp++ // invalidate any faulty values from the prior batch
		still := remaining[:0]
		for _, fi := range remaining {
			if diff := cs.simulate(faults[fi]) & laneMask; diff != 0 {
				res.Detected++
				res.DetectedBy[fi] = base + lowestLane(diff)
			} else {
				still = append(still, fi)
			}
		}
		remaining = still
	}
	return res, nil
}

func lowestLane(w uint64) int {
	for i := 0; i < 64; i++ {
		if w&(1<<uint(i)) != 0 {
			return i
		}
	}
	return 0
}

// Stimulus is a sequential input stream: Cycles[c][i] is the value (0/1)
// of the i-th PI line during cycle c.
type Stimulus struct {
	Cycles [][]byte
}

// RandomStimulus builds a deterministic pseudo-random stimulus of the
// given length for the netlist's PIs.
func RandomStimulus(n *gate.Netlist, cycles int, seed uint64) *Stimulus {
	pis := n.PIs()
	st := &Stimulus{Cycles: make([][]byte, cycles)}
	x := seed | 1
	for c := range st.Cycles {
		row := make([]byte, len(pis))
		for i := range row {
			// xorshift64
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			row[i] = byte(x >> 63)
		}
		st.Cycles[c] = row
	}
	return st
}

// Sequential fault-simulates the stimulus from the all-zero reset state,
// observing only primary outputs. Faults are packed 63 per batch (lane 0
// carries the good machine). Within a batch, lanes run to completion.
func Sequential(n *gate.Netlist, stim *Stimulus, faults []gate.Fault) (*Result, error) {
	res := &Result{Total: len(faults), DetectedBy: make([]int, len(faults))}
	for i := range res.DetectedBy {
		res.DetectedBy[i] = -1
	}
	pis := n.PIs()
	for _, row := range stim.Cycles {
		if len(row) != len(pis) {
			return nil, fmt.Errorf("fsim: stimulus row has %d values, netlist has %d PIs", len(row), len(pis))
		}
	}
	for base := 0; base < len(faults); base += 63 {
		batch := faults[base:]
		if len(batch) > 63 {
			batch = batch[:63]
		}
		s, err := newMultiSim(n)
		if err != nil {
			return nil, err
		}
		for lane, f := range batch {
			s.inject(f, 1<<uint(lane+1))
		}
		detected := make([]bool, len(batch))
		for c, row := range stim.Cycles {
			for i, pi := range pis {
				if row[i] != 0 {
					s.val[pi] = ^uint64(0)
				} else {
					s.val[pi] = 0
				}
			}
			s.forceState()
			s.eval()
			for _, po := range n.POs {
				w := s.val[po]
				var goodW uint64
				if w&1 != 0 {
					goodW = ^uint64(0)
				}
				diff := w ^ goodW
				if diff == 0 {
					continue
				}
				for lane := range batch {
					if !detected[lane] && diff&(1<<uint(lane+1)) != 0 {
						detected[lane] = true
						res.Detected++
						res.DetectedBy[base+lane] = c
					}
				}
			}
			// Clock the state forward.
			dffs := n.DFFs()
			next := make([]uint64, len(dffs))
			for i, d := range dffs {
				next[i] = s.captureWord(d)
			}
			for i, d := range dffs {
				s.val[d] = s.forceWord(d, next[i])
			}
		}
	}
	return res, nil
}
