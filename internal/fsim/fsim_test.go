package fsim

import (
	"testing"

	"repro/internal/gate"
)

func xorChain() *gate.Netlist {
	// z = a ^ b ^ c: every fault is detectable.
	n := &gate.Netlist{Name: "xc"}
	a := n.Add(gate.Input)
	b := n.Add(gate.Input)
	c := n.Add(gate.Input)
	x1 := n.Add(gate.Xor, a, b)
	x2 := n.Add(gate.Xor, x1, c)
	n.MarkPO(x2, "z")
	return n
}

func TestCombinationalExhaustiveDetectsAll(t *testing.T) {
	n := xorChain()
	var pats []gate.Pattern
	for v := 0; v < 8; v++ {
		pats = append(pats, gate.Pattern{PI: []byte{byte(v & 1), byte(v >> 1 & 1), byte(v >> 2 & 1)}})
	}
	faults := n.Faults()
	res, err := Combinational(n, pats, faults)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected != res.Total {
		t.Errorf("detected %d/%d with exhaustive patterns", res.Detected, res.Total)
	}
	if res.Coverage() != 100 {
		t.Errorf("coverage = %.1f", res.Coverage())
	}
	for i, by := range res.DetectedBy {
		if by < 0 || by >= len(pats) {
			t.Errorf("fault %d: DetectedBy = %d out of range", i, by)
		}
	}
}

func TestCombinationalNoPatternsDetectsNothing(t *testing.T) {
	n := xorChain()
	res, err := Combinational(n, nil, n.Faults())
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected != 0 {
		t.Errorf("detected %d faults with no patterns", res.Detected)
	}
}

func TestCombinationalScanCapture(t *testing.T) {
	// in -> DFF: faults on the DFF data path are observed via scan capture.
	n := &gate.Netlist{Name: "cap"}
	in := n.Add(gate.Input)
	inv := n.Add(gate.Inv, in)
	d := n.Add(gate.DFF, inv)
	_ = d
	pats := []gate.Pattern{
		{PI: []byte{0}, State: []byte{0}},
		{PI: []byte{1}, State: []byte{1}},
	}
	faults := n.Faults()
	if len(faults) == 0 {
		t.Fatal("no faults on capture path")
	}
	res, err := Combinational(n, pats, faults)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected != res.Total {
		t.Errorf("scan capture missed faults: %d/%d", res.Detected, res.Total)
	}
}

func TestSequentialDetectsShallowFaults(t *testing.T) {
	// in -> inv -> DFF -> PO: faults visible one cycle after excitation.
	n := &gate.Netlist{Name: "seq"}
	in := n.Add(gate.Input)
	inv := n.Add(gate.Inv, in)
	d := n.Add(gate.DFF, inv)
	n.MarkPO(d, "q")
	stim := &Stimulus{Cycles: [][]byte{{0}, {1}, {0}, {1}}}
	res, err := Sequential(n, stim, n.Faults())
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected != res.Total {
		t.Errorf("sequential sim missed faults: %d/%d (by=%v)", res.Detected, res.Total, res.DetectedBy)
	}
}

func TestSequentialDeepStateNeedsCycles(t *testing.T) {
	// 4-stage shift register: stuck faults at the head need >= 4 cycles to
	// reach the PO; a 1-cycle stimulus must detect strictly fewer faults.
	n := &gate.Netlist{Name: "deep"}
	in := n.Add(gate.Input)
	d1 := n.Add(gate.DFF, in)
	d2 := n.Add(gate.DFF, d1)
	d3 := n.Add(gate.DFF, d2)
	d4 := n.Add(gate.DFF, d3)
	n.MarkPO(d4, "q")
	faults := n.Faults()
	short := &Stimulus{Cycles: [][]byte{{1}}}
	long := &Stimulus{Cycles: [][]byte{{1}, {0}, {1}, {0}, {1}, {0}, {1}, {0}}}
	rShort, err := Sequential(n, short, faults)
	if err != nil {
		t.Fatal(err)
	}
	rLong, err := Sequential(n, long, faults)
	if err != nil {
		t.Fatal(err)
	}
	if rShort.Detected >= rLong.Detected {
		t.Errorf("short stimulus detected %d, long %d: want strictly more with depth",
			rShort.Detected, rLong.Detected)
	}
	if rLong.Detected != rLong.Total {
		t.Errorf("long stimulus should cover shift register: %d/%d", rLong.Detected, rLong.Total)
	}
}

func TestSequentialManyFaultBatches(t *testing.T) {
	// More than 63 faults exercises batching. Build a wide XOR tree.
	n := &gate.Netlist{Name: "wide"}
	var ins []int
	for i := 0; i < 32; i++ {
		ins = append(ins, n.Add(gate.Input))
	}
	level := ins
	for len(level) > 1 {
		var next []int
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, n.Add(gate.Xor, level[i], level[i+1]))
		}
		level = next
	}
	n.MarkPO(level[0], "z")
	faults := n.Faults()
	if len(faults) <= 63 {
		t.Fatalf("want > 63 faults, got %d", len(faults))
	}
	stim := RandomStimulus(n, 16, 42)
	res, err := Sequential(n, stim, faults)
	if err != nil {
		t.Fatal(err)
	}
	// XOR trees are fully random-testable; 16 random cycles should catch
	// nearly everything.
	if res.Coverage() < 95 {
		t.Errorf("coverage = %.1f%%, want >= 95%%", res.Coverage())
	}
}

func TestRandomStimulusShapeAndDeterminism(t *testing.T) {
	n := xorChain()
	s1 := RandomStimulus(n, 10, 7)
	s2 := RandomStimulus(n, 10, 7)
	if len(s1.Cycles) != 10 {
		t.Fatalf("cycles = %d", len(s1.Cycles))
	}
	for c := range s1.Cycles {
		if len(s1.Cycles[c]) != 3 {
			t.Fatalf("row width = %d, want 3", len(s1.Cycles[c]))
		}
		for i := range s1.Cycles[c] {
			if s1.Cycles[c][i] != s2.Cycles[c][i] {
				t.Fatal("stimulus not deterministic")
			}
			if s1.Cycles[c][i] > 1 {
				t.Fatal("stimulus values must be 0/1")
			}
		}
	}
}

func TestSequentialStimulusWidthMismatch(t *testing.T) {
	n := xorChain()
	bad := &Stimulus{Cycles: [][]byte{{1}}}
	if _, err := Sequential(n, bad, n.Faults()); err == nil {
		t.Error("mismatched stimulus accepted")
	}
}

func TestBranchFaultLaneIsolation(t *testing.T) {
	// Two faults in one sequential batch must not interfere.
	n := &gate.Netlist{Name: "iso"}
	a := n.Add(gate.Input)
	b := n.Add(gate.Input)
	y := n.Add(gate.And, a, b)
	z := n.Add(gate.Or, a, b)
	n.MarkPO(y, "y")
	n.MarkPO(z, "z")
	faults := []gate.Fault{
		{Line: y, Branch: 0, Stuck: 1},
		{Line: z, Branch: 1, Stuck: 0},
	}
	stim := &Stimulus{Cycles: [][]byte{{0, 1}, {1, 0}, {0, 0}, {1, 1}}}
	res, err := Sequential(n, stim, faults)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected != 2 {
		t.Errorf("detected %d/2 (by=%v)", res.Detected, res.DetectedBy)
	}
	// Fault 0 (AND sees a stuck 1): first excited at cycle 0 (a=0,b=1).
	if res.DetectedBy[0] != 0 {
		t.Errorf("fault 0 detected at cycle %d, want 0", res.DetectedBy[0])
	}
	// Fault 1 (OR sees b stuck 0): first excited at cycle 0 (a=0,b=1).
	if res.DetectedBy[1] != 0 {
		t.Errorf("fault 1 detected at cycle %d, want 0", res.DetectedBy[1])
	}
}
