package ctrl

import (
	"fmt"

	"repro/internal/rtl"
	"repro/internal/soc"
)

// BuildRTL emits the test controller as a synthesizable RTL core: a state
// counter stepping through one state per tested core (plus idle/done), a
// state decoder, and one registered control line per signal. The core can
// be run through internal/synth to cross-check the Area estimate, and
// through internal/rtlsim to watch the control sequence.
//
// Interface:
//
//	TestMode (in, 1)  — 1 starts/continues the test session
//	StepDone (in, 1)  — pulsed by the tester when the current core's
//	                    schedule completes (state advances)
//	State    (out, n) — current FSM state (observable for debug)
//	Ctl      (out, m) — one bit per control signal, asserted in the state
//	                    whose core the signal belongs to
func BuildRTL(ch *soc.Chip, c *Controller) (*rtl.Core, error) {
	cores := ch.TestableCores()
	states := c.States
	sb := bits(states)
	m := len(c.Signals)
	if m == 0 {
		return nil, fmt.Errorf("ctrl: controller has no signals")
	}
	if m > 64 || sb > 16 {
		return nil, fmt.Errorf("ctrl: controller too wide to emit (%d signals, %d state bits)", m, sb)
	}

	b := rtl.NewCore("testctl").
		CtlIn("TestMode", 1).
		CtlIn("StepDone", 1).
		Out("State", sb).
		Out("Ctl", m).
		Reg("STATE", sb).
		RegLd("CTL", m).
		Mux("MST", sb, 2). // hold vs advance
		Unit(rtl.Unit{Name: "incst", Op: rtl.OpInc, Width: sb}).
		Unit(rtl.Unit{Name: "adv", Op: rtl.OpAnd, Width: 1}).
		// Decoder from state to per-signal enables.
		Unit(rtl.Unit{Name: "dec", Op: rtl.OpDecode, Width: sb})

	b.Wire("STATE.q", "incst.in0").
		Wire("STATE.q", "MST.in0").
		Wire("incst.out", "MST.in1").
		Wire("TestMode", "adv.in0").
		Wire("StepDone", "adv.in1").
		Wire("adv.out", "MST.sel").
		Wire("MST.out", "STATE.d").
		Wire("STATE.q", "State").
		Wire("STATE.q", "dec.in0").
		Wire("TestMode", "CTL.ld").
		Wire("CTL.q", "Ctl")

	// Map each signal to the state of its core: state k+1 tests cores[k]
	// (state 0 is idle, the last state is done).
	stateOf := map[string]int{}
	for i, core := range cores {
		stateOf[core.Name] = i + 1
	}
	for i, sig := range c.Signals {
		st, ok := stateOf[sig.Core]
		if !ok {
			st = 0
		}
		b.Wire(fmt.Sprintf("dec.out[%d]", st), fmt.Sprintf("CTL.d[%d]", i))
	}
	return b.Build()
}
