package ctrl_test

import (
	"strings"
	"testing"

	"repro/internal/ccg"
	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/rtlsim"
	"repro/internal/sched"
	"repro/internal/synth"
	"repro/internal/systems"
)

func TestGenerateController(t *testing.T) {
	f, err := core.Prepare(systems.System1(), &core.Options{
		VectorOverride: map[string]int{"CPU": 10, "PREPROCESSOR": 10, "DISPLAY": 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := ccg.Build(f.Chip)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.Schedule(f.Chip, g)
	if err != nil {
		t.Fatal(err)
	}
	c := ctrl.Generate(f.Chip, res)
	// One state per core plus setup/done.
	if c.States != 5 {
		t.Errorf("states = %d, want 5", c.States)
	}
	if c.Area.Cells() == 0 {
		t.Error("controller has no area")
	}
	// One clock gate per scheduled core and one transparency-mode select
	// per core version in use.
	gates, modes := 0, 0
	for _, s := range c.Signals {
		if strings.HasPrefix(s.Name, "gate_clk_") {
			gates++
		}
		if strings.HasPrefix(s.Name, "tmode_") {
			modes++
		}
	}
	if gates != 3 {
		t.Errorf("clock gates = %d, want 3", gates)
	}
	if modes != 3 {
		t.Errorf("transparency mode selects = %d, want 3", modes)
	}
	// Deterministically ordered.
	for i := 1; i < len(c.Signals); i++ {
		if c.Signals[i].Name < c.Signals[i-1].Name {
			t.Error("signals not sorted")
		}
	}
}

func TestBuildRTLController(t *testing.T) {
	f, err := core.Prepare(systems.System1(), &core.Options{
		VectorOverride: map[string]int{"CPU": 10, "PREPROCESSOR": 10, "DISPLAY": 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := ccg.Build(f.Chip)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.Schedule(f.Chip, g)
	if err != nil {
		t.Fatal(err)
	}
	c := ctrl.Generate(f.Chip, res)
	rc, err := ctrl.BuildRTL(f.Chip, c)
	if err != nil {
		t.Fatal(err)
	}
	// The emitted controller synthesizes cleanly.
	sr, err := synth.Synthesize(rc)
	if err != nil {
		t.Fatalf("controller synthesis: %v", err)
	}
	if st := sr.Netlist.Stats(); st.FFs == 0 || st.Gates == 0 {
		t.Errorf("degenerate controller netlist: %+v", st)
	}
	// Drive the FSM: with TestMode=1, StepDone pulses walk the state from
	// idle through one state per core.
	sim, err := rtlsim.New(rc)
	if err != nil {
		t.Fatal(err)
	}
	sim.SetInput("TestMode", 1)
	want := uint64(0)
	for step := 0; step < c.States-1; step++ {
		sim.SetInput("StepDone", 1)
		sim.Step()
		want++
		got := sim.Reg("STATE")
		if got != want {
			t.Fatalf("after %d steps state = %d, want %d", step+1, got, want)
		}
		// Hold the state one cycle so CTL registers the decoded state.
		sim.SetInput("StepDone", 0)
		sim.Step()
		if int(want) >= 1 && int(want) <= len(f.Chip.TestableCores()) {
			ctlW, err := sim.Output("Ctl")
			if err != nil {
				t.Fatal(err)
			}
			if ctlW == 0 {
				t.Errorf("state %d: no control line asserted", want)
			}
		}
	}
	// With StepDone low the state holds.
	sim.SetInput("StepDone", 0)
	cur := sim.Reg("STATE")
	sim.Step()
	if sim.Reg("STATE") != cur {
		t.Error("state advanced without StepDone")
	}
}
