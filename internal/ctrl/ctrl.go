// Package ctrl generates the chip test controller of Section 5.2: a small
// finite-state machine that sequences the per-core tests, drives each
// core's transparency-mode and freeze controls, and gates core clocks so
// data can wait at intermediate cores ("the proposed methodology requires
// that each core can be clocked independently ... provided by a test
// controller which is added to the chip").
package ctrl

import (
	"fmt"
	"sort"

	"repro/internal/cell"
	"repro/internal/sched"
	"repro/internal/soc"
)

// Signal is one control line the FSM drives.
type Signal struct {
	Name   string
	Core   string
	Active string // human-readable activity window
}

// Controller is the generated test controller.
type Controller struct {
	States  int
	Signals []Signal
	Area    cell.Area
}

// Generate sizes the controller from a schedule: one state per tested
// core plus setup/done, a clock-gate per core, and one transparency-mode
// select per distinct transparency path in use.
func Generate(ch *soc.Chip, res *sched.Result) *Controller {
	return GenerateSelection(ch, res, nil)
}

// GenerateSelection sizes the controller for an explicit version index
// per core; cores missing from sel fall back to their currently selected
// version. The chip is only read, so selection-pure evaluations can
// generate controllers concurrently.
func GenerateSelection(ch *soc.Chip, res *sched.Result, sel map[string]int) *Controller {
	c := &Controller{}
	cores := ch.TestableCores()
	c.States = len(cores) + 2
	for _, sc := range res.Cores {
		c.Signals = append(c.Signals, Signal{
			Name:   fmt.Sprintf("gate_clk_%s", sc.Core),
			Core:   sc.Core,
			Active: fmt.Sprintf("period %d cycles while testing %s", sc.Period, sc.Core),
		})
	}
	// Transparency-mode selects: one per core version in use.
	for _, core := range cores {
		v := core.Version()
		if sel != nil {
			if idx, ok := sel[core.Name]; ok {
				v = core.VersionAt(idx)
			}
		}
		if v != nil {
			c.Signals = append(c.Signals, Signal{
				Name:   fmt.Sprintf("tmode_%s", core.Name),
				Core:   core.Name,
				Active: v.Label,
			})
		}
	}
	sort.Slice(c.Signals, func(i, j int) bool { return c.Signals[i].Name < c.Signals[j].Name })
	// FSM area: state register + next-state logic + one AND per gated
	// clock + one driver per mode line.
	stateBits := bits(c.States)
	c.Area.Add(cell.DFF, stateBits)
	c.Area.Add(cell.Nand2, 4*stateBits)
	c.Area.Add(cell.And2, len(cores))
	c.Area.Add(cell.Buf, len(c.Signals))
	return c
}

func bits(n int) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}
