package cell

import "testing"

func TestAreaAccounting(t *testing.T) {
	var a Area
	a.Add(Inv, 3)
	a.Add(DFF, 2)
	a.Add(Mux2, 1)
	if got := a.Cells(); got != 6 {
		t.Errorf("Cells = %d, want 6", got)
	}
	if got := a.Grids(); got != 3*1+2*6+1*3 {
		t.Errorf("Grids = %d, want %d", got, 3+12+3)
	}
	if got := a.Sequential(); got != 2 {
		t.Errorf("Sequential = %d, want 2", got)
	}
	var b Area
	b.Add(Inv, 1)
	a.AddArea(b)
	if got := a.Count(Inv); got != 4 {
		t.Errorf("Count(Inv) = %d, want 4", got)
	}
}

func TestKindProperties(t *testing.T) {
	if !DFF.Sequential() || !SDFF.Sequential() || !BScell.Sequential() {
		t.Error("flip-flops must be sequential")
	}
	if Inv.Sequential() || Mux2.Sequential() {
		t.Error("combinational cells must not be sequential")
	}
	if Mux2.Inputs() != 3 {
		t.Errorf("Mux2.Inputs = %d, want 3", Mux2.Inputs())
	}
	if DFF.Inputs() != 1 {
		t.Errorf("DFF.Inputs = %d, want 1", DFF.Inputs())
	}
	if Inv.String() != "INV" || SDFF.String() != "SDFF" {
		t.Errorf("unexpected names %s %s", Inv, SDFF)
	}
	if Kind(99).Grids() != 0 {
		t.Error("out-of-range kind must have zero area")
	}
}

func TestEmptyAreaString(t *testing.T) {
	var a Area
	if a.String() != "(empty)" {
		t.Errorf("empty area string = %q", a.String())
	}
	a.Add(Nand2, 2)
	if a.String() != "NAND2:2" {
		t.Errorf("area string = %q, want NAND2:2", a.String())
	}
}

func TestKindBoundsAndInputs(t *testing.T) {
	if got := Kind(-1).String(); got != "Kind(-1)" {
		t.Fatalf("out-of-range String = %q", got)
	}
	if Kind(-1).Grids() != 0 || Kind(999).Grids() != 0 {
		t.Fatal("out-of-range Grids must be 0")
	}
	wantIn := map[Kind]int{
		Inv: 1, Buf: 1, DFF: 1,
		Nand2: 2, Nor2: 2, And2: 2, Or2: 2, Xor2: 2, Xnor2: 2, SDFF: 2, BScell: 2,
		Mux2:  3,
		TieLo: 0, TieHi: 0, Kind(999): 0,
	}
	for k, n := range wantIn {
		if k.Inputs() != n {
			t.Fatalf("%v.Inputs() = %d, want %d", k, k.Inputs(), n)
		}
	}
	var a Area
	a.Add(Inv, 3)
	a.Add(Kind(-1), 5) // ignored
	if a.Count(Inv) != 3 || a.Count(Kind(-1)) != 0 || a.Count(Kind(999)) != 0 {
		t.Fatal("Count bounds handling wrong")
	}
}
