// Package cell models a standard-cell library in the style of the 0.8µm
// library the paper's in-house synthesis tool mapped to. Areas are reported
// in "cells", i.e. the number of mapped library cells, which is the unit
// used throughout the paper's tables (Figures 6 and 8, Table 2).
//
// Each Kind also carries an area in abstract grid units so that finer
// comparisons (e.g. a scan flip-flop versus a plain flip-flop) remain
// meaningful, but every public result in this repository counts cells.
package cell

import "fmt"

// Kind identifies a library cell.
type Kind int

// Library cells. The set is deliberately small: the synthesizer in
// internal/synth maps every RTL operator onto these primitives.
const (
	Inv Kind = iota
	Buf
	Nand2
	Nor2
	And2
	Or2
	Xor2
	Xnor2
	Mux2 // 2-to-1 multiplexer, one select
	DFF  // D flip-flop
	SDFF // scan D flip-flop (DFF with integrated scan mux)
	TieLo
	TieHi
	BScell // boundary-scan cell (capture/update latch pair + muxes)
	numKinds
)

var names = [...]string{
	Inv:    "INV",
	Buf:    "BUF",
	Nand2:  "NAND2",
	Nor2:   "NOR2",
	And2:   "AND2",
	Or2:    "OR2",
	Xor2:   "XOR2",
	Xnor2:  "XNOR2",
	Mux2:   "MUX2",
	DFF:    "DFF",
	SDFF:   "SDFF",
	TieLo:  "TIE0",
	TieHi:  "TIE1",
	BScell: "BSCELL",
}

// grid area units per cell, loosely proportional to a 0.8µm library.
var grids = [...]int{
	Inv:    1,
	Buf:    1,
	Nand2:  1,
	Nor2:   1,
	And2:   2,
	Or2:    2,
	Xor2:   3,
	Xnor2:  3,
	Mux2:   3,
	DFF:    6,
	SDFF:   9,
	TieLo:  1,
	TieHi:  1,
	BScell: 14,
}

// String returns the library name of the cell kind.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(names) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return names[k]
}

// Grids returns the abstract grid area of one instance of k.
func (k Kind) Grids() int {
	if k < 0 || int(k) >= len(grids) {
		return 0
	}
	return grids[k]
}

// Inputs returns the number of data inputs of the cell kind.
func (k Kind) Inputs() int {
	switch k {
	case Inv, Buf, DFF:
		return 1
	case Nand2, Nor2, And2, Or2, Xor2, Xnor2, SDFF:
		return 2 // SDFF: d and scan-in (scan-enable is a control pin)
	case Mux2:
		return 3 // in0, in1, sel
	case TieLo, TieHi:
		return 0
	case BScell:
		return 2
	default:
		return 0
	}
}

// Sequential reports whether the cell holds state.
func (k Kind) Sequential() bool {
	return k == DFF || k == SDFF || k == BScell
}

// Area is an accumulating area report.
type Area struct {
	counts [numKinds]int
}

// Add records n instances of kind k.
func (a *Area) Add(k Kind, n int) {
	if k >= 0 && int(k) < len(a.counts) {
		a.counts[k] += n
	}
}

// AddArea merges another area report into a.
func (a *Area) AddArea(b Area) {
	for k := range a.counts {
		a.counts[k] += b.counts[k]
	}
}

// Count returns the number of instances of kind k.
func (a *Area) Count(k Kind) int {
	if k < 0 || int(k) >= len(a.counts) {
		return 0
	}
	return a.counts[k]
}

// Cells returns the total number of library cells, the paper's area unit.
func (a *Area) Cells() int {
	total := 0
	for _, n := range a.counts {
		total += n
	}
	return total
}

// Grids returns the total abstract grid area.
func (a *Area) Grids() int {
	total := 0
	for k, n := range a.counts {
		total += n * Kind(k).Grids()
	}
	return total
}

// Sequential returns the number of sequential cells (flip-flops and
// boundary-scan cells).
func (a *Area) Sequential() int {
	n := 0
	for k, c := range a.counts {
		if Kind(k).Sequential() {
			n += c
		}
	}
	return n
}

// String formats the non-zero entries of the report.
func (a *Area) String() string {
	s := ""
	for k, n := range a.counts {
		if n == 0 {
			continue
		}
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s:%d", Kind(k), n)
	}
	if s == "" {
		return "(empty)"
	}
	return s
}
