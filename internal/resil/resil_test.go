package resil

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/atpg"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/soc"
	"repro/internal/systems"
)

// Prepared flows are cached per test binary: Prepare runs synthesis,
// HSCAN, the version ladder and ATPG for every core.
var flows = map[string]*core.Flow{}

func prepare(t testing.TB, name string, build func() *soc.Chip) *core.Flow {
	t.Helper()
	if f, ok := flows[name]; ok {
		return f
	}
	f, err := core.Prepare(build(), &core.Options{ATPG: &atpg.Options{BacktrackLimit: 30}})
	if err != nil {
		t.Fatalf("Prepare(%s): %v", name, err)
	}
	flows[name] = f
	return f
}

func system1(t testing.TB) *core.Flow { return prepare(t, "system1", systems.System1) }
func system2(t testing.TB) *core.Flow { return prepare(t, "system2", systems.System2) }

// Zero faults: EvaluateDegraded must be bit-identical to Evaluate — the
// degraded path is the same flow, not a parallel approximation.
func TestZeroFaultBitIdentical(t *testing.T) {
	for name, f := range map[string]*core.Flow{"system1": system1(t), "system2": system2(t)} {
		t.Run(name, func(t *testing.T) {
			want, err := f.Evaluate()
			if err != nil {
				t.Fatalf("Evaluate: %v", err)
			}
			got, err := f.EvaluateDegraded()
			if err != nil {
				t.Fatalf("EvaluateDegraded: %v", err)
			}
			if !reflect.DeepEqual(want, got.Evaluation) {
				t.Errorf("degraded evaluation differs from Evaluate:\n  Evaluate:         TAT=%d trans=%d mux=%d ctrl=%d\n  EvaluateDegraded: TAT=%d trans=%d mux=%d ctrl=%d",
					want.TAT, want.TransCells, want.MuxCells, want.CtrlCells,
					got.TAT, got.TransCells, got.MuxCells, got.CtrlCells)
			}
			r := got.Report
			if r.Degraded() || r.Coverage != 1 || len(r.CutNets) != 0 || len(r.Fallbacks) != 0 {
				t.Errorf("zero-fault report not clean: %+v", r)
			}
		})
	}
}

// Cutting any single interconnect net must never error: every run yields a
// partial evaluation whose schedule validates and whose untestable cores
// (if any) are diagnosed with exactly the cut net.
func TestSingleEdgeCutCampaign(t *testing.T) {
	for name, f := range map[string]*core.Flow{"system1": system1(t), "system2": system2(t)} {
		t.Run(name, func(t *testing.T) {
			c := &Campaign{Flow: f, Runs: SingleEdgeCuts(f.Chip)}
			outs, err := c.Execute(context.Background())
			if err != nil {
				t.Fatalf("Execute: %v", err)
			}
			if len(outs) != len(f.Chip.Nets) {
				t.Fatalf("got %d outcomes, want %d", len(outs), len(f.Chip.Nets))
			}
			degraded := 0
			for _, o := range outs {
				cutName := o.Faults[0].(CutEdge).net().String()
				if o.Err != nil {
					t.Errorf("%s: flow error: %v", cutName, o.Err)
					continue
				}
				r := o.Eval.Report
				if err := sched.Validate(o.Eval.Sched); err != nil {
					t.Errorf("%s: partial schedule invalid: %v", cutName, err)
				}
				if len(r.CutNets) != 1 || r.CutNets[0] != cutName {
					t.Errorf("%s: report cut nets %v", cutName, r.CutNets)
				}
				if !r.Degraded() {
					if r.Coverage != 1 {
						t.Errorf("%s: not degraded but coverage %.3f", cutName, r.Coverage)
					}
					continue
				}
				degraded++
				if r.Coverage < 0 || r.Coverage >= 1 {
					t.Errorf("%s: degraded coverage %.3f out of [0,1)", cutName, r.Coverage)
				}
				for _, d := range r.Diags {
					if d.Testable {
						continue
					}
					if d.CutEdge != cutName {
						t.Errorf("%s: core %s diagnosed with cut edge %q, want %q (reason: %s)",
							cutName, d.Core, d.CutEdge, cutName, d.Reason)
					}
				}
			}
			if degraded == 0 {
				t.Error("no single-edge cut degraded the chip; campaign is vacuous")
			}
			t.Logf("%s: %d/%d cuts degrade the chip", name, degraded, len(outs))
		})
	}
}

func TestDisableHSCAN(t *testing.T) {
	f := system1(t)
	ch, err := Inject(f.Chip, DisableHSCAN{Core: "CPU"})
	if err != nil {
		t.Fatalf("Inject: %v", err)
	}
	ff := f.Fork(ch)
	if _, err := ff.Evaluate(); err == nil {
		t.Error("Evaluate on a chip with a disabled core should fail")
	}
	dev, err := ff.EvaluateDegraded()
	if err != nil {
		t.Fatalf("EvaluateDegraded: %v", err)
	}
	r := dev.Report
	if got := r.Untestable(); len(got) != 1 || got[0] != "CPU" {
		t.Fatalf("untestable = %v, want [CPU]", got)
	}
	for _, d := range r.Diags {
		if d.Core == "CPU" && !strings.Contains(d.Reason, "disabled") {
			t.Errorf("CPU diagnosis reason %q does not mention disabled", d.Reason)
		}
	}
	if r.Coverage >= 1 || r.Coverage <= 0 {
		t.Errorf("coverage %.3f, want in (0,1)", r.Coverage)
	}
	if dev.TAT >= mustEval(t, f).TAT {
		t.Errorf("degraded TAT %d not below full TAT %d despite skipping CPU", dev.TAT, mustEval(t, f).TAT)
	}
}

func TestOpaqueAndSlowFaults(t *testing.T) {
	f := system1(t)
	base := mustEval(t, f)
	ch, err := Inject(f.Chip, Opaque{Core: "CPU"}, SlowTransparency{Core: "DISPLAY", Factor: 3})
	if err != nil {
		t.Fatalf("Inject: %v", err)
	}
	dev, err := f.Fork(ch).EvaluateDegraded()
	if err != nil {
		t.Fatalf("EvaluateDegraded: %v", err)
	}
	if err := sched.Validate(dev.Sched); err != nil {
		t.Fatalf("partial schedule invalid: %v", err)
	}
	// The base chip must be untouched by injection.
	if got := mustEval(t, f); got.TAT != base.TAT {
		t.Fatalf("base chip mutated by injection: TAT %d -> %d", base.TAT, got.TAT)
	}
	cpu, _ := f.Chip.CoreByName("CPU")
	if len(cpu.Versions) == 0 {
		t.Fatal("base CPU lost its versions")
	}
}

func TestCampaignDeterminism(t *testing.T) {
	f := system1(t)
	a := RandomSets(f.Chip, 5, 2, 42)
	b := RandomSets(f.Chip, 5, 2, 42)
	if FaultSetString(flatten(a)) != FaultSetString(flatten(b)) {
		t.Errorf("same seed produced different fault sets:\n%v\n%v", a, b)
	}
	c := RandomSets(f.Chip, 5, 2, 43)
	if FaultSetString(flatten(a)) == FaultSetString(flatten(c)) {
		t.Error("different seeds produced identical fault sets")
	}
}

func TestCampaignCancellation(t *testing.T) {
	f := system1(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	outs, err := (&Campaign{Flow: f, Runs: SingleEdgeCuts(f.Chip)}).Execute(ctx)
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if len(outs) != 0 {
		t.Errorf("got %d outcomes after pre-cancelled context, want 0", len(outs))
	}
}

func TestParseFaults(t *testing.T) {
	f := system1(t)
	net := f.Chip.Nets[0]
	spec := "cut:" + strings.ReplaceAll(net.String(), " -> ", "->") +
		", opaque:CPU, slow:DISPLAY:3, noscan:PREPROCESSOR"
	fs, err := ParseFaults(f.Chip, spec)
	if err != nil {
		t.Fatalf("ParseFaults: %v", err)
	}
	if len(fs) != 4 {
		t.Fatalf("got %d faults, want 4", len(fs))
	}
	if c, ok := fs[0].(CutEdge); !ok || c.net() != net {
		t.Errorf("fault 0 = %v, want cut of %s", fs[0], net)
	}
	for _, bad := range []string{
		"cut:NOPE->ALSO.NOPE", // unknown net
		"opaque:GHOST",        // unknown core
		"slow:CPU:1",          // factor below 2
		"teleport:CPU",        // unknown kind
		"cut",                 // missing argument
	} {
		if _, err := ParseFaults(f.Chip, bad); err == nil {
			t.Errorf("ParseFaults(%q) succeeded, want error", bad)
		}
	}
}

func flatten(sets [][]Fault) []Fault {
	var out []Fault
	for _, s := range sets {
		out = append(out, s...)
	}
	return out
}

func mustEval(t testing.TB, f *core.Flow) *core.Evaluation {
	t.Helper()
	e, err := f.Evaluate()
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	return e
}

// TestSeededCampaign25 is the CI fault-injection smoke: 25 seeded
// single-fault draws from System 1's catalog must all complete with zero
// flow errors and a valid partial report whose schedule validates.
func TestSeededCampaign25(t *testing.T) {
	f := system1(t)
	c := &Campaign{Flow: f, Runs: RandomSets(f.Chip, 25, 1, 25)}
	outs, err := c.Execute(context.Background())
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(outs) != 25 {
		t.Fatalf("got %d outcomes, want 25", len(outs))
	}
	for _, o := range outs {
		name := FaultSetString(o.Faults)
		if o.Err != nil {
			t.Errorf("%s: flow error: %v", name, o.Err)
			continue
		}
		r := o.Eval.Report
		if r == nil {
			t.Errorf("%s: no degradation report", name)
			continue
		}
		if err := sched.Validate(o.Eval.Sched); err != nil {
			t.Errorf("%s: partial schedule invalid: %v", name, err)
		}
		if r.Coverage < 0 || r.Coverage > 1 {
			t.Errorf("%s: coverage %.3f out of [0,1]", name, r.Coverage)
		}
		if r.Degraded() {
			if len(r.Untestable()) == 0 && r.Coverage == 1 {
				t.Errorf("%s: degraded report with full coverage and no untestable cores", name)
			}
		} else if len(r.Untestable()) != 0 || r.Coverage != 1 {
			t.Errorf("%s: clean report with untestable=%d coverage=%.3f",
				name, len(r.Untestable()), r.Coverage)
		}
	}
}

// TestCampaignReportMergeAndMissing: a report split across partial
// executions merges bit-identically to the full run's report, and a
// partial report's Missing lists exactly the unrun sets.
func TestCampaignReportMergeAndMissing(t *testing.T) {
	f := system1(t)
	const seed = 11
	c := &Campaign{Flow: f, Runs: RandomSets(f.Chip, 5, 2, seed), Seed: seed}
	outs, err := c.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	full := c.Report(outs)
	if full.Total != 5 || len(full.Records) != 5 || len(full.Missing()) != 0 {
		t.Fatalf("full report malformed: total=%d records=%d missing=%v",
			full.Total, len(full.Records), full.Missing())
	}
	if full.Chip != f.Chip.Name || full.Seed != seed {
		t.Fatalf("attribution lost: chip=%q seed=%d", full.Chip, full.Seed)
	}

	// Partial report: only sets 0 and 3 ran.
	part := c.Report([]Outcome{outs[0], outs[3]})
	if got, want := part.Missing(), []int{1, 2, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Missing = %v, want %v", got, want)
	}

	// Any split of the outcomes merges back to the full report — order of
	// parts and of outcomes inside a part must not matter.
	splits := [][2][]Outcome{
		{{outs[0], outs[1]}, {outs[2], outs[3], outs[4]}},
		{{outs[4], outs[2]}, {outs[1], outs[3], outs[0]}},
		{{}, outs},
	}
	for i, s := range splits {
		got := MergeReports(c.Report(s[0]), c.Report(s[1]))
		if !reflect.DeepEqual(got, full) {
			t.Fatalf("split %d: merged report differs:\n got %+v\nwant %+v", i, got, full)
		}
		if got.Format() != full.Format() {
			t.Fatalf("split %d: formatted output differs", i)
		}
	}

	// Duplicated records collapse; merging with the full report is a no-op.
	if got := MergeReports(full, part, full); !reflect.DeepEqual(got, full) {
		t.Fatalf("idempotent merge failed: %+v", got)
	}
}

// TestCampaignIndicesRestrictExecution: Indices runs exactly the chosen
// sets, preserves global index attribution, and skips out-of-range ones.
func TestCampaignIndicesRestrictExecution(t *testing.T) {
	f := system1(t)
	c := &Campaign{Flow: f, Runs: RandomSets(f.Chip, 4, 2, 3), Seed: 3}
	sub := *c
	sub.Indices = []int{3, 1, 99, -1}
	outs, err := sub.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 || outs[0].Index != 3 || outs[1].Index != 1 {
		t.Fatalf("indices run: %+v", outs)
	}
	// The records must equal the same sets from an unrestricted run.
	all, err := c.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []RunRecord{c.Record(all[3]), c.Record(all[1])} {
		if got := c.Record(outs[i]); !reflect.DeepEqual(got, want) {
			t.Fatalf("record %d differs:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// TestCampaignOnOutcomeHook: the hook fires once per completed run, in
// execution order, with the outcome Execute appends.
func TestCampaignOnOutcomeHook(t *testing.T) {
	f := system1(t)
	c := &Campaign{Flow: f, Runs: RandomSets(f.Chip, 3, 1, 5)}
	var hooked []int
	c.OnOutcome = func(o Outcome) { hooked = append(hooked, o.Index) }
	outs, err := c.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 || !reflect.DeepEqual(hooked, []int{0, 1, 2}) {
		t.Fatalf("hook saw %v over %d outcomes", hooked, len(outs))
	}
}
