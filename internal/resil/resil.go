// Package resil is a deterministic fault-injection harness for the SOCET
// flow: it perturbs a copy of a chip model — broken interconnect, opaque
// cores, slow transparency, dead HSCAN chains — and evaluates the damaged
// chip through the degraded flow. Campaigns enumerate or sample fault
// sets reproducibly (seeded), so robustness regressions can run in CI.
package resil

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/soc"
	"repro/internal/trans"
)

// Fault is one deterministic perturbation of a chip model. Apply mutates
// the given chip (always a private clone, see Inject) and errors when the
// fault does not apply — an unknown net or core is a campaign bug, not a
// degradation.
type Fault interface {
	Apply(ch *soc.Chip) error
	String() string
}

// CutEdge removes one interconnect net: the wire between a driver and a
// sink broke. Empty FromCore/ToCore mean chip pins, mirroring soc.Net.
type CutEdge struct {
	FromCore, FromPort string
	ToCore, ToPort     string
}

// Cut builds the CutEdge fault severing the given net.
func Cut(n soc.Net) CutEdge {
	return CutEdge{FromCore: n.FromCore, FromPort: n.FromPort, ToCore: n.ToCore, ToPort: n.ToPort}
}

func (f CutEdge) net() soc.Net {
	return soc.Net{FromCore: f.FromCore, FromPort: f.FromPort, ToCore: f.ToCore, ToPort: f.ToPort}
}

func (f CutEdge) String() string { return "cut(" + f.net().String() + ")" }

func (f CutEdge) Apply(ch *soc.Chip) error {
	want := f.net()
	for i, n := range ch.Nets {
		if n == want {
			ch.Nets = append(ch.Nets[:i:i], ch.Nets[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("resil: %s: no such net on chip %s", f, ch.Name)
}

// Opaque strips a core's transparency version ladder: the core still gets
// tested (its HSCAN survives) but it no longer moves neighbour test data,
// as if its transparency control logic were dead.
type Opaque struct {
	Core string
}

func (f Opaque) String() string { return "opaque(" + f.Core + ")" }

func (f Opaque) Apply(ch *soc.Chip) error {
	c, ok := ch.CoreByName(f.Core)
	if !ok {
		return fmt.Errorf("resil: %s: no such core on chip %s", f, ch.Name)
	}
	c.Versions = nil
	c.Selected = 0
	return nil
}

// SlowTransparency multiplies every transparency-path latency of a core by
// Factor (minimum 2): a marginal transparency path needing extra settle
// cycles. The chip stays fully testable but TAT inflates wherever the
// core's transparency is on a justification or propagation route.
type SlowTransparency struct {
	Core   string
	Factor int
}

func (f SlowTransparency) factor() int {
	if f.Factor < 2 {
		return 2
	}
	return f.Factor
}

func (f SlowTransparency) String() string {
	return fmt.Sprintf("slow(%s x%d)", f.Core, f.factor())
}

func (f SlowTransparency) Apply(ch *soc.Chip) error {
	c, ok := ch.CoreByName(f.Core)
	if !ok {
		return fmt.Errorf("resil: %s: no such core on chip %s", f, ch.Name)
	}
	k := f.factor()
	scaled := make([]*trans.Version, len(c.Versions))
	for i, v := range c.Versions {
		nv := *v
		nv.Prop = scalePaths(v.Prop, k)
		nv.Just = scalePaths(v.Just, k)
		scaled[i] = &nv
	}
	c.Versions = scaled
	return nil
}

// scalePaths clones a path map with latencies multiplied; edge/freeze sets
// are shared (read-only downstream).
func scalePaths(m map[string]*trans.PathUse, k int) map[string]*trans.PathUse {
	out := make(map[string]*trans.PathUse, len(m))
	for name, p := range m {
		np := *p
		np.Latency = p.Latency * k
		out[name] = &np
	}
	return out
}

// DisableHSCAN marks a core's scan infrastructure dead: the core cannot be
// scheduled as a test target at all. Neighbour transparency still works
// (the transparency mode of Figure 3 does not ride the scan chain).
type DisableHSCAN struct {
	Core string
}

func (f DisableHSCAN) String() string { return "noscan(" + f.Core + ")" }

func (f DisableHSCAN) Apply(ch *soc.Chip) error {
	c, ok := ch.CoreByName(f.Core)
	if !ok {
		return fmt.Errorf("resil: %s: no such core on chip %s", f, ch.Name)
	}
	c.Disabled = "HSCAN chain broken (injected " + f.String() + ")"
	return nil
}

// CloneChip deep-copies the chip's mutable surface: cores (struct and
// version-slice headers), pins and nets. RTL, scan results and version
// objects are shared — faults that rewrite versions clone their own.
func CloneChip(ch *soc.Chip) *soc.Chip {
	nc := &soc.Chip{
		Name: ch.Name,
		PIs:  append([]soc.Pin(nil), ch.PIs...),
		POs:  append([]soc.Pin(nil), ch.POs...),
		Nets: append([]soc.Net(nil), ch.Nets...),
	}
	for _, c := range ch.Cores {
		cc := *c
		cc.Versions = append([]*trans.Version(nil), c.Versions...)
		nc.Cores = append(nc.Cores, &cc)
	}
	return nc
}

// Inject clones the chip and applies the faults in order. The base chip is
// never modified.
func Inject(base *soc.Chip, faults ...Fault) (*soc.Chip, error) {
	ch := CloneChip(base)
	for _, f := range faults {
		if err := f.Apply(ch); err != nil {
			return nil, err
		}
		obs.C("resil.faults_injected").Inc()
	}
	return ch, nil
}

// FaultSetString renders a fault set for reports.
func FaultSetString(fs []Fault) string {
	if len(fs) == 0 {
		return "(none)"
	}
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.String()
	}
	return strings.Join(parts, "+")
}

// ParseFaults parses a comma-separated fault spec against a chip:
//
//	cut:FROM->TO     sever a net (endpoints "CORE.PORT" or a chip pin name)
//	opaque:CORE      strip the core's transparency versions
//	slow:CORE[:K]    multiply the core's transparency latencies by K (>=2)
//	noscan:CORE      break the core's HSCAN chain
//
// Core and net names are validated against ch, cumulatively: an accepted
// spec is guaranteed to Inject without error (a second cut of the same
// net, say, is rejected here rather than at injection time).
func ParseFaults(ch *soc.Chip, spec string) ([]Fault, error) {
	var out []Fault
	probe := CloneChip(ch)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.SplitN(part, ":", 3)
		var f Fault
		switch fields[0] {
		case "cut":
			if len(fields) < 2 {
				return nil, fmt.Errorf("resil: fault %q: want cut:FROM->TO", part)
			}
			from, to, ok := strings.Cut(fields[1], "->")
			if !ok {
				return nil, fmt.Errorf("resil: fault %q: want cut:FROM->TO", part)
			}
			fc, fp := parseEndpoint(from)
			tc, tp := parseEndpoint(to)
			f = CutEdge{FromCore: fc, FromPort: fp, ToCore: tc, ToPort: tp}
		case "opaque":
			if len(fields) != 2 {
				return nil, fmt.Errorf("resil: fault %q: want opaque:CORE", part)
			}
			f = Opaque{Core: fields[1]}
		case "slow":
			if len(fields) < 2 {
				return nil, fmt.Errorf("resil: fault %q: want slow:CORE[:K]", part)
			}
			k := 2
			if len(fields) == 3 {
				v, err := strconv.Atoi(fields[2])
				if err != nil || v < 2 {
					return nil, fmt.Errorf("resil: fault %q: factor must be an integer >= 2", part)
				}
				k = v
			}
			f = SlowTransparency{Core: fields[1], Factor: k}
		case "noscan":
			if len(fields) != 2 {
				return nil, fmt.Errorf("resil: fault %q: want noscan:CORE", part)
			}
			f = DisableHSCAN{Core: fields[1]}
		default:
			return nil, fmt.Errorf("resil: fault %q: unknown kind %q (want cut, opaque, slow or noscan)", part, fields[0])
		}
		// Validate on the probe clone, never mutating the real chip; the
		// clone accumulates so overlapping faults are caught at parse time.
		if err := f.Apply(probe); err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

func parseEndpoint(s string) (core, port string) {
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, '.'); i >= 0 {
		return s[:i], s[i+1:]
	}
	return "", s
}
