package resil

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/soc"
	"repro/internal/systems"
)

var (
	fuzzChipOnce sync.Once
	fuzzChip     *soc.Chip
)

// fuzzSystem returns a cached System 1 chip; ParseFaults only reads it
// (validation applies faults to a clone).
func fuzzSystem() *soc.Chip {
	fuzzChipOnce.Do(func() { fuzzChip = systems.System1() })
	return fuzzChip
}

// FuzzParseFaults hammers the fault-spec grammar: arbitrary input must
// either be rejected with an error or produce a fault set that parses
// deterministically and injects cleanly into a chip clone. The parser
// must never panic and never return both a fault set and an error.
func FuzzParseFaults(f *testing.F) {
	f.Add("cut:CPU.AddrLo->DISPLAY.ALo")
	f.Add("cut:NUM->PREPROCESSOR.NUM")
	f.Add("opaque:CPU")
	f.Add("slow:DISPLAY")
	f.Add("slow:DISPLAY:3")
	f.Add("noscan:PREPROCESSOR")
	f.Add("cut:CPU.AddrLo->DISPLAY.ALo, opaque:PREPROCESSOR ,slow:CPU:4")
	f.Add("")
	f.Add(" , ,, ")
	f.Add("cut:")
	f.Add("cut:A->")
	f.Add("slow:CPU:-1")
	f.Add("slow:CPU:x")
	f.Add("bogus:CPU")
	f.Add("opaque:NOSUCHCORE")
	f.Add("cut:CPU.AddrLo->DISPLAY.ALo,cut:CPU.AddrLo->DISPLAY.ALo")
	f.Add("noscan:MEMORY")
	f.Add(strings.Repeat("opaque:CPU,", 40))
	f.Fuzz(func(t *testing.T, spec string) {
		ch := fuzzSystem()
		faults, err := ParseFaults(ch, spec)
		if err != nil {
			if faults != nil {
				t.Fatalf("spec %q: error %v alongside a non-nil fault set", spec, err)
			}
			return
		}
		// Accepted specs must parse identically a second time...
		again, err := ParseFaults(ch, spec)
		if err != nil {
			t.Fatalf("spec %q: accepted once, rejected on re-parse: %v", spec, err)
		}
		if FaultSetString(faults) != FaultSetString(again) {
			t.Fatalf("spec %q: two parses disagree: %s vs %s",
				spec, FaultSetString(faults), FaultSetString(again))
		}
		// ...and inject cleanly into a clone without touching the original.
		before := len(ch.Nets)
		if _, err := Inject(ch, faults...); err != nil {
			t.Fatalf("spec %q: parsed but failed to inject: %v", spec, err)
		}
		if len(ch.Nets) != before {
			t.Fatalf("spec %q: injection mutated the base chip", spec)
		}
	})
}
