package resil

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/progress"
	"repro/internal/soc"
)

// Outcome is one campaign run: the fault set, the degraded evaluation it
// produced, and any flow error (a flow error under a well-formed fault set
// is a robustness bug — campaigns assert it stays nil).
type Outcome struct {
	Index  int
	Faults []Fault
	Eval   *core.DegradedEvaluation
	Err    error
}

// Campaign evaluates a sequence of fault sets against one prepared flow.
type Campaign struct {
	Flow *core.Flow
	Runs [][]Fault
	// Seed attributes the fault sets (the RandomSets seed, typically); it
	// rides along in every RunRecord so a merged or resumed report keeps
	// saying where its sets came from.
	Seed int64
	// Indices, when non-nil, restricts Execute to these run indices (in
	// the given order; out-of-range entries are skipped). Outcome.Index
	// stays the global index into Runs, so a resumed or sharded campaign
	// reports the same attribution as a full one. Nil means every run.
	Indices []int
	// OnOutcome, when non-nil, is called after each completed run — the
	// hook checkpointing campaign runners use to persist completion as it
	// happens instead of only at the end.
	OnOutcome func(Outcome)
}

// runIndices resolves Indices against Runs.
func (c *Campaign) runIndices() []int {
	if c.Indices == nil {
		out := make([]int, len(c.Runs))
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, 0, len(c.Indices))
	for _, i := range c.Indices {
		if i >= 0 && i < len(c.Runs) {
			out = append(out, i)
		}
	}
	return out
}

// Execute runs every selected fault set in order: clone the chip, inject,
// fork the flow, evaluate degraded. Cancellation between runs (and inside
// each evaluation) returns the outcomes so far with ctx.Err(). Per-run
// flow errors do not stop the campaign; they land in the run's Outcome.
func (c *Campaign) Execute(ctx context.Context) ([]Outcome, error) {
	root := obs.Start(nil, "resil/campaign")
	defer root.End()
	idxs := c.runIndices()
	prog := progress.Start("resil/campaign", int64(len(idxs)),
		"resil.faults_injected", "resil.run_errors")
	defer prog.End()
	out := make([]Outcome, 0, len(idxs))
	for _, i := range idxs {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		faults := c.Runs[i]
		o := Outcome{Index: i, Faults: faults}
		sp := obs.Start(root, "resil/run")
		ch, err := Inject(c.Flow.Chip, faults...)
		if err != nil {
			o.Err = err
		} else {
			o.Eval, o.Err = c.Flow.Fork(ch).EvaluateDegradedCtx(ctx)
		}
		sp.End()
		if o.Err != nil {
			if ctx.Err() != nil {
				return out, ctx.Err()
			}
			obs.C("resil.run_errors").Inc()
		}
		obs.C("resil.runs").Inc()
		prog.Step(1)
		out = append(out, o)
		if c.OnOutcome != nil {
			c.OnOutcome(o)
		}
	}
	return out, nil
}

// RunRecord is the compact, serializable completion record of one fault
// set: which set ran (seed/index attribution), whether it completed, and
// the degraded bottom line. Two runs of the same set — in any process, in
// any order — produce identical records, which is what makes sharded and
// resumed campaign reports mergeable bit-identically.
type RunRecord struct {
	Index          int      `json:"index"`
	Seed           int64    `json:"seed,omitempty"`
	Faults         string   `json:"faults"`
	Completed      bool     `json:"completed"`
	Err            string   `json:"err,omitempty"`
	TAT            int      `json:"tat,omitempty"`
	Coverage       float64  `json:"coverage,omitempty"`
	VectorsCovered int      `json:"vectors_covered,omitempty"`
	VectorsTotal   int      `json:"vectors_total,omitempty"`
	Untestable     []string `json:"untestable,omitempty"`
}

// Record compresses an outcome into its run record.
func (c *Campaign) Record(o Outcome) RunRecord {
	r := RunRecord{
		Index:     o.Index,
		Seed:      c.Seed,
		Faults:    FaultSetString(o.Faults),
		Completed: true,
	}
	if o.Err != nil {
		r.Err = o.Err.Error()
	}
	if o.Eval != nil {
		r.TAT = o.Eval.TAT
		if rep := o.Eval.Report; rep != nil {
			r.Coverage = rep.Coverage
			r.VectorsCovered = rep.VectorsCovered
			r.VectorsTotal = rep.VectorsTotal
			r.Untestable = rep.Untestable()
		}
	}
	return r
}

// Report is the structured outcome of a campaign: one record per fault
// set that ran, in index order, plus how many sets the campaign holds in
// total. A cancelled or sharded campaign yields a partial report whose
// Missing indices are exactly the sets still to run — the resume contract.
type Report struct {
	Chip    string      `json:"chip"`
	Seed    int64       `json:"seed,omitempty"`
	Total   int         `json:"total"`
	Records []RunRecord `json:"records"`
}

// Report builds the campaign report from the outcomes Execute returned.
// Every outcome — including errored runs — counts as completed: the error
// is its deterministic result, not missing work.
func (c *Campaign) Report(outs []Outcome) *Report {
	r := &Report{Chip: c.Flow.Chip.Name, Seed: c.Seed, Total: len(c.Runs)}
	for _, o := range outs {
		r.Records = append(r.Records, c.Record(o))
	}
	sort.Slice(r.Records, func(i, j int) bool { return r.Records[i].Index < r.Records[j].Index })
	return r
}

// Missing lists the run indices with no completed record, ascending — the
// Indices a resumed campaign should execute.
func (r *Report) Missing() []int {
	have := make(map[int]bool, len(r.Records))
	for _, rec := range r.Records {
		if rec.Completed {
			have[rec.Index] = true
		}
	}
	var out []int
	for i := 0; i < r.Total; i++ {
		if !have[i] {
			out = append(out, i)
		}
	}
	return out
}

// MergeReports combines partial campaign reports (shards, resumed runs)
// into one. Records are united by index — identical duplicates collapse,
// a completed record wins over an incomplete one — and sorted, so any
// partition of a campaign merges to the report the single-process run
// produces.
func MergeReports(parts ...*Report) *Report {
	out := &Report{}
	byIndex := map[int]RunRecord{}
	for _, p := range parts {
		if p == nil {
			continue
		}
		if out.Chip == "" {
			out.Chip = p.Chip
		}
		if out.Seed == 0 {
			out.Seed = p.Seed
		}
		if p.Total > out.Total {
			out.Total = p.Total
		}
		for _, rec := range p.Records {
			if prev, ok := byIndex[rec.Index]; ok && prev.Completed && !rec.Completed {
				continue
			}
			byIndex[rec.Index] = rec
		}
	}
	for _, rec := range byIndex {
		out.Records = append(out.Records, rec)
	}
	sort.Slice(out.Records, func(i, j int) bool { return out.Records[i].Index < out.Records[j].Index })
	return out
}

// Format renders the report deterministically for command-line output:
// aggregate line first, then one line per completed set in index order.
func (r *Report) Format() string {
	var b strings.Builder
	completed, errors := 0, 0
	minCov, sumCov := 1.0, 0.0
	for _, rec := range r.Records {
		if !rec.Completed {
			continue
		}
		completed++
		if rec.Err != "" {
			errors++
		}
		sumCov += rec.Coverage
		if rec.Coverage < minCov {
			minCov = rec.Coverage
		}
	}
	mean := 0.0
	if completed > 0 {
		mean = sumCov / float64(completed)
	} else {
		minCov = 0
	}
	fmt.Fprintf(&b, "campaign report (%s, seed %d): %d/%d sets complete, %d errors, coverage mean %.1f%% min %.1f%%\n",
		r.Chip, r.Seed, completed, r.Total, errors, 100*mean, 100*minCov)
	for _, rec := range r.Records {
		if !rec.Completed {
			continue
		}
		if rec.Err != "" {
			fmt.Fprintf(&b, "  set %4d [%s]: ERROR %s\n", rec.Index, rec.Faults, rec.Err)
			continue
		}
		fmt.Fprintf(&b, "  set %4d [%s]: TApp %d, coverage %.1f%% (%d/%d)", rec.Index, rec.Faults,
			rec.TAT, 100*rec.Coverage, rec.VectorsCovered, rec.VectorsTotal)
		if len(rec.Untestable) > 0 {
			fmt.Fprintf(&b, ", untestable: %s", strings.Join(rec.Untestable, ","))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// SingleEdgeCuts enumerates one CutEdge fault set per interconnect net, in
// net declaration order — the exhaustive broken-wire campaign.
func SingleEdgeCuts(ch *soc.Chip) [][]Fault {
	out := make([][]Fault, 0, len(ch.Nets))
	for _, n := range ch.Nets {
		out = append(out, []Fault{Cut(n)})
	}
	return out
}

// Catalog lists every basic single fault of the chip: each net cut, and
// each testable core made opaque, slowed and scan-broken.
func Catalog(ch *soc.Chip) []Fault {
	var out []Fault
	for _, n := range ch.Nets {
		out = append(out, Cut(n))
	}
	for _, c := range ch.TestableCores() {
		out = append(out, Opaque{Core: c.Name})
		out = append(out, SlowTransparency{Core: c.Name, Factor: 2})
		out = append(out, DisableHSCAN{Core: c.Name})
	}
	return out
}

// RandomSets draws n fault sets of the given size from the chip's fault
// catalog, without replacement inside a set, deterministically from seed.
func RandomSets(ch *soc.Chip, n, size int, seed int64) [][]Fault {
	cat := Catalog(ch)
	if size > len(cat) {
		size = len(cat)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([][]Fault, 0, n)
	for i := 0; i < n; i++ {
		idx := rng.Perm(len(cat))[:size]
		set := make([]Fault, size)
		for j, k := range idx {
			set[j] = cat[k]
		}
		out = append(out, set)
	}
	return out
}
