package resil

import (
	"context"
	"math/rand"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/progress"
	"repro/internal/soc"
)

// Outcome is one campaign run: the fault set, the degraded evaluation it
// produced, and any flow error (a flow error under a well-formed fault set
// is a robustness bug — campaigns assert it stays nil).
type Outcome struct {
	Index  int
	Faults []Fault
	Eval   *core.DegradedEvaluation
	Err    error
}

// Campaign evaluates a sequence of fault sets against one prepared flow.
type Campaign struct {
	Flow *core.Flow
	Runs [][]Fault
}

// Execute runs every fault set in order: clone the chip, inject, fork the
// flow, evaluate degraded. Cancellation between runs (and inside each
// evaluation) returns the outcomes so far with ctx.Err(). Per-run flow
// errors do not stop the campaign; they land in the run's Outcome.
func (c *Campaign) Execute(ctx context.Context) ([]Outcome, error) {
	root := obs.Start(nil, "resil/campaign")
	defer root.End()
	prog := progress.Start("resil/campaign", int64(len(c.Runs)),
		"resil.faults_injected", "resil.run_errors")
	defer prog.End()
	out := make([]Outcome, 0, len(c.Runs))
	for i, faults := range c.Runs {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		o := Outcome{Index: i, Faults: faults}
		sp := obs.Start(root, "resil/run")
		ch, err := Inject(c.Flow.Chip, faults...)
		if err != nil {
			o.Err = err
		} else {
			o.Eval, o.Err = c.Flow.Fork(ch).EvaluateDegradedCtx(ctx)
		}
		sp.End()
		if o.Err != nil {
			if ctx.Err() != nil {
				return out, ctx.Err()
			}
			obs.C("resil.run_errors").Inc()
		}
		obs.C("resil.runs").Inc()
		prog.Step(1)
		out = append(out, o)
	}
	return out, nil
}

// SingleEdgeCuts enumerates one CutEdge fault set per interconnect net, in
// net declaration order — the exhaustive broken-wire campaign.
func SingleEdgeCuts(ch *soc.Chip) [][]Fault {
	out := make([][]Fault, 0, len(ch.Nets))
	for _, n := range ch.Nets {
		out = append(out, []Fault{Cut(n)})
	}
	return out
}

// Catalog lists every basic single fault of the chip: each net cut, and
// each testable core made opaque, slowed and scan-broken.
func Catalog(ch *soc.Chip) []Fault {
	var out []Fault
	for _, n := range ch.Nets {
		out = append(out, Cut(n))
	}
	for _, c := range ch.TestableCores() {
		out = append(out, Opaque{Core: c.Name})
		out = append(out, SlowTransparency{Core: c.Name, Factor: 2})
		out = append(out, DisableHSCAN{Core: c.Name})
	}
	return out
}

// RandomSets draws n fault sets of the given size from the chip's fault
// catalog, without replacement inside a set, deterministically from seed.
func RandomSets(ch *soc.Chip, n, size int, seed int64) [][]Fault {
	cat := Catalog(ch)
	if size > len(cat) {
		size = len(cat)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([][]Fault, 0, n)
	for i := 0; i < n; i++ {
		idx := rng.Perm(len(cat))[:size]
		set := make([]Fault, size)
		for j, k := range idx {
			set[j] = cat[k]
		}
		out = append(out, set)
	}
	return out
}
