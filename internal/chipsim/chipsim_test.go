package chipsim_test

import (
	"testing"
	"testing/quick"

	"repro/internal/chipsim"
	"repro/internal/core"
	"repro/internal/soc"
	"repro/internal/systems"
)

func prepared(t testing.TB) *core.Flow {
	t.Helper()
	f, err := core.Prepare(systems.System1(), &core.Options{
		VectorOverride: map[string]int{"CPU": 10, "PREPROCESSOR": 10, "DISPLAY": 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// The Section 3 mechanism, executed: a test value driven at chip input
// NUM travels through the PREPROCESSOR's NUM->DB transparency (five
// cycles in Version 1) and arrives at the DISPLAY's D input.
func TestVectorDeliveryToDisplayD(t *testing.T) {
	f := prepared(t)
	s, err := chipsim.New(f.Chip)
	if err != nil {
		t.Fatal(err)
	}
	prep, _ := f.Chip.CoreByName("PREPROCESSOR")
	ps, _ := s.Core("PREPROCESSOR")
	lat, err := chipsim.EngageJustification(ps, prep.Versions[0], "DB")
	if err != nil {
		t.Fatal(err)
	}
	if lat != 5 {
		t.Fatalf("PREPROCESSOR V1 NUM->DB latency = %d, want 5", lat)
	}
	const vector = 0xA7
	if err := s.SetPI("NUM", vector); err != nil {
		t.Fatal(err)
	}
	// Before enough cycles, the value has not arrived.
	for cyc := 0; cyc < lat; cyc++ {
		if got, _ := s.CoreInput("DISPLAY", "D"); got == vector && cyc < lat-1 {
			// Arriving early would also be a bug in the latency claim —
			// but only flag clearly-early cycles (the pipeline starts
			// zeroed so a zero vector would alias).
			t.Fatalf("vector arrived after only %d cycles (claimed %d)", cyc, lat)
		}
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.CoreInput("DISPLAY", "D")
	if err != nil {
		t.Fatal(err)
	}
	if got != vector {
		t.Fatalf("after %d cycles DISPLAY.D = %#x, want %#x", lat, got, vector)
	}
}

// Two-core delivery: NUM -> PREPROCESSOR (5 cycles) -> CPU's Version 2
// Data -> Address(7:0) shortcut through mux M (1 cycle) -> DISPLAY.ALo.
func TestVectorDeliveryThroughTwoCores(t *testing.T) {
	f := prepared(t)
	s, err := chipsim.New(f.Chip)
	if err != nil {
		t.Fatal(err)
	}
	prep, _ := f.Chip.CoreByName("PREPROCESSOR")
	cpu, _ := f.Chip.CoreByName("CPU")
	ps, _ := s.Core("PREPROCESSOR")
	cs, _ := s.Core("CPU")
	lat1, err := chipsim.EngageJustification(ps, prep.Versions[0], "DB")
	if err != nil {
		t.Fatal(err)
	}
	// CPU Version 2: the paper's mux-M shortcut, Data -> MAR offset.
	lat2, err := chipsim.EngageJustification(cs, cpu.Versions[1], "AddrLo")
	if err != nil {
		t.Fatal(err)
	}
	if lat2 != 1 {
		t.Fatalf("CPU V2 Data->AddrLo latency = %d, want 1", lat2)
	}
	const vector = 0x5C
	s.SetPI("NUM", vector)
	total := lat1 + lat2
	for cyc := 0; cyc < total; cyc++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.CoreInput("DISPLAY", "ALo")
	if err != nil {
		t.Fatal(err)
	}
	if got != vector {
		t.Fatalf("after %d cycles DISPLAY.ALo = %#x, want %#x", total, got, vector)
	}
}

// Property: delivery works for arbitrary vector values (lossless
// transparency, the paper's defining requirement).
func TestDeliveryLossless(t *testing.T) {
	f := prepared(t)
	prep, _ := f.Chip.CoreByName("PREPROCESSOR")
	cpu, _ := f.Chip.CoreByName("CPU")
	check := func(v uint8) bool {
		s, err := chipsim.New(f.Chip)
		if err != nil {
			return false
		}
		ps, _ := s.Core("PREPROCESSOR")
		cs, _ := s.Core("CPU")
		l1, err := chipsim.EngageJustification(ps, prep.Versions[0], "DB")
		if err != nil {
			return false
		}
		l2, err := chipsim.EngageJustification(cs, cpu.Versions[1], "AddrLo")
		if err != nil {
			return false
		}
		s.SetPI("NUM", uint64(v))
		for cyc := 0; cyc < l1+l2; cyc++ {
			if err := s.Step(); err != nil {
				return false
			}
		}
		got, err := s.CoreInput("DISPLAY", "ALo")
		return err == nil && got == uint64(v)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 24}); err != nil {
		t.Error(err)
	}
}

// V1's AddrLo justification rides the HSCAN scan muxes, which the bare
// RTL does not contain: engaging it must fail loudly rather than silently
// simulate the wrong hardware.
func TestEngageRejectsScanMuxPaths(t *testing.T) {
	f := prepared(t)
	cpu, _ := f.Chip.CoreByName("CPU")
	s, _ := chipsim.New(f.Chip)
	cs, _ := s.Core("CPU")
	if _, err := chipsim.EngageJustification(cs, cpu.Versions[0], "AddrLo"); err == nil {
		t.Error("V1 scan-mux path engaged on bare RTL")
	}
}

func TestChipOutputReadsDisplayPorts(t *testing.T) {
	f := prepared(t)
	s, _ := chipsim.New(f.Chip)
	if _, err := s.ChipOutput("PO-PORT1"); err != nil {
		t.Fatalf("PO read failed: %v", err)
	}
	if _, err := s.ChipOutput("NOPE"); err == nil {
		t.Error("unknown PO accepted")
	}
}

// TestEngagePropagationWrapper drives the propagation wrapper over every
// core and version of System 1: each input either engages (returning the
// version's claimed latency) or is rejected because its path rides DFT
// hardware the bare RTL does not contain; unknown ports always error.
func TestEngagePropagationWrapper(t *testing.T) {
	f := prepared(t)
	engaged := 0
	for _, c := range f.Chip.TestableCores() {
		for _, v := range c.Versions {
			for _, in := range c.RTL.Inputs() {
				s, err := chipsim.New(f.Chip)
				if err != nil {
					t.Fatal(err)
				}
				cs, _ := s.Core(c.Name)
				lat, err := chipsim.EngagePropagation(cs, v, in.Name)
				if err != nil {
					continue
				}
				engaged++
				if want := v.PropLatency(in.Name); lat != want {
					t.Errorf("%s %s %s: engaged latency %d != ladder latency %d",
						c.Name, v.Label, in.Name, lat, want)
				}
			}
		}
	}
	if engaged == 0 {
		t.Fatal("no propagation path engaged on any core")
	}
	s, _ := chipsim.New(f.Chip)
	cpu, _ := f.Chip.CoreByName("CPU")
	cs, _ := s.Core("CPU")
	if _, err := chipsim.EngagePropagation(cs, cpu.Versions[0], "NOPE"); err == nil {
		t.Error("unknown input port accepted")
	}
	if _, err := chipsim.EngageJustification(cs, cpu.Versions[0], "NOPE"); err == nil {
		t.Error("unknown output port accepted")
	}
}

func TestSimAccessorErrors(t *testing.T) {
	s, err := chipsim.New(systems.System1())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetPI("NOPE", 1); err == nil {
		t.Fatal("unknown PI accepted")
	}
	if _, err := s.CoreInput("CPU", "NOPE"); err == nil {
		t.Fatal("undriven core input read without error")
	}
	if _, err := s.ChipOutput("NOPE"); err == nil {
		t.Fatal("unknown PO read without error")
	}
	if _, ok := s.Core("GHOST"); ok {
		t.Fatal("unknown core reported present")
	}
	bad := &soc.Chip{Nets: []soc.Net{{FromPort: "GHOST", ToPort: "GHOST"}}}
	if _, err := chipsim.New(bad); err == nil {
		t.Fatal("invalid chip accepted")
	}
}
