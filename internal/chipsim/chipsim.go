// Package chipsim simulates a whole SoC at the RTL level: one rtlsim
// instance per core, stitched by the chip nets every cycle, with the
// test-mode controls (forced multiplexer selects, forced loads, frozen
// cores) the SOCET controller drives. Its purpose is end-to-end proof of
// the paper's mechanism: a test value driven at a chip input really
// arrives at an embedded core's input after the scheduled number of
// cycles, having traveled through the surrounding cores' transparency
// paths (the Section 3 scenario, executed rather than calculated).
package chipsim

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/rtlsim"
	"repro/internal/soc"
	"repro/internal/trans"
)

// Sim simulates a chip cycle by cycle.
type Sim struct {
	ch   *soc.Chip
	sims map[string]*rtlsim.Sim
	pis  map[string]uint64
}

// New builds a simulator over all non-memory cores. Nets to or from
// memory cores are left dangling (their inputs read zero), matching the
// CCG's view of the chip.
func New(ch *soc.Chip) (*Sim, error) {
	if err := ch.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{ch: ch, sims: map[string]*rtlsim.Sim{}, pis: map[string]uint64{}}
	for _, c := range ch.TestableCores() {
		cs, err := rtlsim.New(c.RTL)
		if err != nil {
			return nil, fmt.Errorf("chipsim: core %s: %w", c.Name, err)
		}
		s.sims[c.Name] = cs
	}
	return s, nil
}

// Core exposes one core's simulator for test-mode control.
func (s *Sim) Core(name string) (*rtlsim.Sim, bool) {
	cs, ok := s.sims[name]
	return cs, ok
}

// SetPI drives a chip primary input.
func (s *Sim) SetPI(name string, v uint64) error {
	for _, p := range s.ch.PIs {
		if p.Name == name {
			s.pis[name] = v
			return nil
		}
	}
	return fmt.Errorf("chipsim: no PI %q", name)
}

// propagate copies values across the chip nets: PI values and core output
// values into core inputs. Multiple passes settle combinational
// feedthrough chains across cores.
func (s *Sim) propagate() error {
	for pass := 0; pass < 3; pass++ {
		for _, n := range s.ch.Nets {
			var v uint64
			if n.FromCore == "" {
				v = s.pis[n.FromPort]
			} else {
				src, ok := s.sims[n.FromCore]
				if !ok {
					continue // memory core: leave the sink at zero
				}
				out, err := src.Output(n.FromPort)
				if err != nil {
					return err
				}
				v = out
			}
			if n.ToCore == "" {
				continue // PO: read via ChipOutput
			}
			dst, ok := s.sims[n.ToCore]
			if !ok {
				continue
			}
			if err := dst.SetInput(n.ToPort, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// Step propagates the nets and clocks every core once.
func (s *Sim) Step() error {
	obs.C("chipsim.cycles").Inc()
	if err := s.propagate(); err != nil {
		return err
	}
	for _, c := range s.ch.TestableCores() {
		s.sims[c.Name].Step()
	}
	return nil
}

// CoreInput returns the value currently presented at a core input port
// (after net propagation).
func (s *Sim) CoreInput(core, port string) (uint64, error) {
	if err := s.propagate(); err != nil {
		return 0, err
	}
	for _, n := range s.ch.Nets {
		if n.ToCore != core || n.ToPort != port {
			continue
		}
		if n.FromCore == "" {
			return s.pis[n.FromPort], nil
		}
		src, ok := s.sims[n.FromCore]
		if !ok {
			return 0, nil
		}
		return src.Output(n.FromPort)
	}
	return 0, fmt.Errorf("chipsim: %s.%s has no driver", core, port)
}

// ChipOutput reads a chip PO.
func (s *Sim) ChipOutput(name string) (uint64, error) {
	if err := s.propagate(); err != nil {
		return 0, err
	}
	for _, n := range s.ch.Nets {
		if n.ToCore != "" || n.ToPort != name {
			continue
		}
		if n.FromCore == "" {
			return s.pis[n.FromPort], nil
		}
		src, ok := s.sims[n.FromCore]
		if !ok {
			return 0, nil
		}
		return src.Output(n.FromPort)
	}
	return 0, fmt.Errorf("chipsim: no net drives PO %q", name)
}

// EngagePath configures a core for one solved transparency path
// (justification or propagation): every multiplexer hop along the path is
// forced and every register the path loads has its load asserted. Created
// transparency-mux and scan-mux edges cannot be engaged (they are hardware
// the surrogate RTL does not contain). Edges are visited in id order so
// conflicting forcings resolve deterministically.
func EngagePath(cs *rtlsim.Sim, v *trans.Version, p *trans.PathUse) error {
	return EngageElaboratedPath(cs, v, p, nil)
}

// EngageElaboratedPath is EngagePath for a core whose DFT hardware has
// been physically elaborated: dftMux maps the RCG edge id of each created
// transparency or scan mux to the name of the inserted multiplexer, which
// is forced to its test input (in1) instead of being rejected.
func EngageElaboratedPath(cs *rtlsim.Sim, v *trans.Version, p *trans.PathUse, dftMux map[int]string) error {
	ids := make([]int, 0, len(p.Edges))
	for id := range p.Edges {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		e := v.RCG.Edges[id]
		if e.Created || e.ScanMux {
			name, ok := dftMux[id]
			if !ok {
				return fmt.Errorf("chipsim: path uses non-RTL edge %d", id)
			}
			if err := cs.ForceMux(name, 1); err != nil {
				return err
			}
		} else {
			for _, h := range e.Hops {
				if err := cs.ForceMux(h.Mux, h.Sel); err != nil {
					return err
				}
			}
		}
		to := v.RCG.Nodes[e.To]
		if to.Kind == trans.NodeReg && to.HasLoad {
			if err := cs.ForceLoad(to.Name, true); err != nil {
				return err
			}
		}
	}
	return nil
}

// EngageJustification configures a core for the justification path of one
// of its outputs in the given version and returns the path latency.
func EngageJustification(cs *rtlsim.Sim, v *trans.Version, output string) (int, error) {
	p, ok := v.Just[output]
	if !ok {
		return 0, fmt.Errorf("chipsim: version has no justification for %s", output)
	}
	if err := EngagePath(cs, v, p); err != nil {
		return 0, fmt.Errorf("chipsim: justification of %s: %w", output, err)
	}
	return p.Latency, nil
}

// EngagePropagation configures a core for the propagation path of one of
// its inputs in the given version and returns the path latency.
func EngagePropagation(cs *rtlsim.Sim, v *trans.Version, input string) (int, error) {
	p, ok := v.Prop[input]
	if !ok {
		return 0, fmt.Errorf("chipsim: version has no propagation for %s", input)
	}
	if err := EngagePath(cs, v, p); err != nil {
		return 0, fmt.Errorf("chipsim: propagation of %s: %w", input, err)
	}
	return p.Latency, nil
}
