package core

// SetCrippleInvalidation flips the delta evaluator's test-only hook that
// skips the invalidation BFS, deliberately reusing stale schedules for
// every core but the changed one. The differential tests use it to prove
// the delta-vs-full equivalence check actually detects a
// stale-invalidation bug.
func (d *DeltaEvaluator) SetCrippleInvalidation(v bool) { d.crippleInvalidation = v }
