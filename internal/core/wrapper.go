package core

import "repro/internal/wrap"

// EvaluateWrapper evaluates the wrapped-core/TAM baseline architecture
// (internal/wrap) on the flow's chip at TAM width w: every testable core
// gets a P1500-style wrapper with balanced chains and the cores are
// scheduled onto parallel TAM buses. The flow must be prepared (HSCAN
// chains and vector counts filled in); the chip is only read, so
// concurrent calls over one flow are safe.
func (f *Flow) EvaluateWrapper(w int, opts *wrap.Options) *wrap.Result {
	return wrap.Evaluate(f.Chip, w, opts)
}
