package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/ccg"
	"repro/internal/cell"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/soc"
)

// CoreDiag is the per-core verdict of a degraded evaluation.
type CoreDiag struct {
	Core     string
	Testable bool
	// For untestable cores: the first unservable port, its phase, the
	// scheduler's reason, and — when the flow can pin it down — the broken
	// interconnect net responsible.
	Port    string
	Input   bool
	Reason  string
	CutEdge string
}

// FallbackStep records one version deviation the degraded evaluation
// accepted because it brought otherwise-untestable cores back: the paper's
// transparency ladder doubles as a spare-route inventory under faults.
type FallbackStep struct {
	Core      string // core whose version was deviated
	Version   int    // version index now in use
	Recovered []string
}

// DegradationReport is the structured outcome of a degraded evaluation.
type DegradationReport struct {
	Chip  string
	Diags []CoreDiag // every testable-eligible core, declaration order
	// CutNets lists interconnect nets present in the baseline chip but
	// missing from the evaluated one (the injected broken wires).
	CutNets   []string
	Fallbacks []FallbackStep
	// Coverage is the vector-weighted fraction of the chip's precomputed
	// test data that can still be applied: sum of testable cores' vector
	// counts over the total (cores without ATPG results weigh 1).
	Coverage                     float64
	VectorsCovered, VectorsTotal int
}

// Degraded reports whether any core is untestable.
func (r *DegradationReport) Degraded() bool {
	for _, d := range r.Diags {
		if !d.Testable {
			return true
		}
	}
	return false
}

// Untestable returns the names of the untestable cores in declaration
// order.
func (r *DegradationReport) Untestable() []string {
	var out []string
	for _, d := range r.Diags {
		if !d.Testable {
			out = append(out, d.Core)
		}
	}
	return out
}

// Format renders the report for command-line output.
func (r *DegradationReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "degradation report (%s): coverage %.1f%% (%d/%d vectors)\n",
		r.Chip, 100*r.Coverage, r.VectorsCovered, r.VectorsTotal)
	for _, n := range r.CutNets {
		fmt.Fprintf(&b, "  broken interconnect: %s\n", n)
	}
	for _, d := range r.Diags {
		if d.Testable {
			fmt.Fprintf(&b, "  %-14s testable\n", d.Core)
			continue
		}
		fmt.Fprintf(&b, "  %-14s UNTESTABLE: %s", d.Core, d.Reason)
		if d.CutEdge != "" {
			fmt.Fprintf(&b, " (cut edge: %s)", d.CutEdge)
		}
		b.WriteString("\n")
	}
	for _, fb := range r.Fallbacks {
		fmt.Fprintf(&b, "  fallback: %s -> Version %d recovered %s\n",
			fb.Core, fb.Version+1, strings.Join(fb.Recovered, ", "))
	}
	return b.String()
}

// DegradedEvaluation is a partial Evaluation over the testable subset of
// the chip plus the diagnosis of what was lost.
type DegradedEvaluation struct {
	*Evaluation
	Report *DegradationReport
}

// EvaluateDegraded evaluates the chip's current selection without giving
// up on the first unreachable port: unservable cores are diagnosed and
// skipped, single-core version fallbacks are tried to reroute around the
// damage, and the result covers the testable subset with a coverage
// fraction. On a healthy flow (no fault-injected Fork) it produces an
// Evaluation bit-identical to Evaluate.
func (f *Flow) EvaluateDegraded() (*DegradedEvaluation, error) {
	return f.evaluateDegraded(context.Background(), f.CurrentSelection())
}

// EvaluateSelectionDegraded is EvaluateDegraded for an explicit selection.
func (f *Flow) EvaluateSelectionDegraded(sel map[string]int) (*DegradedEvaluation, error) {
	return f.evaluateDegraded(context.Background(), sel)
}

// EvaluateDegradedCtx is EvaluateDegraded honoring ctx.
func (f *Flow) EvaluateDegradedCtx(ctx context.Context) (*DegradedEvaluation, error) {
	return f.evaluateDegraded(ctx, f.CurrentSelection())
}

// muxKey names one port-direction slot of the design's test-mux budget.
func muxKey(core, port string, input bool) string {
	if input {
		return core + "." + port + "/in"
	}
	return core + "." + port + "/out"
}

// preMux is one system-level test multiplexer the healthy design
// provisioned: fixed silicon that survives interconnect faults, so
// degraded evaluation re-creates its CCG edge up front.
type preMux struct {
	from, to string
	width    int
}

// baselineInfo is what degraded evaluation learns from scheduling the
// pristine chip: which test muxes the design provisioned and which CCG
// path served each port when everything worked.
type baselineInfo struct {
	graph *ccg.Graph
	paths map[string][]ccg.Step
	muxes []preMux
}

// baselineFor schedules the pristine baseline chip under the equivalent
// selection. A nil return (with nil error) means the flow has no fault
// baseline: the chip itself is the design, every mux insertion is allowed
// and no cut-edge diagnosis is possible.
func (f *Flow) baselineFor(root *obs.Span, sel map[string]int) (*baselineInfo, error) {
	if f.Baseline == nil {
		return nil, nil
	}
	bsel := canonSelectionOn(f.Baseline, sel)
	bg, _, err := f.buildGraph(root, f.Baseline, bsel)
	if err != nil {
		return nil, fmt.Errorf("core: degraded baseline: %w", err)
	}
	bs, err := sched.Schedule(f.Baseline, bg)
	if err != nil {
		return nil, fmt.Errorf("core: degraded baseline schedule: %w", err)
	}
	info := &baselineInfo{graph: bg, paths: map[string][]ccg.Step{}}
	record := func(core string, ports []sched.PortSchedule, input bool) {
		for _, ps := range ports {
			if ps.Path == nil {
				continue
			}
			info.paths[muxKey(core, ps.Port, input)] = ps.Path.Steps
			if !ps.AddedMux {
				continue
			}
			// The port's own mux edge is the TestMux step touching the
			// port node (other TestMux steps belong to earlier ports).
			portNode := core + "." + ps.Port
			for _, st := range ps.Path.Steps {
				if st.Edge.Kind != ccg.TestMux {
					continue
				}
				end := bg.Nodes[st.Edge.To].Name()
				if !input {
					end = bg.Nodes[st.Edge.From].Name()
				}
				if end != portNode {
					continue
				}
				info.muxes = append(info.muxes, preMux{
					from:  bg.Nodes[st.Edge.From].Name(),
					to:    bg.Nodes[st.Edge.To].Name(),
					width: portWidthOn(f.Baseline, core, ps.Port),
				})
			}
		}
	}
	for _, cs := range bs.Cores {
		record(cs.Core, cs.Inputs, true)
		record(cs.Core, cs.Outputs, false)
	}
	return info, nil
}

// portWidthOn returns the RTL width of a core port, defaulting to 1.
func portWidthOn(ch *soc.Chip, core, port string) int {
	if c, ok := ch.CoreByName(core); ok {
		if p, ok := c.RTL.PortByName(port); ok {
			return p.Width
		}
	}
	return 1
}

// degradedPass is one partial build under one selection.
type degradedPass struct {
	sel    map[string]int
	g      *ccg.Graph
	s      *sched.Result
	deg    *sched.Degradation
	forced cell.Area
	base   *baselineInfo
}

func (f *Flow) runDegradedPass(root *obs.Span, sel map[string]int) (*degradedPass, error) {
	base, err := f.baselineFor(root, sel)
	if err != nil {
		return nil, err
	}
	g, forced, err := f.buildGraph(root, f.Chip, sel)
	if err != nil {
		return nil, err
	}
	var opts *sched.PartialOptions
	if base != nil {
		// The baseline's test muxes are fixed silicon: re-create their
		// edges up front (with their area) so any core may route through
		// them, and refuse new insertions — broken interconnect found on
		// the test floor cannot be patched with hardware the design never
		// had.
		var pre cell.Area
		for _, m := range base.muxes {
			fi, fok := g.NodeIndex(m.from)
			ti, tok := g.NodeIndex(m.to)
			if !fok || !tok {
				continue
			}
			g.AddTestMux(fi, ti)
			pre.Add(cell.Mux2, m.width)
		}
		obs.C("core.baseline_muxes_preinstalled").Add(int64(len(base.muxes)))
		opts = &sched.PartialOptions{
			AllowMux:   func(core, port string, input bool) bool { return false },
			PreMuxArea: pre,
		}
	}
	s, deg, err := sched.BuildPartial(f.Chip, g, opts)
	if err != nil {
		return nil, err
	}
	return &degradedPass{sel: sel, g: g, s: s, deg: deg, forced: forced, base: base}, nil
}

func (f *Flow) evaluateDegraded(ctx context.Context, sel map[string]int) (*DegradedEvaluation, error) {
	root := obs.Start(nil, "evaluate-degraded")
	defer root.End()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	csel := canonSelectionOn(f.Chip, sel)
	best, err := f.runDegradedPass(root, csel)
	if err != nil {
		return nil, err
	}
	// Version fallback: a cut route through one core's transparency may
	// still exist through a different version of a neighbour (a different
	// rung of Figures 6/8 uses different internal paths). Greedily accept
	// single-core deviations that strictly shrink the untestable set.
	var fallbacks []FallbackStep
	for round := 0; round < 3 && best.deg.Degraded(); round++ {
		improved := false
		for _, c := range f.Chip.TestableCores() {
			for idx := range c.Versions {
				if idx == best.sel[c.Name] {
					continue
				}
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				trial := make(map[string]int, len(best.sel))
				for k, v := range best.sel {
					trial[k] = v
				}
				trial[c.Name] = idx
				p, err := f.runDegradedPass(root, trial)
				if err != nil {
					continue
				}
				if len(p.deg.Skipped) < len(best.deg.Skipped) {
					fallbacks = append(fallbacks, FallbackStep{
						Core:      c.Name,
						Version:   idx,
						Recovered: subtract(best.deg.Skipped, p.deg.Skipped),
					})
					obs.C("core.degraded_fallbacks").Inc()
					best = p
					improved = true
					break
				}
			}
			if improved {
				break
			}
		}
		if !improved {
			break
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e, err := f.finishEvaluation(root, best.sel, best.g, best.s, best.forced, nil)
	if err != nil {
		return nil, err
	}
	report := f.buildReport(best, fallbacks)
	if report.Degraded() {
		obs.C("core.degraded_evaluations").Inc()
	}
	return &DegradedEvaluation{Evaluation: e, Report: report}, nil
}

// buildReport assembles the per-core diagnoses, cut-net list and coverage.
func (f *Flow) buildReport(p *degradedPass, fallbacks []FallbackStep) *DegradationReport {
	r := &DegradationReport{Chip: f.Chip.Name, Fallbacks: fallbacks}
	if f.Baseline != nil {
		r.CutNets = removedNets(f.Baseline, f.Chip)
	}
	skipped := map[string]bool{}
	for _, name := range p.deg.Skipped {
		skipped[name] = true
	}
	for _, c := range f.Chip.TestableCores() {
		w := c.Vectors
		if w <= 0 {
			w = 1
		}
		r.VectorsTotal += w
		d := CoreDiag{Core: c.Name, Testable: !skipped[c.Name]}
		if d.Testable {
			r.VectorsCovered += w
		} else if pf, ok := p.deg.FailureFor(c.Name); ok {
			d.Port = pf.Port
			d.Input = pf.Input
			d.Reason = pf.Reason
			d.CutEdge = diagnoseCut(p.base, pf, r.CutNets)
		}
		r.Diags = append(r.Diags, d)
	}
	if r.VectorsTotal > 0 {
		r.Coverage = float64(r.VectorsCovered) / float64(r.VectorsTotal)
	}
	return r
}

// diagnoseCut pins an unservable port on a specific missing net: the wire
// edges of the port's baseline path are checked against the nets removed
// from the chip. When the baseline route does not implicate a specific
// net (the failure cascaded through a skipped neighbour, say) but exactly
// one net is missing, that net is the only possible culprit.
func diagnoseCut(base *baselineInfo, pf sched.PortFailure, cutNets []string) string {
	if base == nil || len(cutNets) == 0 || pf.Port == "" {
		// No baseline, no missing nets, or no failing port (a disabled
		// core, say, fails for reasons unrelated to the interconnect).
		return ""
	}
	cut := map[string]bool{}
	for _, n := range cutNets {
		cut[n] = true
	}
	for _, step := range base.paths[muxKey(pf.Core, pf.Port, pf.Input)] {
		if step.Edge.Kind != ccg.Wire {
			continue
		}
		name := base.graph.Nodes[step.Edge.From].Name() + " -> " + base.graph.Nodes[step.Edge.To].Name()
		if cut[name] {
			return name
		}
	}
	if len(cutNets) == 1 {
		return cutNets[0]
	}
	return ""
}

// removedNets returns the nets of base missing from ch, as strings, in
// base declaration order (duplicates kept once per missing instance).
func removedNets(base, ch *soc.Chip) []string {
	have := map[string]int{}
	for _, n := range ch.Nets {
		have[n.String()]++
	}
	var out []string
	for _, n := range base.Nets {
		s := n.String()
		if have[s] > 0 {
			have[s]--
			continue
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// subtract returns the elements of a not present in b, preserving order.
func subtract(a, b []string) []string {
	in := map[string]bool{}
	for _, s := range b {
		in[s] = true
	}
	var out []string
	for _, s := range a {
		if !in[s] {
			out = append(out, s)
		}
	}
	return out
}
