// Delta evaluation: re-evaluating a selection that differs from an
// already-evaluated base in a single core without rebuilding the CCG or
// re-scheduling the whole chip. This is the explorer's hot loop — both
// Enumerate neighbours and Improve steps change one core at a time — and
// the mechanism behind the ROADMAP's "incremental re-evaluation" item.
//
// # Invalidation model
//
// Swapping core c's transparency version only changes CCG edges that run
// from c's input nodes to c's output nodes. Everything whose shortest
// paths avoid those edges is untouched, and the affected region is an
// over-approximation computed with two BFS sweeps over the base graph:
//
//   - fwd: nodes reachable FROM c's outputs. A justification search
//     (PIs -> X.in) can only change if its target is fwd-marked.
//   - bwd: nodes that can reach c's inputs. An observation search
//     (X.out -> POs) can only change if its source is bwd-marked.
//
// A core is affected when any of its inputs is fwd-marked or any of its
// outputs is bwd-marked; an interconnect net when its driver is
// fwd-marked or its sink is bwd-marked. Affected cores and nets are
// recomputed exactly; unaffected ones reuse the base schedule and replay
// their recorded test muxes so the graph evolves edge-for-edge as a full
// run would. The Finder's (arrival, node) settle order makes search
// results over unmutated regions bit-identical across the splice, so a
// delta evaluation returns the same numbers AND the same schedule
// signature as Flow.EvaluateSelection — a property the proptest
// differential harness checks across the whole socgen corpus.
//
// Anything that threatens that guarantee (a recomputed core inserting
// different muxes than the base did, a disabled core, a stale forced-mux
// set, a failed splice) falls back to a full evaluation instead.
package core

import (
	"context"
	"sync"

	"repro/internal/ccg"
	"repro/internal/cell"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/soc"
)

// DeltaEvaluator evaluates selections against a small registry of cached
// base evaluations, re-running only the work a single-core version flip
// invalidates. It is safe for concurrent use; results are plain
// Evaluations, bit-identical to Flow.EvaluateSelection.
type DeltaEvaluator struct {
	f *Flow

	// MaxBases bounds the base registry (LRU eviction). Exploration
	// walks stay near a frontier, so a handful of bases catches almost
	// every single-core neighbour.
	MaxBases int
	// AdoptCandidates controls whether every full or delta evaluation
	// becomes a new base (the default, right for explorer walks where
	// each accepted candidate seeds the next neighbourhood). Benchmarks
	// pin a single base with Rebase and turn this off to measure the
	// pure delta path.
	AdoptCandidates bool

	// crippleInvalidation is a test hook: it skips the invalidation BFS
	// so only the changed core is recomputed. The differential harness
	// uses it to prove the delta-vs-full equivalence check actually
	// catches a stale-invalidation bug.
	crippleInvalidation bool

	mu    sync.Mutex
	bases map[string]*deltaBase
	order []string // LRU, most recently used last
	stats DeltaStats
}

// DeltaStats counts how a delta evaluator's requests were served. The
// same counts feed the obs registry (core.delta_*), but obs is a
// process-global that may be disabled; these are per-evaluator and
// always on, which is what tests and benchmarks want to assert against.
type DeltaStats struct {
	Hits      int // exact base registry hits
	Deltas    int // served by the incremental path
	Fallbacks int // had a 1-diff base but punted to a full evaluation
	Fulls     int // no usable base: full evaluation
}

type deltaBase struct {
	sel      map[string]int
	eval     *Evaluation
	pristine int       // edge count before scheduling muxes: the splice point
	forced   cell.Area // forced-mux area at build time
	muxes    []ForcedMux
}

// NewDeltaEvaluator returns a delta evaluator over f with the default
// base registry size.
func NewDeltaEvaluator(f *Flow) *DeltaEvaluator {
	return &DeltaEvaluator{f: f, MaxBases: 16, AdoptCandidates: true, bases: map[string]*deltaBase{}}
}

// Flow returns the flow this evaluator is bound to.
func (d *DeltaEvaluator) Flow() *Flow { return d.f }

// Stats returns a snapshot of how requests have been served so far.
func (d *DeltaEvaluator) Stats() DeltaStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// EvaluateSelection is EvaluateSelectionCtx with a background context.
func (d *DeltaEvaluator) EvaluateSelection(sel map[string]int) (*Evaluation, error) {
	return d.EvaluateSelectionCtx(context.Background(), sel)
}

// EvaluateSelectionCtx evaluates sel, reusing a cached base that differs
// in at most one core when one exists and falling back to a full
// Flow.EvaluateSelectionCtx otherwise. The result is bit-identical to
// the full evaluation either way.
func (d *DeltaEvaluator) EvaluateSelectionCtx(ctx context.Context, sel map[string]int) (*Evaluation, error) {
	sel = d.f.canonSelection(sel)
	key := d.f.SelectionKey(sel)

	d.mu.Lock()
	if b, ok := d.bases[key]; ok && d.muxesCurrent(b) {
		d.touch(key)
		d.stats.Hits++
		d.mu.Unlock()
		obs.C("core.delta_hits").Inc()
		return b.eval, nil
	}
	var base *deltaBase
	var changed string
	for i := len(d.order) - 1; i >= 0; i-- { // most recent base first
		b := d.bases[d.order[i]]
		if !d.muxesCurrent(b) {
			continue
		}
		if n, c := diffCores(b.sel, sel); n == 1 {
			base, changed = b, c
			break
		}
	}
	d.mu.Unlock()

	if base != nil {
		e, pristine, err := d.deltaEvaluate(ctx, base, changed, sel)
		if err != nil {
			return nil, err
		}
		if e != nil {
			obs.C("core.delta_evaluations").Inc()
			d.mu.Lock()
			d.stats.Deltas++
			d.mu.Unlock()
			if d.AdoptCandidates {
				d.adopt(key, sel, e, pristine, base.forced)
			}
			return e, nil
		}
		obs.C("core.delta_fallbacks").Inc()
		d.mu.Lock()
		d.stats.Fallbacks++
		d.mu.Unlock()
	}

	e, pristine, forced, err := d.f.evaluateFull(ctx, sel)
	if err != nil {
		return nil, err
	}
	if base == nil {
		d.mu.Lock()
		d.stats.Fulls++
		d.mu.Unlock()
	}
	d.adopt(key, sel, e, pristine, forced)
	return e, nil
}

// Rebase fully evaluates sel and pins it as a base, returning the
// evaluation. Benchmarks call it once outside the timed loop so every
// timed candidate exercises exactly the delta path.
func (d *DeltaEvaluator) Rebase(ctx context.Context, sel map[string]int) (*Evaluation, error) {
	sel = d.f.canonSelection(sel)
	e, pristine, forced, err := d.f.evaluateFull(ctx, sel)
	if err != nil {
		return nil, err
	}
	d.adopt(d.f.SelectionKey(sel), sel, e, pristine, forced)
	return e, nil
}

// deltaEvaluate runs the incremental path against base. A nil evaluation
// with a nil error means "cannot do this incrementally, run the full
// path" — correctness never depends on the caller's fallback, only
// speed does.
func (d *DeltaEvaluator) deltaEvaluate(ctx context.Context, b *deltaBase, changed string, sel map[string]int) (*Evaluation, int, error) {
	f := d.f
	ch := f.Chip
	c, ok := ch.CoreByName(changed)
	if !ok || c.Memory || c.Disabled != "" {
		return nil, 0, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	root := obs.Start(nil, "evaluate/delta")
	defer root.End()

	bg := b.eval.Graph
	fwd := make([]bool, len(bg.Nodes))
	bwd := make([]bool, len(bg.Nodes))
	if !d.crippleInvalidation {
		markReach(bg, fwd, bwd, changed)
	}

	affected := map[string]bool{changed: true}
	for i, n := range bg.Nodes {
		if n.Core == "" || n.Core == changed {
			continue
		}
		if (n.Kind == ccg.CoreIn && fwd[i]) || (n.Kind == ccg.CoreOut && bwd[i]) {
			affected[n.Core] = true
		}
	}

	ng := bg.CloneWithVersion(b.pristine, c, c.VersionAt(sel[changed]))
	if ng == nil {
		return nil, 0, nil
	}
	pristine := ng.EdgeCount()
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}

	baseCS := make(map[string]*sched.CoreSchedule, len(b.eval.Sched.Cores))
	for _, cs := range b.eval.Sched.Cores {
		baseCS[cs.Core] = cs
	}

	s := &sched.Result{}
	fi := ccg.NewFinder()
	for _, cc := range ch.TestableCores() {
		if cc.Disabled != "" {
			return nil, 0, nil // full Schedule reports this properly
		}
		bcs := baseCS[cc.Name]
		if bcs == nil {
			return nil, 0, nil
		}
		if !affected[cc.Name] {
			// Reuse the base schedule; replay its test muxes so later
			// cores see the graph a full run would.
			for _, m := range bcs.Muxes {
				ng.AddTestMux(m.From, m.To)
				s.MuxArea.Add(cell.Mux2, m.Width)
			}
			s.Cores = append(s.Cores, bcs)
			s.TotalTAT += bcs.TAT
			continue
		}
		cs, err := sched.ScheduleCore(ch, ng, fi, cc, s)
		if err != nil {
			return nil, 0, nil // let the full path surface the error faithfully
		}
		if !muxesEqual(cs.Muxes, bcs.Muxes) {
			// A recomputed core changed its mux insertions: cores after
			// it would see a different graph than the base did, voiding
			// the reuse argument. Rare — punt to the full path.
			return nil, 0, nil
		}
		s.Cores = append(s.Cores, cs)
		s.TotalTAT += cs.TAT
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}

	ir, err := sched.ScheduleInterconnectDelta(ch, ng, b.eval.Interconnect, func(n soc.Net) bool {
		if d.crippleInvalidation {
			return n.FromCore == changed || n.ToCore == changed
		}
		src, ok1 := ng.NodeIndex(n.FromCore + "." + n.FromPort)
		sink, ok2 := ng.NodeIndex(n.ToCore + "." + n.ToPort)
		if !ok1 || !ok2 {
			return true
		}
		return fwd[src] || bwd[sink]
	})
	if err != nil {
		return nil, 0, nil
	}

	e, err := f.finishEvaluation(root, sel, ng, s, b.forced, ir)
	if err != nil {
		return nil, 0, nil
	}
	return e, pristine, nil
}

// markReach seeds fwd with the changed core's output nodes and bwd with
// its input nodes, then floods: fwd along edges, bwd against them. Both
// sweeps run on the base graph INCLUDING its scheduling muxes — a
// superset of the graph any core's searches actually saw, so the marks
// over-approximate every search's exposure to the changed edges.
func markReach(g *ccg.Graph, fwd, bwd []bool, core string) {
	var fstack, bstack []int
	for i, n := range g.Nodes {
		if n.Core != core {
			continue
		}
		if n.Kind == ccg.CoreOut {
			fwd[i] = true
			fstack = append(fstack, i)
		} else if n.Kind == ccg.CoreIn {
			bwd[i] = true
			bstack = append(bstack, i)
		}
	}
	for len(fstack) > 0 {
		u := fstack[len(fstack)-1]
		fstack = fstack[:len(fstack)-1]
		for _, eid := range g.Out[u] {
			if v := g.Edges[eid].To; !fwd[v] {
				fwd[v] = true
				fstack = append(fstack, v)
			}
		}
	}
	rev := make([][]int, len(g.Nodes))
	for _, e := range g.Edges {
		rev[e.To] = append(rev[e.To], e.From)
	}
	for len(bstack) > 0 {
		u := bstack[len(bstack)-1]
		bstack = bstack[:len(bstack)-1]
		for _, v := range rev[u] {
			if !bwd[v] {
				bwd[v] = true
				bstack = append(bstack, v)
			}
		}
	}
}

// muxesCurrent reports whether the flow's forced-mux set still matches
// the one the base was built with; Improve appends muxes mid-walk, and a
// base missing one must not serve deltas.
func (d *DeltaEvaluator) muxesCurrent(b *deltaBase) bool {
	cur := d.f.ForcedMuxes
	if len(cur) != len(b.muxes) {
		return false
	}
	for i := range cur {
		if cur[i] != b.muxes[i] {
			return false
		}
	}
	return true
}

func muxesEqual(a, b []sched.Mux) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// diffCores counts differing entries between two canonical selections
// and names the last differing core.
func diffCores(a, b map[string]int) (int, string) {
	if len(a) != len(b) {
		return -1, ""
	}
	n, core := 0, ""
	for k, v := range a {
		if b[k] != v {
			n++
			core = k
		}
	}
	return n, core
}

// adopt stores an evaluation as a base under key, evicting the least
// recently used entry past MaxBases.
func (d *DeltaEvaluator) adopt(key string, sel map[string]int, e *Evaluation, pristine int, forced cell.Area) {
	selCopy := make(map[string]int, len(sel))
	for k, v := range sel {
		selCopy[k] = v
	}
	muxes := append([]ForcedMux(nil), d.f.ForcedMuxes...)
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.bases[key]; ok {
		d.touch(key)
	} else {
		max := d.MaxBases
		if max < 1 {
			max = 1
		}
		for len(d.order) >= max {
			oldest := d.order[0]
			d.order = d.order[1:]
			delete(d.bases, oldest)
		}
		d.order = append(d.order, key)
	}
	d.bases[key] = &deltaBase{sel: selCopy, eval: e, pristine: pristine, forced: forced, muxes: muxes}
}

// touch moves key to the most-recently-used end. Callers hold d.mu.
func (d *DeltaEvaluator) touch(key string) {
	for i, k := range d.order {
		if k == key {
			d.order = append(append(d.order[:i:i], d.order[i+1:]...), key)
			return
		}
	}
}
