package core

import (
	"fmt"

	"repro/internal/gate"
	"repro/internal/synth"
)

// ChipNetlist is a flattened gate-level model of the whole chip, used for
// the sequential fault simulations behind Table 3's "Orig." and "HSCAN"
// columns (the ones showing that a chip made of individually testable
// cores is still nearly untestable without chip-level DFT).
type ChipNetlist struct {
	Netlist *gate.Netlist
	// ScanEnable is the global scan-enable Input line when the netlist
	// was built with scan circuitry, else -1.
	ScanEnable int
}

// BuildChipNetlist flattens every core into one netlist, stitching the
// chip nets: core input pins are driven by their net source (first driver
// wins on a shared bus), chip PIs become Input gates, and chip POs are
// marked on the driving lines. With withScan, each core's HSCAN chain
// multiplexers are materialized, steered by one global scan-enable pin —
// this is the configuration fault-simulated for the HSCAN-only column.
func BuildChipNetlist(f *Flow, withScan bool) (*ChipNetlist, error) {
	ch := f.Chip
	out := &gate.Netlist{Name: ch.Name}
	cn := &ChipNetlist{Netlist: out, ScanEnable: -1}

	// Chip PI lines.
	piLine := map[string][]int{}
	for _, p := range ch.PIs {
		lines := make([]int, p.Width)
		for b := range lines {
			lines[b] = out.AddNamed(fmt.Sprintf("%s[%d]", p.Name, b), gate.Input)
		}
		piLine[p.Name] = lines
	}
	if withScan {
		cn.ScanEnable = out.AddNamed("scan_enable", gate.Input)
	}

	// Copy each core's netlist with an offset; remember per-core line
	// mapping for port stitching.
	type coreMap struct {
		offset int
		res    *synth.Result
	}
	maps := map[string]coreMap{}
	for _, c := range ch.Cores {
		art, ok := f.Cores[c.Name]
		if !ok {
			return nil, fmt.Errorf("core: %s not prepared", c.Name)
		}
		offset := len(out.Gates)
		for _, g := range art.Synth.Netlist.Gates {
			ng := gate.Gate{Type: g.Type, Name: c.Name + "/" + g.Name}
			ng.Fanin = make([]int, len(g.Fanin))
			for i, fi := range g.Fanin {
				ng.Fanin[i] = fi + offset
			}
			out.Gates = append(out.Gates, ng)
		}
		maps[c.Name] = coreMap{offset: offset, res: art.Synth}
	}

	// lineOf resolves a core port bit to a chip-level line.
	lineOf := func(coreName, port string, bit int) (int, error) {
		m, ok := maps[coreName]
		if !ok {
			return 0, fmt.Errorf("core: unknown core %s", coreName)
		}
		id, ok := m.res.LineOf(port, "", bit)
		if !ok {
			return 0, fmt.Errorf("core: no line for %s.%s[%d]", coreName, port, bit)
		}
		return id + m.offset, nil
	}

	// Stitch nets: replace each sink core's Input gates with buffers from
	// the driver lines.
	driven := map[int]bool{}
	for _, n := range ch.Nets {
		var srcLines []int
		var width int
		if n.FromCore == "" {
			srcLines = piLine[n.FromPort]
			width = len(srcLines)
		} else {
			c, _ := ch.CoreByName(n.FromCore)
			p, _ := c.RTL.PortByName(n.FromPort)
			width = p.Width
			for b := 0; b < width; b++ {
				id, err := lineOf(n.FromCore, n.FromPort, b)
				if err != nil {
					return nil, err
				}
				srcLines = append(srcLines, id)
			}
		}
		if n.ToCore == "" {
			// Chip PO.
			for b := 0; b < width; b++ {
				out.MarkPO(srcLines[b], fmt.Sprintf("%s[%d]", n.ToPort, b))
			}
			continue
		}
		sink, _ := ch.CoreByName(n.ToCore)
		sp, _ := sink.RTL.PortByName(n.ToPort)
		w := sp.Width
		if width < w {
			w = width
		}
		for b := 0; b < w; b++ {
			id, err := lineOf(n.ToCore, n.ToPort, b)
			if err != nil {
				return nil, err
			}
			if driven[id] {
				continue // shared bus: first driver wins
			}
			driven[id] = true
			out.Gates[id] = gate.Gate{Type: gate.Buf, Fanin: []int{srcLines[b]}, Name: out.Gates[id].Name}
		}
	}
	// Dangling core inputs (no net): leave as Input gates — they behave
	// as extra chip pins held by the tester.

	// Scan circuitry: patch DFF fanins along each HSCAN edge.
	if withScan {
		for _, c := range ch.TestableCores() {
			if c.Scan == nil {
				continue
			}
			m := maps[c.Name]
			for _, e := range c.Scan.Edges {
				if e.ToPort {
					continue // output taps need no state patch
				}
				if _, ok := c.RTL.RegByName(e.To); !ok {
					continue
				}
				for i := 0; i <= e.Dst.Hi-e.Dst.Lo; i++ {
					dstBit := e.Dst.Lo + i
					dffLine, ok := m.res.LineOf(e.To, "q", dstBit)
					if !ok {
						continue
					}
					dffLine += m.offset
					var srcLine int
					if e.FromPort {
						srcLine, ok = m.res.LineOf(e.From, "", e.Src.Lo+i)
					} else {
						srcLine, ok = m.res.LineOf(e.From, "q", e.Src.Lo+i)
					}
					if !ok {
						continue
					}
					srcLine += m.offset
					oldD := out.Gates[dffLine].Fanin[0]
					mux := out.Add(gate.Mux, oldD, srcLine, cn.ScanEnable)
					out.Gates[dffLine].Fanin[0] = mux
				}
			}
		}
	}

	if err := out.Validate(); err != nil {
		return nil, err
	}
	return cn, nil
}
