package core

import (
	"testing"

	"repro/internal/atpg"
	"repro/internal/systems"
)

// prepared caches the (expensive) flow over System 1 for this test binary.
var preparedS1 *Flow

func prepare(t testing.TB) *Flow {
	t.Helper()
	if preparedS1 != nil {
		return preparedS1
	}
	f, err := Prepare(systems.System1(), &Options{ATPG: &atpg.Options{BacktrackLimit: 30}})
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	preparedS1 = f
	return f
}

func TestPrepareSystem1(t *testing.T) {
	f := prepare(t)
	for _, name := range []string{"CPU", "PREPROCESSOR", "DISPLAY"} {
		c, ok := f.Chip.CoreByName(name)
		if !ok {
			t.Fatalf("missing core %s", name)
		}
		if c.Scan == nil {
			t.Errorf("%s: no HSCAN result", name)
		}
		if len(c.Versions) < 2 {
			t.Errorf("%s: version ladder has %d entries, want >= 2", name, len(c.Versions))
		}
		if c.Vectors == 0 {
			t.Errorf("%s: no test vectors generated", name)
		}
		art := f.Cores[name]
		if art.ATPG.Stats.TestEfficiency() < 85 {
			t.Errorf("%s: test efficiency %.1f%% too low (%+v)", name, art.ATPG.Stats.TestEfficiency(), art.ATPG.Stats)
		}
	}
	// Memory cores prepared with BIST plans, no versions.
	ram, _ := f.Chip.CoreByName("RAM")
	if len(ram.Versions) != 0 {
		t.Error("RAM should not have transparency versions")
	}
	if f.Cores["RAM"].BISTPlan == nil {
		t.Error("RAM missing BIST plan")
	}
}

func TestEvaluateSystem1(t *testing.T) {
	f := prepare(t)
	e, err := f.Evaluate()
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if e.TAT <= 0 {
		t.Fatalf("TAT = %d", e.TAT)
	}
	if len(e.Sched.Cores) != 3 {
		t.Fatalf("scheduled %d cores, want 3", len(e.Sched.Cores))
	}
	// The PREPROCESSOR's Address output is unobservable through other
	// cores (it feeds only the RAM): a system-level test mux must appear,
	// as in Figure 9.
	if e.MuxCells == 0 {
		t.Error("expected system-level test muxes (PREPROCESSOR Address, CPU memory pins)")
	}
	if e.CtrlCells == 0 {
		t.Error("expected a test controller")
	}
	// BIST runs concurrently and covers the 4KB memory space.
	if e.BISTCycles < 2*4096 {
		t.Errorf("BIST cycles = %d, want >= 8192 (4K words)", e.BISTCycles)
	}
}

func TestVersionSelectionChangesTAT(t *testing.T) {
	f := prepare(t)
	// All minimum-area versions.
	sel := map[string]int{"CPU": 0, "PREPROCESSOR": 0, "DISPLAY": 0}
	f.SelectVersions(sel)
	eMin, err := f.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	// All minimum-latency versions.
	for _, c := range f.Chip.TestableCores() {
		sel[c.Name] = len(c.Versions) - 1
	}
	f.SelectVersions(sel)
	eFast, err := f.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if eFast.LogicTAT >= eMin.LogicTAT {
		t.Errorf("min-latency TAT %d should beat min-area TAT %d", eFast.LogicTAT, eMin.LogicTAT)
	}
	if eFast.TransCells <= eMin.TransCells {
		t.Errorf("min-latency transparency area %d should exceed min-area %d", eFast.TransCells, eMin.TransCells)
	}
	// Restore.
	f.SelectVersions(map[string]int{"CPU": 0, "PREPROCESSOR": 0, "DISPLAY": 0})
}

func TestDisplayJustifiedThroughTwoCores(t *testing.T) {
	// The Section 3 scenario: the DISPLAY's address inputs are fed from
	// NUM through the PREPROCESSOR and then the CPU.
	f := prepare(t)
	f.SelectVersions(map[string]int{"CPU": 0, "PREPROCESSOR": 0, "DISPLAY": 0})
	e, err := f.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	var disp *struct {
		period int
		tat    int
	}
	for _, cs := range e.Sched.Cores {
		if cs.Core == "DISPLAY" {
			disp = &struct {
				period int
				tat    int
			}{cs.Period, cs.TAT}
			// ALo must arrive later than D: it crosses the CPU too.
			var aLo, d int
			for _, in := range cs.Inputs {
				switch in.Port {
				case "ALo":
					aLo = in.Arrival
				case "D":
					d = in.Arrival
				}
			}
			if aLo <= d {
				t.Errorf("ALo arrival %d should exceed D arrival %d (extra CPU hop)", aLo, d)
			}
		}
	}
	if disp == nil {
		t.Fatal("DISPLAY not scheduled")
	}
	if disp.period < 2 {
		t.Errorf("DISPLAY period = %d, want >= 2 (paths through two cores)", disp.period)
	}
}

func TestChipNetlistBuilds(t *testing.T) {
	f := prepare(t)
	cn, err := BuildChipNetlist(f, false)
	if err != nil {
		t.Fatalf("BuildChipNetlist: %v", err)
	}
	st := cn.Netlist.Stats()
	if st.POs == 0 {
		t.Error("chip netlist has no POs")
	}
	if st.FFs < 150 {
		t.Errorf("chip netlist FFs = %d, want the full system state", st.FFs)
	}
	if cn.ScanEnable != -1 {
		t.Error("scan enable present without scan mode")
	}
	// Scan-mode build adds the scan circuitry.
	cns, err := BuildChipNetlist(f, true)
	if err != nil {
		t.Fatalf("BuildChipNetlist(scan): %v", err)
	}
	if cns.ScanEnable < 0 {
		t.Error("scan enable missing in scan mode")
	}
	if len(cns.Netlist.Gates) <= len(cn.Netlist.Gates) {
		t.Error("scan-mode netlist should be larger")
	}
}

func TestAggregateStats(t *testing.T) {
	f := prepare(t)
	s := f.AggregateTestStats()
	if s.Faults == 0 || s.Detected == 0 {
		t.Fatalf("empty aggregate stats %+v", s)
	}
	if s.FaultCoverage() < 80 {
		t.Errorf("aggregate coverage %.1f%% suspiciously low", s.FaultCoverage())
	}
	if f.OrigCells() < 6000 {
		t.Errorf("orig cells = %d, want ~8000", f.OrigCells())
	}
	if f.HSCANCells() == 0 {
		t.Error("no HSCAN cells")
	}
}

func TestSubtract(t *testing.T) {
	got := subtract([]string{"a", "b", "c", "b"}, []string{"b"})
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("subtract = %v, want [a c]", got)
	}
	if got := subtract(nil, []string{"x"}); len(got) != 0 {
		t.Fatalf("subtract(nil) = %v", got)
	}
}
