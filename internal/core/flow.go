// Package core is the top-level SOCET flow, tying together everything the
// paper describes: core-level DFT (HSCAN insertion and transparency
// version generation, Sections 2-4), per-core combinational ATPG for the
// precomputed test sets, and chip-level DFT (CCG construction, test path
// scheduling, version selection support, controller generation, memory
// BIST; Section 5). The experiment drivers in cmd/ and the benchmarks in
// bench_test.go are thin wrappers over this package.
package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"repro/internal/atpg"
	"repro/internal/bist"
	"repro/internal/ccg"
	"repro/internal/cell"
	"repro/internal/ctrl"
	"repro/internal/hscan"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/soc"
	"repro/internal/synth"
	"repro/internal/trans"
)

// Options tunes the flow.
type Options struct {
	ATPG *atpg.Options
	// VectorOverride, if non-nil, supplies fixed per-core vector counts
	// instead of running ATPG (used by the worked-example benchmarks that
	// reproduce Section 3's arithmetic with the paper's 105 vectors).
	VectorOverride map[string]int
}

// Artifacts collects per-core flow products.
type Artifacts struct {
	Core     *soc.Core
	Synth    *synth.Result
	ATPG     *atpg.Result
	BISTPlan *bist.Plan // memory cores only
}

// OrigCells returns the core's pre-DFT mapped area.
func (a *Artifacts) OrigCells() int {
	area := a.Synth.Netlist.Area()
	return area.Cells()
}

// ForcedMux is a system-level test multiplexer placed by the design-space
// explorer (Section 5.2's fallback when upgrading core versions becomes
// costlier than a mux). Input muxes connect a PI to the core input; output
// muxes route the core output to a PO.
type ForcedMux struct {
	Core  string
	Port  string
	Input bool
}

// Flow is a prepared SOCET flow over one chip.
type Flow struct {
	Chip  *soc.Chip
	Cores map[string]*Artifacts
	Opts  Options
	// ForcedMuxes are applied to every CCG built by Evaluate.
	ForcedMuxes []ForcedMux
	// Baseline, when non-nil, is the pristine chip this flow's Chip was
	// derived from by fault injection (see Fork and internal/resil).
	// Degraded evaluation schedules it to learn which system-level test
	// muxes the healthy design actually provisioned — fixed hardware a
	// faulted chip cannot grow — and to diagnose missing interconnect.
	Baseline *soc.Chip
}

// Fork returns a flow over ch that shares this flow's prepared artifacts,
// options and forced muxes, recording the original chip as the degraded
// evaluation baseline. The receiver is not modified; this is how the
// fault-injection harness evaluates a perturbed copy of a chip without
// re-running synthesis, HSCAN insertion or ATPG.
func (f *Flow) Fork(ch *soc.Chip) *Flow {
	nf := *f
	nf.Chip = ch
	nf.Baseline = f.Baseline
	if nf.Baseline == nil {
		nf.Baseline = f.Chip
	}
	return &nf
}

// Prepare runs the core-level phase on every core: synthesis (area),
// HSCAN insertion, transparency version ladder, and combinational ATPG
// for the precomputed test set. Memory cores get synthesis plus a BIST
// plan. Every testable core starts at its minimum-area version.
func Prepare(ch *soc.Chip, opts *Options) (*Flow, error) {
	if err := ch.Validate(); err != nil {
		return nil, err
	}
	f := &Flow{Chip: ch, Cores: map[string]*Artifacts{}}
	if opts != nil {
		f.Opts = *opts
	}
	root := obs.Start(nil, "prepare")
	defer root.End()
	for _, c := range ch.Cores {
		art := &Artifacts{Core: c}
		sp := obs.Start(root, "synth/"+c.Name)
		sr, err := synth.Synthesize(c.RTL)
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("core: synthesize %s: %w", c.Name, err)
		}
		art.Synth = sr
		if c.Memory {
			art.BISTPlan = bist.PlanMemory(c)
			f.Cores[c.Name] = art
			continue
		}
		sp = obs.Start(root, "hscan/"+c.Name)
		scan, err := hscan.Insert(c.RTL)
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("core: hscan %s: %w", c.Name, err)
		}
		c.Scan = scan
		sp = obs.Start(root, "versions/"+c.Name)
		g, err := trans.Build(c.RTL, scan)
		if err != nil {
			sp.End()
			return nil, fmt.Errorf("core: rcg %s: %w", c.Name, err)
		}
		vs, err := trans.Versions(g)
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("core: versions %s: %w", c.Name, err)
		}
		c.Versions = vs
		c.Selected = 0
		if f.Opts.VectorOverride != nil {
			if v, ok := f.Opts.VectorOverride[c.Name]; ok {
				c.Vectors = v
				f.Cores[c.Name] = art
				continue
			}
		}
		sp = obs.Start(root, "atpg/"+c.Name)
		res, err := atpg.Generate(sr.Netlist, f.Opts.ATPG)
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("core: atpg %s: %w", c.Name, err)
		}
		art.ATPG = res
		c.Vectors = res.Stats.Vectors
		f.Cores[c.Name] = art
	}
	return f, nil
}

// Evaluation is one chip-level design point: the CCG, the schedule, the
// controller, and the area/time bottom line for the current core version
// selection.
type Evaluation struct {
	Graph      *ccg.Graph
	Sched      *sched.Result
	Controller *ctrl.Controller
	BISTCycles int
	// Interconnect is the explicit wire-test plan (an extension of the
	// paper's claim that SOCET exercises the interconnect; its cycles are
	// reported separately from the per-core TAT the paper tabulates).
	Interconnect *sched.InterconnectResult

	TransArea cell.Area // transparency logic of the selected versions
	MuxArea   cell.Area // system-level test multiplexers
	CtrlArea  cell.Area // test controller

	TransCells int
	MuxCells   int
	CtrlCells  int
	LogicTAT   int // sum of logic-core TATs
	// TAT is the chip test application time for the logic cores — the
	// quantity the paper's tables report ("we do not consider the memory
	// cores in this discussion", Section 5; their BIST runs concurrently
	// and is reported separately in BISTCycles).
	TAT int
}

// ChipDFTCells is the chip-level SOCET overhead (Table 2, columns 6-7).
func (e *Evaluation) ChipDFTCells() int {
	return e.TransCells + e.MuxCells + e.CtrlCells
}

// ChipDFTGrids is the same overhead in grid area units (used for the
// Table 2 percentage comparison, where cell *size* differences — e.g.
// boundary-scan cells versus simple muxes — matter).
func (e *Evaluation) ChipDFTGrids() int {
	return e.TransArea.Grids() + e.MuxArea.Grids() + e.CtrlArea.Grids()
}

// Evaluate builds the CCG for the chip's current version selection and
// schedules every core test.
func (f *Flow) Evaluate() (*Evaluation, error) {
	return f.evaluate(context.Background(), f.CurrentSelection())
}

// EvaluateCtx is Evaluate honoring ctx: cancellation is checked at phase
// boundaries (after CCG build and after scheduling) and surfaces as
// ctx.Err().
func (f *Flow) EvaluateCtx(ctx context.Context) (*Evaluation, error) {
	return f.evaluate(ctx, f.CurrentSelection())
}

// EvaluateSelection builds the CCG and schedule for an explicit version
// selection (core name -> version index) without touching the chip's own
// selection: cores missing from sel keep their current version,
// out-of-range indices are clamped exactly as SelectVersions would. The
// flow and chip are only read, so concurrent EvaluateSelection calls over
// one prepared flow are safe — this is the reentrant entry point the
// parallel design-space explorer uses.
func (f *Flow) EvaluateSelection(sel map[string]int) (*Evaluation, error) {
	return f.evaluate(context.Background(), f.canonSelection(sel))
}

// EvaluateSelectionCtx is EvaluateSelection honoring ctx; the parallel
// explorer threads its cancellation context through here.
func (f *Flow) EvaluateSelectionCtx(ctx context.Context, sel map[string]int) (*Evaluation, error) {
	return f.evaluate(ctx, f.canonSelection(sel))
}

// CurrentSelection returns the selected version index per testable core.
func (f *Flow) CurrentSelection() map[string]int {
	out := map[string]int{}
	for _, c := range f.Chip.TestableCores() {
		out[c.Name] = c.Selected
	}
	return out
}

// canonSelection completes sel against the current selection and clamps
// indices into each core's ladder, mirroring SelectVersions, so every
// distinct chip configuration has exactly one canonical map.
func (f *Flow) canonSelection(sel map[string]int) map[string]int {
	return canonSelectionOn(f.Chip, sel)
}

// canonSelectionOn canonicalizes sel against an explicit chip; degraded
// evaluation clamps the same requested selection against both the faulted
// chip and its pristine baseline (whose version ladders can differ when a
// fault stripped a core's transparency).
func canonSelectionOn(ch *soc.Chip, sel map[string]int) map[string]int {
	out := map[string]int{}
	for _, c := range ch.TestableCores() {
		idx, ok := sel[c.Name]
		if !ok {
			idx = c.Selected
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(c.Versions) {
			idx = len(c.Versions) - 1
		}
		out[c.Name] = idx
	}
	return out
}

// SelectionKey returns a canonical signature of the given selection plus
// the flow's current forced-mux set — the memoization key for evaluation
// caches: two calls yielding the same key produce numerically identical
// Evaluations. Cores are sorted by name; forced muxes are sorted too
// (placement order only affects tie-breaking among equal-arrival paths,
// never the reported times or areas).
func (f *Flow) SelectionKey(sel map[string]int) string {
	sel = f.canonSelection(sel)
	names := make([]string, 0, len(sel))
	for n := range sel {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s=%d;", n, sel[n])
	}
	if len(f.ForcedMuxes) > 0 {
		muxes := make([]string, 0, len(f.ForcedMuxes))
		for _, fm := range f.ForcedMuxes {
			dir := "out"
			if fm.Input {
				dir = "in"
			}
			muxes = append(muxes, fm.Core+"."+fm.Port+"."+dir)
		}
		sort.Strings(muxes)
		b.WriteString("|mux:")
		for _, m := range muxes {
			b.WriteString(m)
			b.WriteString(";")
		}
	}
	return b.String()
}

// evaluate is the selection-pure core of Evaluate/EvaluateSelection: sel
// must be canonical (every testable core present, indices in range). It
// must not write any state reachable from f — the parallel explorer runs
// many evaluations over one flow at once. Cancellation is checked at the
// phase boundaries; a cancelled evaluation returns ctx.Err().
func (f *Flow) evaluate(ctx context.Context, sel map[string]int) (*Evaluation, error) {
	e, _, _, err := f.evaluateFull(ctx, sel)
	return e, err
}

// evaluateFull is evaluate exposing the two extra facts the delta
// evaluator snapshots with a base: the pristine edge count (edges in the
// graph before scheduling appended any test muxes — the splice point of
// ccg.CloneWithVersion) and the forced-mux area.
func (f *Flow) evaluateFull(ctx context.Context, sel map[string]int) (*Evaluation, int, cell.Area, error) {
	root := obs.Start(nil, "evaluate")
	defer root.End()
	var noArea cell.Area
	if err := ctx.Err(); err != nil {
		return nil, 0, noArea, err
	}
	g, forcedArea, err := f.buildGraph(root, f.Chip, sel)
	if err != nil {
		return nil, 0, noArea, err
	}
	pristine := g.EdgeCount()
	if err := ctx.Err(); err != nil {
		return nil, 0, noArea, err
	}
	s, err := sched.Schedule(f.Chip, g)
	if err != nil {
		return nil, 0, noArea, err
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, noArea, err
	}
	e, err := f.finishEvaluation(root, sel, g, s, forcedArea, nil)
	return e, pristine, forcedArea, err
}

// buildGraph assembles the CCG for ch under sel and wires in the flow's
// forced muxes, returning the graph and the forced-mux area.
func (f *Flow) buildGraph(root *obs.Span, ch *soc.Chip, sel map[string]int) (*ccg.Graph, cell.Area, error) {
	sp := obs.Start(root, "ccg/build")
	g, err := ccg.BuildSelection(ch, sel)
	sp.End()
	var forcedArea cell.Area
	if err != nil {
		return nil, forcedArea, err
	}
	for _, fm := range f.ForcedMuxes {
		width, err := applyForcedMux(ch, g, fm)
		if err != nil {
			return nil, forcedArea, err
		}
		forcedArea.Add(cell.Mux2, width)
	}
	return g, forcedArea, nil
}

// finishEvaluation replays the schedule for physical consistency and fills
// in the controller, areas, interconnect plan and bottom line. It is
// shared by the full, degraded and delta evaluation paths; for the
// degraded path, s covers only the testable subset. ir, when non-nil, is
// a precomputed interconnect plan (the delta evaluator reuses unaffected
// nets); nil schedules the interconnect from scratch.
func (f *Flow) finishEvaluation(root *obs.Span, sel map[string]int, g *ccg.Graph, s *sched.Result, forcedArea cell.Area, ir *sched.InterconnectResult) (*Evaluation, error) {
	if err := sched.Validate(s); err != nil {
		return nil, fmt.Errorf("core: schedule failed replay validation: %w", err)
	}
	e := &Evaluation{Graph: g, Sched: s}
	e.MuxArea = forcedArea
	e.MuxArea.AddArea(s.MuxArea)
	sp := obs.Start(root, "ctrl/generate")
	e.Controller = ctrl.GenerateSelection(f.Chip, s, sel)
	sp.End()
	e.CtrlArea = e.Controller.Area
	for _, c := range f.Chip.TestableCores() {
		if v := c.VersionAt(sel[c.Name]); v != nil {
			e.TransArea.AddArea(v.Area)
		}
	}
	e.TransCells = e.TransArea.Cells()
	e.MuxCells = e.MuxArea.Cells()
	e.CtrlCells = e.CtrlArea.Cells()
	if ir == nil {
		sp = obs.Start(root, "interconnect/sched")
		var err error
		ir, err = sched.ScheduleInterconnect(f.Chip, g)
		sp.End()
		if err != nil {
			return nil, err
		}
	}
	e.Interconnect = ir
	_, bistCycles, _ := bist.PlanChip(f.Chip)
	e.BISTCycles = bistCycles
	e.LogicTAT = s.TotalTAT
	e.TAT = s.TotalTAT
	obs.C("core.evaluations").Inc()
	return e, nil
}

// applyForcedMux wires one explorer-placed test mux into the CCG and
// returns the muxed port's width. The chip pin is chosen for width
// compatibility (the narrowest pin that still covers the port, else the
// widest available); a chip with no PI (input mux) or no PO (output mux)
// is an error rather than a silent no-op.
func applyForcedMux(ch *soc.Chip, g *ccg.Graph, fm ForcedMux) (int, error) {
	target, ok := g.NodeIndex(fm.Core + "." + fm.Port)
	if !ok {
		return 0, fmt.Errorf("core: forced mux on unknown port %s.%s", fm.Core, fm.Port)
	}
	c, ok := ch.CoreByName(fm.Core)
	if !ok {
		return 0, fmt.Errorf("core: forced mux on unknown core %s", fm.Core)
	}
	width := 1
	if p, ok := c.RTL.PortByName(fm.Port); ok {
		width = p.Width
	}
	if fm.Input {
		pi, err := pickChipPin(g, ch.PIs, width)
		if err != nil {
			return 0, fmt.Errorf("core: forced input mux %s.%s: %w", fm.Core, fm.Port, err)
		}
		g.AddTestMux(pi, target)
	} else {
		po, err := pickChipPin(g, ch.POs, width)
		if err != nil {
			return 0, fmt.Errorf("core: forced output mux %s.%s: %w", fm.Core, fm.Port, err)
		}
		g.AddTestMux(target, po)
	}
	obs.C("core.forced_muxes").Inc()
	return width, nil
}

// pickChipPin selects the chip pin a forced test mux attaches to; the
// policy (narrowest covering pin, widest fallback, name tie-break) now
// lives in sched.PickPin so created and forced muxes can never disagree.
func pickChipPin(g *ccg.Graph, pins []soc.Pin, width int) (int, error) {
	return sched.PickPin(g, pins, width)
}

// Fingerprint returns a cheap structural signature of the flow's chip:
// name, pins, per-core version ladders (count, area and latency per
// version, vector count) and nets. Two flows over structurally identical
// chips fingerprint equal; any difference that could change an
// evaluation's numbers changes the fingerprint. ForcedMuxes are
// deliberately excluded — they mutate during explore.Improve and are
// already part of every SelectionKey — so a cache can stay bound to one
// flow across mux placements while still detecting cross-chip reuse.
func (f *Flow) Fingerprint() uint64 {
	h := fnv.New64a()
	w := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	wi := func(v int) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		h.Write(b[:])
	}
	w(f.Chip.Name)
	for _, p := range f.Chip.PIs {
		w(p.Name)
		wi(p.Width)
	}
	for _, p := range f.Chip.POs {
		w(p.Name)
		wi(p.Width)
	}
	for _, c := range f.Chip.Cores {
		w(c.Name)
		if c.Memory {
			w("mem")
		}
		if c.Disabled != "" {
			w("off:" + c.Disabled)
		}
		wi(c.Vectors)
		wi(len(c.Versions))
		for _, v := range c.Versions {
			wi(v.Area.Cells())
			for _, pairs := range [][]trans.Pair{v.JustPairs(), v.PropPairs()} {
				for _, p := range pairs {
					w(p.In + ">" + p.Out)
					wi(p.Latency)
				}
			}
		}
	}
	for _, n := range f.Chip.Nets {
		w(n.FromCore + "." + n.FromPort + ">" + n.ToCore + "." + n.ToPort)
	}
	return h.Sum64()
}

// SelectVersions applies a version index per core (missing cores keep
// their selection). Out-of-range indices are clamped.
func (f *Flow) SelectVersions(sel map[string]int) {
	for _, c := range f.Chip.TestableCores() {
		if idx, ok := sel[c.Name]; ok {
			if idx < 0 {
				idx = 0
			}
			if idx >= len(c.Versions) {
				idx = len(c.Versions) - 1
			}
			c.Selected = idx
		}
	}
}

// HSCANCells returns the total HSCAN insertion cost over testable cores
// (Table 2, column 4).
func (f *Flow) HSCANCells() int {
	n := 0
	for _, c := range f.Chip.TestableCores() {
		if c.Scan != nil {
			a := c.Scan.Area
			n += a.Cells()
		}
	}
	return n
}

// HSCANGrids returns the HSCAN insertion cost in grid units.
func (f *Flow) HSCANGrids() int {
	n := 0
	for _, c := range f.Chip.TestableCores() {
		if c.Scan != nil {
			a := c.Scan.Area
			n += a.Grids()
		}
	}
	return n
}

// OrigGrids returns the chip's pre-DFT grid area over testable cores.
func (f *Flow) OrigGrids() int {
	n := 0
	for _, c := range f.Chip.TestableCores() {
		if art, ok := f.Cores[c.Name]; ok {
			a := art.Synth.Netlist.Area()
			n += a.Grids()
		}
	}
	return n
}

// OrigCells returns the chip's pre-DFT area over testable cores (Table 2,
// column 2).
func (f *Flow) OrigCells() int {
	n := 0
	for _, c := range f.Chip.TestableCores() {
		if art, ok := f.Cores[c.Name]; ok {
			n += art.OrigCells()
		}
	}
	return n
}

// AggregateTestStats sums the per-core ATPG statistics; under both
// FSCAN-BSCAN and SOCET the full precomputed test set of each core is
// applied losslessly, so the chip-level fault coverage equals this
// aggregate (Table 3's matching FC columns).
func (f *Flow) AggregateTestStats() atpg.Stats {
	var s atpg.Stats
	for _, c := range f.Chip.TestableCores() {
		art, ok := f.Cores[c.Name]
		if !ok || art.ATPG == nil {
			continue
		}
		s.Faults += art.ATPG.Stats.Faults
		s.Detected += art.ATPG.Stats.Detected
		s.Untestable += art.ATPG.Stats.Untestable
		s.Aborted += art.ATPG.Stats.Aborted
		s.Vectors += art.ATPG.Stats.Vectors
	}
	return s
}

// Percent formats part/whole as a percentage.
func Percent(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}
