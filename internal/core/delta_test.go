package core_test

// Differential tests of the incremental delta evaluator: across every
// socgen topology family, a delta evaluation after a single-core version
// flip must be bit-identical — every reported number and the canonical
// schedule signature — to a from-scratch EvaluateSelection. The tamper
// test then cripples the invalidation on purpose and requires the same
// equivalence check to catch the stale schedules, proving the check has
// teeth.

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/proptest"
	"repro/internal/socgen"
)

func deltaFlow(t *testing.T, p socgen.Params) *core.Flow {
	t.Helper()
	ch, err := socgen.Generate(p)
	if err != nil {
		t.Fatalf("socgen: %v", err)
	}
	vecs := map[string]int{}
	for i, c := range ch.Cores {
		vecs[c.Name] = 7 + i%19
	}
	f, err := core.Prepare(ch, &core.Options{VectorOverride: vecs})
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	return f
}

func TestDeltaMatchesFullAcrossTopologies(t *testing.T) {
	for _, topo := range []socgen.Topology{socgen.Chain, socgen.Mesh, socgen.RandomDAG, socgen.Hub} {
		topo := topo
		t.Run(topo.String(), func(t *testing.T) {
			t.Parallel()
			f := deltaFlow(t, socgen.Params{Seed: 7, Cores: 10, Topology: topo})
			d := core.NewDeltaEvaluator(f)
			base := f.CurrentSelection()
			if _, err := d.Rebase(context.Background(), base); err != nil {
				t.Fatalf("rebase: %v", err)
			}
			flips := 0
			for _, c := range f.Chip.TestableCores() {
				for v := 0; v < len(c.Versions); v++ {
					if v == base[c.Name] {
						continue
					}
					sel := map[string]int{}
					for k, vv := range base {
						sel[k] = vv
					}
					sel[c.Name] = v
					de, err := d.EvaluateSelection(sel)
					if err != nil {
						t.Fatalf("delta evaluate %s=V%d: %v", c.Name, v+1, err)
					}
					fe, err := f.EvaluateSelection(sel)
					if err != nil {
						t.Fatalf("full evaluate %s=V%d: %v", c.Name, v+1, err)
					}
					if err := proptest.EqualEvaluations(de, fe); err != nil {
						t.Fatalf("flip %s=V%d: delta diverges from full: %v", c.Name, v+1, err)
					}
					flips++
				}
			}
			if flips == 0 {
				t.Fatal("no version flips exercised; generator produced single-version ladders only")
			}
			// The equivalence must hold because the delta path ran, not
			// because every flip quietly fell back to a full evaluation.
			if st := d.Stats(); st.Deltas == 0 {
				t.Fatalf("all %d flips fell back to full evaluation (%+v); the delta path was never exercised", flips, st)
			}
		})
	}
}

// TestDeltaWalk drives the evaluator the way the explorer does — each
// accepted candidate becomes the next base — rather than always deltaing
// off one pinned base.
func TestDeltaWalk(t *testing.T) {
	f := deltaFlow(t, socgen.Params{Seed: 13, Cores: 12, Topology: socgen.RandomDAG})
	d := core.NewDeltaEvaluator(f)
	sel := f.CurrentSelection()
	if _, err := d.Rebase(context.Background(), sel); err != nil {
		t.Fatalf("rebase: %v", err)
	}
	cores := f.Chip.TestableCores()
	for i := 0; i < 8; i++ {
		c := cores[(i*5)%len(cores)]
		if len(c.Versions) < 2 {
			continue
		}
		sel[c.Name] = (sel[c.Name] + 1) % len(c.Versions)
		de, err := d.EvaluateSelection(sel)
		if err != nil {
			t.Fatalf("step %d: delta: %v", i, err)
		}
		fe, err := f.EvaluateSelection(sel)
		if err != nil {
			t.Fatalf("step %d: full: %v", i, err)
		}
		if err := proptest.EqualEvaluations(de, fe); err != nil {
			t.Fatalf("step %d (%s): %v", i, c.Name, err)
		}
	}
	if st := d.Stats(); st.Deltas == 0 {
		t.Fatalf("explorer-style walk never took the delta path: %+v", st)
	}
}

// TestDeltaZeroDiffReturnsBase asserts a re-request of the base
// selection is a registry hit returning the identical evaluation.
func TestDeltaZeroDiffReturnsBase(t *testing.T) {
	f := deltaFlow(t, socgen.Params{Seed: 3, Cores: 6, Topology: socgen.Chain})
	d := core.NewDeltaEvaluator(f)
	base := f.CurrentSelection()
	e1, err := d.Rebase(context.Background(), base)
	if err != nil {
		t.Fatalf("rebase: %v", err)
	}
	e2, err := d.EvaluateSelection(base)
	if err != nil {
		t.Fatalf("re-evaluate: %v", err)
	}
	if e1 != e2 {
		t.Fatal("zero-diff evaluation did not return the cached base evaluation")
	}
}

// TestDeltaTamperDetected proves the equivalence check catches a
// stale-invalidation bug: with the invalidation BFS crippled, only the
// flipped core is recomputed and downstream cores keep stale schedules.
// On a chain topology a mid-chain version flip must change some other
// core's path timings, so EqualEvaluations has to report a mismatch for
// at least one flip. If the crippled evaluator still matches everywhere,
// the check could not distinguish correct from broken invalidation.
func TestDeltaTamperDetected(t *testing.T) {
	f := deltaFlow(t, socgen.Params{Seed: 7, Cores: 10, Topology: socgen.Chain})
	d := core.NewDeltaEvaluator(f)
	d.SetCrippleInvalidation(true)
	base := f.CurrentSelection()
	if _, err := d.Rebase(context.Background(), base); err != nil {
		t.Fatalf("rebase: %v", err)
	}
	d.AdoptCandidates = false // keep every flip deltaing off the stale base
	caught := false
	for _, c := range f.Chip.TestableCores() {
		if len(c.Versions) < 2 {
			continue
		}
		sel := map[string]int{}
		for k, v := range base {
			sel[k] = v
		}
		sel[c.Name] = (base[c.Name] + 1) % len(c.Versions)
		de, err := d.EvaluateSelection(sel)
		if err != nil {
			t.Fatalf("crippled delta evaluate (flip %s): %v", c.Name, err)
		}
		fe, err := f.EvaluateSelection(sel)
		if err != nil {
			t.Fatalf("full evaluate (flip %s): %v", c.Name, err)
		}
		if proptest.EqualEvaluations(de, fe) != nil {
			caught = true
			break
		}
	}
	if st := d.Stats(); st.Deltas == 0 {
		t.Fatalf("crippled evaluator never took the delta path (%+v); the tamper test proved nothing", st)
	}
	if !caught {
		t.Fatal("crippled invalidation went undetected: every flip still matched the full evaluation, so the equivalence check has no teeth on this chip")
	}
}
