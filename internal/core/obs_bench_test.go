package core

import (
	"testing"

	"repro/internal/obs"
)

// The tracing/metrics layer must be effectively free when disabled: the
// acceptance bar for internal/obs is <2% overhead on Flow.Evaluate with
// observability off. Compare:
//
//	go test ./internal/core -bench 'Evaluate' -benchtime 20x
func BenchmarkEvaluateObsDisabled(b *testing.B) {
	f := prepare(b)
	obs.Disable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Evaluate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateObsEnabled(b *testing.B) {
	f := prepare(b)
	obs.Enable(obs.DefaultTraceCap)
	defer obs.Disable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Evaluate(); err != nil {
			b.Fatal(err)
		}
	}
}
