package core

import (
	"strings"
	"testing"

	"repro/internal/ccg"
)

func buildGraph(t *testing.T, f *Flow) *ccg.Graph {
	t.Helper()
	g, err := ccg.Build(f.Chip)
	if err != nil {
		t.Fatalf("ccg.Build: %v", err)
	}
	return g
}

func TestForcedMuxUnknownTarget(t *testing.T) {
	f := prepare(t)
	g := buildGraph(t, f)
	if _, err := applyForcedMux(f.Chip, g, ForcedMux{Core: "CPU", Port: "NoSuchPort", Input: true}); err == nil {
		t.Error("forced mux on an unknown port should error")
	}
	if _, err := applyForcedMux(f.Chip, g, ForcedMux{Core: "NOCORE", Port: "Data", Input: true}); err == nil {
		t.Error("forced mux on an unknown core should error")
	}
}

func TestForcedMuxNoChipPins(t *testing.T) {
	f := prepare(t)
	g := buildGraph(t, f)
	// Same artifacts, but a chip view without PIs/POs: attaching a test
	// mux must fail loudly instead of silently skipping the wire.
	bare := *f.Chip
	bare.PIs, bare.POs = nil, nil
	f2 := &Flow{Chip: &bare, Cores: f.Cores}
	if _, err := applyForcedMux(f2.Chip, g, ForcedMux{Core: "CPU", Port: "Data", Input: true}); err == nil {
		t.Error("input mux with no chip PIs should error")
	} else if !strings.Contains(err.Error(), "no pins") {
		t.Errorf("unexpected error: %v", err)
	}
	if _, err := applyForcedMux(f2.Chip, g, ForcedMux{Core: "CPU", Port: "AddrLo", Input: false}); err == nil {
		t.Error("output mux with no chip POs should error")
	}
}

func TestPickChipPinWidthCompatibility(t *testing.T) {
	f := prepare(t)
	g := buildGraph(t, f)
	// System 1 PIs: Video(1), NUM(8), Reset(1).
	pins := f.Chip.PIs
	wantIdx := func(t *testing.T, name string) int {
		t.Helper()
		idx, ok := g.NodeIndex(name)
		if !ok {
			t.Fatalf("pin %s not in CCG", name)
		}
		return idx
	}
	cases := []struct {
		width int
		want  string
		why   string
	}{
		{8, "NUM", "narrowest pin covering an 8-bit port"},
		{1, "Reset", "1-bit tie between Reset and Video breaks by name"},
		{16, "NUM", "nothing covers 16 bits, widest pin wins"},
	}
	for _, tc := range cases {
		got, err := pickChipPin(g, pins, tc.width)
		if err != nil {
			t.Fatalf("width %d: %v", tc.width, err)
		}
		if want := wantIdx(t, tc.want); got != want {
			t.Errorf("width %d: picked node %d, want %s (%s)", tc.width, got, tc.want, tc.why)
		}
	}
	if _, err := pickChipPin(g, nil, 1); err == nil {
		t.Error("empty pin list should error")
	}
}

func TestEvaluateWithForcedMux(t *testing.T) {
	f := prepare(t)
	base, err := f.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	f.ForcedMuxes = []ForcedMux{{Core: "CPU", Port: "Data", Input: true}}
	defer func() { f.ForcedMuxes = nil }()
	e, err := f.Evaluate()
	if err != nil {
		t.Fatalf("Evaluate with forced mux: %v", err)
	}
	if e.MuxCells <= base.MuxCells {
		t.Errorf("forced mux added no area: %d vs baseline %d", e.MuxCells, base.MuxCells)
	}
	// And an invalid forced mux surfaces as an Evaluate error.
	f.ForcedMuxes = []ForcedMux{{Core: "CPU", Port: "Bogus", Input: true}}
	if _, err := f.Evaluate(); err == nil {
		t.Error("Evaluate should propagate the forced-mux error")
	}
}
