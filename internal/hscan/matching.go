package hscan

// matcher is a Hopcroft-Karp maximum bipartite matcher. Left vertices are
// registers in their role as scan predecessors; right vertices are the
// same registers as scan successors. A maximum matching is a minimum path
// cover of the register set by reusable scan paths, minimizing the number
// of inserted test multiplexers.
type matcher struct {
	n      int
	adj    [][]int
	matchL []int
	matchR []int
	dist   []int
}

func newMatcher(n int) *matcher {
	m := &matcher{
		n:      n,
		adj:    make([][]int, n),
		matchL: make([]int, n),
		matchR: make([]int, n),
		dist:   make([]int, n+1),
	}
	for i := range m.matchL {
		m.matchL[i] = -1
		m.matchR[i] = -1
	}
	return m
}

// addEdge connects left vertex u to right vertex v. Edges added earlier
// are explored first, so callers can encode preference by insertion order.
func (m *matcher) addEdge(u, v int) {
	m.adj[u] = append(m.adj[u], v)
}

const infDist = 1 << 30

// maxMatching computes a maximum matching and returns its size.
func (m *matcher) maxMatching() int {
	size := 0
	for m.bfs() {
		for u := 0; u < m.n; u++ {
			if m.matchL[u] < 0 && m.dfs(u) {
				size++
			}
		}
	}
	return size
}

func (m *matcher) bfs() bool {
	queue := make([]int, 0, m.n)
	for u := 0; u < m.n; u++ {
		if m.matchL[u] < 0 {
			m.dist[u] = 0
			queue = append(queue, u)
		} else {
			m.dist[u] = infDist
		}
	}
	m.dist[m.n] = infDist // sentinel for "free right vertex reached"
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if m.dist[u] >= m.dist[m.n] {
			continue
		}
		for _, v := range m.adj[u] {
			w := m.matchR[v]
			if w < 0 {
				if m.dist[m.n] == infDist {
					m.dist[m.n] = m.dist[u] + 1
				}
			} else if m.dist[w] == infDist {
				m.dist[w] = m.dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return m.dist[m.n] != infDist
}

func (m *matcher) dfs(u int) bool {
	for _, v := range m.adj[u] {
		w := m.matchR[v]
		if w < 0 || (m.dist[w] == m.dist[u]+1 && m.dfs(w)) {
			m.matchL[u] = v
			m.matchR[v] = u
			return true
		}
	}
	m.dist[u] = infDist
	return false
}
