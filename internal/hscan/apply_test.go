package hscan_test

import (
	"testing"

	"repro/internal/hscan"
	"repro/internal/rtl"
	"repro/internal/rtlsim"
	"repro/internal/synth"
	"repro/internal/systems"
	"repro/internal/trans"
)

// Apply materializes the scan hardware; the applied core must validate,
// synthesize, and make every scan path physically simulatable.
func TestApplyCPU(t *testing.T) {
	c := systems.CPU()
	res, err := hscan.Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := hscan.Apply(c, res)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ap.Core.PortByName(ap.ScanEn); !ok {
		t.Fatal("no scan-enable port added")
	}
	// The applied core synthesizes.
	sr, err := synth.Synthesize(ap.Core)
	if err != nil {
		t.Fatalf("applied core does not synthesize: %v", err)
	}
	// Mission-mode equivalence spot check: with ScanEn=0 the applied core
	// behaves like the original on its registers.
	orig, err := rtlsim.New(c)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := rtlsim.New(ap.Core)
	if err != nil {
		t.Fatal(err)
	}
	mod.SetInput(ap.ScanEn, 0)
	for cyc := 0; cyc < 8; cyc++ {
		v := uint64(cyc*37 + 5)
		orig.SetInput("Data", v)
		mod.SetInput("Data", v)
		orig.Step()
		mod.Step()
	}
	for _, r := range c.Regs {
		if orig.Reg(r.Name) != mod.Reg(r.Name) {
			t.Errorf("mission-mode divergence at %s: %#x vs %#x", r.Name, orig.Reg(r.Name), mod.Reg(r.Name))
		}
	}
	_ = sr
}

// With the scan hardware applied, every previously-virtual scan edge is a
// real path: each created edge moves a value through its inserted mux in
// one cycle when ScanEn=1.
func TestAppliedScanEdgesPhysical(t *testing.T) {
	for _, name := range []string{"CPU", "PREPROCESSOR", "DISPLAY", "GCD"} {
		c := coreByName(name)
		res, err := hscan.Insert(c)
		if err != nil {
			t.Fatal(err)
		}
		ap, err := hscan.Apply(c, res)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for ei, e := range res.Edges {
			if !e.Created || e.ToPort {
				continue
			}
			mux := ap.MuxFor[ei]
			if mux == "" {
				t.Errorf("%s: created edge %d has no inserted mux", name, ei)
				continue
			}
			sim, err := rtlsim.New(ap.Core)
			if err != nil {
				t.Fatal(err)
			}
			sim.SetInput(ap.ScanEn, 1)
			payload := uint64(0x5A) & ((1 << uint(e.Src.Width())) - 1)
			if e.FromPort {
				if err := sim.SetInput(e.From, payload<<uint(e.Src.Lo)); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := sim.SetReg(e.From, payload<<uint(e.Src.Lo)); err != nil {
					t.Fatal(err)
				}
			}
			if r, _ := ap.Core.RegByName(e.To); r.HasLoad {
				sim.ForceLoad(e.To, true)
			}
			sim.Step()
			got := (sim.Reg(e.To) >> uint(e.Dst.Lo)) & ((1 << uint(e.Src.Width())) - 1)
			if got != payload {
				t.Errorf("%s: scan edge %s->%s via %s: sent %#x got %#x", name, e.From, e.To, mux, payload, got)
			}
		}
	}
}

// The RCG built over the applied core no longer needs virtual scan-mux
// edges: transparency paths that used them become physically verifiable.
func TestAppliedCoreTransparencyVerifies(t *testing.T) {
	c := systems.CPU()
	res, err := hscan.Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := hscan.Apply(c, res)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the RCG on the applied core: the inserted muxes now appear
	// as ordinary paths.
	g, err := trans.Build(ap.Core, nil)
	if err != nil {
		t.Fatal(err)
	}
	verified, skipped, err := rtlsim.VerifyAllEdges(ap.Core, g, 0x1234)
	if err != nil {
		t.Fatalf("verification on applied core: %v", err)
	}
	if skipped != 0 {
		t.Errorf("applied core still has %d virtual edges", skipped)
	}
	if verified == 0 {
		t.Error("nothing verified")
	}
}

func coreByName(name string) *rtl.Core {
	switch name {
	case "CPU":
		return systems.CPU()
	case "PREPROCESSOR":
		return systems.Preprocessor()
	case "DISPLAY":
		return systems.Display()
	case "GCD":
		return systems.GCD()
	}
	return nil
}
