package hscan_test

import (
	"fmt"
	"strings"

	"repro/internal/hscan"
	"repro/internal/systems"
)

// ExampleInsert threads the PREPROCESSOR's registers into HSCAN scan
// chains, reusing the existing mux paths of its measurement pipeline.
func ExampleInsert() {
	prep := systems.Preprocessor()
	res, _ := hscan.Insert(prep)
	fmt.Printf("depth %d, %d cycles per vector\n", res.MaxDepth, res.ScanCyclesPerVector())
	for _, ch := range res.Chains {
		fmt.Println(strings.Join(ch.Regs, " -> "))
	}
	// Output:
	// depth 5, 6 cycles per vector
	// ADDRCNT
	// EOCREG
	// SYNC -> FILT -> WIDTH -> THRESH -> OUTREG
}
