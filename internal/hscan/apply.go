package hscan

import (
	"fmt"

	"repro/internal/rtl"
)

// Applied is the result of materializing an HSCAN insertion into RTL.
type Applied struct {
	Core *rtl.Core
	// ScanEn is the added scan-enable control input steering every
	// inserted test multiplexer.
	ScanEn string
	// MuxFor maps a created scan path (by its index in Result.Edges) to
	// the inserted multiplexer's name.
	MuxFor map[int]string
}

// Apply rewrites the core with the scan hardware the insertion decided
// on: every created scan path (test-mux link, scan-in tap, partial-cover
// filler) becomes a real 2-to-1 multiplexer in front of the destination
// bits, steered by a new ScanEn control input. Reused mux/direct paths
// need no structural change (their activation is select forcing, which
// the test controller — or rtlsim.ForceMux — provides).
//
// The applied core is what the core provider would actually ship; on it,
// every scan path is physical, so transparency paths that ride the scan
// muxes can be simulated and verified end to end.
func Apply(c *rtl.Core, res *Result) (*Applied, error) {
	// Deep-copy the core structure.
	nc := &rtl.Core{
		Name:  c.Name,
		Ports: append([]rtl.Port(nil), c.Ports...),
		Regs:  append([]rtl.Register(nil), c.Regs...),
		Muxes: append([]rtl.Mux(nil), c.Muxes...),
		Units: append([]rtl.Unit(nil), c.Units...),
		Conns: append([]rtl.Conn(nil), c.Conns...),
	}
	const scanEn = "ScanEn"
	if _, exists := c.PortByName(scanEn); exists {
		return nil, fmt.Errorf("hscan: core %s already has a %s port", c.Name, scanEn)
	}
	nc.Ports = append(nc.Ports, rtl.Port{Name: scanEn, Dir: rtl.In, Width: 1, Control: true})
	ap := &Applied{Core: nc, ScanEn: scanEn, MuxFor: map[int]string{}}

	muxN := 0
	for ei, e := range res.Edges {
		if !e.Created {
			continue
		}
		if e.ToPort {
			// Output-tap muxes would replace the PO driver; the surrogate
			// systems always have register-driven outputs, so an added
			// output tap only arises when a chain tail has no existing
			// path — mux the output pin.
			if err := insertMux(nc, &muxN, ap, ei, e, rtl.Endpoint{Comp: e.To, Lo: e.Dst.Lo, Hi: e.Dst.Hi}, e.Src); err != nil {
				return nil, err
			}
			continue
		}
		dst := rtl.Endpoint{Comp: e.To, Pin: "d", Lo: e.Dst.Lo, Hi: e.Dst.Hi}
		if err := insertMux(nc, &muxN, ap, ei, e, dst, e.Src); err != nil {
			return nil, err
		}
	}
	if err := nc.Validate(); err != nil {
		return nil, fmt.Errorf("hscan: applied core invalid: %w", err)
	}
	return ap, nil
}

// insertMux splices a scan mux in front of dst: original drivers feed
// in0, the scan source feeds in1, ScanEn selects.
func insertMux(nc *rtl.Core, muxN *int, ap *Applied, edgeIdx int, e Edge, dst, src rtl.Endpoint) error {
	w := dst.Width()
	name := fmt.Sprintf("tmscan%d", *muxN)
	*muxN++
	nc.Muxes = append(nc.Muxes, rtl.Mux{Name: name, Width: w, NumIn: 2})
	// Rewire original drivers of dst bits onto in0, splitting any driver
	// that straddles the scan slice.
	var rewired []rtl.Conn
	for i := 0; i < len(nc.Conns); i++ {
		cn := nc.Conns[i]
		if cn.To.Comp != dst.Comp || cn.To.Pin != dst.Pin || cn.To.Hi < dst.Lo || cn.To.Lo > dst.Hi {
			rewired = append(rewired, cn)
			continue
		}
		// Part below the slice keeps its original sink.
		if cn.To.Lo < dst.Lo {
			n := dst.Lo - cn.To.Lo
			rewired = append(rewired, rtl.Conn{
				From: rtl.Endpoint{Comp: cn.From.Comp, Pin: cn.From.Pin, Lo: cn.From.Lo, Hi: cn.From.Lo + n - 1},
				To:   rtl.Endpoint{Comp: cn.To.Comp, Pin: cn.To.Pin, Lo: cn.To.Lo, Hi: dst.Lo - 1},
			})
		}
		// Overlapping part goes to in0.
		ovLo := max(cn.To.Lo, dst.Lo)
		ovHi := min(cn.To.Hi, dst.Hi)
		rewired = append(rewired, rtl.Conn{
			From: rtl.Endpoint{Comp: cn.From.Comp, Pin: cn.From.Pin, Lo: cn.From.Lo + (ovLo - cn.To.Lo), Hi: cn.From.Lo + (ovHi - cn.To.Lo)},
			To:   rtl.Endpoint{Comp: name, Pin: "in0", Lo: ovLo - dst.Lo, Hi: ovHi - dst.Lo},
		})
		// Part above the slice keeps its original sink.
		if cn.To.Hi > dst.Hi {
			rewired = append(rewired, rtl.Conn{
				From: rtl.Endpoint{Comp: cn.From.Comp, Pin: cn.From.Pin, Lo: cn.From.Lo + (dst.Hi + 1 - cn.To.Lo), Hi: cn.From.Hi},
				To:   rtl.Endpoint{Comp: cn.To.Comp, Pin: cn.To.Pin, Lo: dst.Hi + 1, Hi: cn.To.Hi},
			})
		}
	}
	nc.Conns = rewired
	// Scan source into in1 (missing source bits stay tied low).
	if src.Comp != "" {
		srcPin := src.Pin
		nc.Conns = append(nc.Conns, rtl.Conn{
			From: rtl.Endpoint{Comp: src.Comp, Pin: srcPin, Lo: src.Lo, Hi: src.Hi},
			To:   rtl.Endpoint{Comp: name, Pin: "in1", Lo: 0, Hi: src.Width() - 1},
		})
	}
	nc.Conns = append(nc.Conns,
		rtl.Conn{From: rtl.Endpoint{Comp: ap.ScanEn, Lo: 0, Hi: 0}, To: rtl.Endpoint{Comp: name, Pin: "sel", Lo: 0, Hi: 0}},
		rtl.Conn{From: rtl.Endpoint{Comp: name, Pin: "out", Lo: 0, Hi: w - 1}, To: dst},
	)
	ap.MuxFor[edgeIdx] = name
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
