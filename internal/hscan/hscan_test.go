package hscan

import (
	"testing"

	"repro/internal/rtl"
)

// chainCover asserts every register appears in exactly one chain.
func chainCover(t *testing.T, c *rtl.Core, res *Result) {
	t.Helper()
	seen := map[string]int{}
	for _, ch := range res.Chains {
		for _, r := range ch.Regs {
			seen[r]++
		}
	}
	for _, r := range c.Regs {
		if seen[r.Name] != 1 {
			t.Errorf("register %s appears in %d chains, want 1 (chains=%v)", r.Name, seen[r.Name], res.Chains)
		}
	}
}

func TestFigure1ReusesMuxPath(t *testing.T) {
	// REG1 -> mux -> REG2 as in Figure 1(a): the chain should reuse the
	// path with only control gates, no test muxes.
	c := must(rtl.NewCore("fig1").
		In("din", 16).
		Out("dout", 16).
		Reg("reg1", 16).
		Reg("reg2", 16).
		Mux("m1", 16, 2).
		Unit(rtl.Unit{Name: "alu", Op: rtl.OpAdd, Width: 16}).
		Wire("din", "reg1.d").
		Wire("reg1.q", "m1.in0").
		Wire("alu.out", "m1.in1").
		Wire("m1.out", "reg2.d").
		Wire("reg1.q", "alu.in0").
		Wire("reg2.q", "alu.in1").
		Wire("reg2.q", "dout").
		Build())
	res, err := Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	chainCover(t, c, res)
	if len(res.Chains) != 1 {
		t.Fatalf("got %d chains, want 1: %v", len(res.Chains), res.Chains)
	}
	ch := res.Chains[0]
	if ch.Regs[0] != "reg1" || ch.Regs[1] != "reg2" {
		t.Errorf("chain order = %v, want [reg1 reg2]", ch.Regs)
	}
	// Internal link must be a mux reuse, 2 cells (paper: "just two extra
	// logic gates").
	var internal *Link
	for i := range ch.Links {
		if ch.Links[i].Kind == ReuseMux {
			internal = &ch.Links[i]
		}
		if ch.Links[i].Kind == TestMux {
			t.Errorf("unexpected test mux link %v", ch.Links[i])
		}
	}
	if internal == nil {
		t.Fatalf("no reuse-mux link found: %v", ch.Links)
	}
	if got := internal.Cost.Cells(); got != 2 {
		t.Errorf("reuse link cost = %d cells, want 2", got)
	}
	if res.MaxDepth != 2 {
		t.Errorf("MaxDepth = %d, want 2", res.MaxDepth)
	}
}

func TestDirectConnectionCostsOneCell(t *testing.T) {
	c := must(rtl.NewCore("direct").
		In("a", 8).
		Out("z", 8).
		Reg("r1", 8).
		Reg("r2", 8).
		Wire("a", "r1.d").
		Wire("r1.q", "r2.d").
		Wire("r2.q", "z").
		Build())
	res, err := Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	chainCover(t, c, res)
	var direct *Link
	for _, ch := range res.Chains {
		for i := range ch.Links {
			if ch.Links[i].Kind == Direct {
				direct = &ch.Links[i]
			}
		}
	}
	if direct == nil {
		t.Fatalf("no direct link: %+v", res.Chains)
	}
	if got := direct.Cost.Cells(); got != 1 {
		t.Errorf("direct link cost = %d, want 1 (OR at load)", got)
	}
}

func TestDisconnectedRegistersGetTestMuxes(t *testing.T) {
	// Two registers fed only through units: no reusable paths at all.
	c := must(rtl.NewCore("isolated").
		In("a", 4).
		Out("z", 4).
		Reg("r1", 4).
		Reg("r2", 4).
		Unit(rtl.Unit{Name: "u1", Op: rtl.OpInc, Width: 4}).
		Unit(rtl.Unit{Name: "u2", Op: rtl.OpInc, Width: 4}).
		Unit(rtl.Unit{Name: "u3", Op: rtl.OpAdd, Width: 4}).
		Wire("a", "u1.in0").
		Wire("u1.out", "r1.d").
		Wire("r1.q", "u2.in0").
		Wire("u2.out", "r2.d").
		Wire("r2.q", "u3.in0").
		Wire("r1.q", "u3.in1").
		Wire("u3.out", "z").
		Build())
	res, err := Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	chainCover(t, c, res)
	// Everything must be reachable only via created test muxes.
	created := 0
	for _, e := range res.Edges {
		if e.Created {
			created++
		}
	}
	if created == 0 {
		t.Error("expected created test-mux edges")
	}
	if res.Area.Cells() < 8 {
		t.Errorf("area = %d cells, want >= 8 (test muxes on 4-bit regs)", res.Area.Cells())
	}
}

func TestLongChainDepth(t *testing.T) {
	// r1 -> r2 -> r3 -> r4 direct pipeline: single chain of depth 4.
	b := rtl.NewCore("pipe").In("a", 8).Out("z", 8)
	b.Reg("r1", 8).Reg("r2", 8).Reg("r3", 8).Reg("r4", 8)
	b.Wire("a", "r1.d").Wire("r1.q", "r2.d").Wire("r2.q", "r3.d").Wire("r3.q", "r4.d").Wire("r4.q", "z")
	c := must(b.Build())
	res, err := Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	chainCover(t, c, res)
	if res.MaxDepth != 4 {
		t.Errorf("MaxDepth = %d, want 4", res.MaxDepth)
	}
	if res.ScanCyclesPerVector() != 5 {
		t.Errorf("ScanCyclesPerVector = %d, want 5", res.ScanCyclesPerVector())
	}
	// Paper's DISPLAY arithmetic: 105 vectors at depth 4 -> 525.
	if got := res.VectorsFor(105); got != 525 {
		t.Errorf("VectorsFor(105) = %d, want 525", got)
	}
}

func TestMuxSelectConflictResolved(t *testing.T) {
	// Two register pairs share one mux with opposite selects; only one
	// link can reuse it, the other must fall back to a test mux.
	c := must(rtl.NewCore("conflict").
		In("a", 4).In("b", 4).
		Out("z", 4).
		Reg("r1", 4).Reg("r2", 4).Reg("r3", 4).
		Mux("m", 4, 2).
		Wire("a", "r1.d").
		Wire("b", "r2.d").
		Wire("r1.q", "m.in0").
		Wire("r2.q", "m.in1").
		Wire("m.out", "r3.d").
		Wire("r3.q", "z").
		Build())
	res, err := Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	chainCover(t, c, res)
	// r3 has two possible predecessors through m but only one may win.
	preds := 0
	for _, e := range res.Edges {
		if e.To == "r3" && !e.Created {
			preds++
		}
	}
	if preds > 1 {
		t.Errorf("r3 has %d scan predecessors through conflicting mux selects", preds)
	}
}

func TestCycleBrokenIntoChain(t *testing.T) {
	// r1 -> r2 -> r1 loop with an input into r1 and output from r2: the
	// matching could select a cycle; insertion must still produce chains
	// covering both registers.
	c := must(rtl.NewCore("loop").
		In("a", 4).
		Out("z", 4).
		Reg("r1", 4).Reg("r2", 4).
		Mux("m", 4, 2).
		Wire("a", "m.in0").
		Wire("r2.q", "m.in1").
		Wire("m.out", "r1.d").
		Wire("r1.q", "r2.d").
		Wire("r2.q", "z").
		Build())
	res, err := Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	chainCover(t, c, res)
}

func TestEdgesExposeHopsForTransparency(t *testing.T) {
	c := must(rtl.NewCore("hops").
		In("a", 4).
		Out("z", 4).
		Reg("r1", 4).Reg("r2", 4).
		Mux("m", 4, 2).
		Wire("a", "r1.d").
		Wire("r1.q", "m.in0").
		Wire("a", "m.in1").
		Wire("m.out", "r2.d").
		Wire("r2.q", "z").
		Build())
	res, err := Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, e := range res.Edges {
		if e.From == "r1" && e.To == "r2" && !e.Created {
			found = true
			if len(e.Hops) != 1 || e.Hops[0].Mux != "m" {
				t.Errorf("edge hops = %v, want [m@0]", e.Hops)
			}
		}
	}
	if !found {
		t.Errorf("r1->r2 edge not exposed: %+v", res.Edges)
	}
}

func TestMatcherSimple(t *testing.T) {
	m := newMatcher(3)
	m.addEdge(0, 1)
	m.addEdge(1, 2)
	m.addEdge(2, 0)
	if got := m.maxMatching(); got != 3 {
		t.Errorf("matching size = %d, want 3 (perfect cycle cover)", got)
	}
}

func TestMatcherAugmenting(t *testing.T) {
	// 0-1, 0-2, 1-1: greedy picking 0-1 first must be repaired by an
	// augmenting path to reach size 2.
	m := newMatcher(3)
	m.addEdge(0, 1)
	m.addEdge(0, 2)
	m.addEdge(1, 1)
	if got := m.maxMatching(); got != 2 {
		t.Errorf("matching size = %d, want 2", got)
	}
}

func TestMatcherEmpty(t *testing.T) {
	m := newMatcher(4)
	if got := m.maxMatching(); got != 0 {
		t.Errorf("matching size = %d, want 0", got)
	}
}
