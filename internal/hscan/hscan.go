// Package hscan implements the high-level scan (HSCAN) DFT technique the
// paper uses at the core level (Section 2, [6]): registers are threaded
// into parallel scan chains that reuse existing register-to-register
// multiplexer and direct paths, adding test multiplexers only where no
// reusable path exists. Chain construction is a minimum path cover solved
// with Hopcroft-Karp bipartite matching over the reusable paths.
package hscan

import (
	"fmt"
	"sort"

	"repro/internal/cell"
	"repro/internal/rtl"
)

// LinkKind classifies how two consecutive chain elements are connected.
type LinkKind int

// Link kinds. ReuseMux configures an existing multiplexer path with a
// couple of control gates (Figure 1(a)/(b)); Direct needs only an OR gate
// on the destination's load signal; TestMux inserts a scan multiplexer in
// front of the destination register (Figure 1(c)); InputTap and OutputTap
// connect chain heads to core inputs and tails to core outputs.
const (
	ReuseMux LinkKind = iota
	Direct
	TestMux
	InputTap
	OutputTap
)

func (k LinkKind) String() string {
	switch k {
	case ReuseMux:
		return "reuse-mux"
	case Direct:
		return "direct"
	case TestMux:
		return "test-mux"
	case InputTap:
		return "input-tap"
	case OutputTap:
		return "output-tap"
	}
	return fmt.Sprintf("LinkKind(%d)", int(k))
}

// Link is one connection in a scan chain.
type Link struct {
	Kind     LinkKind
	From, To string       // component names ("" for a created chip-side tap)
	Src, Dst rtl.Endpoint // bit slices connected
	Path     rtl.Path     // underlying path for ReuseMux/Direct links
	Cost     cell.Area
}

// Chain is one scan chain: a register sequence plus its input and output
// taps.
type Chain struct {
	Regs  []string
	Links []Link // InputTap, len(Regs)-1 internal links, OutputTap
}

// Depth returns the chain's sequential depth in registers.
func (c *Chain) Depth() int { return len(c.Regs) }

// Edge is an HSCAN scan path usable as a transparency edge by
// internal/trans. Created edges come from inserted test multiplexers.
type Edge struct {
	From, To string // register names, or port names for taps
	FromPort bool
	ToPort   bool
	Src, Dst rtl.Endpoint
	Created  bool
	Hops     []rtl.Hop // mux steering for reused paths
}

// Result is the outcome of HSCAN insertion on one core.
type Result struct {
	Core     *rtl.Core
	Chains   []Chain
	Edges    []Edge
	Area     cell.Area // added test logic
	MaxDepth int       // registers in the longest chain
}

// ScanCyclesPerVector returns the number of clock cycles needed to apply
// one combinational vector through the chains: MaxDepth shift cycles plus
// one apply/capture cycle. The DISPLAY example in Section 3 (105 vectors,
// depth 4, 525 HSCAN vectors) follows this model.
func (r *Result) ScanCyclesPerVector() int {
	if r.MaxDepth == 0 {
		return 1
	}
	return r.MaxDepth + 1
}

// VectorsFor expands a combinational vector count into HSCAN vector count
// (shift + apply cycles).
func (r *Result) VectorsFor(combVectors int) int {
	return combVectors * r.ScanCyclesPerVector()
}

// candidate is a reusable path between chain elements.
type candidate struct {
	from, to string
	path     rtl.Path
	kind     LinkKind
	cost     int // cells
}

// Insert performs HSCAN insertion on the core.
func Insert(c *rtl.Core) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	paths := rtl.AllPaths(c)

	regIdx := make(map[string]int, len(c.Regs))
	for i, r := range c.Regs {
		regIdx[r.Name] = i
	}

	// Classify reusable paths.
	var regReg []candidate
	inToReg := make(map[string][]candidate)  // head register -> input taps
	regToOut := make(map[string][]candidate) // tail register -> output taps
	for _, p := range paths {
		srcKind, _, _ := c.Lookup(p.Src.Comp)
		dstKind, _, _ := c.Lookup(p.Dst.Comp)
		cand := candidate{from: p.Src.Comp, to: p.Dst.Comp, path: p}
		if p.Direct() {
			cand.kind = Direct
			cand.cost = 1 // OR gate on the destination load signal
		} else {
			cand.kind = ReuseMux
			cand.cost = 2 // two control gates per Figure 1(a)/(b)
		}
		switch {
		case srcKind == rtl.KindReg && dstKind == rtl.KindReg:
			if p.Src.Comp == p.Dst.Comp {
				continue // self-loop (hold path), useless for scan
			}
			// Penalize partial coverage of the destination: uncovered
			// bits need their own scan muxes.
			if dst, ok := c.RegByName(p.Dst.Comp); ok {
				uncovered := dst.Width - p.Dst.Width()
				if uncovered > 0 {
					cand.cost += uncovered
				}
			}
			regReg = append(regReg, cand)
		case srcKind == rtl.KindPort && dstKind == rtl.KindReg:
			cand.kind = InputTap
			inToReg[p.Dst.Comp] = append(inToReg[p.Dst.Comp], cand)
		case srcKind == rtl.KindReg && dstKind == rtl.KindPort:
			cand.kind = OutputTap
			regToOut[p.Src.Comp] = append(regToOut[p.Src.Comp], cand)
		}
	}

	// Keep the cheapest candidate per (from,to) register pair.
	best := make(map[[2]string]candidate)
	for _, cand := range regReg {
		k := [2]string{cand.from, cand.to}
		if prev, ok := best[k]; !ok || cand.cost < prev.cost {
			best[k] = cand
		}
	}
	var cands []candidate
	for _, cand := range best {
		cands = append(cands, cand)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cost != cands[j].cost {
			return cands[i].cost < cands[j].cost
		}
		if cands[i].from != cands[j].from {
			return cands[i].from < cands[j].from
		}
		return cands[i].to < cands[j].to
	})

	// Maximum matching: each register has at most one scan predecessor and
	// one successor. Cheap candidates are explored first so the matching
	// prefers them.
	m := newMatcher(len(c.Regs))
	candByPair := make(map[[2]int]candidate)
	for _, cand := range cands {
		u, v := regIdx[cand.from], regIdx[cand.to]
		m.addEdge(u, v)
		candByPair[[2]int{u, v}] = cand
	}
	m.maxMatching()

	// Resolve multiplexer select conflicts: all scan links are active
	// simultaneously, so two links demanding different selects on one mux
	// cannot coexist. Drop the costlier conflicting link.
	type sel struct {
		mux string
		val int
	}
	muxSel := make(map[string]int)
	matched := make(map[int]int) // successor map: reg u -> reg v
	for u := 0; u < len(c.Regs); u++ {
		v := m.matchL[u]
		if v < 0 {
			continue
		}
		cand := candByPair[[2]int{u, v}]
		ok := true
		for _, h := range cand.path.Hops {
			if prev, seen := muxSel[h.Mux]; seen && prev != h.Sel {
				ok = false
				break
			}
		}
		if !ok {
			continue // dropped: v will be reached by a test mux instead
		}
		for _, h := range cand.path.Hops {
			muxSel[h.Mux] = h.Sel
		}
		matched[u] = v
	}

	// Assemble chains. Heads are registers with no matched predecessor;
	// cycles among matched edges are broken at the lexicographically first
	// register.
	pred := make(map[int]int)
	for u, v := range matched {
		pred[v] = u
	}
	visited := make([]bool, len(c.Regs))
	var chains []Chain
	startChain := func(head int) {
		var regs []int
		for at := head; ; {
			visited[at] = true
			regs = append(regs, at)
			nxt, ok := matched[at]
			if !ok || visited[nxt] {
				break
			}
			at = nxt
		}
		names := make([]string, len(regs))
		for i, r := range regs {
			names[i] = c.Regs[r].Name
		}
		chains = append(chains, Chain{Regs: names})
	}
	for u := range c.Regs {
		if _, hasPred := pred[u]; !hasPred && !visited[u] {
			startChain(u)
		}
	}
	for u := range c.Regs { // leftover cycles
		if !visited[u] {
			startChain(u)
		}
	}
	sort.Slice(chains, func(i, j int) bool { return chains[i].Regs[0] < chains[j].Regs[0] })

	// Materialize links, taps and edges; accumulate area.
	res := &Result{Core: c}
	for ci := range chains {
		ch := &chains[ci]
		var links []Link
		// Input tap for the head.
		head := ch.Regs[0]
		headReg, _ := c.RegByName(head)
		if taps := inToReg[head]; len(taps) > 0 {
			t := cheapest(taps)
			l := Link{Kind: InputTap, From: t.path.Src.Comp, To: head, Src: t.path.Src, Dst: t.path.Dst, Path: t.path}
			l.Cost.Add(cell.Nand2, t.cost)
			links = append(links, l)
			res.Edges = append(res.Edges, Edge{From: t.path.Src.Comp, To: head, FromPort: true, Src: t.path.Src, Dst: t.path.Dst, Hops: t.path.Hops})
		} else {
			// Created scan-in: test mux in front of every head bit.
			l := Link{Kind: TestMux, From: "", To: head, Dst: rtl.Endpoint{Comp: head, Pin: "d", Lo: 0, Hi: headReg.Width - 1}}
			l.Cost.Add(cell.Mux2, headReg.Width)
			links = append(links, l)
			in := bestInputPort(c, headReg.Width)
			w := headReg.Width
			if p, ok := c.PortByName(in); ok && p.Width < w {
				w = p.Width
			}
			res.Edges = append(res.Edges, Edge{From: in, To: head, FromPort: true, Created: true,
				Src: rtl.Endpoint{Comp: in, Lo: 0, Hi: w - 1},
				Dst: rtl.Endpoint{Comp: head, Pin: "d", Lo: 0, Hi: w - 1}})
		}
		// Internal links.
		for i := 0; i+1 < len(ch.Regs); i++ {
			u, v := regIdx[ch.Regs[i]], regIdx[ch.Regs[i+1]]
			cand, ok := candByPair[[2]int{u, v}]
			if ok {
				if w, matchedTo := matched[u]; !matchedTo || w != v {
					ok = false
				}
			}
			if ok {
				l := Link{Kind: cand.kind, From: cand.from, To: cand.to, Src: cand.path.Src, Dst: cand.path.Dst, Path: cand.path}
				if cand.kind == Direct {
					l.Cost.Add(cell.Or2, 1)
				} else {
					l.Cost.Add(cell.Nand2, 2)
				}
				if extra := cand.cost - baseCost(cand.kind); extra > 0 {
					l.Cost.Add(cell.Mux2, extra)
				}
				links = append(links, l)
				res.Edges = append(res.Edges, Edge{From: cand.from, To: cand.to, Src: cand.path.Src, Dst: cand.path.Dst, Hops: cand.path.Hops})
				// Destination bits not covered by the reused path get scan
				// muxes (already priced above); they are additional scan
				// paths from the same predecessor.
				dst, _ := c.RegByName(cand.to)
				src, _ := c.RegByName(cand.from)
				for _, run := range uncoveredRuns(dst.Width, cand.path.Dst.Lo, cand.path.Dst.Hi) {
					w := run[1] - run[0] + 1
					if w > src.Width {
						w = src.Width
					}
					// Source bits align with the destination run when the
					// predecessor is wide enough, keeping this filler path
					// disjoint from the reused slice (so transparency
					// branches through both can run in parallel).
					srcLo := run[0]
					if srcLo+w > src.Width {
						srcLo = 0
					}
					res.Edges = append(res.Edges, Edge{From: cand.from, To: cand.to, Created: true,
						Src: rtl.Endpoint{Comp: cand.from, Pin: "q", Lo: srcLo, Hi: srcLo + w - 1},
						Dst: rtl.Endpoint{Comp: cand.to, Pin: "d", Lo: run[0], Hi: run[0] + w - 1}})
				}
			} else {
				dst, _ := c.RegByName(ch.Regs[i+1])
				src, _ := c.RegByName(ch.Regs[i])
				w := dst.Width
				if src.Width < w {
					w = src.Width
				}
				l := Link{Kind: TestMux, From: ch.Regs[i], To: ch.Regs[i+1],
					Src: rtl.Endpoint{Comp: ch.Regs[i], Pin: "q", Lo: 0, Hi: w - 1},
					Dst: rtl.Endpoint{Comp: ch.Regs[i+1], Pin: "d", Lo: 0, Hi: dst.Width - 1}}
				l.Cost.Add(cell.Mux2, dst.Width)
				links = append(links, l)
				res.Edges = append(res.Edges, Edge{From: ch.Regs[i], To: ch.Regs[i+1], Created: true,
					Src: rtl.Endpoint{Comp: ch.Regs[i], Pin: "q", Lo: 0, Hi: w - 1},
					Dst: rtl.Endpoint{Comp: ch.Regs[i+1], Pin: "d", Lo: 0, Hi: w - 1}})
			}
		}
		// Output tap for the tail.
		tail := ch.Regs[len(ch.Regs)-1]
		tailReg, _ := c.RegByName(tail)
		if taps := regToOut[tail]; len(taps) > 0 {
			t := cheapest(taps)
			l := Link{Kind: OutputTap, From: tail, To: t.path.Dst.Comp, Src: t.path.Src, Dst: t.path.Dst, Path: t.path}
			l.Cost.Add(cell.Nand2, t.cost)
			links = append(links, l)
			res.Edges = append(res.Edges, Edge{From: tail, To: t.path.Dst.Comp, ToPort: true, Src: t.path.Src, Dst: t.path.Dst, Hops: t.path.Hops})
		} else {
			l := Link{Kind: TestMux, From: tail, To: "",
				Src: rtl.Endpoint{Comp: tail, Pin: "q", Lo: 0, Hi: tailReg.Width - 1}}
			l.Cost.Add(cell.Mux2, tailReg.Width)
			links = append(links, l)
			out := bestOutputPort(c, tailReg.Width)
			w := tailReg.Width
			if p, ok := c.PortByName(out); ok && p.Width < w {
				w = p.Width
			}
			res.Edges = append(res.Edges, Edge{From: tail, To: out, ToPort: true, Created: true,
				Src: rtl.Endpoint{Comp: tail, Pin: "q", Lo: 0, Hi: w - 1},
				Dst: rtl.Endpoint{Comp: out, Lo: 0, Hi: w - 1}})
		}
		ch.Links = links
		for _, l := range links {
			res.Area.AddArea(l.Cost)
		}
		if len(ch.Regs) > res.MaxDepth {
			res.MaxDepth = len(ch.Regs)
		}
	}
	res.Chains = chains
	return res, nil
}

// uncoveredRuns returns the maximal bit runs of [0,width) outside
// [lo,hi], each as a {lo,hi} pair.
func uncoveredRuns(width, lo, hi int) [][2]int {
	var out [][2]int
	if lo > 0 {
		out = append(out, [2]int{0, lo - 1})
	}
	if hi < width-1 {
		out = append(out, [2]int{hi + 1, width - 1})
	}
	return out
}

func baseCost(k LinkKind) int {
	if k == Direct {
		return 1
	}
	return 2
}

func cheapest(cs []candidate) candidate {
	best := cs[0]
	for _, c := range cs[1:] {
		if c.cost < best.cost {
			best = c
		}
	}
	return best
}

// bestInputPort picks the widest data input port as scan-in for created
// chains (deterministic: widest, ties by name).
func bestInputPort(c *rtl.Core, want int) string {
	name, width := "", -1
	for _, p := range c.Ports {
		if p.Dir != rtl.In || p.Control {
			continue
		}
		if p.Width > width || (p.Width == width && p.Name < name) {
			name, width = p.Name, p.Width
		}
	}
	if name == "" && len(c.Ports) > 0 {
		for _, p := range c.Ports {
			if p.Dir == rtl.In {
				return p.Name
			}
		}
	}
	return name
}

func bestOutputPort(c *rtl.Core, want int) string {
	name, width := "", -1
	for _, p := range c.Ports {
		if p.Dir != rtl.Out || p.Control {
			continue
		}
		if p.Width > width || (p.Width == width && p.Name < name) {
			name, width = p.Name, p.Width
		}
	}
	if name == "" {
		for _, p := range c.Ports {
			if p.Dir == rtl.Out {
				return p.Name
			}
		}
	}
	return name
}
