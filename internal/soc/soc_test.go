package soc_test

import (
	"strings"
	"testing"

	"repro/internal/rtl"
	"repro/internal/soc"
	"repro/internal/systems"
)

func tinyCore(name string) *rtl.Core {
	return must(rtl.NewCore(name).
		In("A", 4).
		Out("Z", 4).
		Reg("R", 4).
		Wire("A", "R.d").
		Wire("R.q", "Z").
		Build())
}

func TestValidateGoodChip(t *testing.T) {
	ch := &soc.Chip{
		Name:  "good",
		Cores: []*soc.Core{{Name: "C1", RTL: tinyCore("C1")}},
		PIs:   []soc.Pin{{Name: "IN", Width: 4}},
		POs:   []soc.Pin{{Name: "OUT", Width: 4}},
		Nets: []soc.Net{
			{FromPort: "IN", ToCore: "C1", ToPort: "A"},
			{FromCore: "C1", FromPort: "Z", ToPort: "OUT"},
		},
	}
	if err := ch.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadNets(t *testing.T) {
	base := func() *soc.Chip {
		return &soc.Chip{
			Name:  "bad",
			Cores: []*soc.Core{{Name: "C1", RTL: tinyCore("C1")}},
			PIs:   []soc.Pin{{Name: "IN", Width: 4}},
			POs:   []soc.Pin{{Name: "OUT", Width: 4}},
		}
	}
	cases := []struct {
		name string
		net  soc.Net
		want string
	}{
		{"unknown PI", soc.Net{FromPort: "NOPE", ToCore: "C1", ToPort: "A"}, "unknown PI"},
		{"unknown core", soc.Net{FromPort: "IN", ToCore: "NOPE", ToPort: "A"}, "unknown core"},
		{"wrong direction", soc.Net{FromCore: "C1", FromPort: "A", ToPort: "OUT"}, "not an output"},
		{"unknown PO", soc.Net{FromCore: "C1", FromPort: "Z", ToPort: "NOPE"}, "unknown PO"},
		{"input as sink of PO net", soc.Net{FromPort: "IN", ToCore: "C1", ToPort: "Z"}, "not an input"},
	}
	for _, tc := range cases {
		ch := base()
		ch.Nets = []soc.Net{tc.net}
		err := ch.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want contains %q", tc.name, err, tc.want)
		}
	}
}

func TestTestableCoresExcludesMemory(t *testing.T) {
	ch := systems.System1()
	if got := len(ch.TestableCores()); got != 3 {
		t.Errorf("testable cores = %d, want 3", got)
	}
	names := map[string]bool{}
	for _, c := range ch.TestableCores() {
		names[c.Name] = true
	}
	if names["RAM"] || names["ROM"] {
		t.Error("memory cores leaked into TestableCores")
	}
}

func TestDriversAndSinks(t *testing.T) {
	ch := systems.System1()
	drivers := ch.DriversOf("CPU", "Data")
	// The CPU data input sits on a shared bus: PREPROCESSOR.DB and
	// RAM.Dout both drive it.
	if len(drivers) != 2 {
		t.Errorf("CPU.Data has %d drivers, want 2 (shared bus)", len(drivers))
	}
	sinks := ch.SinksOf("PREPROCESSOR", "DB")
	if len(sinks) != 2 {
		t.Errorf("PREPROCESSOR.DB feeds %d sinks, want 2 (CPU + DISPLAY)", len(sinks))
	}
	if len(ch.SinksOf("NOPE", "X")) != 0 {
		t.Error("unknown core has sinks")
	}
}

func TestVersionAccessor(t *testing.T) {
	c := &soc.Core{Name: "x", RTL: tinyCore("x")}
	if c.Version() != nil {
		t.Error("unprepared core has a version")
	}
	c.Selected = 5
	if c.Version() != nil {
		t.Error("out-of-range selection returned a version")
	}
}

func TestNetString(t *testing.T) {
	n := soc.Net{FromCore: "A", FromPort: "o", ToCore: "B", ToPort: "i"}
	if n.String() != "A.o -> B.i" {
		t.Errorf("net string = %q", n.String())
	}
	pin := soc.Net{FromPort: "PI", ToCore: "B", ToPort: "i"}
	if pin.String() != "PI -> B.i" {
		t.Errorf("pin net string = %q", pin.String())
	}
}
