// Package soc models a core-based system-on-chip: embedded cores, chip
// pins, and the interconnect between them (the paper's Figure 2 barcode
// system is the running example). It carries per-core DFT state filled in
// by the SOCET flow: HSCAN insertion results, the transparency version
// ladder, the selected version, and the core's precomputed test set size.
package soc

import (
	"fmt"

	"repro/internal/hscan"
	"repro/internal/rtl"
	"repro/internal/trans"
)

// Core is one embedded core plus its DFT state.
type Core struct {
	Name   string
	RTL    *rtl.Core
	Memory bool // memory cores use BIST and stay out of the CCG (Section 5)

	// Filled by the SOCET flow.
	Scan     *hscan.Result
	Versions []*trans.Version
	Selected int // index into Versions of the version in use
	Vectors  int // combinational ATPG vector count for the core's test set

	// Disabled, when non-empty, marks the core's test resources as dead
	// (e.g. a broken HSCAN chain injected by the fault harness) with a
	// human-readable reason. A disabled core cannot be scheduled as a test
	// target; the full scheduler refuses the chip, the partial scheduler
	// diagnoses and skips it. Neighbour transparency is unaffected.
	Disabled string
}

// Version returns the currently selected transparency version (nil when
// the flow has not run).
func (c *Core) Version() *trans.Version {
	return c.VersionAt(c.Selected)
}

// VersionAt returns the transparency version at the given index, or nil
// when out of range. Unlike Version it does not read Selected, so
// selection-pure evaluation can look versions up concurrently while the
// chip's own selection stays untouched.
func (c *Core) VersionAt(idx int) *trans.Version {
	if idx < 0 || idx >= len(c.Versions) {
		return nil
	}
	return c.Versions[idx]
}

// Pin is a chip-level primary input or output.
type Pin struct {
	Name  string
	Width int
}

// Net connects a driver to a sink at the chip level. An empty FromCore
// means the driver is the chip pin FromPort; an empty ToCore means the
// sink is the chip pin ToPort.
type Net struct {
	FromCore, FromPort string
	ToCore, ToPort     string
}

func (n Net) String() string {
	f := n.FromPort
	if n.FromCore != "" {
		f = n.FromCore + "." + n.FromPort
	}
	t := n.ToPort
	if n.ToCore != "" {
		t = n.ToCore + "." + n.ToPort
	}
	return f + " -> " + t
}

// Chip is the system-on-chip.
type Chip struct {
	Name  string
	Cores []*Core
	PIs   []Pin
	POs   []Pin
	Nets  []Net
}

// CoreByName returns the named core.
func (ch *Chip) CoreByName(name string) (*Core, bool) {
	for _, c := range ch.Cores {
		if c.Name == name {
			return c, true
		}
	}
	return nil, false
}

// TestableCores returns the non-memory cores in declaration order.
func (ch *Chip) TestableCores() []*Core {
	var out []*Core
	for _, c := range ch.Cores {
		if !c.Memory {
			out = append(out, c)
		}
	}
	return out
}

// Validate checks that nets reference existing pins and ports with
// matching directions.
func (ch *Chip) Validate() error {
	pi := map[string]Pin{}
	for _, p := range ch.PIs {
		pi[p.Name] = p
	}
	po := map[string]Pin{}
	for _, p := range ch.POs {
		po[p.Name] = p
	}
	for _, n := range ch.Nets {
		if n.FromCore == "" {
			if _, ok := pi[n.FromPort]; !ok {
				return fmt.Errorf("soc: chip %s: net %s: unknown PI %q", ch.Name, n, n.FromPort)
			}
		} else {
			c, ok := ch.CoreByName(n.FromCore)
			if !ok {
				return fmt.Errorf("soc: chip %s: net %s: unknown core %q", ch.Name, n, n.FromCore)
			}
			p, ok := c.RTL.PortByName(n.FromPort)
			if !ok || p.Dir != rtl.Out {
				return fmt.Errorf("soc: chip %s: net %s: %s.%s is not an output port", ch.Name, n, n.FromCore, n.FromPort)
			}
		}
		if n.ToCore == "" {
			if _, ok := po[n.ToPort]; !ok {
				return fmt.Errorf("soc: chip %s: net %s: unknown PO %q", ch.Name, n, n.ToPort)
			}
		} else {
			c, ok := ch.CoreByName(n.ToCore)
			if !ok {
				return fmt.Errorf("soc: chip %s: net %s: unknown core %q", ch.Name, n, n.ToCore)
			}
			p, ok := c.RTL.PortByName(n.ToPort)
			if !ok || p.Dir != rtl.In {
				return fmt.Errorf("soc: chip %s: net %s: %s.%s is not an input port", ch.Name, n, n.ToCore, n.ToPort)
			}
		}
	}
	return nil
}

// DriversOf returns the nets sinking at the given core input port.
func (ch *Chip) DriversOf(core, port string) []Net {
	var out []Net
	for _, n := range ch.Nets {
		if n.ToCore == core && n.ToPort == port {
			out = append(out, n)
		}
	}
	return out
}

// SinksOf returns the nets driven by the given core output port.
func (ch *Chip) SinksOf(core, port string) []Net {
	var out []Net
	for _, n := range ch.Nets {
		if n.FromCore == core && n.FromPort == port {
			out = append(out, n)
		}
	}
	return out
}
