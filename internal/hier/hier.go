// Package hier implements the paper's hierarchical-testing claim
// (Section 1: "This technique is suitable for testing the SOC in a
// hierarchical fashion"): a fully prepared SoC is flattened into a single
// meta-core whose transparency behavior equals the chip's pin-to-pin test
// paths, so the SoC can itself be embedded as a core in a larger system
// and tested through the same machinery — no sequential test generation
// over the combined design ever happens.
package hier

import (
	"fmt"

	"repro/internal/ccg"
	"repro/internal/core"
	"repro/internal/rtl"
	"repro/internal/soc"
)

// PinPath is one pin-to-pin transparency path of the flattened chip.
type PinPath struct {
	PI, PO  string
	Latency int
	Width   int
}

// Flatten derives the chip's pin-level transparency (at its current
// version selection) and builds a surrogate RTL core — a register
// skeleton with one pipeline per pin pair — whose transparency latencies
// equal the chip's test-path latencies. The skeleton is what the chip
// *looks like* to a higher-level SOCET flow; its registers stand in for
// the embedded cores' transparency stages.
func Flatten(f *core.Flow, name string) (*rtl.Core, []PinPath, error) {
	g, err := ccg.Build(f.Chip)
	if err != nil {
		return nil, nil, err
	}
	b := rtl.NewCore(name)
	for _, pi := range f.Chip.PIs {
		b.In(pi.Name, pi.Width)
	}
	for _, po := range f.Chip.POs {
		b.Out(po.Name, po.Width)
	}
	var paths []PinPath
	usedPO := map[string]bool{}
	regCount := 0
	for _, po := range f.Chip.POs {
		poNode, ok := g.NodeIndex(po.Name)
		if !ok {
			continue
		}
		// Best PI for this PO: widest coverage first (test bandwidth),
		// then earliest arrival.
		var best *ccg.PathResult
		var bestPI string
		bestW := -1
		for _, pi := range f.Chip.PIs {
			piNode, ok := g.NodeIndex(pi.Name)
			if !ok {
				continue
			}
			p := g.ShortestPath([]int{piNode}, poNode, ccg.Reservations{})
			if p == nil {
				continue
			}
			w := pi.Width
			if po.Width < w {
				w = po.Width
			}
			if w > bestW || (w == bestW && p.Arrival < best.Arrival) {
				best, bestPI, bestW = p, pi.Name, w
			}
		}
		if best == nil {
			continue // unobservable PO at this design point
		}
		lat := best.Arrival
		if lat < 1 {
			lat = 1
		}
		piPin, _ := pinOf(f.Chip.PIs, bestPI)
		w := po.Width
		if piPin.Width < w {
			w = piPin.Width
		}
		// Register pipeline of length lat from the PI slice to the PO.
		prev := fmt.Sprintf("%s[%d:0]", bestPI, w-1)
		for k := 0; k < lat; k++ {
			rname := fmt.Sprintf("H%d", regCount)
			regCount++
			b.Reg(rname, w)
			b.Wire(prev, rname+".d")
			prev = fmt.Sprintf("%s.q[%d:0]", rname, w-1)
		}
		b.Wire(prev, fmt.Sprintf("%s[%d:0]", po.Name, w-1))
		usedPO[po.Name] = true
		paths = append(paths, PinPath{PI: bestPI, PO: po.Name, Latency: lat, Width: w})
	}
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("hier: chip %s has no pin-to-pin transparency at all", f.Chip.Name)
	}
	c, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return c, paths, nil
}

// Embed wraps a flattened chip and sibling cores into a new chip: the
// meta-core's inputs come from fresh chip pins, its outputs feed the
// sibling cores where widths match, and everything else terminates at
// chip pins.
func Embed(name string, meta *rtl.Core, siblings ...*rtl.Core) *soc.Chip {
	ch := &soc.Chip{Name: name}
	ch.Cores = append(ch.Cores, &soc.Core{Name: meta.Name, RTL: meta})
	for _, s := range siblings {
		ch.Cores = append(ch.Cores, &soc.Core{Name: s.Name, RTL: s})
	}
	pi, po := 0, 0
	newPI := func(w int) string {
		n := fmt.Sprintf("XPI%d", pi)
		pi++
		ch.PIs = append(ch.PIs, soc.Pin{Name: n, Width: w})
		return n
	}
	newPO := func(w int) string {
		n := fmt.Sprintf("XPO%d", po)
		po++
		ch.POs = append(ch.POs, soc.Pin{Name: n, Width: w})
		return n
	}
	// Meta-core inputs from chip pins.
	for _, p := range meta.Inputs() {
		ch.Nets = append(ch.Nets, soc.Net{FromPort: newPI(p.Width), ToCore: meta.Name, ToPort: p.Name})
	}
	// Meta-core outputs: feed each sibling's width-matching inputs first,
	// then chip pins.
	outs := meta.Outputs()
	oi := 0
	for _, s := range siblings {
		for _, in := range s.Inputs() {
			for ; oi < len(outs); oi++ {
				if outs[oi].Width == in.Width {
					ch.Nets = append(ch.Nets, soc.Net{
						FromCore: meta.Name, FromPort: outs[oi].Name,
						ToCore: s.Name, ToPort: in.Name,
					})
					oi++
					break
				}
			}
		}
	}
	used := map[string]bool{}
	for _, n := range ch.Nets {
		if n.FromCore == meta.Name {
			used[n.FromPort] = true
		}
	}
	for _, out := range outs {
		if !used[out.Name] {
			ch.Nets = append(ch.Nets, soc.Net{FromCore: meta.Name, FromPort: out.Name, ToPort: newPO(out.Width)})
		}
	}
	// Sibling leftovers.
	for _, s := range siblings {
		driven := map[string]bool{}
		for _, n := range ch.Nets {
			if n.ToCore == s.Name {
				driven[n.ToPort] = true
			}
		}
		for _, in := range s.Inputs() {
			if !driven[in.Name] {
				ch.Nets = append(ch.Nets, soc.Net{FromPort: newPI(in.Width), ToCore: s.Name, ToPort: in.Name})
			}
		}
		for _, out := range s.Outputs() {
			ch.Nets = append(ch.Nets, soc.Net{FromCore: s.Name, FromPort: out.Name, ToPort: newPO(out.Width)})
		}
	}
	return ch
}

func pinOf(pins []soc.Pin, name string) (soc.Pin, bool) {
	for _, p := range pins {
		if p.Name == name {
			return p, true
		}
	}
	return soc.Pin{}, false
}
