package hier_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hier"
	"repro/internal/hscan"
	"repro/internal/rtlsim"
	"repro/internal/systems"
	"repro/internal/trans"
)

func TestFlattenSystem2(t *testing.T) {
	f, err := core.Prepare(systems.System2(), &core.Options{
		VectorOverride: map[string]int{"GRAPHICS": 20, "GCD": 20, "X25": 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	meta, paths, err := hier.Flatten(f, "SYS2CORE")
	if err != nil {
		t.Fatal(err)
	}
	if err := meta.Validate(); err != nil {
		t.Fatalf("meta-core invalid: %v", err)
	}
	if len(paths) == 0 {
		t.Fatal("no pin paths")
	}
	// Every observable PO has a pipeline whose depth equals the chip's
	// pin-to-pin test latency.
	for _, p := range paths {
		if p.Latency < 1 {
			t.Errorf("path %s->%s latency %d", p.PI, p.PO, p.Latency)
		}
	}
	// The skeleton itself is transparent: the standard core-level flow
	// runs on it and Version 1 latencies equal the recorded pin paths.
	scan, err := hscan.Insert(meta)
	if err != nil {
		t.Fatal(err)
	}
	g, err := trans.Build(meta, scan)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := trans.Versions(g)
	if err != nil {
		t.Fatal(err)
	}
	// The functional skeleton reproduces the chip's pin latencies exactly:
	// each PO is fed by a pipeline of Latency registers.
	wantFFs := 0
	for _, p := range paths {
		wantFFs += p.Latency * p.Width
	}
	if got := meta.FFCount(); got != wantFFs {
		t.Errorf("skeleton FFs = %d, want %d (sum of latency x width)", got, wantFFs)
	}
	// Transparency on the skeleton can only be as slow as the pipelines
	// (created muxes for unused pins may shortcut below them).
	v1 := vs[0]
	for _, p := range paths {
		if got := v1.JustLatency(p.PO); got > p.Latency {
			t.Errorf("meta just(%s) = %d, exceeds the chip's pin latency %d", p.PO, got, p.Latency)
		}
	}
	// And the skeleton physically moves data (RTL-level verification).
	if _, _, err := rtlsim.VerifyAllEdges(meta, g, 0xcafe); err != nil {
		t.Errorf("meta edge verification: %v", err)
	}
}

// The flagship hierarchical scenario: System 2 flattened and embedded as
// a core next to a fresh GCD; the whole SOCET flow runs on the two-level
// system without ever looking inside the flattened chip.
func TestHierarchicalFlow(t *testing.T) {
	f, err := core.Prepare(systems.System2(), &core.Options{
		VectorOverride: map[string]int{"GRAPHICS": 20, "GCD": 20, "X25": 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	meta, _, err := hier.Flatten(f, "SYS2CORE")
	if err != nil {
		t.Fatal(err)
	}
	super := hier.Embed("supersoc", meta, systems.GCD())
	if err := super.Validate(); err != nil {
		t.Fatalf("super-chip invalid: %v", err)
	}
	sf, err := core.Prepare(super, &core.Options{
		VectorOverride: map[string]int{meta.Name: 40, "GCD": 25},
	})
	if err != nil {
		t.Fatalf("hierarchical prepare: %v", err)
	}
	e, err := sf.Evaluate()
	if err != nil {
		t.Fatalf("hierarchical evaluate: %v", err)
	}
	if e.TAT <= 0 {
		t.Fatal("no hierarchical TAT")
	}
	// The embedded GCD must be reachable through the flattened System 2's
	// transparency (or explicit muxes) — its schedule exists either way.
	if got := e.Sched.CoreTAT("GCD"); got <= 0 {
		t.Errorf("GCD TAT = %d", got)
	}
	if got := e.Sched.CoreTAT(meta.Name); got <= 0 {
		t.Errorf("meta-core TAT = %d", got)
	}
	// GCD's Xin is fed by the meta-core: at least one of its inputs should
	// be justified *through* the flattened chip (arrival > 1).
	through := false
	for _, cs := range e.Sched.Cores {
		if cs.Core != "GCD" {
			continue
		}
		for _, in := range cs.Inputs {
			if !in.AddedMux && in.Arrival > 1 {
				through = true
			}
		}
	}
	if !through {
		t.Log("note: all GCD inputs reached directly (topology-dependent); flow still hierarchical")
	}
}
