package trans

import (
	"testing"

	"repro/internal/hscan"
	"repro/internal/rtl"
)

// miniCPU is a scaled-down Figure 3/7 CPU: Data feeds IR through an
// existing mux; IR O-splits toward MAR-page (fast branch to Address(11:8))
// and toward the accumulator chain (slow branch to Address(7:0)); the
// accumulator is a C-split node; and mux M3 offers a non-HSCAN shortcut
// Data -> MAR-offset that Version 2 exploits, exactly like multiplexer M
// in the paper.
func miniCPU(t *testing.T) *rtl.Core {
	t.Helper()
	c, err := rtl.NewCore("minicpu").
		In("Data", 8).
		CtlIn("en", 1).
		Out("A70", 8).
		Out("A118", 4).
		Reg("IR", 8).
		RegLd("SR", 4).
		Reg("ACC", 8).
		Reg("MAROFF", 8).
		Reg("MARPG", 4).
		Mux("M1", 8, 2).
		Mux("M2", 4, 2).
		Mux("M3", 8, 2).
		Unit(rtl.Unit{Name: "alu", Op: rtl.OpAdd, Width: 8}).
		Wire("Data", "M1.in0").
		Wire("alu.out", "M1.in1").
		Wire("M1.out", "IR.d").
		Wire("IR.q[3:0]", "MARPG.d").
		Wire("IR.q[7:4]", "SR.d").
		Wire("en", "SR.ld").
		Wire("SR.q", "ACC.d[3:0]").
		Wire("IR.q[3:0]", "M2.in0").
		Wire("alu.out[7:4]", "M2.in1").
		Wire("M2.out", "ACC.d[7:4]").
		Wire("ACC.q", "M3.in0").
		Wire("Data", "M3.in1").
		Wire("M3.out", "MAROFF.d").
		Wire("MARPG.q", "A118").
		Wire("MAROFF.q", "A70").
		Wire("ACC.q", "alu.in0").
		Wire("MAROFF.q", "alu.in1").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func buildRCG(t *testing.T, c *rtl.Core) *RCG {
	t.Helper()
	scan, err := hscan.Insert(c)
	if err != nil {
		t.Fatalf("hscan: %v", err)
	}
	g, err := Build(c, scan)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestRCGNodesAndEdges(t *testing.T) {
	c := miniCPU(t)
	g := buildRCG(t, c)
	for _, want := range []string{"Data", "A70", "A118", "IR", "SR", "ACC", "MAROFF", "MARPG"} {
		if _, ok := g.NodeIndex(want); !ok {
			t.Errorf("missing RCG node %s", want)
		}
	}
	// Edge Data->IR through M1@0 must exist and be HSCAN (scan chain head).
	data, _ := g.NodeIndex("Data")
	ir, _ := g.NodeIndex("IR")
	found := false
	for _, e := range g.Edges {
		if e.From == data && e.To == ir {
			found = true
			if !e.HSCAN {
				t.Error("Data->IR edge not flagged HSCAN")
			}
		}
	}
	if !found {
		t.Error("Data->IR edge missing")
	}
	// Units block paths: no edge from alu.
	if _, ok := g.NodeIndex("alu"); ok {
		t.Error("functional unit leaked into RCG")
	}
}

func TestSplitNodeDetection(t *testing.T) {
	c := miniCPU(t)
	g := buildRCG(t, c)
	acc, _ := g.NodeIndex("ACC")
	if !g.CSplit(acc) {
		t.Error("ACC should be C-split (nibbles loaded from SR and M2)")
	}
	ir, _ := g.NodeIndex("IR")
	if !g.OSplit(ir) {
		t.Error("IR should be O-split (nibbles fan out to MARPG/SR/M2)")
	}
	mar, _ := g.NodeIndex("MAROFF")
	if g.CSplit(mar) {
		t.Error("MAROFF is loaded full-width; not C-split")
	}
}

func TestJustificationLatencies(t *testing.T) {
	c := miniCPU(t)
	g := buildRCG(t, c)
	a70, _ := g.NodeIndex("A70")
	a118, _ := g.NodeIndex("A118")

	// All edges admitted: the M3 shortcut justifies A70 in one cycle.
	p, ok := g.SolveJust(a70, false)
	if !ok {
		t.Fatal("A70 unjustifiable with all edges")
	}
	if p.Latency != 1 {
		t.Errorf("A70 all-edge latency = %d, want 1 (Data->M3->MAROFF)", p.Latency)
	}
	// A118 is two cycles either way (Data->IR->MARPG).
	p, ok = g.SolveJust(a118, false)
	if !ok {
		t.Fatal("A118 unjustifiable")
	}
	if p.Latency != 2 {
		t.Errorf("A118 latency = %d, want 2", p.Latency)
	}
	ends := g.EndNames(p)
	if len(ends) != 1 || ends[0] != "Data" {
		t.Errorf("A118 justified from %v, want [Data]", ends)
	}
}

func TestHSCANOnlyJustificationSlower(t *testing.T) {
	c := miniCPU(t)
	g := buildRCG(t, c)
	a70, _ := g.NodeIndex("A70")
	strict, okS := g.SolveJust(a70, true)
	loose, okL := g.SolveJust(a70, false)
	if !okS || !okL {
		t.Fatalf("solve failed: strict=%v loose=%v", okS, okL)
	}
	if strict.Latency <= loose.Latency {
		t.Errorf("HSCAN-only latency %d should exceed all-edge latency %d", strict.Latency, loose.Latency)
	}
	// ACC's two nibbles both pass through SR holding different values, so
	// the branches serialize: (Data->SR->ACC) 2 + 2, then MAROFF.
	if strict.Latency != 5 {
		t.Errorf("HSCAN-only A70 latency = %d, want 5", strict.Latency)
	}
}

func TestPropagationReachesOutputs(t *testing.T) {
	c := miniCPU(t)
	g := buildRCG(t, c)
	data, _ := g.NodeIndex("Data")
	p, ok := g.SolveProp(data, false)
	if !ok {
		t.Fatal("Data unpropagatable")
	}
	if p.Latency != 1 {
		t.Errorf("prop latency = %d, want 1 (M3 shortcut)", p.Latency)
	}
}

func TestVersionLadder(t *testing.T) {
	c := miniCPU(t)
	g := buildRCG(t, c)
	vs, err := Versions(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) < 2 {
		t.Fatalf("expected a ladder of >= 2 versions, got %d", len(vs))
	}
	// Monotone trade-off: max latency non-increasing, area non-decreasing.
	for i := 1; i < len(vs); i++ {
		if vs[i].MaxLatency() > vs[i-1].MaxLatency() {
			t.Errorf("version %d latency %d > version %d latency %d",
				i+1, vs[i].MaxLatency(), i, vs[i-1].MaxLatency())
		}
		ai, aj := vs[i].Area, vs[i-1].Area
		if ai.Cells() < aj.Cells() {
			t.Errorf("version %d area %d < version %d area %d",
				i+1, ai.Cells(), i, aj.Cells())
		}
	}
	// The ladder is a Pareto front: the first version is the cheapest
	// undominated configuration.
	v1 := vs[0]
	if got := v1.JustLatency("A118"); got != 2 {
		t.Errorf("V1 just(A118) = %d, want 2", got)
	}
	// The last version reaches single-cycle transparency everywhere.
	last := vs[len(vs)-1]
	if last.MaxLatency() != 1 {
		t.Errorf("final version max latency = %d, want 1", last.MaxLatency())
	}
	// Labels renumbered consecutively.
	for i, v := range vs {
		if v.Index != i+1 {
			t.Errorf("version %d has index %d", i+1, v.Index)
		}
	}
}

func TestSharedEdgeSerialization(t *testing.T) {
	// Both outputs justify through register R1 from D: their paths share
	// the D->R1 edge and must serialize (Section 3's 6+2=8 effect).
	c, err := rtl.NewCore("serial").
		In("D", 8).
		Out("X", 8).Out("Y", 8).
		Reg("R1", 8).Reg("RX", 8).Reg("RY", 8).
		Wire("D", "R1.d").
		Wire("R1.q", "RX.d").
		Wire("R1.q", "RY.d").
		Wire("RX.q", "X").
		Wire("RY.q", "Y").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := g.NodeIndex("X")
	y, _ := g.NodeIndex("Y")
	px, ok1 := g.SolveJust(x, false)
	py, ok2 := g.SolveJust(y, false)
	if !ok1 || !ok2 {
		t.Fatal("justification failed")
	}
	if px.Latency != 2 || py.Latency != 2 {
		t.Fatalf("individual latencies = %d,%d, want 2,2", px.Latency, py.Latency)
	}
	v := &Version{RCG: g, Just: map[string]*PathUse{"X": px, "Y": py}, Prop: map[string]*PathUse{}}
	if got := v.SerializedJustLatency([]string{"X", "Y"}); got != 4 {
		t.Errorf("serialized latency = %d, want 4 (shared D->R1 edge)", got)
	}
	if got := v.SerializedJustLatency([]string{"X"}); got != 2 {
		t.Errorf("single-path serialized latency = %d, want 2", got)
	}
}

func TestCSplitSerializesOverlappingBranches(t *testing.T) {
	// RZ loads its nibbles through branches that both need register RA to
	// hold *different* values: under the paper's no-pipelining rule the
	// branches transfer sequentially (latencies add: 2+3=5).
	c, err := rtl.NewCore("unbal").
		In("D", 4).
		Out("Z", 8).
		Reg("RA", 4).Reg("RB", 4).Reg("RZ", 8).
		Wire("D", "RA.d").
		Wire("RA.q", "RB.d").
		Wire("RA.q", "RZ.d[3:0]").
		Wire("RB.q", "RZ.d[7:4]").
		Wire("RZ.q", "Z").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	z, _ := g.NodeIndex("Z")
	p, ok := g.SolveJust(z, false)
	if !ok {
		t.Fatal("Z unjustifiable")
	}
	if p.Latency != 5 {
		t.Errorf("latency = %d, want 5 (serialized 2+3 through shared RA)", p.Latency)
	}
	if len(p.Freezes) == 0 {
		t.Errorf("expected freeze logic for the early branch, got none")
	}
}

func TestCSplitReconvergenceRunsParallel(t *testing.T) {
	// The ACCUMULATOR/IR effect of Figure 4: both branches draw disjoint
	// slices of ONE load of RA, so they run in parallel; the shallow
	// branch freezes one cycle to balance (the Status-register freeze).
	c, err := rtl.NewCore("reconv").
		In("D", 8).
		Out("Z", 8).
		Reg("RA", 8).Reg("RB", 4).Reg("RZ", 8).
		Wire("D", "RA.d").
		Wire("RA.q[3:0]", "RZ.d[3:0]").
		Wire("RA.q[7:4]", "RB.d").
		Wire("RB.q", "RZ.d[7:4]").
		Wire("RZ.q", "Z").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	z, _ := g.NodeIndex("Z")
	p, ok := g.SolveJust(z, false)
	if !ok {
		t.Fatal("Z unjustifiable")
	}
	if p.Latency != 3 {
		t.Errorf("latency = %d, want 3 (parallel branches, single RA load)", p.Latency)
	}
	if p.Freezes["RA"] != 1 {
		t.Errorf("freezes = %v, want RA frozen 1 cycle", p.Freezes)
	}
}

func TestOSplitForwardBranching(t *testing.T) {
	c, err := rtl.NewCore("osplit").
		In("D", 8).
		Out("X", 4).Out("Y", 4).
		Reg("R1", 8).Reg("RX", 4).Reg("RB", 4).Reg("RY", 4).
		Wire("D", "R1.d").
		Wire("R1.q[3:0]", "RX.d").
		Wire("R1.q[7:4]", "RB.d").
		Wire("RB.q", "RY.d").
		Wire("RX.q", "X").
		Wire("RY.q", "Y").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := g.NodeIndex("D")
	p, ok := g.SolveProp(d, false)
	if !ok {
		t.Fatal("D unpropagatable")
	}
	if p.Latency != 3 {
		t.Errorf("prop latency = %d, want 3 (slow branch via RB)", p.Latency)
	}
	ends := g.EndNames(p)
	if len(ends) != 2 {
		t.Errorf("value should spread to both outputs, got %v", ends)
	}
	if p.Freezes["RX"] != 1 {
		t.Errorf("freezes = %v, want RX frozen 1 cycle", p.Freezes)
	}
}

func TestCreatedMuxWhenNoPath(t *testing.T) {
	// An output fed only by a functional unit: justification must fall
	// back to a created transparency mux with one-cycle latency.
	c, err := rtl.NewCore("blocked").
		In("D", 8).
		Out("Z", 8).
		Reg("R1", 8).
		Unit(rtl.Unit{Name: "inc", Op: rtl.OpInc, Width: 8}).
		Wire("D", "R1.d").
		Wire("R1.q", "inc.in0").
		Wire("inc.out", "Z").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := Versions(g)
	if err != nil {
		t.Fatal(err)
	}
	// V1 routes through the created R1->Z mux: D reaches R1 in one cycle
	// and the mux buffers one more.
	v1 := vs[0]
	if got := v1.JustLatency("Z"); got != 2 {
		t.Errorf("V1 created-mux justification latency = %d, want 2", got)
	}
	// The created mux must be priced: 8 Mux2 + control.
	a := v1.Area
	if a.Cells() < 8 {
		t.Errorf("version area = %d cells, want >= 8 for the created mux", a.Cells())
	}
	// The ladder ends with direct single-cycle transparency.
	last := vs[len(vs)-1]
	if got := last.JustLatency("Z"); got != 1 {
		t.Errorf("final version justification latency = %d, want 1", got)
	}
}

func TestPairsForCCG(t *testing.T) {
	c := miniCPU(t)
	g := buildRCG(t, c)
	vs, err := Versions(g)
	if err != nil {
		t.Fatal(err)
	}
	v := vs[len(vs)-1]
	jp := v.JustPairs()
	if len(jp) == 0 {
		t.Fatal("no justification pairs")
	}
	seen := map[string]bool{}
	for _, p := range jp {
		seen[p.Out] = true
		if p.Latency < 1 {
			t.Errorf("pair %s->%s latency %d < 1", p.In, p.Out, p.Latency)
		}
		if p.In == "" || p.Out == "" {
			t.Errorf("malformed pair %+v", p)
		}
	}
	for _, want := range []string{"A70", "A118"} {
		if !seen[want] {
			t.Errorf("no justification pair for output %s", want)
		}
	}
	pp := v.PropPairs()
	if len(pp) == 0 {
		t.Fatal("no propagation pairs")
	}
}

func TestCloneIndependence(t *testing.T) {
	c := miniCPU(t)
	g := buildRCG(t, c)
	n := len(g.Edges)
	cl := g.Clone()
	data, _ := cl.NodeIndex("Data")
	a70, _ := cl.NodeIndex("A70")
	cl.AddCreatedEdge(data, a70, 0, 7, 0, 7)
	if len(g.Edges) != n {
		t.Error("clone mutation leaked into original")
	}
	if len(cl.Edges) != n+1 {
		t.Error("created edge not added to clone")
	}
}
