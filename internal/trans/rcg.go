// Package trans implements core transparency analysis (Section 4 of the
// paper): a register connectivity graph (RCG) is extracted from the RTL,
// transparency paths are found by breadth/depth-first search over HSCAN
// edges first and all existing paths second, split nodes (C-split/O-split)
// force parallel sub-searches that are balanced with freeze logic, and
// transparency multiplexers are inserted where no path exists or where the
// latency must be reduced. The result is a ladder of core versions trading
// transparency latency against area overhead (Figures 6 and 8).
package trans

import (
	"fmt"
	"sort"

	"repro/internal/hscan"
	"repro/internal/rtl"
)

// NodeKind classifies RCG nodes.
type NodeKind int

// RCG node kinds.
const (
	NodeIn NodeKind = iota
	NodeOut
	NodeReg
)

func (k NodeKind) String() string {
	switch k {
	case NodeIn:
		return "in"
	case NodeOut:
		return "out"
	case NodeReg:
		return "reg"
	}
	return fmt.Sprintf("NodeKind(%d)", int(k))
}

// Node is an RCG node: an input port, output port, or register.
type Node struct {
	Kind    NodeKind
	Name    string
	Width   int
	HasLoad bool // registers with load-enable freeze for free (1 OR gate)
	Control bool // control port
}

// Edge is a data-moving RCG edge. A value entering To through the edge
// appears after the edge's Latency (1 for register destinations, 0 for
// output ports; created justification muxes are buffered in the
// destination register and cost 1).
type Edge struct {
	ID           int
	From, To     int
	SrcLo, SrcHi int
	DstLo, DstHi int
	HSCAN        bool      // part of the HSCAN scan paths
	Created      bool      // transparency mux added by this package
	ScanMux      bool      // scan mux inserted by HSCAN (physical only after insertion)
	Hops         []rtl.Hop // multiplexer steering of the underlying path
}

// SrcWidth returns the width of the source slice.
func (e *Edge) SrcWidth() int { return e.SrcHi - e.SrcLo + 1 }

// RCG is the register connectivity graph of one core.
type RCG struct {
	Core  *rtl.Core
	Scan  *hscan.Result
	Nodes []Node
	Edges []*Edge
	Out   [][]int // node -> outgoing edge ids
	In    [][]int // node -> incoming edge ids
	idx   map[string]int
}

// NodeIndex returns the index of the named node.
func (g *RCG) NodeIndex(name string) (int, bool) {
	i, ok := g.idx[name]
	return i, ok
}

// InputNodes lists the input-port node indices in declaration order.
func (g *RCG) InputNodes() []int {
	var out []int
	for i, n := range g.Nodes {
		if n.Kind == NodeIn {
			out = append(out, i)
		}
	}
	return out
}

// OutputNodes lists the output-port node indices in declaration order.
func (g *RCG) OutputNodes() []int {
	var out []int
	for i, n := range g.Nodes {
		if n.Kind == NodeOut {
			out = append(out, i)
		}
	}
	return out
}

// CSplit reports whether the node's inputs are bit-sliced across several
// sources (no single incoming edge covers its full width, but some edges
// exist).
func (g *RCG) CSplit(node int) bool {
	n := g.Nodes[node]
	if n.Kind == NodeIn {
		return false
	}
	any := false
	for _, eid := range g.In[node] {
		e := g.Edges[eid]
		any = true
		if e.DstLo == 0 && e.DstHi == n.Width-1 {
			return false
		}
	}
	return any
}

// OSplit reports whether the node's fanout is bit-sliced (its value leaves
// in parts through different edges and no single edge carries all bits).
func (g *RCG) OSplit(node int) bool {
	n := g.Nodes[node]
	if n.Kind == NodeOut {
		return false
	}
	any := false
	for _, eid := range g.Out[node] {
		e := g.Edges[eid]
		any = true
		if e.SrcLo == 0 && e.SrcHi == n.Width-1 {
			return false
		}
	}
	return any
}

// Build extracts the RCG from a core and its HSCAN insertion result. Every
// mux-only RTL path between ports and registers becomes an edge; edges
// that carry the scan chains (including test-mux paths created by HSCAN)
// are flagged HSCAN.
func Build(c *rtl.Core, scan *hscan.Result) (*RCG, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	g := &RCG{Core: c, Scan: scan, idx: make(map[string]int)}
	addNode := func(n Node) {
		g.idx[n.Name] = len(g.Nodes)
		g.Nodes = append(g.Nodes, n)
	}
	for _, p := range c.Ports {
		k := NodeIn
		if p.Dir == rtl.Out {
			k = NodeOut
		}
		addNode(Node{Kind: k, Name: p.Name, Width: p.Width, Control: p.Control})
	}
	for _, r := range c.Regs {
		addNode(Node{Kind: NodeReg, Name: r.Name, Width: r.Width, HasLoad: r.HasLoad})
	}

	addEdge := func(e Edge) *Edge {
		e.ID = len(g.Edges)
		ep := &e
		g.Edges = append(g.Edges, ep)
		return ep
	}

	for _, p := range rtl.AllPaths(c) {
		if p.Dst.Pin == "ld" {
			continue // load-enable wiring is control, not a data path
		}
		from, ok1 := g.idx[p.Src.Comp]
		to, ok2 := g.idx[p.Dst.Comp]
		if !ok1 || !ok2 {
			continue
		}
		if from == to {
			continue // hold path
		}
		addEdge(Edge{
			From: from, To: to,
			SrcLo: p.Src.Lo, SrcHi: p.Src.Hi,
			DstLo: p.Dst.Lo, DstHi: p.Dst.Hi,
			Hops: p.Hops,
		})
	}

	// Flag scan edges; append HSCAN-created test-mux paths as new edges.
	if scan != nil {
		for _, se := range scan.Edges {
			from, ok1 := g.idx[se.From]
			to, ok2 := g.idx[se.To]
			if !ok1 || !ok2 {
				continue
			}
			if se.Created {
				addEdge(Edge{
					From: from, To: to,
					SrcLo: se.Src.Lo, SrcHi: se.Src.Hi,
					DstLo: se.Dst.Lo, DstHi: se.Dst.Hi,
					HSCAN:   true,
					ScanMux: true,
				})
				continue
			}
			for _, e := range g.Edges {
				if e.From == from && e.To == to &&
					e.SrcLo == se.Src.Lo && e.SrcHi == se.Src.Hi &&
					e.DstLo == se.Dst.Lo && e.DstHi == se.Dst.Hi &&
					hopsEqual(e.Hops, se.Hops) {
					e.HSCAN = true
					break
				}
			}
		}
	}
	g.rebuildAdj()
	return g, nil
}

func hopsEqual(a []rtl.Hop, b []rtl.Hop) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// rebuildAdj refreshes the adjacency lists after edges are added.
func (g *RCG) rebuildAdj() {
	g.Out = make([][]int, len(g.Nodes))
	g.In = make([][]int, len(g.Nodes))
	for _, e := range g.Edges {
		g.Out[e.From] = append(g.Out[e.From], e.ID)
		g.In[e.To] = append(g.In[e.To], e.ID)
	}
	for n := range g.Nodes {
		sort.Ints(g.Out[n])
		sort.Ints(g.In[n])
	}
}

// Clone deep-copies the RCG (shared Core and Scan, copied nodes/edges) so
// version construction can add created edges without disturbing siblings.
func (g *RCG) Clone() *RCG {
	c := &RCG{Core: g.Core, Scan: g.Scan, idx: g.idx}
	c.Nodes = append([]Node(nil), g.Nodes...)
	c.Edges = make([]*Edge, len(g.Edges))
	for i, e := range g.Edges {
		ce := *e
		c.Edges[i] = &ce
	}
	c.rebuildAdj()
	return c
}

// AddCreatedEdge inserts a transparency-mux edge and returns it.
func (g *RCG) AddCreatedEdge(from, to int, srcLo, srcHi, dstLo, dstHi int) *Edge {
	e := &Edge{
		ID:   len(g.Edges),
		From: from, To: to,
		SrcLo: srcLo, SrcHi: srcHi,
		DstLo: dstLo, DstHi: dstHi,
		Created: true,
	}
	g.Edges = append(g.Edges, e)
	g.Out[from] = append(g.Out[from], e.ID)
	g.In[to] = append(g.In[to], e.ID)
	return e
}

// hopLatency is the cycle cost of a value entering node through edge e:
// one cycle to clock into a register; zero for a combinational output
// port read; created justification edges buffer in the destination
// register of the output and cost one cycle.
func (g *RCG) hopLatency(e *Edge) int {
	if g.Nodes[e.To].Kind == NodeReg {
		return 1
	}
	if e.Created {
		return 1 // test mux lands in the register driving the output
	}
	return 0
}
