package trans_test

import (
	"fmt"

	"repro/internal/hscan"
	"repro/internal/systems"
	"repro/internal/trans"
)

// ExampleVersions builds the CPU's transparency version ladder — the
// paper's Figure 6 trade-off between transparency latency and area.
func ExampleVersions() {
	cpu := systems.CPU()
	scan, _ := hscan.Insert(cpu)
	rcg, _ := trans.Build(cpu, scan)
	versions, _ := trans.Versions(rcg)
	for _, v := range versions {
		a := v.Area
		fmt.Printf("%s: Data->Address(7:0)=%d cycles, Data->Address(11:8)=%d cycles, +%d cells\n",
			v.Label, v.JustLatency("AddrLo"), v.JustLatency("AddrHi"), a.Cells())
	}
	// Output:
	// Version 1: Data->Address(7:0)=6 cycles, Data->Address(11:8)=2 cycles, +4 cells
	// Version 2: Data->Address(7:0)=1 cycles, Data->Address(11:8)=2 cycles, +8 cells
	// Version 3: Data->Address(7:0)=1 cycles, Data->Address(11:8)=1 cycles, +12 cells
}
