package trans

import "sort"

// PathUse is a solved transparency path (a tree, in the presence of split
// nodes): the latency, the RCG edges used, the registers that must be
// frozen to balance unequal parallel branches (paper Section 4), and the
// terminal nodes reached.
type PathUse struct {
	Latency int
	// Edges maps used RCG edge ids to the mask of source bits the path
	// moves through them. Two paths conflict on an edge only when their
	// bit masks overlap: reconvergent branches that draw disjoint slices
	// of one register load share the edge without serializing, while
	// overlapping use means different values at different times and
	// forces sequential transfer (Section 4).
	Edges   map[int]uint64
	Freezes map[string]int // register/port name -> freeze cycles
	Ends    map[int]bool   // outputs reached (propagation) or inputs (justification)
}

func newPathUse() *PathUse {
	return &PathUse{Edges: map[int]uint64{}, Freezes: map[string]int{}, Ends: map[int]bool{}}
}

// maskRange returns a bit mask covering [lo,hi] (clamped to 64 bits).
func maskRange(lo, hi int) uint64 {
	if lo < 0 {
		lo = 0
	}
	if hi > 63 {
		hi = 63
	}
	if hi < lo {
		return 0
	}
	if hi-lo+1 >= 64 {
		return ^uint64(0)
	}
	return ((uint64(1) << uint(hi-lo+1)) - 1) << uint(lo)
}

func (p *PathUse) merge(q *PathUse) {
	for e, m := range q.Edges {
		p.Edges[e] |= m
	}
	for r, c := range q.Freezes {
		if c > p.Freezes[r] {
			p.Freezes[r] = c
		}
	}
	for n := range q.Ends {
		p.Ends[n] = true
	}
}

// allowed reports whether an edge may be used in the current search mode.
// HSCAN edges are always usable; transparency muxes created in this
// version are usable; other existing RCG edges only when hscanOnly is
// false (Version 2 and beyond).
func allowed(e *Edge, hscanOnly bool) bool {
	if e.HSCAN || e.Created {
		return true
	}
	return !hscanOnly
}

type searchKey struct {
	node, lo, hi int
}

// SolveProp finds a minimum-latency propagation path carrying the full
// width of the input port to output port(s). The bool result reports
// success.
func (g *RCG) SolveProp(input int, hscanOnly bool) (*PathUse, bool) {
	w := g.Nodes[input].Width
	return g.solveForward(input, 0, w-1, hscanOnly, map[searchKey]bool{})
}

// solveForward moves value slice [lo,hi] (in node-local bit coordinates)
// from node to output ports.
func (g *RCG) solveForward(node, lo, hi int, hscanOnly bool, onPath map[searchKey]bool) (*PathUse, bool) {
	if g.Nodes[node].Kind == NodeOut {
		p := newPathUse()
		p.Ends[node] = true
		return p, true
	}
	key := searchKey{node, lo, hi}
	if onPath[key] {
		return nil, false
	}
	onPath[key] = true
	defer delete(onPath, key)

	var best *PathUse
	consider := func(p *PathUse) {
		if p == nil {
			return
		}
		if best == nil || p.Latency < best.Latency {
			best = p
		}
	}

	// Option 1: a single edge carries the whole slice.
	for _, eid := range g.Out[node] {
		e := g.Edges[eid]
		if !allowed(e, hscanOnly) || e.SrcLo > lo || e.SrcHi < hi {
			continue
		}
		dLo := e.DstLo + (lo - e.SrcLo)
		dHi := e.DstLo + (hi - e.SrcLo)
		sub, ok := g.solveForward(e.To, dLo, dHi, hscanOnly, onPath)
		if !ok {
			continue
		}
		p := newPathUse()
		p.merge(sub)
		p.Edges[eid] |= maskRange(lo, hi)
		p.Latency = g.hopLatency(e) + sub.Latency
		consider(p)
	}

	// Option 2: O-split — the slice leaves in parts through several edges;
	// all parts must reach outputs and arrive together (freeze logic
	// balances early branches).
	if split, ok := g.splitForward(node, lo, hi, hscanOnly, onPath); ok {
		consider(split)
	}
	if best == nil {
		return nil, false
	}
	return best, true
}

// splitForward covers [lo,hi] with >= 2 disjoint edges starting at lo,
// enumerating candidate covers (bounded) and keeping the fastest.
// Candidates spanning the whole slice are option 1's business and are
// skipped here.
func (g *RCG) splitForward(node, lo, hi int, hscanOnly bool, onPath map[searchKey]bool) (*PathUse, bool) {
	var best *PathUse
	budget := 32
	var cover func(cur int, parts []part)
	cover = func(cur int, parts []part) {
		if budget <= 0 {
			return
		}
		if cur > hi {
			if len(parts) >= 2 {
				budget--
				if p := combineParts(parts); best == nil || p.Latency < best.Latency {
					best = p
				}
			}
			return
		}
		var cands []*Edge
		for _, eid := range g.Out[node] {
			e := g.Edges[eid]
			if !allowed(e, hscanOnly) {
				continue
			}
			s := e.SrcLo
			if s < lo {
				s = lo
			}
			if s != cur || e.SrcHi < cur {
				continue
			}
			if cur == lo && e.SrcHi >= hi {
				continue // full cover: handled by the single-edge option
			}
			cands = append(cands, e)
		}
		sort.Slice(cands, func(i, j int) bool {
			return min(cands[i].SrcHi, hi) > min(cands[j].SrcHi, hi)
		})
		for _, pick := range cands {
			end := min(pick.SrcHi, hi)
			dLo := pick.DstLo + (cur - pick.SrcLo)
			dHi := pick.DstLo + (end - pick.SrcLo)
			sub, ok := g.solveForward(pick.To, dLo, dHi, hscanOnly, onPath)
			if !ok {
				continue
			}
			sub.Edges[pick.ID] |= maskRange(cur, end)
			cover(end+1, append(parts, part{p: sub, arrive: g.hopLatency(pick) + sub.Latency, via: g.Nodes[pick.To].Name}))
		}
	}
	cover(lo, nil)
	if best == nil {
		return nil, false
	}
	return best, true
}

// SolveJust finds a minimum-latency justification path controlling the
// full width of the output port from input port(s).
func (g *RCG) SolveJust(output int, hscanOnly bool) (*PathUse, bool) {
	w := g.Nodes[output].Width
	return g.solveBackward(output, 0, w-1, hscanOnly, map[searchKey]bool{})
}

// solveBackward justifies slice [lo,hi] of node from input ports.
func (g *RCG) solveBackward(node, lo, hi int, hscanOnly bool, onPath map[searchKey]bool) (*PathUse, bool) {
	if g.Nodes[node].Kind == NodeIn {
		p := newPathUse()
		p.Ends[node] = true
		return p, true
	}
	key := searchKey{node: ^node, lo: lo, hi: hi} // distinct keyspace from forward
	if onPath[key] {
		return nil, false
	}
	onPath[key] = true
	defer delete(onPath, key)

	// Loading a register costs one cycle; reading an output port is
	// combinational; a created mux buffers in the output's register.
	hop := func(e *Edge) int { return g.hopLatency(e) }

	var best *PathUse
	consider := func(p *PathUse) {
		if p != nil && (best == nil || p.Latency < best.Latency) {
			best = p
		}
	}

	// Option 1: one incoming edge covers the slice.
	for _, eid := range g.In[node] {
		e := g.Edges[eid]
		if !allowed(e, hscanOnly) || e.DstLo > lo || e.DstHi < hi {
			continue
		}
		sLo := e.SrcLo + (lo - e.DstLo)
		sHi := e.SrcLo + (hi - e.DstLo)
		sub, ok := g.solveBackward(e.From, sLo, sHi, hscanOnly, onPath)
		if !ok {
			continue
		}
		p := newPathUse()
		p.merge(sub)
		p.Edges[eid] |= maskRange(sLo, sHi)
		p.Latency = hop(e) + sub.Latency
		consider(p)
	}

	// Option 2: C-split — the slice is loaded piecewise from several
	// sources (all fanin edges used; unbalanced sub-paths freeze early
	// data at the fanin source, as at the Status register in Figure 4).
	if split, ok := g.splitBackward(node, lo, hi, hscanOnly, onPath); ok {
		consider(split)
	}
	if best == nil {
		return nil, false
	}
	return best, true
}

func (g *RCG) splitBackward(node, lo, hi int, hscanOnly bool, onPath map[searchKey]bool) (*PathUse, bool) {
	var best *PathUse
	budget := 32
	var cover func(cur int, parts []part)
	cover = func(cur int, parts []part) {
		if budget <= 0 {
			return
		}
		if cur > hi {
			if len(parts) >= 2 {
				budget--
				if p := combineParts(parts); best == nil || p.Latency < best.Latency {
					best = p
				}
			}
			return
		}
		var cands []*Edge
		for _, eid := range g.In[node] {
			e := g.Edges[eid]
			if !allowed(e, hscanOnly) {
				continue
			}
			s := e.DstLo
			if s < lo {
				s = lo
			}
			if s != cur || e.DstHi < cur {
				continue
			}
			if cur == lo && e.DstHi >= hi {
				continue // full cover: handled by the single-edge option
			}
			cands = append(cands, e)
		}
		sort.Slice(cands, func(i, j int) bool {
			return min(cands[i].DstHi, hi) > min(cands[j].DstHi, hi)
		})
		for _, pick := range cands {
			end := min(pick.DstHi, hi)
			sLo := pick.SrcLo + (cur - pick.DstLo)
			sHi := pick.SrcLo + (end - pick.DstLo)
			sub, ok := g.solveBackward(pick.From, sLo, sHi, hscanOnly, onPath)
			if !ok {
				continue
			}
			sub.Edges[pick.ID] |= maskRange(sLo, sHi)
			cover(end+1, append(parts, part{p: sub, arrive: g.hopLatency(pick) + sub.Latency, via: g.Nodes[pick.From].Name}))
		}
	}
	cover(lo, nil)
	if best == nil {
		return nil, false
	}
	return best, true
}

// part is one branch of a split search.
type part struct {
	p      *PathUse
	arrive int
	via    string
}

// combineParts merges split branches: branches with disjoint edge sets run
// in parallel (overall latency is their max); branches that share an edge
// cannot move data simultaneously and serialize (their latencies add — the
// Section 3 CPU moves Data through Address(7:0) and Address(11:8) in
// 6+2=8 cycles for exactly this reason). Early branches freeze until the
// last one completes.
func combineParts(parts []part) *PathUse {
	n := len(parts)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if sharesEdge(parts[i].p, parts[j].p) {
				parent[find(i)] = find(j)
			}
		}
	}
	groupSum := map[int]int{}
	for i := range parts {
		groupSum[find(i)] += parts[i].arrive
	}
	overall := 0
	for _, s := range groupSum {
		if s > overall {
			overall = s
		}
	}
	out := newPathUse()
	for i := range parts {
		out.merge(parts[i].p)
		if d := overall - parts[i].arrive; d > 0 {
			if d > out.Freezes[parts[i].via] {
				out.Freezes[parts[i].via] = d
			}
		}
	}
	out.Latency = overall
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// EndNames returns the sorted names of the terminal nodes of a path.
func (g *RCG) EndNames(p *PathUse) []string {
	var out []string
	for n := range p.Ends {
		out = append(out, g.Nodes[n].Name)
	}
	sort.Strings(out)
	return out
}
