package trans_test

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/hscan"
	"repro/internal/systems"
	"repro/internal/trans"
)

// ladderSignature renders a version ladder to one canonical string:
// every RCG edge (created muxes included) and every solved path with its
// latency, edge set and endpoints.
func ladderSignature(vs []*trans.Version) string {
	var b []byte
	app := func(format string, args ...interface{}) { b = append(b, fmt.Sprintf(format, args...)...) }
	for _, v := range vs {
		app("version %d area=%d\n", v.Index, v.Area.Cells())
		for _, e := range v.RCG.Edges {
			app(" edge %d %d->%d s[%d:%d] d[%d:%d] h=%v c=%v sm=%v\n",
				e.ID, e.From, e.To, e.SrcLo, e.SrcHi, e.DstLo, e.DstHi, e.HSCAN, e.Created, e.ScanMux)
		}
		for _, m := range []map[string]*trans.PathUse{v.Just, v.Prop} {
			var names []string
			for n := range m {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				p := m[n]
				var edges []string
				for id, mask := range p.Edges {
					edges = append(edges, fmt.Sprintf("%d:%x", id, mask))
				}
				sort.Strings(edges)
				var ends []int
				for e := range p.Ends {
					ends = append(ends, e)
				}
				sort.Ints(ends)
				app(" path %s lat=%d edges=%v ends=%v\n", n, p.Latency, edges, ends)
			}
		}
	}
	return string(b)
}

// TestVersionLadderDeterministic builds every System 1 core's version
// ladder 40 times and requires bit-identical results each time.
// createJustEdges/createPropEdges pick mux endpoints based on which
// created edges already exist, so any map-order iteration over the ports
// feeding them makes the ladder differ from build to build (this
// regressed once: the upgrade batching in Versions iterated
// prev.Just/prev.Prop directly, and cores with several ports tied at the
// worst latency — System 1's DISPLAY — got different mux assignments).
func TestVersionLadderDeterministic(t *testing.T) {
	for _, c := range systems.System1().TestableCores() {
		t.Run(c.Name, func(t *testing.T) {
			scan, err := hscan.Insert(c.RTL)
			if err != nil {
				t.Fatal(err)
			}
			base, err := trans.Build(c.RTL, scan)
			if err != nil {
				t.Fatal(err)
			}
			vs, err := trans.Versions(base.Clone())
			if err != nil {
				t.Fatal(err)
			}
			want := ladderSignature(vs)
			for i := 1; i < 40; i++ {
				vs, err := trans.Versions(base.Clone())
				if err != nil {
					t.Fatalf("rebuild %d: %v", i, err)
				}
				if got := ladderSignature(vs); got != want {
					t.Fatalf("rebuild %d produced a different ladder:\n%s\n--- first ---\n%s", i, got, want)
				}
			}
		})
	}
}
