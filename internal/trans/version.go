package trans

import (
	"fmt"
	"sort"

	"repro/internal/cell"
	"repro/internal/obs"
)

// Version is one transparency configuration of a core: the solved
// propagation path per input, justification path per output, the extra
// transparency logic it needs, and its area overhead in cells (Figures 6
// and 8 of the paper list these ladders for the CPU, PREPROCESSOR and
// DISPLAY cores).
type Version struct {
	Index int    // 1-based
	Label string // "Version 1", ...
	RCG   *RCG   // includes any created transparency-mux edges
	Prop  map[string]*PathUse
	Just  map[string]*PathUse
	Area  cell.Area // transparency logic only (HSCAN cost excluded)
}

// PropLatency returns the propagation latency of the named input (or -1).
func (v *Version) PropLatency(in string) int {
	if p, ok := v.Prop[in]; ok {
		return p.Latency
	}
	return -1
}

// JustLatency returns the justification latency of the named output (-1
// if unknown).
func (v *Version) JustLatency(out string) int {
	if p, ok := v.Just[out]; ok {
		return p.Latency
	}
	return -1
}

// MaxLatency returns the largest latency over all inputs and outputs.
func (v *Version) MaxLatency() int {
	max := 0
	for _, p := range v.Prop {
		if p.Latency > max {
			max = p.Latency
		}
	}
	for _, p := range v.Just {
		if p.Latency > max {
			max = p.Latency
		}
	}
	return max
}

// SerializedJustLatency returns the time to justify all listed outputs
// when their paths may share edges: disjoint paths run in parallel (max);
// paths sharing an edge serialize (sum), as in the CPU's 6+2=8-cycle
// Data -> Address example of Section 3.
func (v *Version) SerializedJustLatency(outs []string) int {
	return serialize(v.collect(outs, v.Just))
}

// SerializedPropLatency is the propagation analogue for a set of inputs.
func (v *Version) SerializedPropLatency(ins []string) int {
	return serialize(v.collect(ins, v.Prop))
}

func (v *Version) collect(names []string, m map[string]*PathUse) []*PathUse {
	var ps []*PathUse
	for _, n := range names {
		if p, ok := m[n]; ok {
			ps = append(ps, p)
		}
	}
	return ps
}

// serialize groups paths into clusters sharing edges; each cluster's
// latencies add, clusters run in parallel.
func serialize(ps []*PathUse) int {
	n := len(ps)
	if n == 0 {
		return 0
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if sharesEdge(ps[i], ps[j]) {
				parent[find(i)] = find(j)
			}
		}
	}
	sums := map[int]int{}
	for i, p := range ps {
		sums[find(i)] += p.Latency
	}
	max := 0
	for _, s := range sums {
		if s > max {
			max = s
		}
	}
	return max
}

// sharesEdge reports a physical conflict: a common edge whose used bit
// masks overlap.
func sharesEdge(a, b *PathUse) bool {
	for e, m := range a.Edges {
		if b.Edges[e]&m != 0 {
			return true
		}
	}
	return false
}

// Pair is a chip-level transparency edge: data moved from core input In to
// core output Out (slice [OutLo,OutHi]) with the given latency, using the
// listed RCG edges (shared edges serialize at the chip level).
type Pair struct {
	In, Out      string
	OutLo, OutHi int
	Latency      int
	Edges        map[int]uint64 // RCG edge id -> used source-bit mask
}

// JustPairs derives (input -> output) pairs from the justification paths:
// controlling Out requires driving In for Latency cycles.
func (v *Version) JustPairs() []Pair {
	var out []Pair
	for o, p := range v.Just {
		node, ok := v.RCG.NodeIndex(o)
		if !ok {
			continue
		}
		w := v.RCG.Nodes[node].Width
		for end := range p.Ends {
			out = append(out, Pair{
				In: v.RCG.Nodes[end].Name, Out: o,
				OutLo: 0, OutHi: w - 1,
				Latency: p.Latency, Edges: p.Edges,
			})
		}
	}
	sortPairs(out)
	return out
}

// PropPairs derives (input -> output) pairs from the propagation paths:
// a value at In appears at each listed Out after Latency cycles.
func (v *Version) PropPairs() []Pair {
	var out []Pair
	for in, p := range v.Prop {
		for end := range p.Ends {
			n := v.RCG.Nodes[end]
			out = append(out, Pair{
				In: in, Out: n.Name,
				OutLo: 0, OutHi: n.Width - 1,
				Latency: p.Latency, Edges: p.Edges,
			})
		}
	}
	sortPairs(out)
	return out
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].In != ps[j].In {
			return ps[i].In < ps[j].In
		}
		if ps[i].Out != ps[j].Out {
			return ps[i].Out < ps[j].Out
		}
		return ps[i].OutLo < ps[j].OutLo
	})
}

// freezeCells is the transparency-logic cost of freezing a node: one OR
// gate when the register has a load-enable, else a two-cell clock gate.
func freezeCells(n Node) int {
	if n.HasLoad {
		return 1
	}
	return 2
}

// solveAll computes propagation and justification paths on g for every
// port and returns the assembled Version. With preferHSCAN (the paper's
// base Version 1), each port is first searched over HSCAN edges only,
// falling back to all existing RCG edges, and only then to created
// transparency muxes — the minimum-area order of Section 4. Without it
// (Version 2 and beyond), the minimum-latency path over all edges is
// taken directly.
func solveAll(g *RCG, index int, preferHSCAN bool) (*Version, error) {
	v := &Version{
		Index: index,
		Label: fmt.Sprintf("Version %d", index),
		RCG:   g,
		Prop:  map[string]*PathUse{},
		Just:  map[string]*PathUse{},
	}
	// Propagation per input.
	for _, in := range g.InputNodes() {
		name := g.Nodes[in].Name
		var p *PathUse
		var ok bool
		if preferHSCAN {
			p, ok = g.SolveProp(in, true)
		}
		if !ok {
			p, ok = g.SolveProp(in, false)
		}
		if !ok {
			if err := g.createPropEdges(in, false); err != nil {
				return nil, err
			}
			p, ok = g.SolveProp(in, false)
			if !ok {
				return nil, fmt.Errorf("trans: core %s: input %s unpropagatable even with created muxes", g.Core.Name, name)
			}
		}
		v.Prop[name] = p
	}
	// Justification per output.
	for _, out := range g.OutputNodes() {
		name := g.Nodes[out].Name
		var p *PathUse
		var ok bool
		if preferHSCAN {
			p, ok = g.SolveJust(out, true)
		}
		if !ok {
			p, ok = g.SolveJust(out, false)
		}
		if !ok {
			if err := g.createJustEdges(out); err != nil {
				return nil, err
			}
			p, ok = g.SolveJust(out, false)
			if !ok {
				return nil, fmt.Errorf("trans: core %s: output %s unjustifiable even with created muxes", g.Core.Name, name)
			}
		}
		v.Just[name] = p
	}
	v.computeArea()
	return v, nil
}

// createPropEdges adds transparency muxes so the input can reach outputs:
// per the paper, a register one cycle from the input (or the input itself)
// is connected to output(s), preferring outputs not yet used. With direct
// set (latency-reduction versions), the mux taps the port itself so the
// value lands in the output's register after a single cycle.
func (g *RCG) createPropEdges(in int, direct bool) error {
	// Choose the source: a register reachable in one cycle whose load
	// covers the full input (tracking where the input bits land in it),
	// else the port itself.
	w := g.Nodes[in].Width
	src := in
	srcBase := 0
	if !direct {
		for _, eid := range g.Out[in] {
			e := g.Edges[eid]
			if g.Nodes[e.To].Kind == NodeReg && e.SrcLo == 0 && e.SrcHi == w-1 {
				src = e.To
				srcBase = e.DstLo
				break
			}
		}
	}
	remaining := w
	lo := 0
	used := g.usedOutputs()
	for remaining > 0 {
		o := g.pickOutput(remaining, used)
		if o < 0 {
			return fmt.Errorf("trans: core %s: no output ports available for created propagation mux", g.Core.Name)
		}
		used[o] = true
		ow := g.Nodes[o].Width
		n := min(remaining, ow)
		g.AddCreatedEdge(src, o, srcBase+lo, srcBase+lo+n-1, 0, n-1)
		lo += n
		remaining -= n
	}
	return nil
}

// createJustEdges adds transparency muxes justifying the output directly
// from input port(s), landing in the register that drives the output.
func (g *RCG) createJustEdges(out int) error {
	w := g.Nodes[out].Width
	remaining := w
	lo := 0
	used := g.usedInputs()
	for remaining > 0 {
		i := g.pickInput(remaining, used)
		if i < 0 {
			return fmt.Errorf("trans: core %s: no input ports available for created justification mux", g.Core.Name)
		}
		used[i] = true
		iw := g.Nodes[i].Width
		n := min(remaining, iw)
		g.AddCreatedEdge(i, out, 0, n-1, lo, lo+n-1)
		lo += n
		remaining -= n
	}
	return nil
}

func (g *RCG) usedOutputs() map[int]bool {
	used := map[int]bool{}
	for _, e := range g.Edges {
		if e.Created && g.Nodes[e.To].Kind == NodeOut {
			used[e.To] = true
		}
	}
	return used
}

func (g *RCG) usedInputs() map[int]bool {
	used := map[int]bool{}
	for _, e := range g.Edges {
		if e.Created && g.Nodes[e.From].Kind == NodeIn {
			used[e.From] = true
		}
	}
	return used
}

// pickOutput selects an output port for a created edge: prefer unused,
// then width >= want, then widest, then name order.
func (g *RCG) pickOutput(want int, used map[int]bool) int {
	best := -1
	score := func(n int) [4]int {
		nd := g.Nodes[n]
		s := [4]int{}
		if !used[n] {
			s[0] = 1
		}
		if nd.Width >= want {
			s[1] = 1
		}
		s[2] = nd.Width
		return s
	}
	for _, o := range g.OutputNodes() {
		if best < 0 {
			best = o
			continue
		}
		a, b := score(o), score(best)
		for k := 0; k < 3; k++ {
			if a[k] != b[k] {
				if a[k] > b[k] {
					best = o
				}
				break
			}
		}
	}
	return best
}

func (g *RCG) pickInput(want int, used map[int]bool) int {
	best := -1
	score := func(n int) [3]int {
		nd := g.Nodes[n]
		s := [3]int{}
		if !used[n] {
			s[0] = 1
		}
		if nd.Width >= want {
			s[1] = 1
		}
		s[2] = nd.Width
		return s
	}
	for _, i := range g.InputNodes() {
		if best < 0 {
			best = i
			continue
		}
		a, b := score(i), score(best)
		for k := 0; k < 3; k++ {
			if a[k] != b[k] {
				if a[k] > b[k] {
					best = i
				}
				break
			}
		}
	}
	return best
}

// computeArea prices the version's transparency logic: created muxes
// (one Mux2 per bit plus two control gates), activation logic for
// non-HSCAN edges (two gates each, as for the select line of multiplexer
// M in Figure 3), and freeze logic per frozen register.
func (v *Version) computeArea() {
	var a cell.Area
	for _, e := range v.RCG.Edges {
		if e.Created {
			a.Add(cell.Mux2, e.SrcWidth())
			a.Add(cell.Nand2, 2)
		}
	}
	nonHSCAN := map[int]bool{}
	frozen := map[string]bool{}
	scanPaths := func(ps map[string]*PathUse) {
		for _, p := range ps {
			for eid := range p.Edges {
				e := v.RCG.Edges[eid]
				if !e.HSCAN && !e.Created {
					nonHSCAN[eid] = true
				}
			}
			for r := range p.Freezes {
				frozen[r] = true
			}
		}
	}
	scanPaths(v.Prop)
	scanPaths(v.Just)
	a.Add(cell.Nand2, 2*len(nonHSCAN))
	for r := range frozen {
		if n, ok := v.RCG.NodeIndex(r); ok {
			if freezeCells(v.RCG.Nodes[n]) == 1 {
				a.Add(cell.Or2, 1)
			} else {
				a.Add(cell.And2, 2)
			}
		}
	}
	v.Area = a
}

// Versions generates the core's version ladder: Version 1 uses HSCAN
// edges only; Version 2 admits every existing RCG path; later versions
// add transparency multiplexers one input/output at a time until every
// latency is one cycle (the paper builds exactly this ladder in
// Figures 5-8). Versions that do not change latency or area are elided.
func Versions(base *RCG) ([]*Version, error) {
	root := obs.Start(nil, "trans/ladder")
	defer root.End()
	var out []*Version
	sp := obs.Start(root, "trans/solve-hscan")
	v1, err := solveAll(base.Clone(), 1, true)
	sp.End()
	if err != nil {
		return nil, err
	}
	out = append(out, v1)

	sp = obs.Start(root, "trans/solve-existing")
	v2, err := solveAll(base.Clone(), 2, false)
	sp.End()
	if err != nil {
		return nil, err
	}
	if differs(v1, v2) {
		out = append(out, v2)
	} else {
		v2 = v1
	}

	prev := v2
	for len(out) < 8 {
		// Add transparency muxes for every port at the current worst
		// latency (the paper reduces one input/output pair per version;
		// batching ties keeps the ladder compact, like Figures 6 and 8).
		_, _, lat := worstPort(prev)
		if lat <= 1 {
			break
		}
		// Visit ports in sorted name order: created-mux endpoint choice
		// depends on which edges exist already, so iteration order is
		// part of the result and must not follow map order.
		g := prev.RCG.Clone()
		for _, name := range sortedPorts(prev.Just) {
			if prev.Just[name].Latency == lat {
				node, _ := g.NodeIndex(name)
				if err := g.createJustEdges(node); err != nil {
					return nil, err
				}
			}
		}
		for _, name := range sortedPorts(prev.Prop) {
			if prev.Prop[name].Latency == lat {
				node, _ := g.NodeIndex(name)
				if err := g.createPropEdges(node, true); err != nil {
					return nil, err
				}
			}
		}
		sp = obs.Start(root, "trans/solve-mux")
		v, err := solveAll(g, out[len(out)-1].Index+1, false)
		sp.End()
		if err != nil {
			return nil, err
		}
		if !differs(prev, v) {
			break
		}
		out = append(out, v)
		prev = v
	}
	out = paretoPrune(out)
	// Renumber consecutively.
	for i, v := range out {
		v.Index = i + 1
		v.Label = fmt.Sprintf("Version %d", i+1)
	}
	obs.C("trans.versions_built").Add(int64(len(out)))
	return out, nil
}

// latencySum is the total latency across every port, the ladder's quality
// metric.
func (v *Version) latencySum() int {
	s := 0
	for _, p := range v.Prop {
		s += p.Latency
	}
	for _, p := range v.Just {
		s += p.Latency
	}
	return s
}

// paretoPrune sorts versions by area and keeps only those that strictly
// improve total latency, so the published ladder (like Figures 6 and 8)
// is a clean area-vs-latency trade-off front.
func paretoPrune(vs []*Version) []*Version {
	sort.SliceStable(vs, func(i, j int) bool {
		ai, aj := vs[i].Area, vs[j].Area
		if ai.Cells() != aj.Cells() {
			return ai.Cells() < aj.Cells()
		}
		return vs[i].latencySum() < vs[j].latencySum()
	})
	var out []*Version
	best := int(^uint(0) >> 1)
	for _, v := range vs {
		if s := v.latencySum(); s < best {
			best = s
			out = append(out, v)
		}
	}
	return out
}

// sortedPorts returns the map's port names in sorted order.
func sortedPorts(m map[string]*PathUse) []string {
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// worstPort returns the port with the largest latency in the version.
func worstPort(v *Version) (NodeKind, string, int) {
	kind, name, lat := NodeIn, "", 0
	var names []string
	for n := range v.Just {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if l := v.Just[n].Latency; l > lat {
			kind, name, lat = NodeOut, n, l
		}
	}
	names = names[:0]
	for n := range v.Prop {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if l := v.Prop[n].Latency; l > lat {
			kind, name, lat = NodeIn, n, l
		}
	}
	return kind, name, lat
}

// differs reports whether two versions have different latencies or areas.
func differs(a, b *Version) bool {
	av, bv := a.Area, b.Area
	if av.Cells() != bv.Cells() {
		return true
	}
	for n, p := range a.Prop {
		if q, ok := b.Prop[n]; !ok || q.Latency != p.Latency {
			return true
		}
	}
	for n, p := range a.Just {
		if q, ok := b.Just[n]; !ok || q.Latency != p.Latency {
			return true
		}
	}
	return false
}
