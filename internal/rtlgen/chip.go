package rtlgen

import (
	"fmt"

	"repro/internal/rtl"
	"repro/internal/soc"
)

// ChipParams sizes a generated SoC.
type ChipParams struct {
	Seed  uint64
	Cores int // number of cores (default 2..4, seed-dependent)
}

// RandomChip wires randomly generated cores into a random feed-forward
// topology: the first core's inputs come from chip pins; later cores draw
// width-matching inputs from earlier cores' outputs or fresh pins; unused
// final outputs become chip POs. Some outputs deliberately stay
// unobservable so the scheduler's system-level test-mux fallback is
// exercised. The result validates and is ready for the full SOCET flow.
// An error means a drawn core failed to build; samplers skip the seed.
func RandomChip(p ChipParams) (*soc.Chip, error) {
	r := &rng{s: p.Seed*0x9E3779B9 + 77}
	if p.Cores == 0 {
		p.Cores = 2 + r.intn(3)
	}
	ch := &soc.Chip{Name: fmt.Sprintf("chip%04x", p.Seed&0xffff)}

	type outPort struct {
		core  string
		port  rtl.Port
		taken bool
	}
	var avail []*outPort

	piCount, poCount := 0, 0
	newPI := func(w int) string {
		name := fmt.Sprintf("PI%d", piCount)
		piCount++
		ch.PIs = append(ch.PIs, soc.Pin{Name: name, Width: w})
		return name
	}
	newPO := func(w int) string {
		name := fmt.Sprintf("PO%d", poCount)
		poCount++
		ch.POs = append(ch.POs, soc.Pin{Name: name, Width: w})
		return name
	}

	for i := 0; i < p.Cores; i++ {
		c, err := Random(Params{Seed: p.Seed*131 + uint64(i)})
		if err != nil {
			return nil, fmt.Errorf("rtlgen: chip %04x core %d: %w", p.Seed&0xffff, i, err)
		}
		// Core names must be unique chip-wide.
		c.Name = fmt.Sprintf("C%d_%s", i, c.Name)
		sc := &soc.Core{Name: c.Name, RTL: c}
		ch.Cores = append(ch.Cores, sc)
		for _, in := range c.Inputs() {
			var src *outPort
			if i > 0 && r.intn(10) < 6 {
				for tries := 0; tries < 8; tries++ {
					cand := avail[r.intn(len(avail))]
					if cand.port.Width == in.Width && !cand.taken {
						src = cand
						break
					}
				}
			}
			if src != nil {
				src.taken = true
				ch.Nets = append(ch.Nets, soc.Net{
					FromCore: src.core, FromPort: src.port.Name,
					ToCore: c.Name, ToPort: in.Name,
				})
			} else {
				ch.Nets = append(ch.Nets, soc.Net{
					FromPort: newPI(in.Width),
					ToCore:   c.Name, ToPort: in.Name,
				})
			}
		}
		for _, out := range c.Outputs() {
			avail = append(avail, &outPort{core: c.Name, port: out})
		}
	}
	// Terminal outputs: untaken outputs of the last core always reach POs
	// (the chip must be observable somewhere); earlier cores' spare
	// outputs become POs with probability 1/2, else stay unobservable.
	last := ch.Cores[len(ch.Cores)-1].Name
	for _, op := range avail {
		if op.taken {
			continue
		}
		if op.core == last || r.intn(2) == 0 {
			ch.Nets = append(ch.Nets, soc.Net{
				FromCore: op.core, FromPort: op.port.Name,
				ToPort: newPO(op.port.Width),
			})
		}
	}
	if len(ch.POs) == 0 {
		// Degenerate corner: everything consumed internally; observe the
		// last core's first output anyway.
		c := ch.Cores[len(ch.Cores)-1]
		out := c.RTL.Outputs()[0]
		ch.Nets = append(ch.Nets, soc.Net{FromCore: c.Name, FromPort: out.Name, ToPort: newPO(out.Width)})
	}
	return ch, nil
}

// ManyChips generates n chips for seeds base..base+n-1, skipping seeds
// whose cores fail to build.
func ManyChips(n int, base uint64) []*soc.Chip {
	var out []*soc.Chip
	for i := 0; i < n; i++ {
		if ch, err := RandomChip(ChipParams{Seed: base + uint64(i)}); err == nil {
			out = append(out, ch)
		}
	}
	return out
}
