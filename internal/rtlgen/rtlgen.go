// Package rtlgen deterministically generates random-but-valid RTL cores
// for property-based cross-validation of the whole stack: the same core is
// pushed through HSCAN insertion, transparency analysis, RTL simulation,
// gate-level synthesis, logic simulation, ATPG and fault simulation, and
// the independent implementations are checked against each other. Cores
// use only functional units with defined semantics (no opaque clouds), so
// the RTL interpreter and the synthesized gate-level netlist must agree
// bit-for-bit.
package rtlgen

import (
	"fmt"

	"repro/internal/rtl"
)

// Params sizes a generated core. Zero values pick defaults.
type Params struct {
	Seed    uint64
	Regs    int   // number of registers (default 3..8, seed-dependent)
	Inputs  int   // data input ports (default 2)
	Outputs int   // data output ports (default 2)
	Widths  []int // candidate port/register widths (default {4, 8})
}

type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// source is a slice-addressable value available during generation.
type source struct {
	name  string
	pin   string
	width int
}

func (s source) slice(lo, hi int) string {
	base := s.name
	if s.pin != "" {
		base += "." + s.pin
	}
	return fmt.Sprintf("%s[%d:%d]", base, hi, lo)
}

// Random generates a deterministic core for the given parameters. Widths
// are drawn from {4, 8}; narrow sinks slice wide sources and wide sinks
// may be fed piecewise by two narrow sources, so C-split and O-split
// structures arise naturally. A build error means the drawn structure was
// inconsistent — callers sampling many seeds (see Many) skip such seeds.
func Random(p Params) (*rtl.Core, error) {
	r := &rng{s: p.Seed*2654435761 + 12345}
	if p.Regs == 0 {
		p.Regs = 3 + r.intn(6)
	}
	if p.Inputs == 0 {
		p.Inputs = 2
	}
	if p.Outputs == 0 {
		p.Outputs = 2
	}
	b := rtl.NewCore(fmt.Sprintf("rand%04x", p.Seed&0xffff))

	widths := p.Widths
	if len(widths) == 0 {
		widths = []int{4, 8}
	}
	var sources []source

	// Ports. The first input is always 8 bits wide so every sink width
	// has at least one coverable source (the generator never deadlocks).
	for i := 0; i < p.Inputs; i++ {
		w := widths[r.intn(len(widths))]
		if i == 0 {
			w = widths[len(widths)-1]
		}
		name := fmt.Sprintf("IN%d", i)
		b.In(name, w)
		sources = append(sources, source{name, "", w})
	}
	type out struct {
		name  string
		width int
	}
	var outs []out
	for i := 0; i < p.Outputs; i++ {
		w := widths[r.intn(len(widths))]
		name := fmt.Sprintf("OUT%d", i)
		b.Out(name, w)
		outs = append(outs, out{name, w})
	}

	// Registers; their sources may include later registers (sequential
	// loops are fine), so declare them all first.
	type regInfo struct {
		name  string
		width int
	}
	var regs []regInfo
	for i := 0; i < p.Regs; i++ {
		w := widths[r.intn(len(widths))]
		name := fmt.Sprintf("R%d", i)
		b.Reg(name, w)
		regs = append(regs, regInfo{name, w})
		sources = append(sources, source{name, "q", w})
	}

	// pickSrc returns a source slice expression of exactly width w,
	// preferring earlier sources for connectivity toward the inputs.
	pickSrc := func(w int, bias int) (source, int) {
		for tries := 0; tries < 16; tries++ {
			s := sources[r.intn(len(sources))]
			if s.width >= w {
				lo := 0
				if s.width > w && r.intn(2) == 0 {
					lo = s.width - w
				}
				return s, lo
			}
		}
		// Fall back to the first wide-enough source (IN ports are wide
		// often enough in practice; widen the search deterministically).
		for _, s := range sources {
			if s.width >= w {
				return s, 0
			}
		}
		return sources[0], 0 // give up; caller handles width mismatch
	}

	muxCount := 0
	unitCount := 0
	// newUnit creates a functional unit of width w fed by random sources
	// and returns its output expression.
	newUnit := func(w int) string {
		ops := []rtl.UnitOp{rtl.OpAdd, rtl.OpXor, rtl.OpAnd, rtl.OpOr, rtl.OpSub, rtl.OpInc, rtl.OpNot}
		op := ops[r.intn(len(ops))]
		name := fmt.Sprintf("U%d", unitCount)
		unitCount++
		u := rtl.Unit{Name: name, Op: op, Width: w}
		b.Unit(u)
		nIn := 2
		if op == rtl.OpInc || op == rtl.OpNot {
			nIn = 1
		}
		for k := 0; k < nIn; k++ {
			s, lo := pickSrc(w, 0)
			if s.width < w {
				// no wide-enough source: drive low bits, leave rest tied
				b.Wire(s.slice(0, s.width-1), fmt.Sprintf("%s.in%d[%d:0]", name, k, s.width-1))
				continue
			}
			b.Wire(s.slice(lo, lo+w-1), fmt.Sprintf("%s.in%d", name, k))
		}
		return name + ".out"
	}

	// driveSink connects a sink pin (reg d or out port) of width w from
	// either a single source, a 2-to-1 mux, or — for wide sinks — two
	// narrow halves (a C-split).
	var driveSink func(sinkExpr string, w int)
	driveSink = func(sinkExpr string, w int) {
		switch r.intn(4) {
		case 0: // direct
			s, lo := pickSrc(w, 0)
			if s.width < w {
				b.Wire(newUnit(w), sinkExpr) // no coverable source: use a unit
				return
			}
			b.Wire(s.slice(lo, lo+w-1), sinkExpr)
		case 1: // through a mux (data path + unit path)
			name := fmt.Sprintf("M%d", muxCount)
			muxCount++
			b.Mux(name, w, 2)
			s, lo := pickSrc(w, 0)
			if s.width >= w {
				b.Wire(s.slice(lo, lo+w-1), name+".in0")
			} else {
				b.Wire(s.slice(0, s.width-1), fmt.Sprintf("%s.in0[%d:0]", name, s.width-1))
			}
			b.Wire(newUnit(w), name+".in1")
			// Select from a 1-bit slice of some source.
			sel, slo := pickSrc(1, 0)
			b.Wire(sel.slice(slo, slo), name+".sel")
			b.Wire(name+".out", sinkExpr)
		case 2: // unit output (blocks transparency through this sink)
			b.Wire(newUnit(w), sinkExpr)
		case 3: // piecewise halves (C-split) when wide enough
			if w < widths[len(widths)-1] || w < 2 {
				s, lo := pickSrc(w, 0)
				if s.width < w {
					b.Wire(newUnit(w), sinkExpr)
					return
				}
				b.Wire(s.slice(lo, lo+w-1), sinkExpr)
				return
			}
			h := w / 2
			s1, lo1 := pickSrc(h, 0)
			s2, lo2 := pickSrc(h, 0)
			b.Wire(s1.slice(lo1, lo1+h-1), fmt.Sprintf("%s[%d:0]", sinkExpr, h-1))
			b.Wire(s2.slice(lo2, lo2+h-1), fmt.Sprintf("%s[%d:%d]", sinkExpr, w-1, h))
		}
	}

	for _, rg := range regs {
		driveSink(rg.name+".d", rg.width)
	}
	for _, o := range outs {
		driveSink(o.name, o.width)
	}
	return b.Build()
}

// Many returns cores for seeds 0..n-1, skipping any that fail to build
// (the generator retries internally, so failures should not occur; the
// guard keeps property tests robust).
func Many(n int, base uint64) []*rtl.Core {
	var out []*rtl.Core
	for i := 0; i < n; i++ {
		if c, err := Random(Params{Seed: base + uint64(i)}); err == nil {
			out = append(out, c)
		}
	}
	return out
}
