package rtlgen

import (
	"testing"

	"repro/internal/atpg"
	"repro/internal/fsim"
	"repro/internal/gate"
	"repro/internal/hscan"
	"repro/internal/rtlsim"
	"repro/internal/synth"
	"repro/internal/trans"
)

const nCores = 30

func TestGeneratedCoresValid(t *testing.T) {
	cores := Many(nCores, 100)
	if len(cores) != nCores {
		t.Fatalf("generated %d/%d cores", len(cores), nCores)
	}
	for _, c := range cores {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a, errA := Random(Params{Seed: 7})
	b, errB := Random(Params{Seed: 7})
	if errA != nil || errB != nil {
		t.Fatalf("generation failed: %v / %v", errA, errB)
	}
	if len(a.Conns) != len(b.Conns) || len(a.Regs) != len(b.Regs) {
		t.Fatal("same seed produced different cores")
	}
	for i := range a.Conns {
		if a.Conns[i] != b.Conns[i] {
			t.Fatalf("conn %d differs: %v vs %v", i, a.Conns[i], b.Conns[i])
		}
	}
}

// Property: the RTL interpreter and the synthesized gate-level netlist
// compute identical outputs cycle-by-cycle — two independent
// implementations of the same semantics must agree.
func TestRTLSimAgreesWithGateLevel(t *testing.T) {
	for _, c := range Many(nCores, 200) {
		sr, err := synth.Synthesize(c)
		if err != nil {
			t.Errorf("%s: synth: %v", c.Name, err)
			continue
		}
		gsim, err := gate.NewSim(sr.Netlist)
		if err != nil {
			t.Errorf("%s: %v", c.Name, err)
			continue
		}
		rsim, err := rtlsim.New(c)
		if err != nil {
			t.Errorf("%s: %v", c.Name, err)
			continue
		}
		r := rng{s: 999}
		for cycle := 0; cycle < 12; cycle++ {
			for _, p := range c.Inputs() {
				v := r.next() & ((1 << uint(p.Width)) - 1)
				rsim.SetInput(p.Name, v)
				for bit := 0; bit < p.Width; bit++ {
					line, _ := sr.LineOf(p.Name, "", bit)
					var w uint64
					if v&(1<<uint(bit)) != 0 {
						w = ^uint64(0)
					}
					gsim.SetPI(line, w)
				}
			}
			// Compare combinational outputs before the clock.
			for _, p := range c.Outputs() {
				want, err := rsim.Output(p.Name)
				if err != nil {
					t.Fatalf("%s: %v", c.Name, err)
				}
				gsim.Eval()
				var got uint64
				for bit := 0; bit < p.Width; bit++ {
					line, _ := sr.LineOf(p.Name, "", bit)
					if gsim.Val[line]&1 != 0 {
						got |= 1 << uint(bit)
					}
				}
				if got != want {
					t.Fatalf("%s cycle %d: output %s rtlsim=%#x gate=%#x", c.Name, cycle, p.Name, want, got)
				}
			}
			rsim.Step()
			gsim.Step()
		}
	}
}

// Property: HSCAN covers every register exactly once and its scan links
// never demand contradictory selects on one multiplexer.
func TestHSCANChainCoverProperty(t *testing.T) {
	for _, c := range Many(nCores, 300) {
		scan, err := hscan.Insert(c)
		if err != nil {
			t.Errorf("%s: %v", c.Name, err)
			continue
		}
		seen := map[string]int{}
		for _, ch := range scan.Chains {
			for _, r := range ch.Regs {
				seen[r]++
			}
		}
		for _, r := range c.Regs {
			if seen[r.Name] != 1 {
				t.Errorf("%s: register %s in %d chains", c.Name, r.Name, seen[r.Name])
			}
		}
		sel := map[string]int{}
		for _, ch := range scan.Chains {
			for _, l := range ch.Links {
				for _, h := range l.Path.Hops {
					if prev, ok := sel[h.Mux]; ok && prev != h.Sel {
						t.Errorf("%s: scan links disagree on mux %s (%d vs %d)", c.Name, h.Mux, prev, h.Sel)
					}
					sel[h.Mux] = h.Sel
				}
			}
		}
	}
}

// Property: every core gets a full transparency solution, the ladder is a
// monotone trade-off, and every physical RCG edge moves data exactly as
// claimed when replayed on the RTL interpreter.
func TestTransparencyLadderProperty(t *testing.T) {
	for _, c := range Many(nCores, 400) {
		scan, err := hscan.Insert(c)
		if err != nil {
			t.Errorf("%s: %v", c.Name, err)
			continue
		}
		g, err := trans.Build(c, scan)
		if err != nil {
			t.Errorf("%s: %v", c.Name, err)
			continue
		}
		vs, err := trans.Versions(g)
		if err != nil {
			t.Errorf("%s: versions: %v", c.Name, err)
			continue
		}
		if len(vs) == 0 {
			t.Errorf("%s: empty ladder", c.Name)
			continue
		}
		prevSum := 1 << 30
		prevCells := -1
		for _, v := range vs {
			sum := 0
			for _, p := range c.Inputs() {
				l := v.PropLatency(p.Name)
				if l < 0 {
					t.Errorf("%s %s: input %s unsolved", c.Name, v.Label, p.Name)
				}
				sum += l // 0 is legal: port-to-port feedthrough
			}
			for _, p := range c.Outputs() {
				l := v.JustLatency(p.Name)
				if l < 0 {
					t.Errorf("%s %s: output %s unsolved", c.Name, v.Label, p.Name)
				}
				sum += l
			}
			a := v.Area
			if sum >= prevSum {
				t.Errorf("%s %s: latency sum %d did not improve on %d", c.Name, v.Label, sum, prevSum)
			}
			if a.Cells() < prevCells {
				t.Errorf("%s %s: area %d shrank from %d", c.Name, v.Label, a.Cells(), prevCells)
			}
			prevSum, prevCells = sum, a.Cells()
		}
		if _, _, err := rtlsim.VerifyAllEdges(c, g, 0xbeef); err != nil {
			t.Errorf("%s: edge verification: %v", c.Name, err)
		}
	}
}

// exhaustive patterns over all controllable bits (PIs + flip-flops).
func allPatterns(n *gate.Netlist) []gate.Pattern {
	nPI := len(n.PIs())
	nFF := len(n.DFFs())
	bits := nPI + nFF
	if bits > 14 {
		return nil
	}
	var out []gate.Pattern
	for v := 0; v < 1<<uint(bits); v++ {
		p := gate.Pattern{PI: make([]byte, nPI)}
		if nFF > 0 {
			p.State = make([]byte, nFF)
		}
		for i := 0; i < nPI; i++ {
			p.PI[i] = byte(v >> uint(i) & 1)
		}
		for i := 0; i < nFF; i++ {
			p.State[i] = byte(v >> uint(nPI+i) & 1)
		}
		out = append(out, p)
	}
	return out
}

// Property: PODEM is sound and complete against exhaustive simulation on
// small circuits — a fault it proves untestable is detected by no pattern
// at all, and a fault it detects really is detected by its pattern set.
func TestPODEMSoundAndComplete(t *testing.T) {
	checked := 0
	for seed := uint64(500); seed < 560 && checked < 6; seed++ {
		c, err := Random(Params{Seed: seed, Regs: 2, Inputs: 1, Outputs: 1, Widths: []int{2, 4}})
		if err != nil {
			continue
		}
		sr, err := synth.Synthesize(c)
		if err != nil {
			continue
		}
		exhaustive := allPatterns(sr.Netlist)
		if exhaustive == nil {
			continue // too many controllable bits
		}
		checked++
		faults := sr.Netlist.Faults()
		truth, err := fsim.Combinational(sr.Netlist, exhaustive, faults)
		if err != nil {
			t.Fatal(err)
		}
		res, err := atpg.Generate(sr.Netlist, &atpg.Options{BacktrackLimit: 10000, RandomPatterns: -1})
		if err != nil {
			t.Fatal(err)
		}
		claimed, err := fsim.Combinational(sr.Netlist, res.Patterns, faults)
		if err != nil {
			t.Fatal(err)
		}
		for i := range faults {
			truthDet := truth.DetectedBy[i] >= 0
			atpgDet := claimed.DetectedBy[i] >= 0
			if truthDet && !atpgDet && res.Stats.Aborted == 0 {
				t.Errorf("%s: fault %v detectable (exhaustive) but missed by complete ATPG", c.Name, faults[i])
			}
			if !truthDet && atpgDet {
				t.Errorf("%s: fault %v claimed detected but no pattern can detect it", c.Name, faults[i])
			}
		}
		// Aggregate agreement when nothing aborted: coverage identical.
		if res.Stats.Aborted == 0 && truth.Detected != claimed.Detected {
			t.Errorf("%s: exhaustive detects %d, ATPG set detects %d", c.Name, truth.Detected, claimed.Detected)
		}
	}
	if checked == 0 {
		t.Skip("no small-enough cores generated")
	}
	t.Logf("cross-checked PODEM against exhaustive simulation on %d cores", checked)
}

// Property: the cone-limited combinational fault simulator agrees with a
// brute-force full-evaluation reference on random circuits and patterns.
func TestFaultSimAgreesWithBruteForce(t *testing.T) {
	for _, c := range Many(8, 600) {
		sr, err := synth.Synthesize(c)
		if err != nil {
			t.Fatal(err)
		}
		n := sr.Netlist
		// Random patterns.
		r := rng{s: 31}
		var pats []gate.Pattern
		for k := 0; k < 24; k++ {
			p := gate.Pattern{PI: make([]byte, len(n.PIs()))}
			if len(n.DFFs()) > 0 {
				p.State = make([]byte, len(n.DFFs()))
			}
			for i := range p.PI {
				p.PI[i] = byte(r.next() & 1)
			}
			for i := range p.State {
				p.State[i] = byte(r.next() & 1)
			}
			pats = append(pats, p)
		}
		faults := n.Faults()
		fast, err := fsim.Combinational(n, pats, faults)
		if err != nil {
			t.Fatal(err)
		}
		slow := bruteForce(t, n, pats, faults)
		for i := range faults {
			if (fast.DetectedBy[i] >= 0) != slow[i] {
				t.Errorf("%s: fault %v: cone-sim detected=%v, brute-force=%v",
					c.Name, faults[i], fast.DetectedBy[i] >= 0, slow[i])
			}
		}
	}
}

// bruteForce detects faults by full netlist evaluation per fault/pattern
// using gate.InjectedSim (a third, independent evaluator).
func bruteForce(t *testing.T, n *gate.Netlist, pats []gate.Pattern, faults []gate.Fault) []bool {
	t.Helper()
	good, err := gate.NewSim(n)
	if err != nil {
		t.Fatal(err)
	}
	det := make([]bool, len(faults))
	dffs := n.DFFs()
	for base := 0; base < len(pats); base += 64 {
		batch := pats[base:]
		if len(batch) > 64 {
			batch = batch[:64]
		}
		k, err := good.ApplyPatterns(batch)
		if err != nil {
			t.Fatal(err)
		}
		mask := ^uint64(0)
		if k < 64 {
			mask = 1<<uint(k) - 1
		}
		good.Eval()
		goodPO := good.POWords(nil)
		goodCap := make([]uint64, len(dffs))
		for i, d := range dffs {
			goodCap[i] = good.Val[n.Gates[d].Fanin[0]]
		}
		for fi, f := range faults {
			if det[fi] {
				continue
			}
			bad, err := gate.NewInjectedSim(n, f, ^uint64(0))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := bad.ApplyPatterns(batch); err != nil {
				t.Fatal(err)
			}
			// Stem faults on sources must be forced before eval.
			bad.Eval()
			var diff uint64
			for i, po := range n.POs {
				diff |= (bad.Val[po] ^ goodPO[i]) & mask
			}
			for i, d := range dffs {
				cap := bad.Val[n.Gates[d].Fanin[0]]
				if f.Branch >= 0 && f.Line == d {
					if f.Stuck == 0 {
						cap = 0
					} else {
						cap = ^uint64(0)
					}
				}
				diff |= (cap ^ goodCap[i]) & mask
			}
			if diff != 0 {
				det[fi] = true
			}
		}
	}
	return det
}
