package rtlgen

import (
	"testing"

	"repro/internal/core"
	"repro/internal/explore"
)

const nChips = 12

func TestRandomChipsValidate(t *testing.T) {
	for _, ch := range ManyChips(nChips, 1000) {
		if err := ch.Validate(); err != nil {
			t.Errorf("%s: %v", ch.Name, err)
		}
		if len(ch.PIs) == 0 || len(ch.POs) == 0 {
			t.Errorf("%s: missing pins (%d PIs, %d POs)", ch.Name, len(ch.PIs), len(ch.POs))
		}
		// Single driver per core input.
		driven := map[string]int{}
		for _, n := range ch.Nets {
			if n.ToCore != "" {
				driven[n.ToCore+"."+n.ToPort]++
			}
		}
		for k, v := range driven {
			if v != 1 {
				t.Errorf("%s: input %s driven %d times", ch.Name, k, v)
			}
		}
	}
}

// Property: the full chip-level flow — CCG, reservation-aware scheduling,
// test-mux fallback, schedule replay validation — succeeds on every random
// topology, and every version selection keeps the schedule consistent.
func TestFlowOnRandomChips(t *testing.T) {
	for _, ch := range ManyChips(nChips, 2000) {
		vec := map[string]int{}
		for _, c := range ch.Cores {
			vec[c.Name] = 20
		}
		f, err := core.Prepare(ch, &core.Options{VectorOverride: vec})
		if err != nil {
			t.Errorf("%s: prepare: %v", ch.Name, err)
			continue
		}
		e, err := f.Evaluate() // Evaluate runs sched.Validate internally
		if err != nil {
			t.Errorf("%s: evaluate: %v", ch.Name, err)
			continue
		}
		if e.TAT <= 0 {
			t.Errorf("%s: TAT %d", ch.Name, e.TAT)
		}
		// Flip every core to its fastest version and re-evaluate: TAT must
		// not get worse.
		sel := map[string]int{}
		for _, c := range ch.TestableCores() {
			sel[c.Name] = len(c.Versions) - 1
		}
		f.SelectVersions(sel)
		e2, err := f.Evaluate()
		if err != nil {
			t.Errorf("%s: evaluate fast: %v", ch.Name, err)
			continue
		}
		if e2.TAT > e.TAT {
			t.Errorf("%s: fastest versions slowed the chip: %d -> %d", ch.Name, e.TAT, e2.TAT)
		}
	}
}

// Property: design-space enumeration is Pareto-consistent and iterative
// improvement respects its budget on random chips.
func TestExploreOnRandomChips(t *testing.T) {
	for _, ch := range ManyChips(6, 3000) {
		vec := map[string]int{}
		for _, c := range ch.Cores {
			vec[c.Name] = 10
		}
		f, err := core.Prepare(ch, &core.Options{VectorOverride: vec})
		if err != nil {
			t.Errorf("%s: %v", ch.Name, err)
			continue
		}
		points, err := explore.Enumerate(f)
		if err != nil {
			t.Errorf("%s: enumerate: %v", ch.Name, err)
			continue
		}
		front := explore.Pareto(points)
		for i := 1; i < len(front); i++ {
			if front[i].TAT >= front[i-1].TAT || front[i].ChipCells < front[i-1].ChipCells {
				t.Errorf("%s: Pareto front not monotone at %d", ch.Name, i)
			}
		}
		// Reset and improve under a generous budget.
		sel := map[string]int{}
		for _, c := range ch.TestableCores() {
			sel[c.Name] = 0
		}
		f.SelectVersions(sel)
		f.ForcedMuxes = nil
		e0, err := f.Evaluate()
		if err != nil {
			t.Fatal(err)
		}
		res, err := explore.Improve(f, explore.MinimizeTAT, e0.ChipDFTCells()+100)
		if err != nil {
			t.Errorf("%s: improve: %v", ch.Name, err)
			continue
		}
		if res.Final.ChipDFTCells() > e0.ChipDFTCells()+100 {
			t.Errorf("%s: budget exceeded: %d > %d", ch.Name, res.Final.ChipDFTCells(), e0.ChipDFTCells()+100)
		}
		if res.Final.TAT > e0.TAT {
			t.Errorf("%s: improvement raised TAT %d -> %d", ch.Name, e0.TAT, res.Final.TAT)
		}
	}
}

// Property: the interconnect plan covers every core-to-core net or lists
// it as untestable, never both, on random chips.
func TestInterconnectOnRandomChips(t *testing.T) {
	for _, ch := range ManyChips(8, 4000) {
		vec := map[string]int{}
		for _, c := range ch.Cores {
			vec[c.Name] = 5
		}
		f, err := core.Prepare(ch, &core.Options{VectorOverride: vec})
		if err != nil {
			t.Fatal(err)
		}
		e, err := f.Evaluate()
		if err != nil {
			t.Fatal(err)
		}
		ir := e.Interconnect
		seen := map[string]bool{}
		for _, nt := range ir.Nets {
			seen[nt.Net.String()] = true
		}
		for _, n := range ir.Untestable {
			if seen[n.String()] {
				t.Errorf("%s: net %v both scheduled and untestable", ch.Name, n)
			}
			seen[n.String()] = true
		}
		for _, n := range ch.Nets {
			if n.FromCore == "" || n.ToCore == "" {
				continue
			}
			if !seen[n.String()] {
				t.Errorf("%s: net %v not accounted for", ch.Name, n)
			}
		}
	}
}
