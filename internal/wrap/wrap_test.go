package wrap

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/chipsim"
	"repro/internal/hscan"
	"repro/internal/rtl"
	"repro/internal/soc"
)

// testCore builds a synthetic wrapped-core fixture: in/out port bits, one
// internal HSCAN chain per entry of chains (the entry is its register
// count), and a fixed vector count.
func testCore(name string, in, out, vectors int, chains ...int) *soc.Core {
	rc := &rtl.Core{Name: name}
	if in > 0 {
		rc.Ports = append(rc.Ports, rtl.Port{Name: "I", Dir: rtl.In, Width: in})
	}
	if out > 0 {
		rc.Ports = append(rc.Ports, rtl.Port{Name: "O", Dir: rtl.Out, Width: out})
	}
	scan := &hscan.Result{}
	regN := 0
	for _, d := range chains {
		var hc hscan.Chain
		for k := 0; k < d; k++ {
			r := fmt.Sprintf("R%d", regN)
			regN++
			rc.Regs = append(rc.Regs, rtl.Register{Name: r, Width: 1})
			hc.Regs = append(hc.Regs, r)
		}
		scan.Chains = append(scan.Chains, hc)
		if d > scan.MaxDepth {
			scan.MaxDepth = d
		}
	}
	return &soc.Core{Name: name, RTL: rc, Scan: scan, Vectors: vectors}
}

func testChip(cores ...*soc.Core) *soc.Chip {
	return &soc.Chip{Name: "wraptest", Cores: cores}
}

func TestWaterfill(t *testing.T) {
	cases := []struct {
		base []int
		bits int
		max  int
	}{
		{[]int{5, 2, 1}, 0, 5},
		{[]int{5, 2, 1}, 3, 5}, // fills 2->5 is 3: levels to 5? 3 bits fit under 5 (3+4=7 cap) -> max 5
		{[]int{5, 2, 1}, 7, 5}, // exactly fills both to 5
		{[]int{5, 2, 1}, 8, 6}, // one bit over
		{[]int{0, 0}, 5, 3},    // ceil(5/2)
		{[]int{4}, 3, 7},       // single slot
		{nil, 4, 0},            // no slots: nothing to fill
		{[]int{3, 3, 3}, 0, 3}, // no bits
		{[]int{1, 1, 1}, 9, 4}, // even fill
	}
	for _, c := range cases {
		alloc, m := waterfill(c.base, c.bits)
		if m != c.max {
			t.Errorf("waterfill(%v, %d): max %d, want %d", c.base, c.bits, m, c.max)
		}
		sum := 0
		for j, a := range alloc {
			sum += a
			if c.base[j]+a > m {
				t.Errorf("waterfill(%v, %d): slot %d at %d exceeds reported max %d", c.base, c.bits, j, c.base[j]+a, m)
			}
		}
		if len(c.base) > 0 && sum != c.bits {
			t.Errorf("waterfill(%v, %d): allocated %d bits", c.base, c.bits, sum)
		}
	}
}

// TestExactBeatsLPT pins the classic LPT-suboptimal instance: chains
// {3,3,2,2,2} on two wrapper chains. LPT reaches makespan 7; the exact
// balancer must find the optimal {3,3}/{2,2,2} split of 6.
func TestExactBeatsLPT(t *testing.T) {
	c := testCore("A", 0, 0, 10, 3, 3, 2, 2, 2)
	cr := WrapCore(c, 2)
	if !cr.Exact {
		t.Fatalf("5 chains should balance exactly")
	}
	if cr.SI != 6 || cr.SO != 6 {
		t.Fatalf("exact balance got si=%d so=%d, want 6/6", cr.SI, cr.SO)
	}
	lpt := lptCandidate([]int{3, 3, 2, 2, 2}, 2)
	lpt.fill(0, 0)
	if lpt.hi != 7 {
		t.Fatalf("LPT fixture drifted: makespan %d, want 7 (test premise)", lpt.hi)
	}
}

// TestCoreTATFormula checks the wrapper arithmetic on a DISPLAY-like
// core: 20 input bits, 10 output bits, one 4-register chain, 105 vectors
// at width 1 gives si=24, so=14, TAT=(1+24)*105+14.
func TestCoreTATFormula(t *testing.T) {
	c := testCore("DISPLAY", 20, 10, 105, 4)
	cr := WrapCore(c, 1)
	if cr.SI != 24 || cr.SO != 14 {
		t.Fatalf("si=%d so=%d, want 24/14", cr.SI, cr.SO)
	}
	want := (1+24)*105 + 14
	if cr.TAT != want {
		t.Fatalf("TAT %d, want %d", cr.TAT, want)
	}
	if cr.Width != 1 || len(cr.Chains) != 1 {
		t.Fatalf("width-1 wrap built %d chains", len(cr.Chains))
	}
	// Structural coverage of the recorded items.
	in, scan, out := 0, 0, 0
	for _, it := range cr.Chains[0].Items {
		switch it.Kind {
		case ItemInputCells:
			in += it.Bits
		case ItemScanChain:
			scan += it.Bits
		case ItemOutputCells:
			out += it.Bits
		}
	}
	if in != 20 || scan != 4 || out != 10 {
		t.Fatalf("items cover in=%d scan=%d out=%d, want 20/4/10", in, scan, out)
	}
}

func TestCoreTATMonotoneInWidth(t *testing.T) {
	c := testCore("B", 17, 9, 23, 4, 3, 3, 2)
	prev := -1
	for w := 1; w <= 8; w++ {
		cr := WrapCore(c, w)
		if prev >= 0 && cr.TAT > prev {
			t.Fatalf("width %d TAT %d exceeds width %d TAT %d", w, cr.TAT, w-1, prev)
		}
		prev = cr.TAT
	}
}

func TestEvaluateSingleBusSumsTATs(t *testing.T) {
	a := testCore("A", 4, 4, 10, 2)
	b := testCore("B", 6, 2, 7, 3)
	r := Evaluate(testChip(a, b), 1, nil)
	if r.NumBuses != 1 {
		t.Fatalf("W=1 built %d buses", r.NumBuses)
	}
	want := WrapCore(a, 1).TAT + WrapCore(b, 1).TAT
	if r.ChipTAT != want {
		t.Fatalf("chip TAT %d, want serial sum %d", r.ChipTAT, want)
	}
}

func TestEvaluateWorkerDeterminism(t *testing.T) {
	var cores []*soc.Core
	for i := 0; i < 9; i++ {
		cores = append(cores, testCore(fmt.Sprintf("C%d", i), 3+i, 2+i%4, 5+i, 1+i%3, 2))
	}
	ch := testChip(cores...)
	base := Evaluate(ch, 5, &Options{Workers: 1})
	for _, workers := range []int{2, 4, 16} {
		r := Evaluate(ch, 5, &Options{Workers: workers})
		if !reflect.DeepEqual(base, r) {
			t.Fatalf("workers=%d diverged:\n%s\nvs\n%s", workers, base.Format(), r.Format())
		}
	}
}

func TestSplitScanChainClones(t *testing.T) {
	c := testCore("A", 2, 2, 5, 4, 1)
	ch := testChip(c)
	split, err := SplitScanChain(ch, "A", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.Scan.Chains); got != 2 {
		t.Fatalf("original mutated: %d chains", got)
	}
	sc, _ := split.CoreByName("A")
	if got := len(sc.Scan.Chains); got != 3 {
		t.Fatalf("split chip has %d chains, want 3", got)
	}
	depths := []int{sc.Scan.Chains[0].Depth(), sc.Scan.Chains[1].Depth(), sc.Scan.Chains[2].Depth()}
	if depths[0] != 1 || depths[1] != 1 || depths[2] != 3 {
		t.Fatalf("split depths %v, want [1 1 3]", depths)
	}
	if _, err := SplitScanChain(ch, "A", 0, 4); err == nil {
		t.Fatal("split at chain depth should fail")
	}
	if _, err := SplitScanChain(ch, "Z", 0, 1); err == nil {
		t.Fatal("split on unknown core should fail")
	}
}

// TestElaboratePulseTransit is the wiring ground truth for the proptest
// replay: on a hand-built wrapped core, shifting a constant 1 through the
// elaborated chain must raise each segment tap at exactly the structural
// cycle counts.
func TestElaboratePulseTransit(t *testing.T) {
	c := testCore("A", 3, 2, 5, 2)
	ch := testChip(c)
	r := Evaluate(ch, 1, nil)
	ech, probes, err := Elaborate(ch, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(probes) != 1 {
		t.Fatalf("%d probes, want 1", len(probes))
	}
	p := probes[0]
	if p.InBits != 3 || p.ScanBits != 2 || p.OutBits != 2 {
		t.Fatalf("probe segments %d/%d/%d, want 3/2/2", p.InBits, p.ScanBits, p.OutBits)
	}
	sim, err := chipsim.New(ech)
	if err != nil {
		t.Fatal(err)
	}
	cs, ok := sim.Core("A")
	if !ok {
		t.Fatal("no simulator for core A")
	}
	for _, m := range p.Muxes {
		if err := cs.ForceMux(m, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.SetPI(p.PI, 1); err != nil {
		t.Fatal(err)
	}
	arrival := map[string]int{}
	for cyc := 0; cyc <= p.Stages(); cyc++ {
		for _, po := range []string{p.TapIn, p.TapScan, p.WSO} {
			if _, seen := arrival[po]; seen {
				continue
			}
			v, err := sim.ChipOutput(po)
			if err != nil {
				t.Fatal(err)
			}
			if v&1 == 1 {
				arrival[po] = cyc
			}
		}
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if arrival[p.TapIn] != 3 || arrival[p.TapScan] != 5 || arrival[p.WSO] != 7 {
		t.Fatalf("arrivals in=%d scan=%d wso=%d, want 3/5/7",
			arrival[p.TapIn], arrival[p.TapScan], arrival[p.WSO])
	}
}
