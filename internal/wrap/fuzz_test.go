package wrap

import (
	"testing"
)

// FuzzTAMAssign decodes arbitrary bytes into a wrapped-core shape (TAM
// width, internal chain loads, boundary bit counts) and checks the
// balancing invariants that every caller relies on: full structural
// coverage of chains and port bits, SI/SO consistency with the recorded
// items, TAT matching the formula, and monotonicity in the TAM width.
func FuzzTAMAssign(f *testing.F) {
	f.Add([]byte{2, 3, 4, 3, 2, 10, 5})
	f.Add([]byte{1, 0, 0, 0})
	f.Add([]byte{8, 5, 3, 3, 2, 2, 2, 40, 17})
	f.Add([]byte{4, 12, 1, 2, 3, 4, 5, 6, 7, 8, 9, 1, 2, 3, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		w := int(data[0])%8 + 1
		k := int(data[1]) % 13
		if len(data) < 2+k+2 {
			return
		}
		chains := make([]int, k)
		for i := 0; i < k; i++ {
			chains[i] = int(data[2+i]) % 33
		}
		in := int(data[2+k]) % 120
		out := int(data[2+k+1]) % 120
		vectors := 1 + (in+out)%29

		c := testCore("F", in, out, vectors, chains...)
		prev := -1
		for width := 1; width <= w; width++ {
			cr := WrapCore(c, width)
			if prev >= 0 && cr.TAT > prev {
				t.Fatalf("TAT rose %d -> %d at width %d (chains %v in=%d out=%d)", prev, cr.TAT, width, chains, in, out)
			}
			prev = cr.TAT
			if cr.Width > width {
				t.Fatalf("built %d chains at width %d", cr.Width, width)
			}
			si, so := 0, 0
			inSum, outSum, scanSum := 0, 0, 0
			used := map[int]int{}
			for _, wc := range cr.Chains {
				csi, cso := 0, 0
				for _, it := range wc.Items {
					if it.Bits < 0 {
						t.Fatalf("negative item %+v", it)
					}
					switch it.Kind {
					case ItemInputCells:
						inSum += it.Bits
						csi += it.Bits
					case ItemScanChain:
						scanSum += it.Bits
						csi += it.Bits
						cso += it.Bits
						used[it.Chain]++
					case ItemOutputCells:
						outSum += it.Bits
						cso += it.Bits
					}
				}
				if csi != wc.SI || cso != wc.SO {
					t.Fatalf("chain items (%d/%d) disagree with SI/SO (%d/%d)", csi, cso, wc.SI, wc.SO)
				}
				si = maxInt(si, wc.SI)
				so = maxInt(so, wc.SO)
			}
			if si != cr.SI || so != cr.SO {
				t.Fatalf("chain maxima %d/%d disagree with core SI/SO %d/%d", si, so, cr.SI, cr.SO)
			}
			if inSum != in || outSum != out {
				t.Fatalf("boundary coverage %d/%d, want %d/%d", inSum, outSum, in, out)
			}
			wantScan := 0
			for i, d := range chains {
				wantScan += d
				if used[i] != 1 {
					t.Fatalf("chain %d used %d times", i, used[i])
				}
			}
			if scanSum != wantScan {
				t.Fatalf("scan coverage %d, want %d", scanSum, wantScan)
			}
			if got := coreTAT(cr.SI, cr.SO, vectors); got != cr.TAT {
				t.Fatalf("TAT %d violates the formula (%d)", cr.TAT, got)
			}
		}
	})
}
