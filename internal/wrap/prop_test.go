package wrap

import (
	"reflect"
	"testing"

	"repro/internal/hscan"
	"repro/internal/soc"
	"repro/internal/socgen"
)

// corpusChip generates a seeded SoC and fills the per-core state wrap
// reads (HSCAN chains and vector counts) without running the full flow.
func corpusChip(t testing.TB, p socgen.Params) *soc.Chip {
	t.Helper()
	ch, err := socgen.Generate(p)
	if err != nil {
		t.Fatalf("generate seed %d: %v", p.Seed, err)
	}
	for i, c := range ch.TestableCores() {
		scan, err := hscan.Insert(c.RTL)
		if err != nil {
			t.Fatalf("seed %d core %s: hscan: %v", p.Seed, c.Name, err)
		}
		c.Scan = scan
		c.Vectors = 5 + i%28
	}
	return ch
}

func corpusSeeds() []socgen.Params {
	var out []socgen.Params
	for seed := uint64(1); seed <= 6; seed++ {
		for _, topo := range socgen.Topologies() {
			out = append(out, socgen.Params{Seed: seed, Topology: topo})
		}
	}
	return out
}

// TestChipTATMonotoneInWidth sweeps the corpus: the chip TAT must never
// increase as the TAM gets wider.
func TestChipTATMonotoneInWidth(t *testing.T) {
	for _, p := range corpusSeeds() {
		ch := corpusChip(t, p)
		prev := -1
		for w := 1; w <= 9; w++ {
			r := Evaluate(ch, w, nil)
			if prev >= 0 && r.ChipTAT > prev {
				t.Fatalf("seed %d topo %s: chip TAT rose %d -> %d at width %d",
					p.Seed, p.Topology, prev, r.ChipTAT, w)
			}
			prev = r.ChipTAT
		}
	}
}

// TestCorpusWorkerDeterminism requires bit-identical results at every
// worker count over the generated corpus.
func TestCorpusWorkerDeterminism(t *testing.T) {
	for _, p := range corpusSeeds()[:8] {
		ch := corpusChip(t, p)
		base := Evaluate(ch, 4, &Options{Workers: 1})
		for _, workers := range []int{3, 8} {
			if r := Evaluate(ch, 4, &Options{Workers: workers}); !reflect.DeepEqual(base, r) {
				t.Fatalf("seed %d topo %s: workers=%d diverged", p.Seed, p.Topology, workers)
			}
		}
	}
}

// TestSplitNeverIncreasesChipTAT is the metamorphic check: splitting one
// core's internal scan chain gives the balancer strictly more freedom, so
// the chip TAT must not increase — provable wherever the per-core
// balancer stays exact, which the test restricts itself to (and counts,
// so the property cannot pass vacuously).
func TestSplitNeverIncreasesChipTAT(t *testing.T) {
	checked := 0
	for _, p := range corpusSeeds() {
		ch := corpusChip(t, p)
		for _, c := range ch.TestableCores() {
			if c.Scan == nil || len(c.Scan.Chains) == 0 || len(c.Scan.Chains)+1 > ExactMaxChains {
				continue
			}
			ci := -1
			for i, hc := range c.Scan.Chains {
				if hc.Depth() >= 2 {
					ci = i
					break
				}
			}
			if ci < 0 {
				continue
			}
			at := c.Scan.Chains[ci].Depth() / 2
			split, err := SplitScanChain(ch, c.Name, ci, at)
			if err != nil {
				t.Fatalf("seed %d: split %s/%d@%d: %v", p.Seed, c.Name, ci, at, err)
			}
			for _, w := range []int{1, 2, 4} {
				before := Evaluate(ch, w, nil)
				after := Evaluate(split, w, nil)
				if after.ChipTAT > before.ChipTAT {
					t.Fatalf("seed %d topo %s: splitting %s chain %d at %d raised chip TAT %d -> %d at width %d",
						p.Seed, p.Topology, c.Name, ci, at, before.ChipTAT, after.ChipTAT, w)
				}
				checked++
			}
		}
	}
	if checked < 20 {
		t.Fatalf("only %d split cases checked — metamorphic property is near-vacuous", checked)
	}
}

// TestCorpusStructuralCoverage asserts every wrapper result accounts for
// exactly the core's port bits and scan stages, chain by chain.
func TestCorpusStructuralCoverage(t *testing.T) {
	for _, p := range corpusSeeds()[:8] {
		ch := corpusChip(t, p)
		r := Evaluate(ch, 3, nil)
		for i, c := range ch.TestableCores() {
			cr := r.Cores[i]
			if cr == nil || cr.Core != c.Name {
				t.Fatalf("seed %d: core %d result mismatch", p.Seed, i)
			}
			in, out, scan := 0, 0, 0
			used := map[int]int{}
			for _, wc := range cr.Chains {
				si, so := 0, 0
				for _, it := range wc.Items {
					switch it.Kind {
					case ItemInputCells:
						in += it.Bits
						si += it.Bits
					case ItemScanChain:
						scan += it.Bits
						si += it.Bits
						so += it.Bits
						used[it.Chain]++
					case ItemOutputCells:
						out += it.Bits
						so += it.Bits
					}
				}
				if si != wc.SI || so != wc.SO {
					t.Fatalf("seed %d core %s: chain claims si=%d so=%d, items sum %d/%d",
						p.Seed, c.Name, wc.SI, wc.SO, si, so)
				}
			}
			if in != c.RTL.InputBits() || out != c.RTL.OutputBits() {
				t.Fatalf("seed %d core %s: wrapped %d in / %d out bits, core has %d/%d",
					p.Seed, c.Name, in, out, c.RTL.InputBits(), c.RTL.OutputBits())
			}
			wantScan := 0
			for i2 := range c.Scan.Chains {
				wantScan += c.Scan.Chains[i2].Depth()
				if used[i2] != 1 {
					t.Fatalf("seed %d core %s: hscan chain %d appears %d times", p.Seed, c.Name, i2, used[i2])
				}
			}
			if scan != wantScan {
				t.Fatalf("seed %d core %s: %d scan stages wrapped, hscan has %d", p.Seed, c.Name, scan, wantScan)
			}
			if got := coreTAT(cr.SI, cr.SO, cr.Vectors); got != cr.TAT {
				t.Fatalf("seed %d core %s: TAT %d does not satisfy the formula (%d)", p.Seed, c.Name, cr.TAT, got)
			}
		}
	}
}

// TestBusSplitBeatsSerialSharing pins the scheduler's bus arithmetic on
// a two-core chip at W=2: testing the cores on two single-wire buses in
// parallel (TApp 76) beats sharing one two-wire bus serially (TApp 88).
func TestBusSplitBeatsSerialSharing(t *testing.T) {
	a := testCore("CPU", 4, 4, 10, 2)
	b := testCore("DMA", 6, 2, 7, 3)
	r := Evaluate(testChip(a, b), 2, nil)
	if r.NumBuses != 2 || r.ChipTAT != 76 {
		t.Fatalf("got %d buses, chip TAT %d; want 2 buses at 76:\n%s", r.NumBuses, r.ChipTAT, r.Format())
	}
	if got := r.Format(); len(got) == 0 || got[len(got)-1] != '\n' {
		t.Fatalf("Format output malformed: %q", got)
	}
}
