package wrap

import (
	"fmt"

	"repro/internal/rtl"
	"repro/internal/soc"
)

// ChainProbe names the observation points of one physically elaborated
// wrapper chain: the chip pin driving its serial input, chip pins tapping
// the boundary between every segment, and the shift muxes that must be
// forced to test mode. The *Bits fields are the structural segment sizes
// recorded in the chain's Items — the claims the simulation measures
// against.
type ChainProbe struct {
	Core  string
	Chain int

	PI      string // chip PI driving the chain's WSI
	TapIn   string // chip PO after the input boundary cells
	TapScan string // chip PO after the internal scan stages (scan-in end)
	WSO     string // chip PO at the end of the chain

	Muxes []string // per-stage shift muxes, forced to in1 for shifting

	InBits, ScanBits, OutBits int
}

// Stages returns the chain's total sequential length.
func (p *ChainProbe) Stages() int { return p.InBits + p.ScanBits + p.OutBits }

// Elaborate clones the chip with every wrapper chain of r physically
// present: each chain stage becomes a real 1-bit register behind a 2-to-1
// shift mux (in1 = the serial path; in0 is the functional side, left to
// the core), the chain's serial input is wired to a new chip PI and the
// segment boundaries to new chip POs. The elaborated chip simulates on
// chipsim like any other; shifting a constant 1 from the PI and recording
// the first cycle each tap reads 1 measures the chain's true segment
// lengths, which internal/proptest checks against the recorded Items and
// the claimed SI/SO/TAT.
func Elaborate(ch *soc.Chip, r *Result) (*soc.Chip, []ChainProbe, error) {
	byName := map[string]*CoreResult{}
	for _, cr := range r.Cores {
		byName[cr.Core] = cr
	}
	nch := *ch
	nch.Cores = make([]*soc.Core, len(ch.Cores))
	nch.PIs = append([]soc.Pin(nil), ch.PIs...)
	nch.POs = append([]soc.Pin(nil), ch.POs...)
	nch.Nets = append([]soc.Net(nil), ch.Nets...)
	var probes []ChainProbe
	for i, c := range ch.Cores {
		nc := *c
		cr := byName[c.Name]
		if cr != nil && !c.Memory {
			ert, ps, err := elaborateWrappedCore(c.RTL, cr)
			if err != nil {
				return nil, nil, err
			}
			nc.RTL = ert
			for j := range ps {
				// Lift the core-port probes to chip pins.
				pi := fmt.Sprintf("XTAMI_%s_%d", c.Name, j)
				nch.PIs = append(nch.PIs, soc.Pin{Name: pi, Width: 1})
				nch.Nets = append(nch.Nets, soc.Net{FromPort: pi, ToCore: c.Name, ToPort: ps[j].PI})
				for _, t := range []struct {
					chip string
					core *string
				}{
					{fmt.Sprintf("XTAMA_%s_%d", c.Name, j), &ps[j].TapIn},
					{fmt.Sprintf("XTAMS_%s_%d", c.Name, j), &ps[j].TapScan},
					{fmt.Sprintf("XTAMO_%s_%d", c.Name, j), &ps[j].WSO},
				} {
					nch.POs = append(nch.POs, soc.Pin{Name: t.chip, Width: 1})
					nch.Nets = append(nch.Nets, soc.Net{FromCore: c.Name, FromPort: *t.core, ToPort: t.chip})
					*t.core = t.chip
				}
				ps[j].PI = pi
				probes = append(probes, ps[j])
			}
		}
		nch.Cores[i] = &nc
	}
	if err := nch.Validate(); err != nil {
		return nil, nil, fmt.Errorf("wrap: elaborated chip: %w", err)
	}
	return &nch, probes, nil
}

// elaborateWrappedCore splices the wrapper chains into a clone of the
// core RTL. The returned probes reference core-local port names; the
// caller lifts them to chip pins.
func elaborateWrappedCore(c *rtl.Core, cr *CoreResult) (*rtl.Core, []ChainProbe, error) {
	nc := &rtl.Core{
		Name:  c.Name,
		Ports: append([]rtl.Port(nil), c.Ports...),
		Regs:  append([]rtl.Register(nil), c.Regs...),
		Muxes: append([]rtl.Mux(nil), c.Muxes...),
		Units: append([]rtl.Unit(nil), c.Units...),
		Conns: append([]rtl.Conn(nil), c.Conns...),
	}
	probes := make([]ChainProbe, 0, len(cr.Chains))
	for j, wc := range cr.Chains {
		p := ChainProbe{Core: c.Name, Chain: j}
		for _, it := range wc.Items {
			switch it.Kind {
			case ItemInputCells:
				p.InBits += it.Bits
			case ItemScanChain:
				p.ScanBits += it.Bits
			case ItemOutputCells:
				p.OutBits += it.Bits
			}
		}
		wsi := fmt.Sprintf("XWSI%d", j)
		nc.Ports = append(nc.Ports, rtl.Port{Name: wsi, Dir: rtl.In, Width: 1})
		p.PI = wsi
		prev := rtl.Endpoint{Comp: wsi}
		stageSrc := []rtl.Endpoint{prev} // source after s stages, index s
		for e := 0; e < p.Stages(); e++ {
			mux := fmt.Sprintf("XWM%d_%d", j, e)
			reg := fmt.Sprintf("XW%d_%d", j, e)
			nc.Muxes = append(nc.Muxes, rtl.Mux{Name: mux, Width: 1, NumIn: 2})
			nc.Regs = append(nc.Regs, rtl.Register{Name: reg, Width: 1})
			q := rtl.Endpoint{Comp: reg, Pin: "q"}
			nc.Conns = append(nc.Conns,
				rtl.Conn{From: prev, To: rtl.Endpoint{Comp: mux, Pin: "in1"}},
				rtl.Conn{From: rtl.Endpoint{Comp: mux, Pin: "out"}, To: rtl.Endpoint{Comp: reg, Pin: "d"}})
			p.Muxes = append(p.Muxes, mux)
			prev = q
			stageSrc = append(stageSrc, q)
		}
		for _, t := range []struct {
			name string
			pos  int
			dst  *string
		}{
			{fmt.Sprintf("XWTA%d", j), p.InBits, &p.TapIn},
			{fmt.Sprintf("XWTS%d", j), p.InBits + p.ScanBits, &p.TapScan},
			{fmt.Sprintf("XWSO%d", j), p.Stages(), &p.WSO},
		} {
			nc.Ports = append(nc.Ports, rtl.Port{Name: t.name, Dir: rtl.Out, Width: 1})
			nc.Conns = append(nc.Conns, rtl.Conn{From: stageSrc[t.pos], To: rtl.Endpoint{Comp: t.name}})
			*t.dst = t.name
		}
		probes = append(probes, p)
	}
	if err := nc.Validate(); err != nil {
		return nil, nil, fmt.Errorf("wrap: elaborate %s: %w", c.Name, err)
	}
	return nc, probes, nil
}
