// Package wrap implements a P1500-style wrapped-core test architecture:
// every core port bit gets a wrapper boundary cell, the boundary cells and
// the core's internal HSCAN chains are concatenated into up to W balanced
// wrapper scan chains, and a chip-level test-access mechanism (TAM) of
// width W carries test data between the chip pins and the wrapped cores.
// It is the third baseline next to FSCAN-BSCAN (internal/bscan) and the
// test bus (internal/testbus), modeling the wrapper/TAM schemes that
// dominate the related work (P1500 BIST wrappers, precomputed-pattern
// wrappers for cores without ATPG access).
//
// The accounting follows the standard wrapper-chain TAT model: with
// per-chain scan-in lengths si_j = in_j + ff_j and scan-out lengths
// so_j = ff_j + out_j,
//
//	si = max_j si_j, so = max_j so_j
//	TAT(core) = (1 + max(si, so)) × V + min(si, so)
//
// (V shift-in/apply periods pipelined with shift-out, plus the final
// flush). Internal HSCAN chains shift at register granularity, matching
// internal/hscan's depth model; boundary cells shift one bit per cycle.
//
// Chain balancing is exact for cores with at most ExactMaxChains internal
// chains — every set partition of the chains is enumerated (deduplicated
// by its multiset of register loads) and boundary cells are distributed by
// waterfilling, so the reported core TAT is the true optimum of the model.
// Larger cores fall back to LPT. Evaluating a core at width w takes the
// best result over all chain counts m ≤ w, which makes the per-core TAT
// monotonically non-increasing in w by construction.
//
// The chip-level scheduler splits the W TAM wires into b equal buses
// (b = 1..W), assigns cores to buses by snaking the descending width-1
// TAT order, and tests the cores sharing a bus sequentially:
//
//	TAT(chip) = min over b of max over buses of Σ TAT(core, busWidth)
//
// The width-1 TAT sort key is partition-independent (a single wrapper
// chain always carries every boundary cell and register), so the
// assignment never changes when a chain is split or W grows — which makes
// the chip TAT provably monotone in W and non-increasing under chain
// splits wherever the per-core balancer is exact.
package wrap

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/cell"
	"repro/internal/hscan"
	"repro/internal/obs"
	"repro/internal/soc"
)

// hchain shortens the hscan chain type for the split helper.
type hchain = hscan.Chain

// ExactMaxChains is the largest internal-chain count balanced by exact
// set-partition enumeration; cores with more chains use the LPT fallback
// (CoreResult.Exact reports which one ran).
const ExactMaxChains = 9

// ItemKind classifies one segment of a wrapper scan chain.
type ItemKind int

// Wrapper chain segments, in shift order: input boundary cells first,
// then whole internal HSCAN chains, then output boundary cells.
const (
	ItemInputCells ItemKind = iota
	ItemScanChain
	ItemOutputCells
)

func (k ItemKind) String() string {
	switch k {
	case ItemInputCells:
		return "in"
	case ItemScanChain:
		return "scan"
	case ItemOutputCells:
		return "out"
	}
	return fmt.Sprintf("ItemKind(%d)", int(k))
}

// Item is one segment of a wrapper chain: Bits boundary cells, or one
// whole internal HSCAN chain (Chain indexes the core's Scan.Chains; Bits
// is its register-stage count).
type Item struct {
	Kind  ItemKind
	Bits  int
	Chain int // hscan chain index, ItemScanChain only
}

// Chain is one wrapper scan chain of a core.
type Chain struct {
	Items []Item
	SI    int // scan-in length: input cells + register stages
	SO    int // scan-out length: register stages + output cells
}

// CoreResult is the wrapper accounting for one core at its scheduled TAM
// width.
type CoreResult struct {
	Core    string
	Vectors int
	Width   int // wrapper chains built (≤ the TAM lane width)
	SI, SO  int // longest scan-in / scan-out chain
	TAT     int
	Exact   bool // balanced by exact partition enumeration
	Chains  []Chain
	Area    cell.Area // wrapper cells added to the core
}

// Result is the chip-level wrapper/TAM accounting.
type Result struct {
	Width     int   // requested TAM width W
	NumBuses  int   // buses the TAM was split into
	BusWidths []int // wire count per bus (sums to ≤ W)
	Buses     [][]int
	BusTATs   []int
	Cores     []*CoreResult // in TestableCores order
	ChipTAT   int
	TAMArea   cell.Area // chip-level TAM wiring and merge logic
}

// Options tunes Evaluate.
type Options struct {
	// Workers bounds the per-core balancing concurrency; ≤ 0 means 1.
	// Results are bit-identical at any worker count.
	Workers int
}

// WrapCells returns the total wrapper cell count over all cores.
func (r *Result) WrapCells() int {
	n := 0
	for _, c := range r.Cores {
		n += c.Area.Cells()
	}
	return n
}

// DFTCells returns the architecture's total added cell count (wrapper
// cells plus TAM wiring), the column comparable to SOCET's ChipDFTCells
// and bscan's scan+boundary total.
func (r *Result) DFTCells() int { return r.WrapCells() + r.TAMArea.Cells() }

// Format renders the result as an indented text block for the CLIs.
func (r *Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "wrapper/TAM width %d: %d buses", r.Width, r.NumBuses)
	for i, w := range r.BusWidths {
		sep := " ["
		if i > 0 {
			sep = " "
		}
		fmt.Fprintf(&b, "%s%dw×%dc", sep, w, len(r.Buses[i]))
	}
	if len(r.BusWidths) > 0 {
		b.WriteString("]")
	}
	fmt.Fprintf(&b, "  TApp %d cycles  DFT %d cells (%d wrapper + %d TAM)\n",
		r.ChipTAT, r.DFTCells(), r.WrapCells(), r.TAMArea.Cells())
	for _, c := range r.Cores {
		balance := "lpt"
		if c.Exact {
			balance = "exact"
		}
		fmt.Fprintf(&b, "  %-12s w=%d si=%d so=%d V=%d TApp=%d (%s)\n",
			c.Core, c.Width, c.SI, c.SO, c.Vectors, c.TAT, balance)
	}
	return b.String()
}

// chainLoads returns the register-stage count of each internal HSCAN
// chain of the core (nil when the core has no scan result).
func chainLoads(c *soc.Core) []int {
	if c.Scan == nil {
		return nil
	}
	loads := make([]int, len(c.Scan.Chains))
	for i := range c.Scan.Chains {
		loads[i] = c.Scan.Chains[i].Depth()
	}
	return loads
}

// coreTAT computes the TAT formula for the given chain-length maxima.
func coreTAT(si, so, vectors int) int {
	if vectors <= 0 {
		return 0
	}
	return (1+maxInt(si, so))*vectors + minInt(si, so)
}

// WrapCore balances one core's wrapper across at most w chains and
// returns the optimal (or LPT, for > ExactMaxChains internal chains)
// wrapper configuration. w must be ≥ 1.
func WrapCore(c *soc.Core, w int) *CoreResult {
	if w < 1 {
		w = 1
	}
	in, out := c.RTL.InputBits(), c.RTL.OutputBits()
	loads := chainLoads(c)
	exact := len(loads) <= ExactMaxChains

	var best *candidate
	for m := 1; m <= w; m++ {
		for _, cand := range balance(loads, m, exact) {
			cand.fill(in, out)
			if best == nil || cand.better(best) {
				cc := cand
				best = &cc
			}
		}
	}

	cr := &CoreResult{
		Core:    c.Name,
		Vectors: c.Vectors,
		Exact:   exact,
	}
	cr.Chains = best.chains(loads)
	for _, wc := range cr.Chains {
		cr.SI = maxInt(cr.SI, wc.SI)
		cr.SO = maxInt(cr.SO, wc.SO)
	}
	cr.Width = len(cr.Chains)
	cr.TAT = coreTAT(cr.SI, cr.SO, c.Vectors)

	// Wrapper hardware: a boundary cell per port bit, a concatenation mux
	// per internal chain (stitching it into its wrapper chain), and a small
	// wrapper controller (instruction register + bypass) per core.
	cr.Area.Add(cell.BScell, in+out)
	cr.Area.Add(cell.Mux2, len(loads))
	cr.Area.Add(cell.DFF, 4)
	cr.Area.Add(cell.And2, 2)
	obs.C("wrap.cores_wrapped").Inc()
	return cr
}

// wrapAllWidths returns the best CoreResult at every width 1..w; entry
// i is the optimum over chain counts ≤ i+1, so the slice is monotone.
func wrapAllWidths(c *soc.Core, w int) []*CoreResult {
	out := make([]*CoreResult, w)
	for i := 1; i <= w; i++ {
		cr := WrapCore(c, i)
		if i > 1 && out[i-2].TAT < cr.TAT {
			// Guard: WrapCore already minimizes over m ≤ i, so this cannot
			// happen; keep the stronger result if it ever did.
			cr = out[i-2]
		}
		out[i-1] = cr
	}
	return out
}

// candidate is one balanced grouping under evaluation: the register load
// and member chains per wrapper chain, plus the waterfilled boundary-cell
// allocation.
type candidate struct {
	groups   [][]int // internal chain indices per wrapper chain (may be empty)
	ffs      []int   // register stages per wrapper chain
	inAlloc  []int
	outAlloc []int
	si, so   int
	hi, lo   int // max/min of (si, so), the tie-break pair
}

// fill distributes the boundary cells over the candidate's chains by
// waterfilling and records the resulting chain-length maxima.
func (c *candidate) fill(in, out int) {
	c.inAlloc, c.si = waterfill(c.ffs, in)
	c.outAlloc, c.so = waterfill(c.ffs, out)
	c.hi = maxInt(c.si, c.so)
	c.lo = minInt(c.si, c.so)
}

// better orders candidates: smaller max chain first (the TAT multiplier),
// then smaller min chain (the tail), then fewer chains, then the
// lexicographically smallest descending load multiset — a total,
// deterministic order.
func (c *candidate) better(o *candidate) bool {
	if c.hi != o.hi {
		return c.hi < o.hi
	}
	if c.lo != o.lo {
		return c.lo < o.lo
	}
	if len(c.ffs) != len(o.ffs) {
		return len(c.ffs) < len(o.ffs)
	}
	for i := range c.ffs {
		if c.ffs[i] != o.ffs[i] {
			return c.ffs[i] < o.ffs[i]
		}
	}
	return false
}

// chains materializes the candidate into wrapper Chain records, dropping
// chains that carry nothing.
func (c *candidate) chains(loads []int) []Chain {
	out := make([]Chain, 0, len(c.groups))
	for j, members := range c.groups {
		wc := Chain{SI: c.inAlloc[j] + c.ffs[j], SO: c.ffs[j] + c.outAlloc[j]}
		if c.inAlloc[j] > 0 {
			wc.Items = append(wc.Items, Item{Kind: ItemInputCells, Bits: c.inAlloc[j]})
		}
		sorted := append([]int(nil), members...)
		sort.Ints(sorted)
		for _, idx := range sorted {
			wc.Items = append(wc.Items, Item{Kind: ItemScanChain, Bits: loads[idx], Chain: idx})
		}
		if c.outAlloc[j] > 0 {
			wc.Items = append(wc.Items, Item{Kind: ItemOutputCells, Bits: c.outAlloc[j]})
		}
		if len(wc.Items) > 0 {
			out = append(out, wc)
		}
	}
	if len(out) == 0 {
		out = append(out, Chain{}) // degenerate empty core: one empty chain
	}
	return out
}

// balance enumerates groupings of the internal chains into exactly m
// wrapper-chain slots (empty slots allowed; they host boundary cells
// only). Exact mode yields every distinct partition by load multiset;
// LPT mode yields the single longest-processing-time grouping.
func balance(loads []int, m int, exact bool) []candidate {
	if len(loads) == 0 || !exact {
		return []candidate{lptCandidate(loads, m)}
	}
	// Enumerate set partitions of the chains into ≤ m nonempty groups with
	// the classic symmetry-broken recursion (each item goes into one of the
	// used groups or opens the next), deduplicating by the sorted multiset
	// of group loads. Items are visited in descending-load order so the
	// dedup key stabilizes early.
	order := make([]int, len(loads))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return loads[order[a]] > loads[order[b]] })

	var out []candidate
	seen := map[string]bool{}
	groups := make([][]int, 0, m)
	sums := make([]int, 0, m)
	var rec func(i int)
	rec = func(i int) {
		if i == len(order) {
			key := partitionKey(sums)
			if seen[key] {
				return
			}
			seen[key] = true
			out = append(out, snapshot(groups, sums, m))
			return
		}
		idx := order[i]
		tried := map[int]bool{}
		for g := 0; g < len(groups); g++ {
			if tried[sums[g]] {
				continue // placing into an equal-load group is symmetric
			}
			tried[sums[g]] = true
			groups[g] = append(groups[g], idx)
			sums[g] += loads[idx]
			rec(i + 1)
			sums[g] -= loads[idx]
			groups[g] = groups[g][:len(groups[g])-1]
		}
		if len(groups) < m {
			groups = append(groups, []int{idx})
			sums = append(sums, loads[idx])
			rec(i + 1)
			groups = groups[:len(groups)-1]
			sums = sums[:len(sums)-1]
		}
	}
	rec(0)
	return out
}

// snapshot copies the in-progress grouping, padded with empty slots to m.
func snapshot(groups [][]int, sums []int, m int) candidate {
	c := candidate{groups: make([][]int, m), ffs: make([]int, m)}
	// Order groups by descending load (ties by smallest member) so equal
	// partitions snapshot identically regardless of discovery order.
	idx := make([]int, len(groups))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if sums[idx[a]] != sums[idx[b]] {
			return sums[idx[a]] > sums[idx[b]]
		}
		return minMember(groups[idx[a]]) < minMember(groups[idx[b]])
	})
	for j, gi := range idx {
		c.groups[j] = append([]int(nil), groups[gi]...)
		c.ffs[j] = sums[gi]
	}
	return c
}

func minMember(g []int) int {
	m := int(^uint(0) >> 1)
	for _, v := range g {
		if v < m {
			m = v
		}
	}
	return m
}

func partitionKey(sums []int) string {
	s := append([]int(nil), sums...)
	sort.Ints(s)
	var b strings.Builder
	for _, v := range s {
		fmt.Fprintf(&b, "%d,", v)
	}
	return b.String()
}

// lptCandidate assigns chains to the m slots by longest processing time:
// descending load, each chain onto the currently lightest slot (ties to
// the lowest slot index).
func lptCandidate(loads []int, m int) candidate {
	c := candidate{groups: make([][]int, m), ffs: make([]int, m)}
	order := make([]int, len(loads))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return loads[order[a]] > loads[order[b]] })
	for _, idx := range order {
		g := 0
		for j := 1; j < m; j++ {
			if c.ffs[j] < c.ffs[g] {
				g = j
			}
		}
		c.groups[g] = append(c.groups[g], idx)
		c.ffs[g] += loads[idx]
	}
	// Normalize slot order like snapshot does.
	return snapshot(c.groups, c.ffs, m)
}

// waterfill distributes bits boundary cells over slots with base register
// loads, minimizing the maximum filled height. It returns the per-slot
// allocation and the resulting maximum.
func waterfill(base []int, bits int) ([]int, int) {
	alloc := make([]int, len(base))
	high := 0
	for _, b := range base {
		high = maxInt(high, b)
	}
	if bits == 0 || len(base) == 0 {
		return alloc, high
	}
	// Binary-search the smallest level whose capacity covers the bits.
	lo, hi := high, high+bits
	capacity := func(level int) int {
		n := 0
		for _, b := range base {
			if level > b {
				n += level - b
			}
		}
		return n
	}
	if capacity(lo) < bits {
		for lo < hi {
			mid := lo + (hi-lo)/2
			if capacity(mid) >= bits {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
	}
	level := lo
	// Fill every slot to level-1, then hand out the remainder from slot 0.
	rem := bits
	for j, b := range base {
		take := minInt(maxInt(level-1-b, 0), rem)
		alloc[j] = take
		rem -= take
	}
	for j := 0; rem > 0 && j < len(base); j++ {
		if base[j]+alloc[j] < level {
			alloc[j]++
			rem--
		}
	}
	m := 0
	for j, b := range base {
		m = maxInt(m, b+alloc[j])
	}
	return alloc, m
}

// Evaluate computes the wrapper/TAM architecture for the chip at TAM
// width w: every testable core is wrapped and balanced, the TAM is split
// into the best number of equal buses, and cores sharing a bus are
// tested sequentially. Results are bit-identical at any worker count.
func Evaluate(ch *soc.Chip, w int, opts *Options) *Result {
	if w < 1 {
		w = 1
	}
	workers := 1
	if opts != nil && opts.Workers > 0 {
		workers = opts.Workers
	}
	cores := ch.TestableCores()
	res := &Result{Width: w}

	// Per-core TAT at every width 1..w, computed in parallel but stored by
	// index, so the result is independent of scheduling order.
	table := make([][]*CoreResult, len(cores))
	if workers > len(cores) {
		workers = maxInt(len(cores), 1)
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for p := 0; p < workers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				table[i] = wrapAllWidths(cores[i], w)
			}
		}()
	}
	for i := range cores {
		work <- i
	}
	close(work)
	wg.Wait()

	// Static assignment order: descending width-1 TAT, names as tie-break.
	// The key is independent of every balancing decision, so the order is
	// stable under TAM-width changes and chain splits.
	order := make([]int, len(cores))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ta, tb := table[order[a]][0].TAT, table[order[b]][0].TAT
		if ta != tb {
			return ta > tb
		}
		return cores[order[a]].Name < cores[order[b]].Name
	})

	bestTAT := -1
	var bestBuses [][]int
	var bestWidths []int
	var bestBusTATs []int
	for b := 1; b <= w && b <= maxInt(len(cores), 1); b++ {
		widths := make([]int, b)
		for t := 0; t < b; t++ {
			widths[t] = w / b
			if t < w%b {
				widths[t]++
			}
		}
		buses := make([][]int, b)
		for pos, ci := range order {
			t := snakeSlot(pos, b)
			buses[t] = append(buses[t], ci)
		}
		busTATs := make([]int, b)
		chip := 0
		for t := 0; t < b; t++ {
			sum := 0
			for _, ci := range buses[t] {
				sum += table[ci][widths[t]-1].TAT
			}
			busTATs[t] = sum
			chip = maxInt(chip, sum)
		}
		if bestTAT < 0 || chip < bestTAT {
			bestTAT, bestBuses, bestWidths, bestBusTATs = chip, buses, widths, busTATs
		}
	}

	res.NumBuses = len(bestWidths)
	res.BusWidths = bestWidths
	res.Buses = bestBuses
	res.BusTATs = bestBusTATs
	res.ChipTAT = bestTAT
	res.Cores = make([]*CoreResult, len(cores))
	for t, bus := range bestBuses {
		for _, ci := range bus {
			res.Cores[ci] = table[ci][bestWidths[t]-1]
		}
	}
	// TAM wiring: trunk drivers for the W in and W out wires, plus a
	// merge mux per lane between consecutive cores sharing a bus.
	res.TAMArea.Add(cell.Buf, 2*w)
	for t, bus := range bestBuses {
		if n := len(bus); n > 1 {
			res.TAMArea.Add(cell.Mux2, bestWidths[t]*(n-1))
		}
	}
	obs.C("wrap.schedules").Inc()
	return res
}

// snakeSlot maps a position in the sorted core order to its bus under
// boustrophedon assignment: 0..b-1, then b-1..0, and so on — the classic
// balance-by-alternation for a descending sequence.
func snakeSlot(pos, b int) int {
	round, off := pos/b, pos%b
	if round%2 == 0 {
		return off
	}
	return b - 1 - off
}

// SplitScanChain clones the chip with one core's internal HSCAN chain
// split in two after register position at (1 ≤ at < depth). Only the
// scan-chain structure is cloned — RTL, versions and nets are shared —
// so the clone is suitable for wrapper evaluation and the metamorphic
// "splitting never increases chip TAT" check.
func SplitScanChain(ch *soc.Chip, coreName string, chainIdx, at int) (*soc.Chip, error) {
	src, ok := ch.CoreByName(coreName)
	if !ok {
		return nil, fmt.Errorf("wrap: no core %q", coreName)
	}
	if src.Scan == nil || chainIdx < 0 || chainIdx >= len(src.Scan.Chains) {
		return nil, fmt.Errorf("wrap: core %s has no scan chain %d", coreName, chainIdx)
	}
	depth := src.Scan.Chains[chainIdx].Depth()
	if at < 1 || at >= depth {
		return nil, fmt.Errorf("wrap: split point %d outside chain %d of depth %d", at, chainIdx, depth)
	}
	nch := *ch
	nch.Cores = make([]*soc.Core, len(ch.Cores))
	for i, c := range ch.Cores {
		nc := *c
		if c.Name == coreName {
			scan := *c.Scan
			scan.Chains = append([]hchain(nil), c.Scan.Chains...)
			old := scan.Chains[chainIdx]
			first := hchain{Regs: old.Regs[:at]}
			second := hchain{Regs: old.Regs[at:]}
			scan.Chains[chainIdx] = first
			scan.Chains = append(scan.Chains, second)
			scan.MaxDepth = 0
			for _, cc := range scan.Chains {
				scan.MaxDepth = maxInt(scan.MaxDepth, cc.Depth())
			}
			nc.Scan = &scan
		}
		nch.Cores[i] = &nc
	}
	return &nch, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
