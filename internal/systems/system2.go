package systems

import (
	"repro/internal/rtl"
	"repro/internal/soc"
)

// Graphics builds the control-flow-intensive graphics processor core
// (the paper cites the power-management benchmark of [9]): a command
// pipeline computing pixel coordinates and colors.
func Graphics() *rtl.Core {
	return must(rtl.NewCore("GRAPHICS").
		In("Cmd", 8).
		In("Px", 8).
		CtlIn("Go", 1).
		Out("Pixel", 8).
		Out("Coord", 8).
		CtlOut("Rdy", 1).
		Reg("CMDREG", 8).
		Reg("XREG", 8).
		Reg("YREG", 8).
		Reg("DXREG", 8).
		Reg("COLOR", 8).
		RegLd("PIXOUT", 8). // latches on the DRAW command only
		Reg("RDYREG", 1).
		Mux("MCMD", 8, 2).
		Mux("MX", 8, 2).
		Mux("MY", 8, 2).
		Mux("MDX", 8, 2).
		Mux("MCOL", 8, 2).
		Mux("MPIX", 8, 2).
		Mux("MRDY", 1, 2).
		Unit(rtl.Unit{Name: "addx", Op: rtl.OpAdd, Width: 8}).
		Unit(rtl.Unit{Name: "blend", Op: rtl.OpXor, Width: 8}).
		Unit(rtl.Unit{Name: "isdraw", Op: rtl.OpEq, Width: 8}).
		Const("drawop", 8, 0x3C).
		Cloud("gctl", 2, 8, 8, 2150).
		Wire("Cmd", "MCMD.in0").
		Wire("gctl.out[7:0]", "MCMD.in1").
		Wire("MCMD.out", "CMDREG.d").
		Wire("CMDREG.q", "MX.in0").
		Wire("addx.out", "MX.in1").
		Wire("MX.out", "XREG.d").
		Wire("XREG.q", "MY.in0").
		Wire("addx.out", "MY.in1").
		Wire("MY.out", "YREG.d").
		Wire("Px", "MDX.in0").
		Wire("blend.out", "MDX.in1").
		Wire("MDX.out", "DXREG.d").
		Wire("DXREG.q", "MCOL.in0").
		Wire("blend.out", "MCOL.in1").
		Wire("MCOL.out", "COLOR.d").
		Wire("COLOR.q", "MPIX.in0").
		Wire("blend.out", "MPIX.in1").
		Wire("MPIX.out", "PIXOUT.d").
		Wire("CMDREG.q", "isdraw.in0").
		Wire("drawop.out", "isdraw.in1").
		Wire("isdraw.out", "PIXOUT.ld").
		Wire("PIXOUT.q", "Pixel").
		Wire("YREG.q", "Coord").
		Wire("XREG.q", "addx.in0").
		Wire("DXREG.q", "addx.in1").
		Wire("COLOR.q", "blend.in0").
		Wire("CMDREG.q", "blend.in1").
		Wire("gctl.out[0]", "MRDY.in0").
		Wire("Go", "MRDY.in1").
		Wire("MRDY.out", "RDYREG.d").
		Wire("RDYREG.q", "Rdy").
		Wire("CMDREG.q", "gctl.in0").
		Wire("XREG.q", "gctl.in1").
		Wire("gctl.out[1]", "MCMD.sel").
		Wire("gctl.out[2]", "MX.sel").
		Wire("gctl.out[3]", "MY.sel").
		Wire("gctl.out[4]", "MDX.sel").
		Wire("gctl.out[5]", "MCOL.sel").
		Wire("gctl.out[6]", "MPIX.sel").
		Wire("gctl.out[7]", "MRDY.sel").
		Build())
}

// GCD builds the greatest-common-divisor core from the 1995 high-level
// synthesis repository [10]: subtract-and-swap datapath.
func GCD() *rtl.Core {
	return must(rtl.NewCore("GCD").
		In("Xin", 8).
		In("Yin", 8).
		CtlIn("Start", 1).
		Out("Rslt", 8).
		CtlOut("Done", 1).
		Reg("X", 8).
		Reg("Y", 8).
		RegLd("RES", 8). // latches when the iteration terminates (Y == 0)
		Reg("DONEREG", 1).
		Mux("MGX", 8, 2).
		Mux("MGY", 8, 2).
		Mux("MR", 8, 2).
		Mux("MD", 1, 2).
		Unit(rtl.Unit{Name: "sub", Op: rtl.OpSub, Width: 8}).
		Unit(rtl.Unit{Name: "iszero", Op: rtl.OpEq, Width: 8}).
		Const("zero", 8, 0).
		Cloud("gcdctl", 2, 8, 4, 1075).
		Wire("Xin", "MGX.in0").
		Wire("sub.out", "MGX.in1").
		Wire("MGX.out", "X.d").
		Wire("Yin", "MGY.in0").
		Wire("X.q", "MGY.in1").
		Wire("MGY.out", "Y.d").
		Wire("X.q", "sub.in0").
		Wire("Y.q", "sub.in1").
		Wire("Y.q", "iszero.in0").
		Wire("zero.out", "iszero.in1").
		Wire("X.q", "MR.in0").
		Wire("sub.out", "MR.in1").
		Wire("MR.out", "RES.d").
		Wire("iszero.out", "RES.ld").
		Wire("RES.q", "Rslt").
		Wire("iszero.out", "MD.in0").
		Wire("Start", "MD.in1").
		Wire("MD.out", "DONEREG.d").
		Wire("DONEREG.q", "Done").
		Wire("X.q", "gcdctl.in0").
		Wire("Y.q", "gcdctl.in1").
		Wire("gcdctl.out[1]", "MGX.sel").
		Wire("gcdctl.out[2]", "MGY.sel").
		Wire("gcdctl.out[3]", "MR.sel").
		Wire("gcdctl.out[0]", "MD.sel").
		Build())
}

// X25 builds the X.25 protocol core [11]: a receive/transmit pipeline
// with a deep state machine cloud.
func X25() *rtl.Core {
	return must(rtl.NewCore("X25").
		In("RX", 8).
		CtlIn("Frame", 1).
		Out("TX", 8).
		Out("Status", 4).
		Reg("RXREG", 8).
		Reg("HDR", 8).
		Reg("PAYLOAD", 8).
		Reg("CRC", 8).
		RegLd("TXREG", 8). // latches on a valid frame header only
		RegLd("STREG", 4).
		Mux("MRX", 8, 2).
		Mux("MH", 8, 2).
		Mux("MP", 8, 2).
		Mux("MC", 8, 2).
		Mux("MTX", 8, 2).
		Mux("MST", 4, 2).
		Unit(rtl.Unit{Name: "crcx", Op: rtl.OpXor, Width: 8}).
		Unit(rtl.Unit{Name: "isflag", Op: rtl.OpEq, Width: 8}).
		Const("flagbyte", 8, 0x7E).
		Cloud("xctl", 3, 8, 10, 2510).
		Wire("RX", "MRX.in0").
		Wire("crcx.out", "MRX.in1").
		Wire("MRX.out", "RXREG.d").
		Wire("RXREG.q", "MH.in0").
		Wire("crcx.out", "MH.in1").
		Wire("MH.out", "HDR.d").
		Wire("HDR.q", "MP.in0").
		Wire("crcx.out", "MP.in1").
		Wire("MP.out", "PAYLOAD.d").
		Wire("PAYLOAD.q", "MC.in0").
		Wire("crcx.out", "MC.in1").
		Wire("MC.out", "CRC.d").
		Wire("CRC.q", "MTX.in0").
		Wire("crcx.out", "MTX.in1").
		Wire("MTX.out", "TXREG.d").
		Wire("HDR.q", "isflag.in0").
		Wire("flagbyte.out", "isflag.in1").
		Wire("isflag.out", "TXREG.ld").
		Wire("isflag.out", "STREG.ld").
		Wire("HDR.q[3:0]", "MST.in0").
		Wire("xctl.out[3:0]", "MST.in1").
		Wire("MST.out", "STREG.d").
		Wire("STREG.q", "Status").
		Wire("RXREG.q", "crcx.in0").
		Wire("PAYLOAD.q", "crcx.in1").
		Wire("RXREG.q", "xctl.in0").
		Wire("CRC.q", "xctl.in1").
		Wire("Frame", "xctl.in2[0]").
		Wire("xctl.out[4]", "MRX.sel").
		Wire("xctl.out[5]", "MH.sel").
		Wire("xctl.out[6]", "MP.sel").
		Wire("xctl.out[7]", "MC.sel").
		Wire("xctl.out[8]", "MTX.sel").
		Wire("xctl.out[9]", "MST.sel").
		Build())
}

// System2 assembles the second evaluation SoC: graphics processor, GCD
// and X25 protocol cores in a processing pipeline.
func System2() *soc.Chip {
	return &soc.Chip{
		Name: "system2",
		Cores: []*soc.Core{
			{Name: "GRAPHICS", RTL: Graphics()},
			{Name: "GCD", RTL: GCD()},
			{Name: "X25", RTL: X25()},
		},
		PIs: []soc.Pin{
			{Name: "Cmd", Width: 8}, {Name: "Px", Width: 8},
			{Name: "Go", Width: 1}, {Name: "Frame", Width: 1},
		},
		POs: []soc.Pin{
			{Name: "TXOut", Width: 8}, {Name: "StatusOut", Width: 4},
		},
		Nets: []soc.Net{
			{FromPort: "Cmd", ToCore: "GRAPHICS", ToPort: "Cmd"},
			{FromPort: "Px", ToCore: "GRAPHICS", ToPort: "Px"},
			{FromPort: "Go", ToCore: "GRAPHICS", ToPort: "Go"},
			{FromCore: "GRAPHICS", FromPort: "Pixel", ToCore: "GCD", ToPort: "Xin"},
			{FromCore: "GRAPHICS", FromPort: "Coord", ToCore: "GCD", ToPort: "Yin"},
			{FromCore: "GRAPHICS", FromPort: "Rdy", ToCore: "GCD", ToPort: "Start"},
			{FromCore: "GCD", FromPort: "Rslt", ToCore: "X25", ToPort: "RX"},
			{FromPort: "Frame", ToCore: "X25", ToPort: "Frame"},
			{FromCore: "X25", FromPort: "TX", ToPort: "TXOut"},
			{FromCore: "X25", FromPort: "Status", ToPort: "StatusOut"},
		},
	}
}
