// Package systems provides the two example SoCs of the paper's evaluation
// (Section 6): System 1, the barcode-scanning embedded system of Figure 2
// (CPU, PREPROCESSOR, DISPLAY, RAM, ROM), and System 2 (graphics
// processor, GCD, X25 protocol core). The RTL is synthetic but built to
// match the published structure: the CPU follows Figures 3 and 7 (IR
// O-split, accumulator C-split, mux M offering the Data->MAR-offset
// shortcut that Version 2 exploits), the DISPLAY has 66 flip-flops and 20
// internal input bits, and the interconnect matches the CCG of Figure 9.
package systems

import (
	"repro/internal/rtl"
	"repro/internal/soc"
)

// CPU builds the Navabi-style 8-bit accumulator CPU of Figure 3. The
// 12-bit address is exported as AddrLo(7:0)/AddrHi(11:8), matching the
// split Address nodes of Figures 7 and 9.
func CPU() *rtl.Core {
	return must(rtl.NewCore("CPU").
		In("Data", 8).
		CtlIn("Reset", 1).
		CtlIn("Interrupt", 1).
		Out("AddrLo", 8).
		Out("AddrHi", 4).
		CtlOut("Read", 1).
		CtlOut("Write", 1).
		// Datapath registers (Figure 3).
		Reg("IR", 8).     // instruction register
		RegLd("SR", 8).   // status register (load-enable: freezes cheaply)
		Reg("AC", 8).     // accumulator (C-split in the RCG)
		Reg("DBUF", 8).   // data buffer
		Reg("PCPG", 4).   // program counter page
		Reg("PCOFF", 8).  // program counter offset
		Reg("MARPG", 4).  // memory address register page
		Reg("MAROFF", 8). // memory address register offset
		Reg("CREG", 2).   // control outputs register (read/write strobes)
		// Multiplexers. M is the mux of Figure 3 whose select-line logic
		// gives Version 2 its one-cycle Data -> Address(7:0) shortcut.
		Mux("M1", 8, 2).   // IR source: Data / ALU
		Mux("MSR", 8, 2).  // SR source: IR / ALU flags
		Mux("MACL", 4, 2). // AC low nibble: SR / ALU
		Mux("MACH", 4, 2). // AC high nibble: IR / ALU
		Mux("MDB", 8, 2).  // DBUF source: AC / Data bus loopback
		Mux("MPCO", 8, 2). // PC offset: DBUF (branch target) / incremented
		Mux("MPCP", 4, 2). // PC page: IR / incremented
		Mux("M", 8, 2).    // MAR offset: PC offset / Data  <- mux M
		Mux("MMP", 4, 2).  // MAR page: IR / PC page
		Mux("MC0", 1, 2).  // read strobe: control logic / Reset bypass
		Mux("MC1", 1, 2).  // write strobe: control logic / Interrupt bypass
		// Functional units.
		Unit(rtl.Unit{Name: "alu", Op: rtl.OpAlu, Width: 8, AluOps: 4}).
		Unit(rtl.Unit{Name: "incoff", Op: rtl.OpInc, Width: 8}).
		Unit(rtl.Unit{Name: "incpg", Op: rtl.OpInc, Width: 4}).
		Cloud("ctl", 2, 8, 16, 2865). // instruction decoder / sequencer
		// IR.
		Wire("Data", "M1.in0").
		Wire("alu.out", "M1.in1").
		Wire("M1.out", "IR.d").
		// SR.
		Wire("IR.q", "MSR.in0").
		Wire("alu.out", "MSR.in1").
		Wire("MSR.out", "SR.d").
		// AC: C-split across MACL/MACH.
		Wire("SR.q[3:0]", "MACL.in0").
		Wire("alu.out[3:0]", "MACL.in1").
		Wire("MACL.out", "AC.d[3:0]").
		Wire("IR.q[7:4]", "MACH.in0").
		Wire("alu.out[7:4]", "MACH.in1").
		Wire("MACH.out", "AC.d[7:4]").
		// DBUF.
		Wire("AC.q", "MDB.in0").
		Wire("Data", "MDB.in1").
		Wire("MDB.out", "DBUF.d").
		// PC.
		Wire("DBUF.q", "MPCO.in0").
		Wire("incoff.out", "MPCO.in1").
		Wire("MPCO.out", "PCOFF.d").
		Wire("PCOFF.q", "incoff.in0").
		Wire("DBUF.q[3:0]", "MPCP.in0"). // branch page from the data buffer
		Wire("incpg.out", "MPCP.in1").
		Wire("MPCP.out", "PCPG.d").
		Wire("PCPG.q", "incpg.in0").
		// MAR (mux M between PC offset and Data).
		Wire("PCOFF.q", "M.in0").
		Wire("Data", "M.in1").
		Wire("M.out", "MAROFF.d").
		Wire("IR.q[3:0]", "MMP.in0").
		Wire("PCPG.q", "MMP.in1").
		Wire("MMP.out", "MARPG.d").
		// Address outputs.
		Wire("MAROFF.q", "AddrLo").
		Wire("MARPG.q", "AddrHi").
		// Control strobes: single-bit bypass chains (Reset->Read and
		// Interrupt->Write, Section 4's control-signal treatment).
		Wire("ctl.out[0]", "MC0.in0").
		Wire("Reset", "MC0.in1").
		Wire("MC0.out", "CREG.d[0]").
		Wire("ctl.out[1]", "MC1.in0").
		Wire("Interrupt", "MC1.in1").
		Wire("MC1.out", "CREG.d[1]").
		Wire("CREG.q[0]", "Read").
		Wire("CREG.q[1]", "Write").
		// Control cloud and ALU plumbing.
		Wire("IR.q", "ctl.in0").
		Wire("SR.q", "ctl.in1").
		Wire("ctl.out[2]", "M1.sel").
		Wire("ctl.out[3]", "MSR.sel").
		Wire("ctl.out[4]", "MACL.sel").
		Wire("ctl.out[5]", "MACH.sel").
		Wire("ctl.out[6]", "MDB.sel").
		Wire("ctl.out[7]", "MPCO.sel").
		Wire("ctl.out[8]", "MPCP.sel").
		Wire("ctl.out[9]", "M.sel").
		Wire("ctl.out[10]", "MMP.sel").
		Wire("ctl.out[11]", "SR.ld").
		Wire("ctl.out[13:12]", "alu.op").
		Wire("ctl.out[14]", "MC0.sel").
		Wire("ctl.out[15]", "MC1.sel").
		Wire("AC.q", "alu.in0").
		Wire("DBUF.q", "alu.in1").
		Build())
}

// Preprocessor builds the barcode PREPROCESSOR: a five-stage measurement
// pipeline from NUM to DB (Version 1's five-cycle latency in Figure 8),
// an address counter, and an end-of-conversion strobe reachable from
// Reset in two cycles (the (Reset, Eoc) edge of Section 5.2).
func Preprocessor() *rtl.Core {
	return must(rtl.NewCore("PREPROCESSOR").
		In("NUM", 8).
		In("Video", 1).
		CtlIn("Reset", 1).
		Out("DB", 8).
		Out("Address", 12).
		CtlOut("Eoc", 1).
		Reg("SYNC", 8).   // video synchronizer / test data entry
		Reg("FILT", 8).   // glitch filter
		Reg("WIDTH", 8).  // bar width counter
		Reg("THRESH", 8). // black/white threshold compare stage
		Reg("OUTREG", 8). // output holding register
		Reg("ADDRCNT", 12).
		Reg("EOCREG", 1).
		Mux("MS", 8, 2).
		Mux("MF", 8, 2).
		Mux("MW", 8, 2).
		Mux("MT", 8, 2).
		Mux("MO", 8, 2).
		Mux("MA", 12, 2).
		Mux("ME", 1, 2).
		Unit(rtl.Unit{Name: "incw", Op: rtl.OpInc, Width: 8}).
		Unit(rtl.Unit{Name: "inca", Op: rtl.OpInc, Width: 12}).
		Cloud("pctl", 3, 8, 8, 3065).
		// NUM -> SYNC -> FILT -> WIDTH -> THRESH -> OUTREG -> DB pipeline.
		Wire("NUM", "MS.in0").
		Wire("pctl.out[7:0]", "MS.in1").
		Wire("MS.out", "SYNC.d").
		Wire("SYNC.q", "MF.in0").
		Wire("incw.out", "MF.in1").
		Wire("MF.out", "FILT.d").
		Wire("FILT.q", "MW.in0").
		Wire("incw.out", "MW.in1").
		Wire("MW.out", "WIDTH.d").
		Wire("WIDTH.q", "MT.in0").
		Wire("incw.out", "MT.in1").
		Wire("MT.out", "THRESH.d").
		Wire("THRESH.q", "MO.in0").
		Wire("incw.out", "MO.in1").
		Wire("MO.out", "OUTREG.d").
		Wire("OUTREG.q", "DB").
		// Address counter: low byte loadable from SYNC (NUM -> Address in
		// two cycles), otherwise incrementing.
		Wire("inca.out", "MA.in0").
		Wire("SYNC.q", "MA.in1[7:0]").
		Wire("SYNC.q[3:0]", "MA.in1[11:8]").
		Wire("MA.out", "ADDRCNT.d").
		Wire("ADDRCNT.q", "inca.in0").
		Wire("ADDRCNT.q", "Address").
		// End-of-conversion strobe with Reset bypass.
		Wire("pctl.out[0]", "ME.in0"). // reuse of cloud bit as EOC logic
		Wire("Reset", "ME.in1").
		Wire("ME.out", "EOCREG.d").
		Wire("EOCREG.q", "Eoc").
		// Control plumbing.
		Wire("WIDTH.q", "incw.in0").
		Wire("SYNC.q", "pctl.in0").
		Wire("THRESH.q", "pctl.in1").
		Wire("Video", "pctl.in2[0]").
		Wire("pctl.out[1]", "MS.sel").
		Wire("pctl.out[2]", "MF.sel").
		Wire("pctl.out[3]", "MW.sel").
		Wire("pctl.out[4]", "MT.sel").
		Wire("pctl.out[5]", "MO.sel").
		Wire("pctl.out[6]", "MA.sel").
		Wire("pctl.out[7]", "ME.sel").
		Build())
}

// Display builds the DISPLAY core: 66 flip-flops and 20 internal input
// bits (A(11:0) plus D(7:0)), as published in Section 3. Six seven-segment
// decoder clouds drive the output ports.
func Display() *rtl.Core {
	b := rtl.NewCore("DISPLAY").
		In("ALo", 8).
		In("AHi", 4).
		In("D", 8).
		Reg("BCDREG", 8).   // BCD digits from the CPU
		Reg("ADDRREG", 12). // memory-mapped port address
		Reg("LATCH", 4).    // digit strobe latch
		DecodeCloud("addrdec", 1, 12, 4, 560)
	for i := 1; i <= 6; i++ {
		seg := segName(i)
		b.Out("PORT"+digit(i), 7).
			RegLd(seg, 7). // loads only on its port address (match_i)
			Mux("MX"+digit(i), 7, 2).
			DecodeCloud("dec"+digit(i), 2, 8, 7, 315).
			Unit(rtl.Unit{Name: "match" + digit(i), Op: rtl.OpEq, Width: 12}).
			Const("paddr"+digit(i), 12, uint64(0xA00+i))
	}
	b.
		Wire("D", "BCDREG.d").
		Wire("ALo", "ADDRREG.d[7:0]").
		Wire("AHi", "ADDRREG.d[11:8]").
		Wire("ADDRREG.q", "addrdec.in0").
		Wire("addrdec.out", "LATCH.d").
		// Digit decoders: BCD value + strobe state -> segment pattern.
		Wire("BCDREG.q", "dec1.in0").
		Wire("BCDREG.q", "dec2.in0").
		Wire("BCDREG.q", "dec3.in0").
		Wire("BCDREG.q", "dec4.in0").
		Wire("BCDREG.q", "dec5.in0").
		Wire("BCDREG.q", "dec6.in0").
		Wire("LATCH.q", "dec1.in1[3:0]").
		Wire("LATCH.q", "dec2.in1[3:0]").
		Wire("LATCH.q", "dec3.in1[3:0]").
		Wire("LATCH.q", "dec4.in1[3:0]").
		Wire("LATCH.q", "dec5.in1[3:0]").
		Wire("LATCH.q", "dec6.in1[3:0]").
		// Segment registers: decoder value or scan-chain neighbour.
		Wire("dec1.out", "MX1.in0").
		Wire("BCDREG.q[6:0]", "MX1.in1").
		Wire("MX1.out", "SEG1.d").
		Wire("dec2.out", "MX2.in0").
		Wire("SEG1.q", "MX2.in1").
		Wire("MX2.out", "SEG2.d").
		Wire("dec3.out", "MX3.in0").
		Wire("ADDRREG.q[6:0]", "MX3.in1").
		Wire("MX3.out", "SEG3.d").
		Wire("dec4.out", "MX4.in0").
		Wire("SEG3.q", "MX4.in1").
		Wire("MX4.out", "SEG4.d").
		Wire("dec5.out", "MX5.in0").
		Wire("D[6:0]", "MX5.in1").
		Wire("MX5.out", "SEG5.d").
		Wire("dec6.out", "MX6.in0").
		Wire("SEG5.q", "MX6.in1").
		Wire("MX6.out", "SEG6.d").
		// Scan-versus-decode steering comes from the strobe latch state
		// (independent of the current address, so decoder logic stays
		// reachable while a port register is being addressed).
		Wire("LATCH.q[0]", "MX1.sel").
		Wire("LATCH.q[1]", "MX2.sel").
		Wire("LATCH.q[2]", "MX3.sel").
		Wire("LATCH.q[3]", "MX4.sel").
		Wire("LATCH.q[0]", "MX5.sel").
		Wire("LATCH.q[1]", "MX6.sel")
	for i := 1; i <= 6; i++ {
		b.Wire(segName(i)+".q", "PORT"+digit(i))
		// Memory-mapped port write strobe: the segment register captures
		// only when the CPU addresses it (this is what makes the raw chip
		// nearly untestable without chip-level DFT — Table 3's "Orig."
		// column).
		b.Wire("ADDRREG.q", "match"+digit(i)+".in0")
		b.Wire("paddr"+digit(i)+".out", "match"+digit(i)+".in1")
		b.Wire("match"+digit(i)+".out", segName(i)+".ld")
	}
	return must(b.Build())
}

func digit(i int) string { return string(rune('0' + i)) }

func segName(i int) string { return "SEG" + digit(i) }

// RAM is a memory stub: tested by march BIST (internal/bist), excluded
// from the CCG per Section 5.
func RAM() *rtl.Core {
	return must(rtl.NewCore("RAM").
		In("Addr", 12).
		In("Din", 8).
		CtlIn("WE", 1).
		Out("Dout", 8).
		Reg("DOUTREG", 8).
		Reg("AREG", 12).
		Cloud("ramdec", 2, 12, 8, 60). // row/column decode stand-in
		Wire("Addr", "AREG.d").
		Wire("AREG.q", "ramdec.in0").
		Wire("Din", "ramdec.in1[7:0]").
		Wire("WE", "ramdec.in1[8]").
		Wire("ramdec.out", "DOUTREG.d").
		Wire("DOUTREG.q", "Dout").
		Build())
}

// ROM is the program memory stub.
func ROM() *rtl.Core {
	return must(rtl.NewCore("ROM").
		In("Addr", 12).
		Out("Dout", 8).
		Reg("DOUTREG", 8).
		Reg("AREG", 12).
		Cloud("romarr", 1, 12, 8, 90). // encoded program array stand-in
		Wire("Addr", "AREG.d").
		Wire("AREG.q", "romarr.in0").
		Wire("romarr.out", "DOUTREG.d").
		Wire("DOUTREG.q", "Dout").
		Build())
}

// System1 assembles the barcode SoC of Figure 2. The CCG of Figure 9
// follows from this interconnect: NUM reaches the DISPLAY through
// PREPROCESSOR (NUM->DB) and CPU (Data->Address); the PREPROCESSOR's
// Address output has no observation path and needs a system-level test
// mux; the CPU's memory-facing pins likewise.
func System1() *soc.Chip {
	ch := &soc.Chip{
		Name: "system1",
		Cores: []*soc.Core{
			{Name: "CPU", RTL: CPU()},
			{Name: "PREPROCESSOR", RTL: Preprocessor()},
			{Name: "DISPLAY", RTL: Display()},
			{Name: "RAM", RTL: RAM(), Memory: true},
			{Name: "ROM", RTL: ROM(), Memory: true},
		},
		PIs: []soc.Pin{{Name: "Video", Width: 1}, {Name: "NUM", Width: 8}, {Name: "Reset", Width: 1}},
		POs: []soc.Pin{
			{Name: "PO-PORT1", Width: 7}, {Name: "PO-PORT2", Width: 7},
			{Name: "PO-PORT3", Width: 7}, {Name: "PO-PORT4", Width: 7},
			{Name: "PO-PORT5", Width: 7}, {Name: "PO-PORT6", Width: 7},
		},
		Nets: []soc.Net{
			{FromPort: "Video", ToCore: "PREPROCESSOR", ToPort: "Video"},
			{FromPort: "NUM", ToCore: "PREPROCESSOR", ToPort: "NUM"},
			{FromPort: "Reset", ToCore: "PREPROCESSOR", ToPort: "Reset"},
			{FromPort: "Reset", ToCore: "CPU", ToPort: "Reset"},
			// Shared data bus: PREPROCESSOR drives both the CPU and the
			// DISPLAY data inputs.
			{FromCore: "PREPROCESSOR", FromPort: "DB", ToCore: "CPU", ToPort: "Data"},
			{FromCore: "PREPROCESSOR", FromPort: "DB", ToCore: "DISPLAY", ToPort: "D"},
			// End-of-conversion interrupts the CPU.
			{FromCore: "PREPROCESSOR", FromPort: "Eoc", ToCore: "CPU", ToPort: "Interrupt"},
			// Memory-mapped address bus to the DISPLAY.
			{FromCore: "CPU", FromPort: "AddrLo", ToCore: "DISPLAY", ToPort: "ALo"},
			{FromCore: "CPU", FromPort: "AddrHi", ToCore: "DISPLAY", ToPort: "AHi"},
			// Memory traffic (absorbed by the BIST-tested memories).
			{FromCore: "PREPROCESSOR", FromPort: "Address", ToCore: "RAM", ToPort: "Addr"},
			{FromCore: "RAM", FromPort: "Dout", ToCore: "CPU", ToPort: "Data"},
			{FromCore: "CPU", FromPort: "AddrLo", ToCore: "ROM", ToPort: "Addr"},
			// Display ports are the chip outputs.
			{FromCore: "DISPLAY", FromPort: "PORT1", ToPort: "PO-PORT1"},
			{FromCore: "DISPLAY", FromPort: "PORT2", ToPort: "PO-PORT2"},
			{FromCore: "DISPLAY", FromPort: "PORT3", ToPort: "PO-PORT3"},
			{FromCore: "DISPLAY", FromPort: "PORT4", ToPort: "PO-PORT4"},
			{FromCore: "DISPLAY", FromPort: "PORT5", ToPort: "PO-PORT5"},
			{FromCore: "DISPLAY", FromPort: "PORT6", ToPort: "PO-PORT6"},
		},
	}
	return ch
}
