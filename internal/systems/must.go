package systems

import "repro/internal/rtl"

// must unwraps rtl.Builder.Build for this package's fixture cores. The
// fixtures are static — a build error here is a bug in the fixture source,
// not a runtime condition — so it fails loudly at construction instead of
// forcing every System1/System2 caller to thread an impossible error.
// (The library itself no longer offers a panicking build; see rtl.Build.)
func must(c *rtl.Core, err error) *rtl.Core {
	if err != nil {
		panic("systems: fixture core failed to build: " + err.Error())
	}
	return c
}
