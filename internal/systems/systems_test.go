package systems

import (
	"testing"

	"repro/internal/hscan"
	"repro/internal/rtl"
	"repro/internal/synth"
	"repro/internal/trans"
)

func ladder(t *testing.T, c *rtl.Core) []*trans.Version {
	t.Helper()
	scan, err := hscan.Insert(c)
	if err != nil {
		t.Fatalf("hscan(%s): %v", c.Name, err)
	}
	g, err := trans.Build(c, scan)
	if err != nil {
		t.Fatalf("rcg(%s): %v", c.Name, err)
	}
	vs, err := trans.Versions(g)
	if err != nil {
		t.Fatalf("versions(%s): %v", c.Name, err)
	}
	if len(vs) == 0 {
		t.Fatalf("no versions for %s", c.Name)
	}
	return vs
}

func TestSystem1Validates(t *testing.T) {
	ch := System1()
	if err := ch.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ch.TestableCores()) != 3 {
		t.Errorf("testable cores = %d, want 3 (RAM/ROM are memory)", len(ch.TestableCores()))
	}
}

func TestSystem2Validates(t *testing.T) {
	ch := System2()
	if err := ch.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ch.TestableCores()) != 3 {
		t.Errorf("testable cores = %d, want 3", len(ch.TestableCores()))
	}
}

func TestAllCoresSynthesize(t *testing.T) {
	for _, c := range []*rtl.Core{CPU(), Preprocessor(), Display(), RAM(), ROM(), Graphics(), GCD(), X25()} {
		res, err := synth.Synthesize(c)
		if err != nil {
			t.Errorf("synthesize(%s): %v", c.Name, err)
			continue
		}
		st := res.Netlist.Stats()
		if st.Gates == 0 || st.FFs == 0 {
			t.Errorf("%s: degenerate netlist %+v", c.Name, st)
		}
	}
}

func TestDisplayMatchesPublishedCounts(t *testing.T) {
	d := Display()
	// Section 3: "the DISPLAY core has 66 flip-flops and 20 internal
	// inputs".
	if got := d.FFCount(); got != 66 {
		t.Errorf("DISPLAY flip-flops = %d, want 66", got)
	}
	if got := d.InputBits(); got != 20 {
		t.Errorf("DISPLAY input bits = %d, want 20", got)
	}
	if got := d.OutputBits(); got != 42 {
		t.Errorf("DISPLAY output bits = %d, want 42 (six 7-segment ports)", got)
	}
}

func TestCPUFigure6Ladder(t *testing.T) {
	vs := ladder(t, CPU())
	v1 := vs[0]
	// Figure 6 shape: Version 1 justifies Address(7:0) through the long
	// HSCAN chain and Address(11:8) in two cycles.
	if got := v1.JustLatency("AddrLo"); got != 6 {
		t.Errorf("V1 D->A(7:0) = %d cycles, want 6 (Figure 6)", got)
	}
	if got := v1.JustLatency("AddrHi"); got != 2 {
		t.Errorf("V1 D->A(11:8) = %d cycles, want 2 (Figure 6)", got)
	}
	// The ladder must reach single-cycle address justification.
	last := vs[len(vs)-1]
	if got := last.JustLatency("AddrLo"); got != 1 {
		t.Errorf("final D->A(7:0) = %d, want 1 (Version 3 of Figure 5)", got)
	}
	if got := last.JustLatency("AddrHi"); got != 1 {
		t.Errorf("final D->A(11:8) = %d, want 1", got)
	}
	// Monotone trade-off (the Figure 6 table).
	for i := 1; i < len(vs); i++ {
		ai, aj := vs[i].Area, vs[i-1].Area
		if ai.Cells() < aj.Cells() {
			t.Errorf("version %d area %d < version %d area %d", i+1, ai.Cells(), i, aj.Cells())
		}
	}
}

func TestCPUControlBypass(t *testing.T) {
	vs := ladder(t, CPU())
	v1 := vs[0]
	// Section 4: control inputs bypass random logic; Reset reaches Read
	// and Interrupt reaches Write through the CREG chain.
	if got := v1.PropLatency("Reset"); got < 1 || got > 2 {
		t.Errorf("Reset propagation = %d cycles, want 1-2 (paper: 2)", got)
	}
	if got := v1.PropLatency("Interrupt"); got < 1 || got > 2 {
		t.Errorf("Interrupt propagation = %d cycles, want 1-2", got)
	}
}

func TestPreprocessorFigure8Ladder(t *testing.T) {
	vs := ladder(t, Preprocessor())
	v1 := vs[0]
	// Figure 8(a): Version 1 moves NUM->DB in five cycles.
	if got := v1.JustLatency("DB"); got != 5 {
		t.Errorf("V1 NUM->DB = %d cycles, want 5 (Figure 8)", got)
	}
	last := vs[len(vs)-1]
	if got := last.JustLatency("DB"); got != 1 {
		t.Errorf("final NUM->DB = %d, want 1", got)
	}
	if len(vs) < 2 {
		t.Errorf("PREPROCESSOR ladder has %d versions, want >= 2", len(vs))
	}
}

func TestDisplayFigure8Ladder(t *testing.T) {
	vs := ladder(t, Display())
	v1 := vs[0]
	// Figure 8(b): D and A reach "a combination of output ports" in a
	// couple of cycles.
	if got := v1.PropLatency("D"); got < 1 || got > 3 {
		t.Errorf("V1 D->OUT = %d cycles, want 1-3 (paper: 2)", got)
	}
	if got := v1.PropLatency("ALo"); got < 1 || got > 4 {
		t.Errorf("V1 A->OUT = %d cycles, want 1-4 (paper: 3)", got)
	}
	// Every PORT output is justifiable (the DISPLAY test needs it).
	for i := 1; i <= 6; i++ {
		port := "PORT" + digit(i)
		if got := v1.JustLatency(port); got < 1 {
			t.Errorf("V1 just(%s) = %d, want >= 1", port, got)
		}
	}
}

func TestCPUScanChains(t *testing.T) {
	c := CPU()
	scan, err := hscan.Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	// The datapath threads into a deep chain (Figure 4(a)).
	if scan.MaxDepth < 4 {
		t.Errorf("CPU scan depth = %d, want >= 4", scan.MaxDepth)
	}
	// Every register is covered.
	covered := map[string]bool{}
	for _, ch := range scan.Chains {
		for _, r := range ch.Regs {
			covered[r] = true
		}
	}
	for _, r := range c.Regs {
		if !covered[r.Name] {
			t.Errorf("register %s not in any scan chain", r.Name)
		}
	}
}

func TestSystemSizes(t *testing.T) {
	// The paper's originals: System 1 = 8014 cells, System 2 = 5540.
	// Our synthetic clouds are calibrated to land in the same ballpark
	// (±20%), keeping the relative overhead percentages meaningful.
	area := func(cores ...*rtl.Core) int {
		total := 0
		for _, c := range cores {
			res, err := synth.Synthesize(c)
			if err != nil {
				t.Fatal(err)
			}
			a := res.Netlist.Area()
			total += a.Cells()
		}
		return total
	}
	s1 := area(CPU(), Preprocessor(), Display())
	if s1 < 6400 || s1 > 9600 {
		t.Errorf("System 1 area = %d cells, want 8014 +/- 20%%", s1)
	}
	s2 := area(Graphics(), GCD(), X25())
	if s2 < 4400 || s2 > 6650 {
		t.Errorf("System 2 area = %d cells, want 5540 +/- 20%%", s2)
	}
}
