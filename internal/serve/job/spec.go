// Package job is socetd's job layer: the JSON wire format for submitted
// work, the crash-safe journal that records every job's lifecycle, and
// the manager that admits jobs, runs them on a lease-based worker pool
// (internal/serve/pool) as checkpointed shard units, and merges their
// results deterministically.
//
// The design invariant the whole package leans on: every job's result
// is a pure function of its Spec. Chips resolve through
// flowcmd.ChipSpec (the same code path the CLIs use), work is
// partitioned by shard.Plan, progress is checkpointed with the
// length/CRC-framed atomic codec (internal/ckpt, via internal/shard),
// and merges are canonical — so a job that is interrupted by SIGKILL,
// resumed after restart, executed twice because a lease expired, or
// split across any number of workers converges to the byte-identical
// result text a single uninterrupted process would have produced.
package job

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/flowcmd"
)

// Type enumerates what a job runs.
const (
	// TypeEvaluate runs the flow once (optionally on a fault-damaged
	// chip) and reports the chip-level bottom line.
	TypeEvaluate = "evaluate"
	// TypeCampaign runs a seeded random fault-injection campaign.
	TypeCampaign = "campaign"
	// TypeExplore sweeps the design space and reports the Pareto front.
	TypeExplore = "explore"
)

// SpecMaxScript bounds the embedded chip script a spec may carry.
const SpecMaxScript = 1 << 18

// Spec is the wire format of one job: what to run, on which chip, split
// how. It is carried as JSON over the daemon API and inside the journal.
type Spec struct {
	Type string           `json:"type"`
	Chip flowcmd.ChipSpec `json:"chip"`

	// Shards partitions campaign and explore work into leased units
	// (default 1). More shards mean finer-grained crash recovery and
	// more parallelism, at more checkpoint files.
	Shards int `json:"shards,omitempty"`

	// Explore jobs.
	MaxPoints int  `json:"max_points,omitempty"`
	FullEval  bool `json:"full_eval,omitempty"`

	// Campaign jobs: Runs fault sets of SetSize faults from Seed.
	Runs    int   `json:"runs,omitempty"`
	SetSize int   `json:"set_size,omitempty"`
	Seed    int64 `json:"seed,omitempty"`

	// Evaluate jobs: optional fault list (resil.ParseFaults syntax) to
	// inject before evaluating.
	Faults string `json:"faults,omitempty"`

	// Timeout is the per-job deadline as a Go duration string
	// ("30s", "5m"); empty uses the daemon default.
	Timeout string `json:"timeout,omitempty"`
}

// MaxShards bounds Spec.Shards: each shard is a checkpoint file and a
// pool unit, so the partition width is an admission-controlled resource.
const MaxShards = 64

// DecodeSpec parses and validates a JSON job spec. It never panics on
// any input (FuzzJobSpec holds it to that).
func DecodeSpec(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("job: bad spec JSON: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the spec without building the chip or running
// anything; a spec that validates is safe to admit.
func (s *Spec) Validate() error {
	switch s.Type {
	case TypeEvaluate, TypeCampaign, TypeExplore:
	default:
		return fmt.Errorf("job: type must be %q, %q or %q, got %q", TypeEvaluate, TypeCampaign, TypeExplore, s.Type)
	}
	if len(s.Chip.Script) > SpecMaxScript {
		return fmt.Errorf("job: chip script exceeds %d bytes", SpecMaxScript)
	}
	if s.Chip.Gen != nil && (s.Chip.Gen.Cores < 0 || s.Chip.Gen.Cores > 64) {
		return fmt.Errorf("job: gen cores must be 0..64, got %d", s.Chip.Gen.Cores)
	}
	if err := s.Chip.Validate(); err != nil {
		return err
	}
	if s.Shards < 0 || s.Shards > MaxShards {
		return fmt.Errorf("job: shards must be 0..%d, got %d", MaxShards, s.Shards)
	}
	if s.MaxPoints < 0 {
		return fmt.Errorf("job: max_points must be >= 0")
	}
	if s.Timeout != "" {
		d, err := time.ParseDuration(s.Timeout)
		if err != nil || d < 0 {
			return fmt.Errorf("job: bad timeout %q", s.Timeout)
		}
	}
	switch s.Type {
	case TypeCampaign:
		if s.Runs < 1 || s.Runs > 1<<20 {
			return fmt.Errorf("job: campaign runs must be 1..2^20, got %d", s.Runs)
		}
		if s.SetSize < 0 || s.SetSize > 16 {
			return fmt.Errorf("job: campaign set_size must be 0..16, got %d", s.SetSize)
		}
		if s.Faults != "" {
			return fmt.Errorf("job: faults applies to evaluate jobs only")
		}
	case TypeExplore:
		if s.Runs != 0 || s.SetSize != 0 || s.Seed != 0 {
			return fmt.Errorf("job: runs/set_size/seed apply to campaign jobs only")
		}
		if s.Faults != "" {
			return fmt.Errorf("job: faults applies to evaluate jobs only")
		}
	case TypeEvaluate:
		if s.Runs != 0 || s.SetSize != 0 || s.Seed != 0 {
			return fmt.Errorf("job: runs/set_size/seed apply to campaign jobs only")
		}
		if s.Shards > 1 {
			return fmt.Errorf("job: evaluate jobs are not sharded")
		}
	}
	return nil
}

// withDefaults resolves optional fields (callers keep the wire form
// canonical; execution uses the resolved copy).
func (s Spec) withDefaults() Spec {
	if s.Shards < 1 {
		s.Shards = 1
	}
	if s.Type == TypeCampaign && s.SetSize == 0 {
		s.SetSize = 2
	}
	return s
}

// timeout returns the job deadline, falling back to def. Validate has
// already vetted the string.
func (s Spec) timeout(def time.Duration) time.Duration {
	if s.Timeout == "" {
		return def
	}
	d, err := time.ParseDuration(s.Timeout)
	if err != nil {
		return def
	}
	return d
}
