package job

import (
	"encoding/json"
	"fmt"
	"path/filepath"

	"repro/internal/ckpt"
	"repro/internal/obs"
)

// State is a job's lifecycle position. Queued and Running jobs found in
// the journal at startup are re-run (their shard checkpoints make the
// re-run incremental); Done and Failed are terminal.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// Record is one job's journal entry — everything needed to resume or
// serve it: the spec (results are a pure function of it), the state,
// and the outcome.
type Record struct {
	ID     string `json:"id"`
	Spec   Spec   `json:"spec"`
	State  State  `json:"state"`
	Result string `json:"result,omitempty"`
	Error  string `json:"error,omitempty"`
}

// journalSchema versions the journal payload; a mismatch rejects the
// frame (treated as corrupt, older frames are tried).
const journalSchema = 1

// journalState is the full journal payload. The journal persists whole
// snapshots, not deltas: with tens of jobs the payload is small, and a
// snapshot per frame means any single good frame is a complete recovery
// point — exactly the property the framed codec's keep-N history needs.
type journalState struct {
	Schema int      `json:"schema"`
	Seq    int      `json:"seq"`
	Jobs   []Record `json:"jobs"`
}

// journal wraps the length/CRC-framed atomic checkpoint codec around
// the job table.
type journal struct {
	w *ckpt.Writer
}

func journalPath(dir string) string { return filepath.Join(dir, "journal.ck") }

// openJournal loads the newest good journal frame (nil state when the
// journal does not exist yet) and returns a writer seeded with it, so a
// crash before the first new write preserves history.
func openJournal(dir string) (*journal, *journalState, error) {
	var st *journalState
	accept := func(payload []byte) bool {
		var s journalState
		if json.Unmarshal(payload, &s) != nil || s.Schema != journalSchema {
			return false
		}
		st = &s
		return true
	}
	newest, _, err := ckpt.Load(journalPath(dir), accept)
	if err != nil {
		return nil, nil, fmt.Errorf("job: journal: %w", err)
	}
	w := ckpt.NewWriter(journalPath(dir), ckpt.DefaultKeep)
	if newest != nil {
		w.Seed(newest)
	}
	return &journal{w: w}, st, nil
}

// write persists a snapshot atomically.
func (j *journal) write(st *journalState) error {
	st.Schema = journalSchema
	payload, err := json.Marshal(st)
	if err != nil {
		return err
	}
	if err := j.w.Write(payload); err != nil {
		return err
	}
	obs.C("serve.journal_writes").Inc()
	return nil
}
