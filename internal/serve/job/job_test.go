package job

import (
	"context"
	"errors"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flowcmd"
	"repro/internal/resil"
	"repro/internal/shard"
)

// testChip is the small generated chip every manager test runs against:
// cheap to Prepare, rich enough to shard.
func testChip() flowcmd.ChipSpec {
	return flowcmd.ChipSpec{Gen: &flowcmd.GenSpec{Seed: 7, Cores: 5}}
}

func testOptions(dir string) Options {
	return Options{
		Dir:      dir,
		Workers:  4,
		LeaseTTL: 5 * time.Second,
		Every:    time.Millisecond,
	}
}

func newManager(t *testing.T, o Options) *Manager {
	t.Helper()
	m, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func mustSubmit(t *testing.T, m *Manager, spec Spec) Record {
	t.Helper()
	rec, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if rec.State != StateQueued {
		t.Fatalf("admission state = %q, want %q", rec.State, StateQueued)
	}
	return rec
}

func waitDone(t *testing.T, m *Manager, id string) Record {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	rec, err := m.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait(%s): %v", id, err)
	}
	if rec.State != StateDone {
		t.Fatalf("job %s settled %q (error %q), want done", id, rec.State, rec.Error)
	}
	return rec
}

// directFlow prepares the test chip the way the manager does, for
// reference results computed outside the daemon path.
func directFlow(t *testing.T) *core.Flow {
	t.Helper()
	ch, opts, err := testChip().Build()
	if err != nil {
		t.Fatal(err)
	}
	f, err := core.Prepare(ch, opts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestEvaluateJob runs the simplest job type end to end and holds the
// result text to the determinism invariant: same spec, same bytes.
func TestEvaluateJob(t *testing.T) {
	m := newManager(t, testOptions(t.TempDir()))
	spec := Spec{Type: TypeEvaluate, Chip: testChip()}
	first := waitDone(t, m, mustSubmit(t, m, spec).ID)
	if !strings.HasPrefix(first.Result, "chip ") || !strings.Contains(first.Result, "\ntat ") {
		t.Fatalf("unexpected evaluate result:\n%s", first.Result)
	}
	second := waitDone(t, m, mustSubmit(t, m, spec).ID)
	if first.Result != second.Result {
		t.Fatalf("same spec produced different results:\n%s\nvs\n%s", first.Result, second.Result)
	}
}

// TestCampaignJobMatchesDirect holds a sharded campaign job to the
// byte-identical-merge invariant: the daemon's report must equal the
// single-process shard.RunCampaign over the same seeded runs.
func TestCampaignJobMatchesDirect(t *testing.T) {
	const runs, setSize, seed = 12, 2, 13
	f := directFlow(t)
	c := &resil.Campaign{Flow: f, Runs: resil.RandomSets(f.Chip, runs, setSize, seed), Seed: seed}
	res, err := shard.RunCampaign(context.Background(), c, shard.Options{
		Shards: 1, Index: shard.All,
		Checkpoint: filepath.Join(t.TempDir(), "ref"),
		Every:      time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := res.Report.Format()

	m := newManager(t, testOptions(t.TempDir()))
	rec := waitDone(t, m, mustSubmit(t, m, Spec{
		Type: TypeCampaign, Chip: testChip(),
		Shards: 3, Runs: runs, SetSize: setSize, Seed: seed,
	}).ID)
	if rec.Result != want {
		t.Fatalf("campaign job result differs from direct run:\n got:\n%s\nwant:\n%s", rec.Result, want)
	}
}

// TestExploreJobMatchesDirect does the same for explore jobs: the
// daemon's front must render byte-identically to a direct sharded run.
func TestExploreJobMatchesDirect(t *testing.T) {
	const maxPoints = 60
	f := directFlow(t)
	res, err := shard.RunExplore(context.Background(), f, shard.Options{
		Shards: 1, Index: shard.All,
		Checkpoint: filepath.Join(t.TempDir(), "ref"),
		Every:      time.Millisecond,
		MaxPoints:  maxPoints,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := formatFront(res)

	m := newManager(t, testOptions(t.TempDir()))
	rec := waitDone(t, m, mustSubmit(t, m, Spec{
		Type: TypeExplore, Chip: testChip(),
		Shards: 2, MaxPoints: maxPoints,
	}).ID)
	if rec.Result != want {
		t.Fatalf("explore job result differs from direct run:\n got:\n%s\nwant:\n%s", rec.Result, want)
	}
	if !strings.HasPrefix(rec.Result, "Pareto front over ") {
		t.Fatalf("unexpected explore result:\n%s", rec.Result)
	}
}

// TestCrashRecoveryByteIdentical is the tentpole gate at the job layer:
// kill a manager mid-campaign (Close cancels everything in flight after
// checkpoints exist), reopen the same directory, and require the
// recovered job to finish with the exact bytes an uninterrupted manager
// produces.
func TestCrashRecoveryByteIdentical(t *testing.T) {
	spec := Spec{
		Type: TypeCampaign, Chip: testChip(),
		Shards: 4, Runs: 24, SetSize: 2, Seed: 5,
	}

	clean := newManager(t, testOptions(t.TempDir()))
	want := waitDone(t, clean, mustSubmit(t, clean, spec).ID).Result

	dir := t.TempDir()
	m1, err := New(testOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	rec := mustSubmit(t, m1, spec)
	// Let the job make real progress, then pull the plug: wait for at
	// least one shard checkpoint frame to land.
	deadline := time.Now().Add(time.Minute)
	prefix := filepath.Join(dir, "job-"+rec.ID)
	for {
		if files, _ := filepath.Glob(prefix + ".shard*"); len(files) > 0 {
			break
		}
		if done, _ := m1.Get(rec.ID); done.State.Terminal() {
			break // finished before we could interrupt; recovery is vacuous but the bytes still must match
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared within a minute")
		}
		time.Sleep(time.Millisecond)
	}
	m1.Close()

	after, ok := m1.Get(rec.ID)
	if !ok {
		t.Fatalf("job %s lost at shutdown", rec.ID)
	}
	if after.State.Terminal() && after.Result != want {
		t.Fatalf("job finished before interrupt with wrong bytes:\n%s", after.Result)
	}
	if !after.State.Terminal() {
		t.Logf("interrupted job %s in state %q", rec.ID, after.State)
	}

	m2 := newManager(t, testOptions(dir))
	got, ok := m2.Get(rec.ID)
	if !ok {
		t.Fatalf("job %s not recovered from journal", rec.ID)
	}
	if got.State.Terminal() && !after.State.Terminal() {
		// Recovered and not yet re-run to completion is also possible
		// here; Wait below settles it either way.
		t.Logf("job %s already terminal right after recovery", rec.ID)
	}
	final := waitDone(t, m2, rec.ID)
	if final.Result != want {
		t.Fatalf("recovered result differs from uninterrupted run:\n got:\n%s\nwant:\n%s", final.Result, want)
	}
}

// TestSubmitRejectsInvalidSpecs exercises admission-time validation.
func TestSubmitRejectsInvalidSpecs(t *testing.T) {
	m := newManager(t, testOptions(t.TempDir()))
	for _, spec := range []Spec{
		{},
		{Type: "frobnicate", Chip: testChip()},
		{Type: TypeEvaluate},
		{Type: TypeCampaign, Chip: testChip()},
		{Type: TypeCampaign, Chip: testChip(), Runs: 4, Faults: "x"},
		{Type: TypeExplore, Chip: testChip(), Runs: 4},
		{Type: TypeEvaluate, Chip: testChip(), Shards: 2},
		{Type: TypeEvaluate, Chip: testChip(), Timeout: "yesterday"},
		{Type: TypeCampaign, Chip: testChip(), Runs: 4, Shards: MaxShards + 1},
	} {
		if _, err := m.Submit(spec); err == nil {
			t.Errorf("Submit accepted invalid spec %+v", spec)
		}
	}
	if m.Unfinished() != 0 {
		t.Fatalf("invalid submissions left %d unfinished jobs", m.Unfinished())
	}
}

// TestAdmissionControlErrBusy saturates the queue, requires the
// deterministic ErrBusy the API layer maps to 429, and requires every
// accepted job to still complete.
func TestAdmissionControlErrBusy(t *testing.T) {
	o := testOptions(t.TempDir())
	o.QueueLimit = 2
	m := newManager(t, o)
	// Jobs big enough that they cannot settle before the next Submit.
	var accepted []Record
	for i := int64(0); i < 2; i++ {
		accepted = append(accepted, mustSubmit(t, m, Spec{
			Type: TypeCampaign, Chip: testChip(),
			Shards: 2, Runs: 200, SetSize: 2, Seed: i,
		}))
	}
	if _, err := m.Submit(Spec{Type: TypeEvaluate, Chip: testChip()}); !errors.Is(err, ErrBusy) {
		t.Fatalf("saturated Submit returned %v, want ErrBusy", err)
	}
	for _, rec := range accepted {
		waitDone(t, m, rec.ID)
	}
	// With the queue drained, admission opens again.
	if _, err := m.Submit(Spec{Type: TypeEvaluate, Chip: testChip()}); err != nil {
		t.Fatalf("post-drain Submit: %v", err)
	}
}

// TestDrainStopsAdmission drains an idle manager and requires new
// submissions to fail with ErrDraining.
func TestDrainStopsAdmission(t *testing.T) {
	m := newManager(t, testOptions(t.TempDir()))
	if err := m.Drain(context.Background()); err != nil {
		t.Fatalf("Drain of idle manager: %v", err)
	}
	if !m.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	if _, err := m.Submit(Spec{Type: TypeEvaluate, Chip: testChip()}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain Submit returned %v, want ErrDraining", err)
	}
}

// TestDrainWaitsForJobs drains a busy manager and requires the in-flight
// job to settle terminally before Drain returns.
func TestDrainWaitsForJobs(t *testing.T) {
	m := newManager(t, testOptions(t.TempDir()))
	rec := mustSubmit(t, m, Spec{
		Type: TypeCampaign, Chip: testChip(),
		Shards: 2, Runs: 6, SetSize: 2, Seed: 3,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	got, _ := m.Get(rec.ID)
	if got.State != StateDone {
		t.Fatalf("drained job state = %q (error %q), want done", got.State, got.Error)
	}
}

// TestCloseLeavesNoGoroutines is the leak gate: a manager that ran real
// jobs and was closed must not strand pool workers, pulse tickers, or
// job goroutines.
func TestCloseLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	m, err := New(testOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, mustSubmit(t, m, Spec{Type: TypeEvaluate, Chip: testChip()}).ID)
	m.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
