package job

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/flowcmd"
	"repro/internal/obs"
	"repro/internal/resil"
	"repro/internal/serve/pool"
	"repro/internal/shard"
)

// ErrBusy is returned by Submit when admission control refuses a job
// because the unfinished-job queue is full. The API layer maps it to a
// deterministic HTTP 429.
var ErrBusy = errors.New("job: queue full")

// ErrDraining is returned by Submit once a graceful drain has begun.
var ErrDraining = errors.New("job: draining, not accepting jobs")

// Options configures a Manager.
type Options struct {
	// Dir holds the journal and every job's shard checkpoints.
	Dir string
	// Workers bounds the lease pool (default GOMAXPROCS).
	Workers int
	// QueueLimit bounds unfinished (queued + running) jobs; submissions
	// beyond it get ErrBusy (default 8).
	QueueLimit int
	// LeaseTTL is the pool's heartbeat lease (default 30s).
	LeaseTTL time.Duration
	// Retry is the reassignment/backoff policy for failed or expired
	// shard units.
	Retry shard.Retry
	// Timeout is the default per-job deadline (0 = none); a spec's own
	// timeout overrides it.
	Timeout time.Duration
	// Every overrides the shard checkpoint interval (default 5s);
	// tests shorten it so crash windows are tight.
	Every time.Duration
}

func (o Options) withDefaults() Options {
	if o.QueueLimit < 1 {
		o.QueueLimit = 8
	}
	return o
}

// flowEntry is one prepared flow shared by every job naming the same
// chip spec: the flow itself plus the evaluation caches jobs reuse.
// Preparation runs once (sync.Once) even under concurrent jobs.
type flowEntry struct {
	once  sync.Once
	flow  *core.Flow
	delta *explore.Cache
	full  *explore.Cache
	err   error
}

type jobEntry struct {
	rec  Record
	done chan struct{}
}

// Manager admits, journals, runs and serves jobs.
type Manager struct {
	opts    Options
	pool    *pool.Pool
	ctx     context.Context
	cancel  context.CancelFunc
	closing sync.Once

	mu       sync.Mutex
	journal  *journal
	jobs     map[string]*jobEntry
	order    []string // submission order, for List and the journal
	seq      int
	draining bool
	running  sync.WaitGroup

	flowMu sync.Mutex
	flows  map[string]*flowEntry
}

// New opens (or creates) the journal in o.Dir, recovers any unfinished
// jobs it records, and starts accepting work. Recovered jobs re-run
// immediately; their shard checkpoints make the re-run incremental and
// their results byte-identical to an uninterrupted run.
func New(o Options) (*Manager, error) {
	o = o.withDefaults()
	if o.Dir == "" {
		return nil, fmt.Errorf("job: Options.Dir is required")
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, err
	}
	j, st, err := openJournal(o.Dir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		opts:    o,
		pool:    pool.New(pool.Options{Workers: o.Workers, LeaseTTL: o.LeaseTTL, Retry: o.Retry}),
		ctx:     ctx,
		cancel:  cancel,
		journal: j,
		jobs:    map[string]*jobEntry{},
		flows:   map[string]*flowEntry{},
	}
	var recovered []*jobEntry
	if st != nil {
		m.seq = st.Seq
		for _, rec := range st.Jobs {
			e := &jobEntry{rec: rec, done: make(chan struct{})}
			if rec.State.Terminal() {
				close(e.done)
			} else {
				// Queued or running at the time of the crash: back to
				// queued, then re-run below.
				e.rec.State = StateQueued
				e.rec.Result, e.rec.Error = "", ""
				recovered = append(recovered, e)
			}
			m.jobs[rec.ID] = e
			m.order = append(m.order, rec.ID)
		}
	}
	if len(recovered) > 0 {
		obs.C("serve.jobs_recovered").Add(int64(len(recovered)))
		m.mu.Lock()
		m.persistLocked()
		m.mu.Unlock()
		for _, e := range recovered {
			m.running.Add(1)
			go m.run(e)
		}
	}
	return m, nil
}

// Submit validates and admits a job, journals it, and starts it. The
// returned record is the admission-time snapshot (state queued).
func (m *Manager) Submit(spec Spec) (Record, error) {
	if err := spec.Validate(); err != nil {
		obs.C("serve.jobs_rejected").Inc()
		return Record{}, err
	}
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		obs.C("serve.jobs_rejected").Inc()
		return Record{}, ErrDraining
	}
	unfinished := 0
	for _, e := range m.jobs {
		if !e.rec.State.Terminal() {
			unfinished++
		}
	}
	if unfinished >= m.opts.QueueLimit {
		m.mu.Unlock()
		obs.C("serve.jobs_rejected").Inc()
		return Record{}, ErrBusy
	}
	m.seq++
	e := &jobEntry{
		rec:  Record{ID: fmt.Sprintf("j%d", m.seq), Spec: spec, State: StateQueued},
		done: make(chan struct{}),
	}
	m.jobs[e.rec.ID] = e
	m.order = append(m.order, e.rec.ID)
	m.persistLocked()
	rec := e.rec
	m.mu.Unlock()
	obs.C("serve.jobs_accepted").Inc()
	m.running.Add(1)
	go m.run(e)
	return rec, nil
}

// Get returns the named job's current record.
func (m *Manager) Get(id string) (Record, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.jobs[id]
	if !ok {
		return Record{}, false
	}
	return e.rec, true
}

// List returns every job in submission order.
func (m *Manager) List() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Record, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id].rec)
	}
	return out
}

// Wait blocks until the named job settles (or ctx expires) and returns
// its final record.
func (m *Manager) Wait(ctx context.Context, id string) (Record, error) {
	m.mu.Lock()
	e, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Record{}, fmt.Errorf("job: unknown job %q", id)
	}
	select {
	case <-e.done:
	case <-ctx.Done():
		return Record{}, ctx.Err()
	}
	rec, _ := m.Get(id)
	return rec, nil
}

// Unfinished counts queued and running jobs (the readiness signal).
func (m *Manager) Unfinished() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, e := range m.jobs {
		if !e.rec.State.Terminal() {
			n++
		}
	}
	return n
}

// Draining reports whether a graceful drain has begun.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Drain stops admission and waits for in-flight jobs to finish — or
// for ctx to expire, at which point remaining jobs are cancelled (they
// checkpoint what they have; a restart resumes them). Always closes
// the pool; returns ctx's error when the deadline cut the drain short.
func (m *Manager) Drain(ctx context.Context) error {
	obs.C("serve.drains").Inc()
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
	finished := make(chan struct{})
	go func() {
		m.running.Wait()
		close(finished)
	}()
	var err error
	select {
	case <-finished:
	case <-ctx.Done():
		err = ctx.Err()
	}
	m.close()
	return err
}

// Close cancels everything in flight and releases the pool. Jobs stop
// at their next context check, having checkpointed; the journal keeps
// them queued for the next start.
func (m *Manager) Close() { m.close() }

func (m *Manager) close() {
	m.closing.Do(func() {
		m.mu.Lock()
		m.draining = true
		m.mu.Unlock()
		m.cancel()
		m.running.Wait()
		m.pool.Close()
	})
}

// persistLocked writes the journal snapshot; callers hold m.mu. Journal
// write failures are recorded as a metric but do not fail the job —
// the daemon keeps serving from memory and the next write retries.
func (m *Manager) persistLocked() {
	st := &journalState{Seq: m.seq}
	for _, id := range m.order {
		st.Jobs = append(st.Jobs, m.jobs[id].rec)
	}
	if err := m.journal.write(st); err != nil {
		obs.C("serve.journal_write_errors").Inc()
	}
}

// setState transitions a job and journals the change.
func (m *Manager) setState(e *jobEntry, state State, result, errText string) {
	m.mu.Lock()
	e.rec.State = state
	e.rec.Result = result
	e.rec.Error = errText
	m.persistLocked()
	running := 0
	for _, j := range m.jobs {
		if j.rec.State == StateRunning {
			running++
		}
	}
	m.mu.Unlock()
	obs.G("serve.jobs_running").Set(int64(running))
}

// run executes one job to settlement.
func (m *Manager) run(e *jobEntry) {
	defer m.running.Done()
	defer close(e.done)
	m.setState(e, StateRunning, "", "")
	ctx := m.ctx
	if d := e.rec.Spec.timeout(m.opts.Timeout); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	result, err := m.execute(ctx, e.rec.ID, e.rec.Spec.withDefaults())
	if err != nil {
		if m.ctx.Err() != nil {
			// Manager shutdown, not a job failure: leave the record
			// non-terminal in the journal so the next start recovers and
			// re-runs it (incrementally, from its shard checkpoints).
			return
		}
		obs.C("serve.jobs_failed").Inc()
		m.setState(e, StateFailed, "", err.Error())
		return
	}
	obs.C("serve.jobs_completed").Inc()
	m.setState(e, StateDone, result, "")
}

// flow returns the shared prepared flow (and caches) for a chip spec,
// preparing it at most once across all jobs.
func (m *Manager) flow(spec flowcmd.ChipSpec) (*flowEntry, error) {
	key := spec.Key()
	m.flowMu.Lock()
	fe, ok := m.flows[key]
	if !ok {
		fe = &flowEntry{}
		m.flows[key] = fe
	}
	m.flowMu.Unlock()
	fe.once.Do(func() {
		ch, opts, err := spec.Build()
		if err != nil {
			fe.err = err
			return
		}
		fe.flow, fe.err = core.Prepare(ch, opts)
		if fe.err == nil {
			fe.delta = explore.NewCache()
			fe.full = explore.NewFullCache()
		}
	})
	if fe.err != nil {
		return nil, fe.err
	}
	return fe, nil
}

// checkpointPrefix is where a job's shard checkpoints live.
func (m *Manager) checkpointPrefix(id string) string {
	return filepath.Join(m.opts.Dir, "job-"+id)
}

// shardOptions assembles the per-unit shard options for one shard of a
// job: checkpointed, resumable, heartbeating into the unit's lease.
func (m *Manager) shardOptions(id string, spec Spec, index int, beat func()) shard.Options {
	return shard.Options{
		Shards:     spec.Shards,
		Index:      index,
		Checkpoint: m.checkpointPrefix(id),
		Resume:     true,
		Every:      m.opts.Every,
		Retry:      m.opts.Retry,
		MaxPoints:  spec.MaxPoints,
		FullEval:   spec.FullEval,
		OnProgress: beat,
	}
}

// execute dispatches one job. Campaign and explore jobs fan their
// shards out as pool units, then merge by resuming every checkpoint in
// this goroutine — the merge re-evaluates nothing and is byte-identical
// regardless of which worker ran which shard how many times.
func (m *Manager) execute(ctx context.Context, id string, spec Spec) (string, error) {
	fe, err := m.flow(spec.Chip)
	if err != nil {
		return "", err
	}
	switch spec.Type {
	case TypeEvaluate:
		return m.runEvaluate(ctx, fe.flow, spec)
	case TypeCampaign:
		c := &resil.Campaign{
			Flow: fe.flow,
			Runs: resil.RandomSets(fe.flow.Chip, spec.Runs, spec.SetSize, spec.Seed),
			Seed: spec.Seed,
		}
		err := m.runUnits(ctx, id, spec, func(uctx context.Context, i int, beat func()) error {
			res, err := shard.RunCampaign(uctx, c, m.shardOptions(id, spec, i, beat))
			return unitErr(res == nil, err, res != nil && len(res.Incomplete) > 0)
		})
		if err != nil {
			return "", err
		}
		opts := m.shardOptions(id, spec, shard.All, nil)
		res, err := shard.RunCampaign(ctx, c, opts)
		if err != nil {
			return "", err
		}
		if len(res.Incomplete) > 0 {
			return "", fmt.Errorf("job: campaign incomplete: %d/%d runs", res.Done, res.Total)
		}
		m.removeCheckpoints(id, spec.Shards)
		return res.Report.Format(), nil
	case TypeExplore:
		err := m.runUnits(ctx, id, spec, func(uctx context.Context, i int, beat func()) error {
			o := m.shardOptions(id, spec, i, beat)
			o.Cache = fe.cache(spec.FullEval)
			res, err := shard.RunExplore(uctx, fe.flow, o)
			return unitErr(res == nil, err, res != nil && len(res.Incomplete) > 0)
		})
		if err != nil {
			return "", err
		}
		opts := m.shardOptions(id, spec, shard.All, nil)
		opts.Cache = fe.cache(spec.FullEval)
		res, err := shard.RunExplore(ctx, fe.flow, opts)
		if err != nil {
			return "", err
		}
		if len(res.Incomplete) > 0 {
			return "", fmt.Errorf("job: explore incomplete: %d/%d selections", res.Done, res.Total)
		}
		m.removeCheckpoints(id, spec.Shards)
		return formatFront(res), nil
	}
	return "", fmt.Errorf("job: unknown type %q", spec.Type)
}

// cache picks the evaluation cache matching the job's evaluator choice
// (delta and full evaluations are bit-identical, but each cache binds
// to the evaluator that fills it).
func (fe *flowEntry) cache(fullEval bool) *explore.Cache {
	if fullEval {
		return fe.full
	}
	return fe.delta
}

// runUnits fans one leased pool unit out per shard and collapses their
// results. Unit failures surface as the job's error after the pool has
// exhausted lease reassignment and backoff.
func (m *Manager) runUnits(ctx context.Context, id string, spec Spec, run func(ctx context.Context, i int, beat func()) error) error {
	units := make([]pool.Unit, spec.Shards)
	for i := range units {
		i := i
		units[i] = pool.Unit{
			ID:  fmt.Sprintf("%s/shard%d-of-%d", id, i, spec.Shards),
			Run: func(uctx context.Context, beat func()) error { return run(uctx, i, beat) },
		}
	}
	var errs []string
	for _, r := range m.pool.Do(ctx, units) {
		if r.Err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", r.ID, r.Err))
		}
	}
	if len(errs) > 0 {
		sort.Strings(errs)
		return errors.New(strings.Join(errs, "; "))
	}
	return ctx.Err()
}

// unitErr normalizes a shard run outcome into a unit result: hard
// failures and incomplete windows both fail the unit so the lease layer
// retries it.
func unitErr(fatal bool, err error, incomplete bool) error {
	if err != nil {
		return err
	}
	if fatal {
		return errors.New("job: shard run produced no result")
	}
	if incomplete {
		return errors.New("job: shard window incomplete")
	}
	return nil
}

// removeCheckpoints deletes a finished job's shard checkpoints — the
// journal now carries the result, so the frames have nothing left to
// protect. Best-effort: a leftover file only costs disk.
func (m *Manager) removeCheckpoints(id string, shards int) {
	for i := 0; i < shards; i++ {
		os.Remove(shard.CheckpointPath(m.checkpointPrefix(id), i, shards))
	}
}

// runEvaluate runs a single (possibly fault-injected) evaluation. It
// executes as one pool unit with a liveness pulse: an evaluation has no
// natural progress stream, so the pulse keeps the lease alive and the
// job deadline is its real bound.
func (m *Manager) runEvaluate(ctx context.Context, f *core.Flow, spec Spec) (string, error) {
	var result string
	units := []pool.Unit{{
		ID: "evaluate",
		Run: func(uctx context.Context, beat func()) error {
			stop := pulse(beat, m.opts.LeaseTTL)
			defer stop()
			var err error
			result, err = evaluate(uctx, f, spec.Faults)
			return err
		},
	}}
	for _, r := range m.pool.Do(ctx, units) {
		if r.Err != nil {
			return "", r.Err
		}
	}
	return result, nil
}

// pulse beats a lease on a timer until stopped — liveness only, for
// units that cannot report granular progress.
func pulse(beat func(), ttl time.Duration) (stop func()) {
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(ttl / 8)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				beat()
			case <-done:
				return
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}

// evaluate is the evaluate-job body: deterministic text for the chip
// bottom line, plus the degradation report when faults are injected.
func evaluate(ctx context.Context, f *core.Flow, faultSpec string) (string, error) {
	var (
		e   *core.Evaluation
		rep string
	)
	if faultSpec != "" {
		faults, err := resil.ParseFaults(f.Chip, faultSpec)
		if err != nil {
			return "", err
		}
		damaged, err := resil.Inject(f.Chip, faults...)
		if err != nil {
			return "", err
		}
		dev, err := f.Fork(damaged).EvaluateDegradedCtx(ctx)
		if err != nil {
			return "", err
		}
		e = dev.Evaluation
		rep = dev.Report.Format()
	} else {
		var err error
		e, err = f.EvaluateCtx(ctx)
		if err != nil {
			return "", err
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "chip %s\n", f.Chip.Name)
	fmt.Fprintf(&sb, "trans_cells %d\n", e.TransCells)
	fmt.Fprintf(&sb, "mux_cells %d\n", e.MuxCells)
	fmt.Fprintf(&sb, "ctrl_cells %d\n", e.CtrlCells)
	fmt.Fprintf(&sb, "chip_dft_cells %d\n", e.ChipDFTCells())
	fmt.Fprintf(&sb, "tat %d\n", e.TAT)
	if e.BISTCycles > 0 {
		fmt.Fprintf(&sb, "bist_cycles %d\n", e.BISTCycles)
	}
	sb.WriteString(rep)
	return sb.String(), nil
}

// formatFront renders an explore result exactly as cmd/tradeoff's
// sharded path prints its front, so daemon results diff cleanly against
// CLI runs.
func formatFront(res *shard.ExploreResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Pareto front over %d selections\n", res.Total)
	for _, p := range res.Front {
		fmt.Fprintf(&sb, "%-40s %6d cells  %7d cycles\n", p.Label(), p.Cells, p.TAT)
	}
	return sb.String()
}
