package job

import (
	"encoding/json"
	"testing"

	"repro/internal/flowcmd"
	"repro/internal/soc"
	"repro/internal/systems"
)

// FuzzJobSpec throws arbitrary bytes at the daemon's admission decoder:
// the JSON spec layer and, through ChipSpec validation, the chip-script
// front door. Whatever arrives on the wire, DecodeSpec must not panic,
// and any spec it accepts must survive a marshal/decode round trip with
// a stable chip identity — the property the journal and the flow cache
// both key on.
func FuzzJobSpec(f *testing.F) {
	seed := func(s Spec) {
		data, err := json.Marshal(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// Valid specs over every chip source: the paper's two systems as
	// embedded chip scripts, the fixed System index, and socgen params.
	for i, ch := range []*soc.Chip{systems.System1(), systems.System2()} {
		script := flowcmd.FormatChipScript(ch, nil)
		seed(Spec{Type: TypeEvaluate, Chip: flowcmd.ChipSpec{Script: script}})
		seed(Spec{
			Type: TypeCampaign, Chip: flowcmd.ChipSpec{Script: script},
			Shards: 2, Runs: 8, SetSize: 2, Seed: int64(i),
		})
	}
	seed(Spec{Type: TypeEvaluate, Chip: flowcmd.ChipSpec{System: 1}, Faults: "alu1", Timeout: "30s"})
	seed(Spec{
		Type:   TypeExplore,
		Chip:   flowcmd.ChipSpec{Gen: &flowcmd.GenSpec{Seed: 7, Cores: 5, Topology: "random-dag"}},
		Shards: 4, MaxPoints: 100, FullEval: true,
	})
	// Malformed wire data.
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"type":"evaluate"}`))
	f.Add([]byte(`{"type":"evaluate","chip":{"system":1,"script":"chip x\n"}}`))
	f.Add([]byte(`{"type":"campaign","chip":{"gen":{"cores":-3}},"runs":1}`))
	f.Add([]byte(`{"type":"explore","chip":{"script":"chip t\ncore c\nu a add 4 2 4 1 1 0\nend\n"}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSpec(data)
		if err != nil {
			return
		}
		// Accepted specs must re-encode and re-decode to an equally valid
		// spec with the same chip identity.
		enc, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("accepted spec does not marshal: %v", err)
		}
		again, err := DecodeSpec(enc)
		if err != nil {
			t.Fatalf("round-tripped spec rejected: %v\n%s", err, enc)
		}
		if s.Chip.Key() != again.Chip.Key() {
			t.Fatalf("chip key unstable across round trip: %q vs %q", s.Chip.Key(), again.Chip.Key())
		}
		// Defaults resolution must be idempotent.
		once := s.withDefaults()
		if twice := once.withDefaults(); once != twice {
			t.Fatalf("withDefaults not idempotent: %+v vs %+v", once, twice)
		}
	})
}
