// Package pool is socetd's lease-based work coordinator: a bounded set
// of workers executing retryable work units under heartbeat leases.
//
// A unit (for socetd, one shard of a job) is leased to a worker; while
// it runs it must call its heartbeat. A unit silent past the lease TTL
// is presumed dead: its lease is reclaimed, the attempt's context is
// cancelled, the worker slot is freed and the unit is reassigned after
// the same capped exponential backoff shard's in-process retry loop
// uses (shard.Retry.Backoff). Because every unit the daemon runs
// checkpoints its progress and merges deterministically, reassignment —
// even when the presumed-dead attempt is actually alive and later
// finishes — costs at most duplicated work, never a wrong result; the
// unit settles exactly once, first terminal outcome wins.
//
// Worker panics are confined to the attempt that raised them: the
// attempt fails, the backoff/retry path takes over, and the pool keeps
// serving other units. Close drains: workers finish or settle what is
// queued and every goroutine the pool started exits.
package pool

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/shard"
)

// Unit is one leasable piece of work. Run must return promptly after
// ctx is cancelled (the lease reclaim path relies on it) and should
// call beat at least once per lease TTL while making progress.
type Unit struct {
	ID  string
	Run func(ctx context.Context, beat func()) error
}

// Result is a settled unit: its terminal error (nil on success) and how
// many attempts it consumed.
type Result struct {
	ID       string
	Err      error
	Attempts int
}

// Options configures a Pool. The zero value is usable: GOMAXPROCS
// workers, a 30s lease TTL, and the default shard retry policy.
type Options struct {
	// Workers bounds concurrently leased units.
	Workers int
	// LeaseTTL is how long a unit may go without a heartbeat before its
	// lease is reclaimed and the unit reassigned.
	LeaseTTL time.Duration
	// Retry sets attempt count and reassignment backoff. A unit that
	// fails or expires Retry.Attempts times settles with its last error.
	Retry shard.Retry
}

func (o Options) withDefaults() Options {
	if o.Workers < 1 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 30 * time.Second
	}
	if o.Retry.Attempts < 1 {
		o.Retry.Attempts = 3
	}
	// Base/Max default inside shard.Retry.Backoff itself.
	return o
}

// task is one queued attempt instance of a unit.
type task struct {
	unit    Unit
	attempt int // 1-based attempt number this instance will run as
	group   *group
	index   int // position in the group's unit order
}

// group tracks one Do call: settlement state for its units.
type group struct {
	ctx        context.Context
	mu         sync.Mutex
	results    []Result
	settled    []bool
	gen        []int // current attempt generation per unit; stale instances are ignored
	remaining  int
	done       chan struct{}
	doneClosed bool
}

// closeDone closes the completion channel exactly once; callers hold mu.
func (g *group) closeDone() {
	if !g.doneClosed {
		g.doneClosed = true
		close(g.done)
	}
}

// settle records a terminal outcome for unit index i exactly once.
func (g *group) settle(i int, r Result) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.settled[i] {
		return
	}
	g.settled[i] = true
	g.results[i] = r
	g.remaining--
	if g.remaining == 0 {
		g.closeDone()
	}
}

func (g *group) isSettled(i int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.settled[i]
}

// advance moves unit i's generation from attempt to attempt+1 and
// reports whether this instance was current (a stale instance — e.g. a
// lease that expired, was reassigned, and then failed late — may not
// retry again: the newer instance owns the unit now).
func (g *group) advance(i, attempt int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.settled[i] || g.gen[i] != attempt {
		return false
	}
	g.gen[i] = attempt + 1
	return true
}

// Pool runs units under leases. Create with New, stop with Close.
type Pool struct {
	opts Options

	mu     sync.Mutex
	queue  []*task
	cond   *sync.Cond
	closed bool

	workers  sync.WaitGroup // worker loops
	attempts sync.WaitGroup // per-attempt child goroutines
	timers   sync.WaitGroup // pending reassignment timers
	active   atomic.Int64   // currently leased units
}

// New starts a pool of o.Workers workers.
func New(o Options) *Pool {
	p := &Pool{opts: o.withDefaults()}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < p.opts.Workers; i++ {
		p.workers.Add(1)
		go p.worker()
	}
	return p
}

// Do runs the units to settlement and returns their results in unit
// order. Cancelling ctx settles unstarted and in-flight units with
// ctx's error (cancellation is a decision, not a fault — it is never
// retried). Multiple Do calls may share the pool concurrently.
func (p *Pool) Do(ctx context.Context, units []Unit) []Result {
	g := &group{
		ctx:       ctx,
		results:   make([]Result, len(units)),
		settled:   make([]bool, len(units)),
		gen:       make([]int, len(units)),
		remaining: len(units),
		done:      make(chan struct{}),
	}
	if len(units) == 0 {
		return nil
	}
	for i, u := range units {
		g.gen[i] = 1
		p.enqueue(&task{unit: u, attempt: 1, group: g, index: i})
	}
	select {
	case <-g.done:
	case <-ctx.Done():
		// Settle everything still open; instances already running will
		// observe ctx themselves, and their late results are ignored.
		g.mu.Lock()
		for i := range units {
			if !g.settled[i] {
				g.settled[i] = true
				g.results[i] = Result{ID: units[i].ID, Err: ctx.Err(), Attempts: g.gen[i]}
				g.remaining--
			}
		}
		if g.remaining == 0 {
			g.closeDone()
		}
		g.mu.Unlock()
	}
	return g.results
}

// Close drains the pool: running and queued units finish (so Do
// callers see them settle — cancel their contexts first for a fast
// stop), and every goroutine the pool started (workers, attempt
// children, pending reassignment timers) exits before Close returns.
// Only a unit waiting out a retry backoff when the pool closes settles
// with an error instead of running again.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	// Workers first: an in-flight lease may still arm a reassignment
	// timer, so timers can only be waited once no worker is running.
	// Timer callbacks that fire after close settle their unit in enqueue.
	p.workers.Wait()
	p.timers.Wait()
	p.attempts.Wait()
}

// Active returns how many units are currently leased.
func (p *Pool) Active() int { return int(p.active.Load()) }

func (p *Pool) enqueue(t *task) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		t.group.settle(t.index, Result{ID: t.unit.ID, Err: fmt.Errorf("pool: closed before %s settled", t.unit.ID), Attempts: t.attempt - 1})
		return
	}
	p.queue = append(p.queue, t)
	obs.G("serve.queue_depth").Set(int64(len(p.queue)))
	p.cond.Signal()
	p.mu.Unlock()
}

// dequeue blocks for the next task; nil means the pool is closed and
// the queue is empty.
func (p *Pool) dequeue() *task {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.queue) == 0 && !p.closed {
		p.cond.Wait()
	}
	if len(p.queue) == 0 {
		return nil
	}
	t := p.queue[0]
	p.queue = p.queue[1:]
	obs.G("serve.queue_depth").Set(int64(len(p.queue)))
	return t
}

func (p *Pool) worker() {
	defer p.workers.Done()
	for {
		t := p.dequeue()
		if t == nil {
			return
		}
		p.lease(t)
	}
}

// lease runs one attempt of a task under a heartbeat lease.
func (p *Pool) lease(t *task) {
	g := t.group
	if g.isSettled(t.index) {
		return // another instance already finished this unit
	}
	if err := g.ctx.Err(); err != nil {
		g.settle(t.index, Result{ID: t.unit.ID, Err: err, Attempts: t.attempt - 1})
		return
	}
	obs.C("serve.leases_granted").Inc()
	p.active.Add(1)
	obs.G("serve.active_leases").Set(p.active.Load())
	defer func() {
		p.active.Add(-1)
		obs.G("serve.active_leases").Set(p.active.Load())
	}()

	actx, acancel := context.WithCancel(g.ctx)
	defer acancel()
	var lastBeat atomic.Int64
	lastBeat.Store(time.Now().UnixNano())
	beat := func() { lastBeat.Store(time.Now().UnixNano()) }

	resCh := make(chan error, 1)
	p.attempts.Add(1)
	go func() {
		defer p.attempts.Done()
		defer func() {
			if r := recover(); r != nil {
				obs.C("serve.worker_panics").Inc()
				resCh <- fmt.Errorf("pool: unit %s panicked: %v", t.unit.ID, r)
			}
		}()
		resCh <- t.unit.Run(actx, beat)
	}()

	tick := time.NewTicker(p.opts.LeaseTTL / 4)
	defer tick.Stop()
	for {
		select {
		case err := <-resCh:
			if err == nil {
				g.settle(t.index, Result{ID: t.unit.ID, Attempts: t.attempt})
				return
			}
			if cerr := g.ctx.Err(); cerr != nil {
				g.settle(t.index, Result{ID: t.unit.ID, Err: cerr, Attempts: t.attempt})
				return
			}
			p.retryOrFail(t, err)
			return
		case <-tick.C:
			idle := time.Since(time.Unix(0, lastBeat.Load()))
			if idle < p.opts.LeaseTTL {
				continue
			}
			// Lease expired: reclaim it. Cancel the attempt, free this
			// worker slot, and reassign. If the attempt is alive but
			// wedged on something that ignores ctx, its goroutine keeps
			// running until it notices — the deterministic merge makes
			// the duplicate harmless; Close waits it out.
			obs.C("serve.leases_expired").Inc()
			acancel()
			p.retryOrFail(t, fmt.Errorf("pool: lease on %s expired after %v without a heartbeat", t.unit.ID, idle))
			return
		case <-g.ctx.Done():
			g.settle(t.index, Result{ID: t.unit.ID, Err: g.ctx.Err(), Attempts: t.attempt})
			return
		}
	}
}

// retryOrFail reassigns a failed or expired attempt after backoff, or
// settles the unit when its attempts are exhausted.
func (p *Pool) retryOrFail(t *task, err error) {
	g := t.group
	if !g.advance(t.index, t.attempt) {
		return // settled meanwhile, or a newer instance owns the unit
	}
	if t.attempt >= p.opts.Retry.Attempts {
		g.settle(t.index, Result{ID: t.unit.ID, Err: err, Attempts: t.attempt})
		return
	}
	obs.C("serve.lease_retries").Inc()
	next := &task{unit: t.unit, attempt: t.attempt + 1, group: g, index: t.index}
	p.timers.Add(1)
	time.AfterFunc(p.opts.Retry.Backoff(t.attempt), func() {
		defer p.timers.Done()
		p.enqueue(next)
	})
}
