package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/shard"
)

// fastRetry keeps test backoffs tiny.
var fastRetry = shard.Retry{Attempts: 3, Base: time.Millisecond, Max: 5 * time.Millisecond}

// checkGoroutines fails the test if the goroutine count has not
// returned to its starting level shortly after the pool closes.
func checkGoroutines(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
	}
}

func TestAllUnitsRun(t *testing.T) {
	check := checkGoroutines(t)
	p := New(Options{Workers: 4, LeaseTTL: time.Second, Retry: fastRetry})
	var ran atomic.Int64
	var units []Unit
	for i := 0; i < 50; i++ {
		units = append(units, Unit{
			ID:  fmt.Sprintf("u%d", i),
			Run: func(ctx context.Context, beat func()) error { ran.Add(1); return nil },
		})
	}
	res := p.Do(context.Background(), units)
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.ID, r.Err)
		}
		if r.Attempts != 1 {
			t.Fatalf("%s: %d attempts, want 1", r.ID, r.Attempts)
		}
	}
	if ran.Load() != 50 {
		t.Fatalf("ran %d units, want 50", ran.Load())
	}
	p.Close()
	check()
}

// TestLeaseScenarios is the table-driven core: each case is one unit
// with a particular failure behavior and the settlement we expect.
func TestLeaseScenarios(t *testing.T) {
	cases := []struct {
		name string
		// run builds the unit's Run given a per-unit attempt counter.
		run          func(attempts *atomic.Int64) func(context.Context, func()) error
		wantErr      bool
		wantAttempts int
	}{
		{
			name: "first try success",
			run: func(a *atomic.Int64) func(context.Context, func()) error {
				return func(ctx context.Context, beat func()) error { a.Add(1); return nil }
			},
			wantAttempts: 1,
		},
		{
			name: "fails once then succeeds",
			run: func(a *atomic.Int64) func(context.Context, func()) error {
				return func(ctx context.Context, beat func()) error {
					if a.Add(1) == 1 {
						return errors.New("transient")
					}
					return nil
				}
			},
			wantAttempts: 2,
		},
		{
			name: "panics once then succeeds",
			run: func(a *atomic.Int64) func(context.Context, func()) error {
				return func(ctx context.Context, beat func()) error {
					if a.Add(1) == 1 {
						panic("boom")
					}
					return nil
				}
			},
			wantAttempts: 2,
		},
		{
			name: "always fails exhausts attempts",
			run: func(a *atomic.Int64) func(context.Context, func()) error {
				return func(ctx context.Context, beat func()) error {
					a.Add(1)
					return errors.New("permanent")
				}
			},
			wantErr:      true,
			wantAttempts: 3,
		},
		{
			name: "silent worker expires then a retry succeeds",
			run: func(a *atomic.Int64) func(context.Context, func()) error {
				return func(ctx context.Context, beat func()) error {
					if a.Add(1) == 1 {
						// Never heartbeat; block until the lease monitor
						// cancels us — a worker killed mid-shard.
						<-ctx.Done()
						return ctx.Err()
					}
					return nil
				}
			},
			wantAttempts: 2,
		},
		{
			name: "heartbeats hold the lease through slow work",
			run: func(a *atomic.Int64) func(context.Context, func()) error {
				return func(ctx context.Context, beat func()) error {
					a.Add(1)
					// Runs far past the TTL but beats often: must not expire.
					for i := 0; i < 40; i++ {
						time.Sleep(5 * time.Millisecond)
						beat()
					}
					return nil
				}
			},
			wantAttempts: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			check := checkGoroutines(t)
			p := New(Options{Workers: 2, LeaseTTL: 50 * time.Millisecond, Retry: fastRetry})
			var attempts atomic.Int64
			res := p.Do(context.Background(), []Unit{{ID: "u", Run: tc.run(&attempts)}})
			if len(res) != 1 {
				t.Fatalf("got %d results", len(res))
			}
			if (res[0].Err != nil) != tc.wantErr {
				t.Fatalf("err = %v, wantErr %v", res[0].Err, tc.wantErr)
			}
			if res[0].Attempts != tc.wantAttempts {
				t.Fatalf("attempts = %d, want %d", res[0].Attempts, tc.wantAttempts)
			}
			p.Close()
			check()
		})
	}
}

// TestExpiredAttemptLateSuccessIsHarmless reproduces the
// completion-vs-expiry race: the first attempt stops heartbeating, the
// lease is reclaimed and the unit reassigned, and then the presumed-dead
// attempt finishes successfully anyway. The unit must settle exactly
// once and the duplicate execution must be observable (both ran) but
// harmless.
func TestExpiredAttemptLateSuccessIsHarmless(t *testing.T) {
	check := checkGoroutines(t)
	p := New(Options{Workers: 2, LeaseTTL: 40 * time.Millisecond, Retry: fastRetry})
	var starts atomic.Int64
	release := make(chan struct{})
	res := p.Do(context.Background(), []Unit{{
		ID: "u",
		Run: func(ctx context.Context, beat func()) error {
			if starts.Add(1) == 1 {
				// Wedged but alive: ignore ctx, finish only when released.
				<-release
				return nil // late success after the lease was reclaimed
			}
			close(release) // second instance: prove the first ran too
			return nil
		},
	}})
	if res[0].Err != nil {
		t.Fatalf("unit failed: %v", res[0].Err)
	}
	if starts.Load() != 2 {
		t.Fatalf("expected a duplicate execution, got %d starts", starts.Load())
	}
	p.Close() // must wait out the wedged attempt goroutine
	check()
}

// TestCancelSettlesEverything: cancelling the Do context settles queued
// and running units with the context error and never retries them.
func TestCancelSettlesEverything(t *testing.T) {
	check := checkGoroutines(t)
	p := New(Options{Workers: 1, LeaseTTL: time.Second, Retry: fastRetry})
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var units []Unit
	var ran atomic.Int64
	units = append(units, Unit{ID: "blocker", Run: func(ctx context.Context, beat func()) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	}})
	for i := 0; i < 5; i++ {
		units = append(units, Unit{ID: fmt.Sprintf("q%d", i), Run: func(ctx context.Context, beat func()) error {
			ran.Add(1)
			return nil
		}})
	}
	done := make(chan []Result, 1)
	go func() { done <- p.Do(ctx, units) }()
	<-started
	cancel()
	res := <-done
	for _, r := range res {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("%s: err %v, want context.Canceled", r.ID, r.Err)
		}
	}
	if ran.Load() != 0 {
		t.Fatalf("queued units ran after cancel: %d", ran.Load())
	}
	p.Close()
	check()
}

// TestConcurrentGroupsShareThePool: several Do calls in flight at once,
// each settling independently, with the pool's worker bound respected.
func TestConcurrentGroupsShareThePool(t *testing.T) {
	check := checkGoroutines(t)
	const workers = 3
	p := New(Options{Workers: workers, LeaseTTL: time.Second, Retry: fastRetry})
	var inFlight, peak atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var units []Unit
			for i := 0; i < 10; i++ {
				units = append(units, Unit{
					ID: fmt.Sprintf("g%d-u%d", g, i),
					Run: func(ctx context.Context, beat func()) error {
						n := inFlight.Add(1)
						for {
							old := peak.Load()
							if n <= old || peak.CompareAndSwap(old, n) {
								break
							}
						}
						time.Sleep(2 * time.Millisecond)
						inFlight.Add(-1)
						return nil
					},
				})
			}
			for _, r := range p.Do(context.Background(), units) {
				if r.Err != nil {
					t.Errorf("%s: %v", r.ID, r.Err)
				}
			}
		}(g)
	}
	wg.Wait()
	if peak.Load() > workers {
		t.Fatalf("peak concurrency %d exceeded the %d-worker bound", peak.Load(), workers)
	}
	p.Close()
	check()
}

// TestCloseDrainsQueued: closing the pool drains — queued units still
// run to completion instead of stranding their Do callers.
func TestCloseDrainsQueued(t *testing.T) {
	p := New(Options{Workers: 1, LeaseTTL: time.Second, Retry: fastRetry})
	started := make(chan struct{})
	var once sync.Once
	units := []Unit{
		{ID: "running", Run: func(ctx context.Context, beat func()) error {
			once.Do(func() { close(started) })
			time.Sleep(50 * time.Millisecond)
			return nil
		}},
		{ID: "queued", Run: func(ctx context.Context, beat func()) error { return nil }},
	}
	done := make(chan []Result, 1)
	go func() { done <- p.Do(context.Background(), units) }()
	<-started
	p.Close()
	res := <-done
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("%s should finish through a drain: %v", r.ID, r.Err)
		}
	}
}
