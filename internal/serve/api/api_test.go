package api

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/flowcmd"
	"repro/internal/serve/job"
)

func testServer(t *testing.T, o job.Options) (*job.Manager, *httptest.Server) {
	t.Helper()
	if o.Dir == "" {
		o.Dir = t.TempDir()
	}
	if o.Every == 0 {
		o.Every = time.Millisecond
	}
	m, err := job.New(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	ts := httptest.NewServer(New(m, Options{}))
	t.Cleanup(ts.Close)
	return m, ts
}

func evaluateSpec() string {
	return `{"type":"evaluate","chip":{"gen":{"seed":7,"cores":5}}}`
}

func post(t *testing.T, ts *httptest.Server, path, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func get(t *testing.T, ts *httptest.Server, path string) *http.Response {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decodeRecord(t *testing.T, resp *http.Response) job.Record {
	t.Helper()
	var rec job.Record
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	return rec
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}

// TestSubmitAndResult walks the happy path: submit, locate, block on the
// result, and require the served bytes to equal the journaled record's.
func TestSubmitAndResult(t *testing.T) {
	m, ts := testServer(t, job.Options{})
	resp := post(t, ts, "/jobs", evaluateSpec())
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /jobs = %d, want 201", resp.StatusCode)
	}
	rec := decodeRecord(t, resp)
	if loc := resp.Header.Get("Location"); loc != "/jobs/"+rec.ID {
		t.Fatalf("Location = %q", loc)
	}

	res := get(t, ts, "/jobs/"+rec.ID+"/result?wait=2m")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("result = %d: %s", res.StatusCode, readAll(t, res))
	}
	body := readAll(t, res)
	final, _ := m.Get(rec.ID)
	if body != final.Result {
		t.Fatalf("served result differs from record:\n%s\nvs\n%s", body, final.Result)
	}
	if !strings.HasPrefix(body, "chip ") {
		t.Fatalf("unexpected result body:\n%s", body)
	}

	one := get(t, ts, "/jobs/"+rec.ID)
	if one.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/{id} = %d", one.StatusCode)
	}
	var list struct {
		Jobs []job.Record `json:"jobs"`
	}
	lr := get(t, ts, "/jobs")
	if err := json.NewDecoder(lr.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != rec.ID {
		t.Fatalf("GET /jobs = %+v", list.Jobs)
	}
}

// TestBadRequests covers the 4xx surface: malformed JSON, invalid
// specs, unknown jobs, bad wait durations, oversized bodies.
func TestBadRequests(t *testing.T) {
	_, ts := testServer(t, job.Options{})
	if resp := post(t, ts, "/jobs", "{not json"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON = %d, want 400", resp.StatusCode)
	}
	if resp := post(t, ts, "/jobs", `{"type":"nope"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec = %d, want 400", resp.StatusCode)
	}
	if resp := get(t, ts, "/jobs/j999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", resp.StatusCode)
	}
	if resp := get(t, ts, "/jobs/j999/result"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown result = %d, want 404", resp.StatusCode)
	}
	huge := `{"type":"evaluate","chip":{"script":"` + strings.Repeat("#", 2<<20) + `"}}`
	if resp := post(t, ts, "/jobs", huge); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", resp.StatusCode)
	}
}

// TestBackpressure429 saturates the queue over HTTP and requires the
// deterministic 429 + Retry-After contract.
func TestBackpressure429(t *testing.T) {
	_, ts := testServer(t, job.Options{QueueLimit: 1})
	slow := `{"type":"campaign","chip":{"gen":{"seed":7,"cores":5}},"shards":2,"runs":200,"set_size":2,"seed":1}`
	if resp := post(t, ts, "/jobs", slow); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first POST = %d, want 201", resp.StatusCode)
	}
	resp := post(t, ts, "/jobs", evaluateSpec())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated POST = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != busyRetryAfter {
		t.Fatalf("Retry-After = %q, want %q", ra, busyRetryAfter)
	}
}

// TestDrainFlips503 drains the manager and requires readiness and
// admission to flip to 503 while liveness stays 200.
func TestDrainFlips503(t *testing.T) {
	m, ts := testServer(t, job.Options{})
	if resp := get(t, ts, "/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain = %d", resp.StatusCode)
	}
	if err := m.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if resp := get(t, ts, "/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain = %d, want 503", resp.StatusCode)
	}
	resp := post(t, ts, "/jobs", evaluateSpec())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain POST = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != drainRetryAfter {
		t.Fatalf("Retry-After = %q, want %q", ra, drainRetryAfter)
	}
	if resp := get(t, ts, "/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after drain = %d, want 200", resp.StatusCode)
	}
}

// TestChipScriptOverWire submits a chip-script spec exactly as a curl
// user would and requires it to evaluate.
func TestChipScriptOverWire(t *testing.T) {
	_, ts := testServer(t, job.Options{})
	ch, _, err := (flowcmd.ChipSpec{System: 1}).Build()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := json.Marshal(map[string]any{
		"type": "evaluate",
		"chip": map[string]any{"script": flowcmd.FormatChipScript(ch, nil)},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp := post(t, ts, "/jobs", string(spec))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("script POST = %d: %s", resp.StatusCode, readAll(t, resp))
	}
	rec := decodeRecord(t, resp)
	res := get(t, ts, "/jobs/"+rec.ID+"/result?wait=2m")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("script result = %d: %s", res.StatusCode, readAll(t, res))
	}
	if !strings.Contains(readAll(t, res), "chip "+ch.Name) {
		t.Fatal("result does not name the scripted chip")
	}
}
