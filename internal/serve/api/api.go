// Package api is socetd's HTTP surface: a small JSON API over the job
// manager (internal/serve/job). It adds no behavior of its own — every
// response is a direct rendering of manager state, so the interesting
// properties (admission control, crash recovery, deterministic results)
// are tested at the job layer and merely exposed here.
//
//	POST /jobs             submit a job spec (JSON), 201 + record
//	GET  /jobs             list all job records
//	GET  /jobs/{id}        one job record
//	GET  /jobs/{id}/result the finished job's result text (see below)
//	GET  /healthz          process liveness (always 200 while serving)
//	GET  /readyz           admission readiness (503 once draining)
//
// Backpressure is deterministic: a full queue is HTTP 429 and a
// draining daemon is HTTP 503, both carrying a fixed Retry-After so
// clients back off without guessing.
package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/serve/job"
)

// Options configures the handler. The zero value is usable.
type Options struct {
	// MaxBody bounds a request body in bytes (default 1 MiB — comfortably
	// above job.SpecMaxScript plus JSON framing).
	MaxBody int64
	// MaxWait caps the ?wait= blocking window on the result endpoint
	// (default 10m).
	MaxWait time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxBody <= 0 {
		o.MaxBody = 1 << 20
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 10 * time.Minute
	}
	return o
}

// Retry-After values, fixed so backoff behavior is testable: a full
// queue clears as soon as one job settles (retry quickly); a draining
// daemon never comes back (retry somewhere else, much later).
const (
	busyRetryAfter  = "1"
	drainRetryAfter = "60"
)

// New builds the daemon's HTTP handler over m.
func New(m *job.Manager, o Options) http.Handler {
	o = o.withDefaults()
	s := &server{m: m, opts: o}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.submit)
	mux.HandleFunc("GET /jobs", s.list)
	mux.HandleFunc("GET /jobs/{id}", s.get)
	mux.HandleFunc("GET /jobs/{id}/result", s.result)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if m.Draining() {
			w.Header().Set("Retry-After", drainRetryAfter)
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ok\n")
	})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		obs.C("serve.http_requests").Inc()
		mux.ServeHTTP(w, r)
	})
}

type server struct {
	m    *job.Manager
	opts Options
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxBody))
	if err != nil {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{Error: fmt.Sprintf("body exceeds %d bytes", s.opts.MaxBody)})
		return
	}
	spec, err := job.DecodeSpec(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	rec, err := s.m.Submit(*spec)
	switch {
	case errors.Is(err, job.ErrBusy):
		w.Header().Set("Retry-After", busyRetryAfter)
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
		return
	case errors.Is(err, job.ErrDraining):
		w.Header().Set("Retry-After", drainRetryAfter)
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	w.Header().Set("Location", "/jobs/"+rec.ID)
	writeJSON(w, http.StatusCreated, rec)
}

func (s *server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []job.Record `json:"jobs"`
	}{Jobs: s.m.List()})
}

func (s *server) get(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.m.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// result serves a finished job's result text verbatim (the bytes the
// determinism guarantees are about). ?wait=30s blocks until the job
// settles or the window closes; without it, unfinished jobs answer 202.
func (s *server) result(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.m.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" && !rec.State.Terminal() {
		d, err := time.ParseDuration(waitStr)
		if err != nil || d < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad wait %q", waitStr)})
			return
		}
		if d > s.opts.MaxWait {
			d = s.opts.MaxWait
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		if got, err := s.m.Wait(ctx, id); err == nil {
			rec = got
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch rec.State {
	case job.StateDone:
		io.WriteString(w, rec.Result)
	case job.StateFailed:
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, "job failed: %s\n", rec.Error)
	default:
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, "state: %s\n", rec.State)
	}
}
