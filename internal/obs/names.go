package obs

// The canonical metric registry: every counter and gauge name the flow is
// allowed to touch. Metrics is create-on-first-use, so a typo'd name
// ("explore.cache_hit" next to "explore.cache_hits") silently splits a
// metric instead of failing — this list plus the end-to-end registry test
// at the repo root (TestMetricNamesRegistered) is what catches that.
//
// Adding a metric is a two-line change: the obs.C/obs.G call site and an
// entry here, with the comment saying what one unit of it means.

// KnownCounters lists every monotonic counter name.
var KnownCounters = []string{
	"atpg.aborted_faults",              // PODEM gave up on a fault (backtrack limit)
	"atpg.backtracks",                  // PODEM decision reversals
	"atpg.detected",                    // faults detected by generated or simulated vectors
	"atpg.faults",                      // faults targeted by ATPG
	"atpg.implications",                // PODEM implication steps
	"atpg.untestable",                  // faults proven untestable
	"atpg.vectors",                     // test vectors kept after generation
	"ccg.builds",                       // core connectivity graphs constructed
	"ccg.clones",                       // delta-evaluation graph splices (CloneWithVersion)
	"ccg.relaxations",                  // Dijkstra edge relaxations
	"ccg.reservation_conflicts",        // path searches that hit a reserved edge slot
	"ccg.searches",                     // shortest-path searches
	"chipsim.cycles",                   // chip-level RTL simulation cycles stepped
	"core.baseline_muxes_preinstalled", // degraded flow: baseline muxes re-applied
	"core.degraded_evaluations",        // EvaluateDegraded runs
	"core.degraded_fallbacks",          // degraded flow: greedy version fallbacks taken
	"core.delta_evaluations",           // selections evaluated via the incremental delta path
	"core.delta_fallbacks",             // delta attempts that punted to a full evaluation
	"core.delta_hits",                  // delta-evaluator base registry hits (zero-diff)
	"core.evaluations",                 // full chip evaluations (Evaluate/EvaluateSelection)
	"core.forced_muxes",                // system-level test muxes force-installed
	"explore.cache_hits",               // evaluation cache hits
	"explore.cache_misses",             // evaluation cache misses
	"explore.cancelled",                // explorations ended by context cancellation
	"explore.eval_panics",              // evaluations recovered from panic
	"explore.iterations",               // improvement-walk iterations
	"explore.moves_accepted",           // improvement moves applied
	"explore.moves_proposed",           // candidate replacement steps generated
	"explore.moves_rejected",           // improvement moves tried and taken back
	"explore.points_evaluated",         // design points evaluated by Enumerate
	"obshttp.progress_streams",         // SSE /progress subscriptions accepted
	"obshttp.requests",                 // observability endpoint requests served
	"obshttp.servers_started",          // obshttp servers bound
	"proptest.paths_replayed",          // scheduled paths replayed cycle-accurately
	"resil.faults_injected",            // faults applied to cloned chips
	"resil.run_errors",                 // campaign runs that ended in a flow error
	"resil.runs",                       // campaign runs executed
	"rtlsim.cycles",                    // core-level RTL simulation cycles stepped
	"sched.cores_scheduled",            // cores given a complete test schedule
	"sched.cores_skipped",              // cores dropped by partial scheduling
	"sched.ports_unreachable",          // ports with no justification/propagation path
	"sched.test_muxes_added",           // test muxes inserted by the scheduler
	"serve.drains",                     // graceful drains begun (SIGTERM or /drain)
	"serve.http_requests",              // daemon API requests served
	"serve.jobs_accepted",              // jobs admitted past admission control
	"serve.jobs_completed",             // jobs that settled successfully
	"serve.jobs_failed",                // jobs that settled with an error
	"serve.jobs_recovered",             // unfinished jobs re-run from the journal at startup
	"serve.jobs_rejected",              // submissions refused (invalid spec, queue full, draining)
	"serve.journal_write_errors",       // job journal snapshots that failed to persist
	"serve.journal_writes",             // job journal snapshots persisted (temp+rename)
	"serve.lease_retries",              // work-unit reassignments scheduled after failure or expiry
	"serve.leases_expired",             // leases reclaimed after heartbeat silence past the TTL
	"serve.leases_granted",             // work units leased to pool workers
	"serve.worker_panics",              // pool attempts recovered from panic
	"shard.checkpoints_written",        // shard checkpoint frames persisted (temp+rename)
	"shard.frames_discarded",           // corrupt/torn checkpoint byte regions skipped on load
	"shard.resumed_ranges",             // completed work ranges loaded from checkpoints on resume
	"shard.retries",                    // shard attempts retried after a transient failure
	"trans.versions_built",             // transparency versions constructed
	"wrap.cores_wrapped",               // cores fitted with a P1500-style wrapper
	"wrap.paths_replayed",              // wrapper chains replayed cycle-accurately
	"wrap.schedules",                   // chip-level TAM schedules computed
}

// KnownGauges lists every last-value gauge name.
var KnownGauges = []string{
	"ccg.edges",                // CCG edge count of the last build
	"ccg.nodes",                // CCG node count of the last build
	"explore.parallel_workers", // worker-pool width of the last enumeration
	"serve.active_leases",      // work units currently leased to pool workers
	"serve.jobs_running",       // jobs currently executing
	"serve.queue_depth",        // work units waiting for a pool worker
}

var knownSet = func() map[string]bool {
	m := make(map[string]bool, len(KnownCounters)+len(KnownGauges))
	for _, n := range KnownCounters {
		m[n] = true
	}
	for _, n := range KnownGauges {
		m[n] = true
	}
	return m
}()

// Known reports whether name is in the canonical metric registry.
func Known(name string) bool { return knownSet[name] }
