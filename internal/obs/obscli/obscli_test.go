package obscli

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestSessionWritesTraceAndMetrics(t *testing.T) {
	defer obs.Disable()
	dir := t.TempDir()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg := AddFlags(fs)
	tracePath := filepath.Join(dir, "t.ndjson")
	metricsPath := filepath.Join(dir, "m.json")
	if err := fs.Parse([]string{"-trace", tracePath, "-metrics", metricsPath}); err != nil {
		t.Fatal(err)
	}
	sess, err := cfg.Start()
	if err != nil {
		t.Fatal(err)
	}
	if !obs.Enabled() {
		t.Fatal("Start must enable obs when -trace is set")
	}
	sp := obs.Start(nil, "phase/core")
	obs.C("unit.count").Add(3)
	sp.End()
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(trace), `"name":"phase/core"`) {
		t.Errorf("trace missing span: %s", trace)
	}
	raw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]int64
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, raw)
	}
	if snap["unit.count"] != 3 {
		t.Errorf("metrics = %v", snap)
	}
}

func TestSessionNoFlagsIsInert(t *testing.T) {
	defer obs.Disable()
	obs.Disable()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg := AddFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	sess, err := cfg.Start()
	if err != nil {
		t.Fatal(err)
	}
	if obs.Enabled() {
		t.Fatal("no flags must leave obs disabled")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionBadPathFailsAtStart(t *testing.T) {
	defer obs.Disable()
	bad := filepath.Join(t.TempDir(), "missing-dir", "t.ndjson")
	for _, flagName := range []string{"-trace", "-metrics", "-cpuprofile", "-memprofile"} {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		cfg := AddFlags(fs)
		if err := fs.Parse([]string{flagName, bad}); err != nil {
			t.Fatal(err)
		}
		if _, err := cfg.Start(); err == nil {
			t.Errorf("%s with an unwritable path must fail at Start, before the flow runs", flagName)
		}
	}
}

func TestSessionCPUAndMemProfiles(t *testing.T) {
	defer obs.Disable()
	dir := t.TempDir()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg := AddFlags(fs)
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	sess, err := cfg.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile is non-trivial.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}
