package obscli

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/progress"
)

func TestSessionWritesTraceAndMetrics(t *testing.T) {
	defer obs.Disable()
	dir := t.TempDir()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg := AddFlags(fs)
	tracePath := filepath.Join(dir, "t.ndjson")
	metricsPath := filepath.Join(dir, "m.json")
	if err := fs.Parse([]string{"-trace", tracePath, "-metrics", metricsPath}); err != nil {
		t.Fatal(err)
	}
	sess, err := cfg.Start()
	if err != nil {
		t.Fatal(err)
	}
	if !obs.Enabled() {
		t.Fatal("Start must enable obs when -trace is set")
	}
	sp := obs.Start(nil, "phase/core")
	obs.C("unit.count").Add(3)
	sp.End()
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(trace), `"name":"phase/core"`) {
		t.Errorf("trace missing span: %s", trace)
	}
	raw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]int64
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, raw)
	}
	if snap["unit.count"] != 3 {
		t.Errorf("metrics = %v", snap)
	}
}

func TestSessionNoFlagsIsInert(t *testing.T) {
	defer obs.Disable()
	obs.Disable()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg := AddFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	sess, err := cfg.Start()
	if err != nil {
		t.Fatal(err)
	}
	if obs.Enabled() {
		t.Fatal("no flags must leave obs disabled")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionBadPathFailsAtStart(t *testing.T) {
	defer obs.Disable()
	bad := filepath.Join(t.TempDir(), "missing-dir", "t.ndjson")
	for _, flagName := range []string{"-trace", "-metrics", "-cpuprofile", "-memprofile"} {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		cfg := AddFlags(fs)
		if err := fs.Parse([]string{flagName, bad}); err != nil {
			t.Fatal(err)
		}
		if _, err := cfg.Start(); err == nil {
			t.Errorf("%s with an unwritable path must fail at Start, before the flow runs", flagName)
		}
	}
}

func TestSessionCPUAndMemProfiles(t *testing.T) {
	defer obs.Disable()
	dir := t.TempDir()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg := AddFlags(fs)
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	sess, err := cfg.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile is non-trivial.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestSessionObsListenServesAndShutsDown(t *testing.T) {
	defer obs.Disable()
	defer progress.Disable()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg := AddFlags(fs)
	var status bytes.Buffer
	cfg.StatusWriter = &status
	if err := fs.Parse([]string{"-obs-listen", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	sess, err := cfg.Start()
	if err != nil {
		t.Fatal(err)
	}
	if !obs.Enabled() {
		t.Fatal("-obs-listen must enable obs")
	}
	if !progress.Enabled() {
		t.Fatal("-obs-listen must enable the progress bus")
	}
	// The bound URL is announced on the status stream so :0 is usable.
	line := status.String()
	if !strings.HasPrefix(line, "obs: serving on http://127.0.0.1:") {
		t.Fatalf("status notice %q", line)
	}
	url := strings.TrimSpace(strings.TrimPrefix(line, "obs: serving on "))

	obs.C("unit.count").Add(7)
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"unit.count": 7`) {
		t.Fatalf("GET /metrics: %d %s", resp.StatusCode, body)
	}

	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(url + "/metrics"); err == nil {
		t.Fatal("server still serving after Close")
	}
}

func TestSessionObsListenBadAddrFailsAtStart(t *testing.T) {
	defer obs.Disable()
	defer progress.Disable()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg := AddFlags(fs)
	cfg.StatusWriter = io.Discard
	if err := fs.Parse([]string{"-obs-listen", "256.256.256.256:99999"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cfg.Start(); err == nil {
		t.Fatal("unbindable -obs-listen address must fail at Start")
	}
}

func TestProgressReporterPrintsAndStops(t *testing.T) {
	defer obs.Disable()
	defer progress.Disable()
	progress.Enable(-1) // publish every Step
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg := AddFlags(fs)
	cfg.AddProgressFlag(fs)
	var status syncBuffer
	cfg.StatusWriter = &status
	if err := fs.Parse([]string{"-progress"}); err != nil {
		t.Fatal(err)
	}
	if !cfg.Progress {
		t.Fatal("-progress flag not parsed")
	}
	sess, err := cfg.Start()
	if err != nil {
		t.Fatal(err)
	}
	task := progress.Start("test/reporter", 4)
	task.Step(2)
	task.Step(2)
	task.End()
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	out := status.String()
	if !strings.Contains(out, "progress: test/reporter") {
		t.Fatalf("reporter output missing status lines:\n%s", out)
	}
	// The final snapshot must survive the shutdown drain.
	if !strings.Contains(out, "4/4") {
		t.Fatalf("reporter output missing final snapshot:\n%s", out)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the reporter goroutine
// writes while the test reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
