// Package obscli wires the obs observability layer into the command-line
// tools: every cmd/ binary registers the same -trace, -metrics,
// -cpuprofile and -memprofile flags through AddFlags, starts a Session
// after flag parsing, and closes it on exit to flush the requested
// outputs. Keeping the wiring here means the five tools stay one line
// each and the flags never drift apart.
package obscli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/obs"
)

// Config holds the parsed observability flag values.
type Config struct {
	Trace      string
	Metrics    string
	CPUProfile string
	MemProfile string
	TraceCap   int
}

// AddFlags registers the shared observability flags on fs (usually
// flag.CommandLine) and returns the destination Config.
func AddFlags(fs *flag.FlagSet) *Config {
	c := &Config{}
	fs.StringVar(&c.Trace, "trace", "", "write an NDJSON span trace to `file`")
	fs.StringVar(&c.Metrics, "metrics", "", "write the metrics registry as JSON to `file`")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to `file`")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a pprof heap profile to `file`")
	fs.IntVar(&c.TraceCap, "trace-cap", 0, "span ring-buffer capacity (0 = default)")
	return c
}

// Session is a started observability capture; Close flushes every output
// the flags requested.
type Session struct {
	cpuFile     *os.File
	memFile     *os.File
	traceFile   *os.File
	metricsFile *os.File
}

// Start enables the obs layer (when -trace or -metrics asked for output)
// and begins CPU profiling (when -cpuprofile did). Every output file is
// created here, up front, so a bad path fails before the flow runs
// instead of silently losing the capture at exit.
func (c *Config) Start() (*Session, error) {
	s := &Session{}
	if c.Trace != "" || c.Metrics != "" {
		obs.Enable(c.TraceCap)
	}
	open := func(dst **os.File, path string) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			s.closeFiles()
			return fmt.Errorf("obscli: %w", err)
		}
		*dst = f
		return nil
	}
	if err := open(&s.traceFile, c.Trace); err != nil {
		return nil, err
	}
	if err := open(&s.metricsFile, c.Metrics); err != nil {
		return nil, err
	}
	if err := open(&s.memFile, c.MemProfile); err != nil {
		return nil, err
	}
	if err := open(&s.cpuFile, c.CPUProfile); err != nil {
		return nil, err
	}
	if s.cpuFile != nil {
		if err := pprof.StartCPUProfile(s.cpuFile); err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("obscli: start cpu profile: %w", err)
		}
	}
	return s, nil
}

// Close stops CPU profiling and writes the heap profile, span trace, and
// metrics snapshot to their pre-opened files. It returns the first error
// but attempts every output.
func (s *Session) Close() error {
	if s == nil {
		return nil
	}
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
	}
	if s.memFile != nil {
		runtime.GC()
		keep(writeTo(s.memFile, func(f *os.File) error {
			return pprof.WriteHeapProfile(f)
		}))
	}
	if s.traceFile != nil {
		keep(writeTo(s.traceFile, func(f *os.File) error {
			return obs.T().WriteNDJSON(f)
		}))
	}
	if s.metricsFile != nil {
		keep(writeTo(s.metricsFile, func(f *os.File) error {
			return obs.M().WriteJSON(f)
		}))
	}
	keep(s.closeFiles())
	return firstErr
}

// closeFiles closes every open output handle, returning the first error.
func (s *Session) closeFiles() error {
	var firstErr error
	for _, f := range []**os.File{&s.cpuFile, &s.memFile, &s.traceFile, &s.metricsFile} {
		if *f != nil {
			if err := (*f).Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			*f = nil
		}
	}
	return firstErr
}

func writeTo(f *os.File, fill func(*os.File) error) error {
	if err := fill(f); err != nil {
		return fmt.Errorf("obscli: write %s: %w", f.Name(), err)
	}
	return nil
}
