// Package obscli wires the obs observability layer into the command-line
// tools: every cmd/ binary registers the same -trace, -metrics,
// -cpuprofile and -memprofile flags through AddFlags, starts a Session
// after flag parsing, and closes it on exit to flush the requested
// outputs. Keeping the wiring here means the five tools stay one line
// each and the flags never drift apart.
package obscli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/obshttp"
	"repro/internal/obs/progress"
)

// Config holds the parsed observability flag values.
type Config struct {
	Trace      string
	Metrics    string
	CPUProfile string
	MemProfile string
	TraceCap   int
	ObsListen  string
	Progress   bool

	// StatusWriter receives the served-endpoint notice and -progress
	// one-liners; nil means os.Stderr. Tests redirect it.
	StatusWriter io.Writer
}

// AddFlags registers the shared observability flags on fs (usually
// flag.CommandLine) and returns the destination Config.
func AddFlags(fs *flag.FlagSet) *Config {
	c := &Config{}
	fs.StringVar(&c.Trace, "trace", "", "write an NDJSON span trace to `file`")
	fs.StringVar(&c.Metrics, "metrics", "", "write the metrics registry as JSON to `file`")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to `file`")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a pprof heap profile to `file`")
	fs.IntVar(&c.TraceCap, "trace-cap", 0, "span ring-buffer capacity (0 = default)")
	fs.StringVar(&c.ObsListen, "obs-listen", "", "serve live observability (/metrics, /progress, /trace, pprof) on `addr` (e.g. :8080 or :0)")
	return c
}

// AddProgressFlag additionally registers -progress, which streams
// one-line status updates to stderr while the flow runs. Only the
// long-running tools (tradeoff, compare) register it.
func (c *Config) AddProgressFlag(fs *flag.FlagSet) {
	fs.BoolVar(&c.Progress, "progress", false, "print a periodic one-line progress status to stderr")
}

// Session is a started observability capture; Close flushes every output
// the flags requested.
type Session struct {
	cpuFile     *os.File
	memFile     *os.File
	traceFile   *os.File
	metricsFile *os.File
	server      *obshttp.Server
	stopReport  func()
}

// status returns the stream for human-facing notices.
func (c *Config) status() io.Writer {
	if c.StatusWriter != nil {
		return c.StatusWriter
	}
	return os.Stderr
}

// Start enables the obs layer (when -trace, -metrics or -obs-listen asked
// for output) and begins CPU profiling (when -cpuprofile did). Every
// output file is created here, up front, so a bad path fails before the
// flow runs instead of silently losing the capture at exit. With
// -obs-listen the HTTP server binds here too (same fail-early rule) and
// its URL is printed to stderr, so -obs-listen :0 is usable.
func (c *Config) Start() (*Session, error) {
	s := &Session{}
	if c.Trace != "" || c.Metrics != "" || c.ObsListen != "" {
		obs.Enable(c.TraceCap)
	}
	if c.ObsListen != "" || c.Progress {
		progress.Enable(0)
	}
	if c.ObsListen != "" {
		srv, err := obshttp.Serve(context.Background(), c.ObsListen, obshttp.Options{})
		if err != nil {
			return nil, fmt.Errorf("obscli: %w", err)
		}
		s.server = srv
		fmt.Fprintf(c.status(), "obs: serving on %s\n", srv.URL())
	}
	if c.Progress {
		s.stopReport = startReporter(progress.B(), c.status(), time.Second)
	}
	open := func(dst **os.File, path string) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			s.closeFiles()
			return fmt.Errorf("obscli: %w", err)
		}
		*dst = f
		return nil
	}
	if err := open(&s.traceFile, c.Trace); err != nil {
		return nil, err
	}
	if err := open(&s.metricsFile, c.Metrics); err != nil {
		return nil, err
	}
	if err := open(&s.memFile, c.MemProfile); err != nil {
		return nil, err
	}
	if err := open(&s.cpuFile, c.CPUProfile); err != nil {
		return nil, err
	}
	if s.cpuFile != nil {
		if err := pprof.StartCPUProfile(s.cpuFile); err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("obscli: start cpu profile: %w", err)
		}
	}
	return s, nil
}

// Close stops the progress reporter and the obs HTTP server, stops CPU
// profiling, and writes the heap profile, span trace, and metrics
// snapshot to their pre-opened files. It returns the first error but
// attempts every output. The server shuts down before the metrics file
// is written, so a final /metrics scrape and the -metrics file see the
// same registry.
func (s *Session) Close() error {
	if s == nil {
		return nil
	}
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.stopReport != nil {
		s.stopReport()
		s.stopReport = nil
	}
	if s.server != nil {
		keep(s.server.Close())
		s.server = nil
	}
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
	}
	if s.memFile != nil {
		runtime.GC()
		keep(writeTo(s.memFile, func(f *os.File) error {
			return pprof.WriteHeapProfile(f)
		}))
	}
	if s.traceFile != nil {
		keep(writeTo(s.traceFile, func(f *os.File) error {
			return obs.T().WriteNDJSON(f)
		}))
	}
	if s.metricsFile != nil {
		keep(writeTo(s.metricsFile, func(f *os.File) error {
			return obs.M().WriteJSON(f)
		}))
	}
	keep(s.closeFiles())
	return firstErr
}

// closeFiles closes every open output handle, returning the first error.
func (s *Session) closeFiles() error {
	var firstErr error
	for _, f := range []**os.File{&s.cpuFile, &s.memFile, &s.traceFile, &s.metricsFile} {
		if *f != nil {
			if err := (*f).Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			*f = nil
		}
	}
	return firstErr
}

func writeTo(f *os.File, fill func(*os.File) error) error {
	if err := fill(f); err != nil {
		return fmt.Errorf("obscli: write %s: %w", f.Name(), err)
	}
	return nil
}

// startReporter subscribes to bus and prints each source's snapshots to w
// as one-line status updates, at most one line per source per minInterval
// (final snapshots always print, so every task's last state is visible).
// The returned stop function unsubscribes and waits for the printer
// goroutine to drain.
func startReporter(bus *progress.Bus, w io.Writer, minInterval time.Duration) func() {
	ch, cancel := bus.Subscribe(64)
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		lastPrint := map[string]time.Time{}
		for {
			select {
			case snap := <-ch:
				now := time.Now()
				if !snap.Final && now.Sub(lastPrint[snap.Source]) < minInterval {
					continue
				}
				lastPrint[snap.Source] = now
				fmt.Fprintf(w, "progress: %s\n", snap.String())
			case <-quit:
				// Drain what is already buffered so a final snapshot
				// published just before shutdown still prints.
				for {
					select {
					case snap := <-ch:
						if snap.Final {
							fmt.Fprintf(w, "progress: %s\n", snap.String())
						}
					default:
						return
					}
				}
			}
		}
	}()
	return func() {
		cancel()
		close(quit)
		<-done
	}
}
