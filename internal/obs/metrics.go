package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. A nil *Counter is
// a valid no-op, so call sites can hold the handle unconditionally.
type Counter struct{ v int64 }

// Add increments the counter by n. Nil-safe.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	atomic.AddInt64(&c.v, n)
}

// Inc increments the counter by one. Nil-safe.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	atomic.AddInt64(&c.v, 1)
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return atomic.LoadInt64(&c.v)
}

// Gauge is an atomic last-value metric (e.g. CCG node count).
type Gauge struct{ v int64 }

// Set stores the gauge value. Nil-safe.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	atomic.StoreInt64(&g.v, n)
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return atomic.LoadInt64(&g.v)
}

// Metrics is a registry of named counters and gauges. Handles are created
// on first use and stable afterwards, so hot paths fetch them once and
// then touch only the atomic word.
type Metrics struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{counters: map[string]*Counter{}, gauges: map[string]*Gauge{}}
}

// Counter returns the named counter, creating it if needed. Nil-safe: a
// nil registry returns a nil (no-op) counter.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	c := m.counters[name]
	m.mu.RUnlock()
	if c != nil {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c = m.counters[name]; c == nil {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed. Nil-safe.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	g := m.gauges[name]
	m.mu.RUnlock()
	if g != nil {
		return g
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if g = m.gauges[name]; g == nil {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Snapshot returns every metric's current value in one map (counters and
// gauges share the namespace). Nil registry returns nil.
func (m *Metrics) Snapshot() map[string]int64 {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string]int64, len(m.counters)+len(m.gauges))
	for name, c := range m.counters {
		out[name] = c.Value()
	}
	for name, g := range m.gauges {
		out[name] = g.Value()
	}
	return out
}

// TypedSnapshot returns the counter and gauge values separately (the
// combined Snapshot loses the kind, which the Prometheus exposition
// needs). Nil registry returns nils.
func (m *Metrics) TypedSnapshot() (counters, gauges map[string]int64) {
	if m == nil {
		return nil, nil
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	counters = make(map[string]int64, len(m.counters))
	for name, c := range m.counters {
		counters[name] = c.Value()
	}
	gauges = make(map[string]int64, len(m.gauges))
	for name, g := range m.gauges {
		gauges[name] = g.Value()
	}
	return counters, gauges
}

// WriteJSON writes the snapshot as a sorted, indented JSON object.
func (m *Metrics) WriteJSON(w io.Writer) error {
	snap := m.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if _, err := io.WriteString(w, "{\n"); err != nil {
		return err
	}
	for i, k := range keys {
		sep := ","
		if i == len(keys)-1 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w, "  %q: %d%s\n", k, snap[k], sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}\n")
	return err
}
