package benchjson

import (
	"bytes"
	"strings"
	"testing"
)

// fixture mirrors real `go test -bench -benchmem` output: goos/pkg
// headers, custom ReportMetric units, log noise, a PASS trailer.
const fixture = `goos: linux
goarch: amd64
pkg: repro
BenchmarkFig10Tradeoff-16         	     151	   7403551 ns/op	   24 design-points	 17387 min-area-TAT-cycles	 2112256 B/op	   24196 allocs/op
BenchmarkGeneratedChip/cores=8-16 	    1024	   1031337 ns/op	  4119 TAT-cycles	      21 nets	  524288 B/op	    4096 allocs/op
BenchmarkGeneratedChip/cores=64-16	      10	 104857600 ns/op	 33280 TAT-cycles	     190 nets	 8388608 B/op	   65536 allocs/op
--- BENCH: BenchmarkFig10Tradeoff-16
    bench_test.go:206: Figure 10 (paper: 18 points, ~4.5x TAT reduction)
PASS
pkg: repro/internal/explore
BenchmarkEnumerateSerial-16       	     168	   7112345 ns/op
BenchmarkEnumerateCached-16       	   14025	     84210 ns/op	   12288 B/op	     192 allocs/op
PASS
ok  	repro/internal/explore	3.021s
`

// fixture1x is a -benchtime=1x run without -benchmem: one iteration,
// no B/op or allocs/op columns.
const fixture1x = `pkg: repro
BenchmarkDegradationCampaign-16   	       1	 152000000 ns/op	  0.9471 mean-coverage-k1	  0.8517 mean-coverage-k3
PASS
`

func TestParseFixture(t *testing.T) {
	snap, err := Parse(strings.NewReader(fixture))
	if err != nil {
		t.Fatal(err)
	}
	if snap.GoOS != "linux" || snap.GoArch != "amd64" {
		t.Fatalf("goos/goarch not captured: %+v", snap)
	}
	if len(snap.Results) != 5 {
		t.Fatalf("parsed %d results, want 5", len(snap.Results))
	}
	byKey := map[string]Result{}
	for _, r := range snap.Results {
		byKey[r.Key()] = r
	}
	fig, ok := byKey["repro.BenchmarkFig10Tradeoff-16"]
	if !ok {
		t.Fatalf("Fig10 result missing; have %v", keys(byKey))
	}
	if fig.Iterations != 151 || fig.NsPerOp != 7403551 {
		t.Fatalf("Fig10 parsed wrong: %+v", fig)
	}
	if fig.BytesPerOp == nil || *fig.BytesPerOp != 2112256 || fig.AllocsPerOp == nil || *fig.AllocsPerOp != 24196 {
		t.Fatalf("Fig10 benchmem columns wrong: %+v", fig)
	}
	if fig.Metrics["design-points"] != 24 || fig.Metrics["min-area-TAT-cycles"] != 17387 {
		t.Fatalf("Fig10 custom metrics wrong: %+v", fig.Metrics)
	}
	gen, ok := byKey["repro.BenchmarkGeneratedChip/cores=64-16"]
	if !ok || gen.Metrics["TAT-cycles"] != 33280 {
		t.Fatalf("sub-benchmark wrong: %+v", gen)
	}
	ser, ok := byKey["repro/internal/explore.BenchmarkEnumerateSerial-16"]
	if !ok {
		t.Fatal("second pkg's benchmark missing")
	}
	if ser.BytesPerOp != nil || ser.AllocsPerOp != nil {
		t.Fatalf("B/op invented for a non-benchmem line: %+v", ser)
	}
}

func TestParseOneIterationNoBenchmem(t *testing.T) {
	snap, err := Parse(strings.NewReader(fixture1x))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Results) != 1 {
		t.Fatalf("parsed %d results, want 1", len(snap.Results))
	}
	r := snap.Results[0]
	if r.Iterations != 1 || r.NsPerOp != 152000000 {
		t.Fatalf("1x parse wrong: %+v", r)
	}
	if r.BytesPerOp != nil || r.AllocsPerOp != nil {
		t.Fatalf("missing columns should stay nil: %+v", r)
	}
	if r.Metrics["mean-coverage-k1"] != 0.9471 {
		t.Fatalf("float metric wrong: %+v", r.Metrics)
	}
}

func TestParseRejectsMalformedResultLine(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkBroken-8\t100\t12 ns/op\t7 B/op extra\n")); err == nil {
		t.Fatal("odd value/unit pairing accepted")
	}
	if _, err := Parse(strings.NewReader("BenchmarkBroken-8\t100\tNaNx ns/op\n")); err == nil {
		t.Fatal("unparseable value accepted")
	}
	// Prose starting with "Benchmark" (e.g. -v test names) is skipped.
	snap, err := Parse(strings.NewReader("BenchmarkFoo\n=== RUN BenchmarkFoo\n"))
	if err != nil || len(snap.Results) != 0 {
		t.Fatalf("prose not skipped: %v %+v", err, snap.Results)
	}
}

func TestEncodeDecodeStable(t *testing.T) {
	snap, err := Parse(strings.NewReader(fixture))
	if err != nil {
		t.Fatal(err)
	}
	snap.Rev, snap.Date = "abc1234", "2026-08-07"
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := snap.Encode(&a); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped snapshot invalid: %v", err)
	}
	if err := back.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("encode not stable:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestValidateCatchesBrokenSnapshots(t *testing.T) {
	good, _ := Parse(strings.NewReader(fixture))
	good.Rev, good.Date = "r", "d"
	cases := map[string]func(*Snapshot){
		"wrong schema":   func(s *Snapshot) { s.Schema = 99 },
		"missing rev":    func(s *Snapshot) { s.Rev = "" },
		"no results":     func(s *Snapshot) { s.Results = nil },
		"zero iters":     func(s *Snapshot) { s.Results[0].Iterations = 0 },
		"duplicate name": func(s *Snapshot) { s.Results = append(s.Results, s.Results[0]) },
	}
	for name, breakIt := range cases {
		s, _ := Parse(strings.NewReader(fixture))
		s.Rev, s.Date = "r", "d"
		breakIt(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate passed", name)
		}
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good snapshot failed: %v", err)
	}
}

func TestDiffSelfIsZeroRegressions(t *testing.T) {
	snap, _ := Parse(strings.NewReader(fixture))
	snap.Rev, snap.Date = "r", "d"
	rep, err := Diff(snap, snap, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 0 {
		t.Fatalf("self-diff found %d regressions", len(rep.Regressions))
	}
	if len(rep.Deltas) != len(snap.Results) {
		t.Fatalf("self-diff compared %d of %d benchmarks", len(rep.Deltas), len(snap.Results))
	}
	if len(rep.OnlyOld)+len(rep.OnlyNew) != 0 {
		t.Fatalf("self-diff reported missing benchmarks: %+v", rep)
	}
	if !strings.Contains(rep.Format(0.25), "0 regressions") {
		t.Fatalf("Format: %q", rep.Format(0.25))
	}
}

func TestDiffFlagsSlowdownAboveThreshold(t *testing.T) {
	old, _ := Parse(strings.NewReader(fixture))
	newer, _ := Parse(strings.NewReader(fixture))
	for i := range newer.Results {
		if newer.Results[i].Name == "BenchmarkEnumerateSerial-16" {
			newer.Results[i].NsPerOp *= 2 // 100% slower
		}
		if newer.Results[i].Name == "BenchmarkEnumerateCached-16" {
			newer.Results[i].NsPerOp *= 1.10 // within a 25% threshold
		}
	}
	rep, err := Diff(old, newer, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 1 || !strings.Contains(rep.Regressions[0].Key, "EnumerateSerial") {
		t.Fatalf("regressions: %+v", rep.Regressions)
	}
	if got := rep.Regressions[0].Ratio; got < 1.99 || got > 2.01 {
		t.Fatalf("ratio = %g, want ~2", got)
	}
	if !strings.Contains(rep.Format(0.25), "REGRESSION") {
		t.Fatalf("Format: %q", rep.Format(0.25))
	}
}

func TestDiffAddedAndRemovedBenchmarksAreNotes(t *testing.T) {
	old, _ := Parse(strings.NewReader(fixture))
	newer, _ := Parse(strings.NewReader(fixture))
	newer.Results = newer.Results[:len(newer.Results)-1] // one disappears
	extra := old.Results[0]
	extra.Name = "BenchmarkBrandNew-16"
	newer.Results = append(newer.Results, extra) // one appears
	rep, err := Diff(old, newer, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 0 {
		t.Fatalf("membership changes counted as regressions: %+v", rep.Regressions)
	}
	if len(rep.OnlyOld) != 1 || len(rep.OnlyNew) != 1 {
		t.Fatalf("membership notes wrong: old=%v new=%v", rep.OnlyOld, rep.OnlyNew)
	}
}

func TestDiffRejectsBadInputs(t *testing.T) {
	a, _ := Parse(strings.NewReader(fixture))
	b, _ := Parse(strings.NewReader(fixture))
	b.Schema = 2
	if _, err := Diff(a, b, 0.25); err == nil {
		t.Fatal("schema mismatch accepted")
	}
	b.Schema = a.Schema
	if _, err := Diff(a, b, 0); err == nil {
		t.Fatal("zero threshold accepted")
	}
}

func keys(m map[string]Result) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestDiffFloorSkipsNoiseBaselines(t *testing.T) {
	oldSnap := &Snapshot{Schema: SchemaVersion, Rev: "a", Date: "d", Results: []Result{
		{Pkg: "p", Name: "BenchmarkTiny-8", Iterations: 1000000000, NsPerOp: 1.1},
		{Pkg: "p", Name: "BenchmarkBig-8", Iterations: 100, NsPerOp: 50000},
	}}
	newSnap := &Snapshot{Schema: SchemaVersion, Rev: "b", Date: "d", Results: []Result{
		{Pkg: "p", Name: "BenchmarkTiny-8", Iterations: 1, NsPerOp: 512}, // 1x harness overhead, ~465x
		{Pkg: "p", Name: "BenchmarkBig-8", Iterations: 1, NsPerOp: 52000},
	}}
	rep, err := DiffFloor(oldSnap, newSnap, 0.25, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 0 {
		t.Fatalf("noise baseline flagged as regression: %+v", rep.Regressions)
	}
	if len(rep.Skipped) != 1 || rep.Skipped[0] != "p.BenchmarkTiny-8" {
		t.Fatalf("Skipped = %v, want [p.BenchmarkTiny-8]", rep.Skipped)
	}
	if len(rep.Deltas) != 1 || rep.Deltas[0].Key != "p.BenchmarkBig-8" {
		t.Fatalf("Deltas = %+v", rep.Deltas)
	}
	if !strings.Contains(rep.Format(0.25), "below the noise floor") {
		t.Fatalf("Format missing skip note:\n%s", rep.Format(0.25))
	}
	// Floor 0 must flag the same pair: the floor, not the threshold, is
	// what spares it above.
	rep0, err := DiffFloor(oldSnap, newSnap, 0.25, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep0.Regressions) != 1 {
		t.Fatalf("floor 0 regressions = %+v, want the tiny bench flagged", rep0.Regressions)
	}
}
