// Package benchjson turns `go test -bench` text output into structured,
// committable perf-trajectory snapshots (the BENCH_<n>.json files at the
// repo root) and diffs two snapshots against a regression threshold, so
// the speed half of "fast and low cost" is tracked per PR instead of as
// prose.
//
// The library is deliberately clock-free: the capture date and git
// revision are passed in by the caller (scripts/bench.sh), never read
// here, so parsing the same raw output twice yields byte-identical
// snapshots — the property the bench.sh self-diff check rests on.
package benchjson

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// SchemaVersion identifies the snapshot layout; bump on incompatible
// change so Diff can refuse to compare apples to oranges.
const SchemaVersion = 1

// Result is one benchmark line. NsPerOp is always present; BytesPerOp and
// AllocsPerOp only when the run used -benchmem (pointers distinguish
// "absent" from a true zero). Metrics holds every custom unit reported
// via b.ReportMetric (TAT-cycles, design-points, ...).
type Result struct {
	Pkg         string             `json:"pkg,omitempty"`
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Key identifies a benchmark across snapshots: package plus full sub-test
// name (the -cpu suffix included, so GOMAXPROCS changes read as different
// series rather than silent regressions).
func (r Result) Key() string {
	if r.Pkg == "" {
		return r.Name
	}
	return r.Pkg + "." + r.Name
}

// Snapshot is one committed point of the perf trajectory.
type Snapshot struct {
	Schema  int      `json:"schema"`
	Rev     string   `json:"rev"`
	Date    string   `json:"date"`
	GoOS    string   `json:"goos,omitempty"`
	GoArch  string   `json:"goarch,omitempty"`
	Results []Result `json:"results"`
}

// Parse reads `go test -bench` output: Benchmark lines become Results,
// goos/goarch/pkg header lines annotate them, everything else (PASS, ok,
// b.Logf output) is ignored. Lines that look like benchmark results but
// do not parse are errors — a silently dropped benchmark would read as
// "no regression".
func Parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{Schema: SchemaVersion}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			snap.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			snap.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			res, ok, err := parseLine(line)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %w", err)
			}
			if ok {
				res.Pkg = pkg
				snap.Results = append(snap.Results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	return snap, nil
}

// parseLine splits one result line. The shape is
//
//	BenchmarkName-8   100   123456 ns/op   12 B/op   3 allocs/op   42.5 extra-metric
//
// i.e. a name, an iteration count, then (value, unit) pairs. ok=false for
// "Benchmark..." prose that is not a result line (e.g. a -v test name).
func parseLine(line string) (Result, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false, nil // "BenchmarkFoo ..." prose, not a result
	}
	res := Result{Name: fields[0], Iterations: iters}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Result{}, false, fmt.Errorf("odd value/unit pairing in %q", line)
	}
	seenNs := false
	for i := 0; i < len(rest); i += 2 {
		val, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Result{}, false, fmt.Errorf("bad value %q in %q", rest[i], line)
		}
		switch unit := rest[i+1]; unit {
		case "ns/op":
			res.NsPerOp = val
			seenNs = true
		case "B/op":
			v := val
			res.BytesPerOp = &v
		case "allocs/op":
			v := val
			res.AllocsPerOp = &v
		case "MB/s":
			fallthrough
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = val
		}
	}
	if !seenNs {
		return Result{}, false, fmt.Errorf("no ns/op in %q", line)
	}
	return res, true, nil
}

// Validate checks a snapshot is schema-complete: current schema version,
// identifying rev and date, at least one result, and every result named
// with a positive iteration count and timing.
func (s *Snapshot) Validate() error {
	if s.Schema != SchemaVersion {
		return fmt.Errorf("benchjson: schema %d, want %d", s.Schema, SchemaVersion)
	}
	if s.Rev == "" || s.Date == "" {
		return fmt.Errorf("benchjson: snapshot missing rev/date")
	}
	if len(s.Results) == 0 {
		return fmt.Errorf("benchjson: snapshot has no results")
	}
	seen := map[string]bool{}
	for _, r := range s.Results {
		if r.Name == "" || r.Iterations <= 0 || r.NsPerOp < 0 {
			return fmt.Errorf("benchjson: malformed result %+v", r)
		}
		if seen[r.Key()] {
			return fmt.Errorf("benchjson: duplicate benchmark %s", r.Key())
		}
		seen[r.Key()] = true
	}
	return nil
}

// Encode writes the snapshot as stable, indented JSON (results sorted by
// key so two captures of the same data are byte-identical).
func (s *Snapshot) Encode(w io.Writer) error {
	sort.Slice(s.Results, func(i, j int) bool { return s.Results[i].Key() < s.Results[j].Key() })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Decode reads a snapshot written by Encode.
func Decode(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("benchjson: decode: %w", err)
	}
	return &s, nil
}

// Delta is one benchmark's movement between two snapshots. Ratio is
// new/old ns/op: 1.30 means 30% slower.
type Delta struct {
	Key      string  `json:"key"`
	OldNs    float64 `json:"old_ns_per_op"`
	NewNs    float64 `json:"new_ns_per_op"`
	Ratio    float64 `json:"ratio"`
	Regessed bool    `json:"regressed"`
}

// DiffReport is the outcome of comparing two snapshots.
type DiffReport struct {
	Deltas      []Delta  `json:"deltas"`
	Regressions []Delta  `json:"regressions,omitempty"`
	OnlyOld     []string `json:"only_old,omitempty"` // benchmarks that disappeared
	OnlyNew     []string `json:"only_new,omitempty"` // benchmarks that appeared
	Skipped     []string `json:"skipped,omitempty"`  // below the noise floor
}

// Diff compares old and new ns/op per benchmark. threshold is the
// allowed fractional slowdown: 0.25 flags anything more than 25% slower.
// Benchmarks present on only one side are reported, not failed — adding a
// benchmark must never fail the gate.
func Diff(old, new *Snapshot, threshold float64) (*DiffReport, error) {
	return DiffFloor(old, new, threshold, 0)
}

// DiffFloor is Diff with a noise floor: a benchmark whose baseline ns/op
// is below floorNs is listed in Skipped instead of being compared. A
// single-iteration run (-benchtime=1x) measures true cost plus ~1µs of
// fixed harness overhead, so against a nanosecond-scale baseline the
// ratio is pure noise — the smoke gate diffs with a floor, full captures
// with 0.
func DiffFloor(old, new *Snapshot, threshold, floorNs float64) (*DiffReport, error) {
	if old.Schema != new.Schema {
		return nil, fmt.Errorf("benchjson: schema mismatch %d vs %d", old.Schema, new.Schema)
	}
	if threshold <= 0 {
		return nil, fmt.Errorf("benchjson: threshold must be positive, got %g", threshold)
	}
	oldBy := map[string]Result{}
	for _, r := range old.Results {
		oldBy[r.Key()] = r
	}
	rep := &DiffReport{}
	newSeen := map[string]bool{}
	for _, nr := range new.Results {
		newSeen[nr.Key()] = true
		or, ok := oldBy[nr.Key()]
		if !ok {
			rep.OnlyNew = append(rep.OnlyNew, nr.Key())
			continue
		}
		if or.NsPerOp < floorNs {
			rep.Skipped = append(rep.Skipped, nr.Key())
			continue
		}
		d := Delta{Key: nr.Key(), OldNs: or.NsPerOp, NewNs: nr.NsPerOp}
		if or.NsPerOp > 0 {
			d.Ratio = nr.NsPerOp / or.NsPerOp
		} else if nr.NsPerOp > 0 {
			d.Ratio = 1 + threshold*2 // 0 -> nonzero is a regression by definition
		} else {
			d.Ratio = 1
		}
		d.Regessed = d.Ratio > 1+threshold
		rep.Deltas = append(rep.Deltas, d)
		if d.Regessed {
			rep.Regressions = append(rep.Regressions, d)
		}
	}
	for key := range oldBy {
		if !newSeen[key] {
			rep.OnlyOld = append(rep.OnlyOld, key)
		}
	}
	sort.Slice(rep.Deltas, func(i, j int) bool { return rep.Deltas[i].Key < rep.Deltas[j].Key })
	sort.Slice(rep.Regressions, func(i, j int) bool { return rep.Regressions[i].Ratio > rep.Regressions[j].Ratio })
	sort.Strings(rep.OnlyOld)
	sort.Strings(rep.OnlyNew)
	sort.Strings(rep.Skipped)
	return rep, nil
}

// Format renders the report for humans: regressions first (worst leading),
// then appearance/disappearance notes, then a one-line summary.
func (r *DiffReport) Format(threshold float64) string {
	var b strings.Builder
	for _, d := range r.Regressions {
		fmt.Fprintf(&b, "REGRESSION %s: %.0f ns/op -> %.0f ns/op (%.2fx > %.2fx allowed)\n",
			d.Key, d.OldNs, d.NewNs, d.Ratio, 1+threshold)
	}
	for _, k := range r.OnlyOld {
		fmt.Fprintf(&b, "note: %s only in old snapshot\n", k)
	}
	for _, k := range r.OnlyNew {
		fmt.Fprintf(&b, "note: %s only in new snapshot\n", k)
	}
	for _, k := range r.Skipped {
		fmt.Fprintf(&b, "note: %s below the noise floor, not compared\n", k)
	}
	fmt.Fprintf(&b, "%d benchmarks compared, %d regressions (threshold %.0f%%)\n",
		len(r.Deltas), len(r.Regressions), threshold*100)
	return b.String()
}
