package obs

import "testing"

// The disabled path is the one left in hot loops: it must be a pointer
// check, nothing more. These benchmarks document that cost directly; the
// end-to-end <2% bound on Flow.Evaluate lives in internal/core.

func BenchmarkDisabledSpan(b *testing.B) {
	Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := Start(nil, "bench")
		sp.Start("child").End()
		sp.End()
	}
}

func BenchmarkDisabledCounter(b *testing.B) {
	Disable()
	c := C("bench.counter")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		c.Add(3)
	}
}

func BenchmarkDisabledLookup(b *testing.B) {
	Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		C("bench.counter").Inc()
	}
}

func BenchmarkEnabledSpan(b *testing.B) {
	Enable(0)
	defer Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := Start(nil, "bench")
		sp.End()
	}
}

func BenchmarkEnabledCounter(b *testing.B) {
	Enable(0)
	defer Disable()
	c := C("bench.counter")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkEnabledLookup(b *testing.B) {
	Enable(0)
	defer Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		C("bench.counter").Inc()
	}
}
