package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceCap is the span ring-buffer capacity used when Enable or
// NewTracer is given a non-positive one.
const DefaultTraceCap = 1 << 14

// SpanRecord is one finished span. Start is the offset from the tracer's
// epoch (its creation time), so records from one run share a timeline.
type SpanRecord struct {
	ID     uint64
	Parent uint64 // 0 for root spans
	Name   string
	Start  time.Duration
	Dur    time.Duration
}

// Tracer records finished spans into a fixed-capacity ring buffer: when
// the ring is full the oldest record is overwritten, so a long run keeps
// its most recent history and never grows without bound.
type Tracer struct {
	epoch  time.Time
	nextID atomic.Uint64

	mu    sync.Mutex
	ring  []SpanRecord
	cap   int
	head  int // oldest record once the ring is full
	total uint64
}

// NewTracer returns a tracer with the given ring capacity (0 or negative
// selects DefaultTraceCap).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{epoch: time.Now(), cap: capacity}
}

// Span is one in-flight timed operation. A nil *Span is a valid no-op:
// Start on it returns nil and End on it does nothing, which is how
// disabled instrumentation stays near free.
type Span struct {
	tracer *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time
}

// Start begins a root span. Nil-safe: a nil tracer returns a nil span.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{tracer: t, id: t.nextID.Add(1), name: name, start: time.Now()}
}

// Start begins a child span. Nil-safe.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	c := s.tracer.Start(name)
	c.parent = s.id
	return c
}

// End finishes the span and records it. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tracer
	rec := SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start.Sub(t.epoch),
		Dur:    time.Since(s.start),
	}
	t.mu.Lock()
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, rec)
	} else {
		t.ring[t.head] = rec
		t.head = (t.head + 1) % t.cap
	}
	t.total++
	t.mu.Unlock()
}

// Records returns the retained spans, oldest first (in End order).
func (t *Tracer) Records() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.ring))
	out = append(out, t.ring[t.head:]...)
	out = append(out, t.ring[:t.head]...)
	return out
}

// Dropped returns how many spans were overwritten by ring wraparound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - uint64(len(t.ring))
}

// WriteNDJSON writes one JSON object per retained span, oldest first:
//
//	{"id":7,"parent":1,"name":"atpg/CPU","start_us":152,"dur_us":48211}
func (t *Tracer) WriteNDJSON(w io.Writer) error {
	if t == nil {
		return nil
	}
	for _, r := range t.Records() {
		_, err := fmt.Fprintf(w, "{\"id\":%d,\"parent\":%d,\"name\":%q,\"start_us\":%d,\"dur_us\":%d}\n",
			r.ID, r.Parent, r.Name, r.Start.Microseconds(), r.Dur.Microseconds())
		if err != nil {
			return err
		}
	}
	return nil
}
