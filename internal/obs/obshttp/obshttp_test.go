package obshttp

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/obs"
	"repro/internal/obs/progress"
	"repro/internal/socgen"
)

// serve starts a test server on a loopback port and registers cleanup.
func serve(t *testing.T, opt Options) *Server {
	t.Helper()
	s, err := Serve(context.Background(), "127.0.0.1:0", opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsJSONMatchesWriteJSON(t *testing.T) {
	m := obs.NewMetrics()
	m.Counter("atpg.backtracks").Add(29489)
	m.Counter("explore.cache_hits").Add(12)
	m.Gauge("ccg.nodes").Set(17)
	s := serve(t, Options{Metrics: m})
	code, body := get(t, s.URL()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", code)
	}
	var want bytes.Buffer
	if err := m.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if body != want.String() {
		t.Fatalf("/metrics response differs from WriteJSON:\n got: %q\nwant: %q", body, want.String())
	}
}

func TestMetricsPrometheusGolden(t *testing.T) {
	m := obs.NewMetrics()
	m.Counter("explore.cache_hits").Add(3)
	m.Counter("atpg.backtracks").Add(100)
	m.Gauge("ccg.nodes").Set(17)
	s := serve(t, Options{Metrics: m})
	code, body := get(t, s.URL()+"/metrics?format=prometheus")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics?format=prometheus: %d", code)
	}
	want := `# TYPE socet_atpg_backtracks_total counter
socet_atpg_backtracks_total 100
# TYPE socet_ccg_nodes gauge
socet_ccg_nodes 17
# TYPE socet_explore_cache_hits_total counter
socet_explore_cache_hits_total 3
`
	if body != want {
		t.Fatalf("prometheus exposition mismatch:\n got:\n%s\nwant:\n%s", body, want)
	}
}

func TestTraceNDJSON(t *testing.T) {
	tr := obs.NewTracer(0)
	tr.Start("evaluate").End()
	tr.Start("ccg/build").End()
	s := serve(t, Options{Tracer: tr})
	code, body := get(t, s.URL()+"/trace")
	if code != http.StatusOK {
		t.Fatalf("GET /trace: %d", code)
	}
	var want bytes.Buffer
	if err := tr.WriteNDJSON(&want); err != nil {
		t.Fatal(err)
	}
	if body != want.String() {
		t.Fatalf("/trace differs from WriteNDJSON:\n got: %q\nwant: %q", body, want.String())
	}
	if !strings.Contains(body, `"name":"ccg/build"`) {
		t.Fatalf("trace missing span: %q", body)
	}
}

func TestDisabledSourcesReturn503(t *testing.T) {
	obs.Disable()
	progress.Disable()
	s := serve(t, Options{})
	for _, path := range []string{"/metrics", "/trace", "/progress"} {
		code, _ := get(t, s.URL()+path)
		if code != http.StatusServiceUnavailable {
			t.Errorf("GET %s with obs disabled: %d, want 503", path, code)
		}
	}
}

func TestIndexAndPprof(t *testing.T) {
	s := serve(t, Options{})
	code, body := get(t, s.URL()+"/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: %d %q", code, body)
	}
	code, _ = get(t, s.URL()+"/nope")
	if code != http.StatusNotFound {
		t.Fatalf("GET /nope: %d, want 404", code)
	}
	code, body = get(t, s.URL()+"/debug/pprof/heap?debug=1")
	if code != http.StatusOK || !strings.Contains(body, "heap profile") {
		t.Fatalf("pprof heap: %d", code)
	}
}

// sseEvents reads up to n SSE data events from the stream, decoding each
// as a progress snapshot.
func sseEvents(t *testing.T, body *bufio.Reader, n int) []progress.Snapshot {
	t.Helper()
	var out []progress.Snapshot
	for len(out) < n {
		line, err := body.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE stream ended after %d events: %v", len(out), err)
		}
		line = strings.TrimRight(line, "\n")
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var s progress.Snapshot
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &s); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		out = append(out, s)
	}
	return out
}

// TestProgressSSEDuringCancelledEnumerate is the live-observability
// acceptance path: an Enumerate over a generated chip streams snapshots
// to an SSE subscriber, the subscriber sees at least two monotonically
// increasing points-evaluated reports, and cancelling the enumeration
// ends the run with a partial result.
func TestProgressSSEDuringCancelledEnumerate(t *testing.T) {
	obs.Enable(0)
	t.Cleanup(obs.Disable)
	progress.Enable(-1) // publish every Step
	t.Cleanup(progress.Disable)

	// 24 cores make the selection ladder astronomically larger than
	// MaxPoints, so the capped run cannot finish before cancel() lands.
	ch, err := socgen.Generate(socgen.Params{Seed: 11, Cores: 24, Topology: socgen.RandomDAG})
	if err != nil {
		t.Fatal(err)
	}
	vecs := map[string]int{}
	for i, c := range ch.TestableCores() {
		vecs[c.Name] = 5 + i%7
	}
	f, err := core.Prepare(ch, &core.Options{VectorOverride: vecs})
	if err != nil {
		t.Fatal(err)
	}

	s := serve(t, Options{})
	resp, err := http.Get(s.URL() + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type result struct {
		points []explore.Point
		err    error
	}
	done := make(chan result, 1)
	go func() {
		pts, err := explore.EnumerateCtx(ctx, f, explore.Options{Workers: 2, MaxPoints: 100000})
		done <- result{pts, err}
	}()

	events := sseEvents(t, bufio.NewReader(resp.Body), 3)
	cancel()
	res := <-done

	var last int64 = -1
	seen := 0
	for _, e := range events {
		if e.Source != "explore/enumerate" {
			continue
		}
		seen++
		if e.Done < last {
			t.Fatalf("points evaluated went backwards: %d then %d", last, e.Done)
		}
		last = e.Done
	}
	if seen < 2 {
		t.Fatalf("received %d enumerate snapshots, want >= 2", seen)
	}
	if res.err == nil {
		t.Fatal("enumeration was not cancelled (it finished 100k points?)")
	}
	if len(res.points) == 0 {
		t.Fatal("cancelled enumeration returned no partial points")
	}
}

// TestShutdownGoroutineLeakFree opens an SSE stream, shuts the server
// down, and asserts every server goroutine (including the blocked stream
// handler) exits.
func TestShutdownGoroutineLeakFree(t *testing.T) {
	obs.Enable(0)
	t.Cleanup(obs.Disable)
	progress.Enable(-1)
	t.Cleanup(progress.Disable)
	http.DefaultClient.CloseIdleConnections()
	before := runtime.NumGoroutine()

	s, err := Serve(context.Background(), "127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(s.URL() + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	progress.Start("test/op", 1).Step(1) // something to stream

	if err := s.Close(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatalf("second shutdown: %v", err)
	}
	// The stream handler and the serve loop must both be gone; allow the
	// runtime a moment to reap them. The client's own keep-alive
	// goroutines are not the server's — drop them before counting.
	resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		http.DefaultClient.CloseIdleConnections()
		if n := runtime.NumGoroutine(); n <= before+1 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked after shutdown: %d -> %d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestContextCancelShutsDown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s, err := Serve(ctx, "127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case <-s.done:
	case <-time.After(5 * time.Second):
		t.Fatal("server still up 5s after context cancel")
	}
	if _, err := http.Get(s.URL() + "/"); err == nil {
		t.Fatal("server still accepting connections after context cancel")
	}
}

func TestBadAddressFailsEagerly(t *testing.T) {
	if _, err := Serve(context.Background(), "256.0.0.1:99999", Options{}); err == nil {
		t.Fatal("bad listen address did not fail")
	}
}

func TestPromNameSanitization(t *testing.T) {
	for in, want := range map[string]string{
		"explore.cache_hits": "socet_explore_cache_hits",
		"ccg.nodes":          "socet_ccg_nodes",
		"weird-name.2x":      "socet_weird_name_2x",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestURLRewritesUnspecifiedHost(t *testing.T) {
	s := serve(t, Options{})
	if u := s.URL(); !strings.HasPrefix(u, "http://127.0.0.1:") {
		t.Fatalf("URL() = %q", u)
	}
	if s.Addr() == "" {
		t.Fatal("empty Addr")
	}
	_ = fmt.Sprintf("%s", s.Addr())
}
