// Package obshttp serves the live view of the obs observability layer
// over HTTP — the direct stepping stone to the socetd daemon. An opt-in
// server (the -obs-listen flag via obscli) exposes:
//
//	/metrics     counter/gauge snapshot; JSON bit-identical to the
//	             -metrics file, or Prometheus text with ?format=prometheus
//	/progress    Server-Sent Events stream of progress.Snapshot JSON
//	/trace       NDJSON dump of the retained span ring
//	/debug/pprof the standard net/http/pprof handlers
//	/            a plain-text index of the above
//
// The server binds eagerly (so ":0" callers learn the real port), serves
// until its context is cancelled or Shutdown is called, and shuts down
// gracefully: streaming handlers are told to finish, then the listener
// closes. Everything is read-only; the server never mutates flow state.
package obshttp

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/progress"
)

// shutdownGrace bounds how long Close waits for in-flight handlers after
// streaming handlers have been told to stop.
const shutdownGrace = 2 * time.Second

// Options selects the observability sources the server reads. Zero-value
// fields fall back to the process-global installations at request time,
// so a server started before obs.Enable still sees the data.
type Options struct {
	Metrics *obs.Metrics
	Tracer  *obs.Tracer
	Bus     *progress.Bus
}

func (o Options) metrics() *obs.Metrics {
	if o.Metrics != nil {
		return o.Metrics
	}
	return obs.M()
}

func (o Options) tracer() *obs.Tracer {
	if o.Tracer != nil {
		return o.Tracer
	}
	return obs.T()
}

func (o Options) bus() *progress.Bus {
	if o.Bus != nil {
		return o.Bus
	}
	return progress.B()
}

// Server is a running observability endpoint.
type Server struct {
	opt  Options
	ln   net.Listener
	srv  *http.Server
	stop chan struct{} // closed first on shutdown: streams drain and return

	mu     sync.Mutex
	closed bool
	done   chan struct{} // closed when Serve returns
}

// Serve binds addr (host:port; ":0" picks a free port) and serves the
// observability endpoints until ctx is cancelled or Close is called.
// Binding happens before Serve returns, so a bad address fails here.
func Serve(ctx context.Context, addr string, opt Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obshttp: listen %s: %w", addr, err)
	}
	s := &Server{
		opt:  opt,
		ln:   ln,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go func() {
		defer close(s.done)
		err := s.srv.Serve(ln)
		_ = err // http.ErrServerClosed on shutdown; the listener owns real errors
	}()
	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				s.Close()
			case <-s.done:
			}
		}()
	}
	obs.C("obshttp.servers_started").Inc()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the http base URL of the server.
func (s *Server) URL() string {
	host, port, err := net.SplitHostPort(s.ln.Addr().String())
	if err != nil {
		return "http://" + s.ln.Addr().String()
	}
	if ip := net.ParseIP(host); ip != nil && ip.IsUnspecified() {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// Close shuts the server down gracefully: streaming handlers are released
// first, then in-flight requests get shutdownGrace to finish before the
// listener is torn down. Idempotent; nil-safe.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return nil
	}
	s.closed = true
	close(s.stop)
	s.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		err = s.srv.Close()
	}
	<-s.done
	return err
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "socet observability endpoint\n\n"+
		"  /metrics                    counters and gauges as JSON\n"+
		"  /metrics?format=prometheus  Prometheus text exposition\n"+
		"  /progress                   SSE stream of progress snapshots\n"+
		"  /trace                      span ring as NDJSON\n"+
		"  /debug/pprof/               runtime profiles\n")
}

// handleMetrics writes the registry snapshot: by default the exact bytes
// the -metrics file gets at exit (obs.Metrics.WriteJSON), so the live and
// at-exit views never disagree; with ?format=prometheus the text
// exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	obs.C("obshttp.requests").Inc()
	m := s.opt.metrics()
	if m == nil {
		http.Error(w, "observability disabled: no metrics registry installed", http.StatusServiceUnavailable)
		return
	}
	if f := r.URL.Query().Get("format"); f == "prometheus" || f == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeProm(w, m)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	m.WriteJSON(w)
}

// writeProm renders the registry in the Prometheus text exposition
// format: dots become underscores, counters get the _total suffix the
// convention asks for, and names come out sorted so the output is stable.
func writeProm(w http.ResponseWriter, m *obs.Metrics) {
	counters, gauges := m.TypedSnapshot()
	type row struct {
		name string
		kind string
		val  int64
	}
	rows := make([]row, 0, len(counters)+len(gauges))
	for name, v := range counters {
		rows = append(rows, row{promName(name) + "_total", "counter", v})
	}
	for name, v := range gauges {
		rows = append(rows, row{promName(name), "gauge", v})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	for _, r := range rows {
		fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", r.name, r.kind, r.name, r.val)
	}
}

// promName maps an obs metric name onto the Prometheus grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*, prefixed with the socet namespace.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("socet_")
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// handleProgress streams progress snapshots as Server-Sent Events: the
// latest snapshot immediately (so a late subscriber sees state at once),
// then every published snapshot until the client hangs up or the server
// shuts down. Each event is one JSON-encoded progress.Snapshot.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	obs.C("obshttp.requests").Inc()
	bus := s.opt.bus()
	if bus == nil {
		http.Error(w, "observability disabled: no progress bus installed", http.StatusServiceUnavailable)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	obs.C("obshttp.progress_streams").Inc()

	send := func(snap progress.Snapshot) bool {
		raw, err := json.Marshal(snap)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", raw); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	ch, cancel := bus.Subscribe(64)
	defer cancel()
	if snap, ok := bus.Latest(); ok {
		if !send(snap) {
			return
		}
	}
	for {
		select {
		case snap := <-ch:
			if !send(snap) {
				return
			}
		case <-r.Context().Done():
			return
		case <-s.stop:
			return
		}
	}
}

// handleTrace dumps the retained span ring as NDJSON — the same bytes the
// -trace file would hold if the run ended now.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	obs.C("obshttp.requests").Inc()
	t := s.opt.tracer()
	if t == nil {
		http.Error(w, "observability disabled: no tracer installed", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	t.WriteNDJSON(w)
}
