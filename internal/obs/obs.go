// Package obs is the flow-wide observability layer: hierarchical wall-time
// spans recorded into a ring buffer (exportable as NDJSON), a registry of
// named atomic counters and gauges (exportable as JSON), and a per-phase
// timing summary. Everything hangs off a process-global pair installed by
// Enable; the default is disabled, in which case every entry point returns
// a nil handle and every operation on a nil handle is a no-op, so
// instrumentation left in hot paths costs one pointer check.
//
// The package depends only on the standard library. Instrumented packages
// call obs.Start / obs.C / obs.G directly; command-line wiring (flags,
// pprof capture, file export) lives in the obscli subpackage.
package obs

import "sync/atomic"

// state bundles the installed tracer and metrics registry.
type state struct {
	tracer  *Tracer
	metrics *Metrics
}

var global atomic.Pointer[state]

// Enable installs a fresh process-global tracer (span ring capacity
// traceCap, 0 for the default) and metrics registry, replacing any
// previous installation, and returns both.
func Enable(traceCap int) (*Tracer, *Metrics) {
	st := &state{tracer: NewTracer(traceCap), metrics: NewMetrics()}
	global.Store(st)
	return st.tracer, st.metrics
}

// Disable removes the process-global tracer and registry; subsequent
// instrumentation calls become no-ops.
func Disable() { global.Store(nil) }

// Enabled reports whether an observability state is installed.
func Enabled() bool { return global.Load() != nil }

// T returns the installed tracer, or nil when disabled.
func T() *Tracer {
	if st := global.Load(); st != nil {
		return st.tracer
	}
	return nil
}

// M returns the installed metrics registry, or nil when disabled.
func M() *Metrics {
	if st := global.Load(); st != nil {
		return st.metrics
	}
	return nil
}

// Start begins a span: a child of parent when parent is non-nil, else a
// root span on the installed tracer. It returns nil — a no-op span —
// when observability is disabled.
func Start(parent *Span, name string) *Span {
	if parent != nil {
		return parent.Start(name)
	}
	return T().Start(name)
}

// C returns the named counter from the installed registry (nil, a no-op
// counter, when disabled).
func C(name string) *Counter { return M().Counter(name) }

// G returns the named gauge from the installed registry (nil when
// disabled).
func G(name string) *Gauge { return M().Gauge(name) }
