package progress

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestDisabledTaskIsNoop(t *testing.T) {
	Disable()
	task := Start("test/op", 10)
	if task != nil {
		t.Fatalf("disabled Start returned %v, want nil", task)
	}
	task.Step(1) // must not panic
	task.End()
	if B() != nil {
		t.Fatal("bus installed while disabled")
	}
}

func TestPublishAndLatest(t *testing.T) {
	b := Enable(-1) // publish on every Step
	defer Disable()
	task := Start("test/op", 4)
	for i := 0; i < 4; i++ {
		task.Step(1)
	}
	task.End()
	last, ok := b.Latest()
	if !ok {
		t.Fatal("no latest snapshot after publishes")
	}
	if !last.Final || last.Done != 4 || last.Total != 4 || last.Source != "test/op" {
		t.Fatalf("unexpected final snapshot %+v", last)
	}
	if last.Seq < 5 {
		t.Fatalf("expected at least 5 published snapshots, seq=%d", last.Seq)
	}
}

func TestSubscriberReceivesMonotonicSnapshots(t *testing.T) {
	b := Enable(-1)
	defer Disable()
	ch, cancel := b.Subscribe(64)
	defer cancel()
	task := Start("test/op", 8)
	for i := 0; i < 8; i++ {
		task.Step(1)
	}
	task.End()
	var got []Snapshot
	for len(got) < 9 {
		select {
		case s := <-ch:
			got = append(got, s)
		case <-time.After(time.Second):
			t.Fatalf("timed out after %d snapshots", len(got))
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i].Done < got[i-1].Done {
			t.Fatalf("done went backwards: %d then %d", got[i-1].Done, got[i].Done)
		}
		if got[i].Seq <= got[i-1].Seq {
			t.Fatalf("seq not increasing: %d then %d", got[i-1].Seq, got[i].Seq)
		}
	}
	if !got[len(got)-1].Final {
		t.Fatal("last received snapshot is not final")
	}
}

func TestSlowSubscriberNeverBlocksPublisher(t *testing.T) {
	b := Enable(-1)
	defer Disable()
	_, cancel := b.Subscribe(1) // capacity 1, never read
	defer cancel()
	task := Start("test/op", 0)
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			task.Step(1)
		}
		task.End()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publisher blocked on a full subscriber channel")
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	b := Enable(-1)
	defer Disable()
	ch, cancel := b.Subscribe(4)
	task := Start("test/op", 0)
	task.Step(1)
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("no snapshot before unsubscribe")
	}
	cancel()
	cancel() // idempotent
	task.Step(1)
	task.End()
	select {
	case s, ok := <-ch:
		if ok {
			t.Fatalf("received %+v after unsubscribe", s)
		}
	default:
	}
}

func TestThrottleLimitsPublishRate(t *testing.T) {
	b := Enable(time.Hour) // effectively: only the first Step and End publish
	defer Disable()
	ch, cancel := b.Subscribe(64)
	defer cancel()
	task := Start("test/op", 0)
	for i := 0; i < 100; i++ {
		task.Step(1)
	}
	task.End()
	n := 0
	for {
		select {
		case <-ch:
			n++
			continue
		default:
		}
		break
	}
	if n > 2 {
		t.Fatalf("throttle let %d snapshots through, want <= 2", n)
	}
	if n == 0 {
		t.Fatal("final snapshot not delivered")
	}
}

func TestExtrasSampledFromObsMetrics(t *testing.T) {
	obs.Enable(0)
	defer obs.Disable()
	Enable(-1)
	defer Disable()
	obs.C("test.hits").Add(7)
	task := Start("test/op", 2, "test.hits", "test.absent")
	task.Step(1)
	task.End()
	last, _ := B().Latest()
	if last.Extra["test.hits"] != 7 {
		t.Fatalf("extra not sampled: %+v", last.Extra)
	}
	if _, ok := last.Extra["test.absent"]; ok {
		t.Fatal("absent metric appeared in extras")
	}
}

func TestConcurrentStepsRaceFree(t *testing.T) {
	b := Enable(-1)
	defer Disable()
	ch, cancel := b.Subscribe(8)
	defer cancel()
	task := Start("test/op", 64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				task.Step(1)
			}
		}()
	}
	wg.Wait()
	task.End()
	last, _ := b.Latest()
	if last.Done != 64 {
		t.Fatalf("lost steps: done=%d want 64", last.Done)
	}
	for {
		select {
		case <-ch:
			continue
		default:
		}
		break
	}
}

func TestSnapshotJSONAndString(t *testing.T) {
	s := Snapshot{
		Source: "explore/enumerate", Done: 50, Total: 200,
		Elapsed: 2, Rate: 25, ETA: 6,
		Extra: map[string]int64{"explore.cache_hits": 30, "explore.cache_misses": 20},
	}
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"source":"explore/enumerate"`, `"done":50`, `"total":200`, `"rate_per_s":25`} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("marshalled snapshot %s missing %s", raw, want)
		}
	}
	line := s.String()
	for _, want := range []string{"explore/enumerate", "50/200", "25.0%", "25.0/s", "eta 6s", "cache 60% hit"} {
		if !strings.Contains(line, want) {
			t.Fatalf("String() = %q missing %q", line, want)
		}
	}
	unknown := Snapshot{Source: "walk", Done: 3, Rate: 1.5, Final: true}
	if line := unknown.String(); !strings.Contains(line, "3 done") || !strings.Contains(line, " done") {
		t.Fatalf("unknown-total String() = %q", line)
	}
}
