// Package progress is the live-progress half of the observability layer:
// long-running operations (design-space enumeration, improvement walks,
// fault campaigns, differential replays) publish periodic Snapshots of how
// far along they are to a process-global Bus, and consumers — the
// -progress stderr reporter, the obshttp /progress SSE stream, the future
// socetd daemon — subscribe without the publishers knowing they exist.
//
// The publish path is designed for hot loops: a disabled bus (the default)
// makes every Task operation a nil check, and an enabled bus costs one
// atomic add per Step plus a throttled snapshot build. Publishing never
// blocks: slow subscribers miss intermediate snapshots instead of stalling
// the flow (each snapshot is self-contained, so dropping is safe).
package progress

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// DefaultInterval is the minimum wall-time between published snapshots of
// one Task when Enable is given a non-positive interval.
const DefaultInterval = 100 * time.Millisecond

// Snapshot is one point-in-time progress report. Done increases
// monotonically over a Task's lifetime; Total is 0 when the amount of work
// is unknown up front (e.g. an improvement walk). Extra carries the obs
// metric values the publisher asked to be sampled alongside (cache
// hit/miss counts, moves accepted, faults injected, ...).
type Snapshot struct {
	Source  string           `json:"source"`
	Seq     uint64           `json:"seq"`
	Done    int64            `json:"done"`
	Total   int64            `json:"total,omitempty"`
	Elapsed float64          `json:"elapsed_s"`
	Rate    float64          `json:"rate_per_s"`
	ETA     float64          `json:"eta_s,omitempty"`
	Extra   map[string]int64 `json:"extra,omitempty"`
	Final   bool             `json:"final,omitempty"`
}

// String renders the snapshot as the one-line status the -progress flag
// prints: source, done/total with percentage (or a bare count when the
// total is unknown), throughput, ETA and the sampled extras.
func (s Snapshot) String() string {
	out := s.Source + " "
	if s.Total > 0 {
		out += fmt.Sprintf("%d/%d (%.1f%%)", s.Done, s.Total, 100*float64(s.Done)/float64(s.Total))
	} else {
		out += fmt.Sprintf("%d done", s.Done)
	}
	out += fmt.Sprintf(" %.1f/s", s.Rate)
	if s.ETA > 0 {
		out += fmt.Sprintf(" eta %s", (time.Duration(s.ETA * float64(time.Second))).Round(time.Second))
	}
	if hits, ok := s.Extra["explore.cache_hits"]; ok {
		if misses, ok2 := s.Extra["explore.cache_misses"]; ok2 && hits+misses > 0 {
			out += fmt.Sprintf(" cache %.0f%% hit", 100*float64(hits)/float64(hits+misses))
		}
	}
	if s.Final {
		out += " done"
	}
	return out
}

// Bus fans published snapshots out to subscribers. The publish path is
// lock-free: the subscriber set is a copy-on-write slice behind an atomic
// pointer (Subscribe/Unsubscribe, which are rare, serialize on a mutex to
// produce the new copy), the latest snapshot is an atomic pointer, and
// channel sends are non-blocking.
type Bus struct {
	seq      atomic.Uint64
	latest   atomic.Pointer[Snapshot]
	subs     atomic.Pointer[[]chan Snapshot]
	interval time.Duration

	mu sync.Mutex // serializes subscriber-set rewrites only
}

// NewBus returns a bus throttling each Task to one snapshot per interval
// (non-positive selects DefaultInterval, negative zero means every Step —
// see Enable).
func NewBus(interval time.Duration) *Bus {
	if interval < 0 {
		interval = 0
	}
	b := &Bus{interval: interval}
	empty := []chan Snapshot{}
	b.subs.Store(&empty)
	return b
}

// Subscribe registers a buffered snapshot channel and returns it with its
// cancel function. The bus never closes the channel before cancel is
// called; cancel is idempotent and drains nothing (pending snapshots stay
// readable until the channel is garbage).
func (b *Bus) Subscribe(buf int) (<-chan Snapshot, func()) {
	if b == nil {
		ch := make(chan Snapshot)
		close(ch)
		return ch, func() {}
	}
	if buf < 1 {
		buf = 16
	}
	ch := make(chan Snapshot, buf)
	b.mu.Lock()
	old := *b.subs.Load()
	next := make([]chan Snapshot, 0, len(old)+1)
	next = append(next, old...)
	next = append(next, ch)
	b.subs.Store(&next)
	b.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			b.mu.Lock()
			old := *b.subs.Load()
			next := make([]chan Snapshot, 0, len(old))
			for _, c := range old {
				if c != ch {
					next = append(next, c)
				}
			}
			b.subs.Store(&next)
			b.mu.Unlock()
		})
	}
	return ch, cancel
}

// Latest returns the most recently published snapshot, if any.
func (b *Bus) Latest() (Snapshot, bool) {
	if b == nil {
		return Snapshot{}, false
	}
	if s := b.latest.Load(); s != nil {
		return *s, true
	}
	return Snapshot{}, false
}

// publish stamps the sequence number, stores the snapshot as latest, and
// offers it to every subscriber without blocking.
func (b *Bus) publish(s Snapshot) {
	if b == nil {
		return
	}
	s.Seq = b.seq.Add(1)
	b.latest.Store(&s)
	for _, ch := range *b.subs.Load() {
		select {
		case ch <- s:
		default: // slow subscriber: drop, the next snapshot supersedes this one
		}
	}
}

var global atomic.Pointer[Bus]

// Enable installs a fresh process-global bus and returns it. interval is
// the per-Task minimum time between snapshots: 0 selects DefaultInterval,
// negative publishes on every Step (tests want that).
func Enable(interval time.Duration) *Bus {
	if interval == 0 {
		interval = DefaultInterval
	}
	b := NewBus(interval)
	global.Store(b)
	return b
}

// Disable removes the process-global bus; subsequent Task operations
// become no-ops.
func Disable() { global.Store(nil) }

// B returns the installed bus, or nil when disabled.
func B() *Bus { return global.Load() }

// Enabled reports whether a process-global bus is installed.
func Enabled() bool { return global.Load() != nil }

// Task is one long-running operation publishing to a bus. A nil Task (the
// disabled default) is a valid no-op, so instrumented loops hold the
// handle unconditionally.
type Task struct {
	bus     *Bus
	source  string
	total   int64
	extras  []string
	start   time.Time
	done    atomic.Int64
	lastPub atomic.Int64 // nanoseconds since start of the last publish
}

// Start begins a task on the process-global bus: source names the
// operation ("explore/enumerate"), total is the known amount of work (0
// for unknown), and extras are obs metric names whose current values ride
// along in every snapshot. Returns nil — a no-op task — when no bus is
// installed.
func Start(source string, total int64, extras ...string) *Task {
	return StartOn(B(), source, total, extras...)
}

// StartOn is Start against an explicit bus (nil bus returns a nil task).
func StartOn(b *Bus, source string, total int64, extras ...string) *Task {
	if b == nil {
		return nil
	}
	t := &Task{bus: b, source: source, total: total, extras: extras, start: time.Now()}
	t.lastPub.Store(-int64(b.interval)) // first Step may publish immediately
	return t
}

// Step records n completed work units and publishes a snapshot when the
// bus's throttle interval has passed. Nil-safe; this is the hot-path call.
func (t *Task) Step(n int64) {
	if t == nil {
		return
	}
	t.done.Add(n)
	elapsed := time.Since(t.start)
	last := t.lastPub.Load()
	if elapsed.Nanoseconds()-last < t.bus.interval.Nanoseconds() {
		return
	}
	if !t.lastPub.CompareAndSwap(last, elapsed.Nanoseconds()) {
		return // another goroutine is publishing this tick
	}
	t.bus.publish(t.snapshot(elapsed, false))
}

// End publishes the final snapshot unconditionally. Nil-safe.
func (t *Task) End() {
	if t == nil {
		return
	}
	t.bus.publish(t.snapshot(time.Since(t.start), true))
}

// snapshot assembles the current state: done count, throughput, ETA from
// the remaining work, and the sampled extra metrics.
func (t *Task) snapshot(elapsed time.Duration, final bool) Snapshot {
	done := t.done.Load()
	s := Snapshot{
		Source:  t.source,
		Done:    done,
		Total:   t.total,
		Elapsed: elapsed.Seconds(),
		Final:   final,
	}
	if sec := elapsed.Seconds(); sec > 0 {
		s.Rate = float64(done) / sec
	}
	if t.total > 0 && done > 0 && done < t.total && s.Rate > 0 {
		s.ETA = float64(t.total-done) / s.Rate
	}
	if len(t.extras) > 0 {
		if snap := obs.M().Snapshot(); snap != nil {
			s.Extra = make(map[string]int64, len(t.extras))
			for _, name := range t.extras {
				if v, ok := snap[name]; ok {
					s.Extra[name] = v
				}
			}
		}
	}
	return s
}
