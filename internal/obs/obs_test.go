package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisabledIsNoop(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled() after Disable()")
	}
	if T() != nil || M() != nil {
		t.Fatal("disabled state must hand out nil tracer/registry")
	}
	sp := Start(nil, "root")
	if sp != nil {
		t.Fatal("Start must return nil when disabled")
	}
	child := sp.Start("child")
	if child != nil {
		t.Fatal("child of a nil span must be nil")
	}
	child.End()
	sp.End()
	c := C("x")
	if c != nil {
		t.Fatal("C must return nil when disabled")
	}
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	G("g").Set(7)
	if G("g").Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	if M().Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	var buf bytes.Buffer
	if err := T().WriteNDJSON(&buf); err != nil || buf.Len() != 0 {
		t.Fatal("nil tracer must write nothing")
	}
}

func TestSpanHierarchyAndExport(t *testing.T) {
	tr, _ := Enable(0)
	defer Disable()

	root := Start(nil, "prepare")
	child := Start(root, "atpg/CPU")
	grand := child.Start("atpg/CPU/podem")
	grand.End()
	child.End()
	root.End()

	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	// End order: grand, child, root.
	if recs[0].Name != "atpg/CPU/podem" || recs[2].Name != "prepare" {
		t.Fatalf("unexpected record order: %+v", recs)
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if byName["prepare"].Parent != 0 {
		t.Error("root span must have parent 0")
	}
	if byName["atpg/CPU"].Parent != byName["prepare"].ID {
		t.Error("child must point at root")
	}
	if byName["atpg/CPU/podem"].Parent != byName["atpg/CPU"].ID {
		t.Error("grandchild must point at child")
	}

	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("NDJSON has %d lines, want 3", len(lines))
	}
	for _, line := range lines {
		var obj struct {
			ID      uint64 `json:"id"`
			Parent  uint64 `json:"parent"`
			Name    string `json:"name"`
			StartUS int64  `json:"start_us"`
			DurUS   int64  `json:"dur_us"`
		}
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("invalid NDJSON line %q: %v", line, err)
		}
		if obj.Name == "" || obj.ID == 0 {
			t.Fatalf("incomplete record %q", line)
		}
	}
}

func TestRingBufferWraps(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Start("s").End()
	}
	recs := tr.Records()
	if len(recs) != 4 {
		t.Fatalf("ring kept %d records, want 4", len(recs))
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	// Oldest-first: the retained IDs are 7,8,9,10.
	for i, r := range recs {
		if want := uint64(7 + i); r.ID != want {
			t.Fatalf("record %d has ID %d, want %d", i, r.ID, want)
		}
	}
}

func TestMetricsRegistry(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("atpg.backtracks")
	if c != m.Counter("atpg.backtracks") {
		t.Fatal("counter handle must be stable")
	}
	c.Inc()
	c.Add(41)
	m.Gauge("ccg.nodes").Set(17)
	snap := m.Snapshot()
	if snap["atpg.backtracks"] != 42 || snap["ccg.nodes"] != 17 {
		t.Fatalf("snapshot = %v", snap)
	}

	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]int64
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("WriteJSON output is not valid JSON: %v\n%s", err, buf.String())
	}
	if decoded["atpg.backtracks"] != 42 || decoded["ccg.nodes"] != 17 {
		t.Fatalf("decoded = %v", decoded)
	}
}

func TestCountersAreRaceFree(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Counter("n").Inc()
			}
		}()
	}
	wg.Wait()
	if v := m.Counter("n").Value(); v != 8000 {
		t.Fatalf("counter = %d, want 8000", v)
	}
}

func TestSummarize(t *testing.T) {
	recs := []SpanRecord{
		{ID: 1, Name: "prepare", Dur: 10 * time.Millisecond},
		{ID: 2, Name: "atpg/CPU", Dur: 6 * time.Millisecond},
		{ID: 3, Name: "atpg/GCD", Dur: 2 * time.Millisecond},
		{ID: 4, Name: "synth/CPU", Dur: time.Millisecond},
	}
	stats := Summarize(recs)
	if len(stats) != 3 {
		t.Fatalf("got %d phases, want 3", len(stats))
	}
	if stats[0].Phase != "prepare" || stats[1].Phase != "atpg" {
		t.Fatalf("unexpected ordering: %+v", stats)
	}
	if stats[1].Count != 2 || stats[1].Total != 8*time.Millisecond || stats[1].Max != 6*time.Millisecond {
		t.Fatalf("atpg aggregate wrong: %+v", stats[1])
	}
	text := FormatSummary(stats)
	for _, want := range []string{"phase", "prepare", "atpg", "synth"} {
		if !strings.Contains(text, want) {
			t.Errorf("summary missing %q:\n%s", want, text)
		}
	}
	if FormatSummary(nil) != "(no spans recorded)\n" {
		t.Error("empty summary placeholder missing")
	}
}
