package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// PhaseStat aggregates the spans of one flow phase — the first
// '/'-separated segment of the span name, so "atpg/CPU" and "atpg/GCD"
// both land in phase "atpg".
type PhaseStat struct {
	Phase string
	Count int
	Total time.Duration
	Max   time.Duration
}

// Summarize groups span records by phase. Parent spans (e.g. "prepare")
// aggregate separately from their children (e.g. "synth/CPU"), so the
// table reads as an inclusive-time profile per phase.
func Summarize(recs []SpanRecord) []PhaseStat {
	agg := map[string]*PhaseStat{}
	for _, r := range recs {
		phase := r.Name
		if i := strings.IndexByte(phase, '/'); i >= 0 {
			phase = phase[:i]
		}
		st := agg[phase]
		if st == nil {
			st = &PhaseStat{Phase: phase}
			agg[phase] = st
		}
		st.Count++
		st.Total += r.Dur
		if r.Dur > st.Max {
			st.Max = r.Dur
		}
	}
	out := make([]PhaseStat, 0, len(agg))
	for _, st := range agg {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}

// FormatSummary renders phase statistics as an aligned text table.
func FormatSummary(stats []PhaseStat) string {
	if len(stats) == 0 {
		return "(no spans recorded)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "  %-14s %6s %12s %12s\n", "phase", "spans", "total", "max")
	for _, st := range stats {
		fmt.Fprintf(&b, "  %-14s %6d %12s %12s\n",
			st.Phase, st.Count, st.Total.Round(time.Microsecond), st.Max.Round(time.Microsecond))
	}
	return b.String()
}
