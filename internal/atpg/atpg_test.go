package atpg

import (
	"testing"

	"repro/internal/fsim"
	"repro/internal/gate"
	"repro/internal/rtl"
	"repro/internal/synth"
)

func fullAdder() *gate.Netlist {
	n := &gate.Netlist{Name: "fa"}
	a := n.Add(gate.Input)
	b := n.Add(gate.Input)
	cin := n.Add(gate.Input)
	axb := n.Add(gate.Xor, a, b)
	sum := n.Add(gate.Xor, axb, cin)
	ab := n.Add(gate.And, a, b)
	caxb := n.Add(gate.And, cin, axb)
	cout := n.Add(gate.Or, ab, caxb)
	n.MarkPO(sum, "sum")
	n.MarkPO(cout, "cout")
	return n
}

// verify checks that the generated patterns really detect the claimed
// number of faults via independent fault simulation.
func verify(t *testing.T, n *gate.Netlist, res *Result) {
	t.Helper()
	faults := n.Faults()
	fr, err := fsim.Combinational(n, res.Patterns, faults)
	if err != nil {
		t.Fatalf("fsim: %v", err)
	}
	if fr.Detected < res.Stats.Detected {
		t.Errorf("fsim detects %d faults, ATPG claimed %d", fr.Detected, res.Stats.Detected)
	}
}

func TestFullAdder100Percent(t *testing.T) {
	n := fullAdder()
	res, err := Generate(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FaultCoverage() != 100 {
		t.Errorf("coverage = %.1f%%, want 100%% (stats %+v)", res.Stats.FaultCoverage(), res.Stats)
	}
	if res.Stats.Aborted != 0 {
		t.Errorf("aborted = %d, want 0", res.Stats.Aborted)
	}
	verify(t, n, res)
}

func TestRedundantFaultProvedUntestable(t *testing.T) {
	// z = a OR (a AND b): the AND gate is redundant; its sa0 is untestable.
	n := &gate.Netlist{Name: "red"}
	a := n.Add(gate.Input)
	b := n.Add(gate.Input)
	ab := n.Add(gate.And, a, b)
	z := n.Add(gate.Or, a, ab)
	n.MarkPO(z, "z")
	res, err := Generate(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Untestable == 0 {
		t.Errorf("expected some untestable faults, stats %+v", res.Stats)
	}
	if res.Stats.TestEfficiency() != 100 {
		t.Errorf("test efficiency = %.1f%%, want 100%%", res.Stats.TestEfficiency())
	}
	verify(t, n, res)
}

func TestFullScanSequentialCore(t *testing.T) {
	// An RTL core with registers: full-scan ATPG treats DFFs as pseudo
	// PIs/POs and should reach high coverage.
	c := must(rtl.NewCore("seq").
		In("a", 4).In("b", 4).
		Out("z", 4).
		Reg("r1", 4).Reg("r2", 4).
		Unit(rtl.Unit{Name: "add", Op: rtl.OpAdd, Width: 4}).
		Wire("a", "r1.d").
		Wire("b", "r2.d").
		Wire("r1.q", "add.in0").
		Wire("r2.q", "add.in1").
		Wire("add.out", "z").
		Build())
	sr, err := synth.Synthesize(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Generate(sr.Netlist, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The adder's unused carry-out makes its top-bit carry cone genuinely
	// redundant, so demand full *efficiency*, not full coverage.
	if res.Stats.TestEfficiency() < 99.9 {
		t.Errorf("efficiency = %.1f%%, want 100%% (stats %+v)", res.Stats.TestEfficiency(), res.Stats)
	}
	if res.Stats.FaultCoverage() < 85 {
		t.Errorf("coverage = %.1f%%, want >= 85%% (stats %+v)", res.Stats.FaultCoverage(), res.Stats)
	}
	for _, p := range res.Patterns {
		if p.State == nil {
			t.Fatal("pattern missing scan state for sequential netlist")
		}
	}
	verify(t, sr.Netlist, res)
}

func TestMuxHeavyCircuit(t *testing.T) {
	c := must(rtl.NewCore("muxy").
		In("a", 4).In("b", 4).In("x", 4).In("y", 4).In("s", 2).
		Out("z", 4).
		Mux("m", 4, 4).
		Wire("a", "m.in0").Wire("b", "m.in1").Wire("x", "m.in2").Wire("y", "m.in3").
		Wire("s", "m.sel").
		Wire("m.out", "z").
		Build())
	sr, err := synth.Synthesize(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Generate(sr.Netlist, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FaultCoverage() < 99 {
		t.Errorf("coverage = %.1f%% (stats %+v)", res.Stats.FaultCoverage(), res.Stats)
	}
	verify(t, sr.Netlist, res)
}

func TestCloudCoverage(t *testing.T) {
	// Random-logic cloud: most faults should be testable; efficiency must
	// account for every fault.
	c := must(rtl.NewCore("cloudy").
		In("a", 8).
		Out("z", 4).
		Cloud("ctl", 1, 8, 4, 120).
		Wire("a", "ctl.in0").
		Wire("ctl.out", "z").
		Build())
	sr, err := synth.Synthesize(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Generate(sr.Netlist, &Options{BacktrackLimit: 256})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Detected+st.Untestable+st.Aborted != st.Faults {
		t.Errorf("fault accounting broken: %+v", st)
	}
	if st.TestEfficiency() < 90 {
		t.Errorf("test efficiency = %.1f%%, want >= 90%% (%+v)", st.TestEfficiency(), st)
	}
	verify(t, sr.Netlist, res)
}

func TestCompactionKeepsCoverage(t *testing.T) {
	n := fullAdder()
	resFull, err := Generate(n, &Options{Compact: false})
	if err != nil {
		t.Fatal(err)
	}
	faults := n.Faults()
	compacted := Compact(n, resFull.Patterns, faults)
	if len(compacted) > len(resFull.Patterns) {
		t.Errorf("compaction grew the set: %d -> %d", len(resFull.Patterns), len(compacted))
	}
	fr1, _ := fsim.Combinational(n, resFull.Patterns, faults)
	fr2, _ := fsim.Combinational(n, compacted, faults)
	if fr2.Detected < fr1.Detected {
		t.Errorf("compaction lost coverage: %d -> %d", fr1.Detected, fr2.Detected)
	}
}

func TestStatsPercentagesEmpty(t *testing.T) {
	var s Stats
	if s.FaultCoverage() != 0 || s.TestEfficiency() != 0 {
		t.Error("zero-fault stats must report 0%")
	}
}

func TestDeterministic(t *testing.T) {
	n1 := fullAdder()
	n2 := fullAdder()
	r1, err := Generate(n1, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Generate(n2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Patterns) != len(r2.Patterns) {
		t.Fatalf("nondeterministic vector count: %d vs %d", len(r1.Patterns), len(r2.Patterns))
	}
	for i := range r1.Patterns {
		for j := range r1.Patterns[i].PI {
			if r1.Patterns[i].PI[j] != r2.Patterns[i].PI[j] {
				t.Fatalf("pattern %d differs", i)
			}
		}
	}
}
