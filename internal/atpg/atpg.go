// Package atpg generates full-scan combinational test patterns with the
// PODEM algorithm over a five-valued (good/faulty three-valued) algebra.
// It plays the role of the commercial combinational ATPG tool used in the
// paper's experiments (Section 6): each HSCAN/full-scan core is tested with
// patterns produced here, and the resulting vector counts feed the test
// application time model.
package atpg

import (
	"repro/internal/fsim"
	"repro/internal/gate"
	"repro/internal/obs"
)

// Three-valued signal levels.
const (
	lo byte = 0
	hi byte = 1
	xx byte = 2
)

// Options tunes test generation.
type Options struct {
	BacktrackLimit int    // per-fault PODEM backtrack budget (default 64)
	FillSeed       uint64 // seed for deterministic random fill of don't-cares
	Compact        bool   // reverse-order pattern compaction pass
	// RandomPatterns is the size of the random-pattern pre-pass that
	// cheaply clears the easy faults before deterministic PODEM runs
	// (default 192; set negative to disable).
	RandomPatterns int
}

func (o *Options) withDefaults() Options {
	v := Options{BacktrackLimit: 64, FillSeed: 0x5eed, Compact: true, RandomPatterns: 192}
	if o != nil {
		if o.BacktrackLimit > 0 {
			v.BacktrackLimit = o.BacktrackLimit
		}
		if o.FillSeed != 0 {
			v.FillSeed = o.FillSeed
		}
		v.Compact = o.Compact
		if o.RandomPatterns > 0 {
			v.RandomPatterns = o.RandomPatterns
		}
		if o.RandomPatterns < 0 {
			v.RandomPatterns = 0
		}
	}
	return v
}

// Stats reports test generation results.
type Stats struct {
	Faults     int // total collapsed faults
	Detected   int
	Untestable int // proven redundant
	Aborted    int // backtrack limit exceeded
	Vectors    int // patterns emitted (after compaction)
}

// FaultCoverage returns detected/faults in percent.
func (s Stats) FaultCoverage() float64 {
	if s.Faults == 0 {
		return 0
	}
	return 100 * float64(s.Detected) / float64(s.Faults)
}

// TestEfficiency returns (detected+untestable)/faults in percent.
func (s Stats) TestEfficiency() float64 {
	if s.Faults == 0 {
		return 0
	}
	return 100 * float64(s.Detected+s.Untestable) / float64(s.Faults)
}

// Result bundles the generated test set.
type Result struct {
	Patterns []gate.Pattern
	Stats    Stats
}

// Generate runs PODEM over the full fault list of n, fault-simulating
// each new pattern against the remaining faults (fault dropping).
func Generate(n *gate.Netlist, opts *Options) (*Result, error) {
	return GenerateFor(n, n.Faults(), opts)
}

// GenerateFor runs test generation for an explicit fault list.
func GenerateFor(n *gate.Netlist, faults []gate.Fault, opts *Options) (*Result, error) {
	o := opts.withDefaults()
	eng, err := newEngine(n)
	if err != nil {
		return nil, err
	}
	res := &Result{Stats: Stats{Faults: len(faults)}}
	detected := make([]bool, len(faults))
	rng := splitMix{o.FillSeed}

	// Phase 1: random-pattern pre-pass with fault dropping. Patterns that
	// detect nothing first are discarded immediately.
	if o.RandomPatterns > 0 {
		rpats := make([]gate.Pattern, o.RandomPatterns)
		nPI := len(n.PIs())
		nFF := len(n.DFFs())
		for i := range rpats {
			p := gate.Pattern{PI: make([]byte, nPI)}
			if nFF > 0 {
				p.State = make([]byte, nFF)
			}
			for j := range p.PI {
				p.PI[j] = byte(rng.next() & 1)
			}
			for j := range p.State {
				p.State[j] = byte(rng.next() & 1)
			}
			rpats[i] = p
		}
		fr, err := fsim.Combinational(n, rpats, faults)
		if err != nil {
			return nil, err
		}
		used := make([]bool, len(rpats))
		for fi, by := range fr.DetectedBy {
			if by >= 0 {
				detected[fi] = true
				res.Stats.Detected++
				used[by] = true
			}
		}
		for i, u := range used {
			if u {
				res.Patterns = append(res.Patterns, rpats[i])
			}
		}
	}

	// Phase 2: deterministic PODEM on the survivors.
	for fi, f := range faults {
		if detected[fi] {
			continue
		}
		outcome := eng.podem(f, o.BacktrackLimit)
		switch outcome {
		case outDetected:
			pat := eng.extractPattern(&rng)
			res.Patterns = append(res.Patterns, pat)
			detected[fi] = true
			res.Stats.Detected++
			// Drop other faults caught by this pattern.
			rem := make([]gate.Fault, 0, 32)
			remIdx := make([]int, 0, 32)
			for fj := fi + 1; fj < len(faults); fj++ {
				if !detected[fj] {
					rem = append(rem, faults[fj])
					remIdx = append(remIdx, fj)
				}
			}
			if len(rem) > 0 {
				fr, err := fsim.Combinational(n, []gate.Pattern{pat}, rem)
				if err != nil {
					return nil, err
				}
				for k, by := range fr.DetectedBy {
					if by >= 0 {
						detected[remIdx[k]] = true
						res.Stats.Detected++
					}
				}
			}
		case outUntestable:
			res.Stats.Untestable++
		case outAborted:
			res.Stats.Aborted++
		}
	}
	if o.Compact && len(res.Patterns) > 1 {
		res.Patterns = Compact(n, res.Patterns, faults)
	}
	res.Stats.Vectors = len(res.Patterns)
	obs.C("atpg.faults").Add(int64(res.Stats.Faults))
	obs.C("atpg.detected").Add(int64(res.Stats.Detected))
	obs.C("atpg.untestable").Add(int64(res.Stats.Untestable))
	obs.C("atpg.aborted_faults").Add(int64(res.Stats.Aborted))
	obs.C("atpg.vectors").Add(int64(res.Stats.Vectors))
	return res, nil
}

// Compact keeps only patterns that detect new faults when the set is
// fault-simulated in reverse order (classic reverse-order compaction).
func Compact(n *gate.Netlist, pats []gate.Pattern, faults []gate.Fault) []gate.Pattern {
	rev := make([]gate.Pattern, len(pats))
	for i, p := range pats {
		rev[len(pats)-1-i] = p
	}
	covered := make([]bool, len(faults))
	var kept []gate.Pattern
	remaining := faults
	remIdx := make([]int, len(faults))
	for i := range remIdx {
		remIdx[i] = i
	}
	for _, p := range rev {
		fr, err := fsim.Combinational(n, []gate.Pattern{p}, remaining)
		if err != nil {
			return pats
		}
		hit := false
		nextRem := remaining[:0:0]
		nextIdx := remIdx[:0:0]
		for k, by := range fr.DetectedBy {
			if by >= 0 {
				covered[remIdx[k]] = true
				hit = true
			} else {
				nextRem = append(nextRem, remaining[k])
				nextIdx = append(nextIdx, remIdx[k])
			}
		}
		if hit {
			kept = append(kept, p)
		}
		remaining, remIdx = nextRem, nextIdx
	}
	if len(kept) == 0 {
		return pats
	}
	return kept
}

type splitMix struct{ state uint64 }

func (r *splitMix) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
