package atpg

import (
	"repro/internal/gate"
	"repro/internal/obs"
)

// outcome of a PODEM run.
type outcome int

const (
	outDetected outcome = iota
	outUntestable
	outAborted
)

// engine holds per-netlist PODEM state, reused across faults.
type engine struct {
	n     *gate.Netlist
	order []int
	// good and faulty three-valued line values.
	gv, fv []byte
	// controllable lines (PIs and DFF outputs under full scan) and their
	// index in the assignment vector.
	ctl    []int
	ctlIdx map[int]int
	assign []byte
	// observable lines: POs plus DFF data inputs (scan capture).
	obs     map[int]bool
	obsDist []int // min fanout hops from each line to an observable
	fanouts [][]int
	// SCOAP-style controllability costs.
	cc0, cc1 []int
	// constant source lines (not in the evaluation order).
	consts []int
	// current fault under test.
	f         gate.Fault
	site      int
	victimDFF bool
	// observability hooks (nil when obs is disabled; Add on nil is a
	// no-op, so the search pays one pointer check per podem run).
	cBacktracks, cImplications *obs.Counter
}

func newEngine(n *gate.Netlist) (*engine, error) {
	order, err := n.Order()
	if err != nil {
		return nil, err
	}
	e := &engine{
		n:       n,
		order:   order,
		gv:      make([]byte, len(n.Gates)),
		fv:      make([]byte, len(n.Gates)),
		ctlIdx:  make(map[int]int),
		obs:     make(map[int]bool),
		fanouts: n.Fanouts(),
	}
	for _, pi := range n.PIs() {
		e.ctlIdx[pi] = len(e.ctl)
		e.ctl = append(e.ctl, pi)
	}
	for _, d := range n.DFFs() {
		e.ctlIdx[d] = len(e.ctl)
		e.ctl = append(e.ctl, d)
	}
	e.assign = make([]byte, len(e.ctl))
	for _, po := range n.POs {
		e.obs[po] = true
	}
	for _, d := range n.DFFs() {
		e.obs[n.Gates[d].Fanin[0]] = true
	}
	for i, g := range n.Gates {
		if g.Type == gate.Const0 || g.Type == gate.Const1 {
			e.consts = append(e.consts, i)
		}
	}
	e.computeObsDist()
	e.computeControllability()
	e.cBacktracks = obs.C("atpg.backtracks")
	e.cImplications = obs.C("atpg.implications")
	return e, nil
}

func (e *engine) computeObsDist() {
	const inf = 1 << 30
	e.obsDist = make([]int, len(e.n.Gates))
	for i := range e.obsDist {
		e.obsDist[i] = inf
	}
	// BFS backwards from observables over fanin edges.
	var queue []int
	for line := range e.obs {
		e.obsDist[line] = 0
		queue = append(queue, line)
	}
	for len(queue) > 0 {
		line := queue[0]
		queue = queue[1:]
		for _, f := range e.n.Gates[line].Fanin {
			if e.obsDist[f] > e.obsDist[line]+1 {
				e.obsDist[f] = e.obsDist[line] + 1
				queue = append(queue, f)
			}
		}
	}
}

// computeControllability assigns simplified SCOAP CC0/CC1 costs.
func (e *engine) computeControllability() {
	const inf = 1 << 28
	e.cc0 = make([]int, len(e.n.Gates))
	e.cc1 = make([]int, len(e.n.Gates))
	for i := range e.cc0 {
		e.cc0[i], e.cc1[i] = inf, inf
	}
	for _, c := range e.ctl {
		e.cc0[c], e.cc1[c] = 1, 1
	}
	// Constant sources sit outside the evaluation order; pin their costs
	// here (one value free, the other unreachable).
	for _, id := range e.consts {
		if e.n.Gates[id].Type == gate.Const1 {
			e.cc1[id] = 0
		} else {
			e.cc0[id] = 0
		}
	}
	min := func(a, b int) int {
		if a < b {
			return a
		}
		return b
	}
	for _, id := range e.order {
		g := &e.n.Gates[id]
		in := g.Fanin
		switch g.Type {
		case gate.Buf:
			e.cc0[id] = e.cc0[in[0]] + 1
			e.cc1[id] = e.cc1[in[0]] + 1
		case gate.Inv:
			e.cc0[id] = e.cc1[in[0]] + 1
			e.cc1[id] = e.cc0[in[0]] + 1
		case gate.And:
			e.cc0[id] = min(e.cc0[in[0]], e.cc0[in[1]]) + 1
			e.cc1[id] = e.cc1[in[0]] + e.cc1[in[1]] + 1
		case gate.Nand:
			e.cc1[id] = min(e.cc0[in[0]], e.cc0[in[1]]) + 1
			e.cc0[id] = e.cc1[in[0]] + e.cc1[in[1]] + 1
		case gate.Or:
			e.cc1[id] = min(e.cc1[in[0]], e.cc1[in[1]]) + 1
			e.cc0[id] = e.cc0[in[0]] + e.cc0[in[1]] + 1
		case gate.Nor:
			e.cc0[id] = min(e.cc1[in[0]], e.cc1[in[1]]) + 1
			e.cc1[id] = e.cc0[in[0]] + e.cc0[in[1]] + 1
		case gate.Xor, gate.Xnor:
			a0, a1 := e.cc0[in[0]], e.cc1[in[0]]
			b0, b1 := e.cc0[in[1]], e.cc1[in[1]]
			same := min(a0+b0, a1+b1) + 1
			diff := min(a0+b1, a1+b0) + 1
			if g.Type == gate.Xor {
				e.cc0[id], e.cc1[id] = same, diff
			} else {
				e.cc0[id], e.cc1[id] = diff, same
			}
		case gate.Mux:
			s0, s1 := e.cc0[in[2]], e.cc1[in[2]]
			e.cc0[id] = min(s0+e.cc0[in[0]], s1+e.cc0[in[1]]) + 1
			e.cc1[id] = min(s0+e.cc1[in[0]], s1+e.cc1[in[1]]) + 1
		case gate.Const0:
			e.cc0[id] = 0
		case gate.Const1:
			e.cc1[id] = 0
		}
	}
}

// three-valued operators.
func and3(a, b byte) byte {
	if a == lo || b == lo {
		return lo
	}
	if a == hi && b == hi {
		return hi
	}
	return xx
}

func or3(a, b byte) byte {
	if a == hi || b == hi {
		return hi
	}
	if a == lo && b == lo {
		return lo
	}
	return xx
}

func inv3(a byte) byte {
	switch a {
	case lo:
		return hi
	case hi:
		return lo
	}
	return xx
}

func xor3(a, b byte) byte {
	if a == xx || b == xx {
		return xx
	}
	return a ^ b
}

func mux3(a, b, s byte) byte {
	switch s {
	case lo:
		return a
	case hi:
		return b
	}
	if a == b && a != xx {
		return a
	}
	return xx
}

func eval3(t gate.Type, a, b, c byte) byte {
	switch t {
	case gate.Buf:
		return a
	case gate.Inv:
		return inv3(a)
	case gate.And:
		return and3(a, b)
	case gate.Or:
		return or3(a, b)
	case gate.Nand:
		return inv3(and3(a, b))
	case gate.Nor:
		return inv3(or3(a, b))
	case gate.Xor:
		return xor3(a, b)
	case gate.Xnor:
		return inv3(xor3(a, b))
	case gate.Mux:
		return mux3(a, b, c)
	case gate.Const0:
		return lo
	case gate.Const1:
		return hi
	}
	return xx
}

// imply performs full forward implication of good and faulty circuits from
// the current assignment.
func (e *engine) imply() {
	for i, c := range e.ctl {
		e.gv[c] = e.assign[i]
		e.fv[c] = e.assign[i]
	}
	// Constant lines are sources outside the evaluation order; their
	// values must be pinned every pass (the arrays are reused).
	for _, id := range e.consts {
		v := lo
		if e.n.Gates[id].Type == gate.Const1 {
			v = hi
		}
		e.gv[id] = v
		e.fv[id] = v
	}
	// Stem fault on a controllable line: faulty value forced.
	if e.f.Branch < 0 {
		if _, isCtl := e.ctlIdx[e.f.Line]; isCtl {
			e.fv[e.f.Line] = e.f.Stuck
		}
	}
	for _, id := range e.order {
		g := &e.n.Gates[id]
		var ga, gb, gc, fa, fb, fc byte
		switch len(g.Fanin) {
		case 3:
			gc, fc = e.gv[g.Fanin[2]], e.faninFv(id, 2)
			fallthrough
		case 2:
			gb, fb = e.gv[g.Fanin[1]], e.faninFv(id, 1)
			fallthrough
		case 1:
			ga, fa = e.gv[g.Fanin[0]], e.faninFv(id, 0)
		}
		e.gv[id] = eval3(g.Type, ga, gb, gc)
		e.fv[id] = eval3(g.Type, fa, fb, fc)
		if e.f.Branch < 0 && id == e.f.Line {
			e.fv[id] = e.f.Stuck
		}
	}
}

// faninFv returns the faulty value of a fanin as seen by gate id (with
// branch-fault corruption).
func (e *engine) faninFv(id, branch int) byte {
	if e.f.Branch == branch && e.f.Line == id {
		return e.f.Stuck
	}
	return e.fv[e.n.Gates[id].Fanin[branch]]
}

// detected reports whether a D or D' has reached an observable line.
func (e *engine) detected() bool {
	for line := range e.obs {
		if e.gv[line] != xx && e.fv[line] != xx && e.gv[line] != e.fv[line] {
			return true
		}
	}
	// Branch fault victimizing a DFF: the corrupted capture is directly
	// observable through the scan chain.
	if e.victimDFF {
		if g := e.gv[e.site]; g != xx && g != e.f.Stuck {
			return true
		}
	}
	return false
}

// activated reports whether the fault site carries a definite discrepancy.
func (e *engine) activated() bool {
	g := e.gv[e.site]
	return g != xx && g != e.f.Stuck
}

// activationImpossible reports whether the good value at the site is fixed
// at the stuck value.
func (e *engine) activationImpossible() bool {
	return e.gv[e.site] == e.f.Stuck
}

// dFrontier lists gates with an undetermined output and a D on some fanin.
func (e *engine) dFrontier() []int {
	var out []int
	for _, id := range e.order {
		if e.gv[id] != xx && e.fv[id] != xx {
			continue
		}
		g := &e.n.Gates[id]
		for b := range g.Fanin {
			fg := e.gv[g.Fanin[b]]
			ff := e.faninFv(id, b)
			if fg != xx && ff != xx && fg != ff {
				out = append(out, id)
				break
			}
		}
	}
	return out
}

// xPathExists checks whether an X-path leads from any frontier gate to an
// observable line.
func (e *engine) xPathExists(frontier []int) bool {
	seen := make(map[int]bool)
	var stack []int
	for _, id := range frontier {
		stack = append(stack, id)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		seen[id] = true
		if e.obs[id] {
			return true
		}
		for _, fo := range e.fanouts[id] {
			if e.gv[fo] == xx || e.fv[fo] == xx {
				stack = append(stack, fo)
			}
		}
	}
	return false
}

// objective returns the next (line, value) goal, or ok=false when no useful
// objective exists (dead end).
func (e *engine) objective() (line int, val byte, ok bool) {
	if !e.activated() {
		if e.gv[e.site] == xx {
			return e.site, inv3(e.f.Stuck), true // want complement of stuck
		}
		return 0, 0, false
	}
	frontier := e.dFrontier()
	if len(frontier) == 0 {
		return 0, 0, false
	}
	// Choose the frontier gate closest to an observable.
	best := frontier[0]
	for _, id := range frontier[1:] {
		if e.obsDist[id] < e.obsDist[best] {
			best = id
		}
	}
	g := &e.n.Gates[best]
	// Set an X fanin to the non-controlling value.
	pick := func(want byte) (int, byte, bool) {
		for b, f := range g.Fanin {
			if e.gv[f] == xx && !(e.f.Branch == b && e.f.Line == best) {
				return f, want, true
			}
		}
		return 0, 0, false
	}
	switch g.Type {
	case gate.And, gate.Nand:
		return pick(hi)
	case gate.Or, gate.Nor:
		return pick(lo)
	case gate.Xor, gate.Xnor, gate.Buf, gate.Inv:
		return pick(lo)
	case gate.Mux:
		// Steer the select toward the D-carrying data input, or propagate
		// a D on the select by differentiating the data inputs.
		dIn := -1
		for b := 0; b < 2; b++ {
			fg, ff := e.gv[g.Fanin[b]], e.faninFv(best, b)
			if fg != xx && ff != xx && fg != ff {
				dIn = b
			}
		}
		if dIn >= 0 && e.gv[g.Fanin[2]] == xx {
			return g.Fanin[2], byte(dIn), true
		}
		// D on select: need in0 != in1.
		if e.gv[g.Fanin[0]] == xx {
			return g.Fanin[0], lo, true
		}
		if e.gv[g.Fanin[1]] == xx {
			return g.Fanin[1], inv3(e.gv[g.Fanin[0]]), true
		}
		return 0, 0, false
	}
	return 0, 0, false
}

// backtrace walks an objective back to an unassigned controllable line.
func (e *engine) backtrace(line int, val byte) (ctlLine int, ctlVal byte, ok bool) {
	for steps := 0; steps < 4*len(e.n.Gates)+8; steps++ {
		if _, isCtl := e.ctlIdx[line]; isCtl {
			if e.gv[line] != xx {
				return 0, 0, false // already assigned: conflict
			}
			return line, val, true
		}
		g := &e.n.Gates[line]
		pickX := func(prefer byte) int {
			bestIn, bestCost := -1, 1<<30
			for _, f := range g.Fanin {
				if e.gv[f] != xx {
					continue
				}
				cost := e.cc0[f]
				if prefer == hi {
					cost = e.cc1[f]
				}
				if cost < bestCost {
					bestIn, bestCost = f, cost
				}
			}
			return bestIn
		}
		switch g.Type {
		case gate.Buf:
			line = g.Fanin[0]
		case gate.Inv:
			line, val = g.Fanin[0], inv3(val)
		case gate.And, gate.Nand:
			want := val
			if g.Type == gate.Nand {
				want = inv3(val)
			}
			// want==1: all inputs 1 (pick any X); want==0: one input 0.
			in := pickX(want)
			if in < 0 {
				return 0, 0, false
			}
			line, val = in, want
		case gate.Or, gate.Nor:
			want := val
			if g.Type == gate.Nor {
				want = inv3(val)
			}
			in := pickX(want)
			if in < 0 {
				return 0, 0, false
			}
			line, val = in, want
		case gate.Xor, gate.Xnor:
			a, b := g.Fanin[0], g.Fanin[1]
			target := val
			if g.Type == gate.Xnor {
				target = inv3(val)
			}
			switch {
			case e.gv[a] == xx && e.gv[b] == xx:
				line, val = a, lo
			case e.gv[a] == xx:
				line, val = a, target^e.gv[b]
			case e.gv[b] == xx:
				line, val = b, target^e.gv[a]
			default:
				return 0, 0, false
			}
		case gate.Mux:
			in0, in1, sel := g.Fanin[0], g.Fanin[1], g.Fanin[2]
			switch e.gv[sel] {
			case lo:
				line = in0
			case hi:
				line = in1
			default:
				// Choose the cheaper steering.
				c0 := e.cc0[sel]
				c1 := e.cc1[sel]
				if c0 <= c1 {
					line, val = sel, lo
				} else {
					line, val = sel, hi
				}
			}
		case gate.Const0, gate.Const1, gate.Input, gate.DFF:
			return 0, 0, false
		default:
			return 0, 0, false
		}
	}
	return 0, 0, false
}

type decision struct {
	ctl     int // index into e.ctl
	flipped bool
}

// podem runs the PODEM search for fault f.
func (e *engine) podem(f gate.Fault, backtrackLimit int) outcome {
	e.f = f
	e.site = e.n.FaultSite(f)
	e.victimDFF = f.Branch >= 0 && e.n.Gates[f.Line].Type == gate.DFF
	for i := range e.assign {
		e.assign[i] = xx
	}
	var stack []decision
	backtracks, implications := 0, 0
	defer func() {
		e.cBacktracks.Add(int64(backtracks))
		e.cImplications.Add(int64(implications))
	}()
	for {
		e.imply()
		implications++
		if e.detected() {
			return outDetected
		}
		fail := false
		if e.activationImpossible() {
			fail = true
		} else if e.activated() && !e.victimDFF {
			frontier := e.dFrontier()
			if len(frontier) == 0 || !e.xPathExists(frontier) {
				fail = true
			}
		}
		var objLine int
		var objVal byte
		if !fail {
			var ok bool
			objLine, objVal, ok = e.objective()
			if !ok {
				fail = true
			}
		}
		var ctlLine int
		var ctlVal byte
		if !fail {
			var ok bool
			ctlLine, ctlVal, ok = e.backtrace(objLine, objVal)
			if !ok {
				fail = true
			}
		}
		if fail {
			// Backtrack: flip the most recent unflipped decision.
			flipped := false
			for len(stack) > 0 {
				top := &stack[len(stack)-1]
				if !top.flipped {
					top.flipped = true
					e.assign[top.ctl] ^= 1
					flipped = true
					backtracks++
					break
				}
				e.assign[top.ctl] = xx
				stack = stack[:len(stack)-1]
			}
			if !flipped {
				return outUntestable
			}
			if backtracks > backtrackLimit {
				return outAborted
			}
			continue
		}
		ci := e.ctlIdx[ctlLine]
		e.assign[ci] = ctlVal
		stack = append(stack, decision{ctl: ci})
	}
}

// extractPattern converts the current assignment into a concrete pattern,
// randomly filling don't-cares.
func (e *engine) extractPattern(rng *splitMix) gate.Pattern {
	pis := e.n.PIs()
	dffs := e.n.DFFs()
	p := gate.Pattern{PI: make([]byte, len(pis))}
	if len(dffs) > 0 {
		p.State = make([]byte, len(dffs))
	}
	for i, line := range pis {
		v := e.assign[e.ctlIdx[line]]
		if v == xx {
			v = byte(rng.next() & 1)
		}
		p.PI[i] = v
	}
	for i, line := range dffs {
		v := e.assign[e.ctlIdx[line]]
		if v == xx {
			v = byte(rng.next() & 1)
		}
		p.State[i] = v
	}
	return p
}
