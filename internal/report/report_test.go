package report

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/systems"
)

var (
	sharedFlow   *core.Flow
	sharedPoints []explore.Point
)

func fixtures(t testing.TB) (*core.Flow, []explore.Point) {
	t.Helper()
	if sharedFlow == nil {
		f, err := core.Prepare(systems.System1(), nil)
		if err != nil {
			t.Fatalf("Prepare: %v", err)
		}
		points, err := explore.Enumerate(f)
		if err != nil {
			t.Fatalf("Enumerate: %v", err)
		}
		sharedFlow, sharedPoints = f, points
	}
	// Reset selection to min-area between tests.
	sel := map[string]int{}
	for _, c := range sharedFlow.Chip.TestableCores() {
		sel[c.Name] = 0
	}
	sharedFlow.SelectVersions(sel)
	return sharedFlow, sharedPoints
}

func TestVersionTableFigure6(t *testing.T) {
	f, _ := fixtures(t)
	cpu, _ := f.Chip.CoreByName("CPU")
	rows := VersionTable(cpu)
	if len(rows) < 3 {
		t.Fatalf("CPU ladder has %d rows, want >= 3 (Figure 6)", len(rows))
	}
	// Figure 6 values: V1 justifies AddrLo in 6, AddrHi in 2; the final
	// version does both in 1.
	if got := rows[0].Latencies["->AddrLo"]; got != 6 {
		t.Errorf("V1 ->AddrLo = %d, want 6", got)
	}
	if got := rows[0].Latencies["->AddrHi"]; got != 2 {
		t.Errorf("V1 ->AddrHi = %d, want 2", got)
	}
	last := rows[len(rows)-1]
	if last.Latencies["->AddrLo"] != 1 || last.Latencies["->AddrHi"] != 1 {
		t.Errorf("final version latencies = %v, want 1/1", last.Latencies)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Cells < rows[i-1].Cells {
			t.Errorf("overhead not monotone: %d then %d", rows[i-1].Cells, rows[i].Cells)
		}
	}
	text := FormatVersionTable("CPU", rows)
	if !strings.Contains(text, "Version 1") || !strings.Contains(text, "->AddrLo") {
		t.Errorf("formatted table missing content:\n%s", text)
	}
}

func TestWorkedExampleSection3(t *testing.T) {
	f, _ := fixtures(t)
	ex, err := WorkedExample(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Rows) < 3 {
		t.Fatalf("worked example has %d rows, want one per CPU version", len(ex.Rows))
	}
	// TAT must improve monotonically with faster CPU versions, and every
	// row follows vectors*period+tail.
	for i, r := range ex.Rows {
		if r.TAT != r.Vectors*r.Period+r.Tail {
			t.Errorf("row %d: TAT %d != %d*%d+%d", i, r.TAT, r.Vectors, r.Period, r.Tail)
		}
		if i > 0 && r.TAT > ex.Rows[i-1].TAT {
			t.Errorf("row %d: TAT grew with a faster CPU (%d -> %d)", i, ex.Rows[i-1].TAT, r.TAT)
		}
	}
	// FSCAN-BSCAN must be slower than every SOCET configuration (the
	// Section 3 point: 9115 vs 4728/2103/1578).
	for _, r := range ex.Rows {
		if ex.FscanBscanTAT <= r.TAT {
			t.Errorf("FSCAN-BSCAN TAT %d should exceed SOCET %s TAT %d", ex.FscanBscanTAT, r.Config, r.TAT)
		}
	}
}

func TestTable1(t *testing.T) {
	f, points := fixtures(t)
	rows := Table1(f, points)
	if len(rows) != 3 {
		t.Fatalf("Table 1 has %d rows, want 3", len(rows))
	}
	minArea, minLat, minTAT := rows[0], rows[1], rows[2]
	if minArea.AreaOv > minLat.AreaOv {
		t.Errorf("min-area row costs more than min-latency: %d vs %d", minArea.AreaOv, minLat.AreaOv)
	}
	if minTAT.TATime > minLat.TATime {
		t.Errorf("min-TAT row slower than min-latency: %d vs %d", minTAT.TATime, minLat.TATime)
	}
	// The paper's ~4.5x TAT spread; require >= 2x.
	if minArea.TATime < 2*minTAT.TATime {
		t.Errorf("TAT spread too small: %d vs %d", minArea.TATime, minTAT.TATime)
	}
	// All rows share the same coverage (same test sets).
	if minArea.FCov != minTAT.FCov || minArea.TestEff != minTAT.TestEff {
		t.Error("coverage must not depend on the design point")
	}
	if minArea.FCov < 90 || minArea.TestEff < 98 {
		t.Errorf("coverage %.1f / efficiency %.1f lower than expected", minArea.FCov, minArea.TestEff)
	}
}

func TestTable2Shape(t *testing.T) {
	f, points := fixtures(t)
	t2, err := MakeTable2(f, points)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's orderings (Table 2):
	if t2.HscanPct >= t2.FscanPct {
		t.Errorf("HSCAN %.1f%% should undercut FSCAN %.1f%%", t2.HscanPct, t2.FscanPct)
	}
	if t2.SocetMinAreaPct >= t2.BscanPct {
		t.Errorf("SOCET chip DFT %.1f%% should undercut boundary scan %.1f%%", t2.SocetMinAreaPct, t2.BscanPct)
	}
	if t2.SocetMinAreaPct > t2.SocetMinTATPct {
		t.Errorf("min-area SOCET %.1f%% should not exceed min-TAT %.1f%%", t2.SocetMinAreaPct, t2.SocetMinTATPct)
	}
	if t2.SocetMinTATTotalPct >= t2.FscanBscanTotalPct {
		t.Errorf("SOCET total %.1f%% should undercut FSCAN-BSCAN total %.1f%%",
			t2.SocetMinTATTotalPct, t2.FscanBscanTotalPct)
	}
	if t2.OrigCells < 6000 {
		t.Errorf("orig cells = %d, want ~8000", t2.OrigCells)
	}
}

func TestTable3Shape(t *testing.T) {
	f, points := fixtures(t)
	t3, err := MakeTable3(f, points, &Table3Options{Cycles: 96, FaultSample: 600})
	if err != nil {
		t.Fatal(err)
	}
	// Orig and HSCAN-only coverage is poor; DFT'd coverage is high — the
	// core message of Table 3.
	if t3.OrigFC >= 60 {
		t.Errorf("original chip FC %.1f%% suspiciously high", t3.OrigFC)
	}
	if t3.SocetFC < 90 {
		t.Errorf("SOCET FC %.1f%% too low", t3.SocetFC)
	}
	if t3.SocetFC != t3.FscanBscanFC {
		t.Error("SOCET and FSCAN-BSCAN apply the same test sets: equal FC expected")
	}
	if t3.OrigFC >= t3.SocetFC {
		t.Error("DFT must improve on the raw chip")
	}
	// SOCET's min-TAT point must be far faster than FSCAN-BSCAN; even the
	// min-area point wins (17,387 vs 36,152 in the paper).
	if t3.SocetMinArea >= t3.FscanBscanTAT {
		t.Errorf("SOCET min-area TAT %d should beat FSCAN-BSCAN %d", t3.SocetMinArea, t3.FscanBscanTAT)
	}
	if 2*t3.SocetMinTAT >= t3.FscanBscanTAT {
		t.Errorf("SOCET min-TAT %d should be at least 2x faster than FSCAN-BSCAN %d",
			t3.SocetMinTAT, t3.FscanBscanTAT)
	}
}

func TestFigure10Format(t *testing.T) {
	f, points := fixtures(t)
	_ = f
	fig := Figure10(points)
	if len(fig) != len(points) {
		t.Fatalf("figure has %d points, want %d", len(fig), len(points))
	}
	text := FormatFigure10(fig)
	if !strings.Contains(text, "TAT") {
		t.Error("missing header")
	}
	lines := strings.Count(text, "\n")
	if lines != len(points)+1 {
		t.Errorf("formatted %d lines, want %d", lines, len(points)+1)
	}
}

func TestSampleFaults(t *testing.T) {
	f, _ := fixtures(t)
	nl, err := core.BuildChipNetlist(f, false)
	if err != nil {
		t.Fatal(err)
	}
	faults := nl.Netlist.Faults()
	s := SampleFaults(faults, 100, 1)
	if len(s) != 100 {
		t.Errorf("sampled %d, want 100", len(s))
	}
	s2 := SampleFaults(faults, len(faults)+10, 1)
	if len(s2) != len(faults) {
		t.Error("oversampling should return all faults")
	}
}
