// Package report assembles every table and figure of the paper's
// evaluation (Section 6) from the flow results: the core version ladders
// (Figures 6 and 8), the Section 3 worked example, the design-space
// trade-off (Figure 10, Table 1), the area-overhead comparison (Table 2)
// and the testability comparison (Table 3). The cmd/ executables print
// these structures; bench_test.go regenerates them under `go test -bench`.
package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bscan"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/fsim"
	"repro/internal/gate"
	"repro/internal/soc"
	"repro/internal/trans"
)

// VersionRow is one row of a Figure 6/8-style version table.
type VersionRow struct {
	Label     string
	Latencies map[string]int // "D->A(7:0)"-style pair -> cycles
	Cells     int
}

// VersionTable lists the version ladder of one core: justification
// latency per output, propagation latency per input, and the transparency
// area overhead, exactly the columns of Figures 6 and 8.
func VersionTable(c *soc.Core) []VersionRow {
	var rows []VersionRow
	for _, v := range c.Versions {
		r := VersionRow{Label: v.Label, Latencies: map[string]int{}}
		for _, p := range c.RTL.Outputs() {
			r.Latencies["->"+p.Name] = v.JustLatency(p.Name)
		}
		for _, p := range c.RTL.Inputs() {
			r.Latencies[p.Name+"->"] = v.PropLatency(p.Name)
		}
		r.Cells = versionCells(v)
		rows = append(rows, r)
	}
	return rows
}

func versionCells(v *trans.Version) int {
	a := v.Area
	return a.Cells()
}

// FormatVersionTable renders the rows as an aligned text table.
func FormatVersionTable(name string, rows []VersionRow) string {
	if len(rows) == 0 {
		return name + ": no versions\n"
	}
	var keys []string
	for k := range rows[0].Latencies {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "%s transparency versions (latency cycles | overhead cells)\n", name)
	fmt.Fprintf(&b, "%-12s", "")
	for _, k := range keys {
		fmt.Fprintf(&b, "%12s", k)
	}
	fmt.Fprintf(&b, "%10s\n", "ovhd")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s", r.Label)
		for _, k := range keys {
			fmt.Fprintf(&b, "%12d", r.Latencies[k])
		}
		fmt.Fprintf(&b, "%10d\n", r.Cells)
	}
	return b.String()
}

// Section3 reproduces the worked example of Section 3: the DISPLAY's test
// application time under successive CPU versions, against FSCAN-BSCAN.
type Section3 struct {
	// PaperForm is TAT expressed as vectors x period + tail.
	Rows []Section3Row
	// FscanBscanTAT is the (ff+in)*V + ff+in-1 baseline for the same core.
	FscanBscanTAT int
}

// Section3Row is one configuration of the helper cores.
type Section3Row struct {
	Config  string
	Vectors int
	Period  int
	Tail    int
	TAT     int
}

// WorkedExample computes the Section 3 numbers on System 1: the DISPLAY
// core tested through PREPROCESSOR and CPU transparency, sweeping the CPU
// version (V1..Vn) with the PREPROCESSOR at its fastest (the paper assumes
// NUM->DB in one cycle).
func WorkedExample(f *core.Flow) (*Section3, error) {
	disp, ok := f.Chip.CoreByName("DISPLAY")
	if !ok {
		return nil, fmt.Errorf("report: no DISPLAY core")
	}
	cpu, ok := f.Chip.CoreByName("CPU")
	if !ok {
		return nil, fmt.Errorf("report: no CPU core")
	}
	prep, _ := f.Chip.CoreByName("PREPROCESSOR")
	out := &Section3{}
	saved := map[string]int{"CPU": cpu.Selected, "PREPROCESSOR": prep.Selected, "DISPLAY": disp.Selected}
	defer f.SelectVersions(saved)
	f.SelectVersions(map[string]int{"PREPROCESSOR": len(prep.Versions) - 1, "DISPLAY": 0})
	for vi := range cpu.Versions {
		f.SelectVersions(map[string]int{"CPU": vi})
		e, err := f.Evaluate()
		if err != nil {
			return nil, err
		}
		for _, cs := range e.Sched.Cores {
			if cs.Core != "DISPLAY" {
				continue
			}
			out.Rows = append(out.Rows, Section3Row{
				Config:  fmt.Sprintf("CPU %s", cpu.Versions[vi].Label),
				Vectors: cs.HSCANVectors,
				Period:  cs.Period,
				Tail:    cs.Tail,
				TAT:     cs.TAT,
			})
		}
	}
	out.FscanBscanTAT = bscan.DisplayExample(disp.RTL.FFCount(), internalIn(f.Chip, disp), disp.Vectors)
	return out, nil
}

func internalIn(ch *soc.Chip, c *soc.Core) int {
	bits := 0
	for _, p := range c.RTL.Inputs() {
		fromChip := false
		for _, n := range ch.DriversOf(c.Name, p.Name) {
			if n.FromCore == "" {
				fromChip = true
			}
		}
		if !fromChip {
			bits += p.Width
		}
	}
	return bits
}

// Table1Row is one row of Table 1 (design-space exploration).
type Table1Row struct {
	Desc    string
	AreaOv  int // chip-level DFT cells
	TATime  int
	FCov    float64
	TestEff float64
}

// Table1 reproduces the design-space exploration table: the minimum-area
// point, the minimum-TAT point, and the all-minimum-latency point, with
// fault coverage and test efficiency from the aggregated core test sets.
func Table1(f *core.Flow, points []explore.Point) []Table1Row {
	stats := f.AggregateTestStats()
	fc, te := stats.FaultCoverage(), stats.TestEfficiency()
	minArea := points[0]
	minTAT := explore.MinTATPoint(points)
	var allFast explore.Point
	for _, p := range points {
		fast := true
		for _, c := range f.Chip.TestableCores() {
			if p.Selection[c.Name] != len(c.Versions)-1 {
				fast = false
			}
		}
		if fast {
			allFast = p
		}
	}
	return []Table1Row{
		{Desc: fmt.Sprintf("Each core has min. area (1): %s", minArea.Label()), AreaOv: minArea.ChipCells, TATime: minArea.TAT, FCov: fc, TestEff: te},
		{Desc: fmt.Sprintf("Each core has min. latency (%d): %s", len(points), allFast.Label()), AreaOv: allFast.ChipCells, TATime: allFast.TAT, FCov: fc, TestEff: te},
		{Desc: fmt.Sprintf("Min. chip TApp.: %s", minTAT.Label()), AreaOv: minTAT.ChipCells, TATime: minTAT.TAT, FCov: fc, TestEff: te},
	}
}

// Table2 is the area-overhead comparison for one system. Percentages are
// of the original grid area (grid units weight big cells like boundary
// scan correctly; the paper's cell counts came from a real library).
type Table2 struct {
	System    string
	OrigCells int

	FscanPct float64 // core-level full scan
	HscanPct float64 // core-level HSCAN
	BscanPct float64 // chip-level boundary scan

	SocetMinAreaPct float64 // chip-level SOCET, min-area point
	SocetMinTATPct  float64 // chip-level SOCET, min-TAT point

	FscanBscanTotalPct   float64
	SocetMinAreaTotalPct float64
	SocetMinTATTotalPct  float64
}

// MakeTable2 computes the Table 2 comparison from the flow and the
// enumerated design points.
func MakeTable2(f *core.Flow, points []explore.Point) (*Table2, error) {
	origGrids := f.OrigGrids()
	if origGrids == 0 {
		return nil, fmt.Errorf("report: zero original area")
	}
	bs := bscan.Evaluate(f.Chip)
	scanGrids, bscanGrids := 0, 0
	for _, c := range bs.Cores {
		scanGrids += c.ScanArea.Grids()
		bscanGrids += c.BscanArea.Grids()
	}
	minArea := points[0]
	minTAT := explore.MinTATPoint(points)
	t := &Table2{
		System:    f.Chip.Name,
		OrigCells: f.OrigCells(),
		FscanPct:  pct(scanGrids, origGrids),
		HscanPct:  pct(f.HSCANGrids(), origGrids),
		BscanPct:  pct(bscanGrids, origGrids),
	}
	t.SocetMinAreaPct = pct(minArea.Eval.ChipDFTGrids(), origGrids)
	t.SocetMinTATPct = pct(minTAT.Eval.ChipDFTGrids(), origGrids)
	t.FscanBscanTotalPct = t.FscanPct + t.BscanPct
	t.SocetMinAreaTotalPct = t.HscanPct + t.SocetMinAreaPct
	t.SocetMinTATTotalPct = t.HscanPct + t.SocetMinTATPct
	return t, nil
}

func pct(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// Table3 is the testability comparison for one system.
type Table3 struct {
	System string

	OrigFC    float64 // sequential test generation on the raw chip
	OrigTEff  float64
	HscanFC   float64 // cores HSCAN-testable but no chip-level DFT
	HscanTEff float64

	FscanBscanFC   float64
	FscanBscanTEff float64
	FscanBscanTAT  int

	SocetFC      float64
	SocetTEff    float64
	SocetMinArea int // TAT at the min-area point
	SocetMinTAT  int // TAT at the min-TAT point
}

// Table3Options sizes the sequential fault simulations.
type Table3Options struct {
	Cycles      int // random functional cycles (default 192)
	FaultSample int // sampled faults for the sequential columns (default 1500)
	Seed        uint64
}

func (o *Table3Options) withDefaults() Table3Options {
	v := Table3Options{Cycles: 192, FaultSample: 1500, Seed: 0x7ab1e3}
	if o != nil {
		if o.Cycles > 0 {
			v.Cycles = o.Cycles
		}
		if o.FaultSample > 0 {
			v.FaultSample = o.FaultSample
		}
		if o.Seed != 0 {
			v.Seed = o.Seed
		}
	}
	return v
}

// SampleFaults picks a deterministic, seed-dependent sample of n faults.
// The fault list is divided into n equal strata and one fault is drawn
// from each, so the sample stays spread over the whole list while the
// xorshift stream decides the position inside every stratum.
func SampleFaults(faults []gate.Fault, n int, seed uint64) []gate.Fault {
	if n >= len(faults) {
		return faults
	}
	out := make([]gate.Fault, 0, n)
	x := seed | 1
	stride := float64(len(faults)) / float64(n)
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		lo := int(float64(i) * stride)
		hi := int(float64(i+1) * stride)
		if hi > len(faults) {
			hi = len(faults)
		}
		if hi <= lo {
			hi = lo + 1
		}
		out = append(out, faults[lo+int(x%uint64(hi-lo))])
	}
	return out
}

// MakeTable3 computes the Table 3 comparison. The "Orig." and "HSCAN"
// columns run sampled sequential fault simulation with random functional
// patterns on the flattened chip (the paper ran an in-house sequential
// test generator; random patterns similarly fail to reach the embedded
// logic, which is the point of the column). The FSCAN-BSCAN and SOCET
// columns share the aggregated per-core ATPG coverage — both deliver the
// same precomputed test sets losslessly.
func MakeTable3(f *core.Flow, points []explore.Point, opts *Table3Options) (*Table3, error) {
	o := opts.withDefaults()
	t := &Table3{System: f.Chip.Name}

	// Original chip: no DFT at all.
	plain, err := core.BuildChipNetlist(f, false)
	if err != nil {
		return nil, err
	}
	fc, te, err := seqCoverage(plain.Netlist, o)
	if err != nil {
		return nil, err
	}
	t.OrigFC, t.OrigTEff = fc, te

	// Cores HSCAN-testable, still no chip-level access (scan enable and
	// chains exist but are driven from ordinary pins at random).
	scanNl, err := core.BuildChipNetlist(f, true)
	if err != nil {
		return nil, err
	}
	fc, te, err = seqCoverage(scanNl.Netlist, o)
	if err != nil {
		return nil, err
	}
	t.HscanFC, t.HscanTEff = fc, te

	stats := f.AggregateTestStats()
	t.FscanBscanFC = stats.FaultCoverage()
	t.FscanBscanTEff = stats.TestEfficiency()
	t.SocetFC = stats.FaultCoverage()
	t.SocetTEff = stats.TestEfficiency()

	bs := bscan.Evaluate(f.Chip)
	t.FscanBscanTAT = bs.TotalTAT

	minArea := points[0]
	minTAT := explore.MinTATPoint(points)
	t.SocetMinArea = minArea.TAT
	t.SocetMinTAT = minTAT.TAT
	return t, nil
}

// seqCoverage runs sampled random sequential fault simulation and returns
// (coverage%, efficiency%). Sequential random testing proves nothing
// untestable, so efficiency equals coverage here, as in the paper's low
// single-digit original-circuit columns.
func seqCoverage(n *gate.Netlist, o Table3Options) (float64, float64, error) {
	faults := SampleFaults(n.Faults(), o.FaultSample, o.Seed)
	stim := fsim.RandomStimulus(n, o.Cycles, o.Seed)
	res, err := fsim.Sequential(n, stim, faults)
	if err != nil {
		return 0, 0, err
	}
	return res.Coverage(), res.Coverage(), nil
}

// Figure10Point is one (area, TAT) sample of the trade-off curve.
type Figure10Point struct {
	Index     int
	Label     string
	ChipCells int
	TAT       int
}

// Figure10 converts enumerated design points into the trade-off series.
func Figure10(points []explore.Point) []Figure10Point {
	out := make([]Figure10Point, len(points))
	for i, p := range points {
		out[i] = Figure10Point{Index: i + 1, Label: p.Label(), ChipCells: p.ChipCells, TAT: p.TAT}
	}
	return out
}

// FormatFigure10 renders the curve as an ASCII scatter of TAT vs area.
func FormatFigure10(points []Figure10Point) string {
	if len(points) == 0 {
		return "(no points)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%5s %10s %10s  %s\n", "point", "area(cells)", "TAT(cyc)", "selection")
	for _, p := range points {
		fmt.Fprintf(&b, "%5d %10d %10d  %s\n", p.Index, p.ChipCells, p.TAT, p.Label)
	}
	return b.String()
}
