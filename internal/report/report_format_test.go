package report

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gate"
	"repro/internal/soc"
)

func TestFormatVersionTableEmpty(t *testing.T) {
	got := FormatVersionTable("GCD", nil)
	if got != "GCD: no versions\n" {
		t.Errorf("empty table = %q, want the no-versions line", got)
	}
}

func TestFormatVersionTablePopulated(t *testing.T) {
	rows := []VersionRow{
		{Label: "Version 1", Latencies: map[string]int{"->Out": 6, "In->": 3}, Cells: 0},
		{Label: "Version 2", Latencies: map[string]int{"->Out": 1, "In->": 1}, Cells: 42},
	}
	got := FormatVersionTable("CPU", rows)
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("formatted %d lines, want header + column row + 2 data rows:\n%s", len(lines), got)
	}
	if !strings.Contains(lines[0], "CPU transparency versions") {
		t.Errorf("missing title line: %q", lines[0])
	}
	// Columns are sorted: "->Out" before "In->", then "ovhd".
	outCol := strings.Index(lines[1], "->Out")
	inCol := strings.Index(lines[1], "In->")
	ovhdCol := strings.Index(lines[1], "ovhd")
	if outCol < 0 || inCol < 0 || ovhdCol < 0 || !(outCol < inCol && inCol < ovhdCol) {
		t.Errorf("column order wrong: %q", lines[1])
	}
	if !strings.Contains(lines[2], "Version 1") || !strings.Contains(lines[3], "42") {
		t.Errorf("data rows wrong:\n%s", got)
	}
}

func TestFormatFigure10Empty(t *testing.T) {
	if got := FormatFigure10(nil); got != "(no points)\n" {
		t.Errorf("empty figure = %q, want the no-points line", got)
	}
}

func TestMakeTable2ZeroArea(t *testing.T) {
	// A flow over a chip with no testable cores has zero original area;
	// MakeTable2 must refuse instead of dividing by zero or indexing the
	// (empty) point list.
	f := &core.Flow{Chip: &soc.Chip{Name: "empty"}, Cores: map[string]*core.Artifacts{}}
	if _, err := MakeTable2(f, nil); err == nil {
		t.Fatal("MakeTable2 on a zero-area flow should error")
	} else if !strings.Contains(err.Error(), "zero original area") {
		t.Errorf("unexpected error: %v", err)
	}
}

func syntheticFaults(n int) []gate.Fault {
	faults := make([]gate.Fault, n)
	for i := range faults {
		faults[i] = gate.Fault{Line: i, Stuck: byte(i % 2)}
	}
	return faults
}

func TestSampleFaultsSeedDependent(t *testing.T) {
	faults := syntheticFaults(1000)
	a := SampleFaults(faults, 100, 1)
	b := SampleFaults(faults, 100, 2)
	if len(a) != 100 || len(b) != 100 {
		t.Fatalf("lengths %d/%d, want 100", len(a), len(b))
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical samples; sampling ignores the seed")
	}
	// Same seed must reproduce the sample exactly.
	a2 := SampleFaults(faults, 100, 1)
	for i := range a {
		if a[i] != a2[i] {
			t.Fatalf("seed 1 not deterministic at index %d: %v vs %v", i, a[i], a2[i])
		}
	}
	// Stratification: each pick stays inside its stratum, so the sample is
	// sorted by position and spread across the whole list.
	for i := 1; i < len(a); i++ {
		if a[i].Line <= a[i-1].Line {
			t.Fatalf("sample not strictly increasing at %d: %d then %d", i, a[i-1].Line, a[i].Line)
		}
	}
	if a[0].Line >= 10 || a[len(a)-1].Line < 990 {
		t.Errorf("sample not spread over the list: first %d, last %d", a[0].Line, a[len(a)-1].Line)
	}
}
