package synth

import "repro/internal/rtl"

// must unwraps rtl.Builder.Build for this package's hand-written test
// fixtures, where a build error is a bug in the test itself.
func must(c *rtl.Core, err error) *rtl.Core {
	if err != nil {
		panic("test fixture failed to build: " + err.Error())
	}
	return c
}
