package synth

import (
	"testing"
	"testing/quick"

	"repro/internal/gate"
	"repro/internal/rtl"
)

// simCore synthesizes a core and returns a helper that applies input port
// values, steps n cycles, and reads an output port.
type harness struct {
	t   *testing.T
	c   *rtl.Core
	res *Result
	sim *gate.Sim
}

func newHarness(t *testing.T, c *rtl.Core) *harness {
	t.Helper()
	res, err := Synthesize(c)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	sim, err := gate.NewSim(res.Netlist)
	if err != nil {
		t.Fatalf("NewSim: %v", err)
	}
	return &harness{t: t, c: c, res: res, sim: sim}
}

func (h *harness) setIn(port string, v uint64) {
	p, ok := h.c.PortByName(port)
	if !ok {
		h.t.Fatalf("no port %s", port)
	}
	for b := 0; b < p.Width; b++ {
		id, ok := h.res.LineOf(port, "", b)
		if !ok {
			h.t.Fatalf("no line for %s[%d]", port, b)
		}
		var w uint64
		if v&(1<<uint(b)) != 0 {
			w = ^uint64(0)
		}
		h.sim.SetPI(id, w)
	}
}

func (h *harness) out(port string) uint64 {
	p, ok := h.c.PortByName(port)
	if !ok {
		h.t.Fatalf("no port %s", port)
	}
	var v uint64
	for i, po := range h.res.Netlist.POs {
		name := h.res.Netlist.PONames[i]
		_ = name
		_ = po
	}
	// POs were marked in port declaration order, bit order.
	idx := 0
	for _, q := range h.c.Ports {
		if q.Dir != rtl.Out {
			continue
		}
		if q.Name == port {
			for b := 0; b < p.Width; b++ {
				if h.sim.PO(idx+b)&1 != 0 {
					v |= 1 << uint(b)
				}
			}
			return v
		}
		idx += q.Width
	}
	h.t.Fatalf("output port %s not found", port)
	return 0
}

func TestCombinationalAdder(t *testing.T) {
	c := must(rtl.NewCore("addc").
		In("a", 8).In("b", 8).
		Out("z", 8).
		Unit(rtl.Unit{Name: "add", Op: rtl.OpAdd, Width: 8}).
		Wire("a", "add.in0").
		Wire("b", "add.in1").
		Wire("add.out", "z").
		Build())
	h := newHarness(t, c)
	f := func(a, b uint8) bool {
		h.setIn("a", uint64(a))
		h.setIn("b", uint64(b))
		h.sim.Eval()
		return h.out("z") == uint64(a+b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubAndInc(t *testing.T) {
	c := must(rtl.NewCore("subc").
		In("a", 8).In("b", 8).
		Out("d", 8).Out("i", 8).
		Unit(rtl.Unit{Name: "sub", Op: rtl.OpSub, Width: 8}).
		Unit(rtl.Unit{Name: "inc", Op: rtl.OpInc, Width: 8}).
		Wire("a", "sub.in0").Wire("b", "sub.in1").Wire("sub.out", "d").
		Wire("a", "inc.in0").Wire("inc.out", "i").
		Build())
	h := newHarness(t, c)
	f := func(a, b uint8) bool {
		h.setIn("a", uint64(a))
		h.setIn("b", uint64(b))
		h.sim.Eval()
		return h.out("d") == uint64(a-b) && h.out("i") == uint64(a+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMux4Way(t *testing.T) {
	c := must(rtl.NewCore("m4").
		In("a", 4).In("b", 4).In("x", 4).In("y", 4).
		In("s", 2).
		Out("z", 4).
		Mux("m", 4, 4).
		Wire("a", "m.in0").Wire("b", "m.in1").Wire("x", "m.in2").Wire("y", "m.in3").
		Wire("s", "m.sel").
		Wire("m.out", "z").
		Build())
	h := newHarness(t, c)
	ins := []string{"a", "b", "x", "y"}
	vals := []uint64{0x3, 0x5, 0x9, 0xC}
	for i, p := range ins {
		h.setIn(p, vals[i])
	}
	for sel := 0; sel < 4; sel++ {
		h.setIn("s", uint64(sel))
		h.sim.Eval()
		if got := h.out("z"); got != vals[sel] {
			t.Errorf("sel=%d: z=%#x, want %#x", sel, got, vals[sel])
		}
	}
}

func TestRegisterWithLoad(t *testing.T) {
	c := must(rtl.NewCore("regld").
		In("d", 4).CtlIn("en", 1).
		Out("q", 4).
		RegLd("r", 4).
		Wire("d", "r.d").
		Wire("en", "r.ld").
		Wire("r.q", "q").
		Build())
	h := newHarness(t, c)
	h.setIn("d", 0xA)
	h.setIn("en", 1)
	h.sim.Step()
	if got := h.out("q"); got != 0xA {
		t.Fatalf("after load: q=%#x, want 0xA", got)
	}
	h.setIn("d", 0x5)
	h.setIn("en", 0)
	h.sim.Step()
	if got := h.out("q"); got != 0xA {
		t.Fatalf("hold violated: q=%#x, want 0xA", got)
	}
	h.setIn("en", 1)
	h.sim.Step()
	if got := h.out("q"); got != 0x5 {
		t.Fatalf("after reload: q=%#x, want 0x5", got)
	}
}

func TestCounterDatapath(t *testing.T) {
	// r <- r + 1 each cycle (PC-style), checking sequential elaboration.
	c := must(rtl.NewCore("ctr").
		Out("q", 4).
		Reg("r", 4).
		Unit(rtl.Unit{Name: "inc", Op: rtl.OpInc, Width: 4}).
		Wire("r.q", "inc.in0").
		Wire("inc.out", "r.d").
		Wire("r.q", "q").
		Build())
	h := newHarness(t, c)
	for want := uint64(1); want < 20; want++ {
		h.sim.Step()
		if got := h.out("q"); got != want%16 {
			t.Fatalf("cycle %d: q=%d, want %d", want, got, want%16)
		}
	}
}

func TestEqAndDecode(t *testing.T) {
	c := must(rtl.NewCore("eqd").
		In("a", 3).In("b", 3).
		Out("e", 1).Out("onehot", 8).
		Unit(rtl.Unit{Name: "eq", Op: rtl.OpEq, Width: 3}).
		Unit(rtl.Unit{Name: "dec", Op: rtl.OpDecode, Width: 3}).
		Wire("a", "eq.in0").Wire("b", "eq.in1").Wire("eq.out", "e").
		Wire("a", "dec.in0").Wire("dec.out", "onehot").
		Build())
	h := newHarness(t, c)
	for a := uint64(0); a < 8; a++ {
		for b := uint64(0); b < 8; b++ {
			h.setIn("a", a)
			h.setIn("b", b)
			h.sim.Eval()
			wantE := uint64(0)
			if a == b {
				wantE = 1
			}
			if got := h.out("e"); got != wantE {
				t.Errorf("eq(%d,%d)=%d, want %d", a, b, got, wantE)
			}
			if got := h.out("onehot"); got != 1<<a {
				t.Errorf("decode(%d)=%#x, want %#x", a, got, uint64(1)<<a)
			}
		}
	}
}

func TestAluOps(t *testing.T) {
	c := must(rtl.NewCore("aluc").
		In("a", 8).In("b", 8).In("op", 2).
		Out("z", 8).
		Unit(rtl.Unit{Name: "alu", Op: rtl.OpAlu, Width: 8, AluOps: 4}).
		Wire("a", "alu.in0").Wire("b", "alu.in1").Wire("op", "alu.op").
		Wire("alu.out", "z").
		Build())
	h := newHarness(t, c)
	// Roster order: add, and, or, xor.
	fns := []func(a, b uint8) uint8{
		func(a, b uint8) uint8 { return a + b },
		func(a, b uint8) uint8 { return a & b },
		func(a, b uint8) uint8 { return a | b },
		func(a, b uint8) uint8 { return a ^ b },
	}
	for op, fn := range fns {
		h.setIn("a", 0x5C)
		h.setIn("b", 0x33)
		h.setIn("op", uint64(op))
		h.sim.Eval()
		if got, want := h.out("z"), uint64(fn(0x5C, 0x33)); got != want {
			t.Errorf("op %d: z=%#x, want %#x", op, got, want)
		}
	}
}

func TestShifts(t *testing.T) {
	c := must(rtl.NewCore("sh").
		In("a", 8).
		Out("l", 8).Out("r", 8).
		Unit(rtl.Unit{Name: "shl", Op: rtl.OpShl, Width: 8}).
		Unit(rtl.Unit{Name: "shr", Op: rtl.OpShr, Width: 8}).
		Wire("a", "shl.in0").Wire("shl.out", "l").
		Wire("a", "shr.in0").Wire("shr.out", "r").
		Build())
	h := newHarness(t, c)
	h.setIn("a", 0xB5)
	h.sim.Eval()
	wantL := uint64((0xB5 << 1) & 0xFF)
	if got := h.out("l"); got != wantL {
		t.Errorf("shl = %#x, want %#x", got, wantL)
	}
	if got := h.out("r"); got != 0xB5>>1 {
		t.Errorf("shr = %#x, want %#x", got, 0xB5>>1)
	}
}

func TestConstUnit(t *testing.T) {
	c := must(rtl.NewCore("k").
		Out("z", 8).
		Const("k1", 8, 0x7E).
		Wire("k1.out", "z").
		Build())
	h := newHarness(t, c)
	h.sim.Eval()
	if got := h.out("z"); got != 0x7E {
		t.Errorf("const out = %#x, want 0x7E", got)
	}
}

func TestCloudDeterministic(t *testing.T) {
	build := func() *gate.Netlist {
		c := must(rtl.NewCore("cl").
			In("a", 8).
			Out("z", 4).
			Cloud("ctl", 1, 8, 4, 50).
			Wire("a", "ctl.in0").
			Wire("ctl.out", "z").
			Build())
		res, err := Synthesize(c)
		if err != nil {
			t.Fatal(err)
		}
		return res.Netlist
	}
	n1, n2 := build(), build()
	if len(n1.Gates) != len(n2.Gates) {
		t.Fatalf("nondeterministic gate count: %d vs %d", len(n1.Gates), len(n2.Gates))
	}
	for i := range n1.Gates {
		if n1.Gates[i].Type != n2.Gates[i].Type {
			t.Fatalf("gate %d type differs", i)
		}
		for j := range n1.Gates[i].Fanin {
			if n1.Gates[i].Fanin[j] != n2.Gates[i].Fanin[j] {
				t.Fatalf("gate %d fanin differs", i)
			}
		}
	}
	// Cloud output must actually depend on the input: drive 64 distinct
	// patterns through the lanes and require some output to vary.
	sim, _ := gate.NewSim(n1)
	pis := n1.PIs()
	for i, pi := range pis {
		// Distinct bit mixtures per input line.
		sim.SetPI(pi, 0x9E3779B97F4A7C15<<uint(i)|uint64(i)*0x0101010101010101)
	}
	sim.Eval()
	varies := false
	for i := range n1.POs {
		w := sim.PO(i)
		if w != 0 && w != ^uint64(0) {
			varies = true
		}
	}
	if !varies {
		t.Error("cloud outputs insensitive to inputs (suspicious)")
	}
}

func TestCloudSizeTracksRequest(t *testing.T) {
	for _, want := range []int{20, 100, 400} {
		c := must(rtl.NewCore("cs").
			In("a", 8).
			Out("z", 2).
			Cloud("ctl", 1, 8, 2, want).
			Wire("a", "ctl.in0").
			Wire("ctl.out", "z").
			Build())
		res, err := Synthesize(c)
		if err != nil {
			t.Fatal(err)
		}
		// The random phase plus the XOR collector trees land within ~15%
		// of the requested budget.
		st := res.Netlist.Stats()
		if st.Gates < want*8/10 || st.Gates > want*12/10 {
			t.Errorf("cloud %d: synthesized %d gates", want, st.Gates)
		}
	}
}

func TestUndrivenTiesLow(t *testing.T) {
	c := must(rtl.NewCore("und").
		In("a", 4).
		Out("z", 8).
		Reg("r", 8).
		Wire("a", "r.d[3:0]").
		Wire("r.q", "z").
		Build())
	h := newHarness(t, c)
	h.setIn("a", 0xF)
	h.sim.Step()
	if got := h.out("z"); got != 0x0F {
		t.Errorf("z = %#x, want 0x0F (upper nibble tied low)", got)
	}
}

func TestAreaIncludesDFFsAndMuxes(t *testing.T) {
	c := must(rtl.NewCore("area").
		In("a", 4).CtlIn("en", 1).
		Out("z", 4).
		RegLd("r", 4).
		Wire("a", "r.d").Wire("en", "r.ld").Wire("r.q", "z").
		Build())
	res, err := Synthesize(c)
	if err != nil {
		t.Fatal(err)
	}
	a := res.Netlist.Area()
	if a.Count(0) != 0 { // no particular INVs expected; just sanity
		t.Logf("area: %s", a.String())
	}
	st := res.Netlist.Stats()
	if st.FFs != 4 {
		t.Errorf("FFs = %d, want 4", st.FFs)
	}
	if got := a.Cells(); got < 8 { // 4 DFF + 4 load muxes
		t.Errorf("cells = %d, want >= 8", got)
	}
}

func TestDecUnit(t *testing.T) {
	c := must(rtl.NewCore("decu").
		In("a", 8).
		Out("z", 8).
		Unit(rtl.Unit{Name: "dec", Op: rtl.OpDec, Width: 8}).
		Wire("a", "dec.in0").
		Wire("dec.out", "z").
		Build())
	h := newHarness(t, c)
	f := func(a uint8) bool {
		h.setIn("a", uint64(a))
		h.sim.Eval()
		return h.out("z") == uint64(a-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMux8Way(t *testing.T) {
	// Mux trees with 3 select bits and a non-power-of-two input count.
	b := rtl.NewCore("m8").In("s", 3).Out("z", 4).Mux("m", 4, 6)
	vals := []uint64{1, 2, 4, 8, 5, 10}
	for i, v := range vals {
		name := string(rune('a' + i))
		b.Const("k"+name, 4, v)
		b.Wire("k"+name+".out", "m.in"+string(rune('0'+i)))
	}
	b.Wire("s", "m.sel").Wire("m.out", "z")
	c := must(b.Build())
	h := newHarness(t, c)
	for sel, want := range vals {
		h.setIn("s", uint64(sel))
		h.sim.Eval()
		if got := h.out("z"); got != want {
			t.Errorf("sel=%d: z=%d, want %d", sel, got, want)
		}
	}
}

func TestCombinationalCycleFails(t *testing.T) {
	// Mux feeding itself combinationally must be rejected.
	c := must(rtl.NewCore("cyc").
		In("a", 4).
		Out("z", 4).
		Mux("m1", 4, 2).
		Mux("m2", 4, 2).
		Wire("a", "m1.in0").
		Wire("m2.out", "m1.in1").
		Wire("m1.out", "m2.in0").
		Wire("a", "m2.in1").
		Wire("m2.out", "z").
		Build())
	if _, err := Synthesize(c); err == nil {
		t.Fatal("combinational mux cycle accepted")
	}
}

func TestDecoderCloudSemantics(t *testing.T) {
	// Decoder clouds are AND/OR-of-minterm structures: outputs must be
	// non-constant and deterministic.
	build := func() *gate.Netlist {
		c := must(rtl.NewCore("dcs").
			In("a", 8).
			Out("z", 4).
			DecodeCloud("dec", 1, 8, 4, 120).
			Wire("a", "dec.in0").
			Wire("dec.out", "z").
			Build())
		res, err := Synthesize(c)
		if err != nil {
			t.Fatal(err)
		}
		return res.Netlist
	}
	n1, n2 := build(), build()
	if len(n1.Gates) != len(n2.Gates) {
		t.Fatal("decoder cloud nondeterministic")
	}
	sim, _ := gate.NewSim(n1)
	pis := n1.PIs()
	for i, pi := range pis {
		sim.SetPI(pi, 0xA5A5A5A5A5A5A5A5<<uint(i%3)|uint64(i))
	}
	sim.Eval()
	varies := false
	for i := range n1.POs {
		if w := sim.PO(i); w != 0 && w != ^uint64(0) {
			varies = true
		}
	}
	if !varies {
		t.Error("decoder outputs constant across 64 distinct patterns")
	}
}
