// Package synth elaborates RTL cores into gate-level netlists and reports
// their mapped area, standing in for the in-house synthesis tool and 0.8µm
// technology mapping used in the paper (Section 6). Elaboration is
// deterministic: the same core always yields the same netlist, including
// the pseudo-random structure generated for opaque control-logic clouds.
package synth

import (
	"fmt"

	"repro/internal/gate"
	"repro/internal/rtl"
)

// PinBit identifies a single bit of a component pin.
type PinBit struct {
	Comp string
	Pin  string
	Bit  int
}

// Result is the output of Synthesize.
type Result struct {
	Netlist *gate.Netlist
	// Line maps every source pin bit (input ports, register q, mux/unit
	// out) and register d bit to its netlist line.
	Line map[PinBit]int
}

// LineOf returns the netlist line of a source pin bit.
func (r *Result) LineOf(comp, pin string, bit int) (int, bool) {
	id, ok := r.Line[PinBit{comp, pin, bit}]
	return id, ok
}

type synthesizer struct {
	c    *rtl.Core
	n    *gate.Netlist
	line map[PinBit]int
	busy map[string]bool // components being elaborated (cycle guard)
	err  error
}

// Synthesize elaborates the core into a gate-level netlist. Input ports
// become Input gates; register bits become DFFs (with a load mux when the
// register has a load-enable); output ports become POs. Undriven sink bits
// are tied low.
func Synthesize(c *rtl.Core) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	s := &synthesizer{
		c:    c,
		n:    &gate.Netlist{Name: c.Name},
		line: make(map[PinBit]int),
		busy: make(map[string]bool),
	}
	// Phase 1: state and input skeleton, so combinational recursion can
	// bottom out at register outputs and ports.
	for _, p := range c.Ports {
		if p.Dir != rtl.In {
			continue
		}
		for b := 0; b < p.Width; b++ {
			id := s.n.AddNamed(fmt.Sprintf("%s[%d]", p.Name, b), gate.Input)
			s.line[PinBit{p.Name, "", b}] = id
		}
	}
	for _, r := range c.Regs {
		for b := 0; b < r.Width; b++ {
			// Fanin patched in phase 3; temporarily self-feeding.
			id := s.n.AddNamed(fmt.Sprintf("%s[%d]", r.Name, b), gate.DFF)
			s.n.Gates[id].Fanin = []int{id}
			s.line[PinBit{r.Name, "q", b}] = id
		}
	}
	// Phase 2: primary outputs (pulls in all logic in their cones).
	for _, p := range c.Ports {
		if p.Dir != rtl.Out {
			continue
		}
		for b := 0; b < p.Width; b++ {
			id := s.sinkLine(p.Name, "", b)
			s.n.MarkPO(id, fmt.Sprintf("%s[%d]", p.Name, b))
			s.line[PinBit{p.Name, "", b}] = id
		}
	}
	// Phase 3: register next-state logic.
	for _, r := range c.Regs {
		var ld int
		if r.HasLoad {
			ld = s.sinkLine(r.Name, "ld", 0)
		}
		for b := 0; b < r.Width; b++ {
			d := s.sinkLine(r.Name, "d", b)
			q := s.line[PinBit{r.Name, "q", b}]
			if r.HasLoad {
				d = s.n.Add(gate.Mux, q, d, ld)
			}
			s.n.Gates[q].Fanin = []int{d}
			s.line[PinBit{r.Name, "d", b}] = d
		}
	}
	if s.err != nil {
		return nil, s.err
	}
	if err := s.n.Validate(); err != nil {
		return nil, err
	}
	return &Result{Netlist: s.n, Line: s.line}, nil
}

func (s *synthesizer) fail(format string, args ...interface{}) int {
	if s.err == nil {
		s.err = fmt.Errorf("synth: core %s: "+format, append([]interface{}{s.c.Name}, args...)...)
	}
	return s.const0()
}

func (s *synthesizer) const0() int {
	if id, ok := s.line[PinBit{"", "const0", 0}]; ok {
		return id
	}
	id := s.n.Add(gate.Const0)
	s.line[PinBit{"", "const0", 0}] = id
	return id
}

func (s *synthesizer) const1() int {
	if id, ok := s.line[PinBit{"", "const1", 0}]; ok {
		return id
	}
	id := s.n.Add(gate.Const1)
	s.line[PinBit{"", "const1", 0}] = id
	return id
}

// sinkLine resolves the line driving one bit of a sink pin, elaborating
// the driver on demand. Undriven bits tie low.
func (s *synthesizer) sinkLine(comp, pin string, bit int) int {
	for _, cn := range s.c.Conns {
		if cn.To.Comp != comp || cn.To.Pin != pin || bit < cn.To.Lo || bit > cn.To.Hi {
			continue
		}
		return s.srcLine(cn.From.Comp, cn.From.Pin, cn.From.Lo+(bit-cn.To.Lo))
	}
	return s.const0()
}

// srcLine returns (elaborating on demand) the line of one bit of a source
// pin.
func (s *synthesizer) srcLine(comp, pin string, bit int) int {
	if id, ok := s.line[PinBit{comp, pin, bit}]; ok {
		return id
	}
	kind, idx, ok := s.c.Lookup(comp)
	if !ok {
		return s.fail("unknown component %q", comp)
	}
	if s.busy[comp] {
		return s.fail("combinational cycle through %s", comp)
	}
	s.busy[comp] = true
	switch kind {
	case rtl.KindMux:
		s.elabMux(s.c.Muxes[idx])
	case rtl.KindUnit:
		s.elabUnit(s.c.Units[idx])
	default:
		delete(s.busy, comp)
		return s.fail("%s.%s is not an elaboratable source", comp, pin)
	}
	delete(s.busy, comp)
	id, ok2 := s.line[PinBit{comp, pin, bit}]
	if !ok2 {
		return s.fail("elaboration of %s produced no line for %s[%d]", comp, pin, bit)
	}
	return id
}

// elabMux builds a per-bit mux tree steered by the select bits.
func (s *synthesizer) elabMux(m rtl.Mux) {
	selW := m.SelWidth()
	sel := make([]int, selW)
	for i := range sel {
		sel[i] = s.sinkLine(m.Name, "sel", i)
	}
	for b := 0; b < m.Width; b++ {
		ins := make([]int, m.NumIn)
		for k := range ins {
			ins[k] = s.sinkLine(m.Name, fmt.Sprintf("in%d", k), b)
		}
		s.line[PinBit{m.Name, "out", b}] = s.muxTree(ins, sel, 0)
	}
}

// muxTree recursively selects among ins using select bits from level up.
func (s *synthesizer) muxTree(ins []int, sel []int, level int) int {
	if len(ins) == 1 {
		return ins[0]
	}
	if level >= len(sel) {
		return ins[0]
	}
	// Pair up by the current (lowest) select bit.
	var next []int
	for i := 0; i < len(ins); i += 2 {
		if i+1 < len(ins) {
			next = append(next, s.n.Add(gate.Mux, ins[i], ins[i+1], sel[level]))
		} else {
			next = append(next, ins[i])
		}
	}
	return s.muxTree(next, sel, level+1)
}

func (s *synthesizer) elabUnit(u rtl.Unit) {
	inBits := func(k int) []int {
		out := make([]int, u.Width)
		pin := fmt.Sprintf("in%d", k)
		for b := range out {
			out[b] = s.sinkLine(u.Name, pin, b)
		}
		return out
	}
	set := func(bits []int) {
		for b, id := range bits {
			s.line[PinBit{u.Name, "out", b}] = id
		}
	}
	switch u.Op {
	case rtl.OpAdd:
		sum, _ := s.adder(inBits(0), inBits(1), s.const0())
		set(sum)
	case rtl.OpSub:
		b := inBits(1)
		nb := make([]int, len(b))
		for i, id := range b {
			nb[i] = s.n.Add(gate.Inv, id)
		}
		sum, _ := s.adder(inBits(0), nb, s.const1())
		set(sum)
	case rtl.OpInc:
		sum := s.incr(inBits(0))
		set(sum)
	case rtl.OpDec:
		a := inBits(0)
		ones := make([]int, len(a))
		for i := range ones {
			ones[i] = s.const1()
		}
		sum, _ := s.adder(a, ones, s.const0()) // a + (-1)
		set(sum)
	case rtl.OpAnd, rtl.OpOr, rtl.OpXor:
		a, b := inBits(0), inBits(1)
		t := map[rtl.UnitOp]gate.Type{rtl.OpAnd: gate.And, rtl.OpOr: gate.Or, rtl.OpXor: gate.Xor}[u.Op]
		bits := make([]int, u.Width)
		for i := range bits {
			bits[i] = s.n.Add(t, a[i], b[i])
		}
		set(bits)
	case rtl.OpNot:
		a := inBits(0)
		bits := make([]int, u.Width)
		for i := range bits {
			bits[i] = s.n.Add(gate.Inv, a[i])
		}
		set(bits)
	case rtl.OpShl:
		a := inBits(0)
		bits := make([]int, u.Width)
		bits[0] = s.const0()
		for i := 1; i < u.Width; i++ {
			bits[i] = a[i-1]
		}
		set(bits)
	case rtl.OpShr:
		a := inBits(0)
		bits := make([]int, u.Width)
		for i := 0; i < u.Width-1; i++ {
			bits[i] = a[i+1]
		}
		bits[u.Width-1] = s.const0()
		set(bits)
	case rtl.OpEq:
		a, b := inBits(0), inBits(1)
		acc := -1
		for i := range a {
			x := s.n.Add(gate.Xnor, a[i], b[i])
			if acc < 0 {
				acc = x
			} else {
				acc = s.n.Add(gate.And, acc, x)
			}
		}
		s.line[PinBit{u.Name, "out", 0}] = acc
	case rtl.OpDecode:
		a := inBits(0)
		inv := make([]int, len(a))
		for i, id := range a {
			inv[i] = s.n.Add(gate.Inv, id)
		}
		for v := 0; v < (1 << u.Width); v++ {
			acc := -1
			for i := 0; i < u.Width; i++ {
				lit := a[i]
				if v&(1<<i) == 0 {
					lit = inv[i]
				}
				if acc < 0 {
					acc = lit
				} else {
					acc = s.n.Add(gate.And, acc, lit)
				}
			}
			s.line[PinBit{u.Name, "out", v}] = acc
		}
	case rtl.OpAlu:
		s.elabAlu(u)
	case rtl.OpConst:
		bits := make([]int, u.Width)
		for i := range bits {
			if u.ConstVal&(1<<uint(i)) != 0 {
				bits[i] = s.const1()
			} else {
				bits[i] = s.const0()
			}
		}
		set(bits)
	case rtl.OpCloud:
		s.elabCloud(u)
	default:
		s.fail("unit %s: unsupported op %v", u.Name, u.Op)
	}
}

// adder builds a ripple-carry adder and returns the sum bits and carry-out.
func (s *synthesizer) adder(a, b []int, cin int) ([]int, int) {
	sum := make([]int, len(a))
	c := cin
	for i := range a {
		axb := s.n.Add(gate.Xor, a[i], b[i])
		sum[i] = s.n.Add(gate.Xor, axb, c)
		ab := s.n.Add(gate.And, a[i], b[i])
		cx := s.n.Add(gate.And, c, axb)
		c = s.n.Add(gate.Or, ab, cx)
	}
	return sum, c
}

// incr builds a half-adder chain computing a+1.
func (s *synthesizer) incr(a []int) []int {
	sum := make([]int, len(a))
	c := s.const1()
	for i := range a {
		sum[i] = s.n.Add(gate.Xor, a[i], c)
		if i < len(a)-1 {
			c = s.n.Add(gate.And, a[i], c)
		}
	}
	return sum
}

// elabAlu builds each selected operation and muxes the results by the op
// select bits. Operations are drawn from a fixed roster in order.
func (s *synthesizer) elabAlu(u rtl.Unit) {
	roster := []rtl.UnitOp{rtl.OpAdd, rtl.OpAnd, rtl.OpOr, rtl.OpXor, rtl.OpSub, rtl.OpNot, rtl.OpInc, rtl.OpShl}
	nops := u.AluOps
	if nops < 2 {
		nops = 2
	}
	if nops > len(roster) {
		nops = len(roster)
	}
	a := make([]int, u.Width)
	b := make([]int, u.Width)
	for i := 0; i < u.Width; i++ {
		a[i] = s.sinkLine(u.Name, "in0", i)
		b[i] = s.sinkLine(u.Name, "in1", i)
	}
	selW := rtl.SelBits(nops)
	sel := make([]int, selW)
	for i := range sel {
		sel[i] = s.sinkLine(u.Name, "op", i)
	}
	results := make([][]int, nops)
	for k := 0; k < nops; k++ {
		switch roster[k] {
		case rtl.OpAdd:
			results[k], _ = s.adder(a, b, s.const0())
		case rtl.OpSub:
			nb := make([]int, len(b))
			for i, id := range b {
				nb[i] = s.n.Add(gate.Inv, id)
			}
			results[k], _ = s.adder(a, nb, s.const1())
		case rtl.OpAnd, rtl.OpOr, rtl.OpXor:
			t := map[rtl.UnitOp]gate.Type{rtl.OpAnd: gate.And, rtl.OpOr: gate.Or, rtl.OpXor: gate.Xor}[roster[k]]
			bits := make([]int, u.Width)
			for i := range bits {
				bits[i] = s.n.Add(t, a[i], b[i])
			}
			results[k] = bits
		case rtl.OpNot:
			bits := make([]int, u.Width)
			for i := range bits {
				bits[i] = s.n.Add(gate.Inv, a[i])
			}
			results[k] = bits
		case rtl.OpInc:
			results[k] = s.incr(a)
		case rtl.OpShl:
			bits := make([]int, u.Width)
			bits[0] = s.const0()
			for i := 1; i < u.Width; i++ {
				bits[i] = a[i-1]
			}
			results[k] = bits
		}
	}
	for bit := 0; bit < u.Width; bit++ {
		ins := make([]int, nops)
		for k := range ins {
			ins[k] = results[k][bit]
		}
		s.line[PinBit{u.Name, "out", bit}] = s.muxTree(ins, sel, 0)
	}
}

// elabCloud synthesizes an opaque control cloud: a deterministic
// pseudo-random DAG of two-input gates seeded by the core and unit names.
// Roughly two thirds of the budget builds random logic; the rest folds
// every otherwise-dangling line into balanced XOR collector trees feeding
// the outputs, so the cloud's gates all sit in observable cones (dangling
// random logic would read as untestable-fault noise in the ATPG columns).
func (s *synthesizer) elabCloud(u rtl.Unit) {
	rng := newSplitMix(hashNames(s.c.Name, u.Name))
	var pool []int
	for k := 0; k < u.NumIn; k++ {
		pin := fmt.Sprintf("in%d", k)
		for b := 0; b < u.Width; b++ {
			id := s.sinkLine(u.Name, pin, b)
			// Constant (undriven) bits would breed dead minterms and
			// untestable logic; clouds draw only from live signals.
			if t := s.n.Gates[id].Type; t == gate.Const0 || t == gate.Const1 {
				continue
			}
			pool = append(pool, id)
		}
	}
	if len(pool) == 0 {
		pool = append(pool, s.const0())
	}
	inputs := len(pool)
	if u.CloudAndBias {
		s.elabDecoderCloud(u, pool, rng)
		return
	}
	// XOR-family gates are weighted up: random AND/OR networks accumulate
	// logical redundancy (absorption), which inflates the untestable
	// fault count far beyond what real control logic shows.
	types := []gate.Type{
		gate.Xor, gate.Xnor, gate.Xor,
		gate.And, gate.Or, gate.Nand, gate.Nor, gate.Inv,
	}
	foldType := gate.Xor
	gatesWanted := u.CloudGates
	if gatesWanted < 2*u.OutWidth {
		gatesWanted = 2 * u.OutWidth
	}
	randomGates := gatesWanted * 2 / 3
	fanout := make(map[int]int)
	for g := 0; g < randomGates; g++ {
		t := types[int(rng.next()%uint64(len(types)))]
		ai := int(rng.next() % uint64(len(pool)))
		a := pool[ai]
		var id int
		if t == gate.Inv {
			id = s.n.Add(gate.Inv, a)
		} else {
			// Distinct fanins: gate(x,x) degenerates to a constant or an
			// inverter and would show up as untestable-fault noise.
			bi := int(rng.next() % uint64(len(pool)))
			if bi == ai && len(pool) > 1 {
				bi = (bi + 1) % len(pool)
			}
			b := pool[bi]
			id = s.n.Add(t, a, b)
			fanout[b]++
		}
		fanout[a]++
		pool = append(pool, id)
	}
	// Collect dangling created lines and fold them, round-robin, into one
	// XOR tree per output bit.
	var dangling []int
	for _, id := range pool[inputs:] {
		if fanout[id] == 0 {
			dangling = append(dangling, id)
		}
	}
	if len(dangling) == 0 {
		dangling = pool[len(pool)-1:]
	}
	acc := make([]int, u.OutWidth)
	for i := range acc {
		acc[i] = dangling[i%len(dangling)]
	}
	for i, id := range dangling {
		b := i % u.OutWidth
		if acc[b] == id && i < u.OutWidth {
			continue // seeded above
		}
		acc[b] = s.n.Add(foldType, acc[b], id)
	}
	for b := 0; b < u.OutWidth; b++ {
		s.line[PinBit{u.Name, "out", b}] = acc[b]
	}
}

// elabDecoderCloud synthesizes decoder-like logic (CloudAndBias): each
// output bit is an OR of minterms, each minterm an AND of a few randomly
// chosen, randomly inverted input literals. This is the structure of real
// address and seven-segment decoders: fully testable by deterministic
// ATPG (set the literals), but nearly opaque to random functional
// patterns — each minterm fires with probability 2^-k — which is what
// makes chips without chip-level DFT nearly untestable (Table 3's "Orig."
// column).
func (s *synthesizer) elabDecoderCloud(u rtl.Unit, pool []int, rng *splitMix) {
	gatesWanted := u.CloudGates
	if gatesWanted < 2*u.OutWidth {
		gatesWanted = 2 * u.OutWidth
	}
	// Few, deep minterms: wide ANDs are what starve random excitation.
	// Too many minterms per output breeds OR-masking redundancy (shared
	// literals force sibling minterms high), so the budget goes into
	// literal depth k rather than minterm count.
	minterms := 3
	k := gatesWanted * 2 / (u.OutWidth * minterms * 3)
	if k < 3 {
		k = 3
	}
	if k > 8 {
		k = 8
	}
	// Minterms over nearly the whole variable set overlap so heavily that
	// OR-side masking makes much of the logic genuinely redundant; keep
	// some slack.
	if k > 3*len(pool)/4 {
		k = 3 * len(pool) / 4
	}
	if k < 1 {
		k = 1
	}
	inv := map[int]int{} // cached inverted literals
	literal := func(id int) int {
		if rng.next()&1 == 0 {
			return id
		}
		if n, ok := inv[id]; ok {
			return n
		}
		n := s.n.Add(gate.Inv, id)
		inv[id] = n
		return n
	}
	// Each minterm samples k distinct variables: the same variable twice
	// with opposite polarity would make the minterm constant-0 and its
	// whole cone untestable.
	perm := make([]int, len(pool))
	for i := range perm {
		perm[i] = i
	}
	sample := func() []int {
		for i := len(perm) - 1; i > 0; i-- {
			j := int(rng.next() % uint64(i+1))
			perm[i], perm[j] = perm[j], perm[i]
		}
		return perm[:k]
	}
	for b := 0; b < u.OutWidth; b++ {
		acc := -1
		for m := 0; m < minterms; m++ {
			vars := sample()
			term := literal(pool[vars[0]])
			for i := 1; i < k; i++ {
				term = s.n.Add(gate.And, term, literal(pool[vars[i]]))
			}
			if acc < 0 {
				acc = term
			} else {
				acc = s.n.Add(gate.Or, acc, term)
			}
		}
		s.line[PinBit{u.Name, "out", b}] = acc
	}
}

// hashNames is FNV-1a over the concatenated names.
func hashNames(parts ...string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= prime
		}
		h ^= 0xff
		h *= prime
	}
	return h
}

// splitMix is a tiny deterministic PRNG (SplitMix64).
type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{state: seed} }

func (r *splitMix) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
