package socgen

import (
	"reflect"
	"strconv"
	"testing"

	"repro/internal/soc"
)

func coreIndex(t *testing.T, name string) int {
	t.Helper()
	if len(name) != 3 || name[0] != 'C' {
		t.Fatalf("unexpected core name %q", name)
	}
	n, err := strconv.Atoi(name[1:])
	if err != nil {
		t.Fatalf("unexpected core name %q", name)
	}
	return n
}

// interCoreNets returns the nets between two logic cores (pin and memory
// nets excluded).
func interCoreNets(ch *soc.Chip) []soc.Net {
	mem := map[string]bool{}
	for _, c := range ch.Cores {
		if c.Memory {
			mem[c.Name] = true
		}
	}
	var out []soc.Net
	for _, n := range ch.Nets {
		if n.FromCore == "" || n.ToCore == "" || mem[n.FromCore] || mem[n.ToCore] {
			continue
		}
		out = append(out, n)
	}
	return out
}

func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		p := Params{Seed: seed}
		a, err := Generate(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := Generate(p)
		if err != nil {
			t.Fatalf("seed %d (second draw): %v", seed, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two draws differ", seed)
		}
	}
}

func TestTopologyShapes(t *testing.T) {
	for _, topo := range Topologies() {
		t.Run(topo.String(), func(t *testing.T) {
			for seed := uint64(0); seed < 15; seed++ {
				p := Params{Seed: seed, Topology: topo, Memories: -1}
				ch, err := Generate(p)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if err := ch.Validate(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if len(ch.POs) == 0 {
					t.Fatalf("seed %d: chip has no POs", seed)
				}
				cols := MeshCols(len(ch.Cores))
				for _, n := range interCoreNets(ch) {
					from, to := coreIndex(t, n.FromCore), coreIndex(t, n.ToCore)
					switch topo {
					case Chain:
						if to-from != 1 {
							t.Fatalf("seed %d: chain net %s skips cores", seed, n)
						}
					case Mesh:
						d := to - from
						sameRow := from/cols == to/cols
						if !(d == 1 && sameRow) && d != cols {
							t.Fatalf("seed %d: mesh net %s is not a grid-neighbour link (cols=%d)", seed, n, cols)
						}
					case RandomDAG:
						if to <= from {
							t.Fatalf("seed %d: dag net %s is not forward", seed, n)
						}
					case Hub:
						if from != 0 {
							t.Fatalf("seed %d: hub net %s does not originate at the hub", seed, n)
						}
					}
				}
			}
		})
	}
}

func TestPinBudgets(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		p := Params{Seed: seed, Cores: 5, PIBudget: 3, POBudget: 2, Memories: -1}
		ch, err := Generate(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(ch.PIs) > 3 {
			t.Fatalf("seed %d: %d PIs exceed budget 3", seed, len(ch.PIs))
		}
		if len(ch.POs) > 2 {
			t.Fatalf("seed %d: %d POs exceed budget 2", seed, len(ch.POs))
		}
		if len(ch.POs) == 0 {
			t.Fatalf("seed %d: no POs under budget", seed)
		}
	}
}

func TestMemoriesExcludedFromTestable(t *testing.T) {
	ch, err := Generate(Params{Seed: 7, Cores: 3, Memories: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Cores) != 5 {
		t.Fatalf("want 3 logic + 2 memory cores, got %d", len(ch.Cores))
	}
	if n := len(ch.TestableCores()); n != 3 {
		t.Fatalf("want 3 testable cores, got %d", n)
	}
}

func TestParseTopology(t *testing.T) {
	for _, topo := range append(Topologies(), Auto) {
		got, err := ParseTopology(topo.String())
		if err != nil || got != topo {
			t.Fatalf("round trip of %s: got %v, %v", topo, got, err)
		}
	}
	if _, err := ParseTopology("torus"); err == nil {
		t.Fatal("want error for unknown topology")
	}
}

func TestManySkipsNothingByDefault(t *testing.T) {
	chips := Many(25, 100, Params{})
	if len(chips) < 20 {
		t.Fatalf("only %d/25 seeds generated successfully", len(chips))
	}
	names := map[string]bool{}
	for _, ch := range chips {
		if names[ch.Name] {
			t.Fatalf("duplicate chip name %s", ch.Name)
		}
		names[ch.Name] = true
	}
}

func TestGenerateExplicitWidths(t *testing.T) {
	allowed := map[int]bool{4: true, 9: true}
	ch, err := Generate(Params{Seed: 5, Cores: 4, Widths: []int{4, 9}})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range ch.Cores {
		for _, p := range c.RTL.Ports {
			if !allowed[p.Width] && !p.Control {
				t.Fatalf("core %s port %s has width %d outside the configured set", c.Name, p.Name, p.Width)
			}
		}
	}
}
