// Package socgen deterministically generates seed-parameterized SoCs for
// property-based verification of the whole SOCET flow at scale. Where
// rtlgen.RandomChip draws one fixed feed-forward shape, socgen controls
// the chip-level structure explicitly: core count, CCG topology family
// (chain, mesh, random DAG, hub), interconnect widths, chip pin budgets
// and optional BIST memory cores. Every decision is driven by a
// splitmix-style generator seeded from Params, so a (seed, shape) pair
// always yields the same chip — the reproducer contract the differential
// harness in internal/proptest relies on.
package socgen

import (
	"fmt"
	"strings"

	"repro/internal/rtl"
	"repro/internal/rtlgen"
	"repro/internal/soc"
)

// Topology selects the chip-level connection family.
type Topology int

// Topology families. Auto (the zero value) picks one from the seed.
const (
	Auto Topology = iota
	// Chain connects each core only to its predecessor: the longest
	// justification/propagation routes, every interior core a transit hop.
	Chain
	// Mesh arranges cores in a near-square grid; each core draws from its
	// left and upper neighbours, so concurrent paths share transit cores
	// and exercise reservation serialization.
	Mesh
	// RandomDAG lets each core draw from any earlier core — the shape
	// rtlgen.RandomChip samples, under socgen's pin and width control.
	RandomDAG
	// Hub fans the first core's outputs out to every other core: maximal
	// contention on one transit core's transparency resources.
	Hub
)

var topoNames = map[Topology]string{
	Auto:      "auto",
	Chain:     "chain",
	Mesh:      "mesh",
	RandomDAG: "dag",
	Hub:       "hub",
}

func (t Topology) String() string {
	if n, ok := topoNames[t]; ok {
		return n
	}
	return fmt.Sprintf("Topology(%d)", int(t))
}

// ParseTopology parses a topology name as printed by String.
func ParseTopology(s string) (Topology, error) {
	for t, n := range topoNames {
		if n == strings.ToLower(strings.TrimSpace(s)) {
			return t, nil
		}
	}
	return Auto, fmt.Errorf("socgen: unknown topology %q (want auto, chain, mesh, dag or hub)", s)
}

// Topologies lists the concrete families (Auto excluded).
func Topologies() []Topology { return []Topology{Chain, Mesh, RandomDAG, Hub} }

// MeshCols returns the grid width used by the Mesh family for n cores:
// the smallest square-ish layout (ceil of the square root).
func MeshCols(n int) int {
	c := 1
	for c*c < n {
		c++
	}
	return c
}

// Params sizes a generated SoC. Zero values pick seed-dependent defaults.
type Params struct {
	Seed     uint64
	Cores    int      // testable cores (default 3..6, seed-dependent)
	Topology Topology // Auto draws one per seed
	Widths   []int    // candidate port widths (default {4, 8})
	PIBudget int      // max chip PIs; 0 = unlimited (inputs reuse pins when exhausted)
	POBudget int      // max chip POs; 0 = unlimited
	Memories int      // BIST memory cores; 0 = seed-dependent 0..1, -1 = none
}

type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// outSlot is a core output available as a net driver during wiring.
type outSlot struct {
	core  string
	index int // core position, for topology adjacency checks
	port  rtl.Port
	uses  int
}

// maxFanout bounds how many sinks one core output may drive; beyond it
// the generator falls back to a fresh (or reused) chip pin.
const maxFanout = 2

// Generate builds the chip for the given parameters. The result passes
// soc.Chip.Validate and is ready for the full flow. An error means every
// retry of some drawn core failed rtl validation — callers sampling many
// seeds skip such seeds (see Many).
func Generate(p Params) (*soc.Chip, error) {
	r := &rng{s: p.Seed*0xd1342543de82ef95 + 0x632be59bd9b4e019}
	if p.Cores == 0 {
		p.Cores = 3 + r.intn(4)
	}
	if p.Cores < 1 {
		return nil, fmt.Errorf("socgen: need at least 1 core, got %d", p.Cores)
	}
	if p.Topology == Auto {
		p.Topology = Topologies()[r.intn(len(Topologies()))]
	}
	if len(p.Widths) == 0 {
		p.Widths = []int{4, 8}
	}
	if p.Memories == 0 {
		p.Memories = r.intn(2)
	} else if p.Memories < 0 {
		p.Memories = 0
	}

	ch := &soc.Chip{Name: fmt.Sprintf("socgen-%s-c%d-s%d", p.Topology, p.Cores, p.Seed)}

	var pis []soc.Pin
	newPI := func(w int) string {
		// Within budget: fresh pin. Budget exhausted: reuse the best
		// existing pin — same width if available, else the widest (a wide
		// pin covers a narrow input's low bits).
		if p.PIBudget <= 0 || len(pis) < p.PIBudget {
			name := fmt.Sprintf("PI%d", len(pis))
			pin := soc.Pin{Name: name, Width: w}
			pis = append(pis, pin)
			ch.PIs = append(ch.PIs, pin)
			return name
		}
		best := 0
		for i, pin := range pis {
			if pin.Width == w {
				return pin.Name
			}
			if pin.Width > pis[best].Width {
				best = i
			}
		}
		return pis[best].Name
	}
	poCount := 0
	newPO := func(w int) string {
		name := fmt.Sprintf("PO%d", poCount)
		poCount++
		ch.POs = append(ch.POs, soc.Pin{Name: name, Width: w})
		return name
	}

	cols := MeshCols(p.Cores)
	// allowed returns the producer core positions topology lets core i
	// draw inputs from.
	allowed := func(i int) []int {
		switch p.Topology {
		case Chain:
			if i == 0 {
				return nil
			}
			return []int{i - 1}
		case Mesh:
			var out []int
			if i%cols != 0 {
				out = append(out, i-1) // left neighbour
			}
			if i-cols >= 0 {
				out = append(out, i-cols) // upper neighbour
			}
			return out
		case Hub:
			if i == 0 {
				return nil
			}
			return []int{0}
		default: // RandomDAG
			out := make([]int, i)
			for j := range out {
				out[j] = j
			}
			return out
		}
	}

	var slots []*outSlot
	for i := 0; i < p.Cores; i++ {
		c, err := buildCore(p, i)
		if err != nil {
			return nil, err
		}
		ch.Cores = append(ch.Cores, &soc.Core{Name: c.Name, RTL: c})
		prods := allowed(i)
		for _, in := range c.Inputs() {
			src := pickSource(r, slots, prods, in.Width, p.Topology)
			if src != nil {
				src.uses++
				ch.Nets = append(ch.Nets, soc.Net{
					FromCore: src.core, FromPort: src.port.Name,
					ToCore: c.Name, ToPort: in.Name,
				})
			} else {
				ch.Nets = append(ch.Nets, soc.Net{
					FromPort: newPI(in.Width),
					ToCore:   c.Name, ToPort: in.Name,
				})
			}
		}
		for _, out := range c.Outputs() {
			slots = append(slots, &outSlot{core: c.Name, index: i, port: out})
		}
	}

	// Terminal outputs: the last core's spare outputs always reach POs (the
	// chip must be observable at its sinks); earlier spares become POs with
	// probability 1/2 while the budget lasts, else stay unobservable so the
	// scheduler's system-level test-mux fallback keeps getting exercised.
	for _, sl := range slots {
		if sl.uses > 0 {
			continue
		}
		if sl.index != p.Cores-1 && r.intn(2) == 1 {
			continue
		}
		if p.POBudget > 0 && poCount >= p.POBudget && sl.index != p.Cores-1 {
			continue
		}
		if p.POBudget > 0 && poCount >= p.POBudget {
			break
		}
		ch.Nets = append(ch.Nets, soc.Net{
			FromCore: sl.core, FromPort: sl.port.Name,
			ToPort: newPO(sl.port.Width),
		})
	}
	if len(ch.POs) == 0 {
		// Degenerate corner (tiny PO budget or unlucky draws): observe the
		// last core's first output regardless.
		c := ch.Cores[p.Cores-1]
		out := c.RTL.Outputs()[0]
		ch.Nets = append(ch.Nets, soc.Net{FromCore: c.Name, FromPort: out.Name, ToPort: newPO(out.Width)})
	}

	addMemories(r, ch, p, newPI)

	if err := ch.Validate(); err != nil {
		return nil, fmt.Errorf("socgen: seed %d: generated chip invalid: %w", p.Seed, err)
	}
	return ch, nil
}

// buildCore draws one RTL core, retrying over derived sub-seeds when a
// drawn structure fails to build (rtlgen documents such seeds as skippable;
// socgen retries instead so chip shape never depends on build luck).
func buildCore(p Params, i int) (*rtl.Core, error) {
	var firstErr error
	for try := 0; try < 8; try++ {
		sub := p.Seed*1000003 + uint64(i)*8191 + uint64(try)*31337
		c, err := rtlgen.Random(rtlgen.Params{Seed: sub, Widths: p.Widths})
		if err == nil {
			c.Name = fmt.Sprintf("C%02d", i)
			return c, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, fmt.Errorf("socgen: seed %d core %d: no buildable draw: %w", p.Seed, i, firstErr)
}

// pickSource finds a width-matching, fanout-free output slot among the
// allowed producer cores, scanning from an rng-chosen offset so different
// seeds pick different-but-deterministic wirings. Chain, mesh and hub
// wire aggressively (the shape is the point); the DAG family keeps some
// inputs on chip pins for front-side controllability.
func pickSource(r *rng, slots []*outSlot, prods []int, width int, topo Topology) *outSlot {
	if len(prods) == 0 || len(slots) == 0 {
		return nil
	}
	wireChance := 4 // of 5
	if topo == RandomDAG {
		wireChance = 3
	}
	if r.intn(5) >= wireChance {
		return nil
	}
	ok := make(map[int]bool, len(prods))
	for _, p := range prods {
		ok[p] = true
	}
	off := r.intn(len(slots))
	var fallback *outSlot
	for k := 0; k < len(slots); k++ {
		sl := slots[(off+k)%len(slots)]
		if !ok[sl.index] || sl.port.Width != width || sl.uses >= maxFanout {
			continue
		}
		if sl.uses == 0 {
			return sl
		}
		if fallback == nil {
			fallback = sl
		}
	}
	return fallback
}

// addMemories appends BIST memory stub cores. Their address/data inputs
// hang off existing core outputs (fanout-exempt: the CCG drops memory
// nets, so sharing a driver costs no transparency resources) or chip
// pins; the data output stays internal, as memories are tested by BIST,
// not through chip pins.
func addMemories(r *rng, ch *soc.Chip, p Params, newPI func(int) string) {
	w := p.Widths[len(p.Widths)-1]
	for m := 0; m < p.Memories; m++ {
		name := fmt.Sprintf("MEM%d", m)
		b := rtl.NewCore(name)
		b.In("Addr", w).In("Din", w).Out("Dout", w)
		b.Reg("Cell", w)
		b.Wire("Din", "Cell.d")
		b.Wire("Cell.q", "Dout")
		c, err := b.Build()
		if err != nil { // cannot happen for this fixed structure
			continue
		}
		ch.Cores = append(ch.Cores, &soc.Core{Name: name, RTL: c, Memory: true})
		for _, port := range []string{"Addr", "Din"} {
			if src := anyOutput(r, ch, p.Cores); src != nil {
				ch.Nets = append(ch.Nets, soc.Net{
					FromCore: src.core, FromPort: src.port.Name,
					ToCore: name, ToPort: port,
				})
			} else {
				ch.Nets = append(ch.Nets, soc.Net{FromPort: newPI(w), ToCore: name, ToPort: port})
			}
		}
	}
}

// anyOutput picks a random logic-core output as a memory-side driver.
func anyOutput(r *rng, ch *soc.Chip, cores int) *outSlot {
	ci := r.intn(cores)
	c := ch.Cores[ci]
	outs := c.RTL.Outputs()
	if len(outs) == 0 {
		return nil
	}
	return &outSlot{core: c.Name, index: ci, port: outs[r.intn(len(outs))]}
}

// Many generates chips for seeds base..base+n-1, skipping seeds whose
// cores fail to build.
func Many(n int, base uint64, shape Params) []*soc.Chip {
	var out []*soc.Chip
	for i := 0; i < n; i++ {
		p := shape
		p.Seed = base + uint64(i)
		if ch, err := Generate(p); err == nil {
			out = append(out, ch)
		}
	}
	return out
}
