package testbus

import (
	"testing"

	"repro/internal/hscan"
	"repro/internal/systems"
)

func TestEvaluateSystem1(t *testing.T) {
	ch := systems.System1()
	for _, c := range ch.TestableCores() {
		scan, err := hscan.Insert(c.RTL)
		if err != nil {
			t.Fatal(err)
		}
		c.Scan = scan
		c.Vectors = 100
	}
	res := Evaluate(ch)
	if len(res.Cores) != 3 {
		t.Fatalf("evaluated %d cores, want 3", len(res.Cores))
	}
	for _, cr := range res.Cores {
		// Direct pin access: period 1, so TAT ~= HSCAN vectors.
		if cr.TAT <= 0 {
			t.Errorf("%s: TAT = %d", cr.Core, cr.TAT)
		}
		if cr.MuxArea.Cells() == 0 {
			t.Errorf("%s: test bus needs isolation muxes", cr.Core)
		}
	}
	if res.MuxCells() == 0 {
		t.Error("no bus mux area")
	}
}

// The test bus buys minimum TAT with maximum mux area: both claims of
// Section 1 and the degenerate case of Section 5.2.
func TestBusIsFastButExpensive(t *testing.T) {
	ch := systems.System1()
	totalBits := 0
	for _, c := range ch.TestableCores() {
		scan, err := hscan.Insert(c.RTL)
		if err != nil {
			t.Fatal(err)
		}
		c.Scan = scan
		c.Vectors = 100
		for _, p := range c.RTL.Ports {
			totalBits += p.Width
		}
	}
	res := Evaluate(ch)
	if res.MuxCells() < totalBits {
		t.Errorf("bus muxes %d cells, want >= one per port bit (%d)", res.MuxCells(), totalBits)
	}
	// Period-1 delivery: TAT equals scan cycles with no transparency waits.
	for _, cr := range res.Cores {
		c, _ := ch.CoreByName(cr.Core)
		minPossible := c.Scan.VectorsFor(c.Vectors)
		if cr.TAT < minPossible {
			t.Errorf("%s: TAT %d below scan minimum %d", cr.Core, cr.TAT, minPossible)
		}
		if cr.TAT > minPossible+cr.Depth {
			t.Errorf("%s: TAT %d exceeds bus-access bound %d", cr.Core, cr.TAT, minPossible+cr.Depth)
		}
	}
}
