// Package testbus implements the test-bus baseline sketched in Section 1:
// a dedicated bus runs from the chip PIs to the POs and multiplexers
// isolate each full-scanned core during test. It is also the degenerate
// worst case of SOCET's iterative improvement (Section 5.2: "in the worst
// case, the solution will degenerate into a test bus like system"). The
// bus gives every core direct access (minimum possible TAT) but pays a
// multiplexer per isolated port bit and cannot test the inter-core
// interconnect.
package testbus

import (
	"repro/internal/cell"
	"repro/internal/soc"
)

// CoreResult is the test-bus accounting for one core.
type CoreResult struct {
	Core    string
	Vectors int
	Depth   int // scan depth while isolated (HSCAN chains retained)
	TAT     int
	MuxArea cell.Area
}

// Result is the chip-level test-bus accounting.
type Result struct {
	Cores    []*CoreResult
	BusArea  cell.Area // bus wiring drivers
	TotalTAT int
}

// MuxCells returns the total isolation-mux cell count.
func (r *Result) MuxCells() int {
	n := 0
	for _, c := range r.Cores {
		n += c.MuxArea.Cells()
	}
	return n + r.BusArea.Cells()
}

// Evaluate computes the test-bus configuration: every core input and
// output bit is muxed onto the bus, each core is tested with direct pin
// access (period 1), and cores share the bus sequentially.
func Evaluate(ch *soc.Chip) *Result {
	res := &Result{}
	busWidth := 0
	for _, c := range ch.TestableCores() {
		cr := &CoreResult{Core: c.Name, Vectors: c.Vectors}
		bits := 0
		for _, p := range c.RTL.Ports {
			bits += p.Width
			if p.Width > busWidth {
				busWidth = p.Width
			}
		}
		cr.MuxArea.Add(cell.Mux2, bits)
		if c.Scan != nil {
			cr.Depth = c.Scan.MaxDepth
			cr.TAT = c.Scan.VectorsFor(c.Vectors) + maxInt(cr.Depth-1, 0)
		} else {
			cr.TAT = c.Vectors
		}
		res.Cores = append(res.Cores, cr)
		res.TotalTAT += cr.TAT
	}
	// Bus repeaters/drivers, a buffer per bit.
	res.BusArea.Add(cell.Buf, 2*busWidth)
	return res
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
