// Package sched builds the chip-level test schedule of Sections 3 and 5.1:
// for each embedded core it finds reservation-aware justification paths
// from chip inputs to every core input and propagation paths from every
// core output to chip outputs, inserting system-level test multiplexers
// where no path exists, and computes the test application time
//
//	TAT(core) = HSCANvectors × max(J, 1) + tail
//
// where J is the per-vector justification period (the DISPLAY's 525×9+3 in
// Section 3) and tail flushes the final response. The global TAT is the
// sum over cores, with memory BIST running concurrently.
package sched

import (
	"fmt"
	"sort"

	"repro/internal/ccg"
	"repro/internal/cell"
	"repro/internal/obs"
	"repro/internal/soc"
)

// PortSchedule is the path serving one core port.
type PortSchedule struct {
	Port     string
	Path     *ccg.PathResult
	Arrival  int
	AddedMux bool // a system-level test mux had to be inserted
}

// CoreSchedule is the test schedule of one core.
type CoreSchedule struct {
	Core         string
	Inputs       []PortSchedule
	Outputs      []PortSchedule
	Period       int // J: cycles to deliver one vector to all inputs
	ObserveLat   int // worst output-to-PO propagation latency
	Tail         int
	HSCANVectors int
	TAT          int
}

// Result is the chip-wide schedule.
type Result struct {
	Cores    []*CoreSchedule
	MuxArea  cell.Area // system-level test multiplexers added
	TotalTAT int       // sum over cores (sequential testing)
}

// CoreTAT returns the named core's TAT, or -1.
func (r *Result) CoreTAT(core string) int {
	for _, cs := range r.Cores {
		if cs.Core == core {
			return cs.TAT
		}
	}
	return -1
}

// Schedule computes the chip test schedule on a freshly built CCG. The
// graph is mutated: system-level test-mux edges are added where needed
// (the PREPROCESSOR's Address output in Figure 9 gets exactly such a mux).
// The first unschedulable core aborts the build; BuildPartial is the
// degrading variant that skips and diagnoses instead.
func Schedule(ch *soc.Chip, g *ccg.Graph) (*Result, error) {
	root := obs.Start(nil, "sched")
	defer root.End()
	res := &Result{}
	for _, c := range ch.TestableCores() {
		if c.Disabled != "" {
			return nil, fmt.Errorf("sched: core %s disabled: %s", c.Name, c.Disabled)
		}
		sp := obs.Start(root, "sched/"+c.Name)
		cs, err := scheduleCore(ch, g, c, res, nil)
		sp.End()
		if err != nil {
			return nil, err
		}
		res.Cores = append(res.Cores, cs)
		res.TotalTAT += cs.TAT
		obs.C("sched.cores_scheduled").Inc()
	}
	return res, nil
}

// scheduleCore plans one core's test. allowMux gates the system-level
// test-mux fallback per port (nil allows every insertion, the design-time
// behaviour); a denied or futile insertion surfaces as *UnreachableError.
func scheduleCore(ch *soc.Chip, g *ccg.Graph, c *soc.Core, res *Result, allowMux func(core, port string, input bool) bool) (*CoreSchedule, error) {
	cs := &CoreSchedule{Core: c.Name}
	resv := ccg.Reservations{}
	pis := g.PINodes()

	// Justify every core input from the chip PIs, reserving edges so
	// shared transparency logic serializes across inputs (Section 5.1).
	inPorts := inputPortNames(c)
	for _, port := range inPorts {
		target, ok := g.NodeIndex(c.Name + "." + port)
		if !ok {
			return nil, fmt.Errorf("sched: missing CCG node %s.%s", c.Name, port)
		}
		p := g.ShortestPath(pis, target, resv)
		added := false
		if p == nil {
			// No existing path: connect the input to a PI with a
			// system-level test multiplexer and retry.
			if allowMux != nil && !allowMux(c.Name, port, true) {
				return nil, &UnreachableError{Core: c.Name, Port: port, Input: true, MuxDenied: true}
			}
			pi := bestPI(ch, g, port)
			g.AddTestMux(pi, target)
			width := portWidth(c, port)
			res.MuxArea.Add(cell.Mux2, width)
			obs.C("sched.test_muxes_added").Inc()
			added = true
			p = g.ShortestPath(pis, target, resv)
			if p == nil {
				return nil, &UnreachableError{Core: c.Name, Port: port, Input: true}
			}
		}
		g.ReservePath(p, resv)
		cs.Inputs = append(cs.Inputs, PortSchedule{Port: port, Path: p, Arrival: p.Arrival, AddedMux: added})
		if p.Arrival > cs.Period {
			cs.Period = p.Arrival
		}
	}
	if cs.Period < 1 {
		cs.Period = 1
	}

	// Propagate every core output to a chip PO. Responses stream while the
	// next vector is justified, so observation uses fresh reservations.
	oresv := ccg.Reservations{}
	for _, port := range outputPortNames(c) {
		source, ok := g.NodeIndex(c.Name + "." + port)
		if !ok {
			return nil, fmt.Errorf("sched: missing CCG node %s.%s", c.Name, port)
		}
		p := bestPathToPO(g, source, oresv)
		added := false
		if p == nil {
			if allowMux != nil && !allowMux(c.Name, port, false) {
				return nil, &UnreachableError{Core: c.Name, Port: port, MuxDenied: true}
			}
			po := bestPO(ch, g, port)
			g.AddTestMux(source, po)
			width := portWidth(c, port)
			res.MuxArea.Add(cell.Mux2, width)
			obs.C("sched.test_muxes_added").Inc()
			added = true
			p = bestPathToPO(g, source, oresv)
			if p == nil {
				return nil, &UnreachableError{Core: c.Name, Port: port}
			}
		}
		g.ReservePath(p, oresv)
		cs.Outputs = append(cs.Outputs, PortSchedule{Port: port, Path: p, Arrival: p.Arrival, AddedMux: added})
		if p.Arrival > cs.ObserveLat {
			cs.ObserveLat = p.Arrival
		}
	}

	depth := 0
	if c.Scan != nil {
		depth = c.Scan.MaxDepth
		cs.HSCANVectors = c.Scan.VectorsFor(c.Vectors)
	} else {
		cs.HSCANVectors = c.Vectors
	}
	tailScan := depth - 1
	if tailScan < 0 {
		tailScan = 0
	}
	cs.Tail = cs.ObserveLat + tailScan
	cs.TAT = cs.HSCANVectors*cs.Period + cs.Tail
	return cs, nil
}

// bestPathToPO runs one Dijkstra from source and picks the earliest PO.
func bestPathToPO(g *ccg.Graph, source int, resv ccg.Reservations) *ccg.PathResult {
	var best *ccg.PathResult
	for _, po := range g.PONodes() {
		p := g.ShortestPath([]int{source}, po, resv)
		if p != nil && (best == nil || p.Arrival < best.Arrival) {
			best = p
		}
	}
	return best
}

// bestPI picks the PI node for a created test mux: widest pin,
// deterministic by name.
func bestPI(ch *soc.Chip, g *ccg.Graph, port string) int {
	bestName, bestW := "", -1
	for _, p := range ch.PIs {
		if p.Width > bestW || (p.Width == bestW && p.Name < bestName) {
			bestName, bestW = p.Name, p.Width
		}
	}
	i, _ := g.NodeIndex(bestName)
	return i
}

func bestPO(ch *soc.Chip, g *ccg.Graph, port string) int {
	bestName, bestW := "", -1
	for _, p := range ch.POs {
		if p.Width > bestW || (p.Width == bestW && p.Name < bestName) {
			bestName, bestW = p.Name, p.Width
		}
	}
	i, _ := g.NodeIndex(bestName)
	return i
}

func inputPortNames(c *soc.Core) []string {
	var out []string
	for _, p := range c.RTL.Inputs() {
		out = append(out, p.Name)
	}
	sort.Strings(out)
	return out
}

func outputPortNames(c *soc.Core) []string {
	var out []string
	for _, p := range c.RTL.Outputs() {
		out = append(out, p.Name)
	}
	sort.Strings(out)
	return out
}

func portWidth(c *soc.Core, port string) int {
	if p, ok := c.RTL.PortByName(port); ok {
		return p.Width
	}
	return 1
}
